package streamagg

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/mg"
)

// ItemCount pairs an item with a frequency estimate.
type ItemCount struct {
	Item  uint64
	Count int64
}

// FreqEstimator tracks approximate item frequencies over the entire
// stream (infinite window) with the parallel Misra-Gries summary
// (Theorem 5.2): O(1/ε) space, O(ε⁻¹ + µ) work per minibatch of size µ,
// polylog depth. Estimates satisfy f_e - εm <= Estimate(e) <= f_e where m
// is the stream length so far.
type FreqEstimator struct {
	mu   sync.RWMutex
	impl *mg.Summary
}

// NewFreqEstimator creates an estimator with error parameter epsilon in
// (0, 1].
func NewFreqEstimator(epsilon float64) (*FreqEstimator, error) {
	if epsilon <= 0 || epsilon > 1 {
		return nil, fmt.Errorf("%w: epsilon %v", ErrBadParam, epsilon)
	}
	return &FreqEstimator{impl: mg.New(epsilon)}, nil
}

// ProcessBatch ingests a minibatch of items.
func (f *FreqEstimator) ProcessBatch(items []uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.impl.ProcessBatch(items)
}

// Estimate returns the frequency estimate for item:
// f_e - εm <= Estimate(item) <= f_e.
func (f *FreqEstimator) Estimate(item uint64) int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.impl.Estimate(item)
}

// StreamLen returns the number of items observed so far.
func (f *FreqEstimator) StreamLen() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.impl.StreamLen()
}

// HeavyHitters returns all items whose estimated frequency reaches
// (phi-ε)·m: every item with true frequency >= phi·m is included, and no
// item with true frequency < (phi-2ε)·m can appear.
func (f *FreqEstimator) HeavyHitters(phi float64) []ItemCount {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var out []ItemCount
	for _, item := range f.impl.HeavyHitters(phi) {
		out = append(out, ItemCount{Item: item, Count: f.impl.Estimate(item)})
	}
	sortByCountDesc(out)
	return out
}

// TopK returns the k tracked items with the largest estimates.
func (f *FreqEstimator) TopK(k int) []ItemCount {
	f.mu.RLock()
	defer f.mu.RUnlock()
	entries := f.impl.Entries()
	out := make([]ItemCount, 0, len(entries))
	for _, e := range entries {
		out = append(out, ItemCount{Item: e.Item, Count: e.Freq})
	}
	sortByCountDesc(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// SpaceWords reports the memory footprint in 64-bit words.
func (f *FreqEstimator) SpaceWords() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.impl.SpaceWords()
}

func sortByCountDesc(xs []ItemCount) {
	sort.Slice(xs, func(i, j int) bool {
		if xs[i].Count != xs[j].Count {
			return xs[i].Count > xs[j].Count
		}
		return xs[i].Item < xs[j].Item
	})
}
