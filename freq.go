package streamagg

import (
	"fmt"
	"sort"

	"repro/internal/mg"
)

// ItemCount pairs an item with a frequency estimate.
type ItemCount struct {
	Item  uint64
	Count int64
}

// FreqEstimator tracks approximate item frequencies over the entire
// stream (infinite window) with the parallel Misra-Gries summary
// (Theorem 5.2): O(1/ε) space, O(ε⁻¹ + µ) work per minibatch of size µ,
// polylog depth. Estimates satisfy f_e - εm <= Estimate(e) <= f_e where m
// is the stream length so far.
type FreqEstimator struct {
	gate
	impl *mg.Summary
}

// NewFreqEstimator creates an estimator with error parameter epsilon in
// (0, 1].
func NewFreqEstimator(epsilon float64) (*FreqEstimator, error) {
	a, err := New(KindFreq, WithEpsilon(epsilon))
	if err != nil {
		return nil, err
	}
	return a.(*FreqEstimator), nil
}

// Kind returns KindFreq.
func (f *FreqEstimator) Kind() Kind { return KindFreq }

// ProcessBatch ingests a minibatch of items. It never fails; the error
// is always nil (Aggregate interface).
func (f *FreqEstimator) ProcessBatch(items []uint64) error {
	f.ingest(len(items), func() { f.impl.ProcessBatch(items) })
	return nil
}

// Estimate returns the frequency estimate for item:
// f_e - εm <= Estimate(item) <= f_e.
func (f *FreqEstimator) Estimate(item uint64) (est int64) {
	f.read(func() { est = f.impl.Estimate(item) })
	return est
}

// HeavyHitters returns all items whose estimated frequency reaches
// (phi-ε)·m: every item with true frequency >= phi·m is included, and no
// item with true frequency < (phi-2ε)·m can appear.
func (f *FreqEstimator) HeavyHitters(phi float64) (out []ItemCount) {
	f.read(func() {
		for _, item := range f.impl.HeavyHitters(phi) {
			out = append(out, ItemCount{Item: item, Count: f.impl.Estimate(item)})
		}
	})
	sortByCountDesc(out)
	return out
}

// TopK returns the k tracked items with the largest estimates.
func (f *FreqEstimator) TopK(k int) (out []ItemCount) {
	f.read(func() {
		entries := f.impl.Entries()
		out = make([]ItemCount, 0, len(entries))
		for _, e := range entries {
			out = append(out, ItemCount{Item: e.Item, Count: e.Freq})
		}
	})
	sortByCountDesc(out)
	if k < 0 {
		k = 0
	}
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// SpaceWords reports the memory footprint in 64-bit words.
func (f *FreqEstimator) SpaceWords() (w int) {
	f.read(func() { w = f.impl.SpaceWords() })
	return w
}

// Merge folds another FreqEstimator with the same epsilon (summary
// capacity) into f with the Misra-Gries merge of [ACH+13] (Merger
// interface), preserving f_e - ε(m_f+m_o) <= Estimate(e) <= f_e. A
// capacity mismatch is rejected: merging in a coarser summary would
// silently import its larger undercount and break f's advertised bound.
func (f *FreqEstimator) Merge(other Aggregate) error {
	o, ok := other.(*FreqEstimator)
	if !ok {
		return fmt.Errorf("%w: cannot merge %s into %s", ErrIncompatibleMerge, other.Kind(), f.Kind())
	}
	if o == f {
		return fmt.Errorf("%w: aggregate merged with itself", ErrIncompatibleMerge)
	}
	var clone *mg.Summary
	var olen int64
	o.read(func() { clone, olen = o.impl.Clone(), o.streamLen })
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.impl.Capacity() != clone.Capacity() {
		return fmt.Errorf("%w: summary capacity mismatch (%d vs %d)",
			ErrIncompatibleMerge, f.impl.Capacity(), clone.Capacity())
	}
	f.impl.Merge(clone)
	f.streamLen += olen
	return nil
}

func sortByCountDesc(xs []ItemCount) {
	sort.Slice(xs, func(i, j int) bool {
		if xs[i].Count != xs[j].Count {
			return xs[i].Count > xs[j].Count
		}
		return xs[i].Item < xs[j].Item
	})
}
