package streamagg

// Native Go fuzz targets for the checkpoint surface: UnmarshalBinary on
// every aggregate kind, on Sharded, and on whole-Pipeline envelopes.
// The contract under fuzzing is strict: corrupted or truncated input
// must produce an error — never a panic, and never an allocation driven
// by unvalidated decoded lengths (OOM). When a mutated envelope happens
// to decode cleanly, the restored value must additionally survive light
// use (queries and a small batch).

import (
	"testing"
)

// fuzzKinds is every public aggregate kind.
var fuzzKinds = []Kind{
	KindBasicCounter, KindWindowSum, KindFreq, KindSlidingFreq,
	KindCountMin, KindCountMinRange, KindCountSketch,
}

// fuzzSeedCheckpoints builds one small valid checkpoint per kind (plus a
// sharded one) to seed the corpus, so mutation starts from well-formed
// envelopes instead of random bytes.
func fuzzSeedCheckpoints(f *testing.F) [][]byte {
	f.Helper()
	opts := map[Kind][]Option{
		KindBasicCounter:  {WithWindow(64), WithEpsilon(0.2)},
		KindWindowSum:     {WithWindow(64), WithMaxValue(255), WithEpsilon(0.2)},
		KindFreq:          {WithEpsilon(0.1)},
		KindSlidingFreq:   {WithWindow(64), WithEpsilon(0.2)},
		KindCountMin:      {WithEpsilon(0.1), WithDelta(0.1)},
		KindCountMinRange: {WithUniverseBits(8), WithEpsilon(0.1), WithDelta(0.1)},
		KindCountSketch:   {WithEpsilon(0.2), WithDelta(0.1)},
	}
	var out [][]byte
	for _, kind := range fuzzKinds {
		agg, err := New(kind, opts[kind]...)
		if err != nil {
			f.Fatal(err)
		}
		if err := agg.ProcessBatch([]uint64{1, 2, 3, 0, 5, 1}); err != nil {
			f.Fatal(err)
		}
		ckpt, err := agg.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		out = append(out, ckpt)
	}
	sharded, err := NewSharded(KindCountMin, 3, WithEpsilon(0.1), WithDelta(0.1))
	if err != nil {
		f.Fatal(err)
	}
	if err := sharded.ProcessBatch([]uint64{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		f.Fatal(err)
	}
	ckpt, err := sharded.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	return append(out, ckpt)
}

func fuzzSeed(f *testing.F) {
	f.Helper()
	for _, ckpt := range fuzzSeedCheckpoints(f) {
		f.Add(ckpt)
		f.Add(ckpt[:len(ckpt)/2]) // truncated envelope
	}
	f.Add([]byte{})
	f.Add([]byte("garbage that is not gob"))
}

// exerciseRestored runs light queries and a small batch against an
// aggregate that UnmarshalBinary accepted: acceptance implies usability.
func exerciseRestored(agg Aggregate) {
	_ = agg.Kind()
	_ = agg.StreamLen()
	_ = agg.SpaceWords()
	if pe, ok := agg.(PointEstimator); ok {
		_ = pe.Estimate(42)
	}
	if se, ok := agg.(ScalarEstimator); ok {
		_ = se.Estimate()
	}
	if hh, ok := agg.(HeavyHitterSource); ok {
		_ = hh.TopK(3)
		_ = hh.HeavyHitters(0.1)
	}
	if re, ok := agg.(RangeEstimator); ok {
		_ = re.RangeCount(0, 10)
		_ = re.Quantile(0.5)
	}
	_ = agg.ProcessBatch([]uint64{1, 2, 3}) // WindowSum may reject; must not panic
}

// FuzzAggregateUnmarshal feeds the input to every kind's zero value.
func FuzzAggregateUnmarshal(f *testing.F) {
	fuzzSeed(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip()
		}
		for _, kind := range fuzzKinds {
			fresh, err := zeroAggregate(kind)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.UnmarshalBinary(data); err != nil {
				continue
			}
			exerciseRestored(fresh)
		}
	})
}

// FuzzShardedUnmarshal feeds the input to a zero-value Sharded, which
// recursively restores per-shard envelopes.
func FuzzShardedUnmarshal(f *testing.F) {
	fuzzSeed(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip()
		}
		var s Sharded
		if err := s.UnmarshalBinary(data); err != nil {
			return
		}
		exerciseRestored(&s)
		if _, err := s.Snapshot(); err != nil {
			// A restored shard set that cannot merge is acceptable; a
			// panic is not.
			_ = err
		}
	})
}

// FuzzPipelineUnmarshal feeds the input to a zero-value Pipeline, which
// fans out to per-aggregate envelopes.
func FuzzPipelineUnmarshal(f *testing.F) {
	fuzzSeed(f)
	// Also seed a well-formed whole-pipeline checkpoint.
	p := NewPipeline()
	if _, err := p.Add("f", KindFreq, WithEpsilon(0.1)); err != nil {
		f.Fatal(err)
	}
	if _, err := p.Add("cm", KindCountMin, WithEpsilon(0.1), WithDelta(0.1), WithShards(2)); err != nil {
		f.Fatal(err)
	}
	if err := p.ProcessBatch([]uint64{1, 2, 3, 4}); err != nil {
		f.Fatal(err)
	}
	ckpt, err := p.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ckpt)
	f.Add(ckpt[:len(ckpt)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip()
		}
		var p Pipeline
		if err := p.UnmarshalBinary(data); err != nil {
			return
		}
		for _, name := range p.Names() {
			_, _ = p.Estimate(name, 42)
			_, _ = p.Value(name)
			_, _ = p.TopK(name, 3)
			_, _ = p.RangeCount(name, 0, 10)
		}
		_ = p.ProcessBatch([]uint64{1, 2, 3})
		if _, err := p.MarshalBinary(); err != nil {
			t.Fatalf("restored pipeline cannot re-checkpoint: %v", err)
		}
	})
}
