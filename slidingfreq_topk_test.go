package streamagg

import (
	"testing"

	"repro/internal/workload"
)

func TestSlidingTopK(t *testing.T) {
	s, err := NewSlidingFreqEstimator(5000, 0.02, VariantWorkEfficient)
	if err != nil {
		t.Fatal(err)
	}
	stream := workload.HeavyMix(21, 20000, []uint64{1, 2, 3}, []float64{0.4, 0.2, 0.1}, 1<<20)
	for _, b := range workload.Batches(stream, 1000) {
		s.ProcessBatch(b)
	}
	top := s.TopK(3)
	if len(top) != 3 {
		t.Fatalf("TopK returned %d entries", len(top))
	}
	if top[0].Item != 1 || top[1].Item != 2 || top[2].Item != 3 {
		t.Fatalf("TopK order wrong: %+v", top)
	}
	for i := 1; i < len(top); i++ {
		if top[i-1].Count < top[i].Count {
			t.Fatal("TopK not sorted by count")
		}
	}
	// k larger than tracked items returns everything.
	all := s.TopK(1 << 20)
	if len(all) < 3 || len(all) > s.TrackedItems() {
		t.Fatalf("TopK(huge) returned %d of %d tracked", len(all), s.TrackedItems())
	}
}
