package streamagg

// Durability integration tests for the Ingestor + persist subsystem:
// clean-shutdown recovery (snapshot path), crash recovery (WAL replay
// path, exercised on a file-level copy of a live data directory — the
// same image a SIGKILL leaves), restore/WAL interaction, option
// validation, and a -race stress drill with concurrent producers during
// background snapshotting and truncation (wired into CI).

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/persist"
)

// copyDir snapshots a data directory file-by-file, producing the image a
// crash would leave (call it with the ingest path quiesced for a
// deterministic image).
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		in, err := os.Open(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(filepath.Join(dst, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		out.Close()
	}
	return dst
}

// durablePipe builds the test pipeline: one order-sensitive summary
// (Misra-Gries) and one linear sketch.
func durablePipe(t *testing.T) *Pipeline {
	t.Helper()
	p := NewPipeline()
	if _, err := p.Add("hot", KindFreq, WithEpsilon(0.01)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Add("cm", KindCountMin, WithEpsilon(0.001), WithDelta(0.01), WithSeed(7)); err != nil {
		t.Fatal(err)
	}
	return p
}

// pipeAnswers captures the query surface we compare across recovery.
func pipeAnswers(t *testing.T, p *Pipeline) []int64 {
	t.Helper()
	out := []int64{p.StreamLen()}
	for key := uint64(0); key < 32; key++ {
		est, err := p.Estimate("cm", key)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, est)
		est, err = p.Estimate("hot", key)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, est)
	}
	return out
}

// feed pushes a deterministic skewed stream through the ingestor in
// request-sized batches and flushes.
func feed(t *testing.T, in *Ingestor, batches, per int, seed uint64) {
	t.Helper()
	x := seed
	for b := 0; b < batches; b++ {
		batch := make([]uint64, per)
		for i := range batch {
			x = x*6364136223846793005 + 1442695040888963407
			batch[i] = (x >> 33) % 32
		}
		if _, err := in.PutBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
}

func equalAnswers(t *testing.T, want, got []int64, what string) {
	t.Helper()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: answer %d diverged: want %d, got %d", what, i, want[i], got[i])
		}
	}
}

// TestDurableRecoveryFromCleanClose exercises the snapshot path: Close
// writes a shutdown snapshot, so reopening replays nothing.
func TestDurableRecoveryFromCleanClose(t *testing.T) {
	dir := t.TempDir()
	pipe := durablePipe(t)
	in, err := NewIngestor(pipe, WithDataDir(dir), WithFsync(persist.FsyncNever), WithBatchSize(128))
	if err != nil {
		t.Fatal(err)
	}
	feed(t, in, 50, 100, 1)
	want := pipeAnswers(t, pipe)
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}

	pipe2 := durablePipe(t)
	in2, err := NewIngestor(pipe2, WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer in2.Close()
	st := in2.Persist().Stats()
	if !st.RecoveredSnapshot || st.ReplayedRecords != 0 {
		t.Fatalf("clean close should recover from snapshot alone: %+v", st)
	}
	equalAnswers(t, want, pipeAnswers(t, pipe2), "clean-close recovery")
}

// TestDurableRecoveryFromCrashImage exercises the WAL replay path: the
// directory is copied while live (no shutdown snapshot), like a SIGKILL.
func TestDurableRecoveryFromCrashImage(t *testing.T) {
	dir := t.TempDir()
	pipe := durablePipe(t)
	in, err := NewIngestor(pipe, WithDataDir(dir), WithFsync(persist.FsyncNever), WithBatchSize(128))
	if err != nil {
		t.Fatal(err)
	}
	feed(t, in, 50, 100, 2)
	want := pipeAnswers(t, pipe)
	crash := copyDir(t, dir) // before Close: WAL only, no shutdown snapshot
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}

	pipe2 := durablePipe(t)
	in2, err := NewIngestor(pipe2, WithDataDir(crash))
	if err != nil {
		t.Fatal(err)
	}
	defer in2.Close()
	st := in2.Persist().Stats()
	if st.RecoveredSnapshot || st.ReplayedRecords == 0 {
		t.Fatalf("crash image should recover by WAL replay: %+v", st)
	}
	// Replay reuses the live run's minibatch boundaries, so even the
	// order-sensitive Misra-Gries summary matches exactly.
	equalAnswers(t, want, pipeAnswers(t, pipe2), "crash recovery")
}

// TestDurableRestoreSupersedesWAL: Restore replaces the sink's state, so
// recovery afterwards must yield the restored state, not a replay of the
// pre-restore WAL over it.
func TestDurableRestoreSupersedesWAL(t *testing.T) {
	dir := t.TempDir()
	pipe := durablePipe(t)
	in, err := NewIngestor(pipe, WithDataDir(dir), WithFsync(persist.FsyncNever), WithBatchSize(64))
	if err != nil {
		t.Fatal(err)
	}
	feed(t, in, 20, 50, 3)
	ckpt, err := in.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	want := pipeAnswers(t, pipe)
	feed(t, in, 20, 50, 4) // diverge
	if err := in.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	crash := copyDir(t, dir)
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}

	pipe2 := durablePipe(t)
	in2, err := NewIngestor(pipe2, WithDataDir(crash))
	if err != nil {
		t.Fatal(err)
	}
	defer in2.Close()
	equalAnswers(t, want, pipeAnswers(t, pipe2), "post-restore recovery")
}

// TestDurableRecoveryToleratesPoisonBatch: a batch the sink
// deterministically rejects (WindowSum out-of-bound value) is logged
// before it is applied, so it comes back on replay. Recovery must
// reproduce the live outcome — partial apply plus the sticky error —
// not wedge startup in a permanent crash loop.
func TestDurableRecoveryToleratesPoisonBatch(t *testing.T) {
	dir := t.TempDir()
	mkPipe := func() *Pipeline {
		p := NewPipeline()
		if _, err := p.Add("sum", KindWindowSum, WithWindow(1000), WithMaxValue(10)); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Add("cm", KindCountMin, WithEpsilon(0.01), WithDelta(0.01), WithSeed(7)); err != nil {
			t.Fatal(err)
		}
		return p
	}
	pipe := mkPipe()
	in, err := NewIngestor(pipe, WithDataDir(dir), WithFsync(persist.FsyncNever), WithBatchSize(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.PutBatch([]uint64{1, 2, 9999, 3}); err != nil { // 9999 > bound 10
		t.Fatal(err)
	}
	if err := in.Flush(); err == nil {
		t.Fatal("poison batch did not surface a sink error")
	}
	cmWant, err := pipe.Estimate("cm", 2)
	if err != nil {
		t.Fatal(err)
	}
	crash := copyDir(t, dir)
	in.Close()

	pipe2 := mkPipe()
	in2, err := NewIngestor(pipe2, WithDataDir(crash))
	if err != nil {
		t.Fatalf("recovery wedged on the poison batch: %v", err)
	}
	defer in2.Close()
	if err := in2.Flush(); err == nil {
		t.Fatal("replay did not reproduce the sticky sink error")
	}
	if got, _ := pipe2.Estimate("cm", 2); got != cmWant {
		t.Fatalf("count-min after poison-batch recovery: %d, want %d", got, cmWant)
	}
}

// plainSink ingests but cannot checkpoint.
type plainSink struct{}

func (plainSink) ProcessBatch([]uint64) error { return nil }

func TestDurableOptionValidation(t *testing.T) {
	if _, err := NewIngestor(plainSink{}, WithFsync(persist.FsyncNever)); !errors.Is(err, ErrBadParam) {
		t.Fatalf("WithFsync without WithDataDir: %v", err)
	}
	if _, err := NewIngestor(plainSink{}, WithSnapshotEvery(8)); !errors.Is(err, ErrBadParam) {
		t.Fatalf("WithSnapshotEvery without WithDataDir: %v", err)
	}
	if _, err := NewIngestor(plainSink{}, WithDataDir(t.TempDir())); !errors.Is(err, ErrBadParam) {
		t.Fatalf("durable ingestor over a sink without checkpointing: %v", err)
	}
	if _, err := NewIngestor(plainSink{}, WithDataDir("")); !errors.Is(err, ErrBadParam) {
		t.Fatalf("empty data dir: %v", err)
	}
	if _, err := NewIngestor(plainSink{}, WithSnapshotEvery(0)); !errors.Is(err, ErrBadParam) {
		t.Fatalf("zero snapshot interval: %v", err)
	}
	if _, err := New(KindFreq, WithDataDir(t.TempDir())); !errors.Is(err, ErrBadParam) {
		t.Fatalf("WithDataDir on an aggregate kind: %v", err)
	}
	agg, err := New(KindCountMin)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := mustIngestor(t, agg).DurableCheckpoint(); !errors.Is(err, ErrBadParam) {
		t.Fatalf("DurableCheckpoint without a data dir: %v", err)
	}
}

func mustIngestor(t *testing.T, sink BatchProcessor) *Ingestor {
	t.Helper()
	in, err := NewIngestor(sink)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { in.Close() })
	return in
}

// TestDurableIngestorStress is the CI -race recovery drill: many
// producers concurrent with the background snapshotter (frequent
// snapshots force constant segment sealing and truncation), then a full
// recovery whose linear-sketch state must match an order-independent
// mirror of everything accepted.
func TestDurableIngestorStress(t *testing.T) {
	const (
		producers = 8
		batches   = 60
		per       = 25
		universe  = 64
	)
	dir := t.TempDir()
	pipe := durablePipe(t)
	in, err := NewIngestor(pipe,
		WithDataDir(dir), WithFsync(persist.FsyncInterval), WithSnapshotEvery(4),
		WithBatchSize(32), WithQueueCap(4096))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := make([]int64, universe) // ground truth of accepted items
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			x := uint64(p + 1)
			local := make([]int64, universe)
			for b := 0; b < batches; b++ {
				batch := make([]uint64, per)
				for i := range batch {
					x = x*6364136223846793005 + 1442695040888963407
					batch[i] = (x >> 33) % universe
					local[batch[i]]++
				}
				if _, err := in.PutBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
			mu.Lock()
			for k, c := range local {
				counts[k] += c
			}
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	st := in.Persist().Stats()
	if st.Snapshots == 0 || st.TruncatedSegments == 0 {
		t.Fatalf("stress run never snapshotted/truncated: %+v", st)
	}

	pipe2 := durablePipe(t)
	in2, err := NewIngestor(pipe2, WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer in2.Close()
	if got, want := pipe2.StreamLen(), int64(producers*batches*per); got != want {
		t.Fatalf("recovered stream length %d, want %d", got, want)
	}
	// CountMin is linear, so its recovered state is independent of batch
	// boundaries and producer interleaving: compare against a mirror fed
	// the accepted multiset in one batch.
	mirror, err := New(KindCountMin, WithEpsilon(0.001), WithDelta(0.01), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	var all []uint64
	for k, c := range counts {
		for i := int64(0); i < c; i++ {
			all = append(all, uint64(k))
		}
	}
	if err := mirror.ProcessBatch(all); err != nil {
		t.Fatal(err)
	}
	cm := mirror.(*CountMin)
	for k := uint64(0); k < universe; k++ {
		want := cm.Estimate(k)
		got, err := pipe2.Estimate("cm", k)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("key %d: recovered estimate %d, mirror %d", k, got, want)
		}
	}
}
