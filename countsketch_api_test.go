package streamagg

import (
	"errors"
	"math"
	"testing"

	"repro/internal/workload"
)

func TestCountSketchEndToEnd(t *testing.T) {
	cs, err := NewCountSketch(0.02, 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	stream := workload.Zipf(15, 100000, 1.3, 1<<14)
	exact := map[uint64]int64{}
	for _, batch := range workload.Batches(stream, 4096) {
		cs.ProcessBatch(batch)
		for _, it := range batch {
			exact[it]++
		}
	}
	if cs.TotalCount() != int64(len(stream)) {
		t.Fatalf("TotalCount %d", cs.TotalCount())
	}
	var l2sq float64
	for _, f := range exact {
		l2sq += float64(f) * float64(f)
	}
	bound := 0.02 * math.Sqrt(l2sq)
	bad := 0
	for it, fe := range exact {
		diff := float64(cs.Query(it) - fe)
		if diff < 0 {
			diff = -diff
		}
		if diff > bound {
			bad++
		}
	}
	if bad > len(exact)/20 {
		t.Fatalf("%d/%d beyond the L2 bound", bad, len(exact))
	}
	d, w := cs.Dims()
	if d < 1 || w < 1 || cs.SpaceWords() < d*w {
		t.Fatal("dims/space wrong")
	}
}

func TestCountSketchTurnstile(t *testing.T) {
	cs, _ := NewCountSketch(0.05, 0.01, 9)
	cs.Update(7, 100)
	cs.Update(7, -40)
	if q := cs.Query(7); q < 40 || q > 80 {
		t.Fatalf("after +100-40: Query = %d want ~60", q)
	}
	if cs.TotalCount() != 60 {
		t.Fatalf("TotalCount %d", cs.TotalCount())
	}
}

func TestCountSketchParamErrors(t *testing.T) {
	if _, err := NewCountSketch(0, 0.1, 1); !errors.Is(err, ErrBadParam) {
		t.Fatal("eps=0 accepted")
	}
	if _, err := NewCountSketch(0.1, 0, 1); !errors.Is(err, ErrBadParam) {
		t.Fatal("delta=0 accepted")
	}
	if _, err := NewCountSketch(1.5, 0.1, 1); !errors.Is(err, ErrBadParam) {
		t.Fatal("eps>1 accepted")
	}
}
