// aggserve serves a streamagg Pipeline over HTTP: updates POSTed to
// /v1/ingest are coalesced into minibatches by the async Ingestor
// (batch-size threshold or max-latency timer, whichever first) and
// fanned out to every configured aggregate; the six query verbs, stats,
// and atomic checkpoint/restore ride alongside. SIGINT/SIGTERM shut the
// server down gracefully, draining the ingest queue first.
//
// With -data-dir the server is durable: every applied minibatch is
// appended to a write-ahead log under the directory before it becomes
// queryable (fsync policy selectable with -fsync), background snapshots
// bound the log, and a restart — graceful or SIGKILL — recovers the
// aggregates from the newest snapshot plus WAL replay.
//
// Usage:
//
//	aggserve [-addr :8080] [-agg name=kind,opt=val...]...
//	         [-batch 8192] [-latency 5ms] [-queue N] [-backpressure block|reject|drop]
//	         [-data-dir DIR] [-fsync always|interval|never] [-snapshot-every N]
//	         [-parallelism N] [-metrics=true|false]
//	         [-trace-sample P] [-debug-addr host:port]
//	         [-push-to URL -node-id ID] [-push-every 10s] [-push-mode full|delta]
//
// With -trace-sample P (0 < P <= 1) the server records spans for the
// sampled fraction of requests — through enqueue, flush, WAL append,
// sink apply, and federation push — served at GET /debug/traces.
// -debug-addr exposes net/http/pprof on a separate listener (off by
// default; keep it loopback-only).
//
// With -push-to the server is a federation edge: it keeps serving local
// ingest and queries while periodically shipping its summaries to the
// root's POST /v1/merge endpoint (a bare host:port grows the scheme and
// path). -node-id must be stable and unique per edge — the root dedups
// replayed pushes by (node, epoch, seq). Every server is a merge target
// at /v1/merge, so multi-level trees need no extra flags at the root.
//
// Aggregate specs use the same options as the library constructors:
//
//	aggserve -agg hot=freq,eps=0.001 \
//	         -agg sketch=count-min,eps=1e-4,seed=7,shards=4 \
//	         -agg dist=count-min-range,bits=20
//
// Without -agg flags a demo trio (hot=freq, sketch=count-min,
// dist=count-min-range,bits=20) is served.
package main

import (
	"context"
	"flag"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	streamagg "repro"
	"repro/server"
)

func main() {
	var specs []string
	flag.Func("agg", "aggregate spec name=kind[,opt=value]... (repeatable)", func(s string) error {
		specs = append(specs, s)
		return nil
	})
	addr := flag.String("addr", ":8080", "listen address")
	batch := flag.Int("batch", 0, "minibatch flush threshold (default 8192)")
	latency := flag.Duration("latency", -1, "max time a queued update may wait (default 5ms; 0 = flush immediately)")
	queue := flag.Int("queue", 0, "ingest queue capacity in items (default 4x batch)")
	policy := flag.String("backpressure", "block", "full-queue policy: block, reject, or drop")
	dataDir := flag.String("data-dir", "", "durability directory: WAL + snapshots, recovered on startup (default in-memory only)")
	fsync := flag.String("fsync", "", "WAL sync policy: always, interval, or never (default always; needs -data-dir)")
	snapEvery := flag.Int("snapshot-every", 0, "snapshot after N logged minibatches (default 4096; needs -data-dir)")
	par := flag.Int("parallelism", 0, "worker budget for parallel ingestion (default GOMAXPROCS)")
	metricsOn := flag.Bool("metrics", true, "serve the Prometheus exposition at GET /metrics")
	traceSample := flag.Float64("trace-sample", 0, "span sampling probability in [0,1] (0 disables tracing; traces at GET /debug/traces)")
	debugAddr := flag.String("debug-addr", "", "separate listener for net/http/pprof, e.g. localhost:6060 (default off)")
	pushTo := flag.String("push-to", "", "federation root URL to push summaries to (host:port or full /v1/merge URL)")
	pushEvery := flag.Duration("push-every", 0, "interval between federation pushes (default 10s; needs -push-to)")
	nodeID := flag.String("node-id", "", "stable unique edge identity for federation dedup (required with -push-to)")
	pushMode := flag.String("push-mode", "", "federation push mode: full (idempotent, default) or delta (small payloads)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *par > 0 {
		streamagg.SetParallelism(*par)
	}
	if len(specs) == 0 {
		specs = []string{
			"hot=freq,eps=0.001",
			"sketch=count-min,eps=1e-4,seed=7",
			"dist=count-min-range,bits=20",
		}
		logger.Info("no -agg flags; serving demo aggregates", "specs", specs)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := server.Run(ctx, server.RunConfig{
		Addr:          *addr,
		Specs:         specs,
		BatchSize:     *batch,
		MaxLatency:    *latency,
		QueueCap:      *queue,
		Backpressure:  *policy,
		DataDir:       *dataDir,
		Fsync:         *fsync,
		SnapshotEvery: *snapEvery,
		NoMetrics:     !*metricsOn,
		TraceSample:   *traceSample,
		DebugAddr:     *debugAddr,
		PushTo:        *pushTo,
		PushEvery:     *pushEvery,
		NodeID:        *nodeID,
		PushMode:      *pushMode,
		Logger:        logger,
	})
	if err != nil {
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	}
}
