// aggload is the open-loop load harness for aggserve: it drives a
// running server over HTTP with a mixed ingest/query workload at a
// fixed offered rate and reports the latency a client actually
// observes — p50/p90/p99/p99.9 and max per verb and per status class,
// measured against each operation's *intended* start time so queueing
// delay behind a slow server is charged to every operation it delayed
// (coordinated-omission-safe), plus achieved-vs-offered rate.
//
// Usage:
//
//	aggload -target http://127.0.0.1:8080 -rate 1000 -workers 4 \
//	        -duration 30s [-warmup 2s] \
//	        [-mix "ingest=80,estimate@sketch=8,topk@hot=3,..."] \
//	        [-batch 64] [-dist zipf|uniform|distinct] [-zipf-s 1.1] \
//	        [-universe 262144] [-seed 42] [-timeout 10s] \
//	        [-json report.json] [-quiet]
//
// The mix grammar is verb[@aggregate]=weight, comma-separated; query
// verbs name the aggregate they hit, ingest targets the pipeline. The
// default mix matches aggserve's demo aggregates. Progress prints once
// a second; the final report prints as a table and, with -json, is
// written as machine-readable JSON (the schema BENCH_E19.json rows and
// the CI SLO gate consume). Exits nonzero if the run saw any transport
// errors or 5xx responses and -strict is set.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro/internal/loadgen"
)

func main() {
	target := flag.String("target", "http://127.0.0.1:8080", "base URL of the aggserve instance to drive")
	rate := flag.Float64("rate", 1000, "offered arrival rate in ops/s across all workers")
	workers := flag.Int("workers", 4, "concurrent issuing goroutines")
	duration := flag.Duration("duration", 30*time.Second, "measured window")
	warmup := flag.Duration("warmup", 2*time.Second, "unmeasured lead-in at the same rate")
	mixStr := flag.String("mix", loadgen.DefaultMix, "verb mix: verb[@aggregate]=weight,...")
	batch := flag.Int("batch", 64, "items per ingest operation")
	dist := flag.String("dist", "zipf", "key distribution: zipf, uniform, or distinct")
	zipfS := flag.Float64("zipf-s", 1.1, "zipf skew (> 1; used by -dist zipf)")
	universe := flag.Uint64("universe", 1<<18, "key universe size")
	seed := flag.Int64("seed", 42, "workload seed (deterministic key pool and mix draws)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	jsonPath := flag.String("json", "", "write the machine-readable report to this file")
	quiet := flag.Bool("quiet", false, "suppress the live per-second progress lines")
	strict := flag.Bool("strict", false, "exit 1 if any 5xx or transport error was observed")
	flag.Parse()

	mix, err := loadgen.ParseMix(*mixStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aggload: %v\n", err)
		os.Exit(2)
	}
	cfg := loadgen.Config{
		Target:   *target,
		Rate:     *rate,
		Workers:  *workers,
		Duration: *duration,
		Warmup:   *warmup,
		Mix:      mix,
		Batch:    *batch,
		Timeout:  *timeout,
		Keys: loadgen.Keys{
			Dist:     *dist,
			ZipfS:    *zipfS,
			Universe: *universe,
			Seed:     *seed,
		},
	}
	if !*quiet {
		cfg.OnTick = func(t loadgen.Tick) {
			phase := ""
			if t.InWarmup {
				phase = " [warmup]"
			}
			fmt.Printf("t=%-6s offered=%.0f/s achieved=%.0f/s ops=%d p50=%.2fms p99=%.2fms 5xx=%d err=%d%s\n",
				t.Elapsed.Truncate(100*time.Millisecond), t.Offered, t.Achieved,
				t.Ops, t.P50Ms, t.P99Ms, t.Bad5xx, t.Errors, phase)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aggload: %v\n", err)
		os.Exit(2)
	}

	printReport(rep)
	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "aggload: encoding report: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "aggload: writing %s: %v\n", *jsonPath, err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if *strict && (rep.Status["5xx"] > 0 || rep.Status["error"] > 0) {
		fmt.Fprintf(os.Stderr, "aggload: strict mode: %d 5xx, %d transport errors\n",
			rep.Status["5xx"], rep.Status["error"])
		os.Exit(1)
	}
}

func printReport(rep *loadgen.Report) {
	fmt.Printf("\ntarget    %s\n", rep.Target)
	fmt.Printf("offered   %.1f ops/s   achieved %.1f ops/s (%.1f%%)   items %.0f/s\n",
		rep.OfferedPerSec, rep.AchievedPerSec,
		pct(rep.AchievedPerSec, rep.OfferedPerSec), rep.ItemsPerSec)
	fmt.Printf("window    %.1fs measured after %.1fs warmup, %d workers, %d ops\n",
		rep.DurationSeconds, rep.WarmupSeconds, rep.Workers, rep.Ops)
	fmt.Printf("status    2xx=%d 3xx=%d 4xx=%d 5xx=%d error=%d\n\n",
		rep.Status["2xx"], rep.Status["3xx"], rep.Status["4xx"],
		rep.Status["5xx"], rep.Status["error"])

	fmt.Printf("%-22s %9s %9s %9s %9s %9s %9s\n",
		"verb", "ops", "p50 ms", "p90 ms", "p99 ms", "p99.9 ms", "max ms")
	row := func(name string, ops int64, p loadgen.Percentiles) {
		fmt.Printf("%-22s %9d %9.2f %9.2f %9.2f %9.2f %9.2f\n",
			name, ops, p.P50, p.P90, p.P99, p.P999, p.Max)
	}
	labels := make([]string, 0, len(rep.Verbs))
	for l := range rep.Verbs {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		v := rep.Verbs[l]
		row(l, v.Ops, v.Latency)
	}
	row("all", rep.Ops, rep.Latency)
}

func pct(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * a / b
}
