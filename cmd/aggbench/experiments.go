package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	streamagg "repro"
	"repro/internal/baseline"
	"repro/internal/bcount"
	"repro/internal/cms"
	"repro/internal/countsketch"
	"repro/internal/css"
	"repro/internal/hist"
	"repro/internal/loadgen"
	"repro/internal/mg"
	"repro/internal/minibatch"
	"repro/internal/parallel"
	"repro/internal/swfreq"
	"repro/internal/workload"
	"repro/internal/wsum"
	"repro/metrics"
	"repro/persist"
	"repro/server"
	"repro/trace"
)

// ---------------------------------------------------------------- E1 --

// runE1 compares the shared-structure parallel MG (Theorem 5.2) against
// the independent per-processor approach (Figure 1 / Section 5.4) on
// memory and query cost: the shared structure uses p× less memory and
// needs no merge at query time.
func runE1() {
	const (
		streamLen = 1 << 21
		batchSize = 1 << 15
		eps       = 0.001
	)
	s := int(1/eps) + 1
	stream := workload.Zipf(1, streamLen, 1.1, 1<<20)

	t := newTable("engine", "p", "ingest ns/item", "space words", "query latency")
	// Shared structure (one line, p = all cores).
	shared := mg.New(eps)
	st := minibatch.Drive(minibatch.Func(shared.ProcessBatch), stream, batchSize)
	q0 := time.Now()
	_ = shared.HeavyHitters(0.01)
	sharedQ := time.Since(q0)
	t.add("shared (Thm 5.2)", runtime.GOMAXPROCS(0),
		fmt.Sprintf("%.1f", st.NsPerItem()), shared.SpaceWords(), sharedQ.String())

	for _, p := range []int{1, 2, 4, 8} {
		ind := baseline.NewIndependent(p, s)
		st := minibatch.Drive(minibatch.Func(ind.ProcessBatch), stream, batchSize)
		q0 := time.Now()
		merged := ind.Query() // sequential merge: the bottleneck
		qd := time.Since(q0)
		_ = merged
		t.add("independent+merge", p,
			fmt.Sprintf("%.1f", st.NsPerItem()), ind.SpaceWords(), qd.String())
	}
	t.print()
	fmt.Println("shape check: independent space grows ~p×; shared query needs no merge")
}

// ---------------------------------------------------------------- E2 --

func runE2() {
	const batch = 1 << 15
	t := newTable("n", "eps", "space words", "bound O(log n / eps)", "ns/bit", "max rel err", "guarantee")
	for _, n := range []int64{1 << 16, 1 << 20, 1 << 24} {
		for _, eps := range []float64{0.1, 0.01, 0.001} {
			c := bcount.New(n, eps)
			bits := workload.BurstyBits(n+int64(eps*1000), 1<<21, 1<<14, 0.02, 0.9)
			var window []bool
			start := time.Now()
			var maxRel float64
			for _, b := range workload.BitBatches(bits, batch) {
				c.Advance(css.FromBools(b))
				window = append(window, b...)
				if int64(len(window)) > n {
					window = window[int64(len(window))-n:]
				}
			}
			elapsed := time.Since(start)
			var m int64
			for _, b := range window {
				if b {
					m++
				}
			}
			est := c.Estimate()
			if m > 0 {
				maxRel = float64(est-m) / float64(m)
			}
			// Space bound with explicit constant: (2σ+overhead)·levels.
			bound := c.Levels() * (2*(int(8/eps)+1) + 16)
			t.add(n, eps, c.SpaceWords(), bound,
				fmt.Sprintf("%.2f", float64(elapsed.Nanoseconds())/float64(len(bits))),
				fmt.Sprintf("%.2e", maxRel), eps)
		}
	}
	t.print()
	fmt.Println("shape check: space ~ (1/eps)·log n, flat ns/bit, rel err <= eps")
}

// ---------------------------------------------------------------- E3 --

func runE3() {
	const batch = 1 << 14
	t := newTable("R", "eps", "space words", "ns/value", "rel err", "guarantee")
	n := int64(1 << 18)
	for _, R := range []uint64{255, 65535} {
		for _, eps := range []float64{0.1, 0.01} {
			s := wsum.New(n, R, eps)
			vals := workload.Values(3, 1<<20, R, 2)
			var window []uint64
			start := time.Now()
			for _, b := range workload.Batches(vals, batch) {
				s.Advance(b)
				window = append(window, b...)
				if int64(len(window)) > n {
					window = window[int64(len(window))-n:]
				}
			}
			elapsed := time.Since(start)
			var truth int64
			for _, v := range window {
				truth += int64(v)
			}
			rel := 0.0
			if truth > 0 {
				rel = float64(s.Estimate()-truth) / float64(truth)
			}
			t.add(R, eps, s.SpaceWords(),
				fmt.Sprintf("%.1f", float64(elapsed.Nanoseconds())/float64(len(vals))),
				fmt.Sprintf("%.2e", rel), eps)
		}
	}
	t.print()
	fmt.Println("shape check: space and work scale ~log R; rel err <= eps")
}

// ---------------------------------------------------------------- E4 --

func runE4() {
	const streamLen = 1 << 21
	const batch = 1 << 15
	t := newTable("zipf s", "eps", "ns/item", "space words", "max err / eps*m")
	for _, skew := range []float64{0.8, 1.1, 1.5} {
		for _, eps := range []float64{1e-2, 1e-3, 1e-4} {
			g := mg.New(eps)
			stream := workload.Zipf(int64(skew*10), streamLen, 1.00001+skew, 1<<20)
			exact := make(map[uint64]int64)
			st := minibatch.Drive(minibatch.Func(g.ProcessBatch), stream, batch)
			for _, it := range stream {
				exact[it]++
			}
			worst := 0.0
			bound := eps * float64(streamLen)
			for it, fe := range exact {
				if r := float64(fe-g.Estimate(it)) / bound; r > worst {
					worst = r
				}
			}
			t.add(fmt.Sprintf("%.1f", skew), eps,
				fmt.Sprintf("%.1f", st.NsPerItem()), g.SpaceWords(),
				fmt.Sprintf("%.3f", worst))
		}
	}
	t.print()
	fmt.Println("shape check: flat ns/item in eps; space ~ 1/eps; err ratio <= 1")
}

// ---------------------------------------------------------------- E5 --

func runE5() {
	const (
		n         = int64(1 << 20)
		eps       = 1.0 / 128
		streamLen = 1 << 21
		batch     = 1 << 14
	)
	stream := workload.Zipf(5, streamLen, 1.1, 1<<18)
	t := newTable("variant", "ns/item", "persistent space words", "live counters")
	for _, v := range []swfreq.Variant{swfreq.Basic, swfreq.SpaceEfficient, swfreq.WorkEfficient} {
		e := swfreq.New(n, eps, v)
		st := minibatch.Drive(minibatch.Func(e.ProcessBatch), stream, batch)
		t.add(v.String(), fmt.Sprintf("%.1f", st.NsPerItem()), e.SpaceWords(), e.NumCounters())
	}
	lt := baseline.NewLTSliding(n, eps)
	st := minibatch.Drive(minibatch.Func(lt.ProcessBatch), stream, batch)
	t.add("seq lee-ting [LT06b]", fmt.Sprintf("%.1f", st.NsPerItem()), lt.SpaceWords(), lt.Size())
	t.print()
	fmt.Println("shape check: basic space >> pruned variants; work-efficient fastest per item")
}

// ---------------------------------------------------------------- E6 --

func runE6() {
	const streamLen = 1 << 20
	const batch = 1 << 14
	t := newTable("eps", "delta", "d x w", "ns/item", "space words", "frac > eps*m")
	for _, eps := range []float64{1e-3, 1e-4} {
		for _, delta := range []float64{1.0 / 16, 1.0 / 256, 1.0 / 4096} {
			s := cms.New(eps, delta, 11)
			stream := workload.Zipf(9, streamLen, 1.2, 1<<18)
			st := minibatch.Drive(minibatch.Func(s.ProcessBatch), stream, batch)
			exact := make(map[uint64]int64)
			for _, it := range stream {
				exact[it]++
			}
			bad := 0
			for it, fe := range exact {
				if float64(s.Query(it)-fe) > eps*float64(streamLen) {
					bad++
				}
			}
			t.add(eps, fmt.Sprintf("%.2e", delta),
				fmt.Sprintf("%dx%d", s.Depth(), s.Width()),
				fmt.Sprintf("%.1f", st.NsPerItem()), s.SpaceWords(),
				fmt.Sprintf("%.2e (δ=%.0e)", float64(bad)/float64(len(exact)), delta))
		}
	}
	t.print()
	fmt.Println("shape check: work ~ log(1/δ) per item; violation rate << δ")
}

// ---------------------------------------------------------------- E7 --

func runE7() {
	const batch = 1 << 14
	t := newTable("engine", "N", "ns/item")
	for _, N := range []int{1 << 18, 1 << 20, 1 << 22} {
		stream := workload.Zipf(13, N, 1.1, 1<<18)
		g := mg.New(1e-3)
		st := minibatch.Drive(minibatch.Func(g.ProcessBatch), stream, batch)
		t.add("mg-infinite", N, fmt.Sprintf("%.1f", st.NsPerItem()))
	}
	for _, n := range []int64{1 << 16, 1 << 20, 1 << 24} {
		stream := workload.Zipf(17, 1<<20, 1.1, 1<<18)
		e := swfreq.New(n, 1.0/128, swfreq.WorkEfficient)
		st := minibatch.Drive(minibatch.Func(e.ProcessBatch), stream, batch)
		t.add(fmt.Sprintf("sw-work (window %d)", n), 1<<20, fmt.Sprintf("%.1f", st.NsPerItem()))
	}
	t.print()
	fmt.Println("shape check: ns/item flat in stream length and in window size (work Θ(N))")
}

// ---------------------------------------------------------------- E8 --

func runE8() {
	fmt.Println("guaranteed error bound vs worst measured error (tightness = measured/bound):")
	t := newTable("aggregate", "bound", "worst measured", "tightness")

	// Basic counting.
	{
		n, eps := int64(1<<18), 0.01
		c := bcount.New(n, eps)
		bits := workload.BurstyBits(21, 1<<20, 1<<13, 0.05, 0.9)
		var window []bool
		worst := 0.0
		for _, b := range workload.BitBatches(bits, 1<<14) {
			c.Advance(css.FromBools(b))
			window = append(window, b...)
			if int64(len(window)) > n {
				window = window[int64(len(window))-n:]
			}
			var m int64
			for _, x := range window {
				if x {
					m++
				}
			}
			if m > 0 {
				if r := float64(c.Estimate()-m) / (eps * float64(m)); r > worst {
					worst = r
				}
			}
		}
		t.add("basic counting (4.1)", "eps*m", fmt.Sprintf("%.3f·bound", worst), fmt.Sprintf("%.3f", worst))
	}
	// Sum.
	{
		n, eps, R := int64(1<<16), 0.01, uint64(4095)
		s := wsum.New(n, R, eps)
		vals := workload.Values(23, 1<<19, R, 2)
		var window []uint64
		worst := 0.0
		for _, b := range workload.Batches(vals, 1<<13) {
			s.Advance(b)
			window = append(window, b...)
			if int64(len(window)) > n {
				window = window[int64(len(window))-n:]
			}
		}
		var truth int64
		for _, v := range window {
			truth += int64(v)
		}
		if truth > 0 {
			worst = float64(s.Estimate()-truth) / (eps * float64(truth))
		}
		t.add("sum (4.2)", "eps*sum", fmt.Sprintf("%.3f·bound", worst), fmt.Sprintf("%.3f", worst))
	}
	// Infinite-window MG.
	{
		eps := 1e-3
		g := mg.New(eps)
		stream := workload.Zipf(25, 1<<20, 1.1, 1<<18)
		exact := make(map[uint64]int64)
		for _, b := range workload.Batches(stream, 1<<14) {
			g.ProcessBatch(b)
			for _, it := range b {
				exact[it]++
			}
		}
		worst := 0.0
		bound := eps * float64(g.StreamLen())
		for it, fe := range exact {
			if r := float64(fe-g.Estimate(it)) / bound; r > worst {
				worst = r
			}
		}
		t.add("freq est inf (5.2)", "eps*m", fmt.Sprintf("%.3f·bound", worst), fmt.Sprintf("%.3f", worst))
	}
	// Sliding-window variants.
	for _, v := range []swfreq.Variant{swfreq.Basic, swfreq.SpaceEfficient, swfreq.WorkEfficient} {
		n, eps := int64(1<<14), 0.02
		e := swfreq.New(n, eps, v)
		stream := workload.Zipf(27+int64(v), 1<<18, 1.2, 1<<14)
		var window []uint64
		for _, b := range workload.Batches(stream, 1<<12) {
			e.ProcessBatch(b)
			window = append(window, b...)
			if int64(len(window)) > n {
				window = window[int64(len(window))-n:]
			}
		}
		exact := make(map[uint64]int64)
		for _, it := range window {
			exact[it]++
		}
		worst := 0.0
		bound := eps * float64(n)
		for it, fe := range exact {
			if r := float64(fe-e.Estimate(it)) / bound; r > worst {
				worst = r
			}
		}
		t.add("freq est sw/"+v.String()+" (5.3)", "eps*n",
			fmt.Sprintf("%.3f·bound", worst), fmt.Sprintf("%.3f", worst))
	}
	// Count-min.
	{
		eps, delta := 1e-3, 1e-3
		s := cms.New(eps, delta, 31)
		stream := workload.Zipf(29, 1<<20, 1.2, 1<<18)
		for _, b := range workload.Batches(stream, 1<<14) {
			s.ProcessBatch(b)
		}
		exact := make(map[uint64]int64)
		for _, it := range stream {
			exact[it]++
		}
		worst := 0.0
		bound := eps * float64(s.TotalCount())
		for it, fe := range exact {
			if r := float64(s.Query(it)-fe) / bound; r > worst {
				worst = r
			}
		}
		t.add("count-min (6.1)", "eps*m w.p. 1-δ", fmt.Sprintf("%.3f·bound", worst), fmt.Sprintf("%.3f", worst))
	}
	t.print()
	fmt.Println("shape check: every deterministic tightness <= 1; count-min <= 1 except w.p. δ")
}

// ---------------------------------------------------------------- E9 --

func runE9() {
	const streamLen = 1 << 21
	const batch = 1 << 17
	maxP := runtime.GOMAXPROCS(0)
	var ps []int
	for p := 1; p <= maxP; p *= 2 {
		ps = append(ps, p)
	}
	t := newTable(append([]string{"engine"}, func() []string {
		var h []string
		for _, p := range ps {
			h = append(h, fmt.Sprintf("p=%d Mitem/s", p))
		}
		return h
	}()...)...)

	run := func(name string, mk func() minibatch.Engine) {
		row := []any{name}
		for _, p := range ps {
			parallel.SetWorkers(p)
			e := mk()
			stream := workload.Zipf(37, streamLen, 1.1, 1<<18)
			st := minibatch.Drive(e, stream, batch)
			row = append(row, fmt.Sprintf("%.1f", st.ItemsPerSec()/1e6))
		}
		parallel.SetWorkers(0)
		t.add(row...)
	}
	run("mg-infinite (5.2)", func() minibatch.Engine { return mg.New(1e-3) })
	run("sw-work (5.4)", func() minibatch.Engine { return swfreq.New(1<<20, 1.0/128, swfreq.WorkEfficient) })
	run("count-min (6.1)", func() minibatch.Engine { return cms.New(1e-4, 1e-3, 41) })
	run("bcount (4.1)", func() minibatch.Engine {
		c := bcount.New(1<<20, 0.001)
		return minibatch.Func(func(items []uint64) {
			c.Advance(css.FromFunc(len(items), func(i int) bool { return items[i]&1 == 1 }))
		})
	})
	t.print()
	fmt.Println("shape check: throughput grows with p (low depth); see E1 for the merge bottleneck")
}

// --------------------------------------------------------------- E10 --

func runE10() {
	t := newTable("substrate", "n", "ns/elem")
	for _, n := range []int{1 << 18, 1 << 20, 1 << 22} {
		keys := make([]uint32, n)
		vals := make([]int32, n)
		stream := workload.Uniform(43, n, uint64(4*n))
		for i := range keys {
			keys[i] = uint32(stream[i])
			vals[i] = int32(i)
		}
		start := time.Now()
		parallel.RadixSortPairs(keys, vals, uint32(4*n))
		t.add("intSort (Thm 2.2)", n, fmt.Sprintf("%.2f", float64(time.Since(start).Nanoseconds())/float64(n)))
	}
	for _, n := range []int{1 << 18, 1 << 20, 1 << 22} {
		stream := workload.Zipf(47, n, 1.1, 1<<16)
		start := time.Now()
		_ = hist.Build(stream, 7)
		t.add("buildHist (Thm 2.3)", n, fmt.Sprintf("%.2f", float64(time.Since(start).Nanoseconds())/float64(n)))
	}
	for _, n := range []int{1 << 20, 1 << 22} {
		bits := workload.Bits(51, n, 0.3)
		start := time.Now()
		_ = css.FromBools(bits)
		t.add("CSS build (Lemma 2.1)", n, fmt.Sprintf("%.2f", float64(time.Since(start).Nanoseconds())/float64(n)))
	}
	t.print()
	fmt.Println("shape check: ns/elem flat in n for all three (linear work)")
}

// --------------------------------------------------------------- E11 --

// runE11 measures the public API's multi-aggregate Pipeline: the same
// four aggregates ingested via the Pipeline's concurrent fan-out (one
// goroutine per aggregate, shared worker budget) against ingesting them
// one after another — the hand-rolled loop the Pipeline replaces.
func runE11() {
	const (
		streamLen = 1 << 20
		batchSize = 1 << 15
	)
	stream := workload.Zipf(53, streamLen, 1.1, 1<<18)
	batches := workload.Batches(stream, batchSize)

	build := func() []streamagg.Aggregate {
		mk := func(kind streamagg.Kind, opts ...streamagg.Option) streamagg.Aggregate {
			a, err := streamagg.New(kind, opts...)
			if err != nil {
				panic(err)
			}
			return a
		}
		return []streamagg.Aggregate{
			mk(streamagg.KindFreq, streamagg.WithEpsilon(1e-3)),
			mk(streamagg.KindSlidingFreq,
				streamagg.WithWindow(1<<18), streamagg.WithEpsilon(1.0/128),
				streamagg.WithVariant(streamagg.VariantWorkEfficient)),
			mk(streamagg.KindCountMin,
				streamagg.WithEpsilon(1e-4), streamagg.WithDelta(1e-3), streamagg.WithSeed(7)),
			mk(streamagg.KindCountSketch,
				streamagg.WithEpsilon(0.01), streamagg.WithDelta(1e-3), streamagg.WithSeed(9)),
		}
	}
	names := []string{"freq", "sliding", "count-min", "count-sketch"}

	t := newTable("fan-out", "aggregates", "ns/item", "Mitem/s")
	{
		aggs := build()
		start := time.Now()
		for _, b := range batches {
			for _, a := range aggs {
				if err := a.ProcessBatch(b); err != nil {
					panic(err)
				}
			}
		}
		el := time.Since(start)
		t.add("sequential loop", len(aggs),
			fmt.Sprintf("%.1f", float64(el.Nanoseconds())/float64(streamLen)),
			fmt.Sprintf("%.1f", float64(streamLen)/el.Seconds()/1e6))
		record("E11", "sequential loop", map[string]any{"aggregates": len(aggs), "batch": batchSize},
			float64(el.Nanoseconds())/float64(streamLen), float64(streamLen)/el.Seconds())
	}
	{
		p := streamagg.NewPipeline()
		for i, a := range build() {
			if err := p.Register(names[i], a); err != nil {
				panic(err)
			}
		}
		start := time.Now()
		for _, b := range batches {
			if err := p.ProcessBatch(b); err != nil {
				panic(err)
			}
		}
		el := time.Since(start)
		t.add("pipeline (concurrent)", p.Len(),
			fmt.Sprintf("%.1f", float64(el.Nanoseconds())/float64(streamLen)),
			fmt.Sprintf("%.1f", float64(streamLen)/el.Seconds()/1e6))
		record("E11", "pipeline (concurrent)", map[string]any{"aggregates": p.Len(), "batch": batchSize},
			float64(el.Nanoseconds())/float64(streamLen), float64(streamLen)/el.Seconds())

		ckpt, err := p.MarshalBinary()
		if err != nil {
			panic(err)
		}
		t.print()
		fmt.Printf("whole-pipeline checkpoint: %d bytes for %d aggregates at stream position %d\n",
			len(ckpt), p.Len(), p.StreamLen())
	}
	fmt.Println("shape check: concurrent fan-out at least matches the sequential loop")
}

// ---------------------------------------------------------------- E12 --

// runE12 measures the sharded ingestion axis: the same minibatch stream
// through one shared structure (the paper's intra-minibatch parallelism
// alone) vs the Sharded wrapper at increasing shard counts, which adds
// coarse-grained parallelism across independent shards on top. Shards
// help once the single structure's parallel phases stop scaling (their
// sequential fractions — histogram merge, per-row bookkeeping — bound
// intra-batch speedup); on a single core the sharded rows only show the
// partitioning overhead.
func runE12() {
	const (
		streamLen = 1 << 21
		batchSize = 1 << 16
	)
	stream := workload.Zipf(67, streamLen, 1.1, 1<<20)
	batches := workload.Batches(stream, batchSize)
	fmt.Printf("GOMAXPROCS=%d workers=%d\n", runtime.GOMAXPROCS(0), parallel.Workers())

	ingest := func(agg streamagg.Aggregate) float64 {
		start := time.Now()
		for _, b := range batches {
			if err := agg.ProcessBatch(b); err != nil {
				panic(err)
			}
		}
		return time.Since(start).Seconds()
	}

	for _, cfg := range []struct {
		name string
		kind streamagg.Kind
		opts []streamagg.Option
	}{
		{"count-min", streamagg.KindCountMin,
			[]streamagg.Option{streamagg.WithEpsilon(1e-4), streamagg.WithDelta(1e-3), streamagg.WithSeed(7)}},
		{"freq (misra-gries)", streamagg.KindFreq,
			[]streamagg.Option{streamagg.WithEpsilon(1e-3)}},
	} {
		t := newTable("engine", "shards", "ns/item", "Mitem/s", "vs baseline")
		base, err := streamagg.New(cfg.kind, cfg.opts...)
		if err != nil {
			panic(err)
		}
		baseSec := ingest(base)
		t.add("single structure", 1,
			fmt.Sprintf("%.1f", baseSec*1e9/streamLen),
			fmt.Sprintf("%.1f", streamLen/baseSec/1e6), "1.00x")
		record("E12", cfg.name, map[string]any{"shards": 1, "batch": batchSize},
			baseSec*1e9/streamLen, streamLen/baseSec)
		for _, shards := range []int{2, 4, 8} {
			s, err := streamagg.NewSharded(cfg.kind, shards, cfg.opts...)
			if err != nil {
				panic(err)
			}
			sec := ingest(s)
			t.add("sharded", shards,
				fmt.Sprintf("%.1f", sec*1e9/streamLen),
				fmt.Sprintf("%.1f", streamLen/sec/1e6),
				fmt.Sprintf("%.2fx", baseSec/sec))
			record("E12", cfg.name, map[string]any{"shards": shards, "batch": batchSize},
				sec*1e9/streamLen, streamLen/sec)
		}
		fmt.Printf("\n%s:\n", cfg.name)
		t.print()
	}
	fmt.Println("\nshape check: sharded throughput should scale with shard count on multicore hardware")
}

// ---------------------------------------------------------------- E13 --

// runE13 measures the serving layer's async minibatcher: the same stream
// arriving as request-sized PutBatch calls, coalesced by the Ingestor at
// different flush thresholds and latency budgets, against the direct
// synchronous baseline. The threshold sweep traces the paper's minibatch
// cost model — per-item cost falls as batches grow and the parallel
// update's fixed overhead amortizes — while the latency column shows
// what the timer costs when traffic is too light to fill a batch.
func runE13() {
	const (
		streamLen = 1 << 21
		chunk     = 256 // request-sized producer batches
	)
	stream := workload.Zipf(79, streamLen, 1.1, 1<<18)
	chunks := workload.Batches(stream, chunk)
	mkSink := func() streamagg.Aggregate {
		agg, err := streamagg.New(streamagg.KindCountMin,
			streamagg.WithEpsilon(1e-4), streamagg.WithDelta(1e-3), streamagg.WithSeed(7))
		if err != nil {
			panic(err)
		}
		return agg
	}

	t := newTable("mode", "batch", "latency", "ns/item", "Mitem/s", "sink batches", "mean batch")
	{
		agg := mkSink()
		start := time.Now()
		for _, c := range chunks {
			if err := agg.ProcessBatch(c); err != nil {
				panic(err)
			}
		}
		sec := time.Since(start).Seconds()
		t.add("direct sync", chunk, "-",
			fmt.Sprintf("%.1f", sec*1e9/streamLen),
			fmt.Sprintf("%.1f", streamLen/sec/1e6),
			len(chunks), chunk)
		record("E13", "direct sync", map[string]any{"chunk": chunk},
			sec*1e9/streamLen, streamLen/sec)
	}
	for _, batchSize := range []int{1024, 8192, 65536} {
		for _, latency := range []time.Duration{100 * time.Microsecond, 5 * time.Millisecond} {
			in, err := streamagg.NewIngestor(mkSink(),
				streamagg.WithBatchSize(batchSize),
				streamagg.WithMaxLatency(latency),
				streamagg.WithQueueCap(4*batchSize+chunk))
			if err != nil {
				panic(err)
			}
			start := time.Now()
			for _, c := range chunks {
				if _, err := in.PutBatch(c); err != nil {
					panic(err)
				}
			}
			if err := in.Close(); err != nil {
				panic(err)
			}
			sec := time.Since(start).Seconds()
			st := in.Stats()
			mean := 0
			if st.Batches > 0 {
				mean = int(st.Processed / st.Batches)
			}
			t.add("ingestor", batchSize, latency.String(),
				fmt.Sprintf("%.1f", sec*1e9/streamLen),
				fmt.Sprintf("%.1f", streamLen/sec/1e6),
				st.Batches, mean)
			record("E13", "ingestor",
				map[string]any{"batch": batchSize, "latency": latency.String(), "chunk": chunk},
				sec*1e9/streamLen, streamLen/sec)
		}
	}
	t.print()
	fmt.Println("shape check: ns/item falls as the flush threshold grows (minibatch amortization);")
	fmt.Println("the latency budget only matters when the size threshold is rarely reached")
}

// ---------------------------------------------------------------- E14 --

// runE14 measures what durability costs at the flush boundary: the same
// request-sized stream through the Ingestor with no data directory
// (memory only), then with the WAL under each fsync policy. Because a
// WAL record is a whole minibatch, the append is one sequential write —
// and under fsync=always one fsync — per batch, so the overhead
// amortizes exactly like the paper's per-batch parallel overhead; the
// policy column prices the durability window (everything / last
// interval / OS writeback) in throughput.
func runE14() {
	const (
		streamLen = 1 << 20
		chunk     = 256
		batchSize = 8192
	)
	stream := workload.Zipf(97, streamLen, 1.1, 1<<18)
	chunks := workload.Batches(stream, chunk)
	mkSink := func() streamagg.Aggregate {
		agg, err := streamagg.New(streamagg.KindCountMin,
			streamagg.WithEpsilon(1e-4), streamagg.WithDelta(1e-3), streamagg.WithSeed(7))
		if err != nil {
			panic(err)
		}
		return agg
	}
	run := func(opts ...streamagg.Option) (sec float64, batches int64) {
		base := []streamagg.Option{
			streamagg.WithBatchSize(batchSize),
			streamagg.WithMaxLatency(5 * time.Millisecond),
			streamagg.WithQueueCap(4*batchSize + chunk),
		}
		in, err := streamagg.NewIngestor(mkSink(), append(base, opts...)...)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		for _, c := range chunks {
			if _, err := in.PutBatch(c); err != nil {
				panic(err)
			}
		}
		if err := in.Flush(); err != nil {
			panic(err)
		}
		sec = time.Since(start).Seconds()
		st := in.Stats()
		if err := in.Close(); err != nil {
			panic(err)
		}
		return sec, st.Batches
	}

	t := newTable("durability", "fsync", "ns/item", "Mitem/s", "vs memory-only")
	baseSec, _ := run()
	t.add("memory only", "-",
		fmt.Sprintf("%.1f", baseSec*1e9/streamLen),
		fmt.Sprintf("%.1f", streamLen/baseSec/1e6), "1.00x")
	record("E14", "memory only", map[string]any{"batch": batchSize, "chunk": chunk},
		baseSec*1e9/streamLen, streamLen/baseSec)
	for _, policy := range []persist.Fsync{persist.FsyncNever, persist.FsyncInterval, persist.FsyncAlways} {
		dir, err := os.MkdirTemp("", "aggbench-e14-*")
		if err != nil {
			panic(err)
		}
		sec, _ := run(streamagg.WithDataDir(dir), streamagg.WithFsync(policy))
		os.RemoveAll(dir)
		t.add("wal", policy.String(),
			fmt.Sprintf("%.1f", sec*1e9/streamLen),
			fmt.Sprintf("%.1f", streamLen/sec/1e6),
			fmt.Sprintf("%.2fx", baseSec/sec))
		record("E14", "wal", map[string]any{"fsync": policy.String(), "batch": batchSize, "chunk": chunk},
			sec*1e9/streamLen, streamLen/sec)
	}
	t.print()
	fmt.Println("shape check: never ~ memory-only (one extra sequential write per batch);")
	fmt.Println("always pays one fsync per minibatch, amortized across its items")
}

// ---------------------------------------------------------------- E15 --

// runE15 prices the observability subsystem on the ingest hot path. The
// instrumentation budget is strict — counters must be atomic, no locks
// — so the experiment measures three levels: the raw cost of one
// Counter.Add and one Histogram.Observe (the only operations the hot
// path executes), the end-to-end instrumented Ingestor throughput in
// E13's configuration, and the delta against the committed
// BENCH_E13.json trajectory row (the pre-instrumentation measurement).
// Target: < 2% throughput overhead vs the E13 baseline.
func runE15() {
	const (
		streamLen = 1 << 21
		chunk     = 256
		batchSize = 8192
	)

	t := newTable("path", "config", "ns/unit", "Munit/s")
	// Raw instrument cost: the per-item hot-path op is one Counter.Add
	// per PutBatch (amortized over the chunk) plus a handful of adds
	// and two histogram observations per flushed minibatch.
	{
		const ops = 1 << 26
		var c metrics.Counter
		start := time.Now()
		for i := 0; i < ops; i++ {
			c.Add(1)
		}
		el := time.Since(start)
		ns := float64(el.Nanoseconds()) / ops
		t.add("counter Add", "atomic", fmt.Sprintf("%.1f", ns), fmt.Sprintf("%.0f", ops/el.Seconds()/1e6))
		record("E15", "counter add", map[string]any{"ops": ops}, ns, ops/el.Seconds())

		var h metrics.Histogram
		start = time.Now()
		for i := 0; i < ops; i++ {
			h.Observe(uint64(i))
		}
		el = time.Since(start)
		ns = float64(el.Nanoseconds()) / ops
		t.add("histogram Observe", "log2 atomic", fmt.Sprintf("%.1f", ns), fmt.Sprintf("%.0f", ops/el.Seconds()/1e6))
		record("E15", "histogram observe", map[string]any{"ops": ops}, ns, ops/el.Seconds())
	}

	// End-to-end: E13's request-sized chunks through the (now always
	// instrumented) Ingestor, same count-min sink and knobs.
	stream := workload.Zipf(79, streamLen, 1.1, 1<<18)
	chunks := workload.Batches(stream, chunk)
	mkSink := func() streamagg.Aggregate {
		agg, err := streamagg.New(streamagg.KindCountMin,
			streamagg.WithEpsilon(1e-4), streamagg.WithDelta(1e-3), streamagg.WithSeed(7))
		if err != nil {
			panic(err)
		}
		return agg
	}
	var ingestNs float64
	{
		in, err := streamagg.NewIngestor(mkSink(),
			streamagg.WithBatchSize(batchSize),
			streamagg.WithMaxLatency(5*time.Millisecond),
			streamagg.WithQueueCap(4*batchSize+chunk))
		if err != nil {
			panic(err)
		}
		start := time.Now()
		for _, c := range chunks {
			if _, err := in.PutBatch(c); err != nil {
				panic(err)
			}
		}
		if err := in.Close(); err != nil {
			panic(err)
		}
		sec := time.Since(start).Seconds()
		ingestNs = sec * 1e9 / streamLen
		t.add("ingestor (instrumented)", fmt.Sprintf("batch %d", batchSize),
			fmt.Sprintf("%.1f", ingestNs), fmt.Sprintf("%.1f", streamLen/sec/1e6))
		record("E15", "ingestor instrumented",
			map[string]any{"batch": batchSize, "latency": "5ms", "chunk": chunk},
			ingestNs, streamLen/sec)
	}
	t.print()

	// Overhead vs the committed E13 trajectory row, when present (the
	// BENCH_E13.json at the repo root predates the instrumentation).
	if base, ok := loadBenchRecord("BENCH_E13.json", "ingestor", "batch", batchSize); ok {
		pct := (ingestNs - base.NsPerItem) / base.NsPerItem * 100
		fmt.Printf("instrumentation overhead vs committed E13 (batch %d): %+.1f%% (%.1f -> %.1f ns/item)\n",
			batchSize, pct, base.NsPerItem, ingestNs)
		record("E15", "overhead vs E13",
			map[string]any{"batch": batchSize, "overhead_pct": fmt.Sprintf("%.1f", pct)},
			ingestNs-base.NsPerItem, 0)
	} else {
		fmt.Println("no committed BENCH_E13.json row to compare against")
	}
	fmt.Println("shape check: per-item hot-path cost is one atomic add amortized over the")
	fmt.Println("producer chunk; target < 2% end-to-end overhead vs the E13 baseline")
}

// ---------------------------------------------------------------- E16 --

// runE16 measures federation merge cost against summary size for every
// mergeable kind. The mergeable-summaries property says a merge touches
// only the summaries, never the stream, so cost should scale with the
// summary footprint (O(1/ε) for MG, O(1/ε · log 1/δ) cells for the
// linear sketches) and be flat in the stream length behind them — the
// whole point of edge→root fan-in.
func runE16() {
	const streamLen = 1 << 19

	type config struct {
		kind streamagg.Kind
		eps  float64
		opts []streamagg.Option
	}
	var configs []config
	for _, eps := range []float64{0.01, 0.003, 0.001} {
		configs = append(configs,
			config{streamagg.KindFreq, eps,
				[]streamagg.Option{streamagg.WithEpsilon(eps)}},
			config{streamagg.KindCountMin, eps,
				[]streamagg.Option{streamagg.WithEpsilon(eps), streamagg.WithSeed(7)}},
			config{streamagg.KindCountMinRange, eps,
				[]streamagg.Option{streamagg.WithUniverseBits(20),
					streamagg.WithEpsilon(eps), streamagg.WithSeed(3)}},
		)
	}
	// Count-sketch width is O(1/ε²), not O(1/ε); the same eps ladder
	// would balloon to ~10⁷ words, so it gets its own scale.
	for _, eps := range []float64{0.03, 0.01, 0.003} {
		configs = append(configs, config{streamagg.KindCountSketch, eps,
			[]streamagg.Option{streamagg.WithEpsilon(eps), streamagg.WithSeed(5)}})
	}

	streamA := workload.Zipf(161, streamLen, 1.1, 1<<18)
	streamB := workload.Zipf(162, streamLen, 1.1, 1<<18)

	t := newTable("kind", "eps", "space words", "merge µs", "ns/word")
	for _, c := range configs {
		mk := func(stream []uint64) streamagg.Aggregate {
			agg, err := streamagg.New(c.kind, c.opts...)
			if err != nil {
				panic(err)
			}
			if err := agg.ProcessBatch(stream); err != nil {
				panic(err)
			}
			return agg
		}
		a, b := mk(streamA), mk(streamB)
		ckpt, err := a.MarshalBinary()
		if err != nil {
			panic(err)
		}
		// The per-iteration restores churn the heap; keep collector
		// pauses out of the timed region so the minimum is a clean
		// merge, not a merge plus a GC cycle.
		runtime.GC()
		gcPct := debug.SetGCPercent(400)
		// Merge is destructive on the receiver, so each iteration
		// restores a fresh copy from the checkpoint; only the Merge
		// call itself is on the clock, and the fastest iteration is the
		// figure of merit (the minimum is the run least disturbed by
		// the scheduler, so it is stable enough for the -check gate).
		var merges int
		var elapsed time.Duration
		perMerge := time.Duration(1<<62 - 1)
		for elapsed < 200*time.Millisecond || merges < 5 {
			dst, err := streamagg.UnmarshalAggregate(ckpt)
			if err != nil {
				panic(err)
			}
			start := time.Now()
			if err := dst.(streamagg.Merger).Merge(b); err != nil {
				panic(err)
			}
			d := time.Since(start)
			elapsed += d
			merges++
			if d < perMerge {
				perMerge = d
			}
		}
		debug.SetGCPercent(gcPct)
		words := a.SpaceWords()
		nsPerWord := float64(perMerge.Nanoseconds()) / float64(words)
		t.add(string(c.kind), fmt.Sprintf("%g", c.eps), words,
			fmt.Sprintf("%.1f", float64(perMerge.Nanoseconds())/1e3),
			fmt.Sprintf("%.1f", nsPerWord))
		record("E16", fmt.Sprintf("%s eps=%g", c.kind, c.eps),
			map[string]any{"kind": string(c.kind), "eps": c.eps},
			nsPerWord, 1e9/float64(perMerge.Nanoseconds()))
	}
	t.print()
	fmt.Println("shape check: merge cost tracks the summary footprint (ns/word roughly")
	fmt.Println("flat per kind as eps shrinks) and never touches the stream behind it")
}

// ---------------------------------------------------------------- E17 --

// runE17 profiles the steady-state ingest hot path for time and
// allocations together: ns/item and allocs/item for the sketch batch
// paths under both hash schemes — the legacy pairwise-hash-per-row
// addressing vs the derived one-hash-per-item scheme (Kirsch–
// Mitzenmacher) — and for the serving-path wrappers (Ingestor flush
// loop, Sharded partition + ingest) whose scratch reuse is required to
// hold steady-state allocations at zero per item. Allocation counts come
// from the runtime's Mallocs counter around the timed region, so they
// include every goroutine the parallel primitives fork; the fixed
// fork-join bookkeeping is a handful of objects per batch and shows up
// as allocs/item ≈ 0 at serving batch sizes.
func runE17() {
	const (
		streamLen = 1 << 21
		batchSize = 8192
		d         = 7
		w         = 1 << 15
	)
	stream := workload.Zipf(211, streamLen, 1.1, 1<<18)
	batches := workload.Batches(stream, batchSize)

	measure := func(f func()) (nsPerItem, itemsPerSec, allocsPerItem float64) {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		f()
		sec := time.Since(start).Seconds()
		runtime.ReadMemStats(&after)
		allocs := float64(after.Mallocs - before.Mallocs)
		return sec * 1e9 / streamLen, streamLen / sec, allocs / streamLen
	}

	t := newTable("path", "scheme", "ns/item", "Mitem/s", "allocs/item", "speedup")
	schemeName := map[int]string{0: "legacy pairwise", 1: "derived"}

	addSketch := func(path string, run func(scheme int) func()) {
		var legacyNs float64
		for _, scheme := range []int{0, 1} {
			body := run(scheme)
			body() // warm the per-instance scratch outside the clock
			ns, ips, allocs := measure(body)
			speedup := "-"
			if scheme == 0 {
				legacyNs = ns
			} else if ns > 0 {
				speedup = fmt.Sprintf("%.2fx", legacyNs/ns)
			}
			t.add(path, schemeName[scheme],
				fmt.Sprintf("%.1f", ns), fmt.Sprintf("%.1f", ips/1e6),
				fmt.Sprintf("%.4f", allocs), speedup)
			recordAllocs("E17", fmt.Sprintf("%s %s", path, schemeName[scheme]),
				map[string]any{"d": d, "w": w, "batch": batchSize},
				ns, ips, allocs)
		}
	}

	addSketch("cms batch", func(scheme int) func() {
		s := cms.NewWithDimsScheme(d, w, 7, scheme)
		return func() {
			for _, b := range batches {
				s.ProcessBatch(b)
			}
		}
	})
	addSketch("countsketch batch", func(scheme int) func() {
		s := countsketch.NewWithDimsScheme(d, w, 7, scheme)
		return func() {
			for _, b := range batches {
				s.ProcessBatch(b)
			}
		}
	})

	{
		agg, err := streamagg.New(streamagg.KindCountMin,
			streamagg.WithEpsilon(1e-4), streamagg.WithDelta(1e-3), streamagg.WithSeed(7))
		if err != nil {
			panic(err)
		}
		in, err := streamagg.NewIngestor(agg,
			streamagg.WithBatchSize(batchSize), streamagg.WithQueueCap(4*batchSize))
		if err != nil {
			panic(err)
		}
		run := func() {
			for _, b := range batches {
				if _, err := in.PutBatch(b); err != nil {
					panic(err)
				}
			}
			if err := in.Flush(); err != nil {
				panic(err)
			}
		}
		run() // warm queue buffers and sketch scratch
		ns, ips, allocs := measure(run)
		if err := in.Close(); err != nil {
			panic(err)
		}
		t.add("ingestor steady-state", "derived",
			fmt.Sprintf("%.1f", ns), fmt.Sprintf("%.1f", ips/1e6),
			fmt.Sprintf("%.4f", allocs), "-")
		recordAllocs("E17", "ingestor steady-state",
			map[string]any{"batch": batchSize}, ns, ips, allocs)
	}

	{
		sh, err := streamagg.NewSharded(streamagg.KindCountMin, 8,
			streamagg.WithEpsilon(1e-4), streamagg.WithDelta(1e-3), streamagg.WithSeed(7))
		if err != nil {
			panic(err)
		}
		run := func() {
			for _, b := range batches {
				if err := sh.ProcessBatch(b); err != nil {
					panic(err)
				}
			}
		}
		run() // warm the partition scratch and every shard
		ns, ips, allocs := measure(run)
		t.add("sharded ingest", "derived",
			fmt.Sprintf("%.1f", ns), fmt.Sprintf("%.1f", ips/1e6),
			fmt.Sprintf("%.4f", allocs), "-")
		recordAllocs("E17", "sharded ingest",
			map[string]any{"batch": batchSize, "shards": 8}, ns, ips, allocs)
	}

	t.print()
	fmt.Println("shape check: derived rows are >= 2x the legacy scheme on ns/item, and the")
	fmt.Println("derived/serving rows hold allocs/item at ~0 (scratch reuse, one hash per item)")
}

// ---------------------------------------------------------------- E18 --

// runE18 measures the distributed-tracing subsystem's cost on the
// steady-state ingest path, the same loop E17's "ingestor steady-state"
// row times: no tracer at all, a tracer with sampling off (the
// production default — nil spans everywhere, so this must be free), and
// sampling every batch's trace (the debugging ceiling: one enqueue
// parent plus flush/WAL-less apply spans recorded per minibatch,
// amortized across its items).
func runE18() {
	const (
		streamLen = 1 << 21
		batchSize = 8192
	)
	stream := workload.Zipf(223, streamLen, 1.1, 1<<18)
	batches := workload.Batches(stream, batchSize)

	measure := func(f func()) (nsPerItem, itemsPerSec, allocsPerItem float64) {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		f()
		sec := time.Since(start).Seconds()
		runtime.ReadMemStats(&after)
		allocs := float64(after.Mallocs - before.Mallocs)
		return sec * 1e9 / streamLen, streamLen / sec, allocs / streamLen
	}

	t := newTable("tracing", "ns/item", "Mitem/s", "allocs/item", "overhead")
	var baseNs float64
	for _, cfg := range []struct {
		label string
		rate  float64
		trace bool
	}{
		{"off (no tracer)", 0, false},
		{"rate 0 (disabled)", 0, true},
		{"rate 1 (every batch)", 1, true},
	} {
		agg, err := streamagg.New(streamagg.KindCountMin,
			streamagg.WithEpsilon(1e-4), streamagg.WithDelta(1e-3), streamagg.WithSeed(7))
		if err != nil {
			panic(err)
		}
		opts := []streamagg.Option{
			streamagg.WithBatchSize(batchSize), streamagg.WithQueueCap(4 * batchSize),
		}
		var tr *trace.Tracer
		if cfg.trace {
			tr = trace.New(trace.Config{SampleRate: cfg.rate})
			opts = append(opts, streamagg.WithTracer(tr))
		}
		in, err := streamagg.NewIngestor(agg, opts...)
		if err != nil {
			panic(err)
		}
		ctx := context.Background()
		run := func() {
			for _, b := range batches {
				// Mirror the serving path: at rate 1 every batch enters
				// under a sampled enqueue context; at rate 0 the span is
				// nil and the context zero-valued, exactly like an
				// untraced HTTP request.
				span := tr.Start("bench.ingest", trace.SpanContext{})
				if _, err := in.PutBatchSpan(ctx, b, span.Context()); err != nil {
					panic(err)
				}
				span.End()
			}
			if err := in.Flush(); err != nil {
				panic(err)
			}
		}
		run() // warm queue buffers, sketch scratch, and (rate 1) the span ring
		ns, ips, allocs := measure(run)
		if err := in.Close(); err != nil {
			panic(err)
		}
		overhead := "-"
		if baseNs == 0 {
			baseNs = ns
		} else if baseNs > 0 {
			overhead = fmt.Sprintf("%+.1f%%", (ns/baseNs-1)*100)
		}
		t.add(cfg.label, fmt.Sprintf("%.1f", ns), fmt.Sprintf("%.1f", ips/1e6),
			fmt.Sprintf("%.4f", allocs), overhead)
		recordAllocs("E18", cfg.label,
			map[string]any{"batch": batchSize, "rate": cfg.rate}, ns, ips, allocs)
	}
	t.print()
	fmt.Println("shape check: the rate-0 row matches the no-tracer row (nil spans, zero")
	fmt.Println("allocations); rate 1 pays a few spans per 8192-item batch — noise-level ns/item")
}

// ---------------------------------------------------------------- E19 --

// runE19 measures what a client actually observes: an in-process
// aggserve (the same demo aggregates the binary boots with) driven by
// the open-loop harness at a fixed offered rate with the default mixed
// verb workload. Because latency is charged against each operation's
// intended start time, a server stall inflates the tail of every
// operation it delayed — the numbers here are coordinated-omission-safe
// and directly comparable to production SLOs. The mixed rows commit a
// p99 SLO the -check gate enforces; the capacity row deliberately
// offers more ingest than one host can serve so achieved items/s is the
// HTTP-path capacity, gated by the usual throughput tolerance.
func runE19() {
	pipe := streamagg.NewPipeline()
	mustAdd := func(name string, kind streamagg.Kind, opts ...streamagg.Option) {
		if _, err := pipe.Add(name, kind, opts...); err != nil {
			panic(err)
		}
	}
	mustAdd("hot", streamagg.KindFreq, streamagg.WithEpsilon(0.001))
	mustAdd("sketch", streamagg.KindCountMin,
		streamagg.WithEpsilon(1e-4), streamagg.WithDelta(1e-3), streamagg.WithSeed(7))
	mustAdd("dist", streamagg.KindCountMinRange, streamagg.WithUniverseBits(20))
	srv, err := server.New(pipe,
		streamagg.WithBatchSize(8192),
		streamagg.WithMaxLatency(5*time.Millisecond),
		streamagg.WithQueueCap(1<<16))
	if err != nil {
		panic(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	latMap := func(p loadgen.Percentiles) map[string]float64 {
		return map[string]float64{"p50": p.P50, "p90": p.P90, "p99": p.P99, "p999": p.P999, "max": p.Max}
	}

	// Rate-gated mixed run: offered well under capacity, so achieved
	// tracks offered on any machine and the interesting signal is the
	// latency distribution. The SLO is generous (~20x the p99 this
	// configuration measures on a quiet host) — it exists to catch
	// serving-path stalls, not machine-to-machine jitter.
	const sloP99Ms = 250
	mix, err := loadgen.ParseMix(loadgen.DefaultMix)
	if err != nil {
		panic(err)
	}
	mixedParams := map[string]any{"rate": 2000, "workers": 4, "batch": 64, "duration": "2s"}
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:   ts.URL,
		Rate:     2000,
		Workers:  4,
		Duration: 2 * time.Second,
		Warmup:   300 * time.Millisecond,
		Mix:      mix,
		Batch:    64,
		Keys:     loadgen.Keys{Seed: 23},
	})
	if err != nil {
		panic(err)
	}
	t := newTable("verb", "ops", "p50 ms", "p90 ms", "p99 ms", "p99.9 ms", "max ms")
	labels := make([]string, 0, len(rep.Verbs))
	for l := range rep.Verbs {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		v := rep.Verbs[l]
		t.add(l, v.Ops, fmt.Sprintf("%.2f", v.Latency.P50), fmt.Sprintf("%.2f", v.Latency.P90),
			fmt.Sprintf("%.2f", v.Latency.P99), fmt.Sprintf("%.2f", v.Latency.P999),
			fmt.Sprintf("%.2f", v.Latency.Max))
		recordLoad("E19", "mixed "+l, mixedParams, 0, 0, 0, latMap(v.Latency), sloP99Ms)
	}
	t.add("all", rep.Ops, fmt.Sprintf("%.2f", rep.Latency.P50), fmt.Sprintf("%.2f", rep.Latency.P90),
		fmt.Sprintf("%.2f", rep.Latency.P99), fmt.Sprintf("%.2f", rep.Latency.P999),
		fmt.Sprintf("%.2f", rep.Latency.Max))
	t.print()
	fmt.Printf("mixed: offered %.0f ops/s, achieved %.1f ops/s (%.1f%%), ingest %.3g items/s, 5xx=%d err=%d\n",
		rep.OfferedPerSec, rep.AchievedPerSec, 100*rep.AchievedPerSec/rep.OfferedPerSec,
		rep.ItemsPerSec, rep.Status["5xx"], rep.Status["error"])
	recordLoad("E19", "mixed open-loop", mixedParams,
		rep.OfferedPerSec, rep.AchievedPerSec, rep.ItemsPerSec, latMap(rep.Latency), sloP99Ms)

	// Capacity probe: ingest-only at an offered rate no single loopback
	// HTTP path reaches, so the harness back-to-back quota turns the run
	// into a saturation measurement. Latency is unbounded by design
	// (open-loop overload), so the row commits no SLO; its achieved
	// items/s is the throughput the perf gate tracks.
	ingMix, err := loadgen.ParseMix("ingest=1")
	if err != nil {
		panic(err)
	}
	rep2, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:   ts.URL,
		Rate:     10000,
		Workers:  8,
		Duration: time.Second,
		Warmup:   200 * time.Millisecond,
		Mix:      ingMix,
		Batch:    512,
		Keys:     loadgen.Keys{Seed: 29},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("capacity: offered %.3g items/s, achieved %.3g items/s (%.0f req/s), p99 %.1fms (overload, informational)\n",
		rep2.OfferedPerSec*512, rep2.ItemsPerSec, rep2.AchievedPerSec, rep2.Latency.P99)
	recordLoad("E19", "capacity ingest",
		map[string]any{"rate": 10000, "workers": 8, "batch": 512},
		rep2.OfferedPerSec, rep2.AchievedPerSec, rep2.ItemsPerSec, latMap(rep2.Latency), 0)
	fmt.Println("shape check: mixed achieved tracks offered (the server keeps the schedule) and")
	fmt.Println("every verb's p99 sits far under the committed SLO; capacity achieved < offered")
}
