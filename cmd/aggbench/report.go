package main

// Machine-trackable benchmark output. With -json, every experiment that
// calls record() also writes BENCH_<experiment>.json next to the table
// it prints, so the perf trajectory can be diffed across PRs without
// scraping stdout.

import (
	"encoding/json"
	"fmt"
	"os"
)

// benchRecord is one measured configuration of one experiment.
type benchRecord struct {
	Experiment  string         `json:"experiment"`
	Label       string         `json:"label"`
	Params      map[string]any `json:"params,omitempty"`
	NsPerItem   float64        `json:"ns_per_item"`
	ItemsPerSec float64        `json:"items_per_sec"`
}

var (
	jsonOut bool
	records = map[string][]benchRecord{}
)

// record registers one measurement; a no-op unless -json is set.
func record(exp, label string, params map[string]any, nsPerItem, itemsPerSec float64) {
	if !jsonOut {
		return
	}
	records[exp] = append(records[exp], benchRecord{
		Experiment:  exp,
		Label:       label,
		Params:      params,
		NsPerItem:   nsPerItem,
		ItemsPerSec: itemsPerSec,
	})
}

// loadBenchRecord reads a committed BENCH_<exp>.json and returns the
// first record with the given label whose integer param key matches
// (and, when the record carries one, whose latency is the 5ms default)
// — the cross-PR baseline E15 compares overhead against.
func loadBenchRecord(path, label, key string, val int) (benchRecord, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return benchRecord{}, false
	}
	var recs []benchRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return benchRecord{}, false
	}
	for _, r := range recs {
		if r.Label != label {
			continue
		}
		f, ok := r.Params[key].(float64)
		if !ok || int(f) != val {
			continue
		}
		if l, has := r.Params["latency"]; has && l != "5ms" {
			continue
		}
		return r, true
	}
	return benchRecord{}, false
}

// writeJSONReports dumps every recorded experiment to
// BENCH_<experiment>.json in the working directory.
func writeJSONReports() {
	for exp, recs := range records {
		path := fmt.Sprintf("BENCH_%s.json", exp)
		data, err := json.MarshalIndent(recs, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "aggbench: encoding %s: %v\n", path, err)
			continue
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "aggbench: writing %s: %v\n", path, err)
			continue
		}
		fmt.Printf("wrote %s (%d records)\n", path, len(recs))
	}
}
