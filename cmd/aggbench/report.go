package main

// Machine-trackable benchmark output. With -json, every experiment that
// calls record() also writes BENCH_<experiment>.json next to the table
// it prints, so the perf trajectory can be diffed across PRs without
// scraping stdout.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// benchRecord is one measured configuration of one experiment.
// AllocsPerItem is reported by the allocation-profiling experiments
// (E17); it is a measurement, not an identity — benchKey deliberately
// hashes only Label+Params, so machine-to-machine alloc jitter never
// splits baselines.
//
// The load-harness experiment (E19) adds the open-loop fields: the
// offered vs achieved rate, the client-observed latency percentiles in
// milliseconds (p50/p90/p99/p999/max, coordinated-omission-safe), and
// an optional p99 SLO in milliseconds. A committed row's SLOP99Ms is an
// enforceable contract: -check fails when the fresh run's p99 exceeds
// it. All are omitempty so earlier BENCH files are untouched.
type benchRecord struct {
	Experiment     string             `json:"experiment"`
	Label          string             `json:"label"`
	Params         map[string]any     `json:"params,omitempty"`
	NsPerItem      float64            `json:"ns_per_item"`
	ItemsPerSec    float64            `json:"items_per_sec"`
	AllocsPerItem  float64            `json:"allocs_per_item,omitempty"`
	OfferedPerSec  float64            `json:"offered_per_sec,omitempty"`
	AchievedPerSec float64            `json:"achieved_per_sec,omitempty"`
	LatencyMs      map[string]float64 `json:"latency_ms,omitempty"`
	SLOP99Ms       float64            `json:"slo_p99_ms,omitempty"`
}

var (
	jsonOut bool
	checkOn bool
	records = map[string][]benchRecord{}
)

// record registers one measurement; a no-op unless -json or -check is
// set.
func record(exp, label string, params map[string]any, nsPerItem, itemsPerSec float64) {
	if !jsonOut && !checkOn {
		return
	}
	records[exp] = append(records[exp], benchRecord{
		Experiment:  exp,
		Label:       label,
		Params:      params,
		NsPerItem:   nsPerItem,
		ItemsPerSec: itemsPerSec,
	})
}

// recordLoad registers one open-loop load measurement: the rate pair,
// the latency percentile map (milliseconds), and the p99 SLO the row
// commits to (0 = no latency contract, e.g. a deliberately-overloaded
// capacity probe). itemsPerSec is the throughput the existing -check
// regression gate compares; pass 0 to exempt a row whose volume is a
// random mix share rather than a stable measurement.
func recordLoad(exp, label string, params map[string]any, offered, achieved, itemsPerSec float64, latencyMs map[string]float64, sloP99Ms float64) {
	if !jsonOut && !checkOn {
		return
	}
	records[exp] = append(records[exp], benchRecord{
		Experiment:     exp,
		Label:          label,
		Params:         params,
		ItemsPerSec:    itemsPerSec,
		OfferedPerSec:  offered,
		AchievedPerSec: achieved,
		LatencyMs:      latencyMs,
		SLOP99Ms:       sloP99Ms,
	})
}

// recordAllocs is record plus an allocations-per-item measurement.
func recordAllocs(exp, label string, params map[string]any, nsPerItem, itemsPerSec, allocsPerItem float64) {
	if !jsonOut && !checkOn {
		return
	}
	records[exp] = append(records[exp], benchRecord{
		Experiment:    exp,
		Label:         label,
		Params:        params,
		NsPerItem:     nsPerItem,
		ItemsPerSec:   itemsPerSec,
		AllocsPerItem: allocsPerItem,
	})
}

// loadBenchRecord reads a committed BENCH_<exp>.json and returns the
// first record with the given label whose integer param key matches
// (and, when the record carries one, whose latency is the 5ms default)
// — the cross-PR baseline E15 compares overhead against.
func loadBenchRecord(path, label, key string, val int) (benchRecord, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return benchRecord{}, false
	}
	var recs []benchRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return benchRecord{}, false
	}
	for _, r := range recs {
		if r.Label != label {
			continue
		}
		f, ok := r.Params[key].(float64)
		if !ok || int(f) != val {
			continue
		}
		if l, has := r.Params["latency"]; has && l != "5ms" {
			continue
		}
		return r, true
	}
	return benchRecord{}, false
}

// benchKey identifies a record across runs: its label plus the params
// map normalized through a JSON round trip (Go writes map keys sorted,
// and the round trip flattens int-vs-float64 differences between
// in-memory and re-read records). Machine-dependent values never belong
// in params.
func benchKey(r benchRecord) string {
	params, err := json.Marshal(r.Params)
	if err != nil {
		params = []byte("{}")
	}
	var norm any
	_ = json.Unmarshal(params, &norm)
	params, _ = json.Marshal(norm)
	return r.Label + "|" + string(params)
}

// checkRegressions compares every in-memory record against the
// committed BENCH_<experiment>.json baseline in the working directory.
// Two gates run per matched row: items/sec must not drop by more than
// tol, and when the baseline row carries a p99 SLO (slo_p99_ms), the
// fresh run's p99 must not exceed it.
//
// A missing or malformed baseline file is a failure, not a skip: every
// row that therefore went uncompared is listed by key so CI output
// says exactly what escaped the gate and how to fix it (run with -json
// and commit the file). Rows absent from an existing baseline are
// listed too but don't fail the check — they're new measurements the
// baseline predates. Returns the total problem count (regressions, SLO
// breaches, and unusable baseline files).
func checkRegressions(tol float64) int {
	problems := 0
	exps := make([]string, 0, len(records))
	for exp := range records {
		exps = append(exps, exp)
	}
	sort.Strings(exps)
	for _, exp := range exps {
		recs := records[exp]
		path := fmt.Sprintf("BENCH_%s.json", exp)
		var baseline []benchRecord
		data, err := os.ReadFile(path)
		if err == nil {
			err = json.Unmarshal(data, &baseline)
		}
		if err != nil {
			problems++
			fmt.Printf("perf check %s: FAIL: baseline %s unusable: %v\n", exp, path, err)
			fmt.Printf("perf check %s: %d rows went uncompared:\n", exp, len(recs))
			for _, r := range recs {
				fmt.Printf("  uncompared: %s\n", benchKey(r))
			}
			fmt.Printf("perf check %s: regenerate with 'aggbench -experiment %s -json' and commit %s\n",
				exp, exp, path)
			continue
		}
		base := make(map[string]benchRecord, len(baseline))
		for _, r := range baseline {
			base[benchKey(r)] = r
		}
		compared, bad := 0, 0
		for _, r := range recs {
			b, ok := base[benchKey(r)]
			if !ok {
				fmt.Printf("perf check %s: no baseline row for %s in %s (new measurement; refresh the file to gate it)\n",
					exp, benchKey(r), path)
				continue
			}
			if b.ItemsPerSec > 0 && r.ItemsPerSec > 0 {
				compared++
				delta := (r.ItemsPerSec - b.ItemsPerSec) / b.ItemsPerSec
				if delta < -tol {
					bad++
					fmt.Printf("perf check %s REGRESSION %q: %.3g -> %.3g items/s (%+.1f%%, tolerance %.0f%%)\n",
						exp, r.Label, b.ItemsPerSec, r.ItemsPerSec, delta*100, tol*100)
				}
			}
			if b.SLOP99Ms > 0 {
				compared++
				p99, ok := r.LatencyMs["p99"]
				if !ok {
					bad++
					fmt.Printf("perf check %s SLO FAIL %q: baseline commits p99 <= %.0fms but the fresh run reported no p99\n",
						exp, r.Label, b.SLOP99Ms)
				} else if p99 > b.SLOP99Ms {
					bad++
					fmt.Printf("perf check %s SLO BREACH %q: p99 %.2fms exceeds the committed SLO %.0fms\n",
						exp, r.Label, p99, b.SLOP99Ms)
				}
			}
		}
		problems += bad
		fmt.Printf("perf check %s: %d comparisons against %s, %d failures\n",
			exp, compared, path, bad)
	}
	return problems
}

// writeJSONReports dumps every recorded experiment to
// BENCH_<experiment>.json in the working directory.
func writeJSONReports() {
	for exp, recs := range records {
		path := fmt.Sprintf("BENCH_%s.json", exp)
		data, err := json.MarshalIndent(recs, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "aggbench: encoding %s: %v\n", path, err)
			continue
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "aggbench: writing %s: %v\n", path, err)
			continue
		}
		fmt.Printf("wrote %s (%d records)\n", path, len(recs))
	}
}
