package main

// Machine-trackable benchmark output. With -json, every experiment that
// calls record() also writes BENCH_<experiment>.json next to the table
// it prints, so the perf trajectory can be diffed across PRs without
// scraping stdout.

import (
	"encoding/json"
	"fmt"
	"os"
)

// benchRecord is one measured configuration of one experiment.
// AllocsPerItem is reported by the allocation-profiling experiments
// (E17); it is a measurement, not an identity — benchKey deliberately
// hashes only Label+Params, so machine-to-machine alloc jitter never
// splits baselines.
type benchRecord struct {
	Experiment    string         `json:"experiment"`
	Label         string         `json:"label"`
	Params        map[string]any `json:"params,omitempty"`
	NsPerItem     float64        `json:"ns_per_item"`
	ItemsPerSec   float64        `json:"items_per_sec"`
	AllocsPerItem float64        `json:"allocs_per_item,omitempty"`
}

var (
	jsonOut bool
	checkOn bool
	records = map[string][]benchRecord{}
)

// record registers one measurement; a no-op unless -json or -check is
// set.
func record(exp, label string, params map[string]any, nsPerItem, itemsPerSec float64) {
	if !jsonOut && !checkOn {
		return
	}
	records[exp] = append(records[exp], benchRecord{
		Experiment:  exp,
		Label:       label,
		Params:      params,
		NsPerItem:   nsPerItem,
		ItemsPerSec: itemsPerSec,
	})
}

// recordAllocs is record plus an allocations-per-item measurement.
func recordAllocs(exp, label string, params map[string]any, nsPerItem, itemsPerSec, allocsPerItem float64) {
	if !jsonOut && !checkOn {
		return
	}
	records[exp] = append(records[exp], benchRecord{
		Experiment:    exp,
		Label:         label,
		Params:        params,
		NsPerItem:     nsPerItem,
		ItemsPerSec:   itemsPerSec,
		AllocsPerItem: allocsPerItem,
	})
}

// loadBenchRecord reads a committed BENCH_<exp>.json and returns the
// first record with the given label whose integer param key matches
// (and, when the record carries one, whose latency is the 5ms default)
// — the cross-PR baseline E15 compares overhead against.
func loadBenchRecord(path, label, key string, val int) (benchRecord, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return benchRecord{}, false
	}
	var recs []benchRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return benchRecord{}, false
	}
	for _, r := range recs {
		if r.Label != label {
			continue
		}
		f, ok := r.Params[key].(float64)
		if !ok || int(f) != val {
			continue
		}
		if l, has := r.Params["latency"]; has && l != "5ms" {
			continue
		}
		return r, true
	}
	return benchRecord{}, false
}

// benchKey identifies a record across runs: its label plus the params
// map normalized through a JSON round trip (Go writes map keys sorted,
// and the round trip flattens int-vs-float64 differences between
// in-memory and re-read records). Machine-dependent values never belong
// in params.
func benchKey(r benchRecord) string {
	params, err := json.Marshal(r.Params)
	if err != nil {
		params = []byte("{}")
	}
	var norm any
	_ = json.Unmarshal(params, &norm)
	params, _ = json.Marshal(norm)
	return r.Label + "|" + string(params)
}

// checkRegressions compares every in-memory record against the
// committed BENCH_<experiment>.json baseline in the working directory
// and reports rows whose items/sec dropped by more than tol. Rows
// missing from the baseline (new measurements) and rows without a
// throughput (ItemsPerSec 0) are skipped. Returns the regression count.
func checkRegressions(tol float64) int {
	regressions := 0
	for exp, recs := range records {
		path := fmt.Sprintf("BENCH_%s.json", exp)
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Printf("perf check %s: no committed baseline (%v), skipping\n", exp, err)
			continue
		}
		var baseline []benchRecord
		if err := json.Unmarshal(data, &baseline); err != nil {
			fmt.Printf("perf check %s: unreadable baseline: %v\n", exp, err)
			continue
		}
		base := make(map[string]benchRecord, len(baseline))
		for _, r := range baseline {
			base[benchKey(r)] = r
		}
		compared := 0
		for _, r := range recs {
			b, ok := base[benchKey(r)]
			if !ok || b.ItemsPerSec <= 0 || r.ItemsPerSec <= 0 {
				continue
			}
			compared++
			delta := (r.ItemsPerSec - b.ItemsPerSec) / b.ItemsPerSec
			if delta < -tol {
				regressions++
				fmt.Printf("perf check %s REGRESSION %q: %.3g -> %.3g items/s (%+.1f%%, tolerance %.0f%%)\n",
					exp, r.Label, b.ItemsPerSec, r.ItemsPerSec, delta*100, tol*100)
			}
		}
		fmt.Printf("perf check %s: %d rows compared against %s, %d regressions\n",
			exp, compared, path, regressions)
	}
	return regressions
}

// writeJSONReports dumps every recorded experiment to
// BENCH_<experiment>.json in the working directory.
func writeJSONReports() {
	for exp, recs := range records {
		path := fmt.Sprintf("BENCH_%s.json", exp)
		data, err := json.MarshalIndent(recs, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "aggbench: encoding %s: %v\n", path, err)
			continue
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "aggbench: writing %s: %v\n", path, err)
			continue
		}
		fmt.Printf("wrote %s (%d records)\n", path, len(recs))
	}
}
