// aggbench regenerates the experiment tables recorded in EXPERIMENTS.md.
// The paper (SPAA'14) is a theory paper with no measurement tables; each
// experiment here validates one of its theorems empirically — accuracy
// bounds against ground truth, space bounds against the O(·) formulas,
// work bounds as flat per-item cost, depth as multicore speedup, and the
// Section 5.4 comparison against the independent data-structure approach.
//
// Usage:
//
//	aggbench -experiment E1       # one experiment
//	aggbench -experiment all      # everything (a few minutes)
//
// E1–E10 exercise the internal engines directly; E11 measures the
// public Pipeline API's concurrent fan-out; E12 the sharded ingestion
// axis; E13 the serving layer's async minibatcher; E14 the durability
// subsystem's WAL cost per fsync policy; E15 the observability
// subsystem's instrumentation cost on the ingest hot path; E17 the
// hashing scheme and allocation profile of the steady-state ingest path;
// E18 the distributed-tracing span overhead with sampling off and on;
// E19 the client-observed serving latency under an open-loop mixed
// workload (internal/loadgen driving an in-process server), whose
// committed p99 SLO the -check gate enforces.
// With -json, the perf-trajectory experiments (E11–E19) also write
// BENCH_<experiment>.json files with machine-readable measurements.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

type experiment struct {
	id    string
	title string
	run   func()
}

func main() {
	which := flag.String("experiment", "all", "experiment id (E1..E19) or 'all'")
	flag.BoolVar(&jsonOut, "json", false, "also write BENCH_<experiment>.json measurement files")
	check := flag.Bool("check", false, "compare measurements against committed BENCH_*.json; exit 1 on regression")
	tolerance := flag.Float64("check-tolerance", 0.15, "fractional items/sec drop tolerated by -check")
	flag.Parse()
	checkOn = *check

	exps := []experiment{
		{"E1", "shared structure vs independent data structures (Fig. 1, §5.4)", runE1},
		{"E2", "basic counting: space/work/accuracy (Theorem 4.1)", runE2},
		{"E3", "sliding-window sum (Theorem 4.2)", runE3},
		{"E4", "infinite-window frequency estimation (Theorem 5.2)", runE4},
		{"E5", "sliding-window variants ablation (Theorems 5.5/5.8/5.4)", runE5},
		{"E6", "count-min sketch (Theorem 6.1)", runE6},
		{"E7", "work linearity: per-item cost flat in N and n (Lemma 5.10)", runE7},
		{"E8", "accuracy: guaranteed vs measured error, all aggregates", runE8},
		{"E9", "parallel speedup: throughput vs workers (depth bounds)", runE9},
		{"E10", "substrates: intSort, buildHist, CSS (Thms 2.2/2.3, Lemma 2.1)", runE10},
		{"E11", "multi-aggregate pipeline: concurrent fan-out vs sequential (public API)", runE11},
		{"E12", "sharded ingestion: throughput vs shard count (mergeable summaries)", runE12},
		{"E13", "serving layer: Ingestor throughput vs batch size and max latency", runE13},
		{"E14", "durability: ingest throughput vs fsync policy (WAL at the flush boundary)", runE14},
		{"E15", "observability: instrumentation cost on the ingest hot path (vs E13)", runE15},
		{"E16", "federation: merge cost vs summary size per mergeable kind", runE16},
		{"E17", "hashing + allocation profile: derived one-hash-per-item scheme, zero-alloc batch path", runE17},
		{"E18", "tracing: span overhead on the ingest path, sampling off vs on", runE18},
		{"E19", "open-loop serving latency under mixed load (client-observed, SLO-gated)", runE19},
	}

	want := strings.ToUpper(*which)
	ran := false
	for _, e := range exps {
		if want == "ALL" || want == e.id {
			fmt.Printf("\n=== %s: %s ===\n", e.id, e.title)
			e.run()
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *which)
		os.Exit(2)
	}
	if jsonOut {
		writeJSONReports()
	}
	if *check && checkRegressions(*tolerance) > 0 {
		os.Exit(1)
	}
}

// table is a tiny fixed-width table printer.
type table struct {
	header []string
	rows   [][]string
}

func newTable(cols ...string) *table { return &table{header: cols} }

func (t *table) add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func (t *table) print() {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		fmt.Println(strings.TrimRight(b.String(), " "))
	}
	line(t.header)
	seps := make([]string, len(t.header))
	for i, w := range widths {
		seps[i] = strings.Repeat("-", w)
	}
	line(seps)
	for _, r := range t.rows {
		line(r)
	}
}
