// Command agglint runs the repo's invariant-enforcement suite
// (internal/lint): gatecheck, hotalloc, senterr, spancheck, and
// metriclabel.
//
// Standalone, over package patterns:
//
//	agglint ./...
//
// Or as a vet tool, which runs it with the go command's own package
// graph (the same unit-check protocol golang.org/x/tools' unitchecker
// speaks):
//
//	go build -o /tmp/agglint ./cmd/agglint
//	go vet -vettool=/tmp/agglint ./...
//
// Exit status: 0 clean, 1 tool error, 2 findings.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	// The go command probes a vet tool before use: -V=full must print a
	// version line keyed to the executable (for build caching), and
	// -flags must list the tool's flags as JSON.
	versionFlag := flag.String("V", "", "print version and exit (vet protocol)")
	flagsFlag := flag.Bool("flags", false, "print flag JSON and exit (vet protocol)")
	listFlag := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: agglint [packages] | agglint <file>.cfg\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	switch {
	case *versionFlag != "":
		printVersion()
		return
	case *flagsFlag:
		fmt.Println("[]")
		return
	case *listFlag:
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0]))
	}
	os.Exit(runStandalone(args))
}

// printVersion implements `agglint -V=full`: name + a content hash of
// the executable, the shape the go command's vet cache expects.
func printVersion() {
	name := filepath.Base(os.Args[0])
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			_, _ = io.Copy(h, f)
			f.Close()
			fmt.Printf("%s version devel comments-go-here buildID=%02x\n", name, h.Sum(nil))
			return
		}
	}
	fmt.Printf("%s version devel\n", name)
}

// runStandalone loads patterns via `go list -export` and analyzes every
// in-module package, test files included.
func runStandalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "agglint: %v\n", err)
		return 1
	}
	exit := 0
	seen := map[string]bool{}
	for _, p := range pkgs {
		findings, err := lint.Run(p.Fset, p.Files, p.Pkg, p.Info, lint.Analyzers())
		if err != nil {
			fmt.Fprintf(os.Stderr, "agglint: %v\n", err)
			return 1
		}
		for _, f := range findings {
			// A package and its test variant share non-test files;
			// report each finding once.
			key := f.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			fmt.Fprintln(os.Stderr, key)
			exit = 2
		}
	}
	return exit
}

// vetConfig is the unit-check protocol's per-package config file,
// written by the go command for each package it vets.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes the single package described by a .cfg file.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "agglint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "agglint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command requires a facts file even though this suite
	// carries no cross-package facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("agglint-no-facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "agglint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		key := path
		if mapped, ok := cfg.ImportMap[path]; ok {
			key = mapped
		}
		file, ok := cfg.PackageFile[key]
		if !ok {
			file, ok = cfg.PackageFile[path]
		}
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, err := lint.TypeCheck(fset, cfg.ImportPath, cfg.Dir, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "agglint: %v\n", err)
		return 1
	}
	findings, err := lint.Run(pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "agglint: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", f.Pos, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
