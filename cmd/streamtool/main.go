// streamtool applies the streamagg aggregates to a stream of tokens read
// from stdin, processing in minibatches and printing a report. It is the
// library's command-line face: pipe logs, word streams, or numeric
// readings through it.
//
// Usage:
//
//	streamtool hh   [-phi 0.05] [-eps 0.005] [-window N] [-batch 8192] < tokens
//	    Heavy hitters / top-k over whitespace-separated tokens. With
//	    -window, uses the sliding-window algorithm; otherwise infinite.
//
//	streamtool count [-window 1e6] [-eps 0.01] [-batch 8192] < bits
//	    Sliding-window count of nonzero tokens ("0"/"1" per token).
//
//	streamtool sum  [-window 1e6] [-max 4095] [-eps 0.01] < integers
//	    Sliding-window sum of non-negative integers.
//
//	streamtool quantiles [-bits 20] [-q 0.5,0.9,0.99] < integers
//	    Streaming quantiles via the dyadic count-min structure.
//
//	streamtool serve [-addr :8080] [-agg "spec1;spec2"] [-batch 8192]
//	                 [-latency 5ms] [-queue N] [-backpressure block]
//	                 [-data-dir DIR] [-fsync always] [-snapshot-every N]
//	                 [-metrics true|false] [-trace-sample P] [-debug-addr host:port]
//	                 [-push-to URL -node-id ID] [-push-every 10s] [-push-mode full|delta]
//	    HTTP ingest/query server over a pipeline of aggregates (the
//	    server package; see cmd/aggserve for the standalone binary).
//	    With -data-dir the server is durable and recovers on restart;
//	    -metrics false disables the GET /metrics exposition;
//	    -trace-sample P records spans for that fraction of requests at
//	    GET /debug/traces; -debug-addr serves net/http/pprof on its own
//	    listener.
//
//	streamtool inspect <data-dir>
//	    Print a durability directory's manifest, snapshots, WAL
//	    segments (record counts, sequence spans, CRC damage), and the
//	    replay span a recovery would perform.
//
//	streamtool push -to URL -node ID [-every 5s] [-mode full|delta]
//	                [-agg "spec1;spec2"] [-batch 8192] < tokens
//	    Federation edge without a server: ingest whitespace-separated
//	    tokens from stdin into a local pipeline and push its summaries
//	    to a root aggserve's /v1/merge on an interval (and once more at
//	    EOF). -node must be stable and unique per edge; the root dedups
//	    replays by (node, epoch, seq).
package main

import (
	"bufio"
	"context"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	streamagg "repro"
	"repro/federation"
	"repro/persist"
	"repro/server"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "hh":
		runHH(args)
	case "count":
		runCount(args)
	case "sum":
		runSum(args)
	case "quantiles":
		runQuantiles(args)
	case "serve":
		runServe(args)
	case "push":
		runPush(args)
	case "inspect":
		runInspect(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: streamtool <subcommand> [flags]

subcommands:
  hh         heavy hitters / top-k over stdin tokens (sliding with -window)
  count      sliding-window count of nonzero stdin tokens
  sum        sliding-window sum of non-negative stdin integers
  quantiles  streaming quantiles over stdin integers
  serve      HTTP ingest/query server over a pipeline of aggregates
  push       ingest stdin tokens and push summaries to a federation root
  inspect    print a durability data directory's manifest, segments, and replay span
`)
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "streamtool:", err)
	os.Exit(1)
}

// flags is a tiny getopt for "-name value" pairs.
type flags map[string]string

func parseFlags(args []string) flags {
	f := flags{}
	for i := 0; i < len(args); i++ {
		if !strings.HasPrefix(args[i], "-") || i+1 >= len(args) {
			usage()
		}
		f[strings.TrimPrefix(args[i], "-")] = args[i+1]
		i++
	}
	return f
}

func (f flags) float(name string, def float64) float64 {
	if s, ok := f[name]; ok {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			fail(err)
		}
		return v
	}
	return def
}

func (f flags) int(name string, def int64) int64 {
	return int64(f.float(name, float64(def)))
}

func (f flags) str(name, def string) string {
	if s, ok := f[name]; ok {
		return s
	}
	return def
}

// runServe starts the HTTP serving layer (server.Run, shared with
// cmd/aggserve) over a pipeline described by the -agg flag:
// semicolon-separated specs in the same name=kind,opt=value syntax.
func runServe(args []string) {
	f := parseFlags(args)
	addr := f.str("addr", ":8080")
	specList := f.str("agg", "hot=freq,eps=0.001;sketch=count-min,eps=1e-4,seed=7;dist=count-min-range,bits=20")
	latency := time.Duration(-1) // unset; 0 is a meaningful value
	if s, ok := f["latency"]; ok {
		d, err := time.ParseDuration(s)
		if err != nil {
			fail(err)
		}
		latency = d
	}
	metricsOn := true
	if s, ok := f["metrics"]; ok {
		v, err := strconv.ParseBool(s)
		if err != nil {
			fail(fmt.Errorf("-metrics %q: %w", s, err))
		}
		metricsOn = v
	}
	var pushEvery time.Duration
	if s, ok := f["push-every"]; ok {
		d, err := time.ParseDuration(s)
		if err != nil {
			fail(fmt.Errorf("-push-every %q: %w", s, err))
		}
		pushEvery = d
	}
	var specs []string
	for _, spec := range strings.Split(specList, ";") {
		if spec = strings.TrimSpace(spec); spec != "" {
			specs = append(specs, spec)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := server.Run(ctx, server.RunConfig{
		Addr:          addr,
		Specs:         specs,
		BatchSize:     int(f.int("batch", 0)),
		MaxLatency:    latency,
		QueueCap:      int(f.int("queue", 0)),
		Backpressure:  f.str("backpressure", ""),
		DataDir:       f.str("data-dir", ""),
		Fsync:         f.str("fsync", ""),
		SnapshotEvery: int(f.int("snapshot-every", 0)),
		NoMetrics:     !metricsOn,
		TraceSample:   f.float("trace-sample", 0),
		DebugAddr:     f.str("debug-addr", ""),
		PushTo:        f.str("push-to", ""),
		PushEvery:     pushEvery,
		NodeID:        f.str("node-id", ""),
		PushMode:      f.str("push-mode", ""),
		Logger:        slog.New(slog.NewTextHandler(os.Stderr, nil)),
	})
	if err != nil {
		fail(err)
	}
}

// runPush is a serverless federation edge: it ingests stdin tokens into
// a local pipeline and ships its summaries to a root's /v1/merge — the
// batch-job counterpart of aggserve's -push-to. Single-threaded, so
// delta captures reset the pipeline with a plain checkpoint round trip
// instead of an Ingestor swap.
func runPush(args []string) {
	f := parseFlags(args)
	target := f.str("to", "")
	node := f.str("node", "")
	if target == "" || node == "" {
		fmt.Fprintln(os.Stderr, "usage: streamtool push -to URL -node ID [-every 5s] [-mode full|delta] [-agg \"spec1;spec2\"] [-batch 8192] < tokens")
		os.Exit(2)
	}
	url, err := server.NormalizePushURL(target)
	if err != nil {
		fail(err)
	}
	mode, err := federation.ParseMode(f.str("mode", "full"))
	if err != nil {
		fail(err)
	}
	every, err := time.ParseDuration(f.str("every", "5s"))
	if err != nil {
		fail(err)
	}
	batch := int(f.int("batch", 8192))
	specList := f.str("agg", "hot=freq,eps=0.001;sketch=count-min,eps=1e-4,seed=7;dist=count-min-range,bits=20")
	var specs []string
	for _, spec := range strings.Split(specList, ";") {
		if spec = strings.TrimSpace(spec); spec != "" {
			specs = append(specs, spec)
		}
	}
	pipe := streamagg.NewPipeline()
	if err := server.AddSpecs(pipe, specs); err != nil {
		fail(err)
	}
	pristine, err := pipe.MarshalBinary()
	if err != nil {
		fail(err)
	}
	pusher, err := federation.NewPusher(federation.PusherConfig{
		URL:    url,
		Node:   node,
		Mode:   mode,
		Logger: slog.New(slog.NewTextHandler(os.Stderr, nil)),
		Source: federation.SourceFunc(func(delta bool) ([]byte, error) {
			ckpt, err := pipe.MarshalBinary()
			if err != nil || !delta {
				return ckpt, err
			}
			if err := pipe.UnmarshalBinary(pristine); err != nil {
				return nil, err
			}
			return ckpt, nil
		}),
	})
	if err != nil {
		fail(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var total int64
	pushes := 0
	last := time.Now()
	tokens(batch, func(ts []string) {
		ids := make([]uint64, len(ts))
		for i, s := range ts {
			ids[i] = streamagg.HashString(s)
		}
		if err := pipe.ProcessBatch(ids); err != nil {
			fail(err)
		}
		total += int64(len(ts))
		if time.Since(last) >= every {
			if err := pusher.Push(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "streamtool: push failed (will retry next interval): %v\n", err)
			} else {
				pushes++
			}
			last = time.Now()
		}
	})
	if err := pusher.Final(ctx); err != nil {
		fail(fmt.Errorf("final push: %w", err))
	}
	pushes++
	fmt.Printf("pushed %d tokens to %s in %d pushes (node %s, mode %s)\n",
		total, url, pushes, node, mode)
}

// runInspect prints what recovery would see in a data directory: the
// manifest, every snapshot and segment with validity, and the replay
// span. It takes no lock, so it works on a live server's directory.
func runInspect(args []string) {
	if len(args) != 1 || strings.HasPrefix(args[0], "-") {
		fmt.Fprintln(os.Stderr, "usage: streamtool inspect <data-dir>")
		os.Exit(2)
	}
	r, err := persist.Inspect(args[0])
	if err != nil {
		fail(err)
	}
	fmt.Printf("data directory %s\n", r.Dir)
	switch {
	case !r.ManifestPresent:
		fmt.Println("manifest: missing (recovery falls back to newest valid snapshot)")
	case !r.ManifestValid:
		fmt.Printf("manifest: CORRUPT: %s\n", r.ManifestProblem)
	case r.ManifestSnapshot == "":
		fmt.Println("manifest: valid, no snapshot yet")
	default:
		fmt.Printf("manifest: valid -> %s (covers WAL seq %d)\n", r.ManifestSnapshot, r.ManifestSeq)
	}
	if len(r.Snapshots) == 0 {
		fmt.Println("snapshots: none")
	}
	for _, sn := range r.Snapshots {
		if sn.Valid {
			fmt.Printf("snapshot %s: seq %d, %d bytes, valid\n", sn.Name, sn.Seq, sn.Bytes)
		} else {
			fmt.Printf("snapshot %s: %d bytes, CORRUPT: %s\n", sn.Name, sn.Bytes, sn.Problem)
		}
	}
	if len(r.Segments) == 0 {
		fmt.Println("segments: none")
	}
	for _, sg := range r.Segments {
		span := "empty"
		if sg.LastSeq != 0 {
			span = fmt.Sprintf("seq %d..%d", sg.FirstSeq, sg.LastSeq)
		}
		line := fmt.Sprintf("segment %s: %s, %d records, %d bytes", sg.Name, span, sg.Records, sg.Bytes)
		if sg.Corrupt != "" {
			line += " [" + sg.Corrupt + "]"
		}
		fmt.Println(line)
	}
	if r.ReplayRecords > 0 {
		fmt.Printf("recovery: snapshot seq %d, then replay %d records (seq %d..%d)\n",
			r.RecoverySeq, r.ReplayRecords, r.ReplayFrom, r.ReplayTo)
	} else {
		fmt.Printf("recovery: snapshot seq %d, nothing to replay\n", r.RecoverySeq)
	}
}

// tokens streams whitespace-separated fields from stdin in batches.
func tokens(batch int, emit func([]string)) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	sc.Split(bufio.ScanWords)
	buf := make([]string, 0, batch)
	for sc.Scan() {
		buf = append(buf, sc.Text())
		if len(buf) == batch {
			emit(buf)
			buf = buf[:0]
		}
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}
	if len(buf) > 0 {
		emit(buf)
	}
}

func runHH(args []string) {
	f := parseFlags(args)
	phi := f.float("phi", 0.05)
	eps := f.float("eps", phi/4)
	window := f.int("window", 0)
	batch := int(f.int("batch", 8192))
	topK := int(f.int("top", 10))

	names := make(map[uint64]string)
	toIDs := func(ts []string) []uint64 {
		ids := make([]uint64, len(ts))
		for i, s := range ts {
			ids[i] = streamagg.HashString(s)
			names[ids[i]] = s
		}
		return ids
	}

	var report []streamagg.ItemCount
	var total int64
	if window > 0 {
		a, err := streamagg.New(streamagg.KindSlidingFreq,
			streamagg.WithWindow(window),
			streamagg.WithEpsilon(eps),
			streamagg.WithVariant(streamagg.VariantWorkEfficient))
		if err != nil {
			fail(err)
		}
		e := a.(*streamagg.SlidingFreqEstimator)
		tokens(batch, func(ts []string) { e.ProcessBatch(toIDs(ts)); total += int64(len(ts)) })
		report = e.HeavyHitters(phi)
		fmt.Printf("heavy hitters (phi=%g) over the last %d of %d tokens:\n", phi, window, total)
	} else {
		a, err := streamagg.New(streamagg.KindFreq, streamagg.WithEpsilon(eps))
		if err != nil {
			fail(err)
		}
		e := a.(*streamagg.FreqEstimator)
		tokens(batch, func(ts []string) { e.ProcessBatch(toIDs(ts)) })
		total = e.StreamLen()
		report = e.HeavyHitters(phi)
		if len(report) == 0 {
			report = e.TopK(topK)
			fmt.Printf("no tokens above phi=%g; top-%d of %d tokens:\n", phi, topK, total)
		} else {
			fmt.Printf("heavy hitters (phi=%g) over %d tokens:\n", phi, total)
		}
	}
	for i, ic := range report {
		if i == topK {
			fmt.Printf("  ... and %d more\n", len(report)-topK)
			break
		}
		fmt.Printf("  %-24s ~%d\n", names[ic.Item], ic.Count)
	}
}

func runCount(args []string) {
	f := parseFlags(args)
	window := f.int("window", 1_000_000)
	eps := f.float("eps", 0.01)
	batch := int(f.int("batch", 8192))
	a, err := streamagg.New(streamagg.KindBasicCounter,
		streamagg.WithWindow(window), streamagg.WithEpsilon(eps))
	if err != nil {
		fail(err)
	}
	c := a.(*streamagg.BasicCounter)
	var total int64
	tokens(batch, func(ts []string) {
		bits := make([]bool, len(ts))
		for i, s := range ts {
			bits[i] = s != "0" && s != ""
		}
		c.ProcessBits(bits)
		total += int64(len(ts))
	})
	fmt.Printf("nonzero tokens in last %d of %d: ~%d (rel err <= %g)\n",
		window, total, c.Estimate(), eps)
}

func runSum(args []string) {
	f := parseFlags(args)
	window := f.int("window", 1_000_000)
	maxV := uint64(f.int("max", 4095))
	eps := f.float("eps", 0.01)
	batch := int(f.int("batch", 8192))
	a, err := streamagg.New(streamagg.KindWindowSum,
		streamagg.WithWindow(window), streamagg.WithMaxValue(maxV), streamagg.WithEpsilon(eps))
	if err != nil {
		fail(err)
	}
	s := a.(*streamagg.WindowSum)
	var total int64
	tokens(batch, func(ts []string) {
		vals := make([]uint64, 0, len(ts))
		for _, t := range ts {
			v, err := strconv.ParseUint(t, 10, 64)
			if err != nil {
				fail(fmt.Errorf("non-integer token %q", t))
			}
			vals = append(vals, v)
		}
		if err := s.ProcessBatch(vals); err != nil {
			fail(err)
		}
		total += int64(len(vals))
	})
	fmt.Printf("sum of last %d of %d values: ~%d (rel err <= %g)\n",
		window, total, s.Estimate(), eps)
}

func runQuantiles(args []string) {
	f := parseFlags(args)
	bits := int(f.int("bits", 20))
	batch := int(f.int("batch", 8192))
	qSpec := "0.5,0.9,0.99"
	if s, ok := f["q"]; ok {
		qSpec = s
	}
	a, err := streamagg.New(streamagg.KindCountMinRange,
		streamagg.WithUniverseBits(bits), streamagg.WithEpsilon(0.0005), streamagg.WithDelta(0.01))
	if err != nil {
		fail(err)
	}
	r := a.(*streamagg.CountMinRange)
	tokens(batch, func(ts []string) {
		vals := make([]uint64, 0, len(ts))
		for _, t := range ts {
			v, err := strconv.ParseUint(t, 10, 64)
			if err != nil {
				fail(fmt.Errorf("non-integer token %q", t))
			}
			if v>>uint(bits) != 0 {
				fail(fmt.Errorf("value %d exceeds universe 2^%d", v, bits))
			}
			vals = append(vals, v)
		}
		r.ProcessBatch(vals)
	})
	fmt.Printf("%d values ingested:\n", r.TotalCount())
	for _, qs := range strings.Split(qSpec, ",") {
		q, err := strconv.ParseFloat(qs, 64)
		if err != nil {
			fail(err)
		}
		fmt.Printf("  q=%-5s ~= %d\n", qs, r.Quantile(q))
	}
}
