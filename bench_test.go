// Benchmarks regenerating the experiment series of EXPERIMENTS.md, one
// family per experiment id (see DESIGN.md §3). Run:
//
//	go test -bench=. -benchmem
package streamagg

import (
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bcount"
	"repro/internal/cms"
	"repro/internal/css"
	"repro/internal/hist"
	"repro/internal/mg"
	"repro/internal/parallel"
	"repro/internal/swfreq"
	"repro/internal/workload"
	"repro/internal/wsum"
)

const benchBatch = 1 << 14

// batches pre-slices a Zipf stream for ingestion benchmarks.
func benchStream(seed int64, n int) [][]uint64 {
	return workload.Batches(workload.Zipf(seed, n, 1.1, 1<<18), benchBatch)
}

// BenchmarkE1SharedVsIndependent compares minibatch ingestion plus a
// heavy-hitter query for the shared parallel MG vs the independent
// per-processor approach (Figure 1 / §5.4).
func BenchmarkE1SharedVsIndependent(b *testing.B) {
	const eps = 0.001
	bs := benchStream(1, 1<<20)
	b.Run("shared", func(b *testing.B) {
		g := mg.New(eps)
		b.SetBytes(benchBatch * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.ProcessBatch(bs[i%len(bs)])
			_ = g.HeavyHitters(0.01)
		}
	})
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("independent-p%d", p), func(b *testing.B) {
			g := baseline.NewIndependent(p, int(1/eps)+1)
			b.SetBytes(benchBatch * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.ProcessBatch(bs[i%len(bs)])
				_ = g.Query() // merge at query time: the §5.4 bottleneck
			}
		})
	}
}

// BenchmarkE2BasicCounting measures minibatch ingestion for the basic
// counter across window sizes and epsilons (Theorem 4.1), against the
// sequential DGIM baseline.
func BenchmarkE2BasicCounting(b *testing.B) {
	bits := workload.BurstyBits(2, 1<<20, 1<<13, 0.05, 0.9)
	bbs := workload.BitBatches(bits, benchBatch)
	for _, n := range []int64{1 << 16, 1 << 20, 1 << 24} {
		for _, eps := range []float64{0.1, 0.01, 0.001} {
			b.Run(fmt.Sprintf("parallel/n%d-eps%g", n, eps), func(b *testing.B) {
				c := bcount.New(n, eps)
				b.SetBytes(benchBatch)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.Advance(css.FromBools(bbs[i%len(bbs)]))
				}
			})
		}
	}
	b.Run("seq-dgim/n1048576-eps0.01", func(b *testing.B) {
		c := baseline.NewDGIM(1<<20, 0.01)
		b.SetBytes(benchBatch)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.ProcessBits(bbs[i%len(bbs)])
		}
	})
}

// BenchmarkE3WindowSum measures minibatch ingestion for the windowed sum
// across value bounds (Theorem 4.2; work ~ log R).
func BenchmarkE3WindowSum(b *testing.B) {
	for _, R := range []uint64{255, 65535} {
		vals := workload.Values(3, 1<<20, R, 2)
		vbs := workload.Batches(vals, benchBatch)
		b.Run(fmt.Sprintf("R%d", R), func(b *testing.B) {
			s := wsum.New(1<<18, R, 0.01)
			b.SetBytes(benchBatch * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Advance(vbs[i%len(vbs)])
			}
		})
	}
}

// BenchmarkE4InfiniteMG measures the infinite-window engine across
// epsilons (Theorem 5.2), with the sequential MG as the work-efficiency
// baseline.
func BenchmarkE4InfiniteMG(b *testing.B) {
	bs := benchStream(4, 1<<20)
	for _, eps := range []float64{1e-2, 1e-3, 1e-4} {
		b.Run(fmt.Sprintf("parallel/eps%g", eps), func(b *testing.B) {
			g := mg.New(eps)
			b.SetBytes(benchBatch * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.ProcessBatch(bs[i%len(bs)])
			}
		})
	}
	b.Run("seq-mg/eps0.001", func(b *testing.B) {
		g := baseline.NewMGSeq(1000)
		b.SetBytes(benchBatch * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.ProcessBatch(bs[i%len(bs)])
		}
	})
	b.Run("seq-spacesaving/eps0.001", func(b *testing.B) {
		g := baseline.NewSpaceSaving(1000)
		b.SetBytes(benchBatch * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.ProcessBatch(bs[i%len(bs)])
		}
	})
	b.Run("seq-lossy/eps0.001", func(b *testing.B) {
		g := baseline.NewLossyCounting(1000)
		b.SetBytes(benchBatch * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.ProcessBatch(bs[i%len(bs)])
		}
	})
}

// BenchmarkE5SlidingVariants is the ablation across the three
// sliding-window algorithms (Theorems 5.5, 5.8, 5.4).
func BenchmarkE5SlidingVariants(b *testing.B) {
	bs := benchStream(5, 1<<20)
	for _, v := range []swfreq.Variant{swfreq.Basic, swfreq.SpaceEfficient, swfreq.WorkEfficient} {
		b.Run(v.String(), func(b *testing.B) {
			e := swfreq.New(1<<20, 1.0/128, v)
			b.SetBytes(benchBatch * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.ProcessBatch(bs[i%len(bs)])
			}
			b.ReportMetric(float64(e.SpaceWords()), "space-words")
		})
	}
	b.Run("seq-lee-ting", func(b *testing.B) {
		g := baseline.NewLTSliding(1<<20, 1.0/128)
		b.SetBytes(benchBatch * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.ProcessBatch(bs[i%len(bs)])
		}
		b.ReportMetric(float64(g.SpaceWords()), "space-words")
	})
}

// BenchmarkE6CountMin measures parallel sketch ingestion across depths
// (work ~ log(1/δ), Theorem 6.1) against sequential updates.
func BenchmarkE6CountMin(b *testing.B) {
	bs := benchStream(6, 1<<20)
	for _, delta := range []float64{1.0 / 16, 1.0 / 256, 1.0 / 4096} {
		b.Run(fmt.Sprintf("parallel/delta%.0e", delta), func(b *testing.B) {
			s := cms.New(1e-4, delta, 7)
			b.SetBytes(benchBatch * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ProcessBatch(bs[i%len(bs)])
			}
		})
	}
	b.Run("sequential/delta4e-03", func(b *testing.B) {
		s := cms.New(1e-4, 1.0/256, 7)
		b.SetBytes(benchBatch * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, it := range bs[i%len(bs)] {
				s.Update(it, 1)
			}
		}
	})
}

// BenchmarkE7WorkLinearity checks that per-item cost is flat in the
// window size (the work bound does not depend on n).
func BenchmarkE7WorkLinearity(b *testing.B) {
	bs := benchStream(7, 1<<20)
	for _, n := range []int64{1 << 16, 1 << 20, 1 << 24} {
		b.Run(fmt.Sprintf("window%d", n), func(b *testing.B) {
			e := swfreq.New(n, 1.0/128, swfreq.WorkEfficient)
			b.SetBytes(benchBatch * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.ProcessBatch(bs[i%len(bs)])
			}
		})
	}
}

// BenchmarkE9Scaling sweeps the worker count for each engine: the
// polylog-depth claim shows up as improving throughput with p.
func BenchmarkE9Scaling(b *testing.B) {
	bs := workload.Batches(workload.Zipf(9, 1<<20, 1.1, 1<<18), 1<<17)
	engines := map[string]func() func([]uint64){
		"mg":  func() func([]uint64) { g := mg.New(1e-3); return g.ProcessBatch },
		"sw":  func() func([]uint64) { e := swfreq.New(1<<20, 1.0/128, swfreq.WorkEfficient); return e.ProcessBatch },
		"cms": func() func([]uint64) { s := cms.New(1e-4, 1e-3, 3); return s.ProcessBatch },
	}
	for name, mk := range engines {
		for _, p := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/p%d", name, p), func(b *testing.B) {
				old := parallel.SetWorkers(p)
				defer parallel.SetWorkers(old)
				f := mk()
				b.SetBytes(1 << 20)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					f(bs[i%len(bs)])
				}
			})
		}
	}
}

// BenchmarkE10Substrates measures the parallel building blocks.
func BenchmarkE10Substrates(b *testing.B) {
	const n = 1 << 20
	stream := workload.Uniform(10, n, 4*n)
	b.Run("intSort", func(b *testing.B) {
		keys := make([]uint32, n)
		vals := make([]int32, n)
		b.SetBytes(n * 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			for j := range keys {
				keys[j] = uint32(stream[j])
				vals[j] = int32(j)
			}
			b.StartTimer()
			parallel.RadixSortPairs(keys, vals, uint32(4*n))
		}
	})
	zs := workload.Zipf(11, n, 1.1, 1<<16)
	b.Run("buildHist", func(b *testing.B) {
		b.SetBytes(n * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = hist.Build(zs, int64(i))
		}
	})
	bits := workload.Bits(12, n, 0.3)
	b.Run("cssBuild", func(b *testing.B) {
		b.SetBytes(n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = css.FromBools(bits)
		}
	})
	b.Run("scan", func(b *testing.B) {
		xs := make([]int64, n)
		b.SetBytes(n * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range xs {
				xs[j] = 1
			}
			parallel.ScanExclusive(xs)
		}
	})
}

// BenchmarkE12ShardedIngest measures minibatch ingestion through the
// Sharded wrapper vs the single shared structure (experiment E12): the
// coarse-grained cross-shard axis on top of intra-minibatch parallelism.
func BenchmarkE12ShardedIngest(b *testing.B) {
	bs := benchStream(67, 1<<20)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("count-min-s%d", shards), func(b *testing.B) {
			agg, err := NewSharded(KindCountMin, shards,
				WithEpsilon(1e-4), WithDelta(1e-3), WithSeed(7))
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(benchBatch * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := agg.ProcessBatch(bs[i%len(bs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("count-min-unsharded", func(b *testing.B) {
		agg, err := NewCountMin(1e-4, 1e-3, 7)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(benchBatch * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := agg.ProcessBatch(bs[i%len(bs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
