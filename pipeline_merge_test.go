package streamagg

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/workload"
)

// mergePipeline builds a pipeline of the four mergeable kinds with
// pinned seeds, so two instances built from the same call merge.
func mergePipeline(t *testing.T) *Pipeline {
	t.Helper()
	p := NewPipeline()
	add := func(name string, kind Kind, opts ...Option) {
		t.Helper()
		if _, err := p.Add(name, kind, opts...); err != nil {
			t.Fatalf("Add(%s): %v", name, err)
		}
	}
	add("hot", KindFreq, WithEpsilon(0.002))
	add("cm", KindCountMin, WithEpsilon(1e-3), WithDelta(0.01), WithSeed(7))
	add("dist", KindCountMinRange, WithUniverseBits(18), WithEpsilon(0.002), WithSeed(3))
	add("sk", KindCountSketch, WithEpsilon(0.01), WithDelta(0.01), WithSeed(5))
	return p
}

func feedPipeline(t *testing.T, p *Pipeline, items []uint64) {
	t.Helper()
	if err := p.ProcessBatch(items); err != nil {
		t.Fatal(err)
	}
}

// checkpointOf captures a pipeline for byte-identity assertions.
func checkpointOf(t *testing.T, p *Pipeline) []byte {
	t.Helper()
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestPipelineMergeCombines merges two disjointly-fed pipelines and
// checks every query against a pipeline that saw the whole stream: the
// linear sketches (count-min, count-min-range, count-sketch) must agree
// exactly — cell-wise sums with shared seeds — and the Misra-Gries
// estimator within the paper's merged bound f - ε·m <= est <= f.
func TestPipelineMergeCombines(t *testing.T) {
	const n = 200_000
	streamA := workload.Zipf(21, n, 1.2, 1<<18)
	streamB := workload.Zipf(22, n, 1.2, 1<<18)

	a, b, oracle := mergePipeline(t), mergePipeline(t), mergePipeline(t)
	feedPipeline(t, a, streamA)
	feedPipeline(t, b, streamB)
	feedPipeline(t, oracle, streamA)
	feedPipeline(t, oracle, streamB)

	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got, want := a.StreamLen(), int64(2*n); got != want {
		t.Fatalf("merged StreamLen = %d, want %d", got, want)
	}

	truth := map[uint64]int64{}
	for _, it := range streamA {
		truth[it]++
	}
	for _, it := range streamB {
		truth[it]++
	}
	probes := []uint64{streamA[0], streamB[0], 1, 17, 999, 1 << 17}
	for _, item := range probes {
		for _, name := range []string{"cm", "sk"} {
			got, err := a.Estimate(name, item)
			if err != nil {
				t.Fatal(err)
			}
			want, err := oracle.Estimate(name, item)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s.Estimate(%d) = %d merged, %d oracle", name, item, got, want)
			}
		}
		got, err := a.Estimate("hot", item)
		if err != nil {
			t.Fatal(err)
		}
		f := truth[item]
		slack := int64(0.002 * float64(2*n))
		if got > f || got < f-slack {
			t.Fatalf("hot.Estimate(%d) = %d outside [%d, %d]", item, got, f-slack, f)
		}
	}
	for _, probe := range []struct{ lo, hi uint64 }{{0, 1 << 17}, {5, 4096}} {
		got, err := a.RangeCount("dist", probe.lo, probe.hi)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.RangeCount("dist", probe.lo, probe.hi)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("dist.RangeCount(%d,%d) = %d merged, %d oracle", probe.lo, probe.hi, got, want)
		}
	}
	for _, q := range []float64{0.1, 0.5, 0.99} {
		got, err := a.Quantile("dist", q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.Quantile("dist", q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("dist.Quantile(%g) = %d merged, %d oracle", q, got, want)
		}
	}
	// Value falls back to the exact merged TotalCount on count-min.
	if got, err := a.Value("cm"); err != nil || got != int64(2*n) {
		t.Fatalf("cm.Value() = %d, %v; want %d", got, err, 2*n)
	}
}

// TestPipelineMergeIncompatibleTable drives every mergeable kind through
// the incompatibility cases — cross-kind under a shared name, mismatched
// dimensions, mismatched seed — and checks the receiver is untouched
// (byte-identical checkpoint) with an error wrapping ErrIncompatibleMerge.
func TestPipelineMergeIncompatibleTable(t *testing.T) {
	mk := func(name string, kind Kind, opts ...Option) *Pipeline {
		t.Helper()
		p := NewPipeline()
		if _, err := p.Add(name, kind, opts...); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		label    string
		dst, src *Pipeline
	}{
		{"freq-vs-countmin", mk("x", KindFreq), mk("x", KindCountMin)},
		{"countmin-vs-countsketch", mk("x", KindCountMin), mk("x", KindCountSketch)},
		{"countminrange-vs-freq", mk("x", KindCountMinRange, WithUniverseBits(16)), mk("x", KindFreq)},
		{"countsketch-vs-countminrange", mk("x", KindCountSketch), mk("x", KindCountMinRange, WithUniverseBits(16))},
		{"freq-eps-mismatch", mk("x", KindFreq, WithEpsilon(0.01)), mk("x", KindFreq, WithEpsilon(0.001))},
		{"countmin-eps-mismatch", mk("x", KindCountMin, WithEpsilon(1e-3)), mk("x", KindCountMin, WithEpsilon(1e-4))},
		{"countmin-seed-mismatch", mk("x", KindCountMin, WithSeed(1)), mk("x", KindCountMin, WithSeed(2))},
		{"countminrange-bits-mismatch",
			mk("x", KindCountMinRange, WithUniverseBits(16)),
			mk("x", KindCountMinRange, WithUniverseBits(18))},
		{"countminrange-seed-mismatch",
			mk("x", KindCountMinRange, WithUniverseBits(16), WithSeed(1)),
			mk("x", KindCountMinRange, WithUniverseBits(16), WithSeed(2))},
		{"countsketch-seed-mismatch", mk("x", KindCountSketch, WithSeed(1)), mk("x", KindCountSketch, WithSeed(2))},
		{"non-mergeable-kind",
			mk("x", KindBasicCounter, WithWindow(1<<10)),
			mk("x", KindBasicCounter, WithWindow(1<<10))},
		{"no-shared-names", mk("a", KindFreq), mk("b", KindFreq)},
	}
	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			feedPipeline(t, tc.dst, workload.Zipf(31, 5000, 1.2, 1<<14))
			feedPipeline(t, tc.src, workload.Zipf(32, 5000, 1.2, 1<<14))
			before := checkpointOf(t, tc.dst)
			err := tc.dst.Merge(tc.src)
			if !errors.Is(err, ErrIncompatibleMerge) {
				t.Fatalf("Merge: %v, want ErrIncompatibleMerge", err)
			}
			if !bytes.Equal(before, checkpointOf(t, tc.dst)) {
				t.Fatal("receiver changed by a failed merge")
			}
		})
	}
}

// TestPipelineMergePartialOverlap: names present on only one side are
// left alone; only the intersection merges.
func TestPipelineMergePartialOverlap(t *testing.T) {
	dst, src := NewPipeline(), NewPipeline()
	for _, p := range []*Pipeline{dst, src} {
		if _, err := p.Add("shared", KindCountMin, WithSeed(9)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dst.Add("mine", KindFreq); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Add("theirs", KindFreq); err != nil {
		t.Fatal(err)
	}
	stream := workload.Zipf(41, 10000, 1.2, 1<<14)
	feedPipeline(t, dst, stream[:5000])
	feedPipeline(t, src, stream[5000:])
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	if _, ok := dst.Get("theirs"); ok {
		t.Fatal("merge grafted a foreign member into the receiver")
	}
	if got, err := dst.Value("shared"); err != nil || got != int64(len(stream)) {
		t.Fatalf("shared.Value() = %d, %v; want %d", got, err, len(stream))
	}
	// "mine" only ever saw dst's half.
	if est, err := dst.Estimate("mine", stream[0]); err != nil || est < 0 {
		t.Fatalf("mine.Estimate = %d, %v", est, err)
	}
}

// TestPipelineMergeAtomicity: one compatible pair plus one incompatible
// pair must leave the receiver byte-identical — the compatible member
// must not merge on its own.
func TestPipelineMergeAtomicity(t *testing.T) {
	mk := func(seed int64) *Pipeline {
		p := NewPipeline()
		if _, err := p.Add("ok", KindCountMin, WithSeed(9)); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Add("bad", KindCountMin, WithSeed(seed)); err != nil {
			t.Fatal(err)
		}
		return p
	}
	dst, src := mk(1), mk(2) // "bad" seeds differ, "ok" pair matches
	feedPipeline(t, dst, workload.Zipf(51, 5000, 1.2, 1<<14))
	feedPipeline(t, src, workload.Zipf(52, 5000, 1.2, 1<<14))
	before := checkpointOf(t, dst)
	if err := dst.Merge(src); !errors.Is(err, ErrIncompatibleMerge) {
		t.Fatalf("Merge: %v, want ErrIncompatibleMerge", err)
	}
	if !bytes.Equal(before, checkpointOf(t, dst)) {
		t.Fatal("partial merge escaped: receiver changed despite the error")
	}
}

// TestPipelineMergeSelfAndNil covers the degenerate arguments.
func TestPipelineMergeSelfAndNil(t *testing.T) {
	p := mergePipeline(t)
	if err := p.Merge(nil); !errors.Is(err, ErrBadParam) {
		t.Fatalf("Merge(nil): %v, want ErrBadParam", err)
	}
	if err := p.Merge(p); !errors.Is(err, ErrIncompatibleMerge) {
		t.Fatalf("Merge(self): %v, want ErrIncompatibleMerge", err)
	}
}

// TestPipelineClone: a clone answers identically and then diverges
// independently.
func TestPipelineClone(t *testing.T) {
	p := mergePipeline(t)
	stream := workload.Zipf(61, 50000, 1.2, 1<<16)
	feedPipeline(t, p, stream)
	c, err := p.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(checkpointOf(t, p), checkpointOf(t, c)) {
		t.Fatal("clone checkpoint differs from the original")
	}
	feedPipeline(t, c, stream[:1000])
	if got, _ := c.Value("cm"); got != int64(len(stream)+1000) {
		t.Fatalf("clone cm.Value() = %d after divergence", got)
	}
	if got, _ := p.Value("cm"); got != int64(len(stream)) {
		t.Fatalf("original cm.Value() = %d, clone leaked back", got)
	}
}

// TestShardedMerge: merging two sharded aggregates shard-by-shard keeps
// point queries consistent with a directly-fed sharded oracle, and the
// layout checks reject mismatches.
func TestShardedMerge(t *testing.T) {
	mk := func(shards int) *Sharded {
		s, err := NewSharded(KindCountMin, shards, WithSeed(11))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	streamA := workload.Zipf(71, 100_000, 1.2, 1<<16)
	streamB := workload.Zipf(72, 100_000, 1.2, 1<<16)
	a, b, oracle := mk(8), mk(8), mk(8)
	for _, pair := range []struct {
		dst    *Sharded
		stream []uint64
	}{{a, streamA}, {b, streamB}, {oracle, streamA}, {oracle, streamB}} {
		if err := pair.dst.ProcessBatch(pair.stream); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got, want := a.StreamLen(), int64(200_000); got != want {
		t.Fatalf("merged StreamLen = %d, want %d", got, want)
	}
	for _, item := range []uint64{streamA[0], streamB[0], 1, 999} {
		if got, want := a.Estimate(item), oracle.Estimate(item); got != want {
			t.Fatalf("Estimate(%d) = %d merged, %d oracle", item, got, want)
		}
	}

	if err := a.Merge(mk(4)); !errors.Is(err, ErrIncompatibleMerge) {
		t.Fatalf("shard-count mismatch: %v, want ErrIncompatibleMerge", err)
	}
	other, err := NewSharded(KindFreq, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(other); !errors.Is(err, ErrIncompatibleMerge) {
		t.Fatalf("inner-kind mismatch: %v, want ErrIncompatibleMerge", err)
	}
	if err := a.Merge(a); !errors.Is(err, ErrIncompatibleMerge) {
		t.Fatalf("self merge: %v, want ErrIncompatibleMerge", err)
	}
	cm, err := New(KindCountMin, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(cm); !errors.Is(err, ErrIncompatibleMerge) {
		t.Fatalf("unsharded argument: %v, want ErrIncompatibleMerge", err)
	}
}

// TestUnmarshalAggregateHelpers covers the exported checkpoint helpers
// the federation layer decodes payloads with.
func TestUnmarshalAggregateHelpers(t *testing.T) {
	agg, err := New(KindFreq, WithEpsilon(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.ProcessBatch([]uint64{1, 2, 2, 3, 3, 3}); err != nil {
		t.Fatal(err)
	}
	ckpt, err := agg.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if kind, err := CheckpointKind(ckpt); err != nil || kind != KindFreq {
		t.Fatalf("CheckpointKind = %q, %v", kind, err)
	}
	back, err := UnmarshalAggregate(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind() != KindFreq || back.StreamLen() != 6 {
		t.Fatalf("restored %s with StreamLen %d", back.Kind(), back.StreamLen())
	}
	if _, err := UnmarshalAggregate([]byte("garbage")); err == nil {
		t.Fatal("UnmarshalAggregate accepted garbage")
	}

	p := mergePipeline(t)
	feedPipeline(t, p, []uint64{1, 2, 3})
	pc, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// A pipeline envelope is not a single aggregate...
	if _, err := UnmarshalAggregate(pc); err == nil {
		t.Fatal("UnmarshalAggregate accepted a pipeline checkpoint")
	}
	// ...but round-trips through UnmarshalPipeline.
	back2, err := UnmarshalPipeline(pc)
	if err != nil {
		t.Fatal(err)
	}
	if back2.StreamLen() != 3 || back2.Len() != p.Len() {
		t.Fatalf("restored pipeline: len %d, stream %d", back2.Len(), back2.StreamLen())
	}
}

// TestIngestorSwap: Swap returns everything absorbed so far and the
// sink continues from the replacement — the federation delta reset.
func TestIngestorSwap(t *testing.T) {
	pipe := mergePipeline(t)
	pristine := checkpointOf(t, pipe)
	in, err := NewIngestor(pipe, WithBatchSize(1024))
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	stream := workload.Zipf(81, 20_000, 1.2, 1<<14)
	if _, err := in.PutBatch(stream); err != nil {
		t.Fatal(err)
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	captured, err := in.Swap(pristine)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := UnmarshalPipeline(captured)
	if err != nil {
		t.Fatal(err)
	}
	if delta.StreamLen() != int64(len(stream)) {
		t.Fatalf("captured delta StreamLen = %d, want %d", delta.StreamLen(), len(stream))
	}
	if pipe.StreamLen() != 0 {
		t.Fatalf("sink StreamLen = %d after swap, want 0", pipe.StreamLen())
	}
	// The sink keeps ingesting on top of the replacement.
	if _, err := in.PutBatch(stream[:100]); err != nil {
		t.Fatal(err)
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	if pipe.StreamLen() != 100 {
		t.Fatalf("sink StreamLen = %d after post-swap ingest, want 100", pipe.StreamLen())
	}
}
