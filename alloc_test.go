package streamagg

import (
	"context"
	"math/rand"
	"testing"

	"repro/trace"
)

// Steady-state allocation regression tests. testing.AllocsPerRun counts
// every allocation in the process while pinning GOMAXPROCS to 1, which
// also makes the parallel primitives run inline — so these pin the
// serving-path data structures themselves (scratch reuse in the sketches,
// the partition scratch, the batcher's recycled buffers) to (amortized)
// zero allocations per item. Thresholds are per item over full batches:
// a handful of fixed per-batch objects is acceptable, per-item garbage is
// not.

func allocItems(n, universe int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	items := make([]uint64, n)
	for i := range items {
		items[i] = uint64(rng.Intn(universe))
	}
	return items
}

func TestShardedIngestSteadyStateAllocs(t *testing.T) {
	s, err := NewSharded(KindCountMin, 8, WithEpsilon(0.001), WithDelta(0.01))
	if err != nil {
		t.Fatal(err)
	}
	items := allocItems(8192, 4000, 7)
	if err := s.ProcessBatch(items); err != nil { // warm every shard's scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := s.ProcessBatch(items); err != nil {
			t.Fatal(err)
		}
	})
	if perItem := allocs / float64(len(items)); perItem >= 0.01 {
		t.Fatalf("sharded ingest allocates %.4f objects/item (%.0f/batch), want < 0.01", perItem, allocs)
	}
}

func TestIngestorSteadyStateAllocs(t *testing.T) {
	agg, err := New(KindCountMin, WithEpsilon(0.001), WithDelta(0.01))
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewIngestor(agg, WithBatchSize(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	items := allocItems(4096, 2000, 9)
	// Warm the queue buffers, the sketch scratch, and the flush path.
	for i := 0; i < 4; i++ {
		if _, err := in.PutBatch(items); err != nil {
			t.Fatal(err)
		}
		if err := in.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := in.PutBatch(items); err != nil {
			t.Fatal(err)
		}
		if err := in.Flush(); err != nil {
			t.Fatal(err)
		}
	})
	if perItem := allocs / float64(len(items)); perItem >= 0.01 {
		t.Fatalf("ingestor flush path allocates %.4f objects/item (%.0f/batch), want < 0.01", perItem, allocs)
	}
}

// TestIngestorTracingDisabledAllocs pins the tracing integration's
// zero-cost-when-off invariant: an Ingestor carrying a rate-0 tracer
// must keep the full enqueue+flush cycle — including the nil flush,
// WAL, and apply spans and the batch-context bookkeeping — under the
// same per-item allocation budget as an untraced one.
func TestIngestorTracingDisabledAllocs(t *testing.T) {
	agg, err := New(KindCountMin, WithEpsilon(0.001), WithDelta(0.01))
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewIngestor(agg, WithBatchSize(4096),
		WithTracer(trace.New(trace.Config{SampleRate: 0})))
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	items := allocItems(4096, 2000, 11)
	ctx := context.Background()
	for i := 0; i < 4; i++ { // warm buffers and scratch
		if _, err := in.PutBatchSpan(ctx, items, trace.SpanContext{}); err != nil {
			t.Fatal(err)
		}
		if err := in.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := in.PutBatchSpan(ctx, items, trace.SpanContext{}); err != nil {
			t.Fatal(err)
		}
		if err := in.Flush(); err != nil {
			t.Fatal(err)
		}
	})
	if perItem := allocs / float64(len(items)); perItem >= 0.01 {
		t.Fatalf("tracing-disabled ingest allocates %.4f objects/item (%.0f/batch), want < 0.01",
			perItem, allocs)
	}
}

func TestIngestorPutSteadyStateAllocs(t *testing.T) {
	agg, err := New(KindCountMin, WithEpsilon(0.01), WithDelta(0.01))
	if err != nil {
		t.Fatal(err)
	}
	// A huge latency budget keeps the worker parked, so this measures the
	// producer path alone: mutex, append into the recycled buffer.
	in, err := NewIngestor(agg, WithBatchSize(1<<20), WithQueueCap(1<<21))
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	for i := 0; i < 100000; i++ { // warm the queue buffer past the working size
		if err := in.Put(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	var x uint64
	allocs := testing.AllocsPerRun(50000, func() {
		if err := in.Put(x); err != nil {
			t.Fatal(err)
		}
		x++
	})
	if allocs >= 0.01 {
		t.Fatalf("Ingestor.Put allocates %.4f objects/call, want 0", allocs)
	}
}
