package streamagg

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/workload"
)

// buildFullPipeline registers one aggregate of every kind. Items are
// drawn from [0, 4096) so WindowSum and CountMinRange accept the same
// stream the frequency aggregates see.
func buildFullPipeline(t *testing.T) *Pipeline {
	t.Helper()
	p := NewPipeline()
	add := func(name string, kind Kind, opts ...Option) {
		if _, err := p.Add(name, kind, opts...); err != nil {
			t.Fatalf("Add(%s): %v", name, err)
		}
	}
	add("ones", KindBasicCounter, WithWindow(4096), WithEpsilon(0.05))
	add("load", KindWindowSum, WithWindow(4096), WithMaxValue(4095), WithEpsilon(0.05))
	add("freq", KindFreq, WithEpsilon(0.01))
	add("recent", KindSlidingFreq, WithWindow(8192), WithEpsilon(0.02), WithVariant(VariantWorkEfficient))
	add("cm", KindCountMin, WithEpsilon(0.001), WithDelta(0.01), WithSeed(7))
	add("dist", KindCountMinRange, WithUniverseBits(12), WithEpsilon(0.002), WithDelta(0.01), WithSeed(3))
	add("cs", KindCountSketch, WithEpsilon(0.05), WithDelta(0.01), WithSeed(9))
	return p
}

// comparePipelines asserts both pipelines answer every query surface
// identically — the checkpoint/restore contract.
func comparePipelines(t *testing.T, a, b *Pipeline, probes []uint64) {
	t.Helper()
	if a.StreamLen() != b.StreamLen() {
		t.Fatalf("StreamLen diverged: %d vs %d", a.StreamLen(), b.StreamLen())
	}
	if a.SpaceWords() != b.SpaceWords() {
		t.Fatalf("SpaceWords diverged: %d vs %d", a.SpaceWords(), b.SpaceWords())
	}
	for _, name := range []string{"freq", "recent", "cm", "cs"} {
		for _, item := range probes {
			ea, err := a.Estimate(name, item)
			if err != nil {
				t.Fatal(err)
			}
			eb, err := b.Estimate(name, item)
			if err != nil {
				t.Fatal(err)
			}
			if ea != eb {
				t.Fatalf("%s: estimate diverged for item %d: %d vs %d", name, item, ea, eb)
			}
		}
	}
	for _, name := range []string{"ones", "load"} {
		va, err := a.Value(name)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := b.Value(name)
		if err != nil {
			t.Fatal(err)
		}
		if va != vb {
			t.Fatalf("%s: value diverged: %d vs %d", name, va, vb)
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		qa, err := a.Quantile("dist", q)
		if err != nil {
			t.Fatal(err)
		}
		qb, err := b.Quantile("dist", q)
		if err != nil {
			t.Fatal(err)
		}
		if qa != qb {
			t.Fatalf("dist: quantile %g diverged: %d vs %d", q, qa, qb)
		}
	}
	ra, _ := a.RangeCount("dist", 0, 2047)
	rb, _ := b.RangeCount("dist", 0, 2047)
	if ra != rb {
		t.Fatalf("dist: range count diverged: %d vs %d", ra, rb)
	}
	ha, err := a.HeavyHitters("recent", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.HeavyHitters("recent", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(ha) != len(hb) {
		t.Fatalf("recent: heavy-hitter sets diverged: %d vs %d entries", len(ha), len(hb))
	}
	for i := range ha {
		if ha[i] != hb[i] {
			t.Fatalf("recent: heavy hitter %d diverged: %+v vs %+v", i, ha[i], hb[i])
		}
	}
}

// TestPipelineConcurrentStressAndCheckpoint is the integration test for
// the whole new surface: all seven kinds in one pipeline, minibatches
// ingested while query goroutines hammer every keyed query (run under
// -race in CI), a checkpoint taken mid-stream, restored, and both
// pipelines fed the identical suffix — estimates must be identical to an
// uninterrupted run.
func TestPipelineConcurrentStressAndCheckpoint(t *testing.T) {
	p := buildFullPipeline(t)
	if got := p.Len(); got != 7 {
		t.Fatalf("Len = %d, want 7", got)
	}

	stream := workload.Uniform(17, 60000, 4096)
	batches := workload.Batches(stream, 2048)
	half := len(batches) / 2
	probes := []uint64{0, 1, 2, 3, 10, 100, 2047, 4095}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					for _, name := range []string{"freq", "recent", "cm", "cs"} {
						if _, err := p.Estimate(name, 42); err != nil {
							t.Error(err)
							return
						}
					}
					_, _ = p.Value("ones")
					_, _ = p.Value("load")
					_, _ = p.HeavyHitters("recent", 0.05)
					_, _ = p.TopK("freq", 5)
					_, _ = p.Quantile("dist", 0.5)
					_, _ = p.RangeCount("dist", 0, 1000)
					_ = p.StreamLen()
					_ = p.SpaceWords()
				}
			}
		}()
	}

	for _, b := range batches[:half] {
		if err := p.ProcessBatch(b); err != nil {
			t.Fatal(err)
		}
	}

	// Checkpoint mid-stream, concurrently with the query load.
	ckpt, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := &Pipeline{} // zero value, no pre-registration
	if err := restored.UnmarshalBinary(ckpt); err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Names(), p.Names(); len(got) != len(want) {
		t.Fatalf("restored %d aggregates, want %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("restored name order %v, want %v", got, want)
			}
		}
	}

	for _, b := range batches[half:] {
		if err := p.ProcessBatch(b); err != nil {
			t.Fatal(err)
		}
		if err := restored.ProcessBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if p.StreamLen() != int64(len(stream)) {
		t.Fatalf("StreamLen = %d, want %d", p.StreamLen(), len(stream))
	}
	comparePipelines(t, p, restored, probes)

	// Double round trip: a restored pipeline must itself checkpoint.
	ckpt2, err := restored.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	again := NewPipeline()
	if err := again.UnmarshalBinary(ckpt2); err != nil {
		t.Fatal(err)
	}
	comparePipelines(t, restored, again, probes)
}

func TestPipelineRegistrationErrors(t *testing.T) {
	p := NewPipeline()
	if err := p.Register("", nil); !errors.Is(err, ErrBadParam) {
		t.Fatal("empty name accepted")
	}
	if err := p.Register("x", nil); !errors.Is(err, ErrBadParam) {
		t.Fatal("nil aggregate accepted")
	}
	if _, err := p.Add("f", KindFreq); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Add("f", KindCountMin); !errors.Is(err, ErrBadParam) {
		t.Fatal("duplicate name accepted")
	}
	if _, err := p.Add("bad", Kind("nope")); !errors.Is(err, ErrBadParam) {
		t.Fatal("unknown kind accepted")
	}
	if _, err := p.Add("badopt", KindFreq, WithEpsilon(0)); !errors.Is(err, ErrBadParam) {
		t.Fatal("invalid option accepted")
	}
	if got := p.Names(); len(got) != 1 || got[0] != "f" {
		t.Fatalf("Names = %v", got)
	}
}

// TestPipelineUnknownNameSentinel: every keyed query method on an
// unregistered name must return the named sentinel ErrNoSuchAggregate
// (callers dispatch on it to distinguish "no such key" from "key exists
// but cannot answer this query"), on empty and populated pipelines alike.
func TestPipelineUnknownNameSentinel(t *testing.T) {
	queries := map[string]func(p *Pipeline) error{
		"Estimate":     func(p *Pipeline) error { _, err := p.Estimate("nope", 1); return err },
		"Value":        func(p *Pipeline) error { _, err := p.Value("nope"); return err },
		"HeavyHitters": func(p *Pipeline) error { _, err := p.HeavyHitters("nope", 0.1); return err },
		"TopK":         func(p *Pipeline) error { _, err := p.TopK("nope", 3); return err },
		"RangeCount":   func(p *Pipeline) error { _, err := p.RangeCount("nope", 0, 10); return err },
		"Quantile":     func(p *Pipeline) error { _, err := p.Quantile("nope", 0.5); return err },
	}
	for _, tc := range []struct {
		name string
		p    *Pipeline
	}{
		{"empty", NewPipeline()},
		{"populated", buildFullPipeline(t)},
	} {
		for method, q := range queries {
			err := q(tc.p)
			if !errors.Is(err, ErrNoSuchAggregate) {
				t.Fatalf("%s pipeline: %s on unknown name returned %v, want ErrNoSuchAggregate", tc.name, method, err)
			}
			if !strings.Contains(err.Error(), "nope") {
				t.Fatalf("%s pipeline: %s error does not name the missing key: %v", tc.name, method, err)
			}
			// The sentinel must not be conflated with the other sentinels.
			if errors.Is(err, ErrUnsupportedQuery) || errors.Is(err, ErrBadParam) {
				t.Fatalf("%s pipeline: %s error matches the wrong sentinel: %v", tc.name, method, err)
			}
		}
	}
}

func TestPipelineQueryErrors(t *testing.T) {
	p := buildFullPipeline(t)
	if _, err := p.Estimate("nope", 1); !errors.Is(err, ErrNoSuchAggregate) {
		t.Fatalf("unknown name: %v", err)
	}
	if _, err := p.Value("freq"); !errors.Is(err, ErrUnsupportedQuery) {
		t.Fatalf("Value on freq: %v", err)
	}
	if _, err := p.Estimate("ones", 1); !errors.Is(err, ErrUnsupportedQuery) {
		t.Fatalf("Estimate on basic counter: %v", err)
	}
	if _, err := p.HeavyHitters("cm", 0.1); !errors.Is(err, ErrUnsupportedQuery) {
		t.Fatalf("HeavyHitters on count-min: %v", err)
	}
	if _, err := p.TopK("load", 3); !errors.Is(err, ErrUnsupportedQuery) {
		t.Fatalf("TopK on window-sum: %v", err)
	}
	if _, err := p.Quantile("freq", 0.5); !errors.Is(err, ErrUnsupportedQuery) {
		t.Fatalf("Quantile on freq: %v", err)
	}
	if _, err := p.RangeCount("cs", 0, 10); !errors.Is(err, ErrUnsupportedQuery) {
		t.Fatalf("RangeCount on count-sketch: %v", err)
	}
	// Negative k must not panic through the keyed surface.
	for _, name := range []string{"freq", "recent"} {
		if top, err := p.TopK(name, -1); err != nil || len(top) != 0 {
			t.Fatalf("TopK(%s, -1) = %v, %v; want empty", name, top, err)
		}
	}
}

// A failing aggregate (WindowSum on an out-of-bound value) reports its
// name, ingests nothing, and does not stop its siblings.
func TestPipelinePartialFailure(t *testing.T) {
	p := NewPipeline()
	if _, err := p.Add("sum", KindWindowSum, WithWindow(100), WithMaxValue(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Add("freq", KindFreq); err != nil {
		t.Fatal(err)
	}
	err := p.ProcessBatch([]uint64{1, 2, 99})
	if !errors.Is(err, ErrBadParam) {
		t.Fatalf("overflow not reported: %v", err)
	}
	if !strings.Contains(err.Error(), "sum") {
		t.Fatalf("error not tagged with the aggregate name: %v", err)
	}
	v, err := p.Value("sum")
	if err != nil || v != 0 {
		t.Fatalf("failed aggregate ingested anyway: %d, %v", v, err)
	}
	if e, err := p.Estimate("freq", 1); err != nil || e != 1 {
		t.Fatalf("sibling did not ingest: %d, %v", e, err)
	}
}

func TestPipelineCheckpointRejectsWrongEnvelope(t *testing.T) {
	f, _ := NewFreqEstimator(0.1)
	aggCkpt, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var p Pipeline
	if err := p.UnmarshalBinary(aggCkpt); !errors.Is(err, ErrBadParam) {
		t.Fatalf("aggregate checkpoint accepted by pipeline: %v", err)
	}
	if err := p.UnmarshalBinary([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	pCkpt, err := (&Pipeline{}).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.UnmarshalBinary(pCkpt); !errors.Is(err, ErrBadParam) {
		t.Fatalf("pipeline checkpoint accepted by aggregate: %v", err)
	}
}

// StreamLen survives a per-aggregate checkpoint round trip even for
// kinds whose internal state does not track it (BasicCounter, WindowSum,
// sketches).
func TestAggregateStreamLenRestored(t *testing.T) {
	for _, kind := range []Kind{
		KindBasicCounter, KindWindowSum, KindFreq, KindSlidingFreq,
		KindCountMin, KindCountMinRange, KindCountSketch,
	} {
		opts := map[Kind][]Option{
			KindBasicCounter:  {WithWindow(64)},
			KindWindowSum:     {WithWindow(64), WithMaxValue(4095)},
			KindSlidingFreq:   {WithWindow(64)},
			KindCountMinRange: {WithUniverseBits(12)},
		}[kind]
		agg, err := New(kind, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.ProcessBatch([]uint64{1, 2, 3, 0, 5}); err != nil {
			t.Fatal(err)
		}
		ckpt, err := agg.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := zeroAggregate(kind)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.UnmarshalBinary(ckpt); err != nil {
			t.Fatal(err)
		}
		if fresh.StreamLen() != 5 {
			t.Fatalf("%s: StreamLen after restore = %d, want 5", kind, fresh.StreamLen())
		}
	}
}
