package federation

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/metrics"
)

// fakeRoot is an httptest /v1/merge endpoint with a scriptable response
// sequence; once the script runs out it keeps answering with the last
// entry.
type fakeRoot struct {
	mu     sync.Mutex
	script []func(w http.ResponseWriter, env *Envelope)
	got    []*Envelope
}

func (f *fakeRoot) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body := make([]byte, 0, 4096)
		buf := make([]byte, 4096)
		for {
			n, err := r.Body.Read(buf)
			body = append(body, buf[:n]...)
			if err != nil {
				break
			}
		}
		env, err := DecodeEnvelope(body)
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			_ = json.NewEncoder(w).Encode(mergeReject{Error: err.Error()})
			return
		}
		f.mu.Lock()
		f.got = append(f.got, env)
		step := f.script[0]
		if len(f.script) > 1 {
			f.script = f.script[1:]
		}
		f.mu.Unlock()
		step(w, env)
	}
}

func (f *fakeRoot) envelopes() []*Envelope {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*Envelope(nil), f.got...)
}

func ok(w http.ResponseWriter, env *Envelope) {
	_ = json.NewEncoder(w).Encode(map[string]any{"applied": true, "seq": env.Seq})
}

func status(code int) func(http.ResponseWriter, *Envelope) {
	return func(w http.ResponseWriter, _ *Envelope) { w.WriteHeader(code) }
}

func reject(code int, reason string) func(http.ResponseWriter, *Envelope) {
	return func(w http.ResponseWriter, _ *Envelope) {
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(mergeReject{Error: "rejected", Reason: reason})
	}
}

// newTestPusher wires a Pusher at the fake root with instant backoff.
func newTestPusher(t *testing.T, root *fakeRoot, cfg PusherConfig) (*Pusher, *metrics.Registry) {
	t.Helper()
	srv := httptest.NewServer(root.handler())
	t.Cleanup(srv.Close)
	reg := metrics.NewRegistry()
	cfg.URL = srv.URL + "/v1/merge"
	if cfg.Node == "" {
		cfg.Node = "edge-1"
	}
	cfg.Registry = reg
	if cfg.Epoch == 0 {
		cfg.Epoch = 7
	}
	p, err := NewPusher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.sleep = func(context.Context, time.Duration) error { return nil }
	return p, reg
}

func counter(reg *metrics.Registry, result string) *metrics.Counter {
	return reg.Counter("streamagg_federation_pushes_total",
		//agglint:ignore metriclabel test helper; call sites pass the fixed outcome literals
		"Federation push attempts by outcome.", "result", result)
}

func staticSource(payload string) Source {
	return SourceFunc(func(bool) ([]byte, error) { return []byte(payload), nil })
}

func TestPusherValidation(t *testing.T) {
	src := staticSource("x")
	cases := []PusherConfig{
		{Node: "n", Source: src},                                     // no URL
		{URL: "http://x/v1/merge", Source: src},                      // no node
		{URL: "http://x/v1/merge", Node: "n"},                        // no source
		{URL: "http://x/v1/merge", Node: "n", Source: src, Mode: 99}, // bad mode
	}
	for i, cfg := range cases {
		if _, err := NewPusher(cfg); err == nil {
			t.Fatalf("case %d: NewPusher accepted an invalid config", i)
		}
	}
	p, err := NewPusher(PusherConfig{URL: "http://x/v1/merge", Node: "n", Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if p.Epoch() == 0 {
		t.Fatal("zero Epoch was not defaulted")
	}
	if p.Interval() != DefaultInterval || p.Mode() != ModeFull {
		t.Fatalf("defaults: interval %v, mode %v", p.Interval(), p.Mode())
	}
}

func TestPusherSendsSequencedEnvelopes(t *testing.T) {
	root := &fakeRoot{script: []func(http.ResponseWriter, *Envelope){ok}}
	p, reg := newTestPusher(t, root, PusherConfig{Source: staticSource("full state")})
	for i := 0; i < 3; i++ {
		if err := p.Push(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	envs := root.envelopes()
	if len(envs) != 3 {
		t.Fatalf("root saw %d envelopes", len(envs))
	}
	for i, env := range envs {
		if env.Node != "edge-1" || env.Epoch != 7 || env.Seq != uint64(i+1) || env.Mode != ModeFull {
			t.Fatalf("envelope %d: %+v", i, env)
		}
		if string(env.Payload) != "full state" {
			t.Fatalf("envelope %d payload %q", i, env.Payload)
		}
	}
	if got := counter(reg, "sent").Value(); got != 3 {
		t.Fatalf("sent counter = %d", got)
	}
	if got := reg.Gauge("streamagg_federation_push_last_seq",
		"Seq of the last acknowledged push.").Value(); got != 3 {
		t.Fatalf("last_seq gauge = %d", got)
	}
}

func TestPusherRetriesTransientFailures(t *testing.T) {
	root := &fakeRoot{script: []func(http.ResponseWriter, *Envelope){
		status(http.StatusInternalServerError),
		status(http.StatusTooManyRequests),
		ok,
	}}
	p, reg := newTestPusher(t, root, PusherConfig{Source: staticSource("payload")})
	if err := p.Push(context.Background()); err != nil {
		t.Fatal(err)
	}
	envs := root.envelopes()
	if len(envs) != 3 {
		t.Fatalf("root saw %d attempts, want 3", len(envs))
	}
	// All attempts carry the same seq: retries, not new pushes.
	for _, env := range envs {
		if env.Seq != 1 {
			t.Fatalf("retry changed seq: %+v", env)
		}
	}
	if got := counter(reg, "retried").Value(); got != 2 {
		t.Fatalf("retried counter = %d", got)
	}
	if got := counter(reg, "sent").Value(); got != 1 {
		t.Fatalf("sent counter = %d", got)
	}
}

func TestPusherGivesUpAfterAttempts(t *testing.T) {
	root := &fakeRoot{script: []func(http.ResponseWriter, *Envelope){
		status(http.StatusServiceUnavailable),
	}}
	p, reg := newTestPusher(t, root, PusherConfig{Source: staticSource("payload")})
	if err := p.Push(context.Background()); err == nil {
		t.Fatal("Push succeeded against an always-503 root")
	}
	if got := len(root.envelopes()); got != defaultAttempts {
		t.Fatalf("root saw %d attempts, want %d", got, defaultAttempts)
	}
	if got := counter(reg, "failed").Value(); got != 1 {
		t.Fatalf("failed counter = %d", got)
	}
}

func TestPusherDuplicateTreatedAsDelivered(t *testing.T) {
	root := &fakeRoot{script: []func(http.ResponseWriter, *Envelope){
		reject(http.StatusConflict, "duplicate"),
	}}
	p, reg := newTestPusher(t, root, PusherConfig{Source: staticSource("payload")})
	if err := p.Push(context.Background()); err != nil {
		t.Fatalf("duplicate 409 surfaced as an error: %v", err)
	}
	if got := counter(reg, "duplicate").Value(); got != 1 {
		t.Fatalf("duplicate counter = %d", got)
	}
	if got := counter(reg, "sent").Value(); got != 0 {
		t.Fatalf("sent counter = %d", got)
	}
}

func TestPusherPermanentRejection(t *testing.T) {
	root := &fakeRoot{script: []func(http.ResponseWriter, *Envelope){
		reject(http.StatusConflict, "incompatible"),
	}}
	p, reg := newTestPusher(t, root, PusherConfig{Source: staticSource("payload")})
	if err := p.Push(context.Background()); err == nil {
		t.Fatal("incompatible 409 did not surface as an error")
	}
	if got := len(root.envelopes()); got != 1 {
		t.Fatalf("permanent rejection was retried: %d attempts", got)
	}
	if got := counter(reg, "failed").Value(); got != 1 {
		t.Fatalf("failed counter = %d", got)
	}
}

// TestPusherDeltaPendingSurvives: a delta captured but never
// acknowledged is the only copy of that data — it must be retried under
// its original seq on the next Push, and the source must not be
// re-captured until it lands.
func TestPusherDeltaPendingSurvives(t *testing.T) {
	root := &fakeRoot{script: []func(http.ResponseWriter, *Envelope){
		status(http.StatusInternalServerError), // exhausts all attempts
		ok,
	}}
	var captures int
	src := SourceFunc(func(delta bool) ([]byte, error) {
		if !delta {
			return nil, errors.New("expected delta capture")
		}
		captures++
		return []byte{byte('0' + captures)}, nil
	})
	p, reg := newTestPusher(t, root, PusherConfig{Source: src, Mode: ModeDelta})
	// Make the 500 burn all attempts.
	root.mu.Lock()
	root.script = []func(http.ResponseWriter, *Envelope){status(http.StatusInternalServerError)}
	root.mu.Unlock()
	if err := p.Push(context.Background()); err == nil {
		t.Fatal("Push succeeded against an always-500 root")
	}
	if captures != 1 {
		t.Fatalf("captures = %d after failed push", captures)
	}
	// Root recovers; the next Push retries the pending delta first.
	root.mu.Lock()
	root.script = []func(http.ResponseWriter, *Envelope){ok}
	root.mu.Unlock()
	if err := p.Push(context.Background()); err != nil {
		t.Fatal(err)
	}
	if captures != 1 {
		t.Fatalf("pending delta was re-captured: %d captures", captures)
	}
	envs := root.envelopes()
	last := envs[len(envs)-1]
	if last.Seq != 1 || string(last.Payload) != "1" {
		t.Fatalf("retried delta: %+v", last)
	}
	// A fresh Push now captures new data under the next seq.
	if err := p.Push(context.Background()); err != nil {
		t.Fatal(err)
	}
	envs = root.envelopes()
	last = envs[len(envs)-1]
	if last.Seq != 2 || string(last.Payload) != "2" {
		t.Fatalf("post-recovery delta: %+v", last)
	}
	if got := counter(reg, "sent").Value(); got != 2 {
		t.Fatalf("sent counter = %d", got)
	}
}

// TestPusherDeltaPermanentRejectionDropsPending: a payload the root will
// never take must not wedge the delta stream.
func TestPusherDeltaPermanentRejectionDropsPending(t *testing.T) {
	root := &fakeRoot{script: []func(http.ResponseWriter, *Envelope){
		reject(http.StatusBadRequest, ""),
		ok,
	}}
	var captures int
	src := SourceFunc(func(bool) ([]byte, error) {
		captures++
		return []byte{byte('0' + captures)}, nil
	})
	p, _ := newTestPusher(t, root, PusherConfig{Source: src, Mode: ModeDelta})
	if err := p.Push(context.Background()); err == nil {
		t.Fatal("400 did not surface as an error")
	}
	if err := p.Push(context.Background()); err != nil {
		t.Fatal(err)
	}
	envs := root.envelopes()
	last := envs[len(envs)-1]
	// The poisoned seq-1 payload was dropped; seq 2 carries fresh data.
	if last.Seq != 2 || string(last.Payload) != "2" {
		t.Fatalf("after permanent rejection: %+v", last)
	}
}

// TestPusherFinal: in delta mode a Final with a carried-over pending
// delta pushes twice — the pending payload, then what accumulated since.
func TestPusherFinal(t *testing.T) {
	root := &fakeRoot{script: []func(http.ResponseWriter, *Envelope){
		status(http.StatusInternalServerError),
	}}
	var captures int
	src := SourceFunc(func(bool) ([]byte, error) {
		captures++
		return []byte{byte('0' + captures)}, nil
	})
	p, _ := newTestPusher(t, root, PusherConfig{Source: src, Mode: ModeDelta})
	if err := p.Push(context.Background()); err == nil {
		t.Fatal("expected the seeding push to fail")
	}
	root.mu.Lock()
	root.script = []func(http.ResponseWriter, *Envelope){ok}
	root.mu.Unlock()
	if err := p.Final(context.Background()); err != nil {
		t.Fatal(err)
	}
	envs := root.envelopes()
	tail := envs[len(envs)-2:]
	if tail[0].Seq != 1 || string(tail[0].Payload) != "1" {
		t.Fatalf("Final first push: %+v", tail[0])
	}
	if tail[1].Seq != 2 || string(tail[1].Payload) != "2" {
		t.Fatalf("Final second push: %+v", tail[1])
	}

	// Full mode: Final is a single ordinary push.
	root2 := &fakeRoot{script: []func(http.ResponseWriter, *Envelope){ok}}
	p2, _ := newTestPusher(t, root2, PusherConfig{Source: staticSource("state")})
	if err := p2.Final(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(root2.envelopes()); got != 1 {
		t.Fatalf("full-mode Final pushed %d times", got)
	}
}

// TestPusherRun: the interval loop pushes until the context ends.
func TestPusherRun(t *testing.T) {
	root := &fakeRoot{script: []func(http.ResponseWriter, *Envelope){ok}}
	p, _ := newTestPusher(t, root, PusherConfig{
		Source:   staticSource("state"),
		Interval: 5 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Run(ctx) }()
	deadline := time.After(5 * time.Second)
	for len(root.envelopes()) < 2 {
		select {
		case <-deadline:
			t.Fatal("Run made no progress")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v", err)
	}
}
