// Package federation implements edge→root merge fan-in for streamagg
// deployments: N edge nodes absorb local traffic at full speed and
// periodically ship their summaries to a root that answers global
// queries in one hop. The wire unit is the Envelope — a node-tagged,
// sequence-numbered wrapper around the library's existing checkpoint
// format — pushed over HTTP to the root's /v1/merge endpoint and folded
// in with the Merger capability, the mergeable-summaries property
// [ACH+13] at cluster scope.
//
// Delivery is at-least-once: the Pusher retries transient failures, so
// the root deduplicates by (epoch, seq) per node and a replayed push is
// a no-op. Two push modes trade off differently — see Mode.
package federation

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
)

// Wire-format limits. MaxNodeID keeps per-node metric labels and maps
// bounded; MaxPayload matches the server's checkpoint body cap.
const (
	MaxNodeID  = 128
	MaxPayload = 256 << 20
)

// envelopeMagic frames federation envelopes so a truncated or foreign
// body fails fast instead of deep inside gob.
var envelopeMagic = []byte("FMv1")

// Wire-level sentinel errors. ErrBadEnvelope covers framing and field
// validation (HTTP 400); ErrStale covers duplicate and out-of-order
// pushes the root has already superseded (HTTP 409, safe to drop).
var (
	ErrBadEnvelope = errors.New("federation: bad merge envelope")
	ErrStale       = errors.New("federation: stale push")
)

// Mode selects what an envelope's payload represents.
type Mode int

const (
	// ModeFull ships the node's complete summary every push. The root
	// keeps only the latest full contribution per node, so pushes are
	// idempotent-by-seq and a lost push costs nothing — the next one
	// carries everything. The default.
	ModeFull Mode = iota
	// ModeDelta ships only what accumulated since the previous push
	// (the edge resets its state after capturing). The root merges
	// deltas destructively into its base pipeline; payloads stay small,
	// but a delta lost after the edge reset is gone, so the Pusher
	// retries the same captured delta until the root acknowledges it.
	ModeDelta
)

// String returns the flag-friendly name ("full", "delta").
func (m Mode) String() string {
	switch m {
	case ModeFull:
		return "full"
	case ModeDelta:
		return "delta"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode maps "full" or "delta" to the Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "full":
		return ModeFull, nil
	case "delta":
		return ModeDelta, nil
	}
	return 0, fmt.Errorf("%w: push mode %q (want full or delta)", ErrBadEnvelope, s)
}

// Envelope is one federation push: a checkpoint payload tagged with the
// origin node and a monotonically increasing (Epoch, Seq) pair. Seq
// increases per push within a process lifetime; Epoch increases across
// restarts (the Pusher derives it from the start time), so a restarted
// edge that forgot its seq counter still moves strictly forward and the
// root's lexicographic (epoch, seq) comparison stays correct.
type Envelope struct {
	Node  string
	Epoch uint64
	Seq   uint64
	Mode  Mode
	// Agg names the single root-pipeline member the payload targets; it
	// is empty when Payload is a whole-pipeline checkpoint (members
	// matched by name+kind).
	Agg     string
	Payload []byte
}

// validate enforces the field constraints shared by encode and decode.
func (e *Envelope) validate() error {
	switch {
	case e.Node == "":
		return fmt.Errorf("%w: empty node ID", ErrBadEnvelope)
	case len(e.Node) > MaxNodeID:
		return fmt.Errorf("%w: node ID longer than %d bytes", ErrBadEnvelope, MaxNodeID)
	case e.Mode != ModeFull && e.Mode != ModeDelta:
		return fmt.Errorf("%w: unknown mode %d", ErrBadEnvelope, int(e.Mode))
	case len(e.Payload) == 0:
		return fmt.Errorf("%w: empty payload", ErrBadEnvelope)
	case len(e.Payload) > MaxPayload:
		return fmt.Errorf("%w: payload larger than %d bytes", ErrBadEnvelope, MaxPayload)
	}
	return nil
}

// EncodeEnvelope serializes an envelope for POST /v1/merge: a 4-byte
// magic followed by the gob-encoded envelope.
func EncodeEnvelope(e *Envelope) ([]byte, error) {
	if e == nil {
		return nil, fmt.Errorf("%w: nil envelope", ErrBadEnvelope)
	}
	if err := e.validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Write(envelopeMagic)
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		return nil, fmt.Errorf("federation: encoding envelope: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeEnvelope parses and validates an envelope from a request body.
// Any malformed input — bad magic, truncated gob, out-of-range fields —
// returns an error wrapping ErrBadEnvelope; the decoder never panics on
// adversarial bytes (FuzzEnvelopeDecode holds it to that).
func DecodeEnvelope(data []byte) (*Envelope, error) {
	if !bytes.HasPrefix(data, envelopeMagic) {
		return nil, fmt.Errorf("%w: missing %q frame", ErrBadEnvelope, envelopeMagic)
	}
	var e Envelope
	if err := gob.NewDecoder(bytes.NewReader(data[len(envelopeMagic):])).Decode(&e); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
	}
	if err := e.validate(); err != nil {
		return nil, err
	}
	return &e, nil
}
