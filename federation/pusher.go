package federation

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"repro/metrics"
	"repro/trace"
)

// Source supplies the Pusher's payloads. Capture(false) returns the
// node's complete current state (ModeFull); Capture(true) returns the
// state accumulated since the previous capture and atomically resets it
// (ModeDelta) — the serving layer implements the reset with
// Ingestor.Swap so no items fall between the cut. Captures happen at
// quiesced minibatch boundaries, so the payload is always a clean
// checkpoint.
type Source interface {
	Capture(delta bool) ([]byte, error)
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(delta bool) ([]byte, error)

// Capture calls f.
func (f SourceFunc) Capture(delta bool) ([]byte, error) { return f(delta) }

// Pusher retry/backoff defaults.
const (
	DefaultInterval  = 10 * time.Second
	DefaultRetryBase = 200 * time.Millisecond
	DefaultRetryMax  = 5 * time.Second
	defaultAttempts  = 4 // tries per PushNow before deferring to the next tick
)

// PusherConfig configures a Pusher. URL, Node, and Source are required.
type PusherConfig struct {
	// URL is the root's merge endpoint, e.g. "http://root:8080/v1/merge".
	URL string
	// Node is this edge's stable identity at the root; pushes from the
	// same Node dedup by (epoch, seq). Two processes must never share
	// a Node ID.
	Node string
	// Source captures the payloads (see Source).
	Source Source
	// Mode selects full-state (default) or delta pushes.
	Mode Mode
	// Agg, when non-empty, targets a single named member of the root's
	// pipeline; the Source must then return a single-aggregate
	// checkpoint. Only meaningful with ModeFull sources that capture
	// one aggregate.
	Agg string
	// Interval between pushes for Run (default 10s).
	Interval time.Duration
	// Epoch tags this process lifetime; zero derives it from the start
	// time, which keeps (epoch, seq) strictly increasing across edge
	// restarts without persisting the counter.
	Epoch uint64
	// Client overrides http.DefaultClient.
	Client *http.Client
	// Registry receives the push-path instruments (nil: private).
	Registry *metrics.Registry
	// Logger receives one record per retry/failure, with the push's
	// trace and span IDs attached when the push is sampled (nil:
	// discard).
	Logger *slog.Logger
	// Tracer, when set, records a federation.push span per push and
	// propagates its context to the root via the traceparent header, so
	// the root's merge apply joins the same trace.
	Tracer *trace.Tracer
	// Parent, when set, supplies the span context each push span joins —
	// typically the serving layer's last sampled ingest — linking edge
	// capture, push, and root merge into one trace.
	Parent func() trace.SpanContext
	// RetryBase/RetryMax bound the exponential backoff between attempts
	// within one push (defaults 200ms / 5s).
	RetryBase, RetryMax time.Duration
}

// Pusher periodically captures a Source and ships it to a root's
// /v1/merge endpoint with retry, exponential backoff, and seq tagging.
// Methods are not safe for concurrent use; Run owns the Pusher until it
// returns, after which a final Push may flush the remainder.
type Pusher struct {
	cfg   PusherConfig
	epoch uint64
	seq   uint64
	sleep func(context.Context, time.Duration) error

	// pending holds a captured-but-unacknowledged delta: the edge state
	// was already reset, so this payload is the only copy and must be
	// retried under its seq until the root lands or rejects it.
	pending    []byte
	pendingSeq uint64

	sent      *metrics.Counter
	failed    *metrics.Counter
	retried   *metrics.Counter
	dupes     *metrics.Counter
	pushBytes *metrics.Histogram
	lastSeq   *metrics.Gauge
}

// NewPusher validates cfg and builds a Pusher.
func NewPusher(cfg PusherConfig) (*Pusher, error) {
	if cfg.URL == "" {
		return nil, errors.New("federation: pusher needs a target URL")
	}
	if cfg.Node == "" || len(cfg.Node) > MaxNodeID {
		return nil, fmt.Errorf("federation: pusher needs a node ID (1..%d bytes)", MaxNodeID)
	}
	if cfg.Source == nil {
		return nil, errors.New("federation: pusher needs a Source")
	}
	if cfg.Mode != ModeFull && cfg.Mode != ModeDelta {
		return nil, fmt.Errorf("federation: unknown push mode %d", int(cfg.Mode))
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = DefaultRetryBase
	}
	if cfg.RetryMax < cfg.RetryBase {
		cfg.RetryMax = DefaultRetryMax
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	cfg.Logger = cfg.Logger.With("node", cfg.Node)
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	epoch := cfg.Epoch
	if epoch == 0 {
		epoch = uint64(time.Now().UnixNano())
	}
	const pushesName = "streamagg_federation_pushes_total"
	const pushesHelp = "Federation push attempts by outcome."
	return &Pusher{
		cfg:   cfg,
		epoch: epoch,
		sleep: sleepCtx,
		sent:  reg.Counter(pushesName, pushesHelp, "result", "sent"),
		failed: reg.Counter(pushesName, pushesHelp,
			"result", "failed"),
		retried: reg.Counter(pushesName, pushesHelp,
			"result", "retried"),
		dupes: reg.Counter(pushesName, pushesHelp,
			"result", "duplicate"),
		pushBytes: reg.Histogram("streamagg_federation_push_payload_bytes",
			"Pushed payload sizes in bytes.", metrics.UnitItems),
		lastSeq: reg.Gauge("streamagg_federation_push_last_seq",
			"Seq of the last acknowledged push."),
	}, nil
}

// Epoch returns the epoch tagging this Pusher's envelopes.
func (p *Pusher) Epoch() uint64 { return p.epoch }

// Interval returns the effective push interval.
func (p *Pusher) Interval() time.Duration { return p.cfg.Interval }

// Mode returns the configured push mode.
func (p *Pusher) Mode() Mode { return p.cfg.Mode }

// sleepCtx sleeps d or returns the context's error early.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Run pushes on every interval tick until ctx is canceled, then returns
// ctx's error. Push failures are logged and counted, never fatal — the
// next tick retries (delta payloads survive in pending).
func (p *Pusher) Run(ctx context.Context) error {
	ticker := time.NewTicker(p.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			if err := p.Push(ctx); err != nil && ctx.Err() == nil {
				p.cfg.Logger.Warn("federation push failed", "url", p.cfg.URL, "err", err)
			}
		}
	}
}

// Push captures the source and ships one envelope, retrying transient
// failures with exponential backoff (a bounded number of attempts; a
// still-unacknowledged delta carries over to the next Push). In delta
// mode an empty-handed capture is skipped only by the Source returning
// an empty payload error — captures themselves are cheap.
func (p *Pusher) Push(ctx context.Context) error {
	// The push span covers capture through acknowledgment. It joins the
	// Parent-supplied context (a sampled ingest at this edge) when one
	// exists, otherwise the tracer's own sampling decides; its context
	// travels to the root in the traceparent header.
	var parent trace.SpanContext
	if p.cfg.Parent != nil {
		parent = p.cfg.Parent()
	}
	span := p.cfg.Tracer.Start("federation.push", parent)
	span.SetAttr("node", p.cfg.Node)
	span.SetAttr("mode", p.cfg.Mode.String())
	err := p.push(ctx, span)
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	span.End()
	return err
}

func (p *Pusher) push(ctx context.Context, span *trace.Span) error {
	payload, seq, err := p.nextPayload()
	if err != nil {
		p.failed.Inc()
		return fmt.Errorf("federation: capturing push payload: %w", err)
	}
	span.SetInt("seq", int64(seq))
	span.SetInt("bytes", int64(len(payload)))
	body, err := EncodeEnvelope(&Envelope{
		Node:    p.cfg.Node,
		Epoch:   p.epoch,
		Seq:     seq,
		Mode:    p.cfg.Mode,
		Agg:     p.cfg.Agg,
		Payload: payload,
	})
	if err != nil {
		p.dropPending()
		p.failed.Inc()
		return err
	}
	backoff := p.cfg.RetryBase
	for attempt := 1; ; attempt++ {
		landed, err := p.send(ctx, body, span.Context())
		if err == nil {
			if landed {
				p.sent.Inc()
				p.pushBytes.Observe(uint64(len(payload)))
				span.SetAttr("result", "sent")
			} else {
				p.dupes.Inc()
				span.SetAttr("result", "duplicate")
			}
			p.lastSeq.Set(int64(seq))
			p.dropPending()
			return nil
		}
		if permanent := new(permanentError); errors.As(err, &permanent) {
			// The root will never accept this payload; retrying cannot
			// help, and in delta mode holding it would wedge the stream.
			p.dropPending()
			p.failed.Inc()
			return err
		}
		if attempt >= defaultAttempts || ctx.Err() != nil {
			p.failed.Inc()
			return err
		}
		p.retried.Inc()
		args := append(span.LogArgs(),
			"seq", seq, "attempt", attempt, "err", err, "backoff", backoff)
		p.cfg.Logger.Warn("federation push retrying", args...)
		if serr := p.sleep(ctx, backoff); serr != nil {
			p.failed.Inc()
			return err
		}
		if backoff *= 2; backoff > p.cfg.RetryMax {
			backoff = p.cfg.RetryMax
		}
	}
}

// Final makes one last push for graceful shutdown. In delta mode a
// carried-over unacknowledged delta is flushed first, then what
// accumulated since that capture; full mode pushes the current state
// once more.
func (p *Pusher) Final(ctx context.Context) error {
	hadPending := p.pending != nil
	if err := p.Push(ctx); err != nil {
		return err
	}
	if p.cfg.Mode == ModeDelta && hadPending {
		return p.Push(ctx)
	}
	return nil
}

// nextPayload returns what to send and under which seq: a pending
// unacknowledged delta, or a fresh capture under a new seq. Full-mode
// captures are always fresh (seq gaps are fine — each payload carries
// everything).
func (p *Pusher) nextPayload() ([]byte, uint64, error) {
	if p.pending != nil {
		return p.pending, p.pendingSeq, nil
	}
	payload, err := p.cfg.Source.Capture(p.cfg.Mode == ModeDelta)
	if err != nil {
		return nil, 0, err
	}
	p.seq++
	if p.cfg.Mode == ModeDelta {
		p.pending, p.pendingSeq = payload, p.seq
	}
	return payload, p.seq, nil
}

func (p *Pusher) dropPending() { p.pending, p.pendingSeq = nil, 0 }

// permanentError marks a response that retrying the same payload cannot
// fix (400, or 409 incompatible).
type permanentError struct{ msg string }

func (e *permanentError) Error() string { return e.msg }

// mergeReject is the JSON body the server returns with 4xx on
// /v1/merge; Reason distinguishes already-landed ("duplicate",
// "stale") from never-landing ("incompatible").
type mergeReject struct {
	Error  string `json:"error"`
	Reason string `json:"reason"`
}

// send POSTs one envelope. Returns (true, nil) when the root applied
// it, (false, nil) when the root had already applied it (duplicate or
// superseded — the payload's information is at the root either way), a
// *permanentError when the root permanently rejected it, or a plain
// error for transient failures worth retrying.
func (p *Pusher) send(ctx context.Context, body []byte, sc trace.SpanContext) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.cfg.URL, bytes.NewReader(body))
	if err != nil {
		return false, &permanentError{msg: fmt.Sprintf("federation: building request: %v", err)}
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if sc.IsValid() {
		req.Header.Set("traceparent", sc.Traceparent())
	}
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	reply, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	switch {
	case resp.StatusCode == http.StatusOK:
		return true, nil
	case resp.StatusCode == http.StatusConflict:
		var rej mergeReject
		if json.Unmarshal(reply, &rej) == nil &&
			(rej.Reason == "duplicate" || rej.Reason == "stale") {
			return false, nil
		}
		return false, &permanentError{msg: fmt.Sprintf(
			"federation: root rejected push: %s", strings.TrimSpace(string(reply)))}
	case resp.StatusCode == http.StatusBadRequest:
		return false, &permanentError{msg: fmt.Sprintf(
			"federation: root rejected push: %s", strings.TrimSpace(string(reply)))}
	default:
		// 429, 5xx, and anything unexpected: worth retrying.
		return false, fmt.Errorf("federation: root returned %s: %s",
			resp.Status, strings.TrimSpace(string(reply)))
	}
}
