package federation

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func validEnvelope() *Envelope {
	return &Envelope{
		Node:    "edge-1",
		Epoch:   42,
		Seq:     7,
		Mode:    ModeFull,
		Payload: []byte("checkpoint bytes"),
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	want := validEnvelope()
	want.Agg = "hot"
	data, err := EncodeEnvelope(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnvelope(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Node != want.Node || got.Epoch != want.Epoch || got.Seq != want.Seq ||
		got.Mode != want.Mode || got.Agg != want.Agg || !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, want)
	}
}

func TestEnvelopeValidation(t *testing.T) {
	cases := []struct {
		label  string
		mutate func(*Envelope)
	}{
		{"empty node", func(e *Envelope) { e.Node = "" }},
		{"oversized node", func(e *Envelope) { e.Node = strings.Repeat("x", MaxNodeID+1) }},
		{"bad mode", func(e *Envelope) { e.Mode = Mode(99) }},
		{"empty payload", func(e *Envelope) { e.Payload = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			e := validEnvelope()
			tc.mutate(e)
			if _, err := EncodeEnvelope(e); !errors.Is(err, ErrBadEnvelope) {
				t.Fatalf("EncodeEnvelope: %v, want ErrBadEnvelope", err)
			}
		})
	}
	if _, err := EncodeEnvelope(nil); !errors.Is(err, ErrBadEnvelope) {
		t.Fatalf("EncodeEnvelope(nil): %v", err)
	}
}

func TestDecodeEnvelopeRejectsGarbage(t *testing.T) {
	good, err := EncodeEnvelope(validEnvelope())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":           nil,
		"wrong magic":     []byte("NOPE" + string(good[4:])),
		"magic only":      []byte("FMv1"),
		"truncated gob":   good[:len(good)/2],
		"trailing junk":   []byte("not an envelope at all"),
		"json lookalike":  []byte(`FMv1{"node":"edge-1"}`),
		"null bytes":      bytes.Repeat([]byte{0}, 64),
		"corrupted field": append(append([]byte{}, good[:8]...), bytes.Repeat([]byte{0xff}, 32)...),
	}
	for label, data := range cases {
		if _, err := DecodeEnvelope(data); !errors.Is(err, ErrBadEnvelope) {
			t.Fatalf("%s: DecodeEnvelope = %v, want ErrBadEnvelope", label, err)
		}
	}
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{"full": ModeFull, "delta": ModeDelta} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("%v.String() = %q", got, got.String())
		}
	}
	if _, err := ParseMode("bogus"); !errors.Is(err, ErrBadEnvelope) {
		t.Fatalf("ParseMode(bogus): %v", err)
	}
	if s := Mode(9).String(); s != "Mode(9)" {
		t.Fatalf("Mode(9).String() = %q", s)
	}
}

// FuzzEnvelopeDecode feeds arbitrary bytes to the merge-envelope
// decoder: it must never panic, and anything it accepts must satisfy
// the envelope invariants and re-encode losslessly.
func FuzzEnvelopeDecode(f *testing.F) {
	if data, err := EncodeEnvelope(validEnvelope()); err == nil {
		f.Add(data)
		f.Add(data[:len(data)-3])
		f.Add(append([]byte("XXv1"), data[4:]...))
	}
	big := validEnvelope()
	big.Mode = ModeDelta
	big.Payload = bytes.Repeat([]byte{0xab}, 4096)
	if data, err := EncodeEnvelope(big); err == nil {
		f.Add(data)
	}
	f.Add([]byte("FMv1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeEnvelope(data)
		if err != nil {
			if !errors.Is(err, ErrBadEnvelope) {
				t.Fatalf("decode error outside ErrBadEnvelope: %v", err)
			}
			return
		}
		if err := e.validate(); err != nil {
			t.Fatalf("decoder accepted an invalid envelope: %v", err)
		}
		re, err := EncodeEnvelope(e)
		if err != nil {
			t.Fatalf("accepted envelope does not re-encode: %v", err)
		}
		e2, err := DecodeEnvelope(re)
		if err != nil {
			t.Fatalf("re-encoded envelope does not decode: %v", err)
		}
		if e2.Node != e.Node || e2.Epoch != e.Epoch || e2.Seq != e.Seq ||
			e2.Mode != e.Mode || e2.Agg != e.Agg || !bytes.Equal(e2.Payload, e.Payload) {
			t.Fatal("re-encode round trip changed the envelope")
		}
	})
}
