package federation

import (
	"bytes"
	"errors"
	"testing"

	streamagg "repro"
	"repro/internal/workload"
	"repro/metrics"
)

// fedPipeline builds a pipeline of the four mergeable kinds with pinned
// seeds so independently built instances merge.
func fedPipeline(t *testing.T, opts ...streamagg.Option) *streamagg.Pipeline {
	t.Helper()
	p := streamagg.NewPipeline()
	add := func(name string, kind streamagg.Kind, opts ...streamagg.Option) {
		t.Helper()
		if _, err := p.Add(name, kind, opts...); err != nil {
			t.Fatal(err)
		}
	}
	add("hot", streamagg.KindFreq, streamagg.WithEpsilon(0.005))
	add("cm", streamagg.KindCountMin,
		append([]streamagg.Option{streamagg.WithEpsilon(1e-3), streamagg.WithSeed(7)}, opts...)...)
	add("dist", streamagg.KindCountMinRange,
		streamagg.WithUniverseBits(18), streamagg.WithEpsilon(0.002), streamagg.WithSeed(3))
	return p
}

func pipelineEnvelope(t *testing.T, p *streamagg.Pipeline, node string, epoch, seq uint64, mode Mode) *Envelope {
	t.Helper()
	payload, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return &Envelope{Node: node, Epoch: epoch, Seq: seq, Mode: mode, Payload: payload}
}

func feed(t *testing.T, p *streamagg.Pipeline, items []uint64) {
	t.Helper()
	if err := p.ProcessBatch(items); err != nil {
		t.Fatal(err)
	}
}

func TestRootApplyAndDedup(t *testing.T) {
	reg := metrics.NewRegistry()
	root := NewRoot(fedPipeline(t), reg)
	edge := fedPipeline(t)
	feed(t, edge, workload.Zipf(11, 10_000, 1.2, 1<<16))

	env := pipelineEnvelope(t, edge, "edge-1", 1, 1, ModeFull)
	if err := root.Apply(env); err != nil {
		t.Fatal(err)
	}
	if got := root.View().StreamLen(); got != 10_000 {
		t.Fatalf("view StreamLen = %d after first push", got)
	}

	// Exact replay: StaleError with Duplicate, view untouched.
	err := root.Apply(env)
	var serr *StaleError
	if !errors.As(err, &serr) || !serr.Duplicate || !errors.Is(err, ErrStale) {
		t.Fatalf("replay: %v, want duplicate StaleError", err)
	}
	if serr.Reason() != "duplicate" {
		t.Fatalf("Reason() = %q", serr.Reason())
	}
	if got := root.View().StreamLen(); got != 10_000 {
		t.Fatalf("view StreamLen = %d after replay, double-counted", got)
	}

	// Out-of-order straggler: stale, not duplicate.
	feed(t, edge, workload.Zipf(12, 1000, 1.2, 1<<16))
	if err := root.Apply(pipelineEnvelope(t, edge, "edge-1", 1, 5, ModeFull)); err != nil {
		t.Fatal(err)
	}
	err = root.Apply(pipelineEnvelope(t, edge, "edge-1", 1, 3, ModeFull))
	if !errors.As(err, &serr) || serr.Duplicate || serr.Reason() != "stale" {
		t.Fatalf("straggler: %v, want non-duplicate StaleError", err)
	}
	// Older epoch loses even with a higher seq.
	err = root.Apply(pipelineEnvelope(t, edge, "edge-1", 0, 99, ModeFull))
	if !errors.As(err, &serr) {
		t.Fatalf("old epoch: %v, want StaleError", err)
	}
	// Newer epoch wins with any seq: a restarted edge moves forward.
	if err := root.Apply(pipelineEnvelope(t, edge, "edge-1", 2, 1, ModeFull)); err != nil {
		t.Fatalf("epoch bump: %v", err)
	}

	nodes := root.Nodes()
	if len(nodes) != 1 || nodes[0].Node != "edge-1" || nodes[0].Epoch != 2 || nodes[0].Seq != 1 {
		t.Fatalf("Nodes() = %+v", nodes)
	}
	if !nodes[0].HasContribution || nodes[0].ContributionLen != 11_000 {
		t.Fatalf("Nodes() contribution = %+v", nodes[0])
	}
}

// TestRootFullReplacesNotAccumulates: repeated full pushes from one node
// overlay only the latest state — the view never double-counts.
func TestRootFullReplacesNotAccumulates(t *testing.T) {
	root := NewRoot(fedPipeline(t), nil)
	stream := workload.Zipf(21, 30_000, 1.2, 1<<16)
	for i, chunk := range [][]uint64{stream[:10_000], stream[:20_000], stream} {
		fresh := fedPipeline(t)
		feed(t, fresh, chunk)
		if err := root.Apply(pipelineEnvelope(t, fresh, "edge-1", 1, uint64(i+1), ModeFull)); err != nil {
			t.Fatal(err)
		}
		if got, want := root.View().StreamLen(), int64(len(chunk)); got != want {
			t.Fatalf("push %d: view StreamLen = %d, want %d", i+1, got, want)
		}
	}
	// The final view answers like a pipeline that saw the stream once.
	oracle := fedPipeline(t)
	feed(t, oracle, stream)
	view := root.View()
	for _, item := range []uint64{stream[0], 1, 999} {
		got, err := view.Estimate("cm", item)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := oracle.Estimate("cm", item)
		if got != want {
			t.Fatalf("cm.Estimate(%d) = %d view, %d oracle", item, got, want)
		}
	}
}

// TestRootMultiNodeView: contributions from several nodes overlay on a
// locally-fed base; the linear sketches match a directly-fed oracle
// exactly.
func TestRootMultiNodeView(t *testing.T) {
	base := fedPipeline(t)
	root := NewRoot(base, nil)
	oracle := fedPipeline(t)

	local := workload.Zipf(30, 5_000, 1.2, 1<<16)
	feed(t, base, local)
	feed(t, oracle, local)
	for i, seed := range []int64{31, 32, 33} {
		stream := workload.Zipf(seed, 8_000, 1.2, 1<<16)
		edge := fedPipeline(t)
		feed(t, edge, stream)
		feed(t, oracle, stream)
		node := string(rune('a' + i))
		if err := root.Apply(pipelineEnvelope(t, edge, node, 1, 1, ModeFull)); err != nil {
			t.Fatal(err)
		}
	}
	view := root.View()
	if got, want := view.StreamLen(), oracle.StreamLen(); got != want {
		t.Fatalf("view StreamLen = %d, want %d", got, want)
	}
	for _, item := range []uint64{1, 2, 17, 999, 65_000} {
		got, err := view.Estimate("cm", item)
		if err != nil {
			t.Fatal(err)
		}
		if want, _ := oracle.Estimate("cm", item); got != want {
			t.Fatalf("cm.Estimate(%d) = %d view, %d oracle", item, got, want)
		}
	}
	if got := len(root.Nodes()); got != 3 {
		t.Fatalf("Nodes() count = %d", got)
	}

	// Local ingest after the view was built invalidates the cache.
	more := workload.Zipf(39, 1_000, 1.2, 1<<16)
	feed(t, base, more)
	feed(t, oracle, more)
	if got, want := root.View().StreamLen(), oracle.StreamLen(); got != want {
		t.Fatalf("post-ingest view StreamLen = %d, want %d", got, want)
	}
}

func TestRootDeltaMergesIntoBase(t *testing.T) {
	base := fedPipeline(t)
	root := NewRoot(base, nil)
	delta := fedPipeline(t)
	feed(t, delta, workload.Zipf(41, 7_000, 1.2, 1<<16))
	if err := root.Apply(pipelineEnvelope(t, delta, "edge-1", 1, 1, ModeDelta)); err != nil {
		t.Fatal(err)
	}
	if got := base.StreamLen(); got != 7_000 {
		t.Fatalf("base StreamLen = %d after delta, want 7000", got)
	}
	// Delta-only nodes have no overlay: View returns the base itself.
	if root.View() != base {
		t.Fatal("View() built an overlay for a delta-only root")
	}
	if ns := root.Nodes(); len(ns) != 1 || ns[0].HasContribution {
		t.Fatalf("Nodes() = %+v", ns)
	}
}

func TestRootRejectsIncompatibleAndMalformed(t *testing.T) {
	reg := metrics.NewRegistry()
	root := NewRoot(fedPipeline(t), reg)

	// A pipeline with a different count-min seed can never merge.
	alien := fedPipeline(t, streamagg.WithSeed(1234))
	feed(t, alien, workload.Zipf(51, 1000, 1.2, 1<<14))
	err := root.Apply(pipelineEnvelope(t, alien, "edge-1", 1, 1, ModeFull))
	if !Incompatible(err) {
		t.Fatalf("incompatible push: %v, want ErrIncompatibleMerge", err)
	}
	// The watermark did not advance: a compatible retry under the same
	// seq lands.
	good := fedPipeline(t)
	feed(t, good, workload.Zipf(52, 1000, 1.2, 1<<14))
	if err := root.Apply(pipelineEnvelope(t, good, "edge-1", 1, 1, ModeFull)); err != nil {
		t.Fatalf("retry after incompatible: %v", err)
	}

	// Undecodable payloads wrap ErrBadEnvelope.
	err = root.Apply(&Envelope{Node: "edge-2", Epoch: 1, Seq: 1, Mode: ModeFull,
		Payload: []byte("not a checkpoint")})
	if !errors.Is(err, ErrBadEnvelope) {
		t.Fatalf("garbage payload: %v, want ErrBadEnvelope", err)
	}
	if err := root.Apply(nil); !errors.Is(err, ErrBadEnvelope) {
		t.Fatalf("nil envelope: %v", err)
	}
	if err := root.Apply(&Envelope{Node: "", Payload: []byte("x")}); !errors.Is(err, ErrBadEnvelope) {
		t.Fatalf("invalid envelope: %v", err)
	}

	// An incompatible delta also fails cleanly without poisoning the base.
	err = root.Apply(pipelineEnvelope(t, alien, "edge-3", 1, 1, ModeDelta))
	if !Incompatible(err) {
		t.Fatalf("incompatible delta: %v", err)
	}
}

// TestRootSingleAggregateEnvelope: an Agg-tagged envelope carries one
// aggregate's checkpoint and merges into the matching member only.
func TestRootSingleAggregateEnvelope(t *testing.T) {
	base := fedPipeline(t)
	root := NewRoot(base, nil)
	agg, err := streamagg.New(streamagg.KindCountMin,
		streamagg.WithEpsilon(1e-3), streamagg.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	stream := workload.Zipf(61, 5_000, 1.2, 1<<14)
	if err := agg.ProcessBatch(stream); err != nil {
		t.Fatal(err)
	}
	payload, err := agg.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	env := &Envelope{Node: "edge-1", Epoch: 1, Seq: 1, Mode: ModeFull, Agg: "cm", Payload: payload}
	if err := root.Apply(env); err != nil {
		t.Fatal(err)
	}
	view := root.View()
	if got, err := view.Value("cm"); err != nil || got != int64(len(stream)) {
		t.Fatalf("cm.Value() = %d, %v; want %d", got, err, len(stream))
	}
	// Wrong target name: nothing to merge with.
	env2 := &Envelope{Node: "edge-1", Epoch: 1, Seq: 2, Mode: ModeFull, Agg: "nosuch", Payload: payload}
	if err := root.Apply(env2); !Incompatible(err) {
		t.Fatalf("unknown agg target: %v, want ErrIncompatibleMerge", err)
	}
}

// TestRootViewCache: repeated quiet-period View calls reuse the cached
// merge instead of rebuilding.
func TestRootViewCache(t *testing.T) {
	reg := metrics.NewRegistry()
	root := NewRoot(fedPipeline(t), reg)
	edge := fedPipeline(t)
	feed(t, edge, workload.Zipf(71, 2_000, 1.2, 1<<14))
	if err := root.Apply(pipelineEnvelope(t, edge, "edge-1", 1, 1, ModeFull)); err != nil {
		t.Fatal(err)
	}
	first := root.View()
	if root.View() != first || root.View() != first {
		t.Fatal("quiet-period View() rebuilt instead of reusing the cache")
	}
	hits := reg.Counter("streamagg_federation_view_cache_hits_total",
		"Global-view queries served from the cached merge.")
	if hits.Value() < 2 {
		t.Fatalf("view cache hits = %d, want >= 2", hits.Value())
	}
	root.Invalidate()
	second := root.View()
	if second == first {
		t.Fatal("View() served the cached merge after Invalidate")
	}
	if !bytes.Equal(mustMarshal(t, first), mustMarshal(t, second)) {
		t.Fatal("rebuilt view differs from the invalidated one")
	}
}

func mustMarshal(t *testing.T, p *streamagg.Pipeline) []byte {
	t.Helper()
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return data
}
