package federation

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	streamagg "repro"
	"repro/metrics"
)

// StaleError reports a push the root has already superseded: the node's
// last-applied (Epoch, Seq) is at or past the envelope's. Duplicate
// marks an exact replay (same epoch and seq) as opposed to an
// out-of-order straggler. It wraps ErrStale; the server maps it to 409
// and the Pusher treats it as delivered.
type StaleError struct {
	Duplicate bool
	Epoch     uint64 // the node's last applied epoch
	Seq       uint64 // the node's last applied seq
}

func (e *StaleError) Error() string {
	kind := "stale"
	if e.Duplicate {
		kind = "duplicate"
	}
	return fmt.Sprintf("federation: %s push (last applied epoch=%d seq=%d)", kind, e.Epoch, e.Seq)
}

// Unwrap makes errors.Is(err, ErrStale) hold.
func (e *StaleError) Unwrap() error { return ErrStale }

// Reason returns the metric/HTTP label for the error ("duplicate" or
// "stale").
func (e *StaleError) Reason() string {
	if e.Duplicate {
		return "duplicate"
	}
	return "stale"
}

// nodeState is the root's per-edge bookkeeping: dedup watermark, the
// node's latest full-mode contribution, and per-node instruments.
type nodeState struct {
	seen       bool // a push from this node has been applied
	epoch, seq uint64
	lastSeen   atomic.Int64 // unix nanos of the last applied push

	// contrib holds the node's latest ModeFull pipeline; replaced
	// wholesale on each full push, nil for delta-only nodes (their
	// pushes merge destructively into the base).
	contrib *streamagg.Pipeline

	lastSeq *metrics.Gauge
}

// Root folds federation pushes into a base pipeline and serves a merged
// global view. Full-mode contributions are kept per node and overlaid
// on the base at query time (latest-wins, so resends are idempotent);
// delta-mode pushes merge directly into the base. Safe for concurrent
// use; the base may keep ingesting local traffic throughout.
type Root struct {
	base *streamagg.Pipeline
	now  func() time.Time

	mu    sync.Mutex
	nodes map[string]*nodeState
	ver   uint64 // bumped whenever a push lands

	// Cached merged view: clone(base) ⊕ every node's contribution.
	// Valid while no push landed (ver) and the base absorbed nothing
	// (baseLen) since it was built.
	view        *streamagg.Pipeline
	viewVer     uint64
	viewBaseLen int64

	reg          *metrics.Registry
	applied      *metrics.Counter
	duplicate    *metrics.Counter
	stale        *metrics.Counter
	incompatible *metrics.Counter
	malformed    *metrics.Counter
	payloadBytes *metrics.Histogram
	viewHits     *metrics.Counter
	viewRebuilds *metrics.Counter
}

// NewRoot wraps base as a federation merge target. Instruments land in
// reg (nil for a private registry); pass the serving layer's shared
// registry so the merge path shows up at /metrics.
func NewRoot(base *streamagg.Pipeline, reg *metrics.Registry) *Root {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	r := &Root{
		base:  base,
		now:   time.Now,
		nodes: make(map[string]*nodeState),
		reg:   reg,
	}
	const mergesName = "streamagg_federation_merges_total"
	const mergesHelp = "Federation pushes received, by outcome."
	r.applied = reg.Counter(mergesName, mergesHelp, "result", "applied")
	r.duplicate = reg.Counter(mergesName, mergesHelp, "result", "duplicate")
	r.stale = reg.Counter(mergesName, mergesHelp, "result", "stale")
	r.incompatible = reg.Counter(mergesName, mergesHelp, "result", "incompatible")
	r.malformed = reg.Counter(mergesName, mergesHelp, "result", "malformed")
	r.payloadBytes = reg.Histogram("streamagg_federation_merge_payload_bytes",
		"Accepted merge payload sizes in bytes.", metrics.UnitItems)
	r.viewHits = reg.Counter("streamagg_federation_view_cache_hits_total",
		"Global-view queries served from the cached merge.")
	r.viewRebuilds = reg.Counter("streamagg_federation_view_rebuilds_total",
		"Global-view rebuilds (clone base, merge all contributions).")
	return r
}

// maxNodeSeries caps how many distinct node IDs get their own metric
// series. Node IDs arrive off the wire, so without a cap any client
// POSTing /v1/merge with fresh IDs would grow /metrics forever; nodes
// past the cap keep full dedup bookkeeping but share one
// node="overflow" series.
const maxNodeSeries = 64

// overflowNodeLabel is the shared label value for nodes past the cap.
const overflowNodeLabel = "overflow"

// node returns (creating if needed) the state for a node ID, wiring its
// per-node instruments on first sight. Caller holds r.mu.
func (r *Root) node(id string) *nodeState {
	ns, ok := r.nodes[id]
	if !ok {
		label := id
		if len(r.nodes) >= maxNodeSeries {
			label = overflowNodeLabel
		}
		ns = &nodeState{
			lastSeq: r.reg.Gauge("streamagg_federation_node_last_seq",
				//agglint:ignore metriclabel bounded: at most maxNodeSeries IDs get a series, the rest fold into "overflow"
				"Last applied push seq per edge node.", "node", label),
		}
		if label == id {
			// Per-node staleness only below the cap: GetOrCreate keeps
			// the first registered fn, so a shared overflow series
			// would pin whichever node happened to arrive first.
			r.reg.GaugeFunc("streamagg_federation_node_staleness_seconds",
				"Seconds since the last applied push per edge node.", func() float64 {
					last := ns.lastSeen.Load()
					if last == 0 {
						return 0
					}
					return time.Duration(r.now().UnixNano() - last).Seconds()
					//agglint:ignore metriclabel bounded: only registered while under the maxNodeSeries cap
				}, "node", label)
		}
		r.nodes[id] = ns
	}
	return ns
}

// decodeContribution turns an envelope payload into a pipeline to merge:
// either a whole-pipeline checkpoint, or a single aggregate wrapped in a
// one-member pipeline under the envelope's target name.
func decodeContribution(env *Envelope) (*streamagg.Pipeline, error) {
	if env.Agg != "" {
		agg, err := streamagg.UnmarshalAggregate(env.Payload)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
		}
		p := streamagg.NewPipeline()
		if err := p.Register(env.Agg, agg); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
		}
		return p, nil
	}
	p, err := streamagg.UnmarshalPipeline(env.Payload)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
	}
	return p, nil
}

// Apply lands one push. Outcomes: nil (applied); *StaleError wrapping
// ErrStale (duplicate or superseded — drop, 409); an error wrapping
// streamagg.ErrIncompatibleMerge (payload can never merge into this
// root — 409); an error wrapping ErrBadEnvelope (undecodable payload —
// 400). The dedup watermark advances only when a push actually lands,
// so a failed push may be retried under the same seq.
func (r *Root) Apply(env *Envelope) error {
	if env == nil {
		return fmt.Errorf("%w: nil envelope", ErrBadEnvelope)
	}
	if err := env.validate(); err != nil {
		r.malformed.Inc()
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ns := r.node(env.Node)
	if ns.seen &&
		(env.Epoch < ns.epoch || (env.Epoch == ns.epoch && env.Seq <= ns.seq)) {
		serr := &StaleError{
			Duplicate: env.Epoch == ns.epoch && env.Seq == ns.seq,
			Epoch:     ns.epoch,
			Seq:       ns.seq,
		}
		if serr.Duplicate {
			r.duplicate.Inc()
		} else {
			r.stale.Inc()
		}
		return serr
	}
	contrib, err := decodeContribution(env)
	if err != nil {
		r.malformed.Inc()
		return err
	}
	switch env.Mode {
	case ModeDelta:
		if err := r.base.Merge(contrib); err != nil {
			r.incompatible.Inc()
			return err
		}
		r.ver++
	default: // ModeFull: replace the node's contribution, latest wins.
		prev := ns.contrib
		ns.contrib = contrib
		// Rebuild eagerly: validates the new contribution against the
		// base and every other node before the watermark commits.
		view, err := r.rebuildLocked()
		if err != nil {
			ns.contrib = prev
			r.incompatible.Inc()
			return err
		}
		r.ver++
		r.installViewLocked(view)
	}
	ns.seen, ns.epoch, ns.seq = true, env.Epoch, env.Seq
	ns.lastSeen.Store(r.now().UnixNano())
	ns.lastSeq.Set(int64(env.Seq))
	r.applied.Inc()
	r.payloadBytes.Observe(uint64(len(env.Payload)))
	return nil
}

// rebuildLocked builds a fresh global view: clone of the base with every
// node's contribution merged in. Caller holds r.mu.
func (r *Root) rebuildLocked() (*streamagg.Pipeline, error) {
	view, err := r.base.Clone()
	if err != nil {
		return nil, err
	}
	for id, ns := range r.nodes {
		if ns.contrib == nil {
			continue
		}
		if err := view.Merge(ns.contrib); err != nil {
			return nil, fmt.Errorf("federation: merging contribution from %q: %w", id, err)
		}
	}
	return view, nil
}

// installViewLocked caches a just-built view. The base length is read
// before the build began would be strictly safer, but reading it here
// only risks caching a view the next query rebuilds — never serving
// items twice. Caller holds r.mu.
func (r *Root) installViewLocked(view *streamagg.Pipeline) {
	r.view = view
	r.viewVer = r.ver
	r.viewBaseLen = r.base.StreamLen()
	r.viewRebuilds.Inc()
}

// View returns the pipeline queries should read: the base itself while
// no full-mode contributions exist (delta pushes land in the base
// directly), otherwise the cached clone(base) ⊕ contributions merge,
// rebuilt when a push or local ingest invalidated it. The returned
// pipeline is read-only for the caller.
func (r *Root) View() *streamagg.Pipeline {
	r.mu.Lock()
	defer r.mu.Unlock()
	hasContrib := false
	for _, ns := range r.nodes {
		if ns.contrib != nil {
			hasContrib = true
			break
		}
	}
	if !hasContrib {
		return r.base
	}
	if r.view != nil && r.viewVer == r.ver && r.viewBaseLen == r.base.StreamLen() {
		r.viewHits.Inc()
		return r.view
	}
	view, err := r.rebuildLocked()
	if err != nil {
		// Every contribution merged cleanly when it landed; only an
		// out-of-band base replacement (restore) can break the overlay.
		// Serve local-only state rather than failing reads.
		return r.base
	}
	r.installViewLocked(view)
	return view
}

// Invalidate drops the cached view. The serving layer calls it after
// replacing the base pipeline's state out of band (restore), where the
// stream length alone might not betray the change.
func (r *Root) Invalidate() {
	r.mu.Lock()
	r.ver++
	r.mu.Unlock()
}

// NodeStatus is one edge node's federation state, as reported by the
// serving layer's /v1/stats.
type NodeStatus struct {
	Node            string    `json:"node"`
	Epoch           uint64    `json:"epoch"`
	Seq             uint64    `json:"seq"`
	LastSeen        time.Time `json:"last_seen"`
	HasContribution bool      `json:"has_contribution"`
	ContributionLen int64     `json:"contribution_stream_len,omitempty"`
}

// Nodes reports every edge node that has ever pushed, sorted by ID.
func (r *Root) Nodes() []NodeStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]NodeStatus, 0, len(r.nodes))
	for id, ns := range r.nodes {
		st := NodeStatus{Node: id, Epoch: ns.epoch, Seq: ns.seq}
		if last := ns.lastSeen.Load(); last != 0 {
			st.LastSeen = time.Unix(0, last).UTC()
		}
		if ns.contrib != nil {
			st.HasContribution = true
			st.ContributionLen = ns.contrib.StreamLen()
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Incompatible reports whether err means the payload can never merge
// into this root (as opposed to transient or already-applied).
func Incompatible(err error) bool {
	return errors.Is(err, streamagg.ErrIncompatibleMerge)
}
