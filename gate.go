package streamagg

// The shared aggregate wrapper. Every public aggregate embeds gate,
// which centralizes the three pieces of plumbing the concrete types used
// to duplicate:
//
//   - the reader-writer concurrency gate (updates serialize against
//     queries; any number of queries interleave) — including accessor
//     reads, which previously bypassed the lock and raced with
//     UnmarshalBinary swapping the implementation pointer;
//   - the ingested-element counter backing the uniform StreamLen();
//   - the checkpoint envelope (marshalAgg/unmarshalAgg), so each type's
//     BinaryMarshaler/BinaryUnmarshaler is a two-liner binding its
//     internal State/FromState pair.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
)

// gate is the reader-writer gate plus stream position shared by all
// aggregates. The zero value is ready for use (UnmarshalBinary on a
// zero-value aggregate installs the implementation).
type gate struct {
	mu        sync.RWMutex
	streamLen int64
}

// ingest runs f under the write lock and advances the stream position by
// n elements.
func (g *gate) ingest(n int, f func()) {
	g.mu.Lock()
	defer g.mu.Unlock()
	f()
	g.streamLen += int64(n)
}

// ingestErr is ingest for fallible ingestion: the stream position
// advances only if f succeeds.
func (g *gate) ingestErr(n int, f func() error) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := f(); err != nil {
		return err
	}
	g.streamLen += int64(n)
	return nil
}

// read runs f under the read lock.
func (g *gate) read(f func()) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	f()
}

// StreamLen reports the number of stream elements ingested so far
// (items, bits, or values, depending on the aggregate).
func (g *gate) StreamLen() int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.streamLen
}

// envelope frames every checkpoint: the kind tag guards against feeding
// one aggregate's checkpoint to another type, and the stream position
// restores StreamLen.
type envelope struct {
	Kind      string
	StreamLen int64
	Body      []byte
}

func seal(kind Kind, streamLen int64, state any) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(state); err != nil {
		return nil, fmt.Errorf("streamagg: encoding %s state: %w", kind, err)
	}
	var out bytes.Buffer
	env := envelope{Kind: string(kind), StreamLen: streamLen, Body: body.Bytes()}
	if err := gob.NewEncoder(&out).Encode(env); err != nil {
		return nil, fmt.Errorf("streamagg: sealing %s checkpoint: %w", kind, err)
	}
	return out.Bytes(), nil
}

func open(kind Kind, data []byte, state any) (envelope, error) {
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); err != nil {
		return env, fmt.Errorf("streamagg: malformed checkpoint: %w", err)
	}
	if env.Kind != string(kind) {
		return env, fmt.Errorf("%w: checkpoint is for %q, not %q", ErrBadParam, env.Kind, kind)
	}
	if err := gob.NewDecoder(bytes.NewReader(env.Body)).Decode(state); err != nil {
		return env, fmt.Errorf("streamagg: decoding %s state: %w", kind, err)
	}
	return env, nil
}

// marshalAgg captures an aggregate's state under the read lock. state is
// called while the lock is held so it sees a batch-boundary-consistent
// implementation.
func marshalAgg[S any](g *gate, kind Kind, state func() S) ([]byte, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return seal(kind, g.streamLen, state())
}

// unmarshalAgg restores an aggregate from a checkpoint: it decodes the
// kind-checked state, rebuilds the implementation with restore, and
// installs it (plus the stream position) under the write lock.
func unmarshalAgg[T, S any](g *gate, kind Kind, data []byte, restore func(S) (T, error), install func(T)) error {
	var st S
	env, err := open(kind, data, &st)
	if err != nil {
		return err
	}
	impl, err := restore(st)
	if err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	install(impl)
	g.streamLen = env.StreamLen
	return nil
}
