package streamagg

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
	"repro/metrics"
)

// recordSink records every minibatch the Ingestor flushes.
type recordSink struct {
	mu      sync.Mutex
	batches [][]uint64
	items   []uint64
	failOn  uint64 // batches containing this item fail (0 = never)
}

func (r *recordSink) ProcessBatch(items []uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := append([]uint64(nil), items...)
	if r.failOn != 0 {
		for _, it := range cp {
			if it == r.failOn {
				return fmt.Errorf("%w: poisoned item %d", ErrBadParam, it)
			}
		}
	}
	r.batches = append(r.batches, cp)
	r.items = append(r.items, cp...)
	return nil
}

func (r *recordSink) snapshot() (batches [][]uint64, items []uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([][]uint64(nil), r.batches...), append([]uint64(nil), r.items...)
}

// gateSink hands each incoming batch to the test and stalls until
// released, so tests can hold the worker inside the sink deterministically.
type gateSink struct {
	entered chan []uint64
	release chan struct{}
}

func newGateSink() *gateSink {
	return &gateSink{entered: make(chan []uint64, 16), release: make(chan struct{}, 16)}
}

func (g *gateSink) ProcessBatch(items []uint64) error {
	g.entered <- append([]uint64(nil), items...)
	<-g.release
	return nil
}

func TestIngestorOptionValidation(t *testing.T) {
	sink := &recordSink{}
	if _, err := NewIngestor(nil); !errors.Is(err, ErrBadParam) {
		t.Fatalf("nil sink: %v", err)
	}
	if _, err := NewIngestor(sink, WithBatchSize(0)); !errors.Is(err, ErrBadParam) {
		t.Fatalf("zero batch size: %v", err)
	}
	if _, err := NewIngestor(sink, WithMaxLatency(-time.Second)); !errors.Is(err, ErrBadParam) {
		t.Fatalf("negative latency: %v", err)
	}
	if _, err := NewIngestor(sink, WithQueueCap(0)); !errors.Is(err, ErrBadParam) {
		t.Fatalf("zero queue cap: %v", err)
	}
	if _, err := NewIngestor(sink, WithBatchSize(128), WithQueueCap(64)); !errors.Is(err, ErrBadParam) {
		t.Fatalf("queue smaller than batch: %v", err)
	}
	if _, err := NewIngestor(sink, WithBackpressure(Backpressure(42))); !errors.Is(err, ErrBadParam) {
		t.Fatalf("bogus policy: %v", err)
	}
	// Aggregate options do not apply to the Ingestor, and vice versa.
	if _, err := NewIngestor(sink, WithEpsilon(0.1)); !errors.Is(err, ErrBadParam) {
		t.Fatalf("aggregate option on ingestor: %v", err)
	}
	if _, err := New(KindCountMin, WithBatchSize(64)); !errors.Is(err, ErrBadParam) {
		t.Fatalf("ingestor option on aggregate: %v", err)
	}
	if _, err := ParseBackpressure("nope"); !errors.Is(err, ErrBadParam) {
		t.Fatal("bad policy name parsed")
	}
	for _, p := range []Backpressure{BackpressureBlock, BackpressureReject, BackpressureDrop} {
		got, err := ParseBackpressure(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseBackpressure(%q) = %v, %v", p.String(), got, err)
		}
	}
}

// Single producer, explicit drain: everything arrives, in order, and the
// drain protocol accounts for every item.
func TestIngestorOrderAndDrain(t *testing.T) {
	sink := &recordSink{}
	in, err := NewIngestor(sink, WithBatchSize(64), WithMaxLatency(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := uint64(0); i < n; i++ {
		if err := in.Put(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	_, items := sink.snapshot()
	if len(items) != n {
		t.Fatalf("sink saw %d items, want %d", len(items), n)
	}
	for i, it := range items {
		if it != uint64(i) {
			t.Fatalf("order broken at %d: got %d", i, it)
		}
	}
	st := in.Stats()
	if st.Enqueued != n || st.Processed != n || st.QueueDepth != 0 {
		t.Fatalf("stats after drain: %+v", st)
	}
	if st.Batches == 0 || st.SizeFlushes == 0 {
		t.Fatalf("expected size-triggered flushes: %+v", st)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if err := in.Put(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close: %v", err)
	}
	if err := in.Close(); err != nil {
		t.Fatalf("Close not idempotent: %v", err)
	}
}

// fakeClock is the injected time source for the latency-deadline
// tests: the deadline is crossed by advancing fake time, not by real
// sleeps, so the assertions hold on arbitrarily loaded CI machines.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// With a huge size threshold, the max-latency deadline must flush a
// partial minibatch on its own — and must not flush before the
// deadline. Both directions are deterministic under the fake clock.
func TestIngestorTimerFlush(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	sink := &recordSink{}
	in, err := NewIngestor(sink,
		WithBatchSize(1<<20), WithMaxLatency(time.Minute), withClock(clk.now))
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	if _, err := in.PutBatch([]uint64{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	// Fake time stands still, so no amount of real time may flush: the
	// worker has a real head start here and must stay parked.
	time.Sleep(20 * time.Millisecond)
	if st := in.Stats(); st.Processed != 0 || st.Batches != 0 {
		t.Fatalf("flushed before the latency deadline: %+v", st)
	}
	// Cross the deadline in fake time; the next enqueue wakes the
	// worker, which re-evaluates the deadline and must flush everything
	// queued as one timer-caused batch.
	clk.advance(2 * time.Minute)
	if err := in.Put(6); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := in.Stats()
		if st.TimerFlushes >= 1 && st.Processed == 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timer flush never fired: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if batches, _ := sink.snapshot(); len(batches) != 1 || len(batches[0]) != 6 {
		t.Fatalf("sink batches: %v", batches)
	}
}

// The deadline is measured from the oldest queued item's arrival, not
// from the latest: items enqueued after the first must not reset it.
func TestIngestorLatencyDeadlineFromOldestItem(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	sink := &recordSink{}
	in, err := NewIngestor(sink,
		WithBatchSize(1<<20), WithMaxLatency(10*time.Minute), withClock(clk.now))
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	if err := in.Put(1); err != nil { // oldest item: deadline epoch
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		clk.advance(3 * time.Minute) // crosses the deadline at i >= 3
		if err := in.Put(uint64(2 + i)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := in.Stats()
		// Processed moves only after the sink absorbed the batch, so
		// the flushed batch is visible in the sink once it is > 0
		// (TimerFlushes alone bumps at cut time, before the apply).
		if st.TimerFlushes >= 1 && st.Processed > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timer flush never fired: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if batches, _ := sink.snapshot(); len(batches[0]) < 4 {
		t.Fatalf("first flush missed items queued before the deadline: %v", batches)
	}
	// The flush-wait histogram must have recorded a waiting batch in
	// the registry the Stats view reads from.
	if _, count, _ := in.MetricsRegistry().Histogram(
		"streamagg_ingest_flush_wait_seconds", "", metrics.UnitSeconds).Snapshot(); count == 0 {
		t.Fatal("flush-wait histogram recorded nothing")
	}
}

func TestIngestorBackpressureReject(t *testing.T) {
	sink := newGateSink()
	in, err := NewIngestor(sink,
		WithBatchSize(4), WithQueueCap(8), WithMaxLatency(time.Hour),
		WithBackpressure(BackpressureReject))
	if err != nil {
		t.Fatal(err)
	}
	// First batch reaches the threshold; the worker takes it and stalls
	// inside the sink. The in-flight batch still counts against the cap.
	if _, err := in.PutBatch([]uint64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	<-sink.entered
	// 4 slots remain (4 of the 8 are in flight); fill them.
	if _, err := in.PutBatch([]uint64{5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	// Now the queue is full: everything else must be rejected whole.
	if err := in.Put(9); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overfull Put: %v", err)
	}
	if n, err := in.PutBatch([]uint64{10, 11}); !errors.Is(err, ErrOverloaded) || n != 0 {
		t.Fatalf("overfull PutBatch accepted %d, %v", n, err)
	}
	// A batch larger than the whole queue can never fit.
	if _, err := in.PutBatch(make([]uint64, 9)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("oversized PutBatch: %v", err)
	}
	sink.release <- struct{}{}
	<-sink.entered
	sink.release <- struct{}{}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	if st.Processed != 8 || st.Rejected != 12 || st.Dropped != 0 {
		t.Fatalf("stats: %+v", st)
	}
	// Unblock the worker's final (empty-queue) state and shut down.
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestIngestorBackpressureDrop(t *testing.T) {
	sink := newGateSink()
	in, err := NewIngestor(sink,
		WithBatchSize(4), WithQueueCap(8), WithMaxLatency(time.Hour),
		WithBackpressure(BackpressureDrop))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.PutBatch([]uint64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	<-sink.entered
	// 6 items into 4 free slots (4 in flight): 4 accepted, 2 dropped,
	// no error.
	if n, err := in.PutBatch([]uint64{5, 6, 7, 8, 9, 10}); err != nil || n != 4 {
		t.Fatalf("drop PutBatch accepted %d, %v; want 4, nil", n, err)
	}
	sink.release <- struct{}{}
	<-sink.entered
	sink.release <- struct{}{}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	if st.Processed != 8 || st.Dropped != 2 || st.Rejected != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
}

// BackpressureBlock parks the producer until the worker frees space;
// nothing is lost.
func TestIngestorBackpressureBlock(t *testing.T) {
	sink := newGateSink()
	in, err := NewIngestor(sink,
		WithBatchSize(4), WithQueueCap(8), WithMaxLatency(time.Hour),
		WithBackpressure(BackpressureBlock))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.PutBatch([]uint64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	<-sink.entered
	if _, err := in.PutBatch([]uint64{5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	unblocked := make(chan error, 1)
	go func() {
		n, err := in.PutBatch([]uint64{9, 10, 11})
		if err == nil && n != 3 {
			err = fmt.Errorf("blocked producer accepted %d of 3", n)
		}
		unblocked <- err
	}()
	select {
	case err := <-unblocked:
		t.Fatalf("producer did not block on a full queue: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	// Free the sink: the worker drains and the producer completes. The
	// tail may ride in the second batch or need a third plus an explicit
	// drain (the timer is an hour out), so release whatever arrives
	// until Flush reports everything in.
	sink.release <- struct{}{}
	if err := <-unblocked; err != nil {
		t.Fatal(err)
	}
	flushed := make(chan error, 1)
	go func() { flushed <- in.Flush() }()
	for done := false; !done; {
		select {
		case <-sink.entered:
			sink.release <- struct{}{}
		case err := <-flushed:
			if err != nil {
				t.Fatal(err)
			}
			done = true
		}
	}
	if st := in.Stats(); st.Processed != 11 || st.Dropped != 0 || st.Rejected != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
}

// A canceled context unparks a producer blocked on a full queue,
// reporting the prefix it already got in.
func TestIngestorPutBatchContextCancel(t *testing.T) {
	sink := newGateSink()
	in, err := NewIngestor(sink,
		WithBatchSize(4), WithQueueCap(8), WithMaxLatency(time.Hour),
		WithBackpressure(BackpressureBlock))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.PutBatch([]uint64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	<-sink.entered // worker stalled in the sink; its 4 items still count
	ctx, cancel := context.WithCancel(context.Background())
	type result struct {
		n   int
		err error
	}
	done := make(chan result, 1)
	go func() {
		// 4 fit the remaining slots, 2 overflow and park.
		n, err := in.PutBatchContext(ctx, []uint64{5, 6, 7, 8, 9, 10})
		done <- result{n, err}
	}()
	select {
	case r := <-done:
		t.Fatalf("producer did not block: %+v", r)
	case <-time.After(50 * time.Millisecond):
	}
	cancel()
	r := <-done
	if !errors.Is(r.err, context.Canceled) || r.n != 4 {
		t.Fatalf("canceled producer: accepted %d, %v; want 4, context.Canceled", r.n, r.err)
	}
	sink.release <- struct{}{}
	<-sink.entered
	sink.release <- struct{}{}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := in.Stats(); st.Processed != 8 {
		t.Fatalf("stats: %+v", st)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
}

// A sink failure is counted, sticky, and surfaced by Flush and Close.
func TestIngestorSinkErrorSticky(t *testing.T) {
	sink := &recordSink{failOn: 99}
	in, err := NewIngestor(sink, WithBatchSize(4), WithMaxLatency(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.PutBatch([]uint64{1, 2, 99, 4}); err != nil {
		t.Fatal(err)
	}
	if err := in.Flush(); !errors.Is(err, ErrBadParam) {
		t.Fatalf("Flush did not surface the sink error: %v", err)
	}
	if st := in.Stats(); st.FailedBatches != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if err := in.Close(); !errors.Is(err, ErrBadParam) {
		t.Fatalf("Close did not surface the sink error: %v", err)
	}
}

// Restoring the sink to known-good state clears the sticky error, so a
// server can recover from a poisoned batch without a restart.
func TestIngestorRestoreClearsStickyError(t *testing.T) {
	pipe := NewPipeline()
	if _, err := pipe.Add("sum", KindWindowSum, WithWindow(100), WithMaxValue(10)); err != nil {
		t.Fatal(err)
	}
	in, err := NewIngestor(pipe, WithBatchSize(4), WithMaxLatency(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	cleanCkpt, err := in.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.PutBatch([]uint64{1, 2, 999}); err != nil { // 999 > bound 10
		t.Fatal(err)
	}
	if err := in.Flush(); !errors.Is(err, ErrBadParam) {
		t.Fatalf("Flush did not surface the sink error: %v", err)
	}
	if err := in.Restore(cleanCkpt); err != nil {
		t.Fatal(err)
	}
	if err := in.Flush(); err != nil {
		t.Fatalf("sticky error survived a successful restore: %v", err)
	}
	if _, err := in.PutBatch([]uint64{3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	if v, err := pipe.Value("sum"); err != nil || v != 7 {
		t.Fatalf("post-recovery value = %d, %v; want 7", v, err)
	}
}

// Linearity cross-check: a count-min fed through the Ingestor (whatever
// coalescing happens) answers exactly like one fed the whole stream
// directly — the sketch is batching-independent.
func TestIngestorEquivalenceLinearSketch(t *testing.T) {
	stream := workload.Zipf(41, 50000, 1.2, 1<<14)
	direct, err := New(KindCountMin, WithEpsilon(1e-3), WithDelta(0.01), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := direct.ProcessBatch(stream); err != nil {
		t.Fatal(err)
	}
	batched, err := New(KindCountMin, WithEpsilon(1e-3), WithDelta(0.01), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewIngestor(batched, WithBatchSize(512), WithMaxLatency(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range workload.Batches(stream, 237) { // deliberately unaligned
		if _, err := in.PutBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := batched.StreamLen(), direct.StreamLen(); got != want {
		t.Fatalf("StreamLen %d, want %d", got, want)
	}
	for _, probe := range []uint64{0, 1, 5, 100, 1000, 16000} {
		got := batched.(PointEstimator).Estimate(probe)
		want := direct.(PointEstimator).Estimate(probe)
		if got != want {
			t.Fatalf("estimate(%d) = %d via ingestor, %d direct", probe, got, want)
		}
	}
}

// Checkpoint captures everything enqueued before the call; Restore
// rewinds, and items queued afterwards land on the restored state.
func TestIngestorCheckpointRestore(t *testing.T) {
	mk := func() *Pipeline {
		p := NewPipeline()
		if _, err := p.Add("cm", KindCountMin, WithEpsilon(1e-3), WithSeed(7)); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Add("dist", KindCountMinRange, WithUniverseBits(14), WithSeed(3)); err != nil {
			t.Fatal(err)
		}
		return p
	}
	pipe := mk()
	in, err := NewIngestor(pipe, WithBatchSize(256), WithMaxLatency(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	stream := workload.Zipf(43, 20000, 1.2, 1<<14)
	half := len(stream) / 2
	if _, err := in.PutBatch(stream[:half]); err != nil {
		t.Fatal(err)
	}
	ckpt, err := in.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if got := pipe.StreamLen(); got != int64(half) {
		t.Fatalf("checkpoint did not drain: StreamLen %d, want %d", got, half)
	}
	if _, err := in.PutBatch(stream[half:]); err != nil {
		t.Fatal(err)
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := pipe.StreamLen(); got != int64(len(stream)) {
		t.Fatalf("StreamLen %d, want %d", got, len(stream))
	}

	// Restore rewinds the sink to the checkpoint boundary...
	if err := in.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	if got := pipe.StreamLen(); got != int64(half) {
		t.Fatalf("after restore: StreamLen %d, want %d", got, half)
	}
	// ...and the restored pipeline answers exactly like a fresh one fed
	// the prefix (linear kinds, so batching does not matter).
	ref := mk()
	if err := ref.ProcessBatch(stream[:half]); err != nil {
		t.Fatal(err)
	}
	for _, probe := range []uint64{1, 7, 100, 5000} {
		got, err := pipe.Estimate("cm", probe)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Estimate("cm", probe)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("estimate(%d) after restore = %d, want %d", probe, got, want)
		}
	}
	// New items land on top of the restored state.
	if _, err := in.PutBatch(stream[half:]); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if got := pipe.StreamLen(); got != int64(len(stream)) {
		t.Fatalf("after restore + suffix: StreamLen %d, want %d", got, len(stream))
	}

	// A sink without checkpoint support is rejected cleanly.
	plain, err := NewIngestor(&recordSink{})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := plain.Checkpoint(); !errors.Is(err, ErrBadParam) {
		t.Fatalf("checkpoint on plain sink: %v", err)
	}
	if err := plain.Restore(ckpt); !errors.Is(err, ErrBadParam) {
		t.Fatalf("restore on plain sink: %v", err)
	}
}

// TestIngestorConcurrentCheckpointStress hammers the Ingestor with
// concurrent producers while checkpoints are taken mid-stream (run under
// -race in CI): the blocking policy must lose nothing, every checkpoint
// must be restorable, and the final drain must account for every item.
func TestIngestorConcurrentCheckpointStress(t *testing.T) {
	pipe := NewPipeline()
	if _, err := pipe.Add("cm", KindCountMin, WithEpsilon(1e-3), WithSeed(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Add("freq", KindFreq, WithEpsilon(0.005)); err != nil {
		t.Fatal(err)
	}
	in, err := NewIngestor(pipe,
		WithBatchSize(1024), WithMaxLatency(time.Millisecond), WithQueueCap(8192))
	if err != nil {
		t.Fatal(err)
	}
	const producers = 8
	perProducer := 40000
	if testing.Short() {
		perProducer = 10000
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			stream := workload.Zipf(int64(100+p), perProducer, 1.1, 1<<16)
			for _, b := range workload.Batches(stream, 97) {
				if _, err := in.PutBatch(b); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	for i := 0; i < 5; i++ {
		ckpt, err := in.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		restored := NewPipeline()
		if err := restored.UnmarshalBinary(ckpt); err != nil {
			t.Fatalf("checkpoint %d not restorable: %v", i, err)
		}
		if restored.StreamLen() > int64(producers*perProducer) {
			t.Fatalf("checkpoint %d stream length %d exceeds total", i, restored.StreamLen())
		}
	}
	wg.Wait()
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	total := int64(producers * perProducer)
	if got := pipe.StreamLen(); got != total {
		t.Fatalf("StreamLen %d, want %d", got, total)
	}
	st := in.Stats()
	if st.Enqueued != total || st.Processed != total || st.Dropped != 0 || st.Rejected != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("queue not drained: %+v", st)
	}
}
