package streamagg

// Differential-oracle suite: every aggregate is driven against an exact
// brute-force oracle (exact counts, window sums, net frequencies) and
// the paper's ε-error bounds are asserted across adversarial
// distributions — zipf, all-distinct, single-key, uniform, and (for the
// turnstile CountSketch) deletion-heavy. The four mergeable kinds run in
// both unsharded and sharded modes; the sliding-window kinds cannot be
// sharded (a hashed subsequence has no "last n elements"), so their
// oracle checks run unsharded only.

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/workload"
)

const oracleStreamLen = 20000

// exactCounts is the brute-force frequency oracle.
func exactCounts(stream []uint64) map[uint64]int64 {
	counts := make(map[uint64]int64)
	for _, it := range stream {
		counts[it]++
	}
	return counts
}

// oracleDist is one adversarial input distribution.
type oracleDist struct {
	name   string
	stream []uint64
}

func oracleDists() []oracleDist {
	return []oracleDist{
		{"zipf", workload.Zipf(101, oracleStreamLen, 1.4, 1<<14)},
		{"all-distinct", workload.Distinct(1, oracleStreamLen)},
		{"single-key", workload.SingleKey(42, oracleStreamLen)},
		{"uniform", workload.Uniform(7, oracleStreamLen, 1<<12)},
	}
}

// aggMode builds the aggregate under test either plain or sharded.
type aggMode struct {
	name string
	opts []Option
}

// oracleModes returns the modes to exercise: always unsharded, plus a
// 4-way sharded instance for the mergeable kinds.
func oracleModes(kind Kind) []aggMode {
	modes := []aggMode{{name: "unsharded"}}
	if shardable[kind] {
		modes = append(modes, aggMode{name: "sharded-4", opts: []Option{WithShards(4)}})
	}
	return modes
}

// oracleIngest drives the aggregate through minibatches of mixed sizes
// (including size-1 and odd tails) to exercise batch-boundary handling.
func oracleIngest(t *testing.T, agg Aggregate, stream []uint64) {
	t.Helper()
	for _, size := range []int{1, 7, 997} {
		if len(stream) == 0 {
			break
		}
		n := size
		if n > len(stream) {
			n = len(stream)
		}
		if err := agg.ProcessBatch(stream[:n]); err != nil {
			t.Fatal(err)
		}
		stream = stream[n:]
	}
	for _, b := range workload.Batches(stream, 1024) {
		if err := agg.ProcessBatch(b); err != nil {
			t.Fatal(err)
		}
	}
}

// oracleProbes returns the keys to cross-check: every key the oracle
// saw plus keys guaranteed absent.
func oracleProbes(counts map[uint64]int64) []uint64 {
	probes := make([]uint64, 0, len(counts)+4)
	for k := range counts {
		probes = append(probes, k)
	}
	return append(probes, 1<<40, 1<<40+1, 1<<50, math.MaxUint64)
}

// TestOracleFreqEstimator: f_e - εm <= Estimate(e) <= f_e, a
// deterministic guarantee (Theorem 5.2; sharding only shortens the
// per-shard stream, tightening the bound).
func TestOracleFreqEstimator(t *testing.T) {
	const eps = 0.01
	for _, d := range oracleDists() {
		counts := exactCounts(d.stream)
		slack := int64(math.Ceil(eps * float64(len(d.stream))))
		for _, mode := range oracleModes(KindFreq) {
			t.Run(d.name+"/"+mode.name, func(t *testing.T) {
				agg, err := New(KindFreq, append([]Option{WithEpsilon(eps)}, mode.opts...)...)
				if err != nil {
					t.Fatal(err)
				}
				oracleIngest(t, agg, d.stream)
				pe := agg.(PointEstimator)
				for _, item := range oracleProbes(counts) {
					f, est := counts[item], pe.Estimate(item)
					if est > f || est < f-slack {
						t.Fatalf("item %d: estimate %d outside [%d, %d]", item, est, f-slack, f)
					}
				}
			})
		}
	}
}

// TestOracleFreqHeavyHitters checks the heavy-hitter reduction on the
// skewed stream: every item with f >= φm is reported and nothing below
// (φ-2ε)m can be, in both modes (sharded answers via merged snapshot).
func TestOracleFreqHeavyHitters(t *testing.T) {
	const (
		eps = 0.01
		phi = 0.05
	)
	stream := workload.Zipf(101, oracleStreamLen, 1.4, 1<<14)
	counts := exactCounts(stream)
	m := float64(len(stream))
	for _, mode := range oracleModes(KindFreq) {
		t.Run(mode.name, func(t *testing.T) {
			agg, err := New(KindFreq, append([]Option{WithEpsilon(eps)}, mode.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			oracleIngest(t, agg, stream)
			reported := make(map[uint64]bool)
			for _, hh := range agg.(HeavyHitterSource).HeavyHitters(phi) {
				reported[hh.Item] = true
			}
			for item, f := range counts {
				if float64(f) >= phi*m && !reported[item] {
					t.Fatalf("true heavy hitter %d (f=%d) not reported", item, f)
				}
			}
			for item := range reported {
				if float64(counts[item]) < (phi-2*eps)*m {
					t.Fatalf("false positive %d (f=%d < %g)", item, counts[item], (phi-2*eps)*m)
				}
			}
		})
	}
}

// TestOracleSlidingFreq: within the count-based window of the last n
// items, f_e - εn <= Estimate(e) <= f_e for every variant.
func TestOracleSlidingFreq(t *testing.T) {
	const (
		window = 4096
		eps    = 0.02
	)
	for _, d := range []oracleDist{
		{"zipf", workload.Zipf(101, oracleStreamLen, 1.4, 1<<14)},
		{"uniform", workload.Uniform(7, oracleStreamLen, 1<<12)},
		{"single-key", workload.SingleKey(42, oracleStreamLen)},
	} {
		windowed := exactCounts(d.stream[len(d.stream)-window:])
		slack := int64(math.Ceil(eps * window))
		for _, v := range []SlidingVariant{VariantBasic, VariantSpaceEfficient, VariantWorkEfficient} {
			t.Run(fmt.Sprintf("%s/variant-%d", d.name, v), func(t *testing.T) {
				agg, err := New(KindSlidingFreq, WithWindow(window), WithEpsilon(eps), WithVariant(v))
				if err != nil {
					t.Fatal(err)
				}
				oracleIngest(t, agg, d.stream)
				pe := agg.(PointEstimator)
				for _, item := range oracleProbes(windowed) {
					f, est := windowed[item], pe.Estimate(item)
					if est > f || est < f-slack {
						t.Fatalf("item %d: estimate %d outside [%d, %d]", item, est, f-slack, f)
					}
				}
			})
		}
	}
}

// TestOracleBasicCounter: true <= Estimate <= (1+ε)·true against the
// exact sliding count of 1s, checked at every minibatch boundary.
func TestOracleBasicCounter(t *testing.T) {
	const (
		window = 2048
		eps    = 0.05
	)
	for _, tc := range []struct {
		name string
		bits []bool
	}{
		{"bursty", workload.BurstyBits(11, oracleStreamLen, 300, 0.05, 0.9)},
		{"dense", workload.Bits(12, oracleStreamLen, 0.98)},
		{"sparse", workload.Bits(13, oracleStreamLen, 0.01)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, err := NewBasicCounter(window, eps)
			if err != nil {
				t.Fatal(err)
			}
			prefix := make([]int64, len(tc.bits)+1)
			for i, b := range tc.bits {
				prefix[i+1] = prefix[i]
				if b {
					prefix[i+1]++
				}
			}
			pos := 0
			for _, batch := range workload.BitBatches(tc.bits, 512) {
				c.ProcessBits(batch)
				pos += len(batch)
				lo := pos - window
				if lo < 0 {
					lo = 0
				}
				truth := prefix[pos] - prefix[lo]
				est := c.Estimate()
				if est < truth || float64(est) > (1+eps)*float64(truth) {
					t.Fatalf("at %d: estimate %d outside [%d, %g]", pos, est, truth, (1+eps)*float64(truth))
				}
			}
		})
	}
}

// TestOracleWindowSum: true <= Estimate <= (1+ε)·true against the exact
// sliding sum, checked at every minibatch boundary.
func TestOracleWindowSum(t *testing.T) {
	const (
		window = 2048
		maxVal = 1023
		eps    = 0.05
	)
	for _, tc := range []struct {
		name   string
		values []uint64
	}{
		{"skewed", workload.Values(21, oracleStreamLen, maxVal, 3)},
		{"uniform", workload.Values(22, oracleStreamLen, maxVal, 1)},
		{"constant", workload.SingleKey(maxVal, oracleStreamLen)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewWindowSum(window, maxVal, eps)
			if err != nil {
				t.Fatal(err)
			}
			prefix := make([]int64, len(tc.values)+1)
			for i, v := range tc.values {
				prefix[i+1] = prefix[i] + int64(v)
			}
			pos := 0
			for _, batch := range workload.Batches(tc.values, 512) {
				if err := s.ProcessBatch(batch); err != nil {
					t.Fatal(err)
				}
				pos += len(batch)
				lo := pos - window
				if lo < 0 {
					lo = 0
				}
				truth := prefix[pos] - prefix[lo]
				est := s.Estimate()
				if est < truth || float64(est) > (1+eps)*float64(truth) {
					t.Fatalf("at %d: estimate %d outside [%d, %g]", pos, est, truth, (1+eps)*float64(truth))
				}
			}
		})
	}
}

// TestOracleCountMin: f_e <= Estimate(e) (deterministic) and
// Estimate(e) <= f_e + εm with probability 1-δ per probe; a small
// failure fraction is tolerated for the probabilistic side.
func TestOracleCountMin(t *testing.T) {
	const (
		eps   = 0.005
		delta = 0.01
	)
	for _, d := range oracleDists() {
		counts := exactCounts(d.stream)
		slack := int64(math.Ceil(eps * float64(len(d.stream))))
		for _, mode := range oracleModes(KindCountMin) {
			t.Run(d.name+"/"+mode.name, func(t *testing.T) {
				agg, err := New(KindCountMin,
					append([]Option{WithEpsilon(eps), WithDelta(delta), WithSeed(7)}, mode.opts...)...)
				if err != nil {
					t.Fatal(err)
				}
				oracleIngest(t, agg, d.stream)
				pe := agg.(PointEstimator)
				probes := oracleProbes(counts)
				overshoots := 0
				for _, item := range probes {
					f, est := counts[item], pe.Estimate(item)
					if est < f {
						t.Fatalf("item %d: estimate %d undercounts %d", item, est, f)
					}
					if est > f+slack {
						overshoots++
					}
				}
				if allowed := 3 + int(5*delta*float64(len(probes))); overshoots > allowed {
					t.Fatalf("%d/%d probes above f+εm (allowed %d)", overshoots, len(probes), allowed)
				}
			})
		}
	}
}

// TestOracleCountSketch: |Estimate(e) - f_e| <= ε·‖f‖₂ with probability
// 1-δ per probe, against the exact (net) frequency vector.
func TestOracleCountSketch(t *testing.T) {
	const (
		eps   = 0.05
		delta = 0.01
	)
	l2 := func(counts map[uint64]int64) float64 {
		var sum float64
		for _, f := range counts {
			sum += float64(f) * float64(f)
		}
		return math.Sqrt(sum)
	}
	check := func(t *testing.T, pe PointEstimator, counts map[uint64]int64) {
		t.Helper()
		bound := int64(math.Ceil(eps * l2(counts)))
		probes := oracleProbes(counts)
		misses := 0
		for _, item := range probes {
			f, est := counts[item], pe.Estimate(item)
			if est > f+bound || est < f-bound {
				misses++
			}
		}
		if allowed := 3 + int(5*delta*float64(len(probes))); misses > allowed {
			t.Fatalf("%d/%d probes outside ±ε‖f‖₂=±%d (allowed %d)", misses, len(probes), bound, allowed)
		}
	}
	for _, d := range oracleDists() {
		counts := exactCounts(d.stream)
		for _, mode := range oracleModes(KindCountSketch) {
			t.Run(d.name+"/"+mode.name, func(t *testing.T) {
				agg, err := New(KindCountSketch,
					append([]Option{WithEpsilon(eps), WithDelta(delta), WithSeed(9)}, mode.opts...)...)
				if err != nil {
					t.Fatal(err)
				}
				oracleIngest(t, agg, d.stream)
				check(t, agg.(PointEstimator), counts)
			})
		}
	}
	// Deletion-heavy turnstile stream through the sequential Update path:
	// nearly half the updates retract an earlier insert, so the sketch
	// must track the net frequency vector.
	t.Run("deletion-heavy", func(t *testing.T) {
		cs, err := NewCountSketch(eps, delta, 9)
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[uint64]int64)
		for _, u := range workload.Turnstile(31, oracleStreamLen, 1.3, 1<<12, 0.45) {
			cs.Update(u.Item, u.Delta)
			counts[u.Item] += u.Delta
			if counts[u.Item] == 0 {
				delete(counts, u.Item)
			}
		}
		check(t, cs, counts)
	})
}

// TestOracleCountMinRange: range counts never undercount, overshoot at
// most ~2(bits+1)·εm with high probability, and quantiles land within
// the rank slack of the dyadic decomposition.
func TestOracleCountMinRange(t *testing.T) {
	const (
		bits     = 12
		universe = 1 << bits
		eps      = 0.002
		delta    = 0.01
	)
	for _, d := range []oracleDist{
		{"zipf", workload.Zipf(101, oracleStreamLen, 1.4, universe-1)},
		{"uniform", workload.Uniform(7, oracleStreamLen, universe)},
		{"single-key", workload.SingleKey(42, oracleStreamLen)},
	} {
		m := float64(len(d.stream))
		slack := int64(math.Ceil(2 * (bits + 1) * eps * m))
		// Exact prefix oracle over the bounded universe.
		cum := make([]int64, universe+1)
		for _, it := range d.stream {
			cum[it+1]++
		}
		for i := 1; i <= universe; i++ {
			cum[i] += cum[i-1]
		}
		rangeTruth := func(lo, hi uint64) int64 { return cum[hi+1] - cum[lo] }
		for _, mode := range oracleModes(KindCountMinRange) {
			t.Run(d.name+"/"+mode.name, func(t *testing.T) {
				agg, err := New(KindCountMinRange,
					append([]Option{WithUniverseBits(bits), WithEpsilon(eps), WithDelta(delta), WithSeed(3)}, mode.opts...)...)
				if err != nil {
					t.Fatal(err)
				}
				oracleIngest(t, agg, d.stream)
				re := agg.(RangeEstimator)
				ranges := [][2]uint64{{0, universe - 1}, {0, 0}, {42, 42}, {100, 1000}, {1, universe / 2}}
				for w := uint64(1); w < universe; w *= 3 {
					ranges = append(ranges, [2]uint64{universe / 3, universe/3 + w - 1})
				}
				overshoots := 0
				for _, r := range ranges {
					truth, est := rangeTruth(r[0], r[1]), re.RangeCount(r[0], r[1])
					if est < truth {
						t.Fatalf("range [%d,%d]: estimate %d undercounts %d", r[0], r[1], est, truth)
					}
					if est > truth+slack {
						overshoots++
					}
				}
				if allowed := 1 + int(5*delta*float64(len(ranges))); overshoots > allowed {
					t.Fatalf("%d/%d ranges above truth+slack (allowed %d)", overshoots, len(ranges), allowed)
				}
				// Quantile rank check: v = Quantile(q) must straddle the
				// target rank within the dyadic overcount slack.
				for _, q := range []float64{0.1, 0.5, 0.9} {
					v := re.Quantile(q)
					target := int64(q * m)
					if v > 0 && cum[v] >= target {
						t.Fatalf("q=%g: prefix below %d already holds %d >= target %d", q, v, cum[v], target)
					}
					if cum[v+1] < target-slack {
						t.Fatalf("q=%g: prefix through %d holds %d < target-slack %d", q, v, cum[v+1], target-slack)
					}
				}
			})
		}
	}
}
