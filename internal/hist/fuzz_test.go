package hist

import "testing"

// FuzzBuild checks the parallel histogram against a map on arbitrary
// small-universe item streams (bytes = items, so collisions abound).
func FuzzBuild(f *testing.F) {
	f.Add([]byte{}, int64(1))
	f.Add([]byte{1, 1, 2, 3}, int64(7))
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), int64(42))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		items := make([]uint64, len(data))
		want := make(map[uint64]int64)
		for i, b := range data {
			items[i] = uint64(b)
			want[uint64(b)]++
		}
		got := make(map[uint64]int64)
		for _, e := range Build(items, seed) {
			if _, dup := got[e.Item]; dup {
				t.Fatalf("item %d reported twice", e.Item)
			}
			got[e.Item] = e.Freq
		}
		if len(got) != len(want) {
			t.Fatalf("distinct %d want %d", len(got), len(want))
		}
		for it, fr := range want {
			if got[it] != fr {
				t.Fatalf("item %d: %d want %d", it, got[it], fr)
			}
		}
	})
}
