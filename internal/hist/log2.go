package hist

// Log2 is a lock-free base-2 exponential histogram: bucket i counts
// observed values whose bit length is i, i.e. values in [2^(i-1), 2^i)
// (bucket 0 counts zeros). It is the observability-side sibling of this
// package's frequency histograms: where Build/Combine histogram the
// *stream* per the paper's cost model, Log2 histograms the *system* —
// batch sizes in items, latencies in nanoseconds — in the same
// per-minibatch units the paper states its work/depth bounds in.
// Observe is two atomic adds, so it is safe on ingest hot paths shared
// by many goroutines without taking any lock.

import (
	"math/bits"
	"sync/atomic"
)

// Log2NumBuckets is the number of buckets: one per possible bit length
// of a uint64 (0 through 64).
const Log2NumBuckets = 65

// Log2 is ready to use at its zero value.
type Log2 struct {
	buckets [Log2NumBuckets]atomic.Int64
	sum     atomic.Int64
}

// Observe records one value.
func (h *Log2) Observe(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.sum.Add(int64(v))
}

// Log2UpperBound is the largest value bucket i holds: 2^i - 1.
func Log2UpperBound(i int) uint64 {
	if i >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << i) - 1
}

// Snapshot copies the per-bucket counts, trimmed after the last
// non-empty bucket, and returns them with the total count and the sum
// of observed values. Concurrent Observe calls may or may not be
// included; the snapshot is not required to be a consistent cut.
func (h *Log2) Snapshot() (buckets []int64, count, sum int64) {
	top := 0
	var all [Log2NumBuckets]int64
	for i := range all {
		all[i] = h.buckets[i].Load()
		count += all[i]
		if all[i] != 0 {
			top = i + 1
		}
	}
	return append([]int64(nil), all[:top]...), count, h.sum.Load()
}
