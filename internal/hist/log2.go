package hist

// Log2 is a lock-free base-2 exponential histogram: bucket i counts
// observed values whose bit length is i, i.e. values in [2^(i-1), 2^i)
// (bucket 0 counts zeros). It is the observability-side sibling of this
// package's frequency histograms: where Build/Combine histogram the
// *stream* per the paper's cost model, Log2 histograms the *system* —
// batch sizes in items, latencies in nanoseconds — in the same
// per-minibatch units the paper states its work/depth bounds in.
// Observe is two atomic adds, so it is safe on ingest hot paths shared
// by many goroutines without taking any lock.

import (
	"math/bits"
	"sync/atomic"
)

// Log2NumBuckets is the number of buckets: one per possible bit length
// of a uint64 (0 through 64).
const Log2NumBuckets = 65

// Log2 is ready to use at its zero value.
type Log2 struct {
	buckets [Log2NumBuckets]atomic.Int64
	sum     atomic.Int64
}

// Observe records one value.
func (h *Log2) Observe(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.sum.Add(int64(v))
}

// Log2UpperBound is the largest value bucket i holds: 2^i - 1.
func Log2UpperBound(i int) uint64 {
	if i >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << i) - 1
}

// Snapshot copies the per-bucket counts, trimmed after the last
// non-empty bucket, and returns them with the total count and the sum
// of observed values. Concurrent Observe calls may or may not be
// included; the snapshot is not required to be a consistent cut.
func (h *Log2) Snapshot() (buckets []int64, count, sum int64) {
	top := 0
	var all [Log2NumBuckets]int64
	for i := range all {
		all[i] = h.buckets[i].Load()
		count += all[i]
		if all[i] != 0 {
			top = i + 1
		}
	}
	return append([]int64(nil), all[:top]...), count, h.sum.Load()
}

// Merge adds o's counts and sum into h. Both sides may keep observing
// concurrently; like Snapshot, the merge is not a consistent cut (each
// bucket is transferred atomically, the set of buckets is not). The
// open-loop load harness records into one Log2 per worker to keep the
// hot path contention-free, then merges them for reporting.
func (h *Log2) Merge(o *Log2) {
	for i := range h.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	if s := o.sum.Load(); s != 0 {
		h.sum.Add(s)
	}
}

// Count returns the total number of observations.
func (h *Log2) Count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Quantile extracts the q-quantile (q in [0, 1]) from the histogram,
// interpolating linearly inside the winning bucket: bucket i holds
// values in [2^(i-1), 2^i), so the true quantile is bounded by a factor
// of 2 and the interpolated estimate assumes mass is uniform within the
// bucket. Returns 0 for an empty histogram. Concurrent observes may or
// may not be included.
func (h *Log2) Quantile(q float64) float64 {
	buckets, count, _ := h.Snapshot()
	return Log2Quantile(buckets, count, q)
}

// Log2Quantile is Quantile over an already-taken Snapshot (buckets,
// count), so one snapshot can serve several percentile extractions
// consistently.
func Log2Quantile(buckets []int64, count int64, q float64) float64 {
	if count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based; q=0 is the minimum.
	target := q * float64(count)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= target {
			if i == 0 {
				return 0 // bucket 0 holds only zeros
			}
			lo := float64(uint64(1) << (i - 1))
			hi := lo * 2
			if i >= 64 {
				hi = float64(^uint64(0))
			}
			frac := (target - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += float64(c)
	}
	// Unreachable when buckets sum to count; be defensive.
	return float64(Log2UpperBound(len(buckets) - 1))
}
