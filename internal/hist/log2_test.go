package hist

import (
	"math"
	"sync"
	"testing"
)

func TestLog2MergePreservesCountsAndSum(t *testing.T) {
	var a, b Log2
	for i := uint64(0); i < 1000; i++ {
		a.Observe(i)
	}
	for i := uint64(0); i < 500; i++ {
		b.Observe(i * 3)
	}
	var want Log2
	for i := uint64(0); i < 1000; i++ {
		want.Observe(i)
	}
	for i := uint64(0); i < 500; i++ {
		want.Observe(i * 3)
	}

	a.Merge(&b)
	gotB, gotC, gotS := a.Snapshot()
	wantB, wantC, wantS := want.Snapshot()
	if gotC != wantC || gotS != wantS {
		t.Fatalf("merged count/sum = %d/%d, want %d/%d", gotC, gotS, wantC, wantS)
	}
	if len(gotB) != len(wantB) {
		t.Fatalf("merged buckets len = %d, want %d", len(gotB), len(wantB))
	}
	for i := range gotB {
		if gotB[i] != wantB[i] {
			t.Fatalf("bucket %d = %d, want %d", i, gotB[i], wantB[i])
		}
	}
	if a.Count() != wantC {
		t.Fatalf("Count() = %d, want %d", a.Count(), wantC)
	}
}

// TestLog2MergeConcurrent merges per-worker histograms while the
// workers are still observing — the load harness's reporting tick does
// exactly this — and asserts nothing is lost once the workers finish
// and a final merge runs.
func TestLog2MergeConcurrent(t *testing.T) {
	const workers, perWorker = 8, 10000
	parts := make([]Log2, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				parts[w].Observe(uint64(w*perWorker + i))
			}
		}(w)
	}
	// Tick merges into throwaway totals while observes are in flight:
	// must not race (run under -race) and must never over-count.
	for k := 0; k < 4; k++ {
		var tick Log2
		for w := range parts {
			tick.Merge(&parts[w])
		}
		if c := tick.Count(); c > workers*perWorker {
			t.Fatalf("mid-flight merge over-counted: %d > %d", c, workers*perWorker)
		}
	}
	wg.Wait()
	var total Log2
	for w := range parts {
		total.Merge(&parts[w])
	}
	if c := total.Count(); c != workers*perWorker {
		t.Fatalf("final merged count = %d, want %d", c, workers*perWorker)
	}
}

func TestLog2QuantileBounds(t *testing.T) {
	// A known distribution: values 1..n uniformly once each. The true
	// q-quantile is q*n; the log2 estimate must be within a factor of 2
	// (the bucket width) of the truth.
	var h Log2
	const n = 1 << 16
	for i := uint64(1); i <= n; i++ {
		h.Observe(i)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := h.Quantile(q)
		truth := q * n
		if got < truth/2 || got > truth*2 {
			t.Errorf("Quantile(%v) = %.0f, want within 2x of %.0f", q, got, truth)
		}
	}
}

func TestLog2QuantileEdgeCases(t *testing.T) {
	var h Log2
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	h.Observe(0)
	h.Observe(0)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("all-zero quantile = %v, want 0", got)
	}
	var one Log2
	one.Observe(1000)
	for _, q := range []float64{0, 0.5, 1} {
		got := one.Quantile(q)
		if got < 512 || got > 1024 {
			t.Fatalf("single-value Quantile(%v) = %v, want in its bucket [512, 1024]", q, got)
		}
	}
	// Out-of-range q clamps rather than panics.
	if got := one.Quantile(-1); math.IsNaN(got) {
		t.Fatal("Quantile(-1) = NaN")
	}
	if got := one.Quantile(2); math.IsNaN(got) {
		t.Fatal("Quantile(2) = NaN")
	}
}

// TestLog2QuantileMonotone pins that percentile extraction is monotone
// in q — the property the p50 <= p90 <= p99 <= p99.9 report relies on.
func TestLog2QuantileMonotone(t *testing.T) {
	var h Log2
	for i := 0; i < 10000; i++ {
		h.Observe(uint64(i * i % 100003))
	}
	buckets, count, _ := h.Snapshot()
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := Log2Quantile(buckets, count, q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v", q, v, prev)
		}
		prev = v
	}
}
