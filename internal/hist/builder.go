package hist

import (
	"repro/internal/hashfn"
)

// maxTableItems bounds the batch size the Builder handles with its
// resident hash table; beyond it the table's footprint (2 slots/item,
// 16 bytes/slot, persisting between batches) stops being worth the
// saved allocations and Build's transient parallel path wins anyway.
const maxTableItems = 1 << 17

// Builder is the reusable, allocation-free production counterpart of
// Build: an open-addressing hash-table histogram whose table, occupancy
// list, and output buffer persist between batches. Build keeps the
// sort-based CRCW-combining simulation of Theorem 2.3 for the paper's
// depth bound; Builder trades that polylog depth for a compact pass that
// touches ~2 cache lines per item and allocates nothing in steady state
// — the better trade at serving batch sizes, where the batcher's single
// flush worker is the caller and the sketch rows below it provide the
// parallelism. Batches beyond maxTableItems fall back to Build.
//
// A Builder is owned by one sketch and used under its write gate; it is
// not safe for concurrent use. The zero value is ready.
type Builder struct {
	item []uint64 // open-addressing table: key slots
	freq []int64  // parallel counts; freq[j] == 0 means slot j is empty
	used []int32  // occupied slot indices, in insertion order
	out  []Entry  // reused output buffer
}

// Build computes the histogram of items, reusing the Builder's internal
// buffers; the returned slice is valid until the next call. The seed
// salts the table hash per batch (any seed yields a correct histogram —
// as in Build, hashing only affects performance).
//
//agglint:hotpath
func (b *Builder) Build(items []uint64, seed int64) []Entry {
	mu := len(items)
	if mu == 0 {
		return nil
	}
	if mu > maxTableItems {
		return Build(items, seed)
	}
	// Table size: next power of two >= 2µ, so load factor <= 1/2.
	size := 2
	for size < 2*mu {
		size <<= 1
	}
	if cap(b.item) < size {
		b.item = make([]uint64, size)
		b.freq = make([]int64, size)
	}
	table, freq := b.item[:size], b.freq[:size]
	used := b.used[:0]
	mask := uint64(size - 1)
	salt := hashfn.Mix64(uint64(seed) ^ 0x68697374)
	for _, x := range items {
		j := hashfn.Mix64(x^salt) & mask
		for {
			if freq[j] == 0 {
				table[j] = x
				freq[j] = 1
				used = append(used, int32(j))
				break
			}
			if table[j] == x {
				freq[j]++
				break
			}
			j = (j + 1) & mask
		}
	}
	out := b.out[:0]
	for _, j := range used {
		out = append(out, Entry{Item: table[j], Freq: freq[j]})
		freq[j] = 0 // clear only the touched slots for the next batch
	}
	b.used, b.out = used[:0], out
	return out
}
