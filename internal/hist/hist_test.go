package hist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func refHist(items []uint64) map[uint64]int64 {
	m := make(map[uint64]int64)
	for _, it := range items {
		m[it]++
	}
	return m
}

func checkAgainstRef(t *testing.T, items []uint64, entries []Entry) {
	t.Helper()
	want := refHist(items)
	got := make(map[uint64]int64)
	for _, e := range entries {
		if _, dup := got[e.Item]; dup {
			t.Fatalf("item %d reported twice", e.Item)
		}
		got[e.Item] = e.Freq
	}
	if len(got) != len(want) {
		t.Fatalf("distinct count %d want %d", len(got), len(want))
	}
	for it, f := range want {
		if got[it] != f {
			t.Fatalf("item %d freq %d want %d", it, got[it], f)
		}
	}
}

func TestBuildEmpty(t *testing.T) {
	if out := Build(nil, 1); out != nil {
		t.Fatalf("Build(nil) = %v", out)
	}
}

func TestBuildSingle(t *testing.T) {
	checkAgainstRef(t, []uint64{42}, Build([]uint64{42}, 1))
}

func TestBuildAllSame(t *testing.T) {
	items := make([]uint64, 10000)
	for i := range items {
		items[i] = 7
	}
	out := Build(items, 3)
	if len(out) != 1 || out[0].Item != 7 || out[0].Freq != 10000 {
		t.Fatalf("all-same: %v", out)
	}
}

func TestBuildAllDistinct(t *testing.T) {
	items := make([]uint64, 20000)
	for i := range items {
		items[i] = uint64(i) * 1000003
	}
	checkAgainstRef(t, items, Build(items, 5))
}

func TestBuildZipfLike(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	zipf := rand.NewZipf(rng, 1.2, 1, 1<<20)
	items := make([]uint64, 50000)
	for i := range items {
		items[i] = zipf.Uint64()
	}
	checkAgainstRef(t, items, Build(items, 7))
}

func TestBuildRandomProperty(t *testing.T) {
	check := func(seed int64, nRaw uint16, universe uint8) bool {
		n := int(nRaw%5000) + 1
		u := uint64(universe) + 1
		rng := rand.New(rand.NewSource(seed))
		items := make([]uint64, n)
		for i := range items {
			items[i] = rng.Uint64() % u
		}
		want := refHist(items)
		got := make(map[uint64]int64)
		for _, e := range Build(items, seed^0x5a5a) {
			got[e.Item] = e.Freq
		}
		if len(got) != len(want) {
			return false
		}
		for it, f := range want {
			if got[it] != f {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildSeedIndependence(t *testing.T) {
	// Different seeds must produce the same histogram (as a set).
	items := []uint64{1, 1, 2, 3, 3, 3, 1 << 40, 1 << 40}
	for seed := int64(0); seed < 20; seed++ {
		checkAgainstRef(t, items, Build(items, seed))
	}
}

func TestBuildAdversarialKeys(t *testing.T) {
	// Keys crafted as multiples of a large power of two, which defeat weak
	// (mask-based) hashes; the polynomial hash must still bucket them well
	// enough for correctness (and the histogram must be exact regardless).
	items := make([]uint64, 30000)
	for i := range items {
		items[i] = uint64(i%300) << 40
	}
	checkAgainstRef(t, items, Build(items, 13))
}

func TestBuildMap(t *testing.T) {
	items := []uint64{5, 5, 6}
	m := BuildMap(items, 1)
	if m[5] != 2 || m[6] != 1 || len(m) != 2 {
		t.Fatalf("BuildMap = %v", m)
	}
}
