package hist

import (
	"math/rand"
	"testing"
)

func histToMap(es []Entry) map[uint64]int64 {
	m := make(map[uint64]int64)
	for _, e := range es {
		m[e.Item] += e.Freq
	}
	return m
}

func TestBuilderMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var b Builder
	for _, mu := range []int{1, 2, 17, 1000, 8192, 40000} {
		items := make([]uint64, mu)
		for i := range items {
			items[i] = uint64(rng.Intn(mu/2 + 1))
		}
		got := histToMap(b.Build(items, int64(mu)))
		want := BuildMap(items, int64(mu))
		if len(got) != len(want) {
			t.Fatalf("mu=%d: %d distinct items, want %d", mu, len(got), len(want))
		}
		for it, f := range want {
			if got[it] != f {
				t.Fatalf("mu=%d item %d: freq %d want %d", mu, it, got[it], f)
			}
		}
	}
}

func TestBuilderEmpty(t *testing.T) {
	var b Builder
	if es := b.Build(nil, 1); es != nil {
		t.Fatalf("empty batch produced %d entries", len(es))
	}
}

func TestBuilderReuseAcrossBatches(t *testing.T) {
	// Back-to-back batches must not leak state: a slot used in batch 1
	// must read as empty in batch 2.
	var b Builder
	first := []uint64{1, 1, 2, 3, 3, 3}
	second := []uint64{4, 4, 5}
	b.Build(first, 9)
	got := histToMap(b.Build(second, 10))
	if len(got) != 2 || got[4] != 2 || got[5] != 1 {
		t.Fatalf("stale table state: %v", got)
	}
}

func TestBuilderFallbackBeyondTableCap(t *testing.T) {
	var b Builder
	items := make([]uint64, maxTableItems+1)
	for i := range items {
		items[i] = uint64(i % 1000)
	}
	got := histToMap(b.Build(items, 3))
	if len(got) != 1000 {
		t.Fatalf("fallback path: %d distinct items, want 1000", len(got))
	}
	for it, f := range got {
		want := int64(len(items) / 1000)
		if it < uint64(len(items)%1000) {
			want++
		}
		if f != want {
			t.Fatalf("item %d: freq %d want %d", it, f, want)
		}
	}
}

func TestBuilderZeroAllocSteadyState(t *testing.T) {
	var b Builder
	items := make([]uint64, 8192)
	rng := rand.New(rand.NewSource(21))
	for i := range items {
		items[i] = uint64(rng.Intn(2000))
	}
	b.Build(items, 1) // warm the buffers
	allocs := testing.AllocsPerRun(20, func() {
		b.Build(items, 2)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Build allocates %.1f times per batch, want 0", allocs)
	}
}
