// Package hist implements buildHist (Theorem 2.3): a linear-work,
// polylog-depth parallel histogram of a stream segment. Items are hashed
// into R = O(µ) buckets with a k-wise independent polynomial hash,
// bucketed together with the parallel integer sort (Theorem 2.2's role),
// and each bucket is collapsed with collectBin, which counts the distinct
// items that landed in it. With a good hash, each bucket holds O(1)
// distinct items in expectation and O(log µ) whp, giving O(µ) expected
// work and O(log² µ) depth whp.
package hist

import (
	"repro/internal/hashfn"
	"repro/internal/parallel"
)

// Entry is one histogram row: a distinct item and its frequency in the
// segment. Entries are reported in no particular order.
type Entry struct {
	Item uint64
	Freq int64
}

// independence is the degree of the polynomial hash family. The analysis
// asks for O(log µ)-wise independence for the whp depth bound; a fixed
// moderate degree keeps hash evaluation O(1) per item (the theory assumes
// unit-cost hashing) and is ample in practice.
const independence = 8

// Build computes the histogram of items. The seed selects the hash
// function; any seed yields a correct histogram (hashing only affects
// performance). O(µ) expected work, polylog depth.
func Build(items []uint64, seed int64) []Entry {
	mu := len(items)
	if mu == 0 {
		return nil
	}
	// Output range R = next power of two >= 2µ, so expected distinct items
	// per bucket is <= 1/2.
	r := uint32(2)
	for int(r) < 2*mu {
		r <<= 1
	}
	h := hashfn.NewPoly(independence, uint64(r), seed)

	// Bucket items: stable sort of (hash(item), index) pairs.
	keys := make([]uint32, mu)
	idx := make([]int32, mu)
	parallel.ForGrain(mu, parallel.DefaultGrain, func(i int) {
		keys[i] = uint32(h.Hash(items[i]))
		idx[i] = int32(i)
	})
	parallel.RadixSortPairs(keys, idx, r)

	// Bucket boundaries: positions where the sorted key changes.
	starts := parallel.PackIndices(mu, func(i int) bool {
		return i == 0 || keys[i] != keys[i-1]
	})
	nb := len(starts)

	// collectBin per bucket, in parallel. Each bucket yields its distinct
	// items; counts go into per-bucket scratch, then a prefix sum lays out
	// the output.
	perBucket := make([][]Entry, nb)
	counts := make([]int, nb)
	parallel.ForGrain(nb, 8, func(b int) {
		lo := starts[b]
		hi := mu
		if b+1 < nb {
			hi = starts[b+1]
		}
		es := collectBin(items, idx[lo:hi])
		perBucket[b] = es
		counts[b] = len(es)
	})
	total := parallel.ScanExclusive(counts)
	out := make([]Entry, total)
	parallel.ForGrain(nb, 8, func(b int) {
		copy(out[counts[b]:], perBucket[b])
	})
	return out
}

// collectBin counts distinct items among the originals referenced by
// positions (the members of one hash bucket): repeatedly pick an item,
// count and remove all its occurrences (the paper's recursive routine,
// iteratively). O(d·|B|) work for d distinct items in the bucket; d is
// O(1) in expectation.
func collectBin(items []uint64, positions []int32) []Entry {
	var out []Entry
	live := positions
	scratch := make([]int32, 0, len(positions))
	for len(live) > 0 {
		e := items[live[0]]
		var freq int64
		scratch = scratch[:0]
		for _, p := range live {
			if items[p] == e {
				freq++
			} else {
				scratch = append(scratch, p)
			}
		}
		out = append(out, Entry{Item: e, Freq: freq})
		live, scratch = scratch, live[:0]
	}
	return out
}

// BuildMap is a convenience wrapper returning the histogram as a map,
// used by tests and by reference (ground-truth) computations.
func BuildMap(items []uint64, seed int64) map[uint64]int64 {
	m := make(map[uint64]int64)
	for _, e := range Build(items, seed) {
		m[e.Item] += e.Freq
	}
	return m
}
