package hist

import (
	"repro/internal/hashfn"
	"repro/internal/parallel"
)

// Combine groups entries by item and sums their frequencies, returning
// one entry per distinct item in arbitrary order. It is the "add up the
// corresponding frequencies" step of MGaugment (Lemma 5.3), implemented
// with the same hash + integer-sort + collect machinery as Build so the
// whole step is O(len(entries)) expected work and polylog depth rather
// than a sequential hash-table merge.
func Combine(entries []Entry, seed int64) []Entry {
	n := len(entries)
	if n == 0 {
		return nil
	}
	r := uint32(2)
	for int(r) < 2*n {
		r <<= 1
	}
	h := hashfn.NewPoly(independence, uint64(r), seed)
	keys := make([]uint32, n)
	idx := make([]int32, n)
	parallel.ForGrain(n, parallel.DefaultGrain, func(i int) {
		keys[i] = uint32(h.Hash(entries[i].Item))
		idx[i] = int32(i)
	})
	parallel.RadixSortPairs(keys, idx, r)
	starts := parallel.PackIndices(n, func(i int) bool {
		return i == 0 || keys[i] != keys[i-1]
	})
	nb := len(starts)
	perBucket := make([][]Entry, nb)
	counts := make([]int, nb)
	parallel.ForGrain(nb, 8, func(b int) {
		lo := starts[b]
		hi := n
		if b+1 < nb {
			hi = starts[b+1]
		}
		es := collectBinWeighted(entries, idx[lo:hi])
		perBucket[b] = es
		counts[b] = len(es)
	})
	total := parallel.ScanExclusive(counts)
	out := make([]Entry, total)
	parallel.ForGrain(nb, 8, func(b int) {
		copy(out[counts[b]:], perBucket[b])
	})
	return out
}

// collectBinWeighted is collectBin over weighted entries: for each
// distinct item in the bucket it sums the frequencies of its occurrences.
func collectBinWeighted(entries []Entry, positions []int32) []Entry {
	var out []Entry
	live := positions
	scratch := make([]int32, 0, len(positions))
	for len(live) > 0 {
		e := entries[live[0]].Item
		var freq int64
		scratch = scratch[:0]
		for _, p := range live {
			if entries[p].Item == e {
				freq += entries[p].Freq
			} else {
				scratch = append(scratch, p)
			}
		}
		out = append(out, Entry{Item: e, Freq: freq})
		live, scratch = scratch, live[:0]
	}
	return out
}
