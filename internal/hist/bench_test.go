package hist

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchItems(n int, distinct uint64) []uint64 {
	rng := rand.New(rand.NewSource(int64(n)))
	items := make([]uint64, n)
	for i := range items {
		items[i] = rng.Uint64() % distinct
	}
	return items
}

func BenchmarkBuild(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16, 1 << 20} {
		for _, distinct := range []uint64{16, 1 << 12, 1 << 20} {
			b.Run(fmt.Sprintf("n%d-distinct%d", n, distinct), func(b *testing.B) {
				items := benchItems(n, distinct)
				b.SetBytes(int64(n) * 8)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_ = Build(items, int64(i))
				}
			})
		}
	}
}

func BenchmarkCombine(b *testing.B) {
	entries := make([]Entry, 1<<16)
	rng := rand.New(rand.NewSource(3))
	for i := range entries {
		entries[i] = Entry{Item: rng.Uint64() % (1 << 14), Freq: int64(rng.Intn(100))}
	}
	b.SetBytes(int64(len(entries)) * 16)
	for i := 0; i < b.N; i++ {
		_ = Combine(entries, int64(i))
	}
}
