package countsketch

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
)

// legacyStateShape mirrors State as serialized before the Scheme tag
// existed; gob matches fields by name, so this reproduces a pre-tag
// checkpoint restore.
type legacyStateShape struct {
	D, W     int
	M        int64
	HashSeed int64
	Seed     int64
	Cells    []int64
}

func TestUntaggedCheckpointRestoresLegacyScheme(t *testing.T) {
	legacy := NewWithDimsScheme(5, 512, 99, SchemeLegacyPairwise)
	rng := rand.New(rand.NewSource(3))
	items := make([]uint64, 4096)
	for i := range items {
		items[i] = uint64(rng.Intn(300))
	}
	legacy.ProcessBatch(items)

	st := legacy.State()
	old := legacyStateShape{D: st.D, W: st.W, M: st.M, HashSeed: st.HashSeed, Seed: st.Seed, Cells: st.Cells}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(old); err != nil {
		t.Fatal(err)
	}
	var decoded State
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Scheme != SchemeLegacyPairwise {
		t.Fatalf("untagged checkpoint decoded Scheme=%d, want legacy (0)", decoded.Scheme)
	}
	got, err := FromState(decoded)
	if err != nil {
		t.Fatal(err)
	}
	for x := uint64(0); x < 300; x++ {
		if got.Query(x) != legacy.Query(x) {
			t.Fatalf("restored legacy sketch disagrees at %d: %d vs %d", x, got.Query(x), legacy.Query(x))
		}
	}
	got.ProcessBatch(items)
	legacy.ProcessBatch(items)
	for x := uint64(0); x < 300; x++ {
		if got.Query(x) != legacy.Query(x) {
			t.Fatalf("post-restore ingest diverged at %d", x)
		}
	}
}

func TestSchemeRoundTrip(t *testing.T) {
	for _, scheme := range []int{SchemeLegacyPairwise, SchemeDerived} {
		s := NewWithDimsScheme(3, 256, 7, scheme)
		s.Update(42, 5)
		st := s.State()
		if st.Scheme != scheme {
			t.Fatalf("State.Scheme = %d, want %d", st.Scheme, scheme)
		}
		r, err := FromState(st)
		if err != nil {
			t.Fatal(err)
		}
		if r.Scheme() != scheme || r.Query(42) != s.Query(42) {
			t.Fatalf("scheme %d round trip mismatch", scheme)
		}
	}
}

func TestFromStateRejectsUnknownScheme(t *testing.T) {
	st := NewWithDims(2, 64, 1).State()
	st.Scheme = -1
	if _, err := FromState(st); err == nil {
		t.Fatal("FromState accepted unknown scheme tag")
	}
}

func TestMergeSchemeMismatch(t *testing.T) {
	a := NewWithDimsScheme(3, 128, 5, SchemeDerived)
	b := NewWithDimsScheme(3, 128, 5, SchemeLegacyPairwise)
	if err := a.Merge(b); err == nil {
		t.Fatal("merge across hash schemes must be rejected")
	}
	c := a.Clone()
	if c.Scheme() != SchemeDerived {
		t.Fatal("clone dropped scheme")
	}
	if err := a.Merge(c); err != nil {
		t.Fatalf("merge of clone failed: %v", err)
	}
}

func TestLegacyBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	items := make([]uint64, 6000)
	for i := range items {
		items[i] = uint64(rng.Intn(500))
	}
	batch := NewWithDimsScheme(5, 300, 77, SchemeLegacyPairwise)
	seq := NewWithDimsScheme(5, 300, 77, SchemeLegacyPairwise)
	batch.ProcessBatch(items)
	for _, it := range items {
		seq.Update(it, 1)
	}
	for x := uint64(0); x < 500; x++ {
		if batch.Query(x) != seq.Query(x) {
			t.Fatalf("legacy batch/sequential mismatch at %d", x)
		}
	}
}

func TestDerivedBatchSteadyStateAllocs(t *testing.T) {
	s := NewWithDims(5, 1<<14, 42)
	rng := rand.New(rand.NewSource(13))
	items := make([]uint64, 8192)
	for i := range items {
		items[i] = uint64(rng.Intn(4000))
	}
	s.ProcessBatch(items) // warm the scratch
	allocs := testing.AllocsPerRun(10, func() {
		s.ProcessBatch(items)
	})
	if perItem := allocs / float64(len(items)); perItem >= 0.01 {
		t.Fatalf("derived batch path allocates %.3f objects/item (%.0f/batch), want < 0.01", perItem, allocs)
	}
}
