package countsketch

import (
	"math/rand"
	"testing"
)

func benchBatches(nBatches, batchSize int) [][]uint64 {
	rng := rand.New(rand.NewSource(13))
	zipf := rand.NewZipf(rng, 1.2, 1, 1<<18)
	out := make([][]uint64, nBatches)
	for b := range out {
		out[b] = make([]uint64, batchSize)
		for i := range out[b] {
			out[b][i] = zipf.Uint64()
		}
	}
	return out
}

func BenchmarkProcessBatch(b *testing.B) {
	bs := benchBatches(32, 1<<14)
	s := New(0.01, 1e-3, 3)
	b.SetBytes(1 << 14 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ProcessBatch(bs[i%len(bs)])
	}
}

func BenchmarkQuery(b *testing.B) {
	s := New(0.01, 1e-3, 3)
	for _, batch := range benchBatches(8, 1<<14) {
		s.ProcessBatch(batch)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Query(uint64(i % 4096))
	}
}
