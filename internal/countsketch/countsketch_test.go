package countsketch

import (
	"math"
	"math/rand"
	"testing"
)

func TestDims(t *testing.T) {
	s := New(0.1, 0.01, 1)
	if s.Width() != 300 {
		t.Fatalf("Width = %d want 300", s.Width())
	}
	if s.Depth() != 5 {
		t.Fatalf("Depth = %d want 5", s.Depth())
	}
}

func TestBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	items := make([]uint64, 30000)
	for i := range items {
		items[i] = uint64(rng.Intn(500))
	}
	a := NewWithDims(5, 128, 7)
	b := NewWithDims(5, 128, 7)
	a.ProcessBatch(items)
	for _, it := range items {
		b.Update(it, 1)
	}
	if a.TotalCount() != b.TotalCount() {
		t.Fatalf("TotalCount %d != %d", a.TotalCount(), b.TotalCount())
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 128; j++ {
			if a.rows[i][j] != b.rows[i][j] {
				t.Fatalf("cell [%d][%d]: %d != %d", i, j, a.rows[i][j], b.rows[i][j])
			}
		}
	}
}

func TestErrorBoundL2(t *testing.T) {
	eps, delta := 0.05, 0.01
	s := New(eps, delta, 3)
	rng := rand.New(rand.NewSource(2))
	zipf := rand.NewZipf(rng, 1.3, 1, 1<<14)
	exact := map[uint64]int64{}
	items := make([]uint64, 100000)
	for i := range items {
		items[i] = zipf.Uint64()
		exact[items[i]]++
	}
	s.ProcessBatch(items)
	var l2sq float64
	for _, f := range exact {
		l2sq += float64(f) * float64(f)
	}
	bound := eps * math.Sqrt(l2sq)
	bad := 0
	for it, fe := range exact {
		diff := float64(s.Query(it) - fe)
		if diff < 0 {
			diff = -diff
		}
		if diff > bound {
			bad++
		}
	}
	if bad > len(exact)/50+2 {
		t.Fatalf("%d/%d queries beyond ε‖f‖₂", bad, len(exact))
	}
}

func TestUnbiasedOnHeavyItem(t *testing.T) {
	// A heavy item's estimate should be close to truth (within a few
	// percent), not systematically above like count-min.
	s := New(0.02, 0.01, 9)
	rng := rand.New(rand.NewSource(4))
	items := make([]uint64, 50000)
	for i := range items {
		if i%4 == 0 {
			items[i] = 7
		} else {
			items[i] = rng.Uint64() % (1 << 16)
		}
	}
	s.ProcessBatch(items)
	got := s.Query(7)
	if got < 11000 || got > 14000 {
		t.Fatalf("heavy item estimate %d want ~12500", got)
	}
}

func TestWeightedUpdateAndAccessors(t *testing.T) {
	s := NewWithDims(3, 64, 1)
	s.Update(1, 10)
	s.Update(2, -3) // deletions are legal in count-sketch (turnstile)
	if s.TotalCount() != 7 {
		t.Fatalf("TotalCount %d", s.TotalCount())
	}
	if q := s.Query(1); q < 5 || q > 15 {
		t.Fatalf("Query(1) = %d want ~10", q)
	}
	if s.SpaceWords() < 3*64 {
		t.Fatal("SpaceWords too small")
	}
}

func TestEmptyBatch(t *testing.T) {
	s := New(0.1, 0.1, 1)
	s.ProcessBatch(nil)
	if s.TotalCount() != 0 || s.Query(5) != 0 {
		t.Fatal("empty batch changed state")
	}
}

func TestEvenDepthMedian(t *testing.T) {
	s := NewWithDims(4, 64, 5)
	s.Update(3, 100)
	if q := s.Query(3); q < 50 || q > 150 {
		t.Fatalf("even-d median: %d", q)
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 0.1, 1) },
		func() { New(0.1, 0, 1) },
		func() { New(0.1, 1, 1) },
		func() { NewWithDims(0, 1, 1) },
		func() { NewWithDims(1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
