// Package countsketch implements the Count-Sketch of Charikar, Chen and
// Farach-Colton [CCFC02] (cited in the paper's related work) with the
// same parallel minibatch ingestion style as the count-min sketch
// (Section 6): histogram the batch, then per row group updates by column
// so every cell has a single writer.
//
// Unlike count-min, count-sketch is unbiased: each row adds s_i(e)·count
// to cell h_i(e) for a ±1 sign hash s_i, and a point query returns the
// median over rows of s_i(e)·cell. Error is ±ε·‖f‖₂ with probability
// 1−δ, which beats count-min's εm on heavy-tailed streams.
package countsketch

import (
	"math"
	"sort"

	"repro/internal/hashfn"
	"repro/internal/hist"
	"repro/internal/parallel"
)

// Sketch is a count-sketch.
type Sketch struct {
	d, w     int
	rows     [][]int64
	cols     []hashfn.Pairwise
	signs    []hashfn.Pairwise
	m        int64
	hashSeed int64 // constructor seed: determines the hash functions
	seed     int64 // rolling seed for per-batch histogram hashing
}

// New creates a sketch with w = ⌈3/ε²⌉ columns and d = ⌈ln(1/δ)⌉ rows
// (point error ±ε‖f‖₂ with probability 1−δ).
func New(epsilon, delta float64, seed int64) *Sketch {
	if epsilon <= 0 || epsilon > 1 {
		panic("countsketch: epsilon must be in (0, 1]")
	}
	if delta <= 0 || delta >= 1 {
		panic("countsketch: delta must be in (0, 1)")
	}
	w := int(math.Ceil(3 / (epsilon * epsilon)))
	d := int(math.Ceil(math.Log(1 / delta)))
	if d < 1 {
		d = 1
	}
	return NewWithDims(d, w, seed)
}

// NewWithDims creates a d×w sketch directly.
func NewWithDims(d, w int, seed int64) *Sketch {
	if d < 1 || w < 1 {
		panic("countsketch: dimensions must be >= 1")
	}
	s := &Sketch{d: d, w: w, hashSeed: seed, seed: seed}
	s.rows = make([][]int64, d)
	flat := make([]int64, d*w)
	s.cols = make([]hashfn.Pairwise, d)
	s.signs = make([]hashfn.Pairwise, d)
	for i := 0; i < d; i++ {
		s.rows[i] = flat[i*w : (i+1)*w]
		s.cols[i] = hashfn.NewPairwise(uint64(w), seed+int64(i)*31+5)
		s.signs[i] = hashfn.NewPairwise(2, seed+int64(i)*57+11)
	}
	return s
}

// Depth returns d.
func (s *Sketch) Depth() int { return s.d }

// Width returns w.
func (s *Sketch) Width() int { return s.w }

// TotalCount returns the total ingested weight.
func (s *Sketch) TotalCount() int64 { return s.m }

func (s *Sketch) sign(i int, item uint64) int64 {
	return 2*int64(s.signs[i].Hash(item)) - 1
}

// Update adds count occurrences of item (sequential path).
func (s *Sketch) Update(item uint64, count int64) {
	for i := 0; i < s.d; i++ {
		s.rows[i][s.cols[i].Hash(item)] += s.sign(i, item) * count
	}
	s.m += count
}

// ProcessBatch ingests a minibatch in parallel: histogram + per-row
// column grouping, mirroring the paper's count-min scheme.
func (s *Sketch) ProcessBatch(items []uint64) {
	if len(items) == 0 {
		return
	}
	s.seed++
	h := hist.Build(items, s.seed^0x6373)
	p := len(h)
	parallel.ForGrain(s.d, 1, func(i int) {
		row := s.rows[i]
		if p < 2048 {
			for _, en := range h {
				row[s.cols[i].Hash(en.Item)] += s.sign(i, en.Item) * en.Freq
			}
			return
		}
		colKeys := make([]uint32, p)
		idx := make([]int32, p)
		parallel.ForGrain(p, parallel.DefaultGrain, func(j int) {
			colKeys[j] = uint32(s.cols[i].Hash(h[j].Item))
			idx[j] = int32(j)
		})
		parallel.RadixSortPairs(colKeys, idx, uint32(s.w))
		starts := parallel.PackIndices(p, func(j int) bool {
			return j == 0 || colKeys[j] != colKeys[j-1]
		})
		parallel.ForGrain(len(starts), 8, func(b int) {
			lo := starts[b]
			hi := p
			if b+1 < len(starts) {
				hi = starts[b+1]
			}
			var total int64
			for j := lo; j < hi; j++ {
				en := h[idx[j]]
				total += s.sign(i, en.Item) * en.Freq
			}
			row[colKeys[lo]] += total
		})
	})
	for _, en := range h {
		s.m += en.Freq
	}
}

// Query returns the median-of-rows point estimate for item. It is
// unbiased; |Query(e) - f_e| <= ε·‖f‖₂ with probability >= 1-δ.
func (s *Sketch) Query(item uint64) int64 {
	ests := make([]int64, s.d)
	for i := 0; i < s.d; i++ {
		ests[i] = s.sign(i, item) * s.rows[i][s.cols[i].Hash(item)]
	}
	sort.Slice(ests, func(a, b int) bool { return ests[a] < ests[b] })
	mid := s.d / 2
	if s.d%2 == 1 {
		return ests[mid]
	}
	return (ests[mid-1] + ests[mid]) / 2
}

// SpaceWords estimates the footprint in 64-bit words.
func (s *Sketch) SpaceWords() int { return s.d*s.w + 5*s.d + 4 }
