// Package countsketch implements the Count-Sketch of Charikar, Chen and
// Farach-Colton [CCFC02] (cited in the paper's related work) with the
// same parallel minibatch ingestion style as the count-min sketch
// (Section 6): histogram the batch, then per row group updates by column
// so every cell has a single writer.
//
// Unlike count-min, count-sketch is unbiased: each row adds s_i(e)·count
// to cell h_i(e) for a ±1 sign hash s_i, and a point query returns the
// median over rows of s_i(e)·cell. Error is ±ε·‖f‖₂ with probability
// 1−δ, which beats count-min's εm on heavy-tailed streams.
//
// Row addressing mirrors package cms: new sketches use the derived
// scheme (one base hash per item; row columns and all 64 row signs
// derived from the pair with multiply-adds), while the legacy
// two-pairwise-hashes-per-row scheme survives only for checkpoints
// written before the tag existed.
package countsketch

import (
	"math"
	"sort"

	"repro/internal/hashfn"
	"repro/internal/hist"
	"repro/internal/parallel"
)

// Hash-scheme tags, serialized in State.Scheme; the zero value must stay
// SchemeLegacyPairwise so untagged checkpoints restore with the hashing
// that addressed their cells (see package cms for the full story).
const (
	SchemeLegacyPairwise = 0
	SchemeDerived        = 1
)

// Sketch is a count-sketch.
type Sketch struct {
	d, w     int
	rows     [][]int64
	scheme   int
	base     hashfn.Derived    // SchemeDerived column + sign addressing
	cols     []hashfn.Pairwise // SchemeLegacyPairwise columns
	signs    []hashfn.Pairwise // SchemeLegacyPairwise signs
	m        int64
	hashSeed int64 // constructor seed: determines the hash functions
	seed     int64 // rolling seed for per-batch histogram hashing

	// Per-instance batch scratch, reused across ProcessBatch calls under
	// the caller's write gate: histogram builder, per-entry base-hash
	// pairs, and per-entry sign words.
	hb         hist.Builder
	g1, g2, sw []uint64
}

// New creates a sketch with w = ⌈3/ε²⌉ columns and d = ⌈ln(1/δ)⌉ rows
// (point error ±ε‖f‖₂ with probability 1−δ).
func New(epsilon, delta float64, seed int64) *Sketch {
	if epsilon <= 0 || epsilon > 1 {
		panic("countsketch: epsilon must be in (0, 1]")
	}
	if delta <= 0 || delta >= 1 {
		panic("countsketch: delta must be in (0, 1)")
	}
	w := int(math.Ceil(3 / (epsilon * epsilon)))
	d := int(math.Ceil(math.Log(1 / delta)))
	if d < 1 {
		d = 1
	}
	return NewWithDims(d, w, seed)
}

// NewWithDims creates a d×w sketch directly, using the derived scheme.
func NewWithDims(d, w int, seed int64) *Sketch {
	return NewWithDimsScheme(d, w, seed, SchemeDerived)
}

// NewWithDimsScheme creates a d×w sketch with an explicit hash scheme.
// SchemeLegacyPairwise exists for checkpoint restoration and for
// benchmarking the old addressing; new sketches use SchemeDerived.
func NewWithDimsScheme(d, w int, seed int64, scheme int) *Sketch {
	if d < 1 || w < 1 {
		panic("countsketch: dimensions must be >= 1")
	}
	if scheme != SchemeLegacyPairwise && scheme != SchemeDerived {
		panic("countsketch: unknown hash scheme")
	}
	s := &Sketch{d: d, w: w, scheme: scheme, hashSeed: seed, seed: seed}
	s.rows = make([][]int64, d)
	flat := make([]int64, d*w)
	for i := 0; i < d; i++ {
		s.rows[i] = flat[i*w : (i+1)*w]
	}
	if scheme == SchemeDerived {
		s.base = hashfn.NewDerived(uint64(w), seed)
		return s
	}
	s.cols = make([]hashfn.Pairwise, d)
	s.signs = make([]hashfn.Pairwise, d)
	for i := 0; i < d; i++ {
		s.cols[i] = hashfn.NewPairwise(uint64(w), seed+int64(i)*31+5)
		s.signs[i] = hashfn.NewPairwise(2, seed+int64(i)*57+11)
	}
	return s
}

// Depth returns d.
func (s *Sketch) Depth() int { return s.d }

// Width returns w.
func (s *Sketch) Width() int { return s.w }

// Scheme returns the row-addressing scheme tag.
func (s *Sketch) Scheme() int { return s.scheme }

// TotalCount returns the total ingested weight.
func (s *Sketch) TotalCount() int64 { return s.m }

// signFromWord extracts row i's ±1 sign from a derived sign word.
func signFromWord(sw uint64, i int) int64 {
	return int64((sw>>(uint(i)&63))&1)*2 - 1
}

func (s *Sketch) legacySign(i int, item uint64) int64 {
	return 2*int64(s.signs[i].HashAliased(item)) - 1
}

// Update adds count occurrences of item (sequential path).
func (s *Sketch) Update(item uint64, count int64) {
	if s.scheme == SchemeDerived {
		g1, g2 := s.base.Base(item)
		sw := s.base.SignWord(g1, g2)
		for i := 0; i < s.d; i++ {
			s.rows[i][s.base.Row(g1, g2, i)] += signFromWord(sw, i) * count
		}
	} else {
		for i := 0; i < s.d; i++ {
			s.rows[i][s.cols[i].HashAliased(item)] += s.legacySign(i, item) * count
		}
	}
	s.m += count
}

// grow returns buf resized to n, reallocating only when capacity grew.
//
//agglint:hotpath
func grow(buf *[]uint64, n int) []uint64 {
	if cap(*buf) < n {
		*buf = make([]uint64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// ProcessBatch ingests a minibatch in parallel: histogram, then one base
// hash per distinct item with each row folded by a single owner
// goroutine (derived scheme, zero steady-state allocations), or the
// legacy per-row column grouping for restored old-scheme sketches.
//
//agglint:hotpath
func (s *Sketch) ProcessBatch(items []uint64) {
	if len(items) == 0 {
		return
	}
	s.seed++
	var h []hist.Entry
	if s.scheme == SchemeDerived {
		h = s.hb.Build(items, s.seed^0x6373)
		s.processDerived(h)
	} else {
		h = hist.Build(items, s.seed^0x6373)
		s.processLegacy(h)
	}
	for _, en := range h {
		s.m += en.Freq
	}
}

//agglint:hotpath
func (s *Sketch) processDerived(h []hist.Entry) {
	p := len(h)
	g1 := grow(&s.g1, p)
	g2 := grow(&s.g2, p)
	sw := grow(&s.sw, p)
	parallel.ForGrain(p, parallel.DefaultGrain, func(j int) {
		g1[j], g2[j] = s.base.Base(h[j].Item)
		sw[j] = s.base.SignWord(g1[j], g2[j])
	})
	parallel.ForGrain(s.d, 1, func(i int) {
		row := s.rows[i]
		for j, en := range h {
			row[s.base.Row(g1[j], g2[j], i)] += signFromWord(sw[j], i) * en.Freq
		}
	})
}

func (s *Sketch) processLegacy(h []hist.Entry) {
	p := len(h)
	parallel.ForGrain(s.d, 1, func(i int) {
		row := s.rows[i]
		if p < 2048 {
			for _, en := range h {
				row[s.cols[i].HashAliased(en.Item)] += s.legacySign(i, en.Item) * en.Freq
			}
			return
		}
		colKeys := make([]uint32, p)
		idx := make([]int32, p)
		parallel.ForGrain(p, parallel.DefaultGrain, func(j int) {
			colKeys[j] = uint32(s.cols[i].HashAliased(h[j].Item))
			idx[j] = int32(j)
		})
		parallel.RadixSortPairs(colKeys, idx, uint32(s.w))
		starts := parallel.PackIndices(p, func(j int) bool {
			return j == 0 || colKeys[j] != colKeys[j-1]
		})
		parallel.ForGrain(len(starts), 8, func(b int) {
			lo := starts[b]
			hi := p
			if b+1 < len(starts) {
				hi = starts[b+1]
			}
			var total int64
			for j := lo; j < hi; j++ {
				en := h[idx[j]]
				total += s.legacySign(i, en.Item) * en.Freq
			}
			row[colKeys[lo]] += total
		})
	})
}

// Query returns the median-of-rows point estimate for item. It is
// unbiased; |Query(e) - f_e| <= ε·‖f‖₂ with probability >= 1-δ.
func (s *Sketch) Query(item uint64) int64 {
	ests := make([]int64, s.d)
	if s.scheme == SchemeDerived {
		g1, g2 := s.base.Base(item)
		sw := s.base.SignWord(g1, g2)
		for i := 0; i < s.d; i++ {
			ests[i] = signFromWord(sw, i) * s.rows[i][s.base.Row(g1, g2, i)]
		}
	} else {
		for i := 0; i < s.d; i++ {
			ests[i] = s.legacySign(i, item) * s.rows[i][s.cols[i].HashAliased(item)]
		}
	}
	sort.Slice(ests, func(a, b int) bool { return ests[a] < ests[b] })
	mid := s.d / 2
	if s.d%2 == 1 {
		return ests[mid]
	}
	return (ests[mid-1] + ests[mid]) / 2
}

// SpaceWords estimates the footprint in 64-bit words.
func (s *Sketch) SpaceWords() int { return s.d*s.w + 5*s.d + 4 }
