package countsketch

import (
	"fmt"

	"repro/internal/parallel"
)

// Merge folds another sketch into s cell-wise. Count-sketch is a linear
// sketch: with identical dimensions and hash/sign functions, the cell
// sums of two sketches form the sketch of the concatenated streams, so
// the merged estimate keeps the ±ε‖f‖₂ guarantee for the combined
// frequency vector (and ‖f_A + f_B‖₂ <= ‖f_A‖₂ + ‖f_B‖₂ bounds the
// merged error by the sum of the parts). Mismatched dimensions or hash
// seeds are rejected.
func (s *Sketch) Merge(o *Sketch) error {
	if s.d != o.d || s.w != o.w {
		return fmt.Errorf("countsketch: merge dimension mismatch (%dx%d vs %dx%d)", s.d, s.w, o.d, o.w)
	}
	if s.hashSeed != o.hashSeed {
		return fmt.Errorf("countsketch: merge hash seed mismatch (%d vs %d)", s.hashSeed, o.hashSeed)
	}
	if s.scheme != o.scheme {
		return fmt.Errorf("countsketch: merge hash scheme mismatch (%d vs %d)", s.scheme, o.scheme)
	}
	parallel.ForGrain(s.d, 1, func(i int) {
		row, orow := s.rows[i], o.rows[i]
		for j := range row {
			row[j] += orow[j]
		}
	})
	s.m += o.m
	return nil
}

// Clone returns a deep copy of the sketch.
func (s *Sketch) Clone() *Sketch {
	c := NewWithDimsScheme(s.d, s.w, s.hashSeed, s.scheme)
	c.m = s.m
	c.seed = s.seed
	for i := range s.rows {
		copy(c.rows[i], s.rows[i])
	}
	return c
}
