package hashfn

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulMod61MatchesBigInt(t *testing.T) {
	p := big.NewInt(MersennePrime61)
	check := func(a, b uint64) bool {
		a %= MersennePrime61
		b %= MersennePrime61
		got := mulMod61(a, b)
		want := new(big.Int).Mul(big.NewInt(int64(a)), big.NewInt(int64(b)))
		want.Mod(want, p)
		return got == want.Uint64()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	// Edge cases.
	for _, pair := range [][2]uint64{
		{0, 0}, {1, 1}, {MersennePrime61 - 1, MersennePrime61 - 1},
		{MersennePrime61 - 1, 2}, {1 << 60, 1 << 60},
	} {
		if !check(pair[0], pair[1]) {
			t.Fatalf("mulMod61(%d,%d) wrong", pair[0], pair[1])
		}
	}
}

func TestAddMod61(t *testing.T) {
	if got := addMod61(MersennePrime61-1, 1); got != 0 {
		t.Fatalf("addMod61 wrap = %d", got)
	}
	if got := addMod61(5, 7); got != 12 {
		t.Fatalf("addMod61(5,7) = %d", got)
	}
}

func TestPolyRange(t *testing.T) {
	h := NewPoly(4, 1000, 42)
	for x := uint64(0); x < 100000; x += 37 {
		if v := h.Hash(x); v >= 1000 {
			t.Fatalf("Hash(%d) = %d out of range", x, v)
		}
	}
	if h.K() != 4 || h.Range() != 1000 {
		t.Fatalf("K=%d Range=%d", h.K(), h.Range())
	}
}

func TestPolyDeterministic(t *testing.T) {
	h1 := NewPoly(8, 1<<20, 7)
	h2 := NewPoly(8, 1<<20, 7)
	for x := uint64(0); x < 1000; x++ {
		if h1.Hash(x) != h2.Hash(x) {
			t.Fatal("same seed produced different hash functions")
		}
	}
	h3 := NewPoly(8, 1<<20, 8)
	diff := 0
	for x := uint64(0); x < 1000; x++ {
		if h1.Hash(x) != h3.Hash(x) {
			diff++
		}
	}
	if diff < 900 {
		t.Fatalf("different seeds nearly identical: only %d/1000 differ", diff)
	}
}

func TestPolyUniformity(t *testing.T) {
	// Chi-squared style sanity check: bucket counts should be near uniform
	// for random inputs.
	const buckets = 64
	const samples = 64 * 1024
	h := NewPoly(5, buckets, 99)
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, buckets)
	for i := 0; i < samples; i++ {
		counts[h.Hash(rng.Uint64())]++
	}
	mean := samples / buckets
	for b, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Fatalf("bucket %d count %d far from mean %d", b, c, mean)
		}
	}
}

func TestPolyPanics(t *testing.T) {
	mustPanic(t, func() { NewPoly(0, 10, 1) })
	mustPanic(t, func() { NewPoly(2, 0, 1) })
}

func TestPairwiseRangeAndDeterminism(t *testing.T) {
	h := NewPairwise(977, 5)
	h2 := NewPairwise(977, 5)
	for x := uint64(0); x < 50000; x += 11 {
		v := h.Hash(x)
		if v >= 977 {
			t.Fatalf("Hash(%d)=%d out of range", x, v)
		}
		if v != h2.Hash(x) {
			t.Fatal("same seed, different pairwise hash")
		}
	}
	if h.Range() != 977 {
		t.Fatalf("Range = %d", h.Range())
	}
}

func TestPairwiseCollisionRate(t *testing.T) {
	// For a pairwise-independent family, Pr[h(x)=h(y)] <= 1/r. Estimate the
	// collision rate over many draws and random pairs.
	const r = 1 << 10
	rng := rand.New(rand.NewSource(17))
	collisions, trials := 0, 20000
	for i := 0; i < trials; i++ {
		h := NewPairwise(r, int64(i))
		x, y := rng.Uint64(), rng.Uint64()
		if x == y {
			continue
		}
		if h.Hash(x) == h.Hash(y) {
			collisions++
		}
	}
	// Expected ~ trials/r ~= 19.5. Allow generous slack.
	if collisions > trials/int(r)*5+20 {
		t.Fatalf("collision rate too high: %d/%d", collisions, trials)
	}
}

func TestMix64(t *testing.T) {
	seen := make(map[uint64]bool)
	for x := uint64(0); x < 10000; x++ {
		v := Mix64(x)
		if seen[v] {
			t.Fatalf("Mix64 collision at %d", x)
		}
		seen[v] = true
	}
	if Mix64(0) == 0 && Mix64(1) == 1 {
		t.Fatal("Mix64 looks like identity")
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
