package hashfn

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulMod61MatchesBigInt(t *testing.T) {
	p := big.NewInt(MersennePrime61)
	check := func(a, b uint64) bool {
		a %= MersennePrime61
		b %= MersennePrime61
		got := mulMod61(a, b)
		want := new(big.Int).Mul(big.NewInt(int64(a)), big.NewInt(int64(b)))
		want.Mod(want, p)
		return got == want.Uint64()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	// Edge cases.
	for _, pair := range [][2]uint64{
		{0, 0}, {1, 1}, {MersennePrime61 - 1, MersennePrime61 - 1},
		{MersennePrime61 - 1, 2}, {1 << 60, 1 << 60},
	} {
		if !check(pair[0], pair[1]) {
			t.Fatalf("mulMod61(%d,%d) wrong", pair[0], pair[1])
		}
	}
}

func TestAddMod61(t *testing.T) {
	if got := addMod61(MersennePrime61-1, 1); got != 0 {
		t.Fatalf("addMod61 wrap = %d", got)
	}
	if got := addMod61(5, 7); got != 12 {
		t.Fatalf("addMod61(5,7) = %d", got)
	}
}

func TestPolyRange(t *testing.T) {
	h := NewPoly(4, 1000, 42)
	for x := uint64(0); x < 100000; x += 37 {
		if v := h.Hash(x); v >= 1000 {
			t.Fatalf("Hash(%d) = %d out of range", x, v)
		}
	}
	if h.K() != 4 || h.Range() != 1000 {
		t.Fatalf("K=%d Range=%d", h.K(), h.Range())
	}
}

func TestPolyDeterministic(t *testing.T) {
	h1 := NewPoly(8, 1<<20, 7)
	h2 := NewPoly(8, 1<<20, 7)
	for x := uint64(0); x < 1000; x++ {
		if h1.Hash(x) != h2.Hash(x) {
			t.Fatal("same seed produced different hash functions")
		}
	}
	h3 := NewPoly(8, 1<<20, 8)
	diff := 0
	for x := uint64(0); x < 1000; x++ {
		if h1.Hash(x) != h3.Hash(x) {
			diff++
		}
	}
	if diff < 900 {
		t.Fatalf("different seeds nearly identical: only %d/1000 differ", diff)
	}
}

func TestPolyUniformity(t *testing.T) {
	// Chi-squared style sanity check: bucket counts should be near uniform
	// for random inputs.
	const buckets = 64
	const samples = 64 * 1024
	h := NewPoly(5, buckets, 99)
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, buckets)
	for i := 0; i < samples; i++ {
		counts[h.Hash(rng.Uint64())]++
	}
	mean := samples / buckets
	for b, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Fatalf("bucket %d count %d far from mean %d", b, c, mean)
		}
	}
}

func TestPolyPanics(t *testing.T) {
	mustPanic(t, func() { NewPoly(0, 10, 1) })
	mustPanic(t, func() { NewPoly(2, 0, 1) })
}

func TestPairwiseRangeAndDeterminism(t *testing.T) {
	h := NewPairwise(977, 5)
	h2 := NewPairwise(977, 5)
	for x := uint64(0); x < 50000; x += 11 {
		v := h.Hash(x)
		if v >= 977 {
			t.Fatalf("Hash(%d)=%d out of range", x, v)
		}
		if v != h2.Hash(x) {
			t.Fatal("same seed, different pairwise hash")
		}
	}
	if h.Range() != 977 {
		t.Fatalf("Range = %d", h.Range())
	}
}

func TestPairwiseCollisionRate(t *testing.T) {
	// For a pairwise-independent family, Pr[h(x)=h(y)] <= 1/r. Estimate the
	// collision rate over many draws and random pairs.
	const r = 1 << 10
	rng := rand.New(rand.NewSource(17))
	collisions, trials := 0, 20000
	for i := 0; i < trials; i++ {
		h := NewPairwise(r, int64(i))
		x, y := rng.Uint64(), rng.Uint64()
		if x == y {
			continue
		}
		if h.Hash(x) == h.Hash(y) {
			collisions++
		}
	}
	// Expected ~ trials/r ~= 19.5. Allow generous slack.
	if collisions > trials/int(r)*5+20 {
		t.Fatalf("collision rate too high: %d/%d", collisions, trials)
	}
}

// TestMersenneAliasingFixed is the regression test for the hash-domain
// aliasing bug: before the Mix64 pre-mixing, x and x+(2^61-1) were
// folded to the same field element and therefore collided in *every*
// function of the Poly and Pairwise families — a cross-row correlation
// the sketch error analyses assume cannot happen. After the fix the two
// keys must land in different cells in at least one of a handful of
// independently drawn rows.
func TestMersenneAliasingFixed(t *testing.T) {
	const rows = 8
	keys := []uint64{0, 1, 12345, 1 << 40, MersennePrime61 - 1}
	check := func(name string, hash func(row int, x uint64) uint64) {
		for _, x := range keys {
			y := x + MersennePrime61 // aliased mod 2^61-1 before the fix
			separated := false
			for i := 0; i < rows && !separated; i++ {
				separated = hash(i, x) != hash(i, y)
			}
			if !separated {
				t.Errorf("%s: %d and %d collide in all %d rows (Mersenne aliasing)", name, x, y, rows)
			}
		}
	}
	polys := make([]*Poly, rows)
	pairs := make([]Pairwise, rows)
	st := uint64(41)
	for i := range polys {
		polys[i] = NewPoly(4, 1<<16, int64(SplitMix64(&st)))
		pairs[i] = NewPairwise(1<<16, int64(SplitMix64(&st)))
	}
	check("Poly", func(i int, x uint64) uint64 { return polys[i].Hash(x) })
	check("Pairwise", func(i int, x uint64) uint64 { return pairs[i].Hash(x) })
	d := NewDerived(1<<16, 97)
	check("Derived", func(i int, x uint64) uint64 { return d.Hash(x, i) })

	// And the bug-compatible legacy evaluation must still alias: that is
	// the behavior scheme-0 checkpoint restores depend on.
	h := pairs[0]
	for _, x := range keys {
		if h.HashAliased(x) != h.HashAliased(x+MersennePrime61) {
			t.Errorf("HashAliased(%d) no longer aliases x+p — legacy restores would break", x)
		}
	}
}

func TestDerivedRangeAndDeterminism(t *testing.T) {
	d := NewDerived(977, 5)
	d2 := NewDerived(977, 5)
	for x := uint64(0); x < 20000; x += 7 {
		g1, g2 := d.Base(x)
		for i := 0; i < 6; i++ {
			v := d.Row(g1, g2, i)
			if v >= 977 {
				t.Fatalf("Row(%d, row %d) = %d out of range", x, i, v)
			}
			if v != d2.Hash(x, i) {
				t.Fatal("same seed, different derived hash")
			}
		}
	}
	if d.Range() != 977 {
		t.Fatalf("Range = %d", d.Range())
	}
	d3 := NewDerived(977, 6)
	diff := 0
	for x := uint64(0); x < 1000; x++ {
		if d.Hash(x, 0) != d3.Hash(x, 0) {
			diff++
		}
	}
	if diff < 900 {
		t.Fatalf("adjacent seeds nearly identical: only %d/1000 differ", diff)
	}
}

// TestDerivedCrossRowIndependence checks that collisions between two
// keys are independent across derived rows: the per-row collision rate
// should be about 1/w, and with w >> 1 no random pair should collide in
// every row (the failure mode both the aliasing bug and correlated row
// seeds produce).
func TestDerivedCrossRowIndependence(t *testing.T) {
	const (
		w      = 1 << 10
		rows   = 6
		trials = 20000
	)
	d := NewDerived(w, 23)
	rng := rand.New(rand.NewSource(29))
	rowCollisions := 0
	for i := 0; i < trials; i++ {
		x, y := rng.Uint64(), rng.Uint64()
		if x == y {
			continue
		}
		xg1, xg2 := d.Base(x)
		yg1, yg2 := d.Base(y)
		all := true
		for r := 0; r < rows; r++ {
			if d.Row(xg1, xg2, r) == d.Row(yg1, yg2, r) {
				rowCollisions++
			} else {
				all = false
			}
		}
		if all {
			t.Fatalf("pair (%d, %d) collides in all %d rows", x, y, rows)
		}
	}
	// Expected rowCollisions ~ trials*rows/w ~= 117; generous slack.
	if expect := trials * rows / w; rowCollisions > 5*expect+20 {
		t.Fatalf("per-row collision rate too high: %d collisions, expected ~%d", rowCollisions, expect)
	}
}

func TestDerivedSignWordBalance(t *testing.T) {
	d := NewDerived(1<<10, 11)
	const samples = 1 << 14
	ones := 0
	for x := uint64(0); x < samples; x++ {
		g1, g2 := d.Base(x)
		if d.SignWord(g1, g2)&1 == 1 {
			ones++
		}
	}
	if ones < samples*45/100 || ones > samples*55/100 {
		t.Fatalf("sign bit 0 unbalanced: %d/%d ones", ones, samples)
	}
}

func TestDerivedPanics(t *testing.T) {
	mustPanic(t, func() { NewDerived(0, 1) })
}

func TestSplitMix64(t *testing.T) {
	st := uint64(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		v := SplitMix64(&st)
		if seen[v] {
			t.Fatalf("SplitMix64 repeated a value after %d draws", i)
		}
		seen[v] = true
	}
	// Restarting from the same state must reproduce the sequence.
	a, b := uint64(77), uint64(77)
	for i := 0; i < 100; i++ {
		if SplitMix64(&a) != SplitMix64(&b) {
			t.Fatal("SplitMix64 not deterministic")
		}
	}
}

func TestMix64(t *testing.T) {
	seen := make(map[uint64]bool)
	for x := uint64(0); x < 10000; x++ {
		v := Mix64(x)
		if seen[v] {
			t.Fatalf("Mix64 collision at %d", x)
		}
		seen[v] = true
	}
	if Mix64(0) == 0 && Mix64(1) == 1 {
		t.Fatal("Mix64 looks like identity")
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
