// Package hashfn implements the hash families the paper's algorithms rely
// on: k-wise independent polynomial hashing over the Mersenne prime field
// GF(2^61 - 1) (Theorem 2.3 asks for an O(log mu)-wise independent family
// for the linear-work histogram), and the pairwise-independent family used
// by the count-min sketch (Section 6).
package hashfn

import (
	"math/bits"
	"math/rand"
)

// MersennePrime61 is 2^61 - 1, a Mersenne prime enabling fast modular
// reduction without division.
const MersennePrime61 = (1 << 61) - 1

// mulMod61 returns a*b mod 2^61-1 using 128-bit intermediate arithmetic.
// With p = 2^61-1, 2^61 === 1 (mod p), so the 122-bit product folds into
// two 61-bit chunks that are added mod p. A single fold suffices because
// both chunks are < 2^61 and their sum is < 2^62 < 2p + p.
func mulMod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	res := (lo & MersennePrime61) + (hi<<3 | lo>>61)
	if res >= MersennePrime61 {
		res -= MersennePrime61
	}
	if res >= MersennePrime61 { // the fold sum can reach 2p exactly
		res -= MersennePrime61
	}
	return res
}

// addMod61 returns a+b mod 2^61-1 for a, b < 2^61-1.
func addMod61(a, b uint64) uint64 {
	s := a + b
	if s >= MersennePrime61 {
		s -= MersennePrime61
	}
	return s
}

// Poly is a degree-(k-1) polynomial hash over GF(2^61-1), giving a k-wise
// independent family. Hash values are reduced to a caller-chosen range.
type Poly struct {
	coef []uint64 // coefficients, all < MersennePrime61; len(coef) == k
	r    uint64   // output range
}

// NewPoly draws a hash function from the k-wise independent polynomial
// family with output range [0, r) using the given seed. k must be >= 1 and
// r >= 1.
func NewPoly(k int, r uint64, seed int64) *Poly {
	if k < 1 {
		panic("hashfn: NewPoly requires k >= 1")
	}
	if r < 1 {
		panic("hashfn: NewPoly requires r >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	coef := make([]uint64, k)
	for i := range coef {
		coef[i] = uint64(rng.Int63()) % MersennePrime61
	}
	// The leading coefficient should be non-zero so the polynomial has full
	// degree; this only improves the family and keeps hashes non-constant.
	if k > 1 && coef[k-1] == 0 {
		coef[k-1] = 1
	}
	return &Poly{coef: coef, r: r}
}

// Hash returns the hash of x in [0, Range()). Horner evaluation, O(k).
func (p *Poly) Hash(x uint64) uint64 {
	x %= MersennePrime61
	acc := p.coef[len(p.coef)-1]
	for i := len(p.coef) - 2; i >= 0; i-- {
		acc = addMod61(mulMod61(acc, x), p.coef[i])
	}
	return acc % p.r
}

// Range returns the size of the hash output range.
func (p *Poly) Range() uint64 { return p.r }

// K returns the independence of the family the function was drawn from.
func (p *Poly) K() int { return len(p.coef) }

// Pairwise is a pairwise-independent hash h(x) = ((a*x + b) mod p) mod r,
// the family count-min sketch uses per row.
type Pairwise struct {
	a, b uint64
	r    uint64
}

// NewPairwise draws a pairwise-independent hash with output range [0, r).
func NewPairwise(r uint64, seed int64) Pairwise {
	rng := rand.New(rand.NewSource(seed))
	a := uint64(rng.Int63())%(MersennePrime61-1) + 1 // a != 0
	b := uint64(rng.Int63()) % MersennePrime61
	return Pairwise{a: a, b: b, r: r}
}

// Hash returns the hash of x in [0, Range()).
func (h Pairwise) Hash(x uint64) uint64 {
	return addMod61(mulMod61(h.a, x%MersennePrime61), h.b) % h.r
}

// Range returns the size of the hash output range.
func (h Pairwise) Range() uint64 { return h.r }

// Mix64 is a fast non-cryptographic bit mixer (splitmix64 finalizer) used
// to decorrelate adversarially regular item identifiers before bucketing.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
