// Package hashfn implements the hash families the paper's algorithms rely
// on: k-wise independent polynomial hashing over the Mersenne prime field
// GF(2^61 - 1) (Theorem 2.3 asks for an O(log mu)-wise independent family
// for the linear-work histogram), and the pairwise-independent family used
// by the count-min sketch (Section 6).
package hashfn

import (
	"math/bits"
	"math/rand"
)

// MersennePrime61 is 2^61 - 1, a Mersenne prime enabling fast modular
// reduction without division.
const MersennePrime61 = (1 << 61) - 1

// mulMod61 returns a*b mod 2^61-1 using 128-bit intermediate arithmetic.
// With p = 2^61-1, 2^61 === 1 (mod p), so the 122-bit product folds into
// two 61-bit chunks that are added mod p. A single fold suffices because
// both chunks are < 2^61 and their sum is < 2^62 < 2p + p.
func mulMod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	res := (lo & MersennePrime61) + (hi<<3 | lo>>61)
	if res >= MersennePrime61 {
		res -= MersennePrime61
	}
	if res >= MersennePrime61 { // the fold sum can reach 2p exactly
		res -= MersennePrime61
	}
	return res
}

// addMod61 returns a+b mod 2^61-1 for a, b < 2^61-1.
func addMod61(a, b uint64) uint64 {
	s := a + b
	if s >= MersennePrime61 {
		s -= MersennePrime61
	}
	return s
}

// Poly is a degree-(k-1) polynomial hash over GF(2^61-1), giving a k-wise
// independent family. Hash values are reduced to a caller-chosen range.
type Poly struct {
	coef []uint64 // coefficients, all < MersennePrime61; len(coef) == k
	r    uint64   // output range
}

// NewPoly draws a hash function from the k-wise independent polynomial
// family with output range [0, r) using the given seed. k must be >= 1 and
// r >= 1.
func NewPoly(k int, r uint64, seed int64) *Poly {
	if k < 1 {
		panic("hashfn: NewPoly requires k >= 1")
	}
	if r < 1 {
		panic("hashfn: NewPoly requires r >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	coef := make([]uint64, k)
	for i := range coef {
		coef[i] = uint64(rng.Int63()) % MersennePrime61
	}
	// The leading coefficient should be non-zero so the polynomial has full
	// degree; this only improves the family and keeps hashes non-constant.
	if k > 1 && coef[k-1] == 0 {
		coef[k-1] = 1
	}
	return &Poly{coef: coef, r: r}
}

// Hash returns the hash of x in [0, Range()). Horner evaluation, O(k).
//
// The key is pre-mixed with Mix64 before the field reduction: folding the
// raw key mod 2^61-1 would alias x and x+(2^61-1) deterministically in
// every function drawn from the family, a cross-input correlation the
// independence analysis assumes away. After mixing, keys that collide mod
// the prime share no structure with each other.
func (p *Poly) Hash(x uint64) uint64 {
	x = Mix64(x) % MersennePrime61
	acc := p.coef[len(p.coef)-1]
	for i := len(p.coef) - 2; i >= 0; i-- {
		acc = addMod61(mulMod61(acc, x), p.coef[i])
	}
	return acc % p.r
}

// Range returns the size of the hash output range.
func (p *Poly) Range() uint64 { return p.r }

// K returns the independence of the family the function was drawn from.
func (p *Poly) K() int { return len(p.coef) }

// Pairwise is a pairwise-independent hash h(x) = ((a*x + b) mod p) mod r,
// the family count-min sketch uses per row.
type Pairwise struct {
	a, b uint64
	r    uint64
}

// NewPairwise draws a pairwise-independent hash with output range [0, r).
func NewPairwise(r uint64, seed int64) Pairwise {
	rng := rand.New(rand.NewSource(seed))
	a := uint64(rng.Int63())%(MersennePrime61-1) + 1 // a != 0
	b := uint64(rng.Int63()) % MersennePrime61
	return Pairwise{a: a, b: b, r: r}
}

// Hash returns the hash of x in [0, Range()). As with Poly.Hash, the key
// is pre-mixed with Mix64 so the full 64-bit domain injects into the
// field without the deterministic x vs x+(2^61-1) aliasing the bare
// mod-p folding produced.
func (h Pairwise) Hash(x uint64) uint64 {
	return addMod61(mulMod61(h.a, Mix64(x)%MersennePrime61), h.b) % h.r
}

// HashAliased is the pre-fix evaluation: the raw key folded mod 2^61-1
// before hashing, which collapses x and x+(2^61-1) in every function of
// the family. It exists only so sketches restored from checkpoints
// written before the fix keep addressing the cells they were built with;
// new code must use Hash.
func (h Pairwise) HashAliased(x uint64) uint64 {
	return addMod61(mulMod61(h.a, x%MersennePrime61), h.b) % h.r
}

// Range returns the size of the hash output range.
func (h Pairwise) Range() uint64 { return h.r }

// Mix64 is a fast non-cryptographic bit mixer (splitmix64 finalizer) used
// to decorrelate adversarially regular item identifiers before bucketing.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SplitMix64 advances a splitmix64 state and returns the next value of
// the sequence — the recommended way to derive any number of independent
// sub-seeds from one base seed. Unlike feeding seed, seed+1, seed+2 ...
// to an LCG, consecutive outputs share no affine structure.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	return Mix64(*state)
}

// Derived is the Kirsch–Mitzenmacher derived-row family used by the
// multi-row sketches: one base hash per key yields a pair (g1, g2), and
// row i addresses column (g1 + i*g2) reduced to [0, w). Evaluating d
// rows therefore costs one hash plus d multiply-adds instead of d
// modular polynomial evaluations, and the count-min/count-sketch error
// bounds are preserved asymptotically [KM08]. The base hash covers the
// full 64-bit key domain (no Mersenne folding), so the aliasing bug
// fixed in Poly/Pairwise cannot occur here by construction.
type Derived struct {
	s1, s2 uint64
	w      uint64
}

// NewDerived draws a derived-row family with output range [0, w). The
// per-function salts come from splitmixing the seed, so families drawn
// from adjacent seeds (per-level dyadic stacks, per-shard instances) are
// decorrelated.
func NewDerived(w uint64, seed int64) Derived {
	if w < 1 {
		panic("hashfn: NewDerived requires w >= 1")
	}
	st := uint64(seed)
	s1 := SplitMix64(&st)
	s2 := SplitMix64(&st)
	return Derived{s1: s1, s2: s2, w: w}
}

// Base computes the per-key base hash pair. g2 is forced odd so the row
// stride g2 is a unit mod 2^64 and distinct rows cannot share a column
// sequence. Callers on the batch path compute Base once per item and
// reuse it across all rows.
func (d Derived) Base(x uint64) (g1, g2 uint64) {
	g1 = Mix64(x ^ d.s1)
	g2 = Mix64(g1^d.s2) | 1
	return g1, g2
}

// Row derives row i's column from the base pair: (g1 + i*g2) mapped to
// [0, w) by the multiply-shift range reduction (Lemire), which replaces
// the modulo division with one widening multiply.
func (d Derived) Row(g1, g2 uint64, i int) uint64 {
	hi, _ := bits.Mul64(g1+uint64(i)*g2, d.w)
	return hi
}

// SignWord derives 64 per-row ±1 sign bits from the base pair through an
// extra mix, decorrelating signs from the column sequence; bit (i mod
// 64) drives row i's sign. Count-sketch uses it for the unbiased
// estimator.
func (d Derived) SignWord(g1, g2 uint64) uint64 {
	return Mix64(g1 ^ bits.RotateLeft64(g2, 31) ^ d.s2)
}

// Hash returns row i's column for key x — the convenience form; hot
// paths use Base once and Row per row.
func (d Derived) Hash(x uint64, i int) uint64 {
	g1, g2 := d.Base(x)
	return d.Row(g1, g2, i)
}

// Range returns the size of the hash output range.
func (d Derived) Range() uint64 { return d.w }
