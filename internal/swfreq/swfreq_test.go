package swfreq

import (
	"math/rand"
	"testing"

	"repro/internal/css"
)

// slidingRef tracks exact frequencies over the last n items.
type slidingRef struct {
	n     int64
	items []uint64
}

func newSlidingRef(n int64) *slidingRef { return &slidingRef{n: n} }

func (r *slidingRef) add(items []uint64) { r.items = append(r.items, items...) }

func (r *slidingRef) freqs() map[uint64]int64 {
	start := int64(len(r.items)) - r.n
	if start < 0 {
		start = 0
	}
	f := make(map[uint64]int64)
	for _, it := range r.items[start:] {
		f[it]++
	}
	return f
}

var allVariants = []Variant{Basic, SpaceEfficient, WorkEfficient}

func checkWindowGuarantee(t *testing.T, e *Estimator, ref *slidingRef) {
	t.Helper()
	f := ref.freqs()
	bound := e.Epsilon() * float64(e.N())
	for it, fe := range f {
		est := e.Estimate(it)
		if est > fe {
			t.Fatalf("%v: item %d overestimated: %d > %d", e.VariantKind(), it, est, fe)
		}
		if float64(fe-est) > bound+1e-9 {
			t.Fatalf("%v: item %d underestimated: est %d, true %d, bound εn=%g",
				e.VariantKind(), it, est, fe, bound)
		}
	}
	// Items absent from the window must estimate within the same bound
	// (their true frequency is 0, so only est <= f_e matters: est must be 0
	// ... up to counters whose stale content hasn't slid out; the guarantee
	// est <= f_e + 0 means est must be 0 for absent items).
	for _, probe := range []uint64{1 << 60, 1<<60 + 1} {
		if _, live := f[probe]; !live {
			if est := e.Estimate(probe); est != 0 {
				t.Fatalf("%v: absent item estimated %d", e.VariantKind(), est)
			}
		}
	}
}

func TestGuaranteeUniformAllVariants(t *testing.T) {
	for _, v := range allVariants {
		n := int64(2048)
		eps := 0.05
		e := New(n, eps, v)
		ref := newSlidingRef(n)
		rng := rand.New(rand.NewSource(int64(v) + 1))
		for batch := 0; batch < 40; batch++ {
			items := make([]uint64, rng.Intn(400)+1)
			for i := range items {
				items[i] = uint64(rng.Intn(100))
			}
			e.ProcessBatch(items)
			ref.add(items)
			checkWindowGuarantee(t, e, ref)
		}
	}
}

func TestGuaranteeZipfAllVariants(t *testing.T) {
	for _, v := range allVariants {
		n := int64(4096)
		eps := 0.02
		e := New(n, eps, v)
		ref := newSlidingRef(n)
		rng := rand.New(rand.NewSource(int64(v) * 7))
		zipf := rand.NewZipf(rng, 1.2, 1, 1<<14)
		for batch := 0; batch < 25; batch++ {
			items := make([]uint64, 512)
			for i := range items {
				items[i] = zipf.Uint64()
			}
			e.ProcessBatch(items)
			ref.add(items)
		}
		checkWindowGuarantee(t, e, ref)
	}
}

func TestItemsSlideOut(t *testing.T) {
	for _, v := range allVariants {
		n := int64(100)
		e := New(n, 0.5, v)
		heavy := make([]uint64, 100)
		for i := range heavy {
			heavy[i] = 7
		}
		e.ProcessBatch(heavy)
		if est := e.Estimate(7); est < 50 {
			t.Fatalf("%v: heavy item est %d < 50 right after burst", v, est)
		}
		// Slide the burst fully out with two window-lengths of other items.
		for k := 0; k < 4; k++ {
			other := make([]uint64, 50)
			for i := range other {
				other[i] = uint64(1000 + k*50 + i)
			}
			e.ProcessBatch(other)
		}
		if est := e.Estimate(7); est != 0 {
			t.Fatalf("%v: slid-out item still estimates %d", v, est)
		}
	}
}

func TestBatchLargerThanWindowResets(t *testing.T) {
	for _, v := range allVariants {
		n := int64(64)
		e := New(n, 0.25, v)
		// Pre-load junk.
		junk := make([]uint64, 30)
		for i := range junk {
			junk[i] = 5
		}
		e.ProcessBatch(junk)
		// One huge batch: only its last n items matter.
		big := make([]uint64, 500)
		for i := range big {
			if i >= 500-int(n) {
				big[i] = 9
			} else {
				big[i] = 5
			}
		}
		e.ProcessBatch(big)
		ref := newSlidingRef(n)
		ref.add(junk)
		ref.add(big)
		checkWindowGuarantee(t, e, ref)
		if est := e.Estimate(9); float64(est) < float64(n)-0.25*float64(n) {
			t.Fatalf("%v: after reset, est(9) = %d want >= %g", v, est, 0.75*float64(n))
		}
	}
}

func TestSpaceBoundSpaceEfficientVariants(t *testing.T) {
	// Space-efficient and work-efficient must keep O(1/ε) counters even
	// under an all-distinct stream; basic is allowed to grow.
	for _, v := range []Variant{SpaceEfficient, WorkEfficient} {
		n := int64(1 << 14)
		eps := 0.01
		e := New(n, eps, v)
		next := uint64(0)
		for batch := 0; batch < 20; batch++ {
			items := make([]uint64, 1024)
			for i := range items {
				items[i] = next // all distinct forever
				next++
			}
			e.ProcessBatch(items)
			if nc := e.NumCounters(); nc > int(8/eps)+2 {
				t.Fatalf("%v: %d counters exceed S=%d", v, nc, int(8/eps)+1)
			}
		}
	}
}

func TestBasicGrowsButTracksExactly(t *testing.T) {
	n := int64(256)
	e := New(n, 0.1, Basic)
	ref := newSlidingRef(n)
	rng := rand.New(rand.NewSource(13))
	for batch := 0; batch < 30; batch++ {
		items := make([]uint64, 64)
		for i := range items {
			items[i] = uint64(rng.Intn(1000)) // many distinct
		}
		e.ProcessBatch(items)
		ref.add(items)
	}
	checkWindowGuarantee(t, e, ref)
}

func TestHeavyHittersSlidingWindow(t *testing.T) {
	for _, v := range allVariants {
		n := int64(2000)
		eps, phi := 0.05, 0.2
		e := New(n, eps, v)
		ref := newSlidingRef(n)
		rng := rand.New(rand.NewSource(int64(v)*3 + 11))
		for batch := 0; batch < 20; batch++ {
			items := make([]uint64, 250)
			for i := range items {
				if rng.Float64() < 0.4 {
					items[i] = 1 // persistent heavy hitter
				} else {
					items[i] = uint64(rng.Intn(100000)) + 100
				}
			}
			e.ProcessBatch(items)
			ref.add(items)
		}
		hh := e.HeavyHitters(phi)
		got := make(map[uint64]bool)
		for _, h := range hh {
			got[h] = true
		}
		f := ref.freqs()
		w := float64(e.WindowLen())
		for it, fe := range f {
			if float64(fe) >= phi*w && !got[it] {
				t.Fatalf("%v: missed heavy hitter %d (f=%d, φW=%g)", v, it, fe, phi*w)
			}
		}
		for h := range got {
			if float64(f[h]) < (phi-2*eps)*w {
				t.Fatalf("%v: false positive %d (f=%d)", v, h, f[h])
			}
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	for _, v := range allVariants {
		e := New(100, 0.1, v)
		e.ProcessBatch(nil)
		if e.StreamLen() != 0 || e.NumCounters() != 0 {
			t.Fatalf("%v: empty batch changed state", v)
		}
	}
}

func TestTinyWindow(t *testing.T) {
	for _, v := range allVariants {
		e := New(4, 0.5, v)
		ref := newSlidingRef(4)
		rng := rand.New(rand.NewSource(int64(v)))
		for batch := 0; batch < 50; batch++ {
			items := make([]uint64, rng.Intn(3)+1)
			for i := range items {
				items[i] = uint64(rng.Intn(3))
			}
			e.ProcessBatch(items)
			ref.add(items)
			checkWindowGuarantee(t, e, ref)
		}
	}
}

func TestSmallEpsilonTimesN(t *testing.T) {
	// εn < 16 triggers the exact-counter (γ=1) regime with pruning
	// disabled; estimates must be exact.
	for _, v := range []Variant{SpaceEfficient, WorkEfficient} {
		n := int64(100)
		eps := 0.05 // εn = 5
		e := New(n, eps, v)
		ref := newSlidingRef(n)
		rng := rand.New(rand.NewSource(99))
		for batch := 0; batch < 40; batch++ {
			items := make([]uint64, rng.Intn(30)+1)
			for i := range items {
				items[i] = uint64(rng.Intn(20))
			}
			e.ProcessBatch(items)
			ref.add(items)
			f := ref.freqs()
			for it, fe := range f {
				if est := e.Estimate(it); est != fe {
					t.Fatalf("%v: γ=1 regime not exact: item %d est %d true %d",
						v, it, est, fe)
				}
			}
		}
	}
}

func TestVariantString(t *testing.T) {
	if Basic.String() != "basic" || SpaceEfficient.String() != "space-efficient" ||
		WorkEfficient.String() != "work-efficient" || Variant(99).String() != "unknown" {
		t.Fatal("Variant.String wrong")
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 0.1, Basic) },
		func() { New(10, 0, Basic) },
		func() { New(10, 2, Basic) },
		func() { New(10, 0.1, Variant(42)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSiftMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		mu := rng.Intn(2000) + 1
		items := make([]uint64, mu)
		for i := range items {
			items[i] = uint64(rng.Intn(20))
		}
		// K = even items only.
		kIndex := make(map[uint64]int32)
		var kItems []uint64
		for v := uint64(0); v < 20; v += 2 {
			kIndex[v] = int32(len(kItems))
			kItems = append(kItems, v)
		}
		segs := sift(items, kIndex, len(kItems))
		for ki, item := range kItems {
			want := css.FromFunc(mu, func(j int) bool { return items[j] == item })
			got := segs[ki]
			if got.Len != want.Len || len(got.Ones) != len(want.Ones) {
				t.Fatalf("item %d: got %d ones want %d", item, len(got.Ones), len(want.Ones))
			}
			for j := range want.Ones {
				if got.Ones[j] != want.Ones[j] {
					t.Fatalf("item %d: ones[%d] = %d want %d", item, j, got.Ones[j], want.Ones[j])
				}
			}
			if !got.Valid() {
				t.Fatalf("item %d: invalid CSS", item)
			}
		}
	}
}

func TestAccessors(t *testing.T) {
	e := New(50, 0.2, WorkEfficient)
	if e.N() != 50 || e.Epsilon() != 0.2 || e.VariantKind() != WorkEfficient {
		t.Fatal("accessors wrong")
	}
	e.ProcessBatch([]uint64{1, 2, 3})
	if e.StreamLen() != 3 || e.WindowLen() != 3 {
		t.Fatalf("StreamLen=%d WindowLen=%d", e.StreamLen(), e.WindowLen())
	}
	e.ProcessBatch(make([]uint64, 100))
	if e.WindowLen() != 50 {
		t.Fatalf("WindowLen=%d want 50", e.WindowLen())
	}
	if e.SpaceWords() <= 0 {
		t.Fatal("SpaceWords <= 0")
	}
}
