package swfreq

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchBatches(nBatches, batchSize int, universe uint64) [][]uint64 {
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.1, 1, universe)
	out := make([][]uint64, nBatches)
	for b := range out {
		out[b] = make([]uint64, batchSize)
		for i := range out[b] {
			out[b][i] = zipf.Uint64()
		}
	}
	return out
}

func BenchmarkProcessBatch(b *testing.B) {
	bs := benchBatches(64, 1<<14, 1<<18)
	for _, v := range []Variant{Basic, SpaceEfficient, WorkEfficient} {
		b.Run(v.String(), func(b *testing.B) {
			e := New(1<<20, 1.0/128, v)
			b.SetBytes(1 << 14 * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.ProcessBatch(bs[i%len(bs)])
			}
		})
	}
}

func BenchmarkSift(b *testing.B) {
	for _, nK := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("K%d", nK), func(b *testing.B) {
			mu := 1 << 16
			rng := rand.New(rand.NewSource(int64(nK)))
			items := make([]uint64, mu)
			for i := range items {
				items[i] = rng.Uint64() % uint64(4*nK)
			}
			kIndex := make(map[uint64]int32, nK)
			for k := 0; k < nK; k++ {
				kIndex[uint64(k)] = int32(k)
			}
			b.SetBytes(int64(mu) * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = sift(items, kIndex, nK)
			}
		})
	}
}

func BenchmarkEstimate(b *testing.B) {
	e := New(1<<16, 0.01, WorkEfficient)
	bs := benchBatches(16, 1<<13, 1<<14)
	for _, batch := range bs {
		e.ProcessBatch(batch)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Estimate(uint64(i % 1000))
	}
}
