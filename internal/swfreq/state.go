package swfreq

import (
	"fmt"

	"repro/internal/sbbc"
)

// State is the serializable form of an Estimator.
type State struct {
	Variant  int
	N        int64
	Epsilon  float64
	T        int64
	Seed     int64
	Items    []uint64
	Counters []sbbc.State
}

// State captures the estimator for serialization.
func (e *Estimator) State() State {
	st := State{
		Variant: int(e.variant),
		N:       e.n,
		Epsilon: e.eps,
		T:       e.t,
		Seed:    e.seed,
	}
	for item, c := range e.ctr {
		st.Items = append(st.Items, item)
		st.Counters = append(st.Counters, c.State())
	}
	return st
}

// FromState reconstructs an estimator. Derived parameters (capS, gamma,
// adj) are recomputed from (n, epsilon, variant) by the constructor, so
// they always match what a fresh estimator would use.
func FromState(st State) (*Estimator, error) {
	v := Variant(st.Variant)
	if v != Basic && v != SpaceEfficient && v != WorkEfficient {
		return nil, fmt.Errorf("swfreq: state variant %d unknown", st.Variant)
	}
	if st.N < 1 || st.Epsilon <= 0 || st.Epsilon > 1 {
		return nil, fmt.Errorf("swfreq: bad state params n=%d eps=%v", st.N, st.Epsilon)
	}
	if len(st.Items) != len(st.Counters) {
		return nil, fmt.Errorf("swfreq: state items/counters length mismatch")
	}
	e := New(st.N, st.Epsilon, v)
	e.t = st.T
	e.seed = st.Seed
	for i, item := range st.Items {
		c, err := sbbc.FromState(st.Counters[i])
		if err != nil {
			return nil, err
		}
		if _, dup := e.ctr[item]; dup {
			return nil, fmt.Errorf("swfreq: state item %d duplicated", item)
		}
		e.ctr[item] = c
	}
	return e, nil
}
