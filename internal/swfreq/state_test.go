package swfreq

import (
	"math/rand"
	"testing"

	"repro/internal/sbbc"
)

func TestStateRoundTripInternal(t *testing.T) {
	for _, v := range allVariants {
		e := New(1024, 0.05, v)
		rng := rand.New(rand.NewSource(int64(v)))
		for batch := 0; batch < 10; batch++ {
			items := make([]uint64, 200)
			for i := range items {
				items[i] = uint64(rng.Intn(50))
			}
			e.ProcessBatch(items)
		}
		st := e.State()
		r, err := FromState(st)
		if err != nil {
			t.Fatal(err)
		}
		if r.StreamLen() != e.StreamLen() || r.NumCounters() != e.NumCounters() {
			t.Fatalf("%v: state round trip lost counters", v)
		}
		for it := uint64(0); it < 50; it++ {
			if r.Estimate(it) != e.Estimate(it) {
				t.Fatalf("%v: estimate diverged for %d", v, it)
			}
		}
	}
}

func TestFromStateRejectsBad(t *testing.T) {
	good := New(100, 0.1, Basic).State()
	cases := []State{
		{Variant: 99, N: good.N, Epsilon: good.Epsilon},
		{Variant: good.Variant, N: 0, Epsilon: good.Epsilon},
		{Variant: good.Variant, N: good.N, Epsilon: 0},
		{Variant: good.Variant, N: good.N, Epsilon: good.Epsilon,
			Items: []uint64{1}, Counters: nil}, // length mismatch
		{Variant: good.Variant, N: good.N, Epsilon: good.Epsilon,
			Items: []uint64{1, 1}, Counters: make([]sbbc.State, 2)}, // dup + invalid counter
	}
	for i, st := range cases {
		if _, err := FromState(st); err == nil {
			t.Fatalf("case %d: bad state accepted", i)
		}
	}
}
