package swfreq

import (
	"math/rand"
	"testing"
)

// TestChurnStress drives all variants through an adversarial schedule —
// alternating floods of one item, all-distinct washes, batch sizes from
// 1 to window-crossing — while continuously checking the window
// guarantee. This exercises counter creation/deletion churn, pruning
// with ties, decrement clamping, and the reset path together.
func TestChurnStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for _, v := range allVariants {
		n := int64(1000)
		eps := 0.1
		e := New(n, eps, v)
		ref := newSlidingRef(n)
		rng := rand.New(rand.NewSource(int64(v)*101 + 1))
		next := uint64(1 << 20)
		for step := 0; step < 400; step++ {
			var batch []uint64
			switch step % 5 {
			case 0: // flood of a single item
				batch = make([]uint64, rng.Intn(300)+1)
				hot := uint64(step % 7)
				for i := range batch {
					batch[i] = hot
				}
			case 1: // all distinct
				batch = make([]uint64, rng.Intn(300)+1)
				for i := range batch {
					batch[i] = next
					next++
				}
			case 2: // tiny batch
				batch = []uint64{uint64(rng.Intn(5))}
			case 3: // window-crossing batch
				batch = make([]uint64, int(n)+rng.Intn(500))
				for i := range batch {
					batch[i] = uint64(rng.Intn(20))
				}
			default: // mixed
				batch = make([]uint64, rng.Intn(200)+1)
				for i := range batch {
					if rng.Float64() < 0.5 {
						batch[i] = uint64(rng.Intn(10))
					} else {
						batch[i] = next
						next++
					}
				}
			}
			e.ProcessBatch(batch)
			ref.add(batch)
			if step%7 == 0 {
				checkWindowGuarantee(t, e, ref)
			}
		}
		checkWindowGuarantee(t, e, ref)
	}
}

// TestManyEpsilonWindowCombos sweeps the parameter grid, including the
// γ=1 exact regime boundaries, with a fixed adversarial stream.
func TestManyEpsilonWindowCombos(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := rand.New(rand.NewSource(77))
	stream := make([][]uint64, 60)
	for b := range stream {
		stream[b] = make([]uint64, rng.Intn(250)+1)
		for i := range stream[b] {
			stream[b][i] = uint64(rng.Intn(40))
		}
	}
	for _, n := range []int64{1, 15, 127, 128, 129, 2048} {
		for _, eps := range []float64{1, 0.5, 0.126, 0.125, 0.05} {
			for _, v := range allVariants {
				e := New(n, eps, v)
				ref := newSlidingRef(n)
				for _, batch := range stream {
					e.ProcessBatch(batch)
					ref.add(batch)
				}
				f := ref.freqs()
				bound := eps * float64(n)
				for it, fe := range f {
					est := e.Estimate(it)
					if est > fe || float64(fe-est) > bound+1e-9 {
						t.Fatalf("%v n=%d ε=%g item %d: est %d true %d",
							v, n, eps, it, est, fe)
					}
				}
			}
		}
	}
}
