// Package swfreq implements parallel sliding-window frequency estimation
// and heavy hitters (Section 5.3): for a window of size n and error ε, it
// maintains per-item space-bounded block counters so that every item's
// frequency in the window is estimated within [f_e - εn, f_e].
//
// Three variants are provided, mirroring the paper's development:
//
//   - Basic (Theorem 5.5): one (∞, n/S)-SBBC per live item, no pruning.
//     Simple, but its space grows with the number of distinct items.
//   - SpaceEfficient (Algorithm 2, Theorem 5.8): after each minibatch a
//     Misra-Gries-style pruning decrements counters so at most S = ⌈8/ε⌉
//     survive, giving O(ε⁻¹) space; per-item CSS construction still costs
//     O(µ log µ)-flavor work (we build a CSS for every item in T ∪ B).
//   - WorkEfficient (Theorem 5.4): the predict step computes post-batch
//     counts from the histogram plus shrunk counter values *before*
//     building any CSS, so sift (Lemma 5.9) only materializes the ≤ S
//     surviving items' CSSs: O(ε⁻¹ + µ) work, at the price of an O(ε⁻¹)
//     depth term in sift's bucketing.
package swfreq

import (
	"repro/internal/css"
	"repro/internal/hist"
	"repro/internal/parallel"
	"repro/internal/sbbc"
)

// Variant selects the algorithm from Section 5.3.
type Variant int

const (
	// Basic is the direct SBBC-per-item algorithm (Theorem 5.5).
	Basic Variant = iota
	// SpaceEfficient adds Misra-Gries-style pruning (Theorem 5.8).
	SpaceEfficient
	// WorkEfficient adds survivor prediction and sift (Theorem 5.4).
	WorkEfficient
)

// String implements fmt.Stringer for benchmark labels.
func (v Variant) String() string {
	switch v {
	case Basic:
		return "basic"
	case SpaceEfficient:
		return "space-efficient"
	case WorkEfficient:
		return "work-efficient"
	default:
		return "unknown"
	}
}

// Estimator tracks approximate item frequencies over a sliding window.
type Estimator struct {
	variant Variant
	n       int64
	eps     float64
	capS    int   // pruning capacity (SpaceEfficient/WorkEfficient)
	gamma   int64 // SBBC block size
	adj     int64 // worst-case overcount subtracted at query time
	t       int64 // global stream length observed
	seed    int64
	ctr     map[uint64]*sbbc.Counter
}

// New creates an estimator for window size n >= 1 and epsilon in (0, 1].
func New(n int64, epsilon float64, v Variant) *Estimator {
	if n < 1 {
		panic("swfreq: window size must be >= 1")
	}
	if epsilon <= 0 || epsilon > 1 {
		panic("swfreq: epsilon must be in (0, 1]")
	}
	e := &Estimator{
		variant: v,
		n:       n,
		eps:     epsilon,
		ctr:     make(map[uint64]*sbbc.Counter),
		seed:    0x5357,
	}
	switch v {
	case Basic:
		// λ = n/S with S = ⌈1/ε⌉; γ = max(1, ⌊λ/2⌋).
		s := int64(1/epsilon) + 1
		e.gamma = maxInt64(1, n/(2*s))
	case SpaceEfficient, WorkEfficient:
		// S = ⌈8/ε⌉, λ = εn/4, γ = max(1, ⌊λ/2⌋) = max(1, ⌊εn/8⌋).
		e.capS = int(8/epsilon) + 1
		e.gamma = maxInt64(1, int64(epsilon*float64(n)/8))
		if e.gamma == 1 {
			// εn < 16 ⇒ n < 16/ε: counters are exact and at most 2n
			// candidates can ever be live, so raising the pruning capacity
			// to 2n+1 disables pruning (whose per-batch error unit would
			// blow the tiny εn budget) while keeping space O(1/ε).
			if alt := int(2*n) + 1; alt > e.capS {
				e.capS = alt
			}
		}
	default:
		panic("swfreq: unknown variant")
	}
	// A γ=1 counter is exact, so nothing needs subtracting; otherwise the
	// snapshot may overcount by up to 2γ.
	if e.gamma > 1 {
		e.adj = 2 * e.gamma
	}
	return e
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// N returns the window size.
func (e *Estimator) N() int64 { return e.n }

// Epsilon returns the error parameter.
func (e *Estimator) Epsilon() float64 { return e.eps }

// VariantKind returns the configured algorithm variant.
func (e *Estimator) VariantKind() Variant { return e.variant }

// StreamLen returns the number of items observed so far.
func (e *Estimator) StreamLen() int64 { return e.t }

// WindowLen returns min(StreamLen, n): the number of items actually in
// the current window.
func (e *Estimator) WindowLen() int64 {
	if e.t < e.n {
		return e.t
	}
	return e.n
}

// NumCounters returns the number of live per-item counters.
func (e *Estimator) NumCounters() int { return len(e.ctr) }

// TrackedItemIDs returns the ids of all items with live counters, in
// arbitrary order.
func (e *Estimator) TrackedItemIDs() []uint64 {
	out := make([]uint64, 0, len(e.ctr))
	for item := range e.ctr {
		out = append(out, item)
	}
	return out
}

// ProcessBatch ingests a minibatch of items.
func (e *Estimator) ProcessBatch(items []uint64) {
	if len(items) == 0 {
		return
	}
	e.t += int64(len(items))
	// WLOG assumption from Section 5.3.2: a minibatch at least as large as
	// the window resets the state — only its last n items matter, and
	// starting over clears all accumulated error.
	if int64(len(items)) >= e.n {
		clear(e.ctr)
		items = items[int64(len(items))-e.n:]
	}
	switch e.variant {
	case Basic:
		e.processAll(items, false)
	case SpaceEfficient:
		e.processAll(items, true)
	case WorkEfficient:
		e.processWorkEfficient(items)
	}
}

// processAll implements the basic algorithm, optionally followed by the
// pruning step of Algorithm 2: build a CSS for every item present in the
// minibatch or the counter collection, advance every counter, then (if
// prune) decrement so at most S counters survive.
func (e *Estimator) processAll(items []uint64, prune bool) {
	e.seed++
	h := hist.Build(items, e.seed)
	// K = items of T ∪ B, histogram items first.
	kIndex := make(map[uint64]int32, len(h)+len(e.ctr))
	var kItems []uint64
	for _, en := range h {
		kIndex[en.Item] = int32(len(kItems))
		kItems = append(kItems, en.Item)
	}
	for item := range e.ctr {
		if _, ok := kIndex[item]; !ok {
			kIndex[item] = int32(len(kItems))
			kItems = append(kItems, item)
		}
	}
	segs := sift(items, kIndex, len(kItems))
	counters := e.ensureCounters(kItems)
	parallel.ForGrain(len(kItems), 1, func(i int) {
		counters[i].Advance(segs[i])
	})
	if prune {
		phi := int64(0)
		if len(kItems) > e.capS {
			vals := parallel.Map(len(kItems), func(i int) int64 { return counters[i].Value() })
			phi = parallel.KthLargest(vals, e.capS+1)
		}
		if phi > 0 {
			parallel.ForGrain(len(kItems), 1, func(i int) {
				if counters[i].Value() >= phi {
					counters[i].Decrement(phi)
				} else {
					// Mark for deletion by zeroing: counters below the
					// cutoff are removed entirely (Algorithm 2 step 3b).
					counters[i].Decrement(counters[i].Value())
				}
			})
		}
	}
	e.dropZero(kItems, counters)
}

// processWorkEfficient implements Theorem 5.4: predict survivors from the
// histogram and shrunk counter values, sift only their CSSs, then
// advance + decrement the survivors and delete everything else.
func (e *Estimator) processWorkEfficient(items []uint64) {
	e.seed++
	h := hist.Build(items, e.seed)
	mu := int64(len(items))

	// predict: candidate set = items of T ∪ B with combined counts
	// c_e = freq in T + counter value shrunk to the last n-µ positions.
	type cand struct {
		item uint64
		c    int64
	}
	cands := make([]cand, 0, len(h)+len(e.ctr))
	inHist := make(map[uint64]bool, len(h))
	for _, en := range h {
		c := en.Freq
		if ctr, ok := e.ctr[en.Item]; ok {
			c += ctr.ValueForWindow(e.n - mu)
		}
		cands = append(cands, cand{en.Item, c})
		inHist[en.Item] = true
	}
	for item, ctr := range e.ctr {
		if !inHist[item] {
			cands = append(cands, cand{item, ctr.ValueForWindow(e.n - mu)})
		}
	}
	phi := int64(0)
	if len(cands) > e.capS {
		vals := parallel.Map(len(cands), func(i int) int64 { return cands[i].c })
		phi = parallel.KthLargest(vals, e.capS+1)
	}
	// K = predicted survivors.
	kept := parallel.Pack(cands, func(i int) bool { return cands[i].c > phi })
	kIndex := make(map[uint64]int32, len(kept))
	kItems := make([]uint64, len(kept))
	for i, c := range kept {
		kIndex[c.item] = int32(i)
		kItems[i] = c.item
	}

	segs := sift(items, kIndex, len(kItems))

	// Delete non-survivors before advancing (they are gone regardless).
	for item := range e.ctr {
		if _, ok := kIndex[item]; !ok {
			delete(e.ctr, item)
		}
	}
	counters := e.ensureCounters(kItems)
	parallel.ForGrain(len(kItems), 1, func(i int) {
		counters[i].Advance(segs[i])
		counters[i].Decrement(phi)
	})
	e.dropZero(kItems, counters)
}

// ensureCounters returns the counter for each item, creating missing ones
// (map mutation is sequential; the per-counter work is parallelized by
// the callers).
func (e *Estimator) ensureCounters(items []uint64) []*sbbc.Counter {
	out := make([]*sbbc.Counter, len(items))
	for i, item := range items {
		c, ok := e.ctr[item]
		if !ok {
			c = sbbc.New(e.n, 0, e.gamma) // σ unbounded: the (∞, λ)-SBBC
			e.ctr[item] = c
		}
		out[i] = c
	}
	return out
}

// dropZero removes counters whose value reached 0; they carry no
// information (an absent counter estimates 0).
func (e *Estimator) dropZero(items []uint64, counters []*sbbc.Counter) {
	for i, item := range items {
		if counters[i].Value() == 0 {
			delete(e.ctr, item)
		}
	}
}

// Estimate returns the frequency estimate for item in the current
// window: f_e - εn <= Estimate(item) <= f_e.
func (e *Estimator) Estimate(item uint64) int64 {
	c, ok := e.ctr[item]
	if !ok {
		return 0
	}
	v := c.Value() - e.adj
	if v < 0 {
		return 0
	}
	return v
}

// HeavyHitters returns every item whose estimate reaches (φ-ε)·W, where
// W is the current window length — the Section 5 reduction: all items
// with f_e >= φW are reported, and no item with f_e < (φ-2ε)W can appear.
func (e *Estimator) HeavyHitters(phi float64) []uint64 {
	thr := (phi - e.eps) * float64(e.WindowLen())
	var out []uint64
	for item := range e.ctr {
		if float64(e.Estimate(item)) >= thr {
			out = append(out, item)
		}
	}
	return out
}

// SpaceWords estimates the persistent memory footprint in 64-bit words.
func (e *Estimator) SpaceWords() int {
	total := 8
	for _, c := range e.ctr {
		total += c.SpaceWords() + 2 // counter + map entry
	}
	return total
}

// sift builds, for every item in the index set kIndex (with contiguous
// indices 0..nK-1), the CSS of its indicator sequence within items
// (Lemma 5.9). Items not in kIndex are filtered out; the stable counting
// sort groups the surviving positions by item while preserving stream
// order. O(µ + |K|) work; the bucketing has an O(|K|) span term, the
// deliberate depth-for-work tradeoff the paper makes.
func sift(items []uint64, kIndex map[uint64]int32, nK int) []css.Segment {
	mu := len(items)
	segs := make([]css.Segment, nK)
	if nK == 0 {
		return segs
	}
	// Tag each position with its item's K-index (or -1).
	tags := make([]int32, mu)
	parallel.ForGrain(mu, parallel.DefaultGrain, func(i int) {
		if k, ok := kIndex[items[i]]; ok {
			tags[i] = k
		} else {
			tags[i] = -1
		}
	})
	pos := parallel.PackIndices(mu, func(i int) bool { return tags[i] >= 0 })
	keys := make([]uint32, len(pos))
	vals := make([]int32, len(pos))
	parallel.ForGrain(len(pos), parallel.DefaultGrain, func(j int) {
		keys[j] = uint32(tags[pos[j]])
		vals[j] = int32(pos[j])
	})
	parallel.CountingSortPairs(keys, vals, nK)
	// Segment boundaries per item.
	starts := parallel.PackIndices(len(keys), func(i int) bool {
		return i == 0 || keys[i] != keys[i-1]
	})
	parallel.ForGrain(nK, 8, func(k int) {
		segs[k] = css.Segment{Len: int64(mu)}
	})
	parallel.ForGrain(len(starts), 8, func(b int) {
		lo := starts[b]
		hi := len(keys)
		if b+1 < len(starts) {
			hi = starts[b+1]
		}
		ones := make([]int64, hi-lo)
		for j := lo; j < hi; j++ {
			ones[j-lo] = int64(vals[j]) + 1 // 1-based positions
		}
		segs[keys[lo]] = css.Segment{Len: int64(mu), Ones: ones}
	})
	return segs
}
