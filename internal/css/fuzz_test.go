package css

import (
	"bytes"
	"testing"
)

// FuzzFromBools checks CSS construction against a naive scan for
// arbitrary bit patterns (each input byte contributes 8 bits).
func FuzzFromBools(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0x00, 0xaa})
	f.Add(bytes.Repeat([]byte{0x55}, 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		bits := make([]bool, len(data)*8)
		for i := range bits {
			bits[i] = data[i/8]>>(uint(i)%8)&1 == 1
		}
		s := FromBools(bits)
		if !s.Valid() {
			t.Fatal("invalid CSS")
		}
		if s.Len != int64(len(bits)) {
			t.Fatalf("Len %d want %d", s.Len, len(bits))
		}
		j := 0
		for i, b := range bits {
			if b {
				if j >= len(s.Ones) || s.Ones[j] != int64(i)+1 {
					t.Fatalf("one at %d missing or misplaced", i)
				}
				j++
			}
		}
		if j != len(s.Ones) {
			t.Fatalf("extra ones recorded: %d vs %d", len(s.Ones), j)
		}
	})
}
