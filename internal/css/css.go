// Package css implements compacted stream segments (Section 2 of the
// paper): an encoding of a binary stream segment that records only the
// segment length and the positions of its 1 bits. Lemma 2.1: a CSS can be
// built from a length-n segment in O(n) work and O(log n) depth; we
// realize this with the flag/prefix-sum compaction from internal/parallel.
package css

import "repro/internal/parallel"

// Segment is a compacted stream segment. Ones lists the 1-based positions
// (within the segment) of the segment's 1 bits, in increasing order.
type Segment struct {
	Len  int64
	Ones []int64
}

// FromBools builds the CSS of the given bit sequence.
func FromBools(bits []bool) Segment {
	return FromFunc(len(bits), func(i int) bool { return bits[i] })
}

// FromFunc builds the CSS of the length-n binary segment whose i-th bit
// (0-based i) is one(i). O(n) work, polylog depth (Lemma 2.1).
func FromFunc(n int, one func(i int) bool) Segment {
	idx := parallel.PackIndices(n, one)
	ones := make([]int64, len(idx))
	parallel.ForGrain(len(idx), parallel.DefaultGrain, func(j int) {
		ones[j] = int64(idx[j]) + 1 // 1-based
	})
	return Segment{Len: int64(n), Ones: ones}
}

// FromPositions builds a CSS directly from 1-based positions of ones,
// which must be strictly increasing and within [1, n]. The slice is
// retained, not copied.
func FromPositions(n int64, ones []int64) Segment {
	return Segment{Len: n, Ones: ones}
}

// Count returns the number of 1s in the segment.
func (s Segment) Count() int64 { return int64(len(s.Ones)) }

// Concat returns the CSS of the concatenation s || t.
func Concat(s, t Segment) Segment {
	ones := make([]int64, 0, len(s.Ones)+len(t.Ones))
	ones = append(ones, s.Ones...)
	for _, p := range t.Ones {
		ones = append(ones, p+s.Len)
	}
	return Segment{Len: s.Len + t.Len, Ones: ones}
}

// Valid reports whether the segment is well-formed: positions strictly
// increasing within [1, Len].
func (s Segment) Valid() bool {
	prev := int64(0)
	for _, p := range s.Ones {
		if p <= prev || p > s.Len {
			return false
		}
		prev = p
	}
	return s.Len >= 0
}
