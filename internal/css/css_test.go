package css

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromBoolsBasic(t *testing.T) {
	bits := []bool{false, true, true, false, true}
	s := FromBools(bits)
	if s.Len != 5 {
		t.Fatalf("Len = %d", s.Len)
	}
	want := []int64{2, 3, 5}
	if len(s.Ones) != len(want) {
		t.Fatalf("Ones = %v want %v", s.Ones, want)
	}
	for i := range want {
		if s.Ones[i] != want[i] {
			t.Fatalf("Ones = %v want %v", s.Ones, want)
		}
	}
	if !s.Valid() {
		t.Fatal("segment invalid")
	}
}

func TestFromBoolsEmpty(t *testing.T) {
	s := FromBools(nil)
	if s.Len != 0 || s.Count() != 0 || !s.Valid() {
		t.Fatalf("empty segment wrong: %+v", s)
	}
}

func TestFromFuncLarge(t *testing.T) {
	n := 1 << 17
	s := FromFunc(n, func(i int) bool { return i%7 == 3 })
	if !s.Valid() {
		t.Fatal("invalid segment")
	}
	cnt := int64(0)
	for i := 0; i < n; i++ {
		if i%7 == 3 {
			cnt++
		}
	}
	if s.Count() != cnt {
		t.Fatalf("Count = %d want %d", s.Count(), cnt)
	}
	for _, p := range s.Ones {
		if (p-1)%7 != 3 {
			t.Fatalf("position %d should not be a one", p)
		}
	}
}

func TestFromBoolsMatchesNaive(t *testing.T) {
	check := func(seed int64, nRaw uint16) bool {
		n := int(nRaw % 2048)
		rng := rand.New(rand.NewSource(seed))
		bits := make([]bool, n)
		for i := range bits {
			bits[i] = rng.Intn(3) == 0
		}
		s := FromBools(bits)
		if s.Len != int64(n) || !s.Valid() {
			return false
		}
		j := 0
		for i, b := range bits {
			if b {
				if j >= len(s.Ones) || s.Ones[j] != int64(i)+1 {
					return false
				}
				j++
			}
		}
		return j == len(s.Ones)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcat(t *testing.T) {
	a := FromBools([]bool{true, false, true})
	b := FromBools([]bool{false, true})
	c := Concat(a, b)
	if c.Len != 5 || c.Count() != 3 {
		t.Fatalf("concat: %+v", c)
	}
	want := []int64{1, 3, 5}
	for i := range want {
		if c.Ones[i] != want[i] {
			t.Fatalf("concat Ones = %v want %v", c.Ones, want)
		}
	}
	if !c.Valid() {
		t.Fatal("concat invalid")
	}
}

func TestValidRejectsBad(t *testing.T) {
	bad := []Segment{
		{Len: 3, Ones: []int64{0}},       // position < 1
		{Len: 3, Ones: []int64{4}},       // position > Len
		{Len: 3, Ones: []int64{2, 2}},    // not strictly increasing
		{Len: 5, Ones: []int64{3, 1}},    // decreasing
		{Len: -1, Ones: nil},             // negative length
		{Len: 2, Ones: []int64{1, 2, 2}}, // duplicate
	}
	for i, s := range bad {
		if s.Valid() {
			t.Fatalf("case %d: Valid() = true for %+v", i, s)
		}
	}
}

func TestFromPositions(t *testing.T) {
	s := FromPositions(10, []int64{2, 5, 9})
	if !s.Valid() || s.Count() != 3 || s.Len != 10 {
		t.Fatalf("FromPositions: %+v", s)
	}
}
