package workload

import "testing"

func TestZipfDeterministicAndSkewed(t *testing.T) {
	a := Zipf(1, 10000, 1.3, 1<<16)
	b := Zipf(1, 10000, 1.3, 1<<16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different stream")
		}
	}
	// Skew: the most frequent item should dominate.
	freq := map[uint64]int{}
	for _, v := range a {
		freq[v]++
	}
	if freq[0] < len(a)/10 {
		t.Fatalf("Zipf(1.3) top item has only %d/%d", freq[0], len(a))
	}
}

func TestUniformRange(t *testing.T) {
	for _, v := range Uniform(2, 5000, 100) {
		if v >= 100 {
			t.Fatalf("uniform value %d out of range", v)
		}
	}
}

func TestDistinct(t *testing.T) {
	d := Distinct(50, 100)
	seen := map[uint64]bool{}
	for i, v := range d {
		if v != 50+uint64(i) || seen[v] {
			t.Fatalf("Distinct wrong at %d: %d", i, v)
		}
		seen[v] = true
	}
}

func TestHeavyMix(t *testing.T) {
	items := HeavyMix(3, 50000, []uint64{7, 8}, []float64{0.3, 0.1}, 1<<20)
	var c7, c8 int
	for _, v := range items {
		switch v {
		case 7:
			c7++
		case 8:
			c8++
		}
	}
	if c7 < 13000 || c7 > 17000 {
		t.Fatalf("item 7 frequency %d/50000, want ~15000", c7)
	}
	if c8 < 3500 || c8 > 6500 {
		t.Fatalf("item 8 frequency %d/50000, want ~5000", c8)
	}
}

func TestHeavyMixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HeavyMix(1, 10, []uint64{1}, []float64{0.1, 0.2}, 100)
}

func TestBitsDensity(t *testing.T) {
	bits := Bits(4, 100000, 0.25)
	ones := 0
	for _, b := range bits {
		if b {
			ones++
		}
	}
	if ones < 23000 || ones > 27000 {
		t.Fatalf("density: %d/100000 ones, want ~25000", ones)
	}
}

func TestBurstyBits(t *testing.T) {
	bits := BurstyBits(5, 100000, 500, 0.01, 0.95)
	ones := 0
	for _, b := range bits {
		if b {
			ones++
		}
	}
	// Roughly half dense at 0.95, half quiet at 0.01 => ~48%.
	if ones < 30000 || ones > 65000 {
		t.Fatalf("bursty ones = %d, implausible", ones)
	}
}

func TestValuesBounded(t *testing.T) {
	for _, v := range Values(6, 10000, 999, 2) {
		if v > 999 {
			t.Fatalf("value %d exceeds R", v)
		}
	}
}

func TestFlows(t *testing.T) {
	fl := Flows(7, 1000, 64, 1.5)
	for _, f := range fl {
		if f >= 64 {
			t.Fatalf("flow id %d out of range", f)
		}
	}
}

func TestBatches(t *testing.T) {
	stream := Distinct(0, 10)
	bs := Batches(stream, 3)
	if len(bs) != 4 || len(bs[0]) != 3 || len(bs[3]) != 1 {
		t.Fatalf("Batches shape wrong: %d batches", len(bs))
	}
	total := 0
	for _, b := range bs {
		total += len(b)
	}
	if total != 10 {
		t.Fatalf("Batches lost items: %d", total)
	}
}

func TestBitBatches(t *testing.T) {
	bs := BitBatches(make([]bool, 7), 4)
	if len(bs) != 2 || len(bs[0]) != 4 || len(bs[1]) != 3 {
		t.Fatal("BitBatches shape wrong")
	}
}

func TestBatchesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Batches(nil, 0)
}
