// Package workload generates the synthetic streams the experiments run
// on. The paper names no dataset (its guarantees are input-independent),
// so the behaviour-relevant knobs are skew (Zipf exponent), burstiness
// (for bit streams), and the heavy-hitter mix; every generator is
// deterministic given its seed.
package workload

import "math/rand"

// Zipf returns n items drawn Zipf(s) over the universe [0, imax]. Skew
// s > 1; larger s is more skewed.
func Zipf(seed int64, n int, s float64, imax uint64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, imax)
	out := make([]uint64, n)
	for i := range out {
		out[i] = z.Uint64()
	}
	return out
}

// Uniform returns n items drawn uniformly from [0, universe).
func Uniform(seed int64, n int, universe uint64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64() % universe
	}
	return out
}

// Distinct returns n all-distinct items — the adversarial input for
// summary-space bounds.
func Distinct(start uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = start + uint64(i)
	}
	return out
}

// SingleKey returns n copies of the same item — the degenerate
// single-hot-key stream (everything concentrates in one counter/cell).
func SingleKey(item uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = item
	}
	return out
}

// Update is one turnstile update: Delta occurrences of Item added
// (Delta < 0 deletes). Used by sketches that support deletions.
type Update struct {
	Item  uint64
	Delta int64
}

// Turnstile returns a deletion-heavy turnstile sequence: inserts draw
// Zipf(s)-distributed items over [0, imax] with small positive weights,
// and with probability delFrac each step instead fully retracts one
// earlier insert, so net counts never go negative. Deterministic given
// the seed.
func Turnstile(seed int64, n int, s float64, imax uint64, delFrac float64) []Update {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, imax)
	out := make([]Update, 0, n)
	var live []Update // inserts not yet retracted
	for len(out) < n {
		if len(live) > 0 && rng.Float64() < delFrac {
			i := rng.Intn(len(live))
			u := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			out = append(out, Update{Item: u.Item, Delta: -u.Delta})
			continue
		}
		u := Update{Item: z.Uint64(), Delta: 1 + int64(rng.Intn(3))}
		live = append(live, u)
		out = append(out, u)
	}
	return out
}

// HeavyMix returns n items where each of the given heavy items appears
// with its probability and the rest of the mass is uniform noise over a
// large universe. Probabilities must sum to < 1.
func HeavyMix(seed int64, n int, heavy []uint64, prob []float64, noiseUniverse uint64) []uint64 {
	if len(heavy) != len(prob) {
		panic("workload: heavy/prob length mismatch")
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint64, n)
	for i := range out {
		u := rng.Float64()
		placed := false
		for j, p := range prob {
			if u < p {
				out[i] = heavy[j]
				placed = true
				break
			}
			u -= p
		}
		if !placed {
			out[i] = rng.Uint64()%noiseUniverse + 1<<32 // disjoint from heavy ids
		}
	}
	return out
}

// Bits returns n random bits with the given density of 1s.
func Bits(seed int64, n int, density float64) []bool {
	rng := rand.New(rand.NewSource(seed))
	out := make([]bool, n)
	for i := range out {
		out[i] = rng.Float64() < density
	}
	return out
}

// BurstyBits returns n bits alternating between dense bursts (density
// hi) and quiet spans (density lo), each of geometric mean length
// spanLen — the stress case for sliding-window counting.
func BurstyBits(seed int64, n, spanLen int, lo, hi float64) []bool {
	rng := rand.New(rand.NewSource(seed))
	out := make([]bool, n)
	dense := false
	left := 0
	for i := range out {
		if left == 0 {
			dense = !dense
			left = 1 + rng.Intn(2*spanLen)
		}
		left--
		d := lo
		if dense {
			d = hi
		}
		out[i] = rng.Float64() < d
	}
	return out
}

// Values returns n integers in [0, r] with the given distribution skew:
// each value is r scaled by a power of a uniform draw, so skew > 1
// concentrates mass near zero (sensor-like readings with rare spikes).
func Values(seed int64, n int, r uint64, skew float64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint64, n)
	for i := range out {
		u := rng.Float64()
		for k := 1.0; k < skew; k++ {
			u *= rng.Float64()
		}
		out[i] = uint64(u * float64(r+1))
		if out[i] > r {
			out[i] = r
		}
	}
	return out
}

// Flows returns n packet arrivals over nFlows flows with Zipf(s)-sized
// flows — the synthetic stand-in for a network packet trace (the paper's
// network-monitoring motivation, [EV03]).
func Flows(seed int64, n int, nFlows uint64, s float64) []uint64 {
	return Zipf(seed, n, s, nFlows-1)
}

// Batches slices a stream into minibatches of the given size (the last
// one may be shorter).
func Batches(stream []uint64, batch int) [][]uint64 {
	if batch < 1 {
		panic("workload: batch size must be >= 1")
	}
	var out [][]uint64
	for lo := 0; lo < len(stream); lo += batch {
		hi := lo + batch
		if hi > len(stream) {
			hi = len(stream)
		}
		out = append(out, stream[lo:hi])
	}
	return out
}

// BitBatches slices a bit stream into minibatches.
func BitBatches(stream []bool, batch int) [][]bool {
	if batch < 1 {
		panic("workload: batch size must be >= 1")
	}
	var out [][]bool
	for lo := 0; lo < len(stream); lo += batch {
		hi := lo + batch
		if hi > len(stream) {
			hi = len(stream)
		}
		out = append(out, stream[lo:hi])
	}
	return out
}
