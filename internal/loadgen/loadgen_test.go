package loadgen

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	m, err := ParseMix("ingest=80, estimate@sketch=10,topk@hot=5,quantile@dist=5")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 4 {
		t.Fatalf("len = %d, want 4", len(m))
	}
	if m[0].Verb != "ingest" || m[0].Weight != 80 || m[0].Agg != "" {
		t.Fatalf("entry 0 = %+v", m[0])
	}
	if m[1].Label() != "estimate@sketch" {
		t.Fatalf("label = %q", m[1].Label())
	}
	if _, err := ParseMix(DefaultMix); err != nil {
		t.Fatalf("DefaultMix does not parse: %v", err)
	}

	bad := []string{
		"",
		"ingest",                // no weight
		"ingest=0",              // zero weight
		"ingest=-3",             // negative weight
		"ingest=x",              // non-numeric weight
		"fly@hot=1",             // unknown verb
		"estimate=1",            // query verb without @agg
		"ingest@hot=1",          // ingest with an agg
		"ingest=1,ingest=2",     // duplicate
		"topk@hot=1,topk@hot=2", // duplicate with agg
	}
	for _, s := range bad {
		if _, err := ParseMix(s); err == nil {
			t.Errorf("ParseMix(%q) accepted, want error", s)
		}
	}
}

func TestKeysPool(t *testing.T) {
	for _, dist := range []string{"zipf", "uniform", "distinct", ""} {
		pool, err := Keys{Dist: dist, Seed: 1}.pool()
		if err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		if len(pool) != keyPoolSize {
			t.Fatalf("%s: pool size %d", dist, len(pool))
		}
	}
	if _, err := (Keys{Dist: "bogus"}).pool(); err == nil {
		t.Fatal("bogus dist accepted")
	}
	if _, err := (Keys{Dist: "zipf", ZipfS: 0.5}).pool(); err == nil {
		t.Fatal("zipf s <= 1 accepted")
	}
}

// fastHandler answers every route instantly with a 2xx.
func fastHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{}`))
	})
}

// TestPacerHoldsRateWithoutBursts pins the open-loop pacer's two
// contracts against a fast server: the achieved rate lands within 5% of
// the offered rate, and the arrival process stays spread out — the
// per-tick quota is "operations whose intended time has passed", so a
// healthy run must not degenerate into periodic bursts (which would
// understate queueing at the server).
func TestPacerHoldsRateWithoutBursts(t *testing.T) {
	ts := httptest.NewServer(fastHandler())
	defer ts.Close()

	var mu sync.Mutex
	var issued []time.Time
	var deviations []time.Duration
	const rate, dur = 400.0, 1500 * time.Millisecond
	cfg := Config{
		Target:   ts.URL,
		Rate:     rate,
		Workers:  2,
		Duration: dur,
		Mix:      Mix{{Verb: "ingest", Weight: 3}, {Verb: "estimate", Agg: "x", Weight: 1}},
		Batch:    8,
		Keys:     Keys{Seed: 11},
		onIssue: func(_ int, intended, at time.Time) {
			mu.Lock()
			issued = append(issued, at)
			deviations = append(deviations, at.Sub(intended))
			mu.Unlock()
		},
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops == 0 {
		t.Fatal("no measured ops")
	}
	if got := rep.Status["2xx"]; got != rep.Ops {
		t.Fatalf("2xx = %d of %d ops", got, rep.Ops)
	}
	if off := math.Abs(rep.AchievedPerSec-rate) / rate; off > 0.05 {
		t.Errorf("achieved %.1f ops/s vs offered %.0f: off by %.1f%% (want <= 5%%)",
			rep.AchievedPerSec, rate, off*100)
	}

	// Scheduling deviation: with a fast server the pacer issues each
	// operation near its own intended instant. A bursty pacer (tick
	// coarsely, fire the whole quota at once) would push most
	// deviations up to its tick period.
	mu.Lock()
	defer mu.Unlock()
	sort.Slice(deviations, func(i, j int) bool { return deviations[i] < deviations[j] })
	if p95 := deviations[len(deviations)*95/100]; p95 > 100*time.Millisecond {
		t.Errorf("p95 issue deviation %v (want <= 100ms: arrivals must track intended times)", p95)
	}

	// Windowed arrival counts: interior 250ms windows must each hold
	// roughly their share. Generous bounds absorb CI scheduler noise
	// while still failing a pacer that dumps per-second bursts.
	sort.Slice(issued, func(i, j int) bool { return issued[i].Before(issued[j]) })
	window := 250 * time.Millisecond
	expect := rate * window.Seconds()
	first, last := issued[0], issued[len(issued)-1]
	for w0 := first.Add(window); w0.Add(window).Before(last); w0 = w0.Add(window) {
		n := 0
		for _, at := range issued {
			if !at.Before(w0) && at.Before(w0.Add(window)) {
				n++
			}
		}
		if float64(n) > 2*expect || float64(n) < expect/2 {
			t.Errorf("window at +%v holds %d arrivals, want within [%.0f, %.0f]",
				w0.Sub(first), n, expect/2, 2*expect)
		}
	}
}

// TestCoordinatedOmissionStallInflatesP99 pins the intended-start-time
// accounting: a handler that freezes exactly once for 200ms must
// inflate the reported p99 far beyond what service-time measurement
// would show, because every operation queued behind the stall is
// charged its full wait. With one worker at 100 ops/s over 2s, a single
// 200ms stall delays ~20 of ~200 ops by up to the stall — service-time
// p99 would stay at the fast-path sub-millisecond level (only 1 op in
// 200 was actually slow), while the CO-safe p99 must exceed half the
// stall and the max must exceed the stall itself.
func TestCoordinatedOmissionStallInflatesP99(t *testing.T) {
	const stall = 200 * time.Millisecond
	var stalled atomic.Bool
	var slowServed atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if stalled.CompareAndSwap(false, true) {
			time.Sleep(stall)
		}
		if time.Since(start) >= stall/2 {
			slowServed.Add(1)
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		Target:   ts.URL,
		Rate:     100,
		Workers:  1,
		Duration: 2 * time.Second,
		Mix:      Mix{{Verb: "ingest", Weight: 1}},
		Batch:    4,
		Keys:     Keys{Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := slowServed.Load(); n != 1 {
		t.Fatalf("handler reports %d slow requests, want exactly 1", n)
	}
	if rep.Latency.Max < float64(stall/time.Millisecond) {
		t.Errorf("max %.1fms < stall %v: the stalled op itself lost its wait", rep.Latency.Max, stall)
	}
	// The regression being pinned: measuring service time instead of
	// time-since-intended-start. 1 slow op in ~200 sits below the p99
	// rank, so a service-time p99 would be the fast-path latency
	// (well under 50ms even on a noisy runner); the CO-safe p99 sees
	// the ~20 queued ops and must carry the stall.
	if rep.Latency.P99 < float64(stall/time.Millisecond)/2 {
		t.Errorf("p99 %.1fms < %v/2: coordinated omission — queueing delay behind the stall was dropped",
			rep.Latency.P99, stall)
	}
	if rep.Latency.P50 > float64(stall/time.Millisecond) {
		t.Errorf("p50 %.1fms unexpectedly above the stall: pacing is broken, not just the tail", rep.Latency.P50)
	}
}

// TestStatusClassesAndVerbRouting drives a handler that answers each
// route differently and asserts the per-verb, per-status-class
// bookkeeping.
func TestStatusClassesAndVerbRouting(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/v1/ingest":
			w.WriteHeader(http.StatusOK)
		case r.URL.Path == "/v1/bad/estimate":
			w.WriteHeader(http.StatusBadRequest)
		case r.URL.Path == "/v1/down/topk":
			w.WriteHeader(http.StatusInternalServerError)
		default:
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		Target:   ts.URL,
		Rate:     300,
		Workers:  3,
		Duration: time.Second,
		Mix: Mix{
			{Verb: "ingest", Weight: 1},
			{Verb: "estimate", Agg: "bad", Weight: 1},
			{Verb: "topk", Agg: "down", Weight: 1},
		},
		Keys: Keys{Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	ing, est, top := rep.Verbs["ingest"], rep.Verbs["estimate@bad"], rep.Verbs["topk@down"]
	if ing == nil || est == nil || top == nil {
		t.Fatalf("missing verb reports: %v", rep.Verbs)
	}
	if ing.Status["2xx"] != ing.Ops || est.Status["4xx"] != est.Ops || top.Status["5xx"] != top.Ops {
		t.Fatalf("status routing wrong: ingest=%v estimate=%v topk=%v", ing.Status, est.Status, top.Status)
	}
	if rep.Status["5xx"] != top.Ops || rep.Status["4xx"] != est.Ops {
		t.Fatalf("rollup wrong: %v", rep.Status)
	}
	if ing.Items == 0 || rep.Items != ing.Items {
		t.Fatalf("items: ingest=%d total=%d", ing.Items, rep.Items)
	}
	if est.Items != 0 {
		t.Fatalf("query verb counted items: %d", est.Items)
	}
	// The report must round-trip as JSON (the machine-readable contract
	// aggload's -json flag and the CI smoke rely on).
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Ops != rep.Ops || back.Verbs["ingest"].Ops != ing.Ops {
		t.Fatal("report did not survive a JSON round trip")
	}
}

// TestWarmupExcluded pins that operations intended during warmup are
// kept out of the measured report.
func TestWarmupExcluded(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	rep, err := Run(context.Background(), Config{
		Target:   ts.URL,
		Rate:     200,
		Workers:  2,
		Duration: 500 * time.Millisecond,
		Warmup:   500 * time.Millisecond,
		Mix:      Mix{{Verb: "value", Agg: "x", Weight: 1}},
		Keys:     Keys{Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	total := calls.Load()
	if rep.Ops >= total {
		t.Fatalf("measured %d of %d total ops: warmup was not excluded", rep.Ops, total)
	}
	// ~100 warmup + ~100 measured; allow slack for edge effects.
	if rep.Ops < total/4 {
		t.Fatalf("measured %d of %d: measured window unexpectedly small", rep.Ops, total)
	}
}

// TestRunCancel pins that canceling the context stops issuing promptly
// and still returns a well-formed report.
func TestRunCancel(t *testing.T) {
	ts := httptest.NewServer(fastHandler())
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	rep, err := Run(ctx, Config{
		Target:   ts.URL,
		Rate:     100,
		Workers:  2,
		Duration: 30 * time.Second,
		Mix:      Mix{{Verb: "ingest", Weight: 1}},
		Keys:     Keys{Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("Run took %v after a 300ms cancel", el)
	}
	if rep == nil {
		t.Fatal("nil report after cancel")
	}
}

func TestConfigValidation(t *testing.T) {
	base := Config{Target: "http://x", Rate: 10, Duration: time.Second,
		Mix: Mix{{Verb: "ingest", Weight: 1}}}
	cases := []func(*Config){
		func(c *Config) { c.Target = "" },
		func(c *Config) { c.Rate = 0 },
		func(c *Config) { c.Rate = -5 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.Mix = nil },
	}
	for i, mutate := range cases {
		c := base
		mutate(&c)
		if _, err := Run(context.Background(), c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	// Sub-one total ops is rejected rather than dividing by zero.
	c := base
	c.Rate = 0.1
	c.Duration = time.Second
	if _, err := Run(context.Background(), c); err == nil {
		t.Error("rate*duration < 1 accepted")
	}
}
