package loadgen

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/workload"
)

// Verb names the harness can drive: ingest plus the server's six query
// verbs.
var knownVerbs = map[string]bool{
	"ingest":       true,
	"estimate":     true,
	"value":        true,
	"heavyhitters": true,
	"topk":         true,
	"rangecount":   true,
	"quantile":     true,
}

// MixEntry is one weighted operation in the workload mix. Query verbs
// name the aggregate they hit; ingest targets the whole pipeline.
type MixEntry struct {
	Verb   string
	Agg    string
	Weight float64
}

// Label renders the entry the way reports key it: the bare verb for
// ingest, verb@aggregate for queries.
func (e MixEntry) Label() string {
	if e.Agg == "" {
		return e.Verb
	}
	return e.Verb + "@" + e.Agg
}

// Mix is a weighted operation mix. Ops are drawn independently per
// request with probability proportional to weight, so the realized mix
// converges to the configured ratios without imposing any ordering.
type Mix []MixEntry

// DefaultMix matches aggserve's demo aggregates (hot=freq,
// sketch=count-min, dist=count-min-range).
const DefaultMix = "ingest=80,estimate@sketch=8,heavyhitters@hot=3,topk@hot=3,rangecount@dist=3,quantile@dist=3"

// ParseMix parses the verb-mix grammar:
//
//	verb[@aggregate]=weight[,verb[@aggregate]=weight]...
//
// e.g. "ingest=80,estimate@sketch=10,topk@hot=10". Weights are relative
// (any positive numbers); query verbs require an @aggregate, ingest
// forbids one.
func ParseMix(s string) (Mix, error) {
	var m Mix
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		head, weightStr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want verb[@agg]=weight)", part)
		}
		verb, agg, _ := strings.Cut(head, "@")
		if !knownVerbs[verb] {
			return nil, fmt.Errorf("bad mix entry %q: unknown verb %q (want %s)",
				part, verb, strings.Join(verbList(), ", "))
		}
		if verb == "ingest" && agg != "" {
			return nil, fmt.Errorf("bad mix entry %q: ingest targets the whole pipeline, not one aggregate", part)
		}
		if verb != "ingest" && agg == "" {
			return nil, fmt.Errorf("bad mix entry %q: query verb %s needs @aggregate (e.g. %s@sketch=1)",
				part, verb, verb)
		}
		w, err := strconv.ParseFloat(weightStr, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad mix entry %q: weight %q (want > 0)", part, weightStr)
		}
		e := MixEntry{Verb: verb, Agg: agg, Weight: w}
		if seen[e.Label()] {
			return nil, fmt.Errorf("duplicate mix entry %q", e.Label())
		}
		seen[e.Label()] = true
		m = append(m, e)
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("empty mix (want verb[@agg]=weight,...)")
	}
	return m, nil
}

func verbList() []string {
	out := make([]string, 0, len(knownVerbs))
	for v := range knownVerbs {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Keys selects the key distribution the harness draws items and query
// probes from, reusing the experiment workload generators so the load
// profile is the same family the accuracy experiments are stated on.
type Keys struct {
	Dist     string  // "zipf", "uniform", or "distinct"
	ZipfS    float64 // zipf skew (> 1); default 1.1
	Universe uint64  // key universe; default 1<<18
	Seed     int64
}

// keyPoolSize is the number of pre-generated keys workers cycle
// through; large enough that reuse doesn't distort the distribution at
// harness time scales, small enough to generate instantly.
const keyPoolSize = 1 << 16

// pool materializes the key pool.
func (k Keys) pool() ([]uint64, error) {
	universe := k.Universe
	if universe == 0 {
		universe = 1 << 18
	}
	s := k.ZipfS
	if s == 0 {
		s = 1.1
	}
	switch k.Dist {
	case "", "zipf":
		if s <= 1 {
			return nil, fmt.Errorf("zipf skew %v (want > 1)", s)
		}
		return workload.Zipf(k.Seed, keyPoolSize, s, universe-1), nil
	case "uniform":
		return workload.Uniform(k.Seed, keyPoolSize, universe), nil
	case "distinct":
		return workload.Distinct(uint64(k.Seed), keyPoolSize), nil
	}
	return nil, fmt.Errorf("unknown key distribution %q (want zipf, uniform, or distinct)", k.Dist)
}
