package loadgen

// Client-side latency accounting. Every completed operation lands in
// one internal/hist.Log2 atomic histogram keyed by (mix entry, status
// class); each worker owns a private recorder so the record path is
// contention-free, and reporting merges the per-worker histograms
// (hist.Log2.Merge) — live for the terminal ticks, once at the end for
// the report. Latencies are measured against the operation's *intended*
// start time, so queueing delay behind a slow server is charged to
// every operation it delays (coordinated-omission-safe), not only to
// the one the server was slow on.

import (
	"sync/atomic"
	"time"

	"repro/internal/hist"
)

// Status classes operations are bucketed into. "error" is a transport
// failure (connect, timeout) with no HTTP status.
const (
	class2xx = iota
	class3xx
	class4xx
	class5xx
	classErr
	nClasses
)

var classNames = [nClasses]string{"2xx", "3xx", "4xx", "5xx", "error"}

func classOf(status int) int {
	switch {
	case status >= 200 && status < 300:
		return class2xx
	case status >= 300 && status < 400:
		return class3xx
	case status >= 400 && status < 500:
		return class4xx
	case status >= 500:
		return class5xx
	}
	return classErr
}

// entryRec accumulates one mix entry's outcomes: a latency histogram
// per status class, the exact maximum (the log₂ buckets only bound it),
// and the ingest item volume.
type entryRec struct {
	lat   [nClasses]hist.Log2
	maxNs atomic.Uint64
	items atomic.Int64
}

//agglint:hotpath
func (e *entryRec) observe(class int, d time.Duration, items int) {
	ns := uint64(max(d, 0))
	e.lat[class].Observe(ns)
	for {
		cur := e.maxNs.Load()
		if ns <= cur || e.maxNs.CompareAndSwap(cur, ns) {
			break
		}
	}
	if items > 0 {
		e.items.Add(int64(items))
	}
}

// recorder is one worker's (or the shared warmup) accumulator.
type recorder struct {
	entries []entryRec
}

func newRecorder(n int) *recorder { return &recorder{entries: make([]entryRec, n)} }

// Percentiles is the latency summary of one histogram, in milliseconds.
// p50–p99.9 are interpolated within log₂ buckets (so they carry the
// bucket's factor-of-2 resolution); max is exact.
type Percentiles struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

func percentilesOf(h *hist.Log2, maxNs uint64) Percentiles {
	buckets, count, _ := h.Snapshot()
	q := func(p float64) float64 { return hist.Log2Quantile(buckets, count, p) / 1e6 }
	ps := Percentiles{P50: q(0.50), P90: q(0.90), P99: q(0.99), P999: q(0.999), Max: float64(maxNs) / 1e6}
	// The interpolated tail can overshoot the exact max within its
	// bucket; clamp so the report is internally consistent.
	if count > 0 {
		for _, p := range []*float64{&ps.P50, &ps.P90, &ps.P99, &ps.P999} {
			if *p > ps.Max {
				*p = ps.Max
			}
		}
	}
	return ps
}

// VerbReport is one mix entry's slice of the report.
type VerbReport struct {
	Ops     int64            `json:"ops"`
	Status  map[string]int64 `json:"status"`
	Latency Percentiles      `json:"latency_ms"`
	Items   int64            `json:"items,omitempty"`
}

// Report is the machine-readable result of one run. AchievedPerSec
// counts completed operations in the measured window against the wall
// time they actually took; a healthy run achieves the offered rate, an
// overloaded one reveals the shortfall instead of silently slowing the
// client down.
type Report struct {
	Target          string                 `json:"target"`
	OfferedPerSec   float64                `json:"offered_per_sec"`
	AchievedPerSec  float64                `json:"achieved_per_sec"`
	DurationSeconds float64                `json:"duration_seconds"`
	WarmupSeconds   float64                `json:"warmup_seconds"`
	Workers         int                    `json:"workers"`
	Ops             int64                  `json:"ops"`
	Items           int64                  `json:"items"`
	ItemsPerSec     float64                `json:"items_per_sec"`
	Status          map[string]int64       `json:"status"`
	Latency         Percentiles            `json:"latency_ms"`
	Verbs           map[string]*VerbReport `json:"verbs"`
}

// buildReport merges the per-worker recorders into the final report.
func buildReport(cfg Config, workers []*recorder, measured time.Duration) *Report {
	rep := &Report{
		Target:          cfg.Target,
		OfferedPerSec:   cfg.Rate,
		DurationSeconds: cfg.Duration.Seconds(),
		WarmupSeconds:   cfg.Warmup.Seconds(),
		Workers:         len(workers),
		Status:          make(map[string]int64, nClasses),
		Verbs:           make(map[string]*VerbReport, len(cfg.Mix)),
	}
	for c := range classNames {
		rep.Status[classNames[c]] = 0
	}
	var all hist.Log2
	var allMax uint64
	for ei, entry := range cfg.Mix {
		var merged hist.Log2
		var maxNs uint64
		vr := &VerbReport{Status: make(map[string]int64, nClasses)}
		for c := range classNames {
			vr.Status[classNames[c]] = 0
		}
		for _, w := range workers {
			er := &w.entries[ei]
			for c := 0; c < nClasses; c++ {
				n := er.lat[c].Count()
				vr.Status[classNames[c]] += n
				vr.Ops += n
				merged.Merge(&er.lat[c])
			}
			if m := er.maxNs.Load(); m > maxNs {
				maxNs = m
			}
			vr.Items += er.items.Load()
		}
		vr.Latency = percentilesOf(&merged, maxNs)
		for c, n := range vr.Status {
			rep.Status[c] += n
		}
		rep.Ops += vr.Ops
		rep.Items += vr.Items
		all.Merge(&merged)
		if maxNs > allMax {
			allMax = maxNs
		}
		rep.Verbs[entry.Label()] = vr
	}
	rep.Latency = percentilesOf(&all, allMax)
	if sec := measured.Seconds(); sec > 0 {
		rep.AchievedPerSec = float64(rep.Ops) / sec
		rep.ItemsPerSec = float64(rep.Items) / sec
	}
	return rep
}

// Tick is one live progress sample, delivered to Config.OnTick.
type Tick struct {
	Elapsed  time.Duration
	Offered  float64
	Achieved float64 // completed measured ops over measured elapsed
	Ops      int64   // completed ops incl. warmup
	P50Ms    float64 // over the measured window so far
	P99Ms    float64
	Bad5xx   int64
	Errors   int64
	InWarmup bool
}

// tickStats merges the measured recorders just enough for a live line.
func tickStats(workers []*recorder, nEntries int) (ops int64, p50, p99 float64, bad5xx, errs int64) {
	var all hist.Log2
	for _, w := range workers {
		for ei := 0; ei < nEntries; ei++ {
			er := &w.entries[ei]
			for c := 0; c < nClasses; c++ {
				all.Merge(&er.lat[c])
			}
			bad5xx += er.lat[class5xx].Count()
			errs += er.lat[classErr].Count()
		}
	}
	buckets, count, _ := all.Snapshot()
	return count, hist.Log2Quantile(buckets, count, 0.5) / 1e6,
		hist.Log2Quantile(buckets, count, 0.99) / 1e6, bad5xx, errs
}
