// Package loadgen is an open-loop HTTP load harness for the streamagg
// server: a rate-gated, multi-worker generator that drives ingest and
// the six query verbs at a fixed offered rate and reports the latency a
// client actually observes.
//
// Open loop means the arrival schedule never waits for the server. Each
// operation i has an intended start time start + i/rate; workers sleep
// until that instant and then issue, and when the server (or a previous
// slow response) makes a worker late, it works through its backlog
// back-to-back — the per-tick quota is exactly the operations whose
// intended time has passed. Latency is always measured against the
// intended start, so a 200 ms server stall shows up in the tail of
// every operation it delayed, not just the one the server was slow on.
// Closed-loop harnesses that time only service latency systematically
// hide that queueing delay (coordinated omission); this one exists so
// the repo's BENCH trajectory can't.
package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Config parameterizes one run.
type Config struct {
	// Target is the server's base URL, e.g. "http://127.0.0.1:8080".
	Target string
	// Rate is the offered arrival rate in operations/second across all
	// workers. Required.
	Rate float64
	// Workers is the number of concurrent issuing goroutines (each
	// paces its own 1/Workers share of the schedule). Default 1.
	Workers int
	// Duration is the measured window. Required.
	Duration time.Duration
	// Warmup runs the same schedule before the measured window;
	// operations whose intended start falls in it are excluded from the
	// report.
	Warmup time.Duration
	// Mix is the weighted operation mix (see ParseMix).
	Mix Mix
	// Keys selects the item/probe distribution.
	Keys Keys
	// Batch is the number of items per ingest operation. Default 64.
	Batch int
	// Timeout bounds each request. Default 10s.
	Timeout time.Duration
	// Client overrides the HTTP client (tests); nil builds one with
	// keep-alive sized to Workers.
	Client *http.Client
	// OnTick, when non-nil, receives a live progress sample every
	// TickEvery (default 1s).
	OnTick    func(Tick)
	TickEvery time.Duration

	// onIssue observes every issued operation (test hook for the pacer
	// contract): the mix entry, the intended start, and the actual
	// issue instant.
	onIssue func(entry int, intended, issued time.Time)
}

func (cfg *Config) setDefaults() error {
	if cfg.Target == "" {
		return fmt.Errorf("loadgen: empty target URL")
	}
	if cfg.Rate <= 0 {
		return fmt.Errorf("loadgen: rate %v ops/s (want > 0)", cfg.Rate)
	}
	if cfg.Duration <= 0 {
		return fmt.Errorf("loadgen: duration %v (want > 0)", cfg.Duration)
	}
	if len(cfg.Mix) == 0 {
		return fmt.Errorf("loadgen: empty mix")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = time.Second
	}
	return nil
}

// engine is one run's shared state.
type engine struct {
	cfg          Config
	client       *http.Client
	ctx          context.Context
	pool         []uint64
	cum          []float64 // cumulative mix weights
	start        time.Time
	measureStart time.Time
	totalOps     int64
	meas         []*recorder // one per worker, measured window
	warm         *recorder   // shared, warmup ops
}

// Run executes the configured load and returns the report over the
// measured window. Canceling ctx stops issuing early; whatever
// completed is still reported.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	pool, err := cfg.Keys.pool()
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	totalOps := int64(cfg.Rate * (cfg.Warmup + cfg.Duration).Seconds())
	if totalOps < 1 {
		return nil, fmt.Errorf("loadgen: rate %v over %v yields no operations", cfg.Rate, cfg.Duration)
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Timeout: cfg.Timeout,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Workers * 2,
				MaxIdleConnsPerHost: cfg.Workers * 2,
			},
		}
	}
	e := &engine{
		cfg:      cfg,
		client:   client,
		ctx:      ctx,
		pool:     pool,
		cum:      make([]float64, len(cfg.Mix)),
		totalOps: totalOps,
		meas:     make([]*recorder, cfg.Workers),
		warm:     newRecorder(len(cfg.Mix)),
	}
	var sum float64
	for i, m := range cfg.Mix {
		sum += m.Weight
		e.cum[i] = sum
	}
	for w := range e.meas {
		e.meas[w] = newRecorder(len(cfg.Mix))
	}
	e.start = time.Now()
	e.measureStart = e.start.Add(cfg.Warmup)

	tickDone := make(chan struct{})
	if cfg.OnTick != nil {
		go e.tickLoop(tickDone)
	}
	done := make(chan struct{}, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			e.worker(w)
		}(w)
	}
	for w := 0; w < cfg.Workers; w++ {
		<-done
	}
	measured := time.Since(e.measureStart)
	close(tickDone)
	if measured < 0 {
		measured = 0
	}
	return buildReport(cfg, e.meas, measured), nil
}

// worker paces and issues operations w, w+Workers, w+2·Workers, ... of
// the global schedule. The request is fully built before the wait so
// generation cost never eats into the arrival gap, and the wait targets
// the operation's absolute intended time — lateness never accumulates
// into the schedule, only into the measured latency.
func (e *engine) worker(w int) {
	rng := rand.New(rand.NewSource(e.cfg.Keys.Seed + int64(w)*1_000_003))
	poolPos := w
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	var body bytes.Buffer
	perOp := float64(time.Second) / e.cfg.Rate
	for i := int64(w); i < e.totalOps; i += int64(e.cfg.Workers) {
		intended := e.start.Add(time.Duration(float64(i) * perOp))
		entry := e.drawEntry(rng)
		method, url, items := e.buildOp(entry, &poolPos, rng, &body)
		if d := time.Until(intended); d > 0 {
			timer.Reset(d)
			select {
			case <-e.ctx.Done():
				return
			case <-timer.C:
			}
		} else if e.ctx.Err() != nil {
			return
		}
		if e.cfg.onIssue != nil {
			e.cfg.onIssue(entry, intended, time.Now())
		}
		class := e.execute(method, url, body.Bytes())
		lat := time.Since(intended)
		rec := e.meas[w]
		if intended.Before(e.measureStart) {
			rec = e.warm
		}
		if class != class2xx {
			items = 0
		}
		rec.entries[entry].observe(class, lat, items)
	}
}

// drawEntry picks a mix entry with probability proportional to weight.
func (e *engine) drawEntry(rng *rand.Rand) int {
	r := rng.Float64() * e.cum[len(e.cum)-1]
	for i, c := range e.cum {
		if r < c {
			return i
		}
	}
	return len(e.cum) - 1
}

// buildOp renders one operation into (method, url, body); body is only
// used for ingest and returns the item count it carries.
func (e *engine) buildOp(entry int, poolPos *int, rng *rand.Rand, body *bytes.Buffer) (method, url string, items int) {
	m := e.cfg.Mix[entry]
	nextKey := func() uint64 {
		k := e.pool[*poolPos%len(e.pool)]
		*poolPos += e.cfg.Workers
		return k
	}
	switch m.Verb {
	case "ingest":
		body.Reset()
		body.WriteByte('[')
		for j := 0; j < e.cfg.Batch; j++ {
			if j > 0 {
				body.WriteByte(',')
			}
			body.Write(strconv.AppendUint(nil, nextKey(), 10))
		}
		body.WriteByte(']')
		return http.MethodPost, e.cfg.Target + "/v1/ingest", e.cfg.Batch
	case "estimate":
		return http.MethodGet,
			fmt.Sprintf("%s/v1/%s/estimate?item=%d", e.cfg.Target, m.Agg, nextKey()), 0
	case "value":
		return http.MethodGet, fmt.Sprintf("%s/v1/%s/value", e.cfg.Target, m.Agg), 0
	case "heavyhitters":
		return http.MethodGet, fmt.Sprintf("%s/v1/%s/heavyhitters?phi=0.01", e.cfg.Target, m.Agg), 0
	case "topk":
		return http.MethodGet, fmt.Sprintf("%s/v1/%s/topk?k=10", e.cfg.Target, m.Agg), 0
	case "rangecount":
		lo := nextKey() &^ 4095
		return http.MethodGet,
			fmt.Sprintf("%s/v1/%s/rangecount?lo=%d&hi=%d", e.cfg.Target, m.Agg, lo, lo+4095), 0
	case "quantile":
		qs := [...]string{"0.5", "0.9", "0.99"}
		return http.MethodGet,
			fmt.Sprintf("%s/v1/%s/quantile?q=%s", e.cfg.Target, m.Agg, qs[rng.Intn(len(qs))]), 0
	}
	panic("loadgen: unknown verb " + m.Verb) // ParseMix rejects these
}

// execute issues the request and classifies the outcome. The body is
// drained so keep-alive connections are reused.
func (e *engine) execute(method, url string, body []byte) int {
	var rd io.Reader
	if method == http.MethodPost {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(e.ctx, method, url, rd)
	if err != nil {
		return classErr
	}
	if rd != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := e.client.Do(req)
	if err != nil {
		return classErr
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return classOf(resp.StatusCode)
}

// tickLoop drives the live progress callback until done closes.
func (e *engine) tickLoop(done <-chan struct{}) {
	tk := time.NewTicker(e.cfg.TickEvery)
	defer tk.Stop()
	for {
		select {
		case <-done:
			return
		case now := <-tk.C:
			mOps, p50, p99, b5, errs := tickStats(e.meas, len(e.cfg.Mix))
			wOps, wp50, wp99, wb5, werrs := tickStats([]*recorder{e.warm}, len(e.cfg.Mix))
			t := Tick{
				Elapsed:  now.Sub(e.start),
				Offered:  e.cfg.Rate,
				Ops:      mOps + wOps,
				P50Ms:    p50,
				P99Ms:    p99,
				Bad5xx:   b5 + wb5,
				Errors:   errs + werrs,
				InWarmup: now.Before(e.measureStart),
			}
			if t.InWarmup {
				t.P50Ms, t.P99Ms = wp50, wp99
			} else if sec := now.Sub(e.measureStart).Seconds(); sec > 0 {
				t.Achieved = float64(mOps) / sec
			}
			e.cfg.OnTick(t)
		}
	}
}
