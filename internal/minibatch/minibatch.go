// Package minibatch implements the discretized-stream driver from the
// paper's processing model (Section 1): the stream arrives divided into
// minibatches; the engine processes each batch (internally in parallel)
// and queries are answered at batch boundaries. The driver measures
// throughput and per-batch latency for the benchmark harness.
package minibatch

import "time"

// Engine is anything that ingests minibatches of items.
type Engine interface {
	ProcessBatch(items []uint64)
}

// BitEngine is anything that ingests minibatches of bits.
type BitEngine interface {
	ProcessBits(bits []bool)
}

// Stats reports the outcome of a drive.
type Stats struct {
	Batches  int
	Items    int64
	Elapsed  time.Duration
	MaxBatch time.Duration // slowest single batch
}

// NsPerItem returns the average per-item processing cost.
func (s Stats) NsPerItem() float64 {
	if s.Items == 0 {
		return 0
	}
	return float64(s.Elapsed.Nanoseconds()) / float64(s.Items)
}

// ItemsPerSec returns the sustained ingestion throughput.
func (s Stats) ItemsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Items) / s.Elapsed.Seconds()
}

// Drive feeds the stream to the engine in minibatches of the given size
// and collects timing statistics.
func Drive(e Engine, stream []uint64, batch int) Stats {
	if batch < 1 {
		panic("minibatch: batch size must be >= 1")
	}
	var st Stats
	start := time.Now()
	for lo := 0; lo < len(stream); lo += batch {
		hi := lo + batch
		if hi > len(stream) {
			hi = len(stream)
		}
		b0 := time.Now()
		e.ProcessBatch(stream[lo:hi])
		if d := time.Since(b0); d > st.MaxBatch {
			st.MaxBatch = d
		}
		st.Batches++
		st.Items += int64(hi - lo)
	}
	st.Elapsed = time.Since(start)
	return st
}

// DriveBits feeds a bit stream to a bit engine in minibatches.
func DriveBits(e BitEngine, stream []bool, batch int) Stats {
	if batch < 1 {
		panic("minibatch: batch size must be >= 1")
	}
	var st Stats
	start := time.Now()
	for lo := 0; lo < len(stream); lo += batch {
		hi := lo + batch
		if hi > len(stream) {
			hi = len(stream)
		}
		b0 := time.Now()
		e.ProcessBits(stream[lo:hi])
		if d := time.Since(b0); d > st.MaxBatch {
			st.MaxBatch = d
		}
		st.Batches++
		st.Items += int64(hi - lo)
	}
	st.Elapsed = time.Since(start)
	return st
}

// Func adapts a function to the Engine interface.
type Func func(items []uint64)

// ProcessBatch implements Engine.
func (f Func) ProcessBatch(items []uint64) { f(items) }

// BitFunc adapts a function to the BitEngine interface.
type BitFunc func(bits []bool)

// ProcessBits implements BitEngine.
func (f BitFunc) ProcessBits(bits []bool) { f(bits) }
