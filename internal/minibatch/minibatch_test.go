package minibatch

import (
	"testing"
)

func TestDriveCoversStream(t *testing.T) {
	var got []uint64
	var batches int
	e := Func(func(items []uint64) {
		got = append(got, items...)
		batches++
	})
	stream := make([]uint64, 1000)
	for i := range stream {
		stream[i] = uint64(i)
	}
	st := Drive(e, stream, 64)
	if st.Items != 1000 || st.Batches != 16 || batches != 16 {
		t.Fatalf("stats: %+v (batches=%d)", st, batches)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("order broken at %d", i)
		}
	}
	if st.NsPerItem() < 0 || st.ItemsPerSec() < 0 {
		t.Fatal("negative rates")
	}
}

func TestDriveBits(t *testing.T) {
	var n int
	e := BitFunc(func(bits []bool) { n += len(bits) })
	st := DriveBits(e, make([]bool, 100), 33)
	if st.Items != 100 || st.Batches != 4 || n != 100 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDriveEmpty(t *testing.T) {
	st := Drive(Func(func([]uint64) {}), nil, 10)
	if st.Items != 0 || st.Batches != 0 {
		t.Fatalf("empty drive: %+v", st)
	}
	if st.NsPerItem() != 0 {
		t.Fatal("NsPerItem on empty should be 0")
	}
}

func TestDrivePanicsOnBadBatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Drive(Func(func([]uint64) {}), []uint64{1}, 0)
}

func TestZeroElapsedRates(t *testing.T) {
	var s Stats
	if s.ItemsPerSec() != 0 {
		t.Fatal("zero-elapsed ItemsPerSec should be 0")
	}
}
