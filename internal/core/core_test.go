package core

import (
	"testing"

	"repro/internal/css"
	"repro/internal/minibatch"
	"repro/internal/swfreq"
	"repro/internal/workload"
)

// TestAllEnginesOnOneStream drives the same Zipf stream through every
// frequency engine and validates each one's guarantee on the same ground
// truth — the cross-module integration check.
func TestAllEnginesOnOneStream(t *testing.T) {
	const (
		streamLen = 100000
		batchSize = 4096
		eps       = 0.01
		window    = int64(16384)
	)
	stream := workload.Zipf(42, streamLen, 1.2, 1<<16)

	engines := map[string]FrequencyEngine{
		"mg-infinite": NewInfiniteMG(eps),
		"sw-basic":    NewSliding(window, eps, swfreq.Basic),
		"sw-space":    NewSliding(window, eps, swfreq.SpaceEfficient),
		"sw-work":     NewSliding(window, eps, swfreq.WorkEfficient),
		"countmin":    NewCountMin(eps, 0.001, 99),
	}
	for _, batch := range workload.Batches(stream, batchSize) {
		for _, e := range engines {
			e.ProcessBatch(batch)
		}
	}

	// Ground truths.
	total := map[uint64]int64{}
	for _, it := range stream {
		total[it]++
	}
	inWindow := map[uint64]int64{}
	for _, it := range stream[streamLen-int(window):] {
		inWindow[it]++
	}

	m := float64(streamLen)
	for it, fe := range total {
		if est := engines["mg-infinite"].Estimate(it); est > fe || float64(fe-est) > eps*m {
			t.Fatalf("mg-infinite item %d: est %d true %d", it, est, fe)
		}
	}
	cmBad := 0
	for it, fe := range total {
		q := engines["countmin"].Estimate(it)
		if q < fe {
			t.Fatalf("countmin undercounts item %d", it)
		}
		if float64(q-fe) > eps*m {
			cmBad++
		}
	}
	if cmBad > len(total)/50 {
		t.Fatalf("countmin: %d/%d beyond bound", cmBad, len(total))
	}
	for _, name := range []string{"sw-basic", "sw-space", "sw-work"} {
		for it, fe := range inWindow {
			est := engines[name].Estimate(it)
			if est > fe || float64(fe-est) > eps*float64(window)+1e-9 {
				t.Fatalf("%s item %d: est %d true %d", name, it, est, fe)
			}
		}
	}
	// Space ordering: the pruned sliding variants must not exceed the
	// basic variant's footprint on a skewed stream with many distinct
	// items; countmin and mg are O(1/ε · polylog) regardless.
	if engines["sw-space"].SpaceWords() > engines["sw-basic"].SpaceWords()*2 {
		t.Fatalf("space-efficient (%d words) larger than basic (%d words)",
			engines["sw-space"].SpaceWords(), engines["sw-basic"].SpaceWords())
	}
}

// TestBasicCounterAgainstSumConsistency: a 0/1 value stream must make
// WindowSum and BasicCounter agree (both estimate the same quantity).
func TestBasicCounterAgainstSumConsistency(t *testing.T) {
	n := int64(2048)
	eps := 0.05
	bc := NewBasicCounter(n, eps)
	ws := NewWindowSum(n, 1, eps)
	bits := workload.Bits(7, 1<<15, 0.3)
	var truth []bool
	for _, batch := range workload.BitBatches(bits, 1024) {
		bc.Advance(css.FromBools(batch))
		vals := make([]uint64, len(batch))
		for i, b := range batch {
			if b {
				vals[i] = 1
			}
		}
		ws.Advance(vals)
		truth = append(truth, batch...)
	}
	var m int64
	start := len(truth) - int(n)
	for _, b := range truth[start:] {
		if b {
			m++
		}
	}
	for name, est := range map[string]int64{"basic": bc.Estimate(), "sum": ws.Estimate()} {
		if est < m || float64(est) > (1+eps)*float64(m) {
			t.Fatalf("%s: est %d outside [%d, %g]", name, est, m, (1+eps)*float64(m))
		}
	}
}

// TestMinibatchDriverIntegration runs an engine through the driver and
// checks the stats plumbing.
func TestMinibatchDriverIntegration(t *testing.T) {
	e := NewSliding(4096, 0.05, swfreq.WorkEfficient)
	stream := workload.Zipf(3, 50000, 1.1, 1<<12)
	st := minibatch.Drive(minibatch.Func(e.ProcessBatch), stream, 2000)
	if st.Items != 50000 || st.Batches != 25 {
		t.Fatalf("driver stats: %+v", st)
	}
	if st.NsPerItem() <= 0 {
		t.Fatal("no time recorded")
	}
}

// TestQueriesBetweenEveryBatch interleaves queries with ingestion across
// all engines (the paper's interleaved update/query model).
func TestQueriesBetweenEveryBatch(t *testing.T) {
	window := int64(2000)
	eps := 0.05
	engines := []FrequencyEngine{
		NewInfiniteMG(eps),
		NewSliding(window, eps, swfreq.WorkEfficient),
		NewCountMin(eps, 0.01, 5),
	}
	stream := workload.HeavyMix(9, 30000, []uint64{1, 2, 3}, []float64{0.3, 0.15, 0.07}, 1<<20)
	for _, batch := range workload.Batches(stream, 500) {
		for _, e := range engines {
			e.ProcessBatch(batch)
			_ = e.Estimate(1)
			_ = e.Estimate(1 << 50) // never-seen item
		}
	}
	for i, e := range engines {
		if e.Estimate(1) <= e.Estimate(3) {
			t.Fatalf("engine %d: heavy item 1 not dominant (%d vs %d)",
				i, e.Estimate(1), e.Estimate(3))
		}
	}
}
