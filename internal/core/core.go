// Package core assembles the paper's contributions behind one umbrella:
// constructors for every engine the paper defines, typed so the
// experiment harness (cmd/aggbench) and the integration tests can sweep
// across them uniformly. The algorithmic substance lives in the sibling
// packages: snapshot and sbbc (Section 3), bcount and wsum (Section 4),
// hist and mg (Sections 2, 5.1-5.2), swfreq (Section 5.3), cms
// (Section 6); this package provides the cross-module composition and is
// where whole-pipeline integration tests reside.
package core

import (
	"repro/internal/bcount"
	"repro/internal/cms"
	"repro/internal/mg"
	"repro/internal/swfreq"
	"repro/internal/wsum"
)

// FrequencyEngine abstracts everything that estimates item frequencies
// from minibatches (infinite-window MG, the sliding-window variants, and
// the count-min sketch behave uniformly for the accuracy experiments).
type FrequencyEngine interface {
	ProcessBatch(items []uint64)
	Estimate(item uint64) int64
	SpaceWords() int
}

// cmsAdapter lets the count-min sketch satisfy FrequencyEngine (Query is
// its estimate).
type cmsAdapter struct{ *cms.Sketch }

func (a cmsAdapter) Estimate(item uint64) int64 { return a.Query(item) }

// NewInfiniteMG returns the paper's infinite-window engine (Theorem 5.2).
func NewInfiniteMG(epsilon float64) FrequencyEngine { return mgAdapter{mg.New(epsilon)} }

// mgAdapter adapts *mg.Summary (method set already matches).
type mgAdapter struct{ *mg.Summary }

// NewSliding returns a sliding-window engine of the given variant.
func NewSliding(n int64, epsilon float64, v swfreq.Variant) FrequencyEngine {
	return swfreq.New(n, epsilon, v)
}

// NewCountMin returns a count-min engine (Theorem 6.1).
func NewCountMin(epsilon, delta float64, seed int64) FrequencyEngine {
	return cmsAdapter{cms.New(epsilon, delta, seed)}
}

// NewBasicCounter returns the sliding-window basic counter
// (Theorem 4.1).
func NewBasicCounter(n int64, epsilon float64) *bcount.Counter {
	return bcount.New(n, epsilon)
}

// NewWindowSum returns the sliding-window summer (Theorem 4.2).
func NewWindowSum(n int64, r uint64, epsilon float64) *wsum.Summer {
	return wsum.New(n, r, epsilon)
}
