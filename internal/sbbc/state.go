package sbbc

import (
	"fmt"

	"repro/internal/snapshot"
)

// State is the serializable form of a Counter.
type State struct {
	N     int64
	Sigma int64
	R     int64
	Snap  snapshot.State
}

// State captures the counter for serialization.
func (c *Counter) State() State {
	return State{N: c.n, Sigma: c.sigma, R: c.r, Snap: c.snap.State()}
}

// FromState reconstructs a counter, validating invariants.
func FromState(st State) (*Counter, error) {
	if st.N < 1 {
		return nil, fmt.Errorf("sbbc: state window %d < 1", st.N)
	}
	if st.R < 0 || st.R > st.N {
		return nil, fmt.Errorf("sbbc: state coverage %d outside [0, %d]", st.R, st.N)
	}
	snap, err := snapshot.FromState(st.Snap)
	if err != nil {
		return nil, err
	}
	return &Counter{snap: snap, n: st.N, sigma: st.Sigma, r: st.R}, nil
}
