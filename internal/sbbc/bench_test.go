package sbbc

import (
	"fmt"
	"testing"

	"repro/internal/css"
)

func BenchmarkAdvance(b *testing.B) {
	for _, gamma := range []int64{1, 64, 4096} {
		b.Run(fmt.Sprintf("gamma%d", gamma), func(b *testing.B) {
			seg := css.FromFunc(1<<14, func(i int) bool { return i%4 == 0 })
			c := New(1<<20, 0, gamma)
			b.SetBytes(1 << 14)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Advance(seg)
			}
		})
	}
}

func BenchmarkAdvanceWithCapacity(b *testing.B) {
	seg := css.FromFunc(1<<14, func(i int) bool { return i%2 == 0 })
	c := New(1<<20, 64, 16)
	b.SetBytes(1 << 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Advance(seg)
	}
}

func BenchmarkQueryAndValue(b *testing.B) {
	c := New(1<<16, 8, 32)
	c.Advance(css.FromFunc(1<<16, func(i int) bool { return i%3 == 0 }))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v, ok := c.Query(); ok {
			_ = v
		}
		_ = c.ValueForWindow(1 << 12)
	}
}
