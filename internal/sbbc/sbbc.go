// Package sbbc implements the (σ,λ)-space-bounded block counter of
// Section 3.2 (Theorem 3.4): a γ-snapshot (γ = max(1, ⌊λ/2⌋)) kept
// together with demarcation information (t, r) that records the window
// the snapshot actually covers. The counter tracks a window of size n,
// but caps its live sampled entries at 2σ; when the cap is exceeded the
// oldest entries are dropped and the coverage r is truncated, and Query
// reports OVERFLOWED (ok=false) until the window slides past the
// truncation point.
//
// Guarantees (for γ >= 1, window count m of the last n positions):
//   - if Query reports overflow, then m >= 2γ·(σ-1) — the "coarse lower
//     bound" the basic-counting ladder exploits (with γ = λ/2 this is the
//     paper's m >= σλ up to rounding; the σ-1 accounts for the window
//     continuing to slide between the truncation and the query while the
//     retained 2σ sampled entries, worth at least 2σγ, stay in coverage);
//   - otherwise m <= Value <= m + 2γ <= m + λ (Corollary 3.5).
package sbbc

import (
	"repro/internal/css"
	"repro/internal/snapshot"
)

// Counter is a (σ,λ)-space-bounded block counter for a window of size n.
type Counter struct {
	snap  *snapshot.Snapshot
	n     int64 // window size being tracked
	sigma int64 // capacity parameter; <= 0 means unbounded
	r     int64 // coverage: the snapshot vouches for the last r positions
}

// New creates a counter for window size n with capacity parameter sigma
// (sigma <= 0 means unbounded — the (∞, λ)-SBBC the frequency-estimation
// algorithms use) and block size gamma = max(1, ⌊λ/2⌋) chosen by the
// caller. n must be >= 1.
func New(n, sigma, gamma int64) *Counter {
	if n < 1 {
		panic("sbbc: window size must be >= 1")
	}
	return &Counter{snap: snapshot.New(gamma), n: n, sigma: sigma, r: 0}
}

// NewFromLambda creates a counter with the paper's parameterization:
// additive error budget lambda, realized as gamma = max(1, ⌊lambda/2⌋).
func NewFromLambda(n, sigma int64, lambda float64) *Counter {
	gamma := int64(lambda / 2)
	if gamma < 1 {
		gamma = 1
	}
	return New(n, sigma, gamma)
}

// Gamma returns the snapshot block size.
func (c *Counter) Gamma() int64 { return c.snap.Gamma() }

// N returns the tracked window size.
func (c *Counter) N() int64 { return c.n }

// T returns the number of stream positions consumed.
func (c *Counter) T() int64 { return c.snap.T() }

// Coverage returns r, the number of trailing positions the snapshot
// covers (r < N means overflowed).
func (c *Counter) Coverage() int64 { return c.r }

// Advance incorporates a minibatch encoded as a CSS (Theorem 3.4's
// advance): extend the snapshot, slide/shrink the window, and truncate
// coverage if the σ capacity is exceeded. Work O(min(σ, m/γ) + count/γ)
// plus the cost of reading the CSS; polylog depth.
func (c *Counter) Advance(seg css.Segment) {
	c.snap.Append(seg)
	c.r += seg.Len
	if c.r > c.n {
		c.r = c.n
	}
	c.snap.EvictBefore(c.snap.T() - c.r + 1)
	if c.sigma > 0 {
		if over := c.snap.NumBlocks() - int(2*c.sigma); over > 0 {
			lastBlock := c.snap.DropOldest(over)
			// The snapshot now only vouches for positions after the end of
			// the dropped block.
			if cov := c.snap.T() - lastBlock*c.snap.Gamma(); cov < c.r {
				c.r = cov
			}
		}
	}
}

// Overflowed reports whether the counter's coverage has been truncated
// below the tracked window. While the stream is shorter than the window
// (t < n), full coverage means covering the whole stream so far.
func (c *Counter) Overflowed() bool {
	want := c.n
	if t := c.snap.T(); t < want {
		want = t
	}
	return c.r < want
}

// Query returns the snapshot value for the window and ok=true, or ok=false
// if the counter is overflowed (the paper's OVERFLOWED sentinel).
func (c *Counter) Query() (value int64, ok bool) {
	if c.Overflowed() {
		return 0, false
	}
	return c.snap.Value(), true
}

// Value returns the snapshot value regardless of overflow state. Callers
// that have checked Overflowed (or run with sigma <= 0) use this.
func (c *Counter) Value() int64 { return c.snap.Value() }

// ValueForWindow returns the counter's value for a hypothetically smaller
// window of the last w positions (Lemma 3.3's shrink) without mutating
// state. Used by the predict step of the work-efficient algorithm.
func (c *Counter) ValueForWindow(w int64) int64 {
	if w > c.r {
		w = c.r
	}
	return c.snap.ValueForWindow(w)
}

// Decrement reduces the counter's value by exactly min(r, Value)
// (Theorem 3.4's decrement). Only meaningful when not overflowed.
func (c *Counter) Decrement(r int64) { c.snap.Decrement(r) }

// SpaceWords estimates the counter's memory footprint in 64-bit words.
func (c *Counter) SpaceWords() int { return c.snap.SpaceWords() + 3 }

// OverflowThreshold returns 2γ·(σ-1), a lower bound on the window's true
// count whenever the counter reports overflow (0 when unbounded).
func (c *Counter) OverflowThreshold() int64 {
	if c.sigma <= 0 {
		return 0
	}
	return 2 * c.snap.Gamma() * (c.sigma - 1)
}
