package sbbc

import (
	"math/rand"
	"testing"

	"repro/internal/css"
)

// ref tracks the true stream to validate counter guarantees.
type ref struct {
	bits []bool
}

func (r *ref) append(seg []bool) { r.bits = append(r.bits, seg...) }

func (r *ref) onesInLast(n int64) int64 {
	start := int64(len(r.bits)) - n
	if start < 0 {
		start = 0
	}
	var m int64
	for _, b := range r.bits[start:] {
		if b {
			m++
		}
	}
	return m
}

func randSeg(rng *rand.Rand, maxLen int, density float64) []bool {
	n := rng.Intn(maxLen + 1)
	seg := make([]bool, n)
	for i := range seg {
		seg[i] = rng.Float64() < density
	}
	return seg
}

// TestTheorem34Contract drives random minibatches and asserts the full
// query contract: overflow implies m >= 2γ(σ-1); otherwise the value is
// within [m, m+2γ].
func TestTheorem34Contract(t *testing.T) {
	cases := []struct {
		n, sigma, gamma int64
	}{
		{100, 4, 2},
		{100, 2, 5},
		{1000, 8, 10},
		{50, 1, 1},
		{500, 3, 25},
		{64, 16, 1},
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(tc.n*31 + tc.sigma*7 + tc.gamma))
		c := New(tc.n, tc.sigma, tc.gamma)
		r := &ref{}
		overflowSeen, okSeen := false, false
		for step := 0; step < 300; step++ {
			density := []float64{0.9, 0.1, 0.5, 0}[step%4]
			seg := randSeg(rng, int(tc.n)/3+1, density)
			c.Advance(css.FromBools(seg))
			r.append(seg)
			m := r.onesInLast(tc.n)
			if v, ok := c.Query(); ok {
				okSeen = true
				if v < m || v > m+2*tc.gamma {
					t.Fatalf("n=%d σ=%d γ=%d step=%d: value %d outside [%d,%d]",
						tc.n, tc.sigma, tc.gamma, step, v, m, m+2*tc.gamma)
				}
			} else {
				overflowSeen = true
				if thr := c.OverflowThreshold(); m < thr {
					t.Fatalf("n=%d σ=%d γ=%d step=%d: overflowed but m=%d < threshold %d",
						tc.n, tc.sigma, tc.gamma, step, m, thr)
				}
			}
			if nb := c.SpaceWords(); tc.sigma > 0 && nb > int(2*tc.sigma)+8 {
				t.Fatalf("space %d exceeds cap for σ=%d", nb, tc.sigma)
			}
		}
		_ = okSeen
		_ = overflowSeen
	}
}

// TestWarmupNotOverflowed: a fresh counter observing fewer than n
// positions covers the whole stream and must not report overflow.
func TestWarmupNotOverflowed(t *testing.T) {
	c := New(1000, 4, 2)
	if c.Overflowed() {
		t.Fatal("fresh counter overflowed")
	}
	c.Advance(css.FromBools([]bool{true, false, true}))
	if c.Overflowed() {
		t.Fatal("warm-up counter overflowed")
	}
	if v, ok := c.Query(); !ok || v < 2 || v > 2+2*c.Gamma() {
		t.Fatalf("warm-up query = %d, %v", v, ok)
	}
}

// TestUnboundedNeverOverflows: sigma <= 0 disables capacity truncation.
func TestUnboundedNeverOverflows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := New(200, 0, 3)
	r := &ref{}
	for step := 0; step < 100; step++ {
		seg := randSeg(rng, 100, 0.8)
		c.Advance(css.FromBools(seg))
		r.append(seg)
		v, ok := c.Query()
		if !ok {
			t.Fatal("unbounded counter overflowed")
		}
		m := r.onesInLast(200)
		if v < m || v > m+2*c.Gamma() {
			t.Fatalf("step %d: value %d outside [%d,%d]", step, v, m, m+6)
		}
	}
}

// TestOverflowHeals: after truncation, a quiet stream lets the window
// slide past the truncation point and the counter recovers.
func TestOverflowHeals(t *testing.T) {
	c := New(50, 2, 1) // capacity 4 sampled entries, γ=1: overflow fast
	dense := make([]bool, 40)
	for i := range dense {
		dense[i] = true
	}
	c.Advance(css.FromBools(dense))
	if !c.Overflowed() {
		t.Fatal("expected overflow after dense burst")
	}
	// 60 zeros slide the burst fully out of the window.
	c.Advance(css.FromBools(make([]bool, 60)))
	if c.Overflowed() {
		t.Fatal("counter did not heal after window slid past burst")
	}
	if v, ok := c.Query(); !ok || v != 0 {
		t.Fatalf("healed counter value = %d, ok=%v; want 0, true", v, ok)
	}
}

func TestDecrementReducesValue(t *testing.T) {
	c := New(100, 0, 2)
	bits := make([]bool, 30)
	for i := range bits {
		bits[i] = true
	}
	c.Advance(css.FromBools(bits))
	before := c.Value()
	c.Decrement(7)
	if got := c.Value(); got != before-7 {
		t.Fatalf("decrement: %d -> %d, want %d", before, got, before-7)
	}
	c.Decrement(before) // over-decrement clamps at 0
	if got := c.Value(); got != 0 {
		t.Fatalf("over-decrement left value %d", got)
	}
}

func TestValueForWindow(t *testing.T) {
	c := New(1000, 0, 1) // exact
	r := &ref{}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		seg := randSeg(rng, 80, 0.4)
		c.Advance(css.FromBools(seg))
		r.append(seg)
	}
	for _, w := range []int64{1, 10, 100, 1000} {
		if got, want := c.ValueForWindow(w), r.onesInLast(w); got != want {
			t.Fatalf("w=%d: ValueForWindow=%d want %d", w, got, want)
		}
	}
}

func TestNewFromLambda(t *testing.T) {
	if g := NewFromLambda(10, 1, 7).Gamma(); g != 3 {
		t.Fatalf("lambda=7: gamma=%d want 3", g)
	}
	if g := NewFromLambda(10, 1, 0.5).Gamma(); g != 1 {
		t.Fatalf("lambda=0.5: gamma=%d want 1", g)
	}
	if g := NewFromLambda(10, 1, 2).Gamma(); g != 1 {
		t.Fatalf("lambda=2: gamma=%d want 1", g)
	}
}

func TestNewPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, ...) did not panic")
		}
	}()
	New(0, 1, 1)
}

func TestAccessors(t *testing.T) {
	c := New(42, 5, 3)
	if c.N() != 42 || c.Gamma() != 3 || c.T() != 0 || c.Coverage() != 0 {
		t.Fatalf("accessors: N=%d γ=%d T=%d r=%d", c.N(), c.Gamma(), c.T(), c.Coverage())
	}
	c.Advance(css.Segment{Len: 10})
	if c.T() != 10 || c.Coverage() != 10 {
		t.Fatalf("after advance: T=%d r=%d", c.T(), c.Coverage())
	}
}

// TestBatchLargerThanWindow: a single minibatch longer than the window
// must behave like the window over its suffix.
func TestBatchLargerThanWindow(t *testing.T) {
	c := New(10, 0, 1)
	bits := make([]bool, 100)
	for i := range bits {
		bits[i] = i%2 == 0
	}
	c.Advance(css.FromBools(bits))
	// window = last 10 positions (91..100, 0-based 90..99): even 0-based
	// indices are ones -> 5 ones.
	if v, ok := c.Query(); !ok || v != 5 {
		t.Fatalf("value=%d ok=%v want 5,true", v, ok)
	}
}
