// Package bcount implements parallel sliding-window basic counting
// (Theorem 4.1): an ε-relative-error estimate of the number of 1s in the
// last n positions of a bit stream, in O(ε⁻¹ log n) space, with minibatch
// ingestion costing O(S + µ) work and polylog depth.
//
// The structure is a geometric ladder of space-bounded block counters
// Γ_0, ..., Γ_k with λ_i = εn/2^i and a common capacity σ = ⌈8/ε⌉
// (a constant-factor-larger σ than the paper's 2/ε, which pays for the
// integer rounding of γ = max(1, ⌊λ/2⌋) and for the window sliding
// between a counter's truncation and the query; see internal/sbbc). A
// query walks to the finest counter that has not overflowed: overflow of
// the next-finer counter certifies m large enough that this counter's
// additive error λ_i is at most εm; the finest counter (γ=1) is exact,
// covering small m.
package bcount

import (
	"repro/internal/css"
	"repro/internal/parallel"
	"repro/internal/sbbc"
)

// Counter estimates the number of 1s in a sliding window of a bit stream.
type Counter struct {
	n       int64
	epsilon float64
	ladder  []*sbbc.Counter // coarse (i=0) to fine (i=k)
}

// New creates a basic counter for window size n and relative error
// epsilon in (0, 1].
func New(n int64, epsilon float64) *Counter {
	if n < 1 {
		panic("bcount: window size must be >= 1")
	}
	if epsilon <= 0 || epsilon > 1 {
		panic("bcount: epsilon must be in (0, 1]")
	}
	sigma := int64(8/epsilon) + 1
	var ladder []*sbbc.Counter
	for lambda := epsilon * float64(n); ; lambda /= 2 {
		ladder = append(ladder, sbbc.NewFromLambda(n, sigma, lambda))
		if lambda < 1 {
			break
		}
	}
	return &Counter{n: n, epsilon: epsilon, ladder: ladder}
}

// N returns the window size.
func (c *Counter) N() int64 { return c.n }

// Epsilon returns the configured relative error bound.
func (c *Counter) Epsilon() float64 { return c.epsilon }

// Levels returns the number of SBBCs in the ladder (k+1 = O(log n)).
func (c *Counter) Levels() int { return len(c.ladder) }

// Advance incorporates a minibatch given as a CSS into every ladder level
// in parallel (Theorem 4.1's update): total work O(ε⁻¹ log n + µ),
// polylog depth.
func (c *Counter) Advance(seg css.Segment) {
	parallel.ForGrain(len(c.ladder), 1, func(i int) {
		c.ladder[i].Advance(seg)
	})
}

// Estimate returns the current estimate of the number of 1s in the
// window: m <= Estimate() <= (1+ε)·m.
func (c *Counter) Estimate() int64 {
	i := c.finestLive()
	return c.ladder[i].Value()
}

// finestLive returns the index of the finest (largest-i) ladder level
// that has not overflowed. Level 0 never overflows (its capacity exceeds
// any possible window count).
func (c *Counter) finestLive() int {
	for i := len(c.ladder) - 1; i > 0; i-- {
		if !c.ladder[i].Overflowed() {
			return i
		}
	}
	return 0
}

// FinestLive exposes the selected ladder level for tests and diagnostics.
func (c *Counter) FinestLive() int { return c.finestLive() }

// SpaceWords estimates the memory footprint in 64-bit words.
func (c *Counter) SpaceWords() int {
	s := 3
	for _, l := range c.ladder {
		s += l.SpaceWords()
	}
	return s
}
