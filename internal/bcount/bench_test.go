package bcount

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/css"
)

func BenchmarkAdvance(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bits := make([]bool, 1<<14)
	for i := range bits {
		bits[i] = rng.Intn(3) == 0
	}
	seg := css.FromBools(bits)
	for _, n := range []int64{1 << 16, 1 << 22} {
		for _, eps := range []float64{0.1, 0.001} {
			b.Run(fmt.Sprintf("n%d-eps%g", n, eps), func(b *testing.B) {
				c := New(n, eps)
				b.SetBytes(1 << 14)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.Advance(seg)
				}
			})
		}
	}
}

func BenchmarkEstimate(b *testing.B) {
	c := New(1<<20, 0.01)
	rng := rand.New(rand.NewSource(2))
	for k := 0; k < 32; k++ {
		bits := make([]bool, 1<<14)
		for i := range bits {
			bits[i] = rng.Intn(2) == 0
		}
		c.Advance(css.FromBools(bits))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Estimate()
	}
}
