package bcount

import (
	"fmt"

	"repro/internal/sbbc"
)

// State is the serializable form of a Counter.
type State struct {
	N       int64
	Epsilon float64
	Ladder  []sbbc.State
}

// State captures the counter for serialization.
func (c *Counter) State() State {
	st := State{N: c.n, Epsilon: c.epsilon}
	for _, l := range c.ladder {
		st.Ladder = append(st.Ladder, l.State())
	}
	return st
}

// FromState reconstructs a counter, validating invariants.
func FromState(st State) (*Counter, error) {
	if st.N < 1 || st.Epsilon <= 0 || st.Epsilon > 1 {
		return nil, fmt.Errorf("bcount: bad state params n=%d eps=%v", st.N, st.Epsilon)
	}
	if len(st.Ladder) == 0 {
		return nil, fmt.Errorf("bcount: state has empty ladder")
	}
	c := &Counter{n: st.N, epsilon: st.Epsilon}
	for _, ls := range st.Ladder {
		l, err := sbbc.FromState(ls)
		if err != nil {
			return nil, err
		}
		c.ladder = append(c.ladder, l)
	}
	return c, nil
}
