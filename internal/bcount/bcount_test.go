package bcount

import (
	"math/rand"
	"testing"

	"repro/internal/css"
)

type ref struct{ bits []bool }

func (r *ref) append(seg []bool) { r.bits = append(r.bits, seg...) }
func (r *ref) onesInLast(n int64) int64 {
	start := int64(len(r.bits)) - n
	if start < 0 {
		start = 0
	}
	var m int64
	for _, b := range r.bits[start:] {
		if b {
			m++
		}
	}
	return m
}

func randSeg(rng *rand.Rand, maxLen int, density float64) []bool {
	n := rng.Intn(maxLen + 1)
	seg := make([]bool, n)
	for i := range seg {
		seg[i] = rng.Float64() < density
	}
	return seg
}

// TestTheorem41RelativeError sweeps window sizes, epsilons, and densities
// and asserts the two-sided guarantee m <= est <= (1+ε)m.
func TestTheorem41RelativeError(t *testing.T) {
	for _, n := range []int64{16, 100, 1000, 8192} {
		for _, eps := range []float64{0.5, 0.1, 0.01} {
			rng := rand.New(rand.NewSource(n*17 + int64(eps*1000)))
			c := New(n, eps)
			r := &ref{}
			for step := 0; step < 80; step++ {
				density := []float64{0.9, 0, 0.5, 0.02}[step%4]
				seg := randSeg(rng, int(n)/2+1, density)
				c.Advance(css.FromBools(seg))
				r.append(seg)
				m := r.onesInLast(n)
				est := c.Estimate()
				if est < m {
					t.Fatalf("n=%d ε=%g step=%d: est %d < m %d", n, eps, step, est, m)
				}
				if float64(est) > (1+eps)*float64(m)+1e-9 {
					t.Fatalf("n=%d ε=%g step=%d: est %d > (1+ε)m = %g (m=%d)",
						n, eps, step, est, (1+eps)*float64(m), m)
				}
			}
		}
	}
}

func TestSmallCountsExact(t *testing.T) {
	// With few 1s in the window, the finest (γ=1) level answers exactly.
	c := New(1000, 0.1)
	r := &ref{}
	rng := rand.New(rand.NewSource(5))
	for step := 0; step < 40; step++ {
		seg := randSeg(rng, 100, 0.005)
		c.Advance(css.FromBools(seg))
		r.append(seg)
		m := r.onesInLast(1000)
		if est := c.Estimate(); est != m {
			// The estimate may exceed m only when coarse levels answer —
			// which requires m beyond the finest level's overflow bound.
			if m < 16 {
				t.Fatalf("step %d: sparse est %d != m %d", step, est, m)
			}
		}
	}
}

func TestAllOnes(t *testing.T) {
	n := int64(500)
	c := New(n, 0.05)
	ones := make([]bool, 2000)
	for i := range ones {
		ones[i] = true
	}
	c.Advance(css.FromBools(ones))
	m := n // window saturated with 1s
	est := c.Estimate()
	if est < m || float64(est) > 1.05*float64(m) {
		t.Fatalf("est %d outside [%d, %g]", est, m, 1.05*float64(m))
	}
}

func TestAllZeros(t *testing.T) {
	c := New(256, 0.1)
	c.Advance(css.FromBools(make([]bool, 1000)))
	if est := c.Estimate(); est != 0 {
		t.Fatalf("all-zero stream: est = %d", est)
	}
}

func TestManySmallBatches(t *testing.T) {
	n := int64(200)
	eps := 0.1
	c := New(n, eps)
	r := &ref{}
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 3000; step++ {
		seg := randSeg(rng, 3, 0.5)
		c.Advance(css.FromBools(seg))
		r.append(seg)
	}
	m := r.onesInLast(n)
	est := c.Estimate()
	if est < m || float64(est) > (1+eps)*float64(m) {
		t.Fatalf("est %d outside [%d, %g]", est, m, (1+eps)*float64(m))
	}
}

func TestLevels(t *testing.T) {
	c := New(1<<20, 0.01)
	// k = min{i : εn/2^i < 1}: εn = 2^20/100 ~ 10486, so ~15 levels.
	if c.Levels() < 10 || c.Levels() > 20 {
		t.Fatalf("Levels = %d, want ~15", c.Levels())
	}
	if c.N() != 1<<20 || c.Epsilon() != 0.01 {
		t.Fatalf("accessors wrong")
	}
}

// TestSpaceBound verifies the O(ε⁻¹ log n) space bound with an explicit
// constant: total words <= C * (1/ε) * levels for C covering σ=8/ε+1 and
// per-counter overhead, even after a dense stream.
func TestSpaceBound(t *testing.T) {
	n := int64(1 << 16)
	eps := 0.05
	c := New(n, eps)
	rng := rand.New(rand.NewSource(1))
	for step := 0; step < 30; step++ {
		c.Advance(css.FromBools(randSeg(rng, 1<<12, 0.9)))
	}
	perLevel := int(2*(8/eps+1)) + 16 // 2σ sampled entries + overhead
	budget := c.Levels()*perLevel + 8
	if got := c.SpaceWords(); got > budget {
		t.Fatalf("SpaceWords = %d exceeds budget %d", got, budget)
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 0.1) },
		func() { New(10, 0) },
		func() { New(10, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestEpsilonOne(t *testing.T) {
	// ε=1 is the loosest valid setting: est <= 2m must still hold.
	c := New(100, 1)
	r := &ref{}
	rng := rand.New(rand.NewSource(4))
	for step := 0; step < 50; step++ {
		seg := randSeg(rng, 50, 0.7)
		c.Advance(css.FromBools(seg))
		r.append(seg)
		m := r.onesInLast(100)
		est := c.Estimate()
		if est < m || est > 2*m {
			t.Fatalf("step %d: est %d outside [%d, %d]", step, est, m, 2*m)
		}
	}
}
