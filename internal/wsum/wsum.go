// Package wsum implements the parallel sliding-window Sum (Theorem 4.2):
// an ε-relative-error estimate of the sum of the last n stream values,
// each a non-negative integer at most R. The value stream is bit-sliced
// into ⌈log₂(R+1)⌉ binary streams; each bit position is tracked with a
// basic counter (Theorem 4.1) and the estimate is the weighted sum of the
// per-bit counts. Space O(ε⁻¹ log n log R); a minibatch of length µ costs
// O((S+µ) log R) work and polylog depth.
package wsum

import (
	"math/bits"

	"repro/internal/bcount"
	"repro/internal/css"
	"repro/internal/parallel"
)

// Summer estimates the sliding-window sum of a stream of integers in
// [0, R].
type Summer struct {
	n      int64
	r      uint64
	eps    float64
	slices []*bcount.Counter // slices[i] counts 1s of bit i
}

// New creates a Summer for window size n, value bound R, and relative
// error epsilon in (0, 1].
func New(n int64, r uint64, epsilon float64) *Summer {
	nbits := bits.Len64(r)
	if nbits == 0 {
		nbits = 1 // degenerate R=0: a single always-zero bit stream
	}
	slices := make([]*bcount.Counter, nbits)
	for i := range slices {
		slices[i] = bcount.New(n, epsilon)
	}
	return &Summer{n: n, r: r, eps: epsilon, slices: slices}
}

// N returns the window size.
func (s *Summer) N() int64 { return s.n }

// R returns the maximum permitted value.
func (s *Summer) R() uint64 { return s.r }

// Bits returns the number of bit slices maintained.
func (s *Summer) Bits() int { return len(s.slices) }

// Advance incorporates a minibatch of values. Every value must be <= R;
// Advance panics otherwise (the public API validates before calling).
// The log R bit slices are extracted and ingested in parallel.
func (s *Summer) Advance(values []uint64) {
	for _, v := range values {
		if v > s.r {
			panic("wsum: value exceeds R")
		}
	}
	parallel.ForGrain(len(s.slices), 1, func(i int) {
		seg := css.FromFunc(len(values), func(j int) bool {
			return values[j]>>uint(i)&1 == 1
		})
		s.slices[i].Advance(seg)
	})
}

// Estimate returns the current estimate of the window sum:
// true <= Estimate() <= (1+ε)·true.
func (s *Summer) Estimate() int64 {
	// Sum of log R terms: parallel reduce (the paper's O(log log R)-depth
	// final add).
	return parallel.Reduce(len(s.slices), 1, int64(0),
		func(a, b int64) int64 { return a + b },
		func(lo, hi int) int64 {
			var t int64
			for i := lo; i < hi; i++ {
				t += s.slices[i].Estimate() << uint(i)
			}
			return t
		})
}

// SpaceWords estimates the memory footprint in 64-bit words.
func (s *Summer) SpaceWords() int {
	total := 4
	for _, c := range s.slices {
		total += c.SpaceWords()
	}
	return total
}
