package wsum

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkAdvance(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, R := range []uint64{255, 65535} {
		vals := make([]uint64, 1<<13)
		for i := range vals {
			vals[i] = rng.Uint64() % (R + 1)
		}
		b.Run(fmt.Sprintf("R%d", R), func(b *testing.B) {
			s := New(1<<18, R, 0.01)
			b.SetBytes(1 << 13 * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Advance(vals)
			}
		})
	}
}

func BenchmarkEstimate(b *testing.B) {
	s := New(1<<16, 4095, 0.01)
	rng := rand.New(rand.NewSource(2))
	vals := make([]uint64, 1<<13)
	for i := range vals {
		vals[i] = rng.Uint64() % 4096
	}
	for k := 0; k < 16; k++ {
		s.Advance(vals)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Estimate()
	}
}
