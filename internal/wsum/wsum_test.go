package wsum

import (
	"math/rand"
	"testing"
)

type ref struct{ vals []uint64 }

func (r *ref) append(vs []uint64) { r.vals = append(r.vals, vs...) }
func (r *ref) sumLast(n int64) int64 {
	start := int64(len(r.vals)) - n
	if start < 0 {
		start = 0
	}
	var s int64
	for _, v := range r.vals[start:] {
		s += int64(v)
	}
	return s
}

func randVals(rng *rand.Rand, maxLen int, r uint64) []uint64 {
	n := rng.Intn(maxLen + 1)
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = rng.Uint64() % (r + 1)
	}
	return vs
}

// TestTheorem42RelativeError asserts true <= est <= (1+ε)·true across
// value bounds and epsilons.
func TestTheorem42RelativeError(t *testing.T) {
	for _, R := range []uint64{1, 7, 255, 65535} {
		for _, eps := range []float64{0.3, 0.05} {
			n := int64(512)
			s := New(n, R, eps)
			r := &ref{}
			rng := rand.New(rand.NewSource(int64(R)*3 + int64(eps*100)))
			for step := 0; step < 60; step++ {
				vs := randVals(rng, 200, R)
				s.Advance(vs)
				r.append(vs)
				want := r.sumLast(n)
				est := s.Estimate()
				if est < want {
					t.Fatalf("R=%d ε=%g step=%d: est %d < true %d", R, eps, step, est, want)
				}
				if float64(est) > (1+eps)*float64(want)+1e-9 {
					t.Fatalf("R=%d ε=%g step=%d: est %d > (1+ε)·%d", R, eps, step, est, want)
				}
			}
		}
	}
}

func TestDegenerateRZero(t *testing.T) {
	s := New(100, 0, 0.1)
	s.Advance([]uint64{0, 0, 0})
	if est := s.Estimate(); est != 0 {
		t.Fatalf("R=0 est = %d", est)
	}
	if s.Bits() != 1 {
		t.Fatalf("R=0 Bits = %d", s.Bits())
	}
}

func TestValueExceedsRPanics(t *testing.T) {
	s := New(10, 5, 0.1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for value > R")
		}
	}()
	s.Advance([]uint64{6})
}

func TestBitsCount(t *testing.T) {
	if got := New(10, 255, 0.1).Bits(); got != 8 {
		t.Fatalf("R=255 Bits = %d want 8", got)
	}
	if got := New(10, 256, 0.1).Bits(); got != 9 {
		t.Fatalf("R=256 Bits = %d want 9", got)
	}
	s := New(10, 7, 0.25)
	if s.N() != 10 || s.R() != 7 {
		t.Fatal("accessor mismatch")
	}
}

func TestConstantStream(t *testing.T) {
	n := int64(64)
	s := New(n, 100, 0.1)
	r := &ref{}
	for step := 0; step < 20; step++ {
		vs := make([]uint64, 10)
		for i := range vs {
			vs[i] = 100
		}
		s.Advance(vs)
		r.append(vs)
	}
	want := r.sumLast(n) // 64 * 100
	est := s.Estimate()
	if est < want || float64(est) > 1.1*float64(want) {
		t.Fatalf("est %d outside [%d, %g]", est, want, 1.1*float64(want))
	}
}

func TestBurstyValues(t *testing.T) {
	// Alternating bursts of max values and silence.
	n := int64(256)
	R := uint64(1023)
	eps := 0.1
	s := New(n, R, eps)
	r := &ref{}
	rng := rand.New(rand.NewSource(8))
	for step := 0; step < 40; step++ {
		var vs []uint64
		if step%2 == 0 {
			vs = make([]uint64, rng.Intn(300))
			for i := range vs {
				vs[i] = R
			}
		} else {
			vs = make([]uint64, rng.Intn(300))
		}
		s.Advance(vs)
		r.append(vs)
		want := r.sumLast(n)
		est := s.Estimate()
		if est < want || float64(est) > (1+eps)*float64(want)+1e-9 {
			t.Fatalf("step %d: est %d, true %d", step, est, want)
		}
	}
}

func TestSpaceGrowsWithLogR(t *testing.T) {
	s8 := New(1024, 255, 0.1)
	s16 := New(1024, 65535, 0.1)
	if s16.SpaceWords() <= s8.SpaceWords() {
		t.Fatalf("space: logR=16 (%d words) should exceed logR=8 (%d words)",
			s16.SpaceWords(), s8.SpaceWords())
	}
}
