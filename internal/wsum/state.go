package wsum

import (
	"fmt"

	"repro/internal/bcount"
)

// State is the serializable form of a Summer.
type State struct {
	N       int64
	R       uint64
	Epsilon float64
	Slices  []bcount.State
}

// State captures the summer for serialization.
func (s *Summer) State() State {
	st := State{N: s.n, R: s.r, Epsilon: s.eps}
	for _, sl := range s.slices {
		st.Slices = append(st.Slices, sl.State())
	}
	return st
}

// FromState reconstructs a summer, validating invariants.
func FromState(st State) (*Summer, error) {
	if st.N < 1 || len(st.Slices) == 0 {
		return nil, fmt.Errorf("wsum: bad state (n=%d, %d slices)", st.N, len(st.Slices))
	}
	s := &Summer{n: st.N, r: st.R, eps: st.Epsilon}
	for _, bs := range st.Slices {
		c, err := bcount.FromState(bs)
		if err != nil {
			return nil, err
		}
		s.slices = append(s.slices, c)
	}
	return s, nil
}
