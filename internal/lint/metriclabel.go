package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MetricLabel reports unbounded metric label values. The metrics
// registry interns one series per (name, labels) tuple and never
// evicts, so a label value derived from request data (a node ID, a user
// key, an arbitrary string off the wire) grows the registry without
// bound — the classic cardinality blowup. Label values must be:
//
//   - compile-time constants,
//   - a String() method call on a named type (enum stringers are a
//     closed set),
//   - or a variable ranged over a package-level slice (a closed set
//     spelled out in the source).
//
// Anything else needs an explicit bound and an
// //agglint:ignore metriclabel <why it is bounded> waiver.
var MetricLabel = &Analyzer{
	Name: "metriclabel",
	Doc:  "metric label values must be constant or provably bounded",
	Run:  runMetricLabel,
}

// registryMethods are the series-creating calls; the variadic tail of
// each is alternating label key/value pairs.
var registryMethods = map[string]bool{
	"Counter":     true,
	"Gauge":       true,
	"Histogram":   true,
	"GaugeFunc":   true,
	"CounterFunc": true,
}

func runMetricLabel(pass *Pass) error {
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkMetricCall(pass, call, stack)
			return true
		})
	}
	return nil
}

func checkMetricCall(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	fn := methodCallee(pass.Info, call)
	if fn == nil || !registryMethods[fn.Name()] {
		return
	}
	recv := recvNamed(fn)
	if recv == nil || recv.Obj().Name() != "Registry" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !sig.Variadic() {
		return
	}
	fixed := sig.Params().Len() - 1 // args before the labels tail
	if len(call.Args) <= fixed {
		return // no labels at all
	}
	if call.Ellipsis.IsValid() {
		pass.Reportf(call.Ellipsis, "labels spread with ... cannot be proven bounded; pass literal key/value pairs")
		return
	}
	labels := call.Args[fixed:]
	for i, arg := range labels {
		if i%2 == 0 {
			// Label keys must simply be constants.
			if !isConst(pass, arg) {
				pass.Reportf(arg.Pos(), "metric label key must be a constant string")
			}
			continue
		}
		if boundedLabelValue(pass, arg, stack) {
			continue
		}
		pass.Reportf(arg.Pos(), "metric label value %q is not provably bounded (constant, enum String(), or range over a package-level slice); unbounded values blow up series cardinality", render(arg))
	}
}

func isConst(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	return ok && tv.Value != nil
}

// boundedLabelValue accepts the provably-closed shapes; depth bounds
// the local-definition chase.
func boundedLabelValue(pass *Pass, expr ast.Expr, stack []ast.Node) bool {
	return boundedValue(pass, expr, stack, 4)
}

func boundedValue(pass *Pass, expr ast.Expr, stack []ast.Node, depth int) bool {
	if depth == 0 {
		return false
	}
	expr = ast.Unparen(expr)
	if isConst(pass, expr) {
		return true
	}
	// String() call on a named type: stringers enumerate a closed set.
	if call, ok := expr.(*ast.CallExpr); ok {
		if fn := methodCallee(pass.Info, call); fn != nil && fn.Name() == "String" && len(call.Args) == 0 && recvNamed(fn) != nil {
			return true
		}
	}
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	obj := objOf(pass.Info, id)
	if obj == nil {
		return false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		var body *ast.BlockStmt
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			continue
		}
		found := false
		ast.Inspect(body, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.RangeStmt:
				// `for _, v := range closedSet`: a package-level slice
				// or a (possibly local) slice literal is a closed set.
				for _, bind := range []ast.Expr{n.Key, n.Value} {
					bid, ok := bind.(*ast.Ident)
					if !ok || objOf(pass.Info, bid) != obj {
						continue
					}
					if pkgLevelVar(pass, n.X) || literalBacked(pass, n.X, stack, depth-1) {
						found = true
					}
				}
			case *ast.AssignStmt:
				// `policy := x.Policy.String()`: follow the local's
				// definition once.
				if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for j, lhs := range n.Lhs {
					lid, ok := lhs.(*ast.Ident)
					if !ok || pass.Info.Defs[lid] != obj {
						continue
					}
					if boundedValue(pass, n.Rhs[j], stack, depth-1) {
						found = true
					}
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// literalBacked reports whether expr is a composite literal or a local
// defined directly from one — a set fully spelled out in the source.
func literalBacked(pass *Pass, expr ast.Expr, stack []ast.Node, depth int) bool {
	if depth == 0 {
		return false
	}
	switch e := ast.Unparen(expr).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.Ident:
		obj := objOf(pass.Info, e)
		if obj == nil {
			return false
		}
		for i := len(stack) - 1; i >= 0; i-- {
			var body *ast.BlockStmt
			switch fn := stack[i].(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				continue
			}
			found := false
			ast.Inspect(body, func(n ast.Node) bool {
				if found {
					return false
				}
				as, ok := n.(*ast.AssignStmt)
				if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
					return true
				}
				for j, lhs := range as.Lhs {
					lid, ok := lhs.(*ast.Ident)
					if !ok || pass.Info.Defs[lid] != obj {
						continue
					}
					if _, isLit := ast.Unparen(as.Rhs[j]).(*ast.CompositeLit); isLit {
						found = true
					}
				}
				return !found
			})
			if found {
				return true
			}
		}
	}
	return false
}

// pkgLevelVar reports whether expr denotes a package-level variable
// (possibly qualified).
func pkgLevelVar(pass *Pass, expr ast.Expr) bool {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	v, ok := objOf(pass.Info, id).(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// render is a compact source rendering for diagnostics.
func render(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return render(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return render(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return render(e.X) + "[...]"
	case *ast.BasicLit:
		return e.Value
	default:
		return "value"
	}
}
