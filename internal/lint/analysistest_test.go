package lint

// A minimal analysistest-style harness: each analyzer gets a fixture
// package under testdata/src/<name>/, loaded through the production
// loader (go list -export + the gc importer) so the tests exercise the
// same path agglint does. Expectations live in the fixtures as
//
//	expr // want `regex` `another regex`
//
// comments: every finding must match a want on its line, and every
// want must be consumed by a finding. Double-quoted wants use Go
// string syntax (backslashes doubled); backquoted wants are raw.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// wantTokens matches one quoted expectation: a Go string literal or a
// raw backquoted one.
var wantTokens = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func collectWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var ws []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				rest, ok := strings.CutPrefix(strings.TrimSpace(body), "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				toks := wantTokens.FindAllString(rest, -1)
				if len(toks) == 0 {
					t.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
					continue
				}
				for _, tok := range toks {
					pat, err := strconv.Unquote(tok)
					if err != nil {
						t.Errorf("%s:%d: bad want token %s: %v", pos.Filename, pos.Line, tok, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						continue
					}
					ws = append(ws, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	return ws
}

// testAnalyzer loads testdata/src/<dir> and diffs the analyzer's
// findings against the fixture's want comments.
func testAnalyzer(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	pkgs, err := Load(".", "./testdata/src/"+dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s loaded as %d packages, want 1", dir, len(pkgs))
	}
	pkg := pkgs[0]
	findings, err := Run(pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	wants := collectWants(t, pkg)
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f.String())
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no %s finding matched %q", w.file, w.line, a.Name, w.raw)
		}
	}
}

// checkSource type-checks an inline snippet (no imports) and runs the
// full suite over it — the path the waiver-hygiene tests use.
func checkSource(t *testing.T, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := newInfo()
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(fset, []*ast.File{f}, pkg, info, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	return findings
}
