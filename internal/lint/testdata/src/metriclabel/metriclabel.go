// Package metriclabel is the analyzer fixture: metric label values must
// be provably bounded (constants, enum String() methods, or ranges over
// fixed slices) so series cardinality cannot grow with input.
package metriclabel

import "fmt"

type Registry struct{}

func (r *Registry) Counter(name, help string, labels ...string) int { return 0 }
func (r *Registry) Gauge(name, help string, labels ...string) int   { return 0 }

func bad(r *Registry, user string) {
	r.Counter("requests_total", "Help.", "user", user)       // want `not provably bounded`
	r.Counter("requests_total", "Help.", "n", fmt.Sprint(1)) // want `not provably bounded`
	key := "k"
	r.Counter("x_total", "Help.", key, "v") // want `label key must be a constant string`
	labels := []string{"a", "b"}
	r.Counter("y_total", "Help.", labels...) // want `labels spread with \.\.\. cannot be proven bounded`
}

type mode int

const modeFast mode = iota

func (m mode) String() string { return "fast" }

var classes = []string{"2xx", "5xx"}

func good(r *Registry, m mode) {
	r.Counter("ok_total", "Help.", "class", "2xx")
	r.Gauge("mode", "Help.", "mode", m.String())
	for _, c := range classes {
		r.Counter("by_class_total", "Help.", "class", c)
	}
	local := []string{"a", "b"}
	for _, v := range local {
		r.Counter("local_total", "Help.", "v", v)
	}
	_ = modeFast
}
