// Package senterr is the analyzer fixture: sentinel errors must be
// matched with errors.Is/As and wrapped with %w, never compared or
// re-stringified.
package senterr

import (
	"errors"
	"fmt"
	"io"
)

var ErrBad = errors.New("bad")

func compare(err error) bool {
	if err == ErrBad { // want `error compared with == \(misses wrapped errors\); use errors\.Is`
		return true
	}
	if err != io.EOF { // want `error compared with != \(misses wrapped errors\)`
		return false
	}
	return errors.Is(err, ErrBad)
}

// Nil checks are the one comparison that stays legal.
func nilOnly(err error) bool {
	return err != nil
}

func switched(err error) int {
	switch err {
	case nil:
		return 0
	case ErrBad: // want `error switched by value \(misses wrapped errors\)`
		return 1
	}
	return 2
}

func wrap(fail bool) error {
	if fail {
		return fmt.Errorf("op failed: %v", ErrBad) // want `wrap with %w so errors\.Is keeps matching`
	}
	return fmt.Errorf("op: %w", io.EOF)
}
