// Package spancheck is the analyzer fixture: every span a function
// starts must be ended on all return paths, unless ownership escapes.
package spancheck

type Span struct{ ended bool }

func (s *Span) End()  { s.ended = true }
func (s *Span) Note() {}

type Tracer struct{}

func (t *Tracer) Start(name string, parent int) *Span { return &Span{} }
func (t *Tracer) Child(name string, parent int) *Span { return new(Span) }

func leak(tr *Tracer) {
	sp := tr.Start("leak", 0) // want `span sp is never ended; add defer sp\.End\(\)`
	sp.Note()
}

func missedPath(tr *Tracer, fail bool) int {
	sp := tr.Start("op", 0)
	if fail {
		return 0 // want `return without ending span sp`
	}
	sp.End()
	return 1
}

func deferred(tr *Tracer, fail bool) int {
	sp := tr.Start("ok", 0)
	defer sp.End()
	if fail {
		return 0
	}
	return 1
}

func deferredClosure(tr *Tracer) {
	sp := tr.Start("closure", 0)
	defer func() { sp.End() }()
	sp.Note()
}

// returned escapes to the caller, who owns the End.
func returned(tr *Tracer) *Span {
	sp := tr.Child("escape", 1)
	return sp
}

// handed escapes into the callee, who owns the End.
func handed(tr *Tracer, take func(*Span)) {
	sp := tr.Start("handed", 0)
	take(sp)
}
