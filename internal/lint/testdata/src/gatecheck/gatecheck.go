// Package gatecheck is the analyzer fixture: a miniature gated
// aggregate mirroring the streamagg gate idiom. Exported methods must
// hold the gate before touching sketch state, and must not re-enter it.
package gatecheck

import "sync"

type gate struct {
	mu        sync.RWMutex
	streamLen int64
}

func (g *gate) read(fn func()) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	fn()
}

func (g *gate) ingest(n int64, fn func()) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.streamLen += n
	fn()
}

func (g *gate) StreamLen() int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.streamLen
}

// Agg is a gated aggregate: the embedded gate guards vals.
type Agg struct {
	gate
	vals []uint64
}

// Bare touches sketch state with no gate at all.
func (a *Agg) Bare() uint64 {
	return a.vals[0] // want `Agg\.Bare accesses a\.vals without holding the gate`
}

// HalfLocked reads once under the lock and once after releasing it.
func (a *Agg) HalfLocked() uint64 {
	a.mu.RLock()
	v := a.vals[0]
	a.mu.RUnlock()
	return v + a.vals[1] // want `accesses a\.vals without holding the gate`
}

// Reentry calls a gate-acquiring method while already inside the gate.
func (a *Agg) Reentry() int64 {
	var n int64
	a.read(func() {
		n = a.StreamLen() // want `called while a's gate is already held \(self-deadlock`
	})
	return n
}

// Guarded is the idiomatic read path: closure under the gate.
func (a *Agg) Guarded() uint64 {
	var v uint64
	a.read(func() { v = a.vals[0] })
	return v
}

// Ingest is the idiomatic write path.
func (a *Agg) Ingest(items []uint64) {
	a.ingest(int64(len(items)), func() {
		a.vals = append(a.vals, items...)
	})
}

// Locked holds the RWMutex directly instead of using the closure form.
func (a *Agg) Locked() uint64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.vals[0]
}
