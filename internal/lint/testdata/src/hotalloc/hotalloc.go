// Package hotalloc is the analyzer fixture: functions annotated
// //agglint:hotpath must not allocate per call; the grow/scratch idioms
// the repo uses must stay clean.
package hotalloc

import (
	"fmt"
	"time"
)

func sink(v any)     { _ = v }
func use(s string)   { _ = s }
func visit(f func()) { f() }

type buf struct {
	scratch []uint64
	out     []uint64
}

// Alloc is the deliberately-allocating fixture: every construct the
// analyzer knows about, in one hot function.
//
//agglint:hotpath
func (b *buf) Alloc(items []uint64) int64 {
	tmp := make([]uint64, len(items)) // want `make allocates in a hot path`
	copy(tmp, items)
	b.out = append([]uint64{}, items...) // want `slice literal allocates in a hot path` `append onto freshly allocated backing`
	var total int64
	for _, it := range items {
		visit(func() { // want `closure inside a loop allocates per iteration`
			total += int64(it)
		})
	}
	use(fmt.Sprintf("%d", total)) // want `fmt\.Sprintf call in a hot path`
	start := time.Now()           // want `time\.Now in a hot path`
	sink(42)                      // want `scalar int boxed into interface argument`
	seen := map[uint64]int{}      // want `map literal allocates in a hot path`
	seen[items[0]]++
	return total + start.Unix() + int64(len(seen)) + int64(len(tmp))
}

// Grow is the repo's amortized-growth idiom: the make is behind a cap
// guard, so it is allowed.
//
//agglint:hotpath
func (b *buf) Grow(n int) []uint64 {
	if cap(b.scratch) < n {
		b.scratch = make([]uint64, n)
	}
	return b.scratch[:n]
}

// Fill appends into reusable field-backed scratch — not fresh backing.
//
//agglint:hotpath
func (b *buf) Fill(items []uint64) {
	out := b.out[:0]
	for _, it := range items {
		out = append(out, it)
	}
	b.out = out
}

// Cold is not annotated; it may allocate freely.
func Cold(items []uint64) string {
	c := make([]uint64, len(items))
	copy(c, items)
	return fmt.Sprint(len(c), time.Now().Unix())
}
