package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanCheck reports trace spans that can leak. The trace package's
// nil-span no-op API means a Start without an End is silent: nothing
// panics, the span simply never reaches the ring, and the trace shows a
// hole where the operation should be. Every span obtained from
// Tracer.Start/Child must therefore be ended on all return paths —
// either a `defer span.End()` or an explicit End before each return.
//
// Spans that escape the creating function (returned, stored in a
// struct/map, or handed to another call) transfer End responsibility
// and are not checked.
var SpanCheck = &Analyzer{
	Name: "spancheck",
	Doc:  "every trace span started must be ended on all return paths",
	Run:  runSpanCheck,
}

func runSpanCheck(pass *Pass) error {
	for _, f := range pass.Files {
		// Each function body (declared or literal) is its own scope of
		// return paths.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkSpanBody(pass, n.Body)
				}
			case *ast.FuncLit:
				checkSpanBody(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// spanStartCall reports whether call creates a span: a Start or Child
// method on a Tracer-named type returning *Span.
func spanStartCall(pass *Pass, call *ast.CallExpr) bool {
	fn := methodCallee(pass.Info, call)
	if fn == nil || (fn.Name() != "Start" && fn.Name() != "Child") {
		return false
	}
	recv := recvNamed(fn)
	if recv == nil || recv.Obj().Name() != "Tracer" {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Results().Len() != 1 {
		return false
	}
	res := namedOrPointee(sig.Results().At(0).Type())
	return res != nil && res.Obj().Name() == "Span"
}

// spanVar is one span-typed local being tracked through its function.
type spanVar struct {
	obj      types.Object
	name     string
	created  token.Pos
	deferred bool        // defer sp.End() (possibly via closure) seen
	escaped  bool        // ownership left the function; not our problem
	ends     []token.Pos // positions of plain sp.End() calls
}

// checkSpanBody tracks spans created directly in body (not in nested
// function literals — those have their own invocation) and reports any
// return path that can leave one unended.
func checkSpanBody(pass *Pass, body *ast.BlockStmt) {
	spans := map[types.Object]*spanVar{}

	// Pass 1: find creations `sp := tr.Start(...)` / `sp = tr.Child(...)`.
	walkShallow(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !spanStartCall(pass, call) {
			return
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := objOf(pass.Info, id)
		if obj == nil {
			return
		}
		spans[obj] = &spanVar{obj: obj, name: id.Name, created: as.Pos()}
	})
	if len(spans) == 0 {
		return
	}

	lookup := func(e ast.Expr) *spanVar {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := objOf(pass.Info, id); obj != nil {
			return spans[obj]
		}
		return nil
	}

	// Pass 2: classify every use — End calls, defers, escapes. End
	// calls inside nested closures count too (a deferred closure is the
	// idiomatic batch-scoped End).
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if sv := spanEndTarget(pass, n.Call, lookup); sv != nil {
				sv.deferred = true
			} else if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if sv := spanEndTarget(pass, call, lookup); sv != nil {
							sv.deferred = true
						}
					}
					return true
				})
			}
		case *ast.CallExpr:
			if sv := spanEndTarget(pass, n, lookup); sv != nil {
				sv.ends = append(sv.ends, n.Pos())
				return true
			}
			// A span passed as an argument escapes (helper may end it).
			for _, arg := range n.Args {
				if sv := lookup(arg); sv != nil {
					sv.escaped = true
				}
			}
		case *ast.AssignStmt:
			// Reassigning the span elsewhere (field, map, other var)
			// escapes it.
			for i, rhs := range n.Rhs {
				if sv := lookup(rhs); sv != nil && i < len(n.Lhs) {
					sv.escaped = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				e := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if sv := lookup(e); sv != nil {
					sv.escaped = true
				}
			}
		case *ast.SendStmt:
			if sv := lookup(n.Value); sv != nil {
				sv.escaped = true
			}
		}
		return true
	})
	// Returned spans escape.
	returns := returnsOf(body)
	for _, ret := range returns {
		for _, res := range ret.Results {
			if sv := lookup(res); sv != nil {
				sv.escaped = true
			}
		}
	}

	for _, sv := range spans {
		if sv.escaped || sv.deferred {
			continue
		}
		if len(sv.ends) == 0 {
			pass.Reportf(sv.created, "span %s is never ended; add defer %s.End()", sv.name, sv.name)
			continue
		}
		// Without a defer, every return after creation needs an End
		// between creation and the return (source order approximates
		// the path; the repo style ends spans right before returning).
		for _, ret := range returns {
			if ret.Pos() <= sv.created {
				continue
			}
			ended := false
			for _, end := range sv.ends {
				if end > sv.created && end < ret.Pos() {
					ended = true
					break
				}
			}
			if !ended {
				pass.Reportf(ret.Pos(), "return without ending span %s (created at line %d); use defer %s.End()",
					sv.name, pass.Fset.Position(sv.created).Line, sv.name)
			}
		}
	}
}

// spanEndTarget returns the tracked span when call is `sp.End()`.
func spanEndTarget(pass *Pass, call *ast.CallExpr, lookup func(ast.Expr) *spanVar) *spanVar {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return nil
	}
	return lookup(sel.X)
}

// walkShallow visits body without descending into nested function
// literals.
func walkShallow(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// returnsOf collects the return statements belonging to body itself
// (not nested function literals).
func returnsOf(body *ast.BlockStmt) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	walkShallow(body, func(n ast.Node) {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			out = append(out, ret)
		}
	})
	return out
}
