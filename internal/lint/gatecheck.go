package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GateCheck enforces the aggregate gate discipline. Every public
// aggregate embeds the reader-writer gate, and the mergeability
// guarantees only hold if (1) exported methods touch sketch state only
// while the gate is held, and (2) nothing re-acquires the gate while it
// is already held — the lock-bypass and self-deadlock bug classes the
// gate refactor was built to kill.
//
// Recognized guard forms, matched per base variable (the receiver or
// any other gated value such as a Merge operand):
//
//   - a closure passed to x.read / x.ingest / x.ingestErr (any method
//     of the embedded gate type);
//   - statements after an explicit x.mu.Lock()/RLock() with no plain
//     (non-deferred) unlock in between;
//   - a closure passed to a call that also receives &x.gate
//     (marshalAgg / unmarshalAgg).
//
// Fields typed from sync or sync/atomic are self-synchronizing and
// exempt.
var GateCheck = &Analyzer{
	Name: "gatecheck",
	Doc:  "gated aggregate state must be accessed under the gate, and the gate must not be re-entered",
	Run:  runGateCheck,
}

// findGatedTypes returns the package's gated aggregate types: named
// structs embedding a field whose struct type carries a sync.RWMutex.
// The value is the embedded gate field.
func findGatedTypes(pass *Pass) map[*types.Named]*types.Var {
	gated := map[*types.Named]*types.Var{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Embedded() && gateLike(namedOrPointee(f.Type())) {
				gated[named] = f
				break
			}
		}
	}
	return gated
}

// gateLike reports whether n is a gate-shaped type: a struct with a
// direct sync.RWMutex field.
func gateLike(n *types.Named) bool {
	if n == nil {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isRWMutex(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

func isRWMutex(t types.Type) bool {
	n := namedOrPointee(t)
	return n != nil && n.Obj().Name() == "RWMutex" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync"
}

// gateCtx is the per-package state shared by the walkers.
type gateCtx struct {
	pass      *Pass
	gated     map[*types.Named]*types.Var
	acquiring map[*types.Func]bool // methods on gated types that take the gate
}

func runGateCheck(pass *Pass) error {
	gated := findGatedTypes(pass)
	if len(gated) == 0 {
		return nil
	}
	ctx := &gateCtx{pass: pass, gated: gated, acquiring: map[*types.Func]bool{}}

	// Phase 1: which methods on gated types acquire the gate? Needed to
	// catch `c.mu.Lock(); c.Query()`-style re-entry through an exported
	// method.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			recv := recvNamed(fn)
			if recv == nil {
				continue
			}
			if _, isGated := gated[recv]; !isGated && !gateLike(recv) {
				continue
			}
			if gateLike(recv) {
				// Methods defined on the gate itself (read, ingest,
				// StreamLen, ...) acquire by construction — except pure
				// accessors with no lock use, which don't exist today.
				ctx.acquiring[fn] = true
				continue
			}
			recvObj := receiverObj(pass, fd)
			if recvObj != nil && ctx.bodyAcquires(fd.Body, recvObj) {
				ctx.acquiring[fn] = true
			}
		}
	}

	// Phase 2: check every function body.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctx.checkFunc(fd)
		}
	}
	return nil
}

func receiverObj(pass *Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.Info.Defs[fd.Recv.List[0].Names[0]]
}

// gatedBase resolves expr to (object, gated type) when expr's root is a
// variable of a gated aggregate type.
func (ctx *gateCtx) gatedBase(expr ast.Expr) (types.Object, *types.Named) {
	id := rootIdent(expr)
	if id == nil {
		return nil, nil
	}
	obj := objOf(ctx.pass.Info, id)
	if obj == nil {
		return nil, nil
	}
	if _, ok := obj.(*types.Var); !ok {
		return nil, nil
	}
	n := namedOrPointee(obj.Type())
	if n == nil {
		return nil, nil
	}
	if _, ok := ctx.gated[n]; !ok {
		return nil, nil
	}
	return obj, n
}

// guardCallBase returns the base object whose gate the call holds while
// running its closure arguments: gate-method calls (x.read(...)) and
// marshal/unmarshal-style calls taking &x.gate.
func (ctx *gateCtx) guardCallBase(call *ast.CallExpr) types.Object {
	if fn := methodCallee(ctx.pass.Info, call); fn != nil && gateLike(recvNamed(fn)) {
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if obj, _ := ctx.gatedBase(sel.X); obj != nil {
			return obj
		}
	}
	for _, arg := range call.Args {
		un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			continue
		}
		sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		obj, n := ctx.gatedBase(sel.X)
		if obj == nil {
			continue
		}
		if field, ok := objOf(ctx.pass.Info, sel.Sel).(*types.Var); ok && field == ctx.gated[n] {
			return obj
		}
	}
	return nil
}

// lockEvent is one Lock/Unlock call on a field of a gated value.
type lockEvent struct {
	base     types.Object
	pos      token.Pos
	acquire  bool
	rw       bool // on a sync.RWMutex field (the gate itself)
	deferred bool
}

// bodyAcquires reports whether body takes recv's gate: a gate-method
// call, an RWMutex lock, or passing &recv.gate along.
func (ctx *gateCtx) bodyAcquires(body *ast.BlockStmt, recv types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if ctx.guardCallBase(call) == recv {
			found = true
		}
		if ev, ok := ctx.lockEventOf(call, false); ok && ev.base == recv && ev.acquire && ev.rw {
			found = true
		}
		return !found
	})
	return found
}

// lockEventOf classifies call as a Lock/RLock/Unlock/RUnlock on a
// mutex-typed field of a gated value.
func (ctx *gateCtx) lockEventOf(call *ast.CallExpr, deferred bool) (lockEvent, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return lockEvent{}, false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	base, _ := ctx.gatedBase(inner.X)
	if base == nil {
		return lockEvent{}, false
	}
	fieldType := ctx.pass.Info.TypeOf(inner)
	return lockEvent{base: base, pos: call.Pos(), acquire: acquire, rw: isRWMutex(fieldType), deferred: deferred}, true
}

// checkFunc runs both rules over one declared function.
func (ctx *gateCtx) checkFunc(fd *ast.FuncDecl) {
	pass := ctx.pass

	// Does the access rule apply? Only to exported methods on gated
	// types — unexported helpers are documented as
	// called-with-gate-held internals.
	var accessRecv *types.Named
	if fd.Recv != nil && fd.Name.IsExported() {
		if fn, _ := pass.Info.Defs[fd.Name].(*types.Func); fn != nil {
			if n := recvNamed(fn); n != nil {
				if _, ok := ctx.gated[n]; ok {
					accessRecv = n
				}
			}
		}
	}

	// Collect lock events once, in source order. Deferred unlocks run
	// at function exit, so they never end a held region mid-body.
	var locks []lockEvent
	deferredCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferredCalls[n.Call] = true
		case *ast.CallExpr:
			if ev, ok := ctx.lockEventOf(n, deferredCalls[n]); ok {
				locks = append(locks, ev)
			}
		}
		return true
	})

	// lockHeld reports whether base's lock (needRW: the gate
	// specifically) is held at pos: a preceding Lock with no plain
	// (non-deferred) unlock in between.
	lockHeld := func(base types.Object, pos token.Pos, needRW bool) bool {
		held := false
		for _, ev := range locks {
			if ev.base != base || ev.pos >= pos {
				continue
			}
			if needRW && !ev.rw {
				continue // a side-mutex, not the gate
			}
			switch {
			case ev.acquire:
				held = true
			case !ev.deferred:
				held = false
			}
		}
		return held
	}

	// closureGuards reports whether the node stack passes through a
	// closure argument of a guard call on base.
	closureGuards := func(stack []ast.Node, base types.Object) bool {
		for i := len(stack) - 1; i >= 1; i-- {
			lit, ok := stack[i].(*ast.FuncLit)
			if !ok {
				continue
			}
			call, ok := stack[i-1].(*ast.CallExpr)
			if !ok {
				continue
			}
			isArg := false
			for _, a := range call.Args {
				if a == ast.Expr(lit) {
					isArg = true
				}
			}
			if isArg && ctx.guardCallBase(call) == base {
				return true
			}
		}
		return false
	}

	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if accessRecv == nil {
				return true
			}
			selinfo, ok := pass.Info.Selections[n]
			if !ok || selinfo.Kind() != types.FieldVal {
				return true
			}
			base, named := ctx.gatedBase(n.X)
			if base == nil {
				return true
			}
			field, _ := selinfo.Obj().(*types.Var)
			if field == nil || field == ctx.gated[named] || typeFromSyncFamily(field.Type()) {
				return true // the gate handle itself, or self-synchronizing
			}
			if closureGuards(stack, base) || lockHeld(base, n.Pos(), false) {
				return true
			}
			pass.Reportf(n.Pos(), "%s.%s accesses %s.%s without holding the gate (wrap in %s.read/%s.ingest or lock %s.mu)",
				named.Obj().Name(), fd.Name.Name, base.Name(), field.Name(), base.Name(), base.Name(), base.Name())
		case *ast.CallExpr:
			fn := methodCallee(pass.Info, n)
			if fn == nil {
				return true
			}
			if !ctx.acquiring[fn] && !gateLike(recvNamed(fn)) {
				return true
			}
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			base, named := ctx.gatedBase(sel.X)
			if base == nil {
				return true
			}
			if closureGuards(stack[:len(stack)-1], base) || lockHeld(base, n.Pos(), true) {
				pass.Reportf(n.Pos(), "%s.%s is called while %s's gate is already held (self-deadlock on the RWMutex)",
					named.Obj().Name(), sel.Sel.Name, base.Name())
			}
		}
		return true
	})
}
