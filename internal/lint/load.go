// Package loading for agglint. The usual route — golang.org/x/tools'
// go/packages — is a third-party dependency this repo deliberately
// avoids, so packages are loaded the way the go command itself feeds
// vet tools: `go list -export -deps -test -json` names every package's
// compiled export data in the build cache, and go/importer's gc
// importer reads those files through a lookup hook. Type information is
// then complete (including test variants) without compiling anything
// ourselves.
package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// goList shells out to the go command and decodes the JSON stream.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-test", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportLookup builds the lookup hook for go/importer: an import path
// written in source is first rerouted through the package's ImportMap
// (test variants: "repro" → "repro [repro.test]"), then resolved to its
// export-data file.
func exportLookup(exports map[string]string, importMap map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		key := path
		if mapped, ok := importMap[path]; ok {
			key = mapped
		}
		file, ok := exports[key]
		if !ok {
			file, ok = exports[path]
		}
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// TypeCheck parses and type-checks one package's files against the
// given importer, returning its syntax plus full type information.
func TypeCheck(fset *token.FileSet, path string, dir string, files []string, imp types.Importer) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		fn := name
		if !filepath.IsAbs(fn) {
			fn = filepath.Join(dir, fn)
		}
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{ImportPath: path, Fset: fset, Files: syntax, Pkg: pkg, Info: info}, nil
}

// Load lists patterns in dir and returns every in-module package,
// type-checked and ready for analysis. Test variants ("p [p.test]")
// replace their plain counterpart so _test.go files are covered too;
// the go-generated .test mains are skipped.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	hasVariant := map[string]bool{}
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.ForTest != "" && p.Name != "main" && !strings.HasSuffix(p.ImportPath, "_test ["+p.ForTest+".test]") {
			hasVariant[p.ForTest] = true
		}
	}
	fset := token.NewFileSet()
	var out []*Package
	for _, p := range listed {
		switch {
		case p.DepOnly || p.Standard:
			continue
		case p.Name == "main" && strings.HasSuffix(p.ImportPath, ".test"):
			continue // synthesized test main: generated code, no source of ours
		case p.ForTest == "" && hasVariant[p.ImportPath]:
			continue // the test variant supersedes the plain package
		case len(p.CgoFiles) > 0:
			continue // cgo files need compiler preprocessing; none in this repo
		}
		if p.Export == "" && p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		// A fresh importer per package: the gc importer caches by path,
		// and two packages may map the same source path to different
		// test variants.
		imp := importer.ForCompiler(fset, "gc", exportLookup(exports, p.ImportMap))
		pkg, err := TypeCheck(fset, p.ImportPath, p.Dir, p.GoFiles, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}
