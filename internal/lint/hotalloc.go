package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc turns the steady-state zero-alloc contract (E17/E18: 0
// allocs/item on the batch ingest paths) into a build-time gate. A
// function opts in with a doc-comment directive:
//
//	//agglint:hotpath
//	func (s *Sketch) ProcessBatch(items []uint64) { ... }
//
// Inside an annotated function the analyzer flags the allocation
// shapes that have actually regressed this repo before:
//
//   - fmt.* calls (allocate per verb, box every argument);
//   - time.Now (timestamping per item);
//   - function literals inside loops (a fresh closure per iteration);
//   - make / new / slice-map-pointer composite literals, unless inside
//     an amortized-growth guard (an if testing cap(), len(), or nil —
//     the reusable-scratch grow idiom);
//   - append onto freshly-made backing (append(nil, ...) and friends);
//   - boxing a scalar into an interface parameter.
//
// The AllocsPerRun tests prove the paths are clean at runtime; this
// proves new code keeps them clean before it ever runs.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//agglint:hotpath functions must not contain allocating constructs",
	Run:  runHotAlloc,
}

const hotpathDirective = "agglint:hotpath"

// isHotpath reports whether the function's doc comment carries the
// directive.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == hotpathDirective || strings.HasPrefix(text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
	return nil
}

func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.FuncLit:
			if insideLoop(stack) {
				pass.Reportf(n.Pos(), "closure inside a loop allocates per iteration in a hot path; hoist it or inline the body")
			}
		case *ast.CallExpr:
			checkHotCall(pass, n, stack)
		case *ast.CompositeLit:
			checkHotComposite(pass, n, stack)
		}
		return true
	})
}

// insideLoop reports whether the current node is lexically inside a
// for/range statement of this function body.
func insideLoop(stack []ast.Node) bool {
	for _, n := range stack[:len(stack)-1] {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

// growGuarded reports whether the node is inside an if whose condition
// tests capacity, length, or nil — the amortized reuse idiom
// (`if cap(*buf) < n { *buf = make(...) }`), whose alloc is a one-time
// or logarithmic cost, not per-item.
func growGuarded(pass *Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		guarded := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
					if _, isBuiltin := objOf(pass.Info, id).(*types.Builtin); isBuiltin {
						guarded = true
					}
				}
			case *ast.Ident:
				if n.Name == "nil" {
					guarded = true
				}
			}
			return !guarded
		})
		if guarded {
			return true
		}
	}
	return false
}

func checkHotCall(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	// Conversions aren't calls (string(b) et al. are out of scope).
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	// Builtins: make/new allocate unless growth-guarded; append onto
	// fresh backing always allocates.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := objOf(pass.Info, id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				if !growGuarded(pass, stack) {
					pass.Reportf(call.Pos(), "%s allocates in a hot path; reuse scratch (guard with a cap/len/nil check for amortized growth)", id.Name)
				}
			case "append":
				if len(call.Args) > 0 && freshBacking(pass, call.Args[0]) {
					pass.Reportf(call.Pos(), "append onto freshly allocated backing in a hot path; append into reusable scratch")
				}
			}
			return
		}
	}
	// fmt.* and time.Now.
	if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil {
		switch {
		case fn.Pkg().Path() == "fmt":
			pass.Reportf(call.Pos(), "fmt.%s call in a hot path (allocates and boxes every argument)", fn.Name())
			return
		case fn.Pkg().Path() == "time" && fn.Name() == "Now":
			pass.Reportf(call.Pos(), "time.Now in a hot path; hoist timestamping out of the per-item loop")
			return
		}
	}
	checkBoxing(pass, call)
}

// calleeFunc resolves the called function/method object, if any.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	if fn := methodCallee(pass.Info, call); fn != nil {
		return fn
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		fn, _ := objOf(pass.Info, id).(*types.Func)
		return fn
	}
	return nil
}

// checkBoxing flags scalar arguments passed as interface parameters:
// the conversion heap-allocates the scalar's box.
func checkBoxing(pass *Pass, call *ast.CallExpr) {
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-arg boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.Info.TypeOf(arg)
		if at == nil || isNil(pass.Info, arg) {
			continue
		}
		if b, isBasic := at.Underlying().(*types.Basic); isBasic && b.Kind() != types.UntypedNil {
			pass.Reportf(arg.Pos(), "scalar %s boxed into interface argument in a hot path", at.String())
		}
	}
}

// freshBacking reports whether expr is obviously freshly allocated
// backing for append: nil, a composite literal, or a make call.
func freshBacking(pass *Pass, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "make" {
			_, isBuiltin := objOf(pass.Info, id).(*types.Builtin)
			return isBuiltin
		}
	}
	return false
}

// checkHotComposite flags heap-bound composite literals: slices, maps,
// and address-taken struct literals. Plain value struct/array literals
// stay on the stack and pass.
func checkHotComposite(pass *Pass, lit *ast.CompositeLit, stack []ast.Node) {
	t := pass.Info.TypeOf(lit)
	if t == nil {
		return
	}
	heapKind := ""
	switch t.Underlying().(type) {
	case *types.Slice:
		heapKind = "slice literal"
	case *types.Map:
		heapKind = "map literal"
	default:
		// &T{...} escapes to the heap; value struct/array literals
		// stay on the stack.
		if len(stack) >= 2 {
			if un, ok := stack[len(stack)-2].(*ast.UnaryExpr); ok && un.Op == token.AND && un.X == ast.Expr(lit) {
				heapKind = "&composite literal"
			}
		}
	}
	if heapKind == "" || growGuarded(pass, stack) {
		return
	}
	pass.Reportf(lit.Pos(), "%s allocates in a hot path; reuse scratch instead", heapKind)
}
