package lint

// Analyzers is the full agglint suite, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		GateCheck,
		HotAlloc,
		SentErr,
		SpanCheck,
		MetricLabel,
	}
}
