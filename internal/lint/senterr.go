package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
)

// SentErr reports sentinel-error misuse. The repo's API contract is
// that every sentinel (ErrBadParam, ErrOverloaded, ErrClosed, ...) may
// come back wrapped — server handlers and the federation client wrap
// them with context — so:
//
//   - err == sentinel / err != sentinel comparisons are wrong (they
//     miss wrapped values): use errors.Is / errors.As;
//   - switch err { case sentinel: ... } is the same bug;
//   - fmt.Errorf("...", sentinel) must wrap with %w, or errors.Is on
//     the result silently stops matching.
var SentErr = &Analyzer{
	Name: "senterr",
	Doc:  "sentinel errors must be compared with errors.Is/As and wrapped with %w",
	Run:  runSentErr,
}

func runSentErr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkErrCompare(pass, n)
			case *ast.SwitchStmt:
				checkErrSwitch(pass, n)
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
	return nil
}

// errorOperand reports whether expr is a non-nil value of the error
// interface type (the static type under which == comparison is the
// wrapped-error bug).
func errorOperand(pass *Pass, expr ast.Expr) bool {
	if isNil(pass.Info, expr) {
		return false
	}
	tv, ok := pass.Info.Types[expr]
	return ok && isErrorInterface(tv.Type)
}

func checkErrCompare(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if !errorOperand(pass, be.X) || !errorOperand(pass, be.Y) {
		return
	}
	op := "=="
	if be.Op == token.NEQ {
		op = "!="
	}
	pass.Reportf(be.OpPos, "error compared with %s (misses wrapped errors); use errors.Is", op)
}

func checkErrSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !errorOperand(pass, sw.Tag) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if !isNil(pass.Info, e) {
				pass.Reportf(e.Pos(), "error switched by value (misses wrapped errors); use errors.Is chains")
				return
			}
		}
	}
}

// checkErrorfWrap flags fmt.Errorf calls that pass a sentinel error
// under a verb other than %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	if !calleeIsPkgFunc(pass.Info, call, "fmt", "Errorf") || len(call.Args) < 2 || call.Ellipsis.IsValid() {
		return
	}
	format, ok := formatLiteral(pass, call.Args[0])
	if !ok {
		return
	}
	verbs := formatVerbs(format)
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) || verbs[i] == 'w' {
			continue
		}
		if sentinelError(pass, arg) {
			pass.Reportf(arg.Pos(), "sentinel error passed to fmt.Errorf under %%%c; wrap with %%w so errors.Is keeps matching", verbs[i])
		}
	}
}

// formatLiteral extracts a constant string format argument.
func formatLiteral(pass *Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// sentinelError reports whether expr denotes a package-level error
// variable — the shape of every sentinel this repo defines or consumes.
func sentinelError(pass *Pass, expr ast.Expr) bool {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	v, ok := objOf(pass.Info, id).(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return false
	}
	return implementsError(v.Type())
}

// formatVerbs maps each consumed argument of a Printf-style format to
// the verb that renders it ('*' width/precision args map to '*').
func formatVerbs(format string) []byte {
	var verbs []byte
	i := 0
	for i < len(format) {
		if format[i] != '%' {
			i++
			continue
		}
		i++ // past '%'
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		for i < len(format) {
			c := format[i]
			switch {
			case c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' || c == '.':
				i++
				continue
			case c >= '1' && c <= '9':
				for i < len(format) && format[i] >= '0' && format[i] <= '9' {
					i++
				}
				continue
			case c == '*':
				verbs = append(verbs, '*')
				i++
				continue
			case c == '[':
				// Explicit argument index: %[n]v. Re-anchor so that
				// verbs[n-1] gets this verb; keep it simple by padding.
				j := i + 1
				for j < len(format) && format[j] >= '0' && format[j] <= '9' {
					j++
				}
				if j < len(format) && format[j] == ']' {
					if n, err := strconv.Atoi(format[i+1 : j]); err == nil && n >= 1 {
						for len(verbs) < n-1 {
							verbs = append(verbs, 0)
						}
						verbs = verbs[:n-1]
					}
					i = j + 1
					continue
				}
				i++
				continue
			}
			verbs = append(verbs, c)
			i++
			break
		}
	}
	return verbs
}
