package lint

import (
	"strings"
	"testing"
)

func TestGateCheck(t *testing.T)   { testAnalyzer(t, GateCheck, "gatecheck") }
func TestHotAlloc(t *testing.T)    { testAnalyzer(t, HotAlloc, "hotalloc") }
func TestSentErr(t *testing.T)     { testAnalyzer(t, SentErr, "senterr") }
func TestSpanCheck(t *testing.T)   { testAnalyzer(t, SpanCheck, "spancheck") }
func TestMetricLabel(t *testing.T) { testAnalyzer(t, MetricLabel, "metriclabel") }

// Waiver hygiene: an ignore with a reason silences the finding; a
// missing reason, an unknown analyzer, or a waiver that matches nothing
// are themselves findings when the full suite runs.

const violating = `package p

type myErr struct{}

func (myErr) Error() string { return "x" }

var sentinel error = myErr{}

func cmp(err error) bool {
%s
}
`

func findingsFor(t *testing.T, body string) []Finding {
	t.Helper()
	src := strings.Replace(violating, "%s", body, 1)
	return checkSource(t, src)
}

func TestWaiverSilencesWithReason(t *testing.T) {
	got := findingsFor(t, "\t//agglint:ignore senterr asserting exact identity on purpose\n\treturn err == sentinel")
	if len(got) != 0 {
		t.Fatalf("waived violation still reported: %v", got)
	}
}

// A reasonless waiver is malformed and therefore does not suppress: the
// run reports both the malformed directive and the original violation.
func TestWaiverRequiresReason(t *testing.T) {
	got := findingsFor(t, "\t//agglint:ignore senterr\n\treturn err == sentinel")
	if len(got) != 2 {
		t.Fatalf("reasonless waiver findings = %v, want malformed-waiver + violation", got)
	}
	if !strings.Contains(got[0].Message, "needs a reason") && !strings.Contains(got[1].Message, "needs a reason") {
		t.Fatalf("no malformed-waiver finding in %v", got)
	}
}

func TestWaiverUnknownAnalyzer(t *testing.T) {
	got := findingsFor(t, "\t//agglint:ignore nosuch not a real analyzer\n\treturn err == nil")
	if len(got) != 1 || !strings.Contains(got[0].Message, "unknown analyzer") {
		t.Fatalf("unknown-analyzer waiver findings = %v", got)
	}
}

func TestWaiverUnused(t *testing.T) {
	got := findingsFor(t, "\t//agglint:ignore senterr nothing here violates\n\treturn err == nil")
	if len(got) != 1 || !strings.Contains(got[0].Message, "unused") {
		t.Fatalf("unused-waiver findings = %v", got)
	}
}
