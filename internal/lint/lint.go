// Package lint is the repo's invariant-enforcement suite: a small,
// dependency-free reimplementation of the go/analysis analyzer shape
// (the container image has no module proxy, so golang.org/x/tools is
// out of reach) plus the five analyzers that encode this codebase's
// load-bearing contracts:
//
//   - gatecheck:   exported methods on gated aggregates hold the gate
//     while touching sketch state, and never re-enter it (deadlock).
//   - hotalloc:    //agglint:hotpath functions stay allocation-free.
//   - senterr:     sentinel errors go through errors.Is/As and %w.
//   - spancheck:   every trace span started is ended on all paths.
//   - metriclabel: metric label values are constant or bounded.
//
// The suite runs standalone and as a `go vet -vettool` via cmd/agglint;
// packages are loaded from export data emitted by `go list -export`
// (see load.go), so no third-party loader is needed.
//
// A finding can be waived in place with
//
//	//agglint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory: a bare ignore is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Analyzer is one named check. Run inspects the package in Pass and
// reports findings via Pass.Reportf.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass is the per-(analyzer, package) invocation state handed to
// Analyzer.Run — the same contract as golang.org/x/tools/go/analysis,
// minus facts (none of the five analyzers need cross-package state).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a resolved diagnostic: analyzer name plus file position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// suppression is one parsed //agglint:ignore comment.
type suppression struct {
	analyzer string
	line     int // findings on line or line+1 are waived
	used     bool
	pos      token.Pos
	bad      string // non-empty: malformed directive, reported as a finding
}

const ignoreDirective = "agglint:ignore"

// collectSuppressions parses every //agglint:ignore directive in the
// files. Malformed directives (missing analyzer or reason) come back
// with bad set.
func collectSuppressions(fset *token.FileSet, files []*ast.File) []*suppression {
	var sups []*suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(text, ignoreDirective)
				fields := strings.Fields(rest)
				s := &suppression{line: fset.Position(c.Pos()).Line, pos: c.Pos()}
				switch {
				case len(fields) == 0:
					s.bad = "agglint:ignore needs an analyzer name and a reason"
				case len(fields) == 1:
					s.bad = fmt.Sprintf("agglint:ignore %s needs a reason", fields[0])
				default:
					s.analyzer = fields[0]
				}
				sups = append(sups, s)
			}
		}
	}
	return sups
}

// Run applies the analyzers to one type-checked package and returns the
// surviving findings sorted by position. Suppressed findings are
// dropped; malformed or unused suppressions are themselves findings so
// waivers can't silently rot.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	sups := collectSuppressions(fset, files)
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info}
		pass.report = func(d Diagnostic) {
			p := fset.Position(d.Pos)
			for _, s := range sups {
				if s.bad == "" && s.analyzer == a.Name && (s.line == p.Line || s.line == p.Line-1) {
					s.used = true
					return
				}
			}
			out = append(out, Finding{Analyzer: a.Name, Pos: p, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path(), a.Name, err)
		}
	}
	names := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		names[a.Name] = true
	}
	for _, s := range sups {
		switch {
		case s.bad != "":
			out = append(out, Finding{Analyzer: "agglint", Pos: fset.Position(s.pos), Message: s.bad})
		case !names[s.analyzer]:
			// Only complain about unknown names when the full suite ran;
			// a single-analyzer test run would misfire otherwise.
			if len(analyzers) > 1 {
				out = append(out, Finding{Analyzer: "agglint", Pos: fset.Position(s.pos),
					Message: fmt.Sprintf("agglint:ignore names unknown analyzer %q", s.analyzer)})
			}
		case !s.used && len(analyzers) > 1:
			out = append(out, Finding{Analyzer: "agglint", Pos: fset.Position(s.pos),
				Message: fmt.Sprintf("unused agglint:ignore for %s (nothing to waive here)", s.analyzer)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// ---- shared syntax/type helpers used by several analyzers ----

// rootIdent peels selectors, parens, stars, and index expressions off
// expr and returns the base identifier, or nil: `(*c).impl.rows[i]` → c.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.UnaryExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.CallExpr:
			expr = e.Fun
		default:
			return nil
		}
	}
}

// objOf resolves an identifier to its object via Uses or Defs.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// isErrorInterface reports whether t is the built-in error interface.
func isErrorInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	errIface, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return errIface != nil && types.Implements(t, errIface)
}

// isNil reports whether expr is the untyped nil.
func isNil(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	return ok && tv.IsNil()
}

// namedOrPointee unwraps a pointer and returns the named type behind
// t, or nil.
func namedOrPointee(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// typeFromSyncFamily reports whether t (after unwrapping pointers) is a
// named type from sync or sync/atomic — lock words and atomics are
// self-synchronizing and exempt from gate discipline.
func typeFromSyncFamily(t types.Type) bool {
	n := namedOrPointee(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	p := n.Obj().Pkg().Path()
	return p == "sync" || p == "sync/atomic"
}

// methodCallee resolves call to the *types.Func it invokes via a
// selector (method or qualified function), or nil.
func methodCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, _ := objOf(info, sel.Sel).(*types.Func)
	return fn
}

// calleeIsPkgFunc reports whether call invokes the package-level
// function pkgPath.name (e.g. "fmt".Errorf).
func calleeIsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := methodCallee(info, call)
	if fn == nil {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			fn, _ = objOf(info, id).(*types.Func)
		}
	}
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// recvNamed returns the named type of a method's receiver (unwrapping
// the pointer), or nil for non-methods.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOrPointee(sig.Recv().Type())
}
