package baseline

// DGIM implements the exponential-histogram algorithm of Datar, Gionis,
// Indyk and Motwani [DGIM02] for sequential sliding-window basic
// counting: buckets of exponentially growing sizes, at most k+1 per size,
// merged pairwise when the bound is exceeded. The estimate errs by at
// most half the oldest bucket, giving relative error <= 1/(2(k... )) ~
// 1/k; we use k = ⌈1/ε⌉ so the error is at most ε.
type DGIM struct {
	n int64 // window size
	k int   // max buckets per size before merging (k+1 triggers merge)
	t int64 // current time (positions consumed)
	// buckets, newest first: each has the timestamp of its most recent 1
	// and a size (count of 1s), sizes non-decreasing from newest to
	// oldest.
	ts   []int64
	size []int64
}

// NewDGIM creates a DGIM counter for window n with parameter k = ⌈1/ε⌉.
func NewDGIM(n int64, epsilon float64) *DGIM {
	if n < 1 {
		panic("baseline: DGIM window must be >= 1")
	}
	if epsilon <= 0 || epsilon > 1 {
		panic("baseline: DGIM epsilon must be in (0, 1]")
	}
	k := int(1 / epsilon)
	if float64(k) < 1/epsilon {
		k++
	}
	if k < 1 {
		k = 1
	}
	return &DGIM{n: n, k: k}
}

// Update consumes one bit.
func (g *DGIM) Update(bit bool) {
	g.t++
	// Expire the oldest bucket if it slid out of the window.
	if len(g.ts) > 0 && g.ts[len(g.ts)-1] <= g.t-g.n {
		g.ts = g.ts[:len(g.ts)-1]
		g.size = g.size[:len(g.size)-1]
	}
	if !bit {
		return
	}
	// Prepend a size-1 bucket.
	g.ts = append([]int64{g.t}, g.ts...)
	g.size = append([]int64{1}, g.size...)
	// Cascade merges: if k+1 buckets of one size, merge the two oldest of
	// that size into one of double size.
	for i := 0; i < len(g.size); {
		j := i
		for j < len(g.size) && g.size[j] == g.size[i] {
			j++
		}
		if j-i <= g.k {
			i = j
			continue
		}
		// Merge the two oldest of this size: positions j-2 and j-1. The
		// merged bucket keeps the newer timestamp (already at j-2) and may
		// cascade into the next size group, so rescan from j-2.
		g.size[j-2] *= 2
		g.ts = append(g.ts[:j-1], g.ts[j:]...)
		g.size = append(g.size[:j-1], g.size[j:]...)
		i = j - 2
	}
}

// ProcessBits consumes a batch of bits sequentially.
func (g *DGIM) ProcessBits(bits []bool) {
	for _, b := range bits {
		g.Update(b)
	}
}

// Estimate returns the approximate count of 1s in the window: the sum of
// all bucket sizes minus half of the oldest.
func (g *DGIM) Estimate() int64 {
	if len(g.size) == 0 {
		return 0
	}
	var total int64
	for _, s := range g.size {
		total += s
	}
	return total - g.size[len(g.size)-1]/2
}

// Buckets returns the current number of buckets (O(k log n)).
func (g *DGIM) Buckets() int { return len(g.size) }

// SpaceWords estimates the footprint in 64-bit words.
func (g *DGIM) SpaceWords() int { return 2*len(g.size) + 4 }
