package baseline

// LossyCounting implements Lossy Counting [MM02] with bucket width
// w = ⌈1/ε⌉: counts are pruned at bucket boundaries, guaranteeing
// f_e - εm <= Estimate(e) <= f_e with O((1/ε)·log(εm)) counters.
type LossyCounting struct {
	w      int64 // bucket width
	bucket int64 // current bucket id (1-based)
	m      int64
	counts map[uint64]int64
	deltas map[uint64]int64
}

// NewLossyCounting creates a summary with error 1/w (w >= 1).
func NewLossyCounting(w int64) *LossyCounting {
	if w < 1 {
		panic("baseline: LossyCounting width must be >= 1")
	}
	return &LossyCounting{
		w: w, bucket: 1,
		counts: make(map[uint64]int64),
		deltas: make(map[uint64]int64),
	}
}

// Update processes one stream element.
func (g *LossyCounting) Update(e uint64) {
	g.m++
	if _, ok := g.counts[e]; ok {
		g.counts[e]++
	} else {
		g.counts[e] = 1
		g.deltas[e] = g.bucket - 1
	}
	if g.m%g.w == 0 {
		for it, c := range g.counts {
			if c+g.deltas[it] <= g.bucket {
				delete(g.counts, it)
				delete(g.deltas, it)
			}
		}
		g.bucket++
	}
}

// ProcessBatch feeds items one by one.
func (g *LossyCounting) ProcessBatch(items []uint64) {
	for _, e := range items {
		g.Update(e)
	}
}

// Estimate returns the tracked count for e (0 if untracked), satisfying
// f_e - εm <= Estimate(e) <= f_e.
func (g *LossyCounting) Estimate(e uint64) int64 { return g.counts[e] }

// StreamLen returns the number of items processed.
func (g *LossyCounting) StreamLen() int64 { return g.m }

// Size returns the number of live counters.
func (g *LossyCounting) Size() int { return len(g.counts) }

// HeavyHitters returns items with count >= (phi - 1/w)·m.
func (g *LossyCounting) HeavyHitters(phi float64) []uint64 {
	thr := (phi - 1/float64(g.w)) * float64(g.m)
	var out []uint64
	for it, c := range g.counts {
		if float64(c) >= thr {
			out = append(out, it)
		}
	}
	return out
}

// SpaceWords estimates the footprint in 64-bit words.
func (g *LossyCounting) SpaceWords() int { return 6*len(g.counts) + 4 }
