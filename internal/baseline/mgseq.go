// Package baseline implements the sequential algorithms the paper
// compares against (Section 1.2's related work and Section 5.4):
//
//   - the sequential Misra-Gries algorithm [MG82] (Algorithm 1) and the
//     mergeable-summary merge of [ACH+13];
//   - the independent per-processor data-structure approach of Figure 1
//     (p local summaries + a merge step), the paper's main foil;
//   - Space-Saving [MAE06] and Lossy Counting [MM02], the other standard
//     sequential frequent-item algorithms;
//   - the DGIM exponential histogram [DGIM02] for sequential
//     sliding-window basic counting;
//   - a sequential count-min sketch is available via cms.Sketch.Update.
package baseline

import "sort"

// MGSeq is the classic sequential Misra-Gries summary (Algorithm 1 in the
// paper): at most S counters; an arrival of an untracked item when full
// decrements every counter.
type MGSeq struct {
	s      int
	counts map[uint64]int64
	m      int64
}

// NewMGSeq creates a summary with capacity s >= 1 (ε = 1/s).
func NewMGSeq(s int) *MGSeq {
	if s < 1 {
		panic("baseline: MG capacity must be >= 1")
	}
	return &MGSeq{s: s, counts: make(map[uint64]int64, s+1)}
}

// Update processes one stream element (Algorithm 1).
func (g *MGSeq) Update(e uint64) {
	g.m++
	if _, ok := g.counts[e]; ok {
		g.counts[e]++
		return
	}
	if len(g.counts) < g.s {
		g.counts[e] = 1
		return
	}
	for it, c := range g.counts {
		if c == 1 {
			delete(g.counts, it)
		} else {
			g.counts[it] = c - 1
		}
	}
}

// ProcessBatch feeds items one by one (the sequential work comparator).
func (g *MGSeq) ProcessBatch(items []uint64) {
	for _, e := range items {
		g.Update(e)
	}
}

// Estimate returns the counter for e (0 if untracked); it satisfies
// f_e - m/S <= Estimate(e) <= f_e (Lemma 5.1).
func (g *MGSeq) Estimate(e uint64) int64 { return g.counts[e] }

// StreamLen returns the number of items processed.
func (g *MGSeq) StreamLen() int64 { return g.m }

// Size returns the number of live counters.
func (g *MGSeq) Size() int { return len(g.counts) }

// Capacity returns S.
func (g *MGSeq) Capacity() int { return g.s }

// Merge folds another summary into this one using the mergeable-summaries
// algorithm of [ACH+13]: add matching counters, then subtract the
// (S+1)-st largest count and drop non-positive counters. The combined
// guarantee f_e - (m1+m2)/S <= Estimate(e) <= f_e is preserved. This is
// the sequential merge step of the independent data-structure approach.
func (g *MGSeq) Merge(o *MGSeq) {
	for it, c := range o.counts {
		g.counts[it] += c
	}
	g.m += o.m
	if len(g.counts) <= g.s {
		return
	}
	vals := make([]int64, 0, len(g.counts))
	for _, c := range g.counts {
		vals = append(vals, c)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] > vals[j] })
	phi := vals[g.s] // (S+1)-st largest
	for it, c := range g.counts {
		if c-phi <= 0 {
			delete(g.counts, it)
		} else {
			g.counts[it] = c - phi
		}
	}
}

// Clone returns a deep copy (used to merge without destroying locals).
func (g *MGSeq) Clone() *MGSeq {
	c := &MGSeq{s: g.s, counts: make(map[uint64]int64, len(g.counts)), m: g.m}
	for it, v := range g.counts {
		c.counts[it] = v
	}
	return c
}

// HeavyHitters returns items with estimate >= (phi - 1/S)·m.
func (g *MGSeq) HeavyHitters(phi float64) []uint64 {
	thr := (phi - 1/float64(g.s)) * float64(g.m)
	var out []uint64
	for it, c := range g.counts {
		if float64(c) >= thr {
			out = append(out, it)
		}
	}
	return out
}

// SpaceWords estimates the footprint in 64-bit words.
func (g *MGSeq) SpaceWords() int { return 4*len(g.counts) + 3 }
