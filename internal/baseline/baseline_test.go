package baseline

import (
	"math/rand"
	"testing"
)

func exactFreqs(items []uint64) (map[uint64]int64, int64) {
	f := make(map[uint64]int64)
	for _, it := range items {
		f[it]++
	}
	return f, int64(len(items))
}

func zipfStream(seed int64, n int, s float64, imax uint64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, imax)
	out := make([]uint64, n)
	for i := range out {
		out[i] = z.Uint64()
	}
	return out
}

func TestMGSeqGuarantee(t *testing.T) {
	items := zipfStream(1, 50000, 1.2, 1<<14)
	g := NewMGSeq(100)
	g.ProcessBatch(items)
	f, m := exactFreqs(items)
	for it, fe := range f {
		est := g.Estimate(it)
		if est > fe {
			t.Fatalf("item %d: est %d > true %d", it, est, fe)
		}
		if fe-est > m/100 {
			t.Fatalf("item %d: est %d, true %d, bound %d", it, est, fe, m/100)
		}
	}
	if g.Size() > g.Capacity() {
		t.Fatalf("size %d > capacity %d", g.Size(), g.Capacity())
	}
	if g.StreamLen() != m {
		t.Fatalf("StreamLen %d want %d", g.StreamLen(), m)
	}
}

func TestMGSeqMergeGuarantee(t *testing.T) {
	// Split a stream into two halves, summarize independently, merge, and
	// check the mergeable-summaries guarantee on the union.
	items := zipfStream(2, 60000, 1.3, 1<<12)
	a := NewMGSeq(64)
	b := NewMGSeq(64)
	a.ProcessBatch(items[:30000])
	b.ProcessBatch(items[30000:])
	a.Merge(b)
	f, m := exactFreqs(items)
	for it, fe := range f {
		est := a.Estimate(it)
		if est > fe {
			t.Fatalf("merged item %d: est %d > true %d", it, est, fe)
		}
		if fe-est > m/64 {
			t.Fatalf("merged item %d: est %d, true %d, bound %d", it, est, fe, m/64)
		}
	}
	if a.Size() > 64 {
		t.Fatalf("merged size %d > 64", a.Size())
	}
	if a.StreamLen() != m {
		t.Fatalf("merged StreamLen %d want %d", a.StreamLen(), m)
	}
}

func TestIndependentMatchesGuarantee(t *testing.T) {
	items := zipfStream(3, 40000, 1.2, 1<<12)
	for _, p := range []int{1, 2, 4, 8} {
		g := NewIndependent(p, 50)
		for lo := 0; lo < len(items); lo += 5000 {
			g.ProcessBatch(items[lo : lo+5000])
		}
		merged := g.Query()
		f, m := exactFreqs(items)
		for it, fe := range f {
			est := merged.Estimate(it)
			if est > fe {
				t.Fatalf("p=%d item %d: est %d > true %d", p, it, est, fe)
			}
			if fe-est > m/50 {
				t.Fatalf("p=%d item %d: est %d, true %d", p, it, est, fe)
			}
		}
		tree := g.QueryTree()
		for it := range f {
			if tree.Estimate(it) > f[it] {
				t.Fatalf("tree merge overestimates item %d", it)
			}
		}
		if got, want := g.SpaceWords(), p; got < want {
			t.Fatalf("space %d implausible for p=%d", got, p)
		}
	}
}

func TestIndependentSpaceScalesWithP(t *testing.T) {
	items := zipfStream(4, 20000, 1.1, 1<<14)
	g1 := NewIndependent(1, 100)
	g8 := NewIndependent(8, 100)
	g1.ProcessBatch(items)
	g8.ProcessBatch(items)
	if g8.SpaceWords() < 4*g1.SpaceWords() {
		t.Fatalf("p=8 space %d not ~8x p=1 space %d", g8.SpaceWords(), g1.SpaceWords())
	}
	if g8.Processors() != 8 {
		t.Fatal("Processors accessor wrong")
	}
}

func TestSpaceSavingGuarantee(t *testing.T) {
	items := zipfStream(5, 50000, 1.2, 1<<14)
	g := NewSpaceSaving(100)
	g.ProcessBatch(items)
	f, m := exactFreqs(items)
	for it, fe := range f {
		est := g.Estimate(it)
		if est != 0 && est < fe {
			t.Fatalf("item %d: SS underestimates tracked item: %d < %d", it, est, fe)
		}
		if est > fe+m/100 {
			t.Fatalf("item %d: est %d > true %d + m/S", it, est, fe)
		}
		if gc := g.GuaranteedCount(it); gc > fe {
			t.Fatalf("item %d: guaranteed %d > true %d", it, gc, fe)
		}
	}
	if g.Size() > 100 {
		t.Fatalf("size %d > 100", g.Size())
	}
	if g.StreamLen() != m {
		t.Fatal("StreamLen wrong")
	}
}

func TestSpaceSavingHeavyHitters(t *testing.T) {
	// 40% of the stream is item 1; it must always be reported at φ=0.2.
	rng := rand.New(rand.NewSource(6))
	items := make([]uint64, 20000)
	for i := range items {
		if rng.Float64() < 0.4 {
			items[i] = 1
		} else {
			items[i] = uint64(rng.Intn(100000)) + 10
		}
	}
	g := NewSpaceSaving(50)
	g.ProcessBatch(items)
	found := false
	for _, h := range g.HeavyHitters(0.2) {
		if h == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("Space-Saving missed the 40% heavy hitter")
	}
}

func TestLossyCountingGuarantee(t *testing.T) {
	items := zipfStream(7, 50000, 1.2, 1<<14)
	g := NewLossyCounting(100) // ε = 0.01
	g.ProcessBatch(items)
	f, m := exactFreqs(items)
	for it, fe := range f {
		est := g.Estimate(it)
		if est > fe {
			t.Fatalf("item %d: LC est %d > true %d", it, est, fe)
		}
		if fe-est > m/100 {
			t.Fatalf("item %d: LC est %d, true %d, bound %d", it, est, fe, m/100)
		}
	}
	if g.StreamLen() != m {
		t.Fatal("StreamLen wrong")
	}
	if g.Size() == 0 {
		t.Fatal("no counters retained")
	}
}

func TestDGIMGuarantee(t *testing.T) {
	for _, eps := range []float64{0.5, 0.1} {
		for _, n := range []int64{64, 1000} {
			g := NewDGIM(n, eps)
			rng := rand.New(rand.NewSource(n + int64(eps*100)))
			var window []bool
			for step := 0; step < 5000; step++ {
				bit := rng.Float64() < 0.3
				g.Update(bit)
				window = append(window, bit)
				if int64(len(window)) > n {
					window = window[1:]
				}
				var m int64
				for _, b := range window {
					if b {
						m++
					}
				}
				est := g.Estimate()
				diff := est - m
				if diff < 0 {
					diff = -diff
				}
				if float64(diff) > eps*float64(m)+1 {
					t.Fatalf("ε=%g n=%d step=%d: est %d, true %d", eps, n, step, est, m)
				}
			}
			// Space is O(k log n) buckets.
			if g.Buckets() > int(2.0/eps)*(2+bitsLen(n)) {
				t.Fatalf("ε=%g n=%d: %d buckets too many", eps, n, g.Buckets())
			}
		}
	}
}

func bitsLen(n int64) int {
	k := 0
	for n > 0 {
		n >>= 1
		k++
	}
	return k
}

func TestDGIMAllOnesAndZeros(t *testing.T) {
	g := NewDGIM(100, 0.1)
	for i := 0; i < 500; i++ {
		g.Update(true)
	}
	est := g.Estimate()
	if est < 90 || est > 110 {
		t.Fatalf("all-ones window: est %d want ~100", est)
	}
	for i := 0; i < 200; i++ {
		g.Update(false)
	}
	if est := g.Estimate(); est != 0 {
		t.Fatalf("all-zeros window: est %d", est)
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewMGSeq(0) },
		func() { NewIndependent(0, 5) },
		func() { NewSpaceSaving(0) },
		func() { NewLossyCounting(0) },
		func() { NewDGIM(0, 0.1) },
		func() { NewDGIM(5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMGSeqHeavyHitters(t *testing.T) {
	items := make([]uint64, 1000)
	for i := range items {
		if i%3 == 0 {
			items[i] = 5
		} else {
			items[i] = uint64(i) + 100
		}
	}
	g := NewMGSeq(20)
	g.ProcessBatch(items)
	found := false
	for _, h := range g.HeavyHitters(0.25) {
		if h == 5 {
			found = true
		}
	}
	if !found {
		t.Fatal("MG missed 33% heavy hitter")
	}
}
