package baseline

import (
	"sync"
)

// Independent is the independent per-processor data-structure approach of
// Figure 1 / Section 5.4: the stream is partitioned across p local
// Misra-Gries summaries that are updated in parallel; answering a query
// requires merging all p summaries — a sequential bottleneck of
// Ω(p·S) (or Ω(S·log p) with a merge tree) that the paper's shared
// structure avoids. Total memory is p×S counters, a factor p larger than
// the shared approach.
type Independent struct {
	p      int
	s      int
	locals []*MGSeq
}

// NewIndependent creates p local summaries of capacity s each.
func NewIndependent(p, s int) *Independent {
	if p < 1 {
		panic("baseline: p must be >= 1")
	}
	locals := make([]*MGSeq, p)
	for i := range locals {
		locals[i] = NewMGSeq(s)
	}
	return &Independent{p: p, s: s, locals: locals}
}

// Processors returns p.
func (g *Independent) Processors() int { return g.p }

// ProcessBatch partitions the minibatch into p contiguous sub-streams and
// updates each local summary in parallel (the update phase genuinely
// parallelizes; it is the query-time merge that does not).
func (g *Independent) ProcessBatch(items []uint64) {
	n := len(items)
	if n == 0 {
		return
	}
	var wg sync.WaitGroup
	wg.Add(g.p)
	for i := 0; i < g.p; i++ {
		lo, hi := i*n/g.p, (i+1)*n/g.p
		go func(l *MGSeq, part []uint64) {
			defer wg.Done()
			l.ProcessBatch(part)
		}(g.locals[i], items[lo:hi])
	}
	wg.Wait()
}

// Query merges all local summaries sequentially at a single processor and
// returns the merged summary; its cost — O(p·S) — is what Section 5.4
// identifies as the approach's bottleneck. The locals are not destroyed.
func (g *Independent) Query() *MGSeq {
	merged := g.locals[0].Clone()
	for _, l := range g.locals[1:] {
		merged.Merge(l)
	}
	return merged
}

// QueryTree merges with a log p-deep parallel merge tree; per Section 5.4
// the depth is still Ω(S·log p) because each merge is Ω(S) sequential
// work.
func (g *Independent) QueryTree() *MGSeq {
	layer := make([]*MGSeq, len(g.locals))
	for i, l := range g.locals {
		layer[i] = l.Clone()
	}
	for len(layer) > 1 {
		half := (len(layer) + 1) / 2
		next := make([]*MGSeq, half)
		var wg sync.WaitGroup
		for i := 0; i < len(layer)/2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				layer[2*i].Merge(layer[2*i+1])
				next[i] = layer[2*i]
			}(i)
		}
		wg.Wait()
		if len(layer)%2 == 1 {
			next[half-1] = layer[len(layer)-1]
		}
		layer = next
	}
	return layer[0]
}

// SpaceWords sums the footprint of all locals: Θ(p·S) words.
func (g *Independent) SpaceWords() int {
	total := 2
	for _, l := range g.locals {
		total += l.SpaceWords()
	}
	return total
}
