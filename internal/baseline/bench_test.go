package baseline

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchStream(n int) []uint64 {
	rng := rand.New(rand.NewSource(11))
	zipf := rand.NewZipf(rng, 1.1, 1, 1<<18)
	out := make([]uint64, n)
	for i := range out {
		out[i] = zipf.Uint64()
	}
	return out
}

func BenchmarkSequentialUpdate(b *testing.B) {
	stream := benchStream(1 << 16)
	b.Run("misra-gries", func(b *testing.B) {
		g := NewMGSeq(1000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Update(stream[i%len(stream)])
		}
	})
	b.Run("space-saving", func(b *testing.B) {
		g := NewSpaceSaving(1000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Update(stream[i%len(stream)])
		}
	})
	b.Run("lossy-counting", func(b *testing.B) {
		g := NewLossyCounting(1000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Update(stream[i%len(stream)])
		}
	})
}

func BenchmarkDGIMUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	bits := make([]bool, 1<<16)
	for i := range bits {
		bits[i] = rng.Intn(3) == 0
	}
	for _, eps := range []float64{0.1, 0.01} {
		b.Run(fmt.Sprintf("eps%g", eps), func(b *testing.B) {
			g := NewDGIM(1<<20, eps)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Update(bits[i%len(bits)])
			}
		})
	}
}

func BenchmarkIndependentMerge(b *testing.B) {
	stream := benchStream(1 << 18)
	for _, p := range []int{2, 8} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			g := NewIndependent(p, 1000)
			g.ProcessBatch(stream)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = g.Query()
			}
		})
	}
}
