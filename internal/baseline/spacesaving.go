package baseline

import "container/heap"

// SpaceSaving implements the Space-Saving algorithm [MAE06]: exactly S
// counters; an untracked arrival evicts the minimum counter, inheriting
// its count as over-estimation error. Estimates satisfy
// f_e <= Estimate(e) <= f_e + m/S (note: over-estimates, where MG
// under-estimates).
type SpaceSaving struct {
	s   int
	h   ssHeap
	pos map[uint64]int // item -> heap index
	m   int64
}

type ssEntry struct {
	item  uint64
	count int64
	err   int64
}

type ssHeap struct {
	entries []ssEntry
	pos     map[uint64]int
}

func (h ssHeap) Len() int           { return len(h.entries) }
func (h ssHeap) Less(i, j int) bool { return h.entries[i].count < h.entries[j].count }
func (h ssHeap) Swap(i, j int) {
	h.entries[i], h.entries[j] = h.entries[j], h.entries[i]
	h.pos[h.entries[i].item] = i
	h.pos[h.entries[j].item] = j
}
func (h *ssHeap) Push(x any) {
	e := x.(ssEntry)
	h.pos[e.item] = len(h.entries)
	h.entries = append(h.entries, e)
}
func (h *ssHeap) Pop() any {
	old := h.entries
	n := len(old)
	e := old[n-1]
	h.entries = old[:n-1]
	delete(h.pos, e.item)
	return e
}

// NewSpaceSaving creates a summary with capacity s >= 1.
func NewSpaceSaving(s int) *SpaceSaving {
	if s < 1 {
		panic("baseline: SpaceSaving capacity must be >= 1")
	}
	pos := make(map[uint64]int, s+1)
	return &SpaceSaving{s: s, h: ssHeap{pos: pos}, pos: pos}
}

// Update processes one stream element.
func (g *SpaceSaving) Update(e uint64) {
	g.m++
	if i, ok := g.pos[e]; ok {
		g.h.entries[i].count++
		heap.Fix(&g.h, i)
		return
	}
	if len(g.h.entries) < g.s {
		heap.Push(&g.h, ssEntry{item: e, count: 1})
		return
	}
	// Evict the minimum: the newcomer inherits its count as error.
	min := g.h.entries[0]
	delete(g.pos, min.item)
	g.h.entries[0] = ssEntry{item: e, count: min.count + 1, err: min.count}
	g.pos[e] = 0
	heap.Fix(&g.h, 0)
}

// ProcessBatch feeds items one by one.
func (g *SpaceSaving) ProcessBatch(items []uint64) {
	for _, e := range items {
		g.Update(e)
	}
}

// Estimate returns the (over-)estimate for e: 0 if untracked.
func (g *SpaceSaving) Estimate(e uint64) int64 {
	if i, ok := g.pos[e]; ok {
		return g.h.entries[i].count
	}
	return 0
}

// GuaranteedCount returns the certified lower bound count - err.
func (g *SpaceSaving) GuaranteedCount(e uint64) int64 {
	if i, ok := g.pos[e]; ok {
		return g.h.entries[i].count - g.h.entries[i].err
	}
	return 0
}

// StreamLen returns the number of items processed.
func (g *SpaceSaving) StreamLen() int64 { return g.m }

// Size returns the number of live counters.
func (g *SpaceSaving) Size() int { return len(g.h.entries) }

// HeavyHitters returns items whose estimate reaches phi*m.
func (g *SpaceSaving) HeavyHitters(phi float64) []uint64 {
	thr := phi * float64(g.m)
	var out []uint64
	for _, e := range g.h.entries {
		if float64(e.count) >= thr {
			out = append(out, e.item)
		}
	}
	return out
}

// SpaceWords estimates the footprint in 64-bit words.
func (g *SpaceSaving) SpaceWords() int { return 5*len(g.h.entries) + 3 }
