package baseline

import (
	"math/rand"
	"testing"
)

type slidingRef struct {
	n     int64
	items []uint64
}

func (r *slidingRef) add(it uint64) { r.items = append(r.items, it) }

func (r *slidingRef) freqs() map[uint64]int64 {
	start := int64(len(r.items)) - r.n
	if start < 0 {
		start = 0
	}
	f := make(map[uint64]int64)
	for _, it := range r.items[start:] {
		f[it]++
	}
	return f
}

func checkLT(t *testing.T, g *LTSliding, ref *slidingRef, eps float64) {
	t.Helper()
	bound := eps * float64(g.n)
	for it, fe := range ref.freqs() {
		est := g.Estimate(it)
		if est > fe {
			t.Fatalf("item %d: est %d > true %d", it, est, fe)
		}
		if float64(fe-est) > bound+1e-9 {
			t.Fatalf("item %d: est %d true %d bound %g", it, est, fe, bound)
		}
	}
}

func TestLTSlidingGuaranteeZipf(t *testing.T) {
	n := int64(4096)
	eps := 0.02
	g := NewLTSliding(n, eps)
	ref := &slidingRef{n: n}
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.2, 1, 1<<14)
	for i := 0; i < 40000; i++ {
		it := zipf.Uint64()
		g.Update(it)
		ref.add(it)
		if i%4096 == 0 {
			checkLT(t, g, ref, eps)
		}
	}
	checkLT(t, g, ref, eps)
	if g.StreamLen() != 40000 {
		t.Fatalf("StreamLen %d", g.StreamLen())
	}
}

func TestLTSlidingGuaranteeUniform(t *testing.T) {
	n := int64(2000)
	eps := 0.05
	g := NewLTSliding(n, eps)
	ref := &slidingRef{n: n}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		it := uint64(rng.Intn(100))
		g.Update(it)
		ref.add(it)
	}
	checkLT(t, g, ref, eps)
}

func TestLTSlidingSlideOut(t *testing.T) {
	n := int64(100)
	g := NewLTSliding(n, 0.5)
	for i := 0; i < 100; i++ {
		g.Update(7)
	}
	if est := g.Estimate(7); est < 50 {
		t.Fatalf("hot item est %d", est)
	}
	for i := 0; i < 200; i++ {
		g.Update(uint64(1000 + i))
	}
	if est := g.Estimate(7); est != 0 {
		t.Fatalf("slid-out item est %d", est)
	}
}

func TestLTSlidingSpaceBound(t *testing.T) {
	n := int64(1 << 14)
	eps := 0.02
	g := NewLTSliding(n, eps)
	// All-distinct stream: the adversarial case for space.
	for i := 0; i < 50000; i++ {
		g.Update(uint64(i))
	}
	if g.Size() > int(8/eps)+2 {
		t.Fatalf("size %d exceeds S", g.Size())
	}
	// Each counter is O(f_e/γ); with γ = εn/8 total is O(1/ε + S).
	budget := int(10/eps) + 8*g.Size() + 64
	if sw := g.SpaceWords(); sw > budget {
		t.Fatalf("space %d exceeds budget %d", sw, budget)
	}
}

func TestLTSlidingExactRegime(t *testing.T) {
	// εn < 16 => γ=1 and no pruning: estimates exact.
	n := int64(64)
	g := NewLTSliding(n, 0.1)
	ref := &slidingRef{n: n}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		it := uint64(rng.Intn(10))
		g.Update(it)
		ref.add(it)
	}
	for it, fe := range ref.freqs() {
		if est := g.Estimate(it); est != fe {
			t.Fatalf("exact regime: item %d est %d true %d", it, est, fe)
		}
	}
}

func TestLTSlidingHeavyHitters(t *testing.T) {
	n := int64(5000)
	eps := 0.05
	g := NewLTSliding(n, eps)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20000; i++ {
		if rng.Float64() < 0.3 {
			g.Update(1)
		} else {
			g.Update(uint64(rng.Intn(1 << 20)))
		}
	}
	found := false
	for _, h := range g.HeavyHitters(0.2, eps) {
		if h == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("missed the 30% heavy hitter")
	}
}

func TestLTSlidingPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewLTSliding(0, 0.1) },
		func() { NewLTSliding(10, 0) },
		func() { NewLTSliding(10, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
