package baseline

import (
	"repro/internal/css"
	"repro/internal/snapshot"
)

// LTSliding is a sequential sliding-window frequent-items summary in the
// style of Lee and Ting [LT06b] — the algorithm Section 5.3 of the paper
// parallelizes. It keeps at most S per-item γ-snapshot counters; a
// tracked arrival appends a 1 to its item's counter, an untracked
// arrival when full decrements every counter by one (the Misra-Gries
// step), and counters are advanced lazily (zero-gap segments) so tracked
// arrivals cost O(1) amortized. Estimates satisfy
// f_e - εn <= Estimate(e) <= f_e for window frequency f_e.
//
// This is the sequential work/space comparator for the E5 ablation; the
// original paper achieves O(1) worst-case updates with additional
// machinery that does not change the space or accuracy shape.
type LTSliding struct {
	n     int64
	s     int
	gamma int64
	adj   int64
	t     int64
	m     map[uint64]*ltEntry
}

type ltEntry struct {
	snap  *snapshot.Snapshot
	lastT int64
}

// NewLTSliding creates a summary for window n >= 1 and epsilon in (0, 1].
func NewLTSliding(n int64, epsilon float64) *LTSliding {
	if n < 1 {
		panic("baseline: LTSliding window must be >= 1")
	}
	if epsilon <= 0 || epsilon > 1 {
		panic("baseline: LTSliding epsilon must be in (0, 1]")
	}
	s := int(8/epsilon) + 1
	gamma := int64(epsilon * float64(n) / 8)
	if gamma < 1 {
		gamma = 1
		// γ=1 counters are exact; disable pruning like the parallel
		// implementation does in this regime (n < 16/ε, so 2n+1 counters
		// still cost O(1/ε) space).
		if alt := int(2*n) + 1; alt > s {
			s = alt
		}
	}
	lt := &LTSliding{n: n, s: s, gamma: gamma, m: make(map[uint64]*ltEntry)}
	if gamma > 1 {
		lt.adj = 2 * gamma
	}
	return lt
}

// catchUp advances e's snapshot to the current time with a zero segment.
func (g *LTSliding) catchUp(e *ltEntry) {
	if gap := g.t - e.lastT; gap > 0 {
		e.snap.Append(css.Segment{Len: gap})
		e.lastT = g.t
	}
}

// Update processes one arrival.
func (g *LTSliding) Update(item uint64) {
	g.t++
	if e, ok := g.m[item]; ok {
		gap := g.t - e.lastT
		e.snap.Append(css.Segment{Len: gap, Ones: []int64{gap}})
		e.lastT = g.t
		return
	}
	if len(g.m) < g.s {
		e := &ltEntry{snap: snapshot.New(g.gamma)}
		e.snap.Append(css.Segment{Len: g.t, Ones: []int64{g.t}})
		e.lastT = g.t
		g.m[item] = e
		return
	}
	// Full and untracked: the Misra-Gries step — decrement everything by
	// one (after evicting content too old for the window, so the
	// decrement bites live mass), dropping counters that reach zero.
	for it, e := range g.m {
		g.catchUp(e)
		e.snap.EvictBefore(g.t - g.n + 1)
		e.snap.Decrement(1)
		if e.snap.Value() == 0 {
			delete(g.m, it)
		}
	}
}

// ProcessBatch feeds items one by one (sequential comparator interface).
func (g *LTSliding) ProcessBatch(items []uint64) {
	for _, it := range items {
		g.Update(it)
	}
}

// Estimate returns the window-frequency estimate for item.
func (g *LTSliding) Estimate(item uint64) int64 {
	e, ok := g.m[item]
	if !ok {
		return 0
	}
	g.catchUp(e)
	e.snap.EvictBefore(g.t - g.n + 1)
	v := e.snap.Value() - g.adj
	if v < 0 {
		return 0
	}
	return v
}

// StreamLen returns the number of arrivals processed.
func (g *LTSliding) StreamLen() int64 { return g.t }

// Size returns the number of live counters.
func (g *LTSliding) Size() int { return len(g.m) }

// HeavyHitters returns items estimated at or above (phi-ε)·min(t, n).
func (g *LTSliding) HeavyHitters(phi float64, epsilon float64) []uint64 {
	w := g.t
	if w > g.n {
		w = g.n
	}
	thr := (phi - epsilon) * float64(w)
	var out []uint64
	for it := range g.m {
		if float64(g.Estimate(it)) >= thr {
			out = append(out, it)
		}
	}
	return out
}

// SpaceWords estimates the footprint in 64-bit words.
func (g *LTSliding) SpaceWords() int {
	total := 4
	for _, e := range g.m {
		total += e.snap.SpaceWords() + 3
	}
	return total
}
