package parallel

// Number is the constraint for arithmetic reductions and scans.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr |
		~float32 | ~float64
}

// Reduce combines leaf results over [0, n) using an associative combine
// with identity id. leaf(lo, hi) must compute the reduction of the range
// sequentially; combine must be associative with id as identity.
func Reduce[T any](n, grain int, id T, combine func(a, b T) T, leaf func(lo, hi int) T) T {
	if n <= 0 {
		return id
	}
	chunks := splitCount(n, grain)
	if chunks == 1 {
		return combine(id, leaf(0, n))
	}
	partial := make([]T, chunks)
	chunked(n, chunks, func(c, lo, hi int) {
		partial[c] = leaf(lo, hi)
	})
	out := id
	for _, p := range partial {
		out = combine(out, p)
	}
	return out
}

// Sum returns the sum of xs using parallel reduction.
func Sum[T Number](xs []T) T {
	return Reduce(len(xs), DefaultGrain, T(0),
		func(a, b T) T { return a + b },
		func(lo, hi int) T {
			var s T
			for _, v := range xs[lo:hi] {
				s += v
			}
			return s
		})
}

// Max returns the maximum of xs, or def when xs is empty.
func Max[T Number](xs []T, def T) T {
	if len(xs) == 0 {
		return def
	}
	return Reduce(len(xs), DefaultGrain, xs[0],
		func(a, b T) T {
			if a > b {
				return a
			}
			return b
		},
		func(lo, hi int) T {
			m := xs[lo]
			for _, v := range xs[lo+1 : hi] {
				if v > m {
					m = v
				}
			}
			return m
		})
}

// Min returns the minimum of xs, or def when xs is empty.
func Min[T Number](xs []T, def T) T {
	if len(xs) == 0 {
		return def
	}
	return Reduce(len(xs), DefaultGrain, xs[0],
		func(a, b T) T {
			if a < b {
				return a
			}
			return b
		},
		func(lo, hi int) T {
			m := xs[lo]
			for _, v := range xs[lo+1 : hi] {
				if v < m {
					m = v
				}
			}
			return m
		})
}

// Count returns the number of indices i in [0, n) for which pred(i) holds.
func Count(n int, pred func(i int) bool) int {
	return Reduce(n, DefaultGrain, 0,
		func(a, b int) int { return a + b },
		func(lo, hi int) int {
			c := 0
			for i := lo; i < hi; i++ {
				if pred(i) {
					c++
				}
			}
			return c
		})
}
