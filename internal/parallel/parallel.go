// Package parallel provides fork-join parallel primitives in the spirit of
// the work-depth model used by the paper: parallel for, reduction, prefix
// sums (scan), packing/filtering, stable integer sorting, and rank
// selection. All primitives perform work proportional to their sequential
// counterparts and realize low depth as a shallow fork-join DAG over a
// bounded number of goroutines.
//
// The number of workers defaults to runtime.GOMAXPROCS(0) and can be
// overridden with SetWorkers, which the benchmark harness uses to measure
// speedup curves.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers holds the configured worker count; 0 means "use GOMAXPROCS".
var workers atomic.Int64

// Workers reports the number of workers parallel primitives will use.
func Workers() int {
	if p := int(workers.Load()); p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the worker count used by all primitives in this
// package. p <= 0 restores the default (GOMAXPROCS). It returns the
// previous setting. It is safe for concurrent use, but callers that change
// it mid-computation get an unspecified mix of old and new parallelism.
func SetWorkers(p int) int {
	old := int(workers.Swap(int64(p)))
	return old
}

// DefaultGrain is the smallest amount of per-goroutine work worth forking
// for. Loop bodies cheaper than a few nanoseconds per element should use a
// larger grain via Blocks.
const DefaultGrain = 1 << 11

// splitCount returns how many chunks to split n units of work into, given a
// minimum grain per chunk.
func splitCount(n, grain int) int {
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	if p := Workers(); chunks > p {
		chunks = p
	}
	if chunks < 1 {
		chunks = 1
	}
	return chunks
}

// Blocks partitions [0, n) into contiguous blocks of at least grain
// elements and runs f(lo, hi) on each block in parallel. f must be safe to
// call concurrently on disjoint ranges. Blocks runs f inline when the work
// does not warrant forking.
func Blocks(n, grain int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := splitCount(n, grain)
	if chunks == 1 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(chunks)
	for c := 0; c < chunks; c++ {
		lo := c * n / chunks
		hi := (c + 1) * n / chunks
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// chunked splits [0, n) into exactly chunks contiguous ranges and runs
// f(c, lo, hi) on each, where c is the chunk index. chunks must be >= 1.
func chunked(n, chunks int, f func(c, lo, hi int)) {
	if chunks == 1 {
		f(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(chunks - 1)
	for c := 1; c < chunks; c++ {
		go func(c int) {
			defer wg.Done()
			f(c, c*n/chunks, (c+1)*n/chunks)
		}(c)
	}
	f(0, 0, n/chunks)
	wg.Wait()
}

// For runs f(i) for every i in [0, n) in parallel with a default grain.
func For(n int, f func(i int)) {
	ForGrain(n, DefaultGrain, f)
}

// ForGrain runs f(i) for every i in [0, n) in parallel, forking only when
// chunks of at least grain iterations are available.
func ForGrain(n, grain int, f func(i int)) {
	Blocks(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// Do runs the given thunks in parallel and waits for all of them. It is the
// basic fork-join "spawn; sync" construct.
func Do(fns ...func()) {
	if len(fns) == 0 {
		return
	}
	if len(fns) == 1 {
		fns[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns) - 1)
	for _, fn := range fns[1:] {
		go func(fn func()) {
			defer wg.Done()
			fn()
		}(fn)
	}
	fns[0]()
	wg.Wait()
}
