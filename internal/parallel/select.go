package parallel

// Rank selection (the "variant of quickselect" used by Lemma 5.3 and the
// predict step of Theorem 5.4 to find the pruning cutoff): expected linear
// work, polylog span via parallel three-way partitioning.

// selectRNG is a small deterministic splitmix64 state for pivot choice.
// Pivot quality only affects performance, never correctness, so a package
// level generator guarded by atomic update is unnecessary; each call seeds
// from the input length and first element for reproducibility.
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SelectKth returns the k-th smallest element of xs (k is 0-based). It may
// permute xs. Panics if k is out of range.
func SelectKth(xs []int64, k int) int64 {
	if k < 0 || k >= len(xs) {
		panic("parallel: SelectKth rank out of range")
	}
	rng := splitmix64{s: uint64(len(xs))*0x9e3779b9 + uint64(xs[0])}
	for {
		n := len(xs)
		if n <= 2048 {
			return selectSeq(xs, k)
		}
		pivot := xs[rng.next()%uint64(n)]
		// Three-way parallel partition by counting then packing.
		var less, equal int
		Do(
			func() { less = Count(n, func(i int) bool { return xs[i] < pivot }) },
			func() { equal = Count(n, func(i int) bool { return xs[i] == pivot }) },
		)
		switch {
		case k < less:
			xs = Pack(xs, func(i int) bool { return xs[i] < pivot })
		case k < less+equal:
			return pivot
		default:
			xs = Pack(xs, func(i int) bool { return xs[i] > pivot })
			k -= less + equal
		}
	}
}

// selectSeq is an in-place sequential quickselect used for small ranges.
func selectSeq(xs []int64, k int) int64 {
	lo, hi := 0, len(xs)-1
	rng := splitmix64{s: uint64(len(xs)) ^ 0xabcdef}
	for {
		if lo == hi {
			return xs[lo]
		}
		p := xs[lo+int(rng.next()%uint64(hi-lo+1))]
		i, j, m := lo, hi, lo
		// Dutch-flag partition around p.
		for m <= j {
			switch {
			case xs[m] < p:
				xs[i], xs[m] = xs[m], xs[i]
				i++
				m++
			case xs[m] > p:
				xs[m], xs[j] = xs[j], xs[m]
				j--
			default:
				m++
			}
		}
		switch {
		case k < i:
			hi = i - 1
		case k > j:
			lo = j + 1
		default:
			return p
		}
	}
}

// KthLargest returns the k-th largest element of xs (1-based: k=1 is the
// maximum). It may permute xs. Panics if k is out of [1, len(xs)].
func KthLargest(xs []int64, k int) int64 {
	if k < 1 || k > len(xs) {
		panic("parallel: KthLargest rank out of range")
	}
	return SelectKth(xs, len(xs)-k)
}
