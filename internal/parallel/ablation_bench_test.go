package parallel

import (
	"fmt"
	"testing"
)

// BenchmarkGrainAblation quantifies the fork-grain design choice
// (DESIGN.md §4): too-small grains drown in goroutine overhead,
// too-large grains forfeit parallelism. DefaultGrain sits on the
// plateau.
func BenchmarkGrainAblation(b *testing.B) {
	const n = 1 << 20
	xs := make([]int64, n)
	for _, grain := range []int{16, 256, DefaultGrain, 1 << 16, n} {
		b.Run(fmt.Sprintf("grain%d", grain), func(b *testing.B) {
			b.SetBytes(n * 8)
			for i := 0; i < b.N; i++ {
				ForGrain(n, grain, func(j int) { xs[j]++ })
			}
		})
	}
}

// BenchmarkWorkersAblation shows the same loop under different worker
// counts (the knob the speedup experiment E9 sweeps).
func BenchmarkWorkersAblation(b *testing.B) {
	const n = 1 << 20
	xs := make([]int64, n)
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			old := SetWorkers(p)
			defer SetWorkers(old)
			b.SetBytes(n * 8)
			for i := 0; i < b.N; i++ {
				ForGrain(n, DefaultGrain, func(j int) { xs[j] += 2 })
			}
		})
	}
}
