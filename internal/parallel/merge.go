package parallel

import "sort"

// Merge merges two sorted int64 slices into a freshly allocated sorted
// slice using the classic divide-and-conquer parallel merge: O(n+m) work,
// O(log^2(n+m)) span. Used by tests and by the independent-data-structure
// baseline's merge tree.
func Merge(a, b []int64) []int64 {
	out := make([]int64, len(a)+len(b))
	mergeInto(a, b, out)
	return out
}

func mergeInto(a, b []int64, out []int64) {
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return
	}
	if len(a)+len(b) <= 4*DefaultGrain {
		i, j, k := 0, 0, 0
		for i < len(a) && j < len(b) {
			if a[i] <= b[j] {
				out[k] = a[i]
				i++
			} else {
				out[k] = b[j]
				j++
			}
			k++
		}
		copy(out[k:], a[i:])
		copy(out[k+len(a)-i:], b[j:])
		return
	}
	ma := len(a) / 2
	pivot := a[ma]
	mb := sort.Search(len(b), func(i int) bool { return b[i] > pivot })
	Do(
		func() { mergeInto(a[:ma], b[:mb], out[:ma+mb]) },
		func() { mergeInto(a[ma:], b[mb:], out[ma+mb:]) },
	)
}
