package parallel

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestWorkersDefault(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d, want >= 1", Workers())
	}
}

func TestSetWorkers(t *testing.T) {
	old := SetWorkers(3)
	defer SetWorkers(old)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", got)
	}
	SetWorkers(0)
	if got := Workers(); got < 1 {
		t.Fatalf("Workers() = %d after reset", got)
	}
}

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 10000} {
		seen := make([]int32, n)
		ForGrain(n, 8, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestBlocksPartition(t *testing.T) {
	for _, n := range []int{1, 5, 1000, 12345} {
		var total int64
		Blocks(n, 16, func(lo, hi int) {
			if lo >= hi {
				t.Errorf("empty block [%d,%d)", lo, hi)
			}
			atomic.AddInt64(&total, int64(hi-lo))
		})
		if total != int64(n) {
			t.Fatalf("n=%d: blocks covered %d elements", n, total)
		}
	}
}

func TestBlocksZero(t *testing.T) {
	called := false
	Blocks(0, 1, func(lo, hi int) { called = true })
	if called {
		t.Fatal("Blocks called f for n=0")
	}
}

func TestDo(t *testing.T) {
	var a, b, c int32
	Do(
		func() { atomic.AddInt32(&a, 1) },
		func() { atomic.AddInt32(&b, 1) },
		func() { atomic.AddInt32(&c, 1) },
	)
	if a != 1 || b != 1 || c != 1 {
		t.Fatalf("Do ran thunks %d/%d/%d times", a, b, c)
	}
	Do() // must not panic
}

func TestSum(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4096, 100001} {
		xs := make([]int64, n)
		var want int64
		for i := range xs {
			xs[i] = int64(i%97 - 48)
			want += xs[i]
		}
		if got := Sum(xs); got != want {
			t.Fatalf("n=%d: Sum=%d want %d", n, got, want)
		}
	}
}

func TestMinMax(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]int, 50000)
	wantMin, wantMax := 1<<62, -(1 << 62)
	for i := range xs {
		xs[i] = rng.Intn(1000000) - 500000
		if xs[i] < wantMin {
			wantMin = xs[i]
		}
		if xs[i] > wantMax {
			wantMax = xs[i]
		}
	}
	if got := Min(xs, 0); got != wantMin {
		t.Fatalf("Min=%d want %d", got, wantMin)
	}
	if got := Max(xs, 0); got != wantMax {
		t.Fatalf("Max=%d want %d", got, wantMax)
	}
	if got := Min([]int{}, 42); got != 42 {
		t.Fatalf("Min empty = %d want default 42", got)
	}
	if got := Max([]int{}, -7); got != -7 {
		t.Fatalf("Max empty = %d want default -7", got)
	}
}

func TestReduceNonZeroIdentity(t *testing.T) {
	// product with identity 1 — catches implementations that assume the
	// identity is the zero value.
	got := Reduce(10, 2, 1,
		func(a, b int) int { return a * b },
		func(lo, hi int) int {
			p := 1
			for i := lo; i < hi; i++ {
				p *= 2
			}
			return p
		})
	if got != 1024 {
		t.Fatalf("Reduce product = %d want 1024", got)
	}
}

func TestCount(t *testing.T) {
	n := 100000
	got := Count(n, func(i int) bool { return i%3 == 0 })
	want := (n + 2) / 3
	if got != want {
		t.Fatalf("Count = %d want %d", got, want)
	}
}

func TestScanExclusive(t *testing.T) {
	for _, n := range []int{0, 1, 2, 1000, 65537} {
		xs := make([]int64, n)
		ref := make([]int64, n)
		var run int64
		for i := range xs {
			xs[i] = int64(i%13 + 1)
			ref[i] = run
			run += xs[i]
		}
		total := ScanExclusive(xs)
		if total != run {
			t.Fatalf("n=%d: total=%d want %d", n, total, run)
		}
		for i := range xs {
			if xs[i] != ref[i] {
				t.Fatalf("n=%d: xs[%d]=%d want %d", n, i, xs[i], ref[i])
			}
		}
	}
}

func TestScanInclusive(t *testing.T) {
	for _, n := range []int{0, 1, 2, 999, 65536} {
		xs := make([]int, n)
		ref := make([]int, n)
		run := 0
		for i := range xs {
			xs[i] = i%7 + 1
			run += xs[i]
			ref[i] = run
		}
		total := ScanInclusive(xs)
		if total != run {
			t.Fatalf("n=%d: total=%d want %d", n, total, run)
		}
		for i := range xs {
			if xs[i] != ref[i] {
				t.Fatalf("n=%d: xs[%d]=%d want %d", n, i, xs[i], ref[i])
			}
		}
	}
}

func TestPackIndices(t *testing.T) {
	for _, n := range []int{0, 1, 100, 33333} {
		idx := PackIndices(n, func(i int) bool { return i%5 == 2 })
		want := 0
		for i := 0; i < n; i++ {
			if i%5 == 2 {
				if want >= len(idx) || idx[want] != i {
					t.Fatalf("n=%d: missing or misplaced index %d", n, i)
				}
				want++
			}
		}
		if len(idx) != want {
			t.Fatalf("n=%d: got %d indices want %d", n, len(idx), want)
		}
	}
}

func TestPack(t *testing.T) {
	xs := make([]string, 1000)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = "keep"
		} else {
			xs[i] = "drop"
		}
	}
	out := Pack(xs, func(i int) bool { return xs[i] == "keep" })
	if len(out) != 500 {
		t.Fatalf("Pack kept %d want 500", len(out))
	}
	for _, s := range out {
		if s != "keep" {
			t.Fatal("Pack kept a dropped element")
		}
	}
}

func TestMapCopyFill(t *testing.T) {
	m := Map(1000, func(i int) int { return i * i })
	for i, v := range m {
		if v != i*i {
			t.Fatalf("Map[%d]=%d", i, v)
		}
	}
	c := Copy(m)
	for i := range c {
		if c[i] != m[i] {
			t.Fatalf("Copy[%d] mismatch", i)
		}
	}
	Fill(c, -1)
	for i, v := range c {
		if v != -1 {
			t.Fatalf("Fill[%d]=%d", i, v)
		}
	}
}

func TestCountingSortPairsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 20000
	keyRange := 37
	keys := make([]uint32, n)
	vals := make([]int32, n)
	for i := range keys {
		keys[i] = uint32(rng.Intn(keyRange))
		vals[i] = int32(i)
	}
	orig := append([]uint32(nil), keys...)
	CountingSortPairs(keys, vals, keyRange)
	checkStableSorted(t, keys, vals, orig)
}

func TestRadixSortPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, keyRange := range []uint32{2, 255, 256, 65536, 1 << 20, 1 << 31} {
		n := 30000
		keys := make([]uint32, n)
		vals := make([]int32, n)
		for i := range keys {
			keys[i] = uint32(rng.Int63()) % keyRange
			vals[i] = int32(i)
		}
		orig := append([]uint32(nil), keys...)
		RadixSortPairs(keys, vals, keyRange)
		checkStableSorted(t, keys, vals, orig)
	}
}

// checkStableSorted verifies keys are non-decreasing, vals is a
// permutation consistent with the original keys, and ties preserve
// original order (stability).
func checkStableSorted(t *testing.T, keys []uint32, vals []int32, orig []uint32) {
	t.Helper()
	seen := make([]bool, len(vals))
	for i := range keys {
		if i > 0 && keys[i-1] > keys[i] {
			t.Fatalf("keys not sorted at %d: %d > %d", i, keys[i-1], keys[i])
		}
		if i > 0 && keys[i-1] == keys[i] && vals[i-1] >= vals[i] {
			t.Fatalf("unstable at %d: key %d positions %d,%d", i, keys[i], vals[i-1], vals[i])
		}
		v := vals[i]
		if v < 0 || int(v) >= len(orig) || seen[v] {
			t.Fatalf("vals not a permutation at %d (v=%d)", i, v)
		}
		seen[v] = true
		if orig[v] != keys[i] {
			t.Fatalf("vals[%d]=%d carries key %d want %d", i, v, orig[v], keys[i])
		}
	}
}

func TestSortIndicesByKey(t *testing.T) {
	xs := []uint32{5, 3, 5, 1, 3, 5, 0}
	idx := SortIndicesByKey(len(xs), 6, func(i int) uint32 { return xs[i] })
	want := []int32{6, 3, 1, 4, 0, 2, 5}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("idx=%v want %v", idx, want)
		}
	}
}

func TestSelectKth(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 100, 5000, 100000} {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(rng.Intn(500)) // many duplicates
		}
		sorted := append([]int64(nil), xs...)
		sortInt64(sorted)
		for _, k := range []int{0, n / 3, n / 2, n - 1} {
			cp := append([]int64(nil), xs...)
			if got := SelectKth(cp, k); got != sorted[k] {
				t.Fatalf("n=%d k=%d: got %d want %d", n, k, got, sorted[k])
			}
		}
	}
}

func TestKthLargest(t *testing.T) {
	xs := []int64{9, 1, 8, 2, 7, 3}
	if got := KthLargest(append([]int64(nil), xs...), 1); got != 9 {
		t.Fatalf("KthLargest(1)=%d", got)
	}
	if got := KthLargest(append([]int64(nil), xs...), 3); got != 7 {
		t.Fatalf("KthLargest(3)=%d", got)
	}
	if got := KthLargest(append([]int64(nil), xs...), 6); got != 1 {
		t.Fatalf("KthLargest(6)=%d", got)
	}
}

func TestSelectKthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SelectKth out-of-range did not panic")
		}
	}()
	SelectKth([]int64{1, 2}, 2)
}

func TestMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, na := range []int{0, 1, 100, 50000} {
		for _, nb := range []int{0, 3, 49999} {
			a := sortedRandom(rng, na)
			b := sortedRandom(rng, nb)
			out := Merge(a, b)
			if len(out) != na+nb {
				t.Fatalf("len=%d want %d", len(out), na+nb)
			}
			for i := 1; i < len(out); i++ {
				if out[i-1] > out[i] {
					t.Fatalf("merge not sorted at %d", i)
				}
			}
			var sa, sb, so int64
			for _, v := range a {
				sa += v
			}
			for _, v := range b {
				sb += v
			}
			for _, v := range out {
				so += v
			}
			if so != sa+sb {
				t.Fatal("merge lost elements")
			}
		}
	}
}

func sortedRandom(rng *rand.Rand, n int) []int64 {
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(rng.Intn(1000000))
	}
	sortInt64(xs)
	return xs
}

func sortInt64(xs []int64) {
	// simple insertion-free sort via sort.Slice replacement without import
	// churn: use a counting-free quicksort from the stdlib.
	quickSortInt64(xs)
}

func quickSortInt64(xs []int64) {
	if len(xs) < 2 {
		return
	}
	p := xs[len(xs)/2]
	lo, hi := 0, len(xs)-1
	for lo <= hi {
		for xs[lo] < p {
			lo++
		}
		for xs[hi] > p {
			hi--
		}
		if lo <= hi {
			xs[lo], xs[hi] = xs[hi], xs[lo]
			lo++
			hi--
		}
	}
	quickSortInt64(xs[:hi+1])
	quickSortInt64(xs[lo:])
}
