package parallel

// This file implements the role of Theorem 2.2 (parallel integer sort): a
// stable, linear-work sort for integer keys from a bounded range, realized
// as a parallel LSD radix sort whose per-digit pass is a stable parallel
// counting sort. Stability matters: the sift routine (Lemma 5.9) relies on
// it to keep stream positions in order.

const radixBits = 8
const radixSize = 1 << radixBits // buckets per digit pass

// CountingSortPairs stably sorts the parallel arrays (keys, vals) by key.
// All keys must be < keyRange. It is a single-pass stable counting sort
// with per-chunk histograms: O(n + p*keyRange) work, O(n/p + keyRange)
// span. Use RadixSortPairs when keyRange is large.
func CountingSortPairs(keys []uint32, vals []int32, keyRange int) {
	n := len(keys)
	if n != len(vals) {
		panic("parallel: CountingSortPairs length mismatch")
	}
	if n <= 1 || keyRange <= 1 {
		return
	}
	dstK := make([]uint32, n)
	dstV := make([]int32, n)
	countingPass(keys, vals, dstK, dstV, keyRange, func(k uint32) uint32 { return k })
	copy(keys, dstK)
	copy(vals, dstV)
}

// countingPass stably scatters (srcK, srcV) into (dstK, dstV) ordered by
// digit(srcK[i]), which must be < k.
func countingPass(srcK []uint32, srcV []int32, dstK []uint32, dstV []int32, k int, digit func(uint32) uint32) {
	n := len(srcK)
	chunks := splitCount(n, DefaultGrain)
	// counts[c*k+d] = number of keys with digit d in chunk c.
	counts := make([]int32, chunks*k)
	chunked(n, chunks, func(c, lo, hi int) {
		row := counts[c*k : (c+1)*k]
		for _, key := range srcK[lo:hi] {
			row[digit(key)]++
		}
	})
	// Column-major exclusive scan: for stability, all of digit d in chunk 0
	// precedes digit d in chunk 1, etc., and digit d precedes digit d+1.
	var total int32
	for d := 0; d < k; d++ {
		for c := 0; c < chunks; c++ {
			i := c*k + d
			v := counts[i]
			counts[i] = total
			total += v
		}
	}
	chunked(n, chunks, func(c, lo, hi int) {
		row := counts[c*k : (c+1)*k]
		for i := lo; i < hi; i++ {
			d := digit(srcK[i])
			pos := row[d]
			row[d]++
			dstK[pos] = srcK[i]
			dstV[pos] = srcV[i]
		}
	})
}

// RadixSortPairs stably sorts the parallel arrays (keys, vals) by key
// using LSD radix passes of radixBits bits. All keys must be < keyRange.
// O(n * ceil(log keyRange / 8)) work — linear for keyRange polynomial in n.
func RadixSortPairs(keys []uint32, vals []int32, keyRange uint32) {
	n := len(keys)
	if n != len(vals) {
		panic("parallel: RadixSortPairs length mismatch")
	}
	if n <= 1 || keyRange <= 1 {
		return
	}
	passes := 0
	for r := uint64(keyRange) - 1; r > 0; r >>= radixBits {
		passes++
	}
	if passes*radixSize > 2*n && keyRange <= uint32(4*n)+4 {
		// Small inputs: a single counting pass over the whole range is
		// cheaper than multiple digit passes.
		CountingSortPairs(keys, vals, int(keyRange))
		return
	}
	tmpK := make([]uint32, n)
	tmpV := make([]int32, n)
	srcK, srcV, dstK, dstV := keys, vals, tmpK, tmpV
	for p := 0; p < passes; p++ {
		shift := uint(p * radixBits)
		countingPass(srcK, srcV, dstK, dstV, radixSize, func(k uint32) uint32 {
			return (k >> shift) & (radixSize - 1)
		})
		srcK, srcV, dstK, dstV = dstK, dstV, srcK, srcV
	}
	if passes%2 == 1 {
		copy(keys, srcK)
		copy(vals, srcV)
	}
}

// SortIndicesByKey returns a permutation idx of [0, n) such that
// key(idx[0]) <= key(idx[1]) <= ... with ties broken by original position
// (stable). Keys must be < keyRange.
func SortIndicesByKey(n int, keyRange uint32, key func(i int) uint32) []int32 {
	keys := make([]uint32, n)
	vals := make([]int32, n)
	ForGrain(n, DefaultGrain, func(i int) {
		keys[i] = key(i)
		vals[i] = int32(i)
	})
	RadixSortPairs(keys, vals, keyRange)
	return vals
}
