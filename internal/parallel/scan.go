package parallel

// ScanExclusive replaces xs with its exclusive prefix sum and returns the
// total. That is, on return xs[i] holds the sum of the original
// xs[0..i-1], and the returned value is the sum of all original elements.
// The classic two-pass block algorithm: per-block sums, sequential scan of
// the (few) block sums, then per-block local scans. O(n) work, O(n/p + p)
// span.
func ScanExclusive[T Number](xs []T) T {
	n := len(xs)
	if n == 0 {
		return 0
	}
	chunks := splitCount(n, DefaultGrain)
	if chunks == 1 {
		var run T
		for i := 0; i < n; i++ {
			v := xs[i]
			xs[i] = run
			run += v
		}
		return run
	}
	sums := make([]T, chunks)
	chunked(n, chunks, func(c, lo, hi int) {
		var s T
		for _, v := range xs[lo:hi] {
			s += v
		}
		sums[c] = s
	})
	var total T
	for c := 0; c < chunks; c++ {
		s := sums[c]
		sums[c] = total
		total += s
	}
	chunked(n, chunks, func(c, lo, hi int) {
		run := sums[c]
		for i := lo; i < hi; i++ {
			v := xs[i]
			xs[i] = run
			run += v
		}
	})
	return total
}

// ScanInclusive replaces xs with its inclusive prefix sum and returns the
// total (equal to the last element on return when xs is non-empty).
func ScanInclusive[T Number](xs []T) T {
	n := len(xs)
	if n == 0 {
		return 0
	}
	chunks := splitCount(n, DefaultGrain)
	if chunks == 1 {
		var run T
		for i := 0; i < n; i++ {
			run += xs[i]
			xs[i] = run
		}
		return run
	}
	sums := make([]T, chunks)
	chunked(n, chunks, func(c, lo, hi int) {
		var run T
		for i := lo; i < hi; i++ {
			run += xs[i]
			xs[i] = run
		}
		sums[c] = run
	})
	var total T
	for c := 0; c < chunks; c++ {
		s := sums[c]
		sums[c] = total
		total += s
	}
	chunked(n, chunks, func(c, lo, hi int) {
		off := sums[c]
		if off == 0 {
			return
		}
		for i := lo; i < hi; i++ {
			xs[i] += off
		}
	})
	return total
}
