package parallel

// PackIndices returns, in increasing order, every index i in [0, n) for
// which keep(i) reports true. It uses the standard flag/prefix-sum
// compaction: O(n) work and polylog span.
func PackIndices(n int, keep func(i int) bool) []int {
	if n == 0 {
		return nil
	}
	flags := make([]int, n)
	ForGrain(n, DefaultGrain, func(i int) {
		if keep(i) {
			flags[i] = 1
		}
	})
	total := ScanExclusive(flags)
	out := make([]int, total)
	ForGrain(n, DefaultGrain, func(i int) {
		// flags now holds the exclusive prefix sum; index i was kept iff
		// the sum increases at i.
		pos := flags[i]
		next := total
		if i+1 < n {
			next = flags[i+1]
		}
		if next > pos {
			out[pos] = i
		}
	})
	return out
}

// Pack returns the elements xs[i] for which keep(i) is true, preserving
// order.
func Pack[T any](xs []T, keep func(i int) bool) []T {
	idx := PackIndices(len(xs), keep)
	out := make([]T, len(idx))
	ForGrain(len(idx), DefaultGrain, func(j int) {
		out[j] = xs[idx[j]]
	})
	return out
}

// Map applies f to each index in [0, n) and collects the results.
func Map[T any](n int, f func(i int) T) []T {
	out := make([]T, n)
	ForGrain(n, DefaultGrain, func(i int) {
		out[i] = f(i)
	})
	return out
}

// Copy copies src into a freshly allocated slice in parallel.
func Copy[T any](src []T) []T {
	dst := make([]T, len(src))
	Blocks(len(src), DefaultGrain, func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
	return dst
}

// Fill sets every element of xs to v in parallel.
func Fill[T any](xs []T, v T) {
	ForGrain(len(xs), DefaultGrain, func(i int) {
		xs[i] = v
	})
}
