package parallel

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkForGrain(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 18} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			xs := make([]int64, n)
			b.SetBytes(int64(n) * 8)
			for i := 0; i < b.N; i++ {
				ForGrain(n, DefaultGrain, func(j int) { xs[j]++ })
			}
		})
	}
}

func BenchmarkScanExclusive(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 20} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			xs := make([]int64, n)
			b.SetBytes(int64(n) * 8)
			for i := 0; i < b.N; i++ {
				for j := range xs {
					xs[j] = 1
				}
				ScanExclusive(xs)
			}
		})
	}
}

func BenchmarkPackIndices(b *testing.B) {
	n := 1 << 20
	b.SetBytes(int64(n))
	for i := 0; i < b.N; i++ {
		_ = PackIndices(n, func(j int) bool { return j%3 == 0 })
	}
}

func BenchmarkRadixSortPairs(b *testing.B) {
	for _, keyRange := range []uint32{1 << 8, 1 << 16, 1 << 24} {
		b.Run(fmt.Sprintf("range%d", keyRange), func(b *testing.B) {
			n := 1 << 18
			rng := rand.New(rand.NewSource(1))
			keys := make([]uint32, n)
			vals := make([]int32, n)
			src := make([]uint32, n)
			for i := range src {
				src[i] = uint32(rng.Int63()) % keyRange
			}
			b.SetBytes(int64(n) * 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				copy(keys, src)
				for j := range vals {
					vals[j] = int32(j)
				}
				b.StartTimer()
				RadixSortPairs(keys, vals, keyRange)
			}
		})
	}
}

func BenchmarkSelectKth(b *testing.B) {
	n := 1 << 18
	rng := rand.New(rand.NewSource(2))
	src := make([]int64, n)
	for i := range src {
		src[i] = rng.Int63()
	}
	xs := make([]int64, n)
	b.SetBytes(int64(n) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		copy(xs, src)
		b.StartTimer()
		_ = SelectKth(xs, n/2)
	}
}

func BenchmarkMerge(b *testing.B) {
	n := 1 << 18
	a := make([]int64, n)
	c := make([]int64, n)
	for i := range a {
		a[i] = int64(2 * i)
		c[i] = int64(2*i + 1)
	}
	b.SetBytes(int64(2*n) * 8)
	for i := 0; i < b.N; i++ {
		_ = Merge(a, c)
	}
}
