package snapshot

import (
	"fmt"
	"testing"

	"repro/internal/css"
)

func BenchmarkAppend(b *testing.B) {
	for _, gamma := range []int64{4, 64, 1024} {
		b.Run(fmt.Sprintf("gamma%d", gamma), func(b *testing.B) {
			seg := css.FromFunc(1<<16, func(i int) bool { return i%2 == 0 })
			s := New(gamma)
			b.SetBytes(1 << 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Append(seg)
				s.EvictBefore(s.T() - 1<<20)
			}
		})
	}
}

func BenchmarkDecrement(b *testing.B) {
	seg := css.FromFunc(1<<16, func(i int) bool { return true })
	s := New(8)
	s.Append(seg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Decrement(3)
		if s.Value() < 100 {
			b.StopTimer()
			s.Append(seg)
			b.StartTimer()
		}
	}
}

func BenchmarkValueForWindow(b *testing.B) {
	s := New(4)
	for k := 0; k < 64; k++ {
		s.Append(css.FromFunc(1<<12, func(i int) bool { return i%3 == 0 }))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.ValueForWindow(1 << 14)
	}
}
