package snapshot

import "fmt"

// State is the serializable form of a Snapshot (all fields exported for
// encoding/gob). The discretized-stream model the paper adopts from
// Spark Streaming [ZDL+13] relies on checkpointing operator state
// between minibatches; State makes every aggregate built on snapshots
// checkpointable.
type State struct {
	Gamma  int64
	T      int64
	Tail   int64
	Blocks []int64
}

// State captures the snapshot for serialization.
func (s *Snapshot) State() State {
	return State{
		Gamma:  s.gamma,
		T:      s.t,
		Tail:   s.tail,
		Blocks: append([]int64(nil), s.blocks[s.head:]...),
	}
}

// FromState reconstructs a snapshot, validating invariants.
func FromState(st State) (*Snapshot, error) {
	if st.Gamma < 1 {
		return nil, fmt.Errorf("snapshot: state gamma %d < 1", st.Gamma)
	}
	if st.Tail < 0 || st.Tail >= st.Gamma {
		return nil, fmt.Errorf("snapshot: state tail %d out of [0, %d)", st.Tail, st.Gamma)
	}
	if st.T < 0 {
		return nil, fmt.Errorf("snapshot: state t %d < 0", st.T)
	}
	prev := int64(0)
	for _, b := range st.Blocks {
		if b < prev {
			return nil, fmt.Errorf("snapshot: state blocks not sorted")
		}
		prev = b
	}
	return &Snapshot{
		gamma:  st.Gamma,
		t:      st.T,
		tail:   st.Tail,
		blocks: append([]int64(nil), st.Blocks...),
	}, nil
}
