// Package snapshot implements γ-snapshots (Definition 3.1, after Lee and
// Ting [LT06a, LT06b]): a deterministic-sampling synopsis of a binary
// stream that supports approximate counting of 1s over a sliding window
// with additive error at most 2γ (Lemma 3.2), window shrinking
// (Lemma 3.3), parallel ingestion of a compacted stream segment, and the
// decrement operation the space-bounded block counter builds on.
//
// Representation. The stream is divided into consecutive blocks of γ
// positions; block k covers positions ((k-1)γ, kγ]. Every γ-th 1 of the
// stream (by rank) is "sampled". The snapshot stores, oldest first, the
// block ids of the sampled 1s whose block still overlaps the window of
// interest, plus tail = the number of 1s seen after the most recent
// sampled 1 (always < γ). Its value is γ·len(blocks) + tail, which
// satisfies m <= value <= m + 2γ for the true window count m.
//
// Consecutive sampled 1s are at least γ positions apart, so block ids are
// strictly increasing while the stream only advances; after a Decrement
// (which logically deletes the most recent 1s), a block id may repeat, so
// blocks is a non-decreasing multiset. Every entry always accounts for
// exactly γ counted 1s, which keeps the value semantics exact.
package snapshot

import (
	"sort"

	"repro/internal/css"
	"repro/internal/parallel"
)

// Snapshot is a γ-snapshot of a binary stream. The zero value is not
// usable; call New.
type Snapshot struct {
	gamma  int64
	t      int64   // total stream positions consumed so far
	blocks []int64 // non-decreasing block ids of sampled (still-live) 1s
	tail   int64   // 1s counted after the last sampled 1; 0 <= tail < gamma
	head   int     // index of first live entry in blocks (amortized eviction)
}

// New creates an empty γ-snapshot. gamma must be >= 1.
func New(gamma int64) *Snapshot {
	if gamma < 1 {
		panic("snapshot: gamma must be >= 1")
	}
	return &Snapshot{gamma: gamma}
}

// Gamma returns the block size γ.
func (s *Snapshot) Gamma() int64 { return s.gamma }

// T returns the number of stream positions consumed so far.
func (s *Snapshot) T() int64 { return s.t }

// NumBlocks returns the number of sampled entries currently held.
func (s *Snapshot) NumBlocks() int { return len(s.blocks) - s.head }

// Tail returns the count of 1s after the last sampled 1.
func (s *Snapshot) Tail() int64 { return s.tail }

// Value returns γ·|Q| + tail, the snapshot's estimate of the number of
// live 1s (Lemma 3.2): m <= Value() <= m + 2γ, where m is the number of
// 1s in the window the snapshot has been maintained for.
func (s *Snapshot) Value() int64 {
	return s.gamma*int64(s.NumBlocks()) + s.tail
}

// Append ingests a stream segment given as a CSS. It samples every γ-th
// counted 1 (continuing the running tail), recording its block id. Work is
// O(count/γ) plus O(1) amortized bookkeeping; the sampled positions are
// computed independently in parallel (Section 3.2's advance inner loop).
// Append does not evict; callers follow with EvictBefore to maintain a
// window.
func (s *Snapshot) Append(seg css.Segment) {
	count := seg.Count()
	if count > 0 {
		// The j-th new sample (1-based) is the (j*γ - tail)-th 1 in seg.
		q := int((s.tail + count) / s.gamma)
		if q > 0 {
			s.compact()
			base := len(s.blocks)
			s.blocks = append(s.blocks, make([]int64, q)...)
			gamma, tail, t := s.gamma, s.tail, s.t
			dst := s.blocks[base:]
			ones := seg.Ones
			parallel.ForGrain(q, parallel.DefaultGrain, func(j int) {
				pos := t + ones[int64(j+1)*gamma-tail-1]
				dst[j] = (pos + gamma - 1) / gamma // block id = ceil(pos/γ)
			})
		}
		s.tail = (s.tail + count) % s.gamma
	}
	s.t += seg.Len
}

// EvictBefore drops all sampled entries whose block lies entirely before
// the given 1-based stream position start, i.e. entries with block end
// k·γ < start. These are exactly the samples that are too old for a
// window starting at start (Definition 3.1's overlap condition).
func (s *Snapshot) EvictBefore(start int64) {
	live := s.blocks[s.head:]
	// Block ids are non-decreasing: binary-search the first live entry.
	i := sort.Search(len(live), func(i int) bool { return live[i]*s.gamma >= start })
	s.head += i
	if s.head > len(s.blocks)/2 && s.head > 64 {
		s.compact()
	}
}

// compact physically removes evicted prefix entries.
func (s *Snapshot) compact() {
	if s.head == 0 {
		return
	}
	n := copy(s.blocks, s.blocks[s.head:])
	s.blocks = s.blocks[:n]
	s.head = 0
}

// ValueForWindow returns the value the snapshot would have after
// EvictBefore(s.T()-w+1) — i.e. the estimate for a window of the last w
// positions — without mutating the snapshot (Lemma 3.3's shrink, in O(log
// |Q|)). w must be >= 0.
func (s *Snapshot) ValueForWindow(w int64) int64 {
	start := s.t - w + 1
	live := s.blocks[s.head:]
	i := sort.Search(len(live), func(i int) bool { return live[i]*s.gamma >= start })
	return s.gamma*int64(len(live)-i) + s.tail
}

// DropOldest removes the d oldest sampled entries and returns the largest
// removed block id (0 if none were removed). The space-bounded counter
// uses this to truncate coverage when over capacity: after dropping
// through block k, the snapshot only vouches for positions > k·γ.
func (s *Snapshot) DropOldest(d int) int64 {
	if d <= 0 {
		return 0
	}
	live := len(s.blocks) - s.head
	if d > live {
		d = live
	}
	if d == 0 {
		return 0
	}
	last := s.blocks[s.head+d-1]
	s.head += d
	if s.head > len(s.blocks)/2 && s.head > 64 {
		s.compact()
	}
	return last
}

// Decrement logically deletes the most recent r counted 1s, reducing
// Value() by exactly min(r, Value()): if r <= tail, the tail absorbs it;
// otherwise the newest q = ceil((r-tail)/γ) sampled entries are removed
// and the leftover γ·q + tail - r (in [0, γ)) is re-credited to the tail
// (Section 3.2's decrement rule, stated with the snapshot's own block
// size). O(q) work, O(log) depth.
func (s *Snapshot) Decrement(r int64) {
	if r <= 0 {
		return
	}
	if r <= s.tail {
		s.tail -= r
		return
	}
	q := (r - s.tail + s.gamma - 1) / s.gamma
	live := int64(s.NumBlocks())
	if q >= live {
		// All sampled entries are consumed; whatever of the value survives
		// (it is < γ, since r - tail > γ(live-1)) lives on in the tail.
		left := s.Value() - r
		if left < 0 {
			left = 0
		}
		s.blocks = s.blocks[:s.head]
		s.tail = left
		return
	}
	s.blocks = s.blocks[:len(s.blocks)-int(q)]
	s.tail = s.gamma*q + s.tail - r
}

// SpaceWords estimates the memory footprint in 64-bit words (live sampled
// entries plus O(1) bookkeeping), used by the space experiments.
func (s *Snapshot) SpaceWords() int {
	return s.NumBlocks() + 4
}
