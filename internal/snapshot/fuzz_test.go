package snapshot

import (
	"testing"

	"repro/internal/css"
)

// FuzzLemma32 drives a snapshot with an arbitrary operation stream
// decoded from fuzz bytes — appends of fuzzer-chosen bit segments and
// evictions — and asserts Lemma 3.2's two-sided bound against a
// reference bit buffer.
func FuzzLemma32(f *testing.F) {
	f.Add(uint8(3), uint8(10), []byte{0xff, 0x0f, 0x00, 0xf0})
	f.Add(uint8(1), uint8(1), []byte{0xaa})
	f.Add(uint8(200), uint8(255), []byte{0x01, 0x02, 0x03, 0x04, 0x05})
	f.Fuzz(func(t *testing.T, gammaRaw, windowRaw uint8, data []byte) {
		gamma := int64(gammaRaw%32) + 1
		window := int64(windowRaw%200) + 1
		s := New(gamma)
		var all []bool
		// Each byte is an 8-bit segment; every 4th byte also triggers an
		// eviction to the window.
		for k, b := range data {
			seg := make([]bool, 8)
			for i := range seg {
				seg[i] = b>>uint(i)&1 == 1
			}
			s.Append(css.FromBools(seg))
			all = append(all, seg...)
			if k%4 == 3 {
				s.EvictBefore(s.T() - window + 1)
			}
		}
		s.EvictBefore(s.T() - window + 1)
		start := int64(len(all)) - window
		if start < 0 {
			start = 0
		}
		var m int64
		for _, bit := range all[start:] {
			if bit {
				m++
			}
		}
		v := s.Value()
		if v < m || v > m+2*gamma {
			t.Fatalf("γ=%d w=%d: value %d outside [%d, %d]", gamma, window, v, m, m+2*gamma)
		}
	})
}
