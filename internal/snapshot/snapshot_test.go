package snapshot

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/css"
)

// refWindow is a reference implementation that stores the raw bits of the
// suffix of the stream, for checking Lemma 3.2's guarantee.
type refWindow struct {
	bits []bool // entire stream (tests keep streams modest)
}

func (r *refWindow) append(seg []bool) { r.bits = append(r.bits, seg...) }

// onesIn counts 1s in the last w positions.
func (r *refWindow) onesIn(w int64) int64 {
	start := int64(len(r.bits)) - w
	if start < 0 {
		start = 0
	}
	var m int64
	for _, b := range r.bits[start:] {
		if b {
			m++
		}
	}
	return m
}

func randomSegment(rng *rand.Rand, maxLen int, density float64) []bool {
	n := rng.Intn(maxLen + 1)
	seg := make([]bool, n)
	for i := range seg {
		seg[i] = rng.Float64() < density
	}
	return seg
}

// TestLemma32Guarantee drives random segments through a snapshot
// maintained for a sliding window and asserts m <= value <= m + 2γ.
func TestLemma32Guarantee(t *testing.T) {
	for _, gamma := range []int64{1, 2, 3, 7, 16, 100} {
		for _, window := range []int64{1, 10, 64, 500} {
			rng := rand.New(rand.NewSource(gamma*1000 + window))
			s := New(gamma)
			ref := &refWindow{}
			for step := 0; step < 60; step++ {
				density := []float64{0, 0.05, 0.5, 1}[step%4]
				seg := randomSegment(rng, 200, density)
				s.Append(css.FromBools(seg))
				ref.append(seg)
				s.EvictBefore(s.T() - window + 1)
				m := ref.onesIn(window)
				v := s.Value()
				if v < m || v > m+2*gamma {
					t.Fatalf("γ=%d w=%d step=%d: value %d outside [%d, %d]",
						gamma, window, step, v, m, m+2*gamma)
				}
				if s.Tail() < 0 || s.Tail() >= gamma {
					t.Fatalf("tail %d outside [0, γ)", s.Tail())
				}
			}
		}
	}
}

// TestGammaOneExact verifies that γ=1 degenerates to exact counting.
func TestGammaOneExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := New(1)
	ref := &refWindow{}
	const window = 77
	for step := 0; step < 50; step++ {
		seg := randomSegment(rng, 100, 0.3)
		s.Append(css.FromBools(seg))
		ref.append(seg)
		s.EvictBefore(s.T() - window + 1)
		if got, want := s.Value(), ref.onesIn(window); got != want {
			t.Fatalf("step %d: γ=1 value %d want exact %d", step, got, want)
		}
	}
}

func TestValueForWindowMatchesEvict(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	gamma := int64(5)
	s := New(gamma)
	for step := 0; step < 30; step++ {
		s.Append(css.FromBools(randomSegment(rng, 300, 0.4)))
	}
	for _, w := range []int64{1, 10, 100, 1000, 1 << 20} {
		want := func() int64 {
			clone := New(gamma)
			clone.blocks = append([]int64(nil), s.blocks[s.head:]...)
			clone.tail = s.tail
			clone.t = s.t
			clone.EvictBefore(clone.t - w + 1)
			return clone.Value()
		}()
		if got := s.ValueForWindow(w); got != want {
			t.Fatalf("w=%d: ValueForWindow %d != evicted value %d", w, got, want)
		}
	}
}

// TestDecrementExact asserts Value decreases by exactly min(r, Value).
func TestDecrementExact(t *testing.T) {
	check := func(seed int64, rRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		gamma := int64(rng.Intn(20) + 1)
		s := New(gamma)
		for i := 0; i < 5; i++ {
			s.Append(css.FromBools(randomSegment(rng, 400, 0.5)))
		}
		before := s.Value()
		r := int64(rRaw % 1000)
		s.Decrement(r)
		want := before - r
		if want < 0 {
			want = 0
		}
		if s.Value() != want {
			return false
		}
		return s.Tail() >= 0 && s.Tail() < gamma || (s.Tail() == 0 && gamma == 1)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecrementZeroAndNegative(t *testing.T) {
	s := New(4)
	s.Append(css.FromBools([]bool{true, true, true, true, true}))
	v := s.Value()
	s.Decrement(0)
	s.Decrement(-5)
	if s.Value() != v {
		t.Fatalf("no-op decrement changed value %d -> %d", v, s.Value())
	}
}

func TestDecrementThenAppendStillSound(t *testing.T) {
	// After decrements, Lemma 3.2 holds against the stream with the
	// decremented 1s logically deleted. We check a weaker but crucial
	// property here: the value never goes below 0 nor explodes, and tail
	// stays within range across interleaved operations.
	rng := rand.New(rand.NewSource(42))
	gamma := int64(6)
	s := New(gamma)
	totalOnes := int64(0)
	for step := 0; step < 200; step++ {
		seg := randomSegment(rng, 50, 0.5)
		sc := css.FromBools(seg)
		totalOnes += sc.Count()
		s.Append(sc)
		if step%3 == 0 {
			d := int64(rng.Intn(20))
			before := s.Value()
			s.Decrement(d)
			dec := before - s.Value()
			if dec < 0 {
				t.Fatal("decrement increased value")
			}
			totalOnes -= dec
		}
		if v := s.Value(); v < 0 || v > totalOnes+2*gamma {
			t.Fatalf("step %d: value %d outside [0, %d]", step, v, totalOnes+2*gamma)
		}
		if s.Tail() < 0 || s.Tail() >= gamma {
			t.Fatalf("tail %d out of range", s.Tail())
		}
	}
}

func TestDropOldest(t *testing.T) {
	s := New(2)
	// 20 ones at positions 1..20: samples at ranks 2,4,..,20 = positions
	// 2,4,...,20, block ids 1..10.
	bits := make([]bool, 20)
	for i := range bits {
		bits[i] = true
	}
	s.Append(css.FromBools(bits))
	if s.NumBlocks() != 10 {
		t.Fatalf("NumBlocks = %d want 10", s.NumBlocks())
	}
	last := s.DropOldest(3)
	if last != 3 {
		t.Fatalf("DropOldest returned block %d want 3", last)
	}
	if s.NumBlocks() != 7 {
		t.Fatalf("NumBlocks = %d want 7", s.NumBlocks())
	}
	if got := s.DropOldest(0); got != 0 {
		t.Fatalf("DropOldest(0) = %d", got)
	}
	if got := s.DropOldest(100); got != 10 {
		t.Fatalf("DropOldest(overshoot) = %d want 10", got)
	}
	if s.NumBlocks() != 0 {
		t.Fatalf("NumBlocks = %d want 0", s.NumBlocks())
	}
}

func TestBlocksNonDecreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := New(3)
	for step := 0; step < 100; step++ {
		s.Append(css.FromBools(randomSegment(rng, 60, 0.6)))
		if step%4 == 1 {
			s.Decrement(int64(rng.Intn(15)))
		}
		if step%4 == 3 {
			s.EvictBefore(s.T() - 100)
		}
		live := s.blocks[s.head:]
		for i := 1; i < len(live); i++ {
			if live[i-1] > live[i] {
				t.Fatalf("blocks decreasing at %d: %v", i, live)
			}
		}
	}
}

func TestEmptySnapshot(t *testing.T) {
	s := New(10)
	if s.Value() != 0 || s.NumBlocks() != 0 || s.Tail() != 0 {
		t.Fatal("fresh snapshot not empty")
	}
	s.EvictBefore(100)
	s.Decrement(5)
	s.Append(css.Segment{Len: 50})
	if s.Value() != 0 || s.T() != 50 {
		t.Fatalf("zero-ones append: value=%d t=%d", s.Value(), s.T())
	}
}

func TestNewPanicsOnBadGamma(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestSpaceWords(t *testing.T) {
	s := New(2)
	bits := make([]bool, 100)
	for i := range bits {
		bits[i] = true
	}
	s.Append(css.FromBools(bits))
	if sw := s.SpaceWords(); sw < s.NumBlocks() {
		t.Fatalf("SpaceWords %d < NumBlocks %d", sw, s.NumBlocks())
	}
}

// TestAmortizedEviction exercises the head/compact machinery across many
// evictions to catch stale-head bugs.
func TestAmortizedEviction(t *testing.T) {
	s := New(1)
	ref := &refWindow{}
	rng := rand.New(rand.NewSource(23))
	const window = 64
	for step := 0; step < 2000; step++ {
		seg := randomSegment(rng, 8, 0.8)
		s.Append(css.FromBools(seg))
		ref.append(seg)
		s.EvictBefore(s.T() - window + 1)
		if got, want := s.Value(), ref.onesIn(window); got != want {
			t.Fatalf("step %d: %d != %d", step, got, want)
		}
	}
}
