package snapshot

import (
	"math/rand"
	"testing"

	"repro/internal/css"
)

func TestStateRoundTrip(t *testing.T) {
	s := New(5)
	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 20; k++ {
		s.Append(css.FromBools(randomSegment(rng, 100, 0.5)))
	}
	s.EvictBefore(s.T() - 500)
	st := s.State()
	r, err := FromState(st)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value() != s.Value() || r.T() != s.T() || r.Tail() != s.Tail() ||
		r.NumBlocks() != s.NumBlocks() {
		t.Fatal("state round trip changed snapshot")
	}
	// Continue identically.
	seg := css.FromBools(randomSegment(rng, 100, 0.5))
	s.Append(seg)
	r.Append(seg)
	if r.Value() != s.Value() {
		t.Fatal("diverged after restore")
	}
}

func TestFromStateRejectsBad(t *testing.T) {
	cases := []State{
		{Gamma: 0},
		{Gamma: 3, Tail: 3},
		{Gamma: 3, Tail: -1},
		{Gamma: 3, T: -1},
		{Gamma: 3, Blocks: []int64{5, 2}},
		{Gamma: 1, Tail: 1},
	}
	for i, st := range cases {
		if _, err := FromState(st); err == nil {
			t.Fatalf("case %d: bad state accepted", i)
		}
	}
}
