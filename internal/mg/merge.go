package mg

import "repro/internal/hist"

// Merge folds another summary into this one with the mergeable-summaries
// algorithm of [ACH+13] (the paper cites mergeability as the property the
// independent data-structure approach relies on; providing it here makes
// the shared-structure summary a drop-in for distributed aggregation
// too). The merged summary keeps capacity S = max of the two and
// preserves the combined guarantee f_e - (m1+m2)/S <= Estimate(e) <= f_e.
// The merge itself reuses the parallel MGaugment machinery: combining and
// pruning in O(S) work and polylog depth — so a log p-deep merge tree
// over p summaries has polylog·log p total depth, in contrast to the
// sequential-merge bottleneck of Section 5.4's strawman.
func (g *Summary) Merge(o *Summary) {
	if o.capS > g.capS {
		g.capS = o.capS
	}
	entries := make([]hist.Entry, len(o.entries))
	copy(entries, o.entries)
	g.AugmentHist(entries)
	g.m += o.m
}

// Clone returns a deep copy of the summary.
func (g *Summary) Clone() *Summary {
	c := NewWithCapacity(g.capS)
	c.entries = make([]hist.Entry, len(g.entries))
	copy(c.entries, g.entries)
	c.m = g.m
	c.seed = g.seed + 0x9e37
	c.rebuildIndex()
	return c
}
