package mg

import (
	"math/rand"
	"testing"

	"repro/internal/hist"
)

// exact tracks true frequencies for validation.
type exact struct {
	f map[uint64]int64
	m int64
}

func newExact() *exact { return &exact{f: make(map[uint64]int64)} }

func (e *exact) add(items []uint64) {
	for _, it := range items {
		e.f[it]++
	}
	e.m += int64(len(items))
}

func checkGuarantee(t *testing.T, g *Summary, ex *exact, eps float64) {
	t.Helper()
	if g.StreamLen() != ex.m {
		t.Fatalf("StreamLen %d want %d", g.StreamLen(), ex.m)
	}
	if len(g.Entries()) > g.Capacity() {
		t.Fatalf("summary holds %d > S=%d counters", len(g.Entries()), g.Capacity())
	}
	bound := eps * float64(ex.m)
	for it, fe := range ex.f {
		est := g.Estimate(it)
		if est > fe {
			t.Fatalf("item %d: estimate %d > true %d", it, est, fe)
		}
		if float64(fe-est) > bound+1e-9 {
			t.Fatalf("item %d: underestimate %d (true %d) beyond εm=%g", it, est, fe, bound)
		}
	}
	// Untracked items must estimate 0 and have true count <= εm.
	for _, e := range g.Entries() {
		if _, ok := ex.f[e.Item]; !ok {
			t.Fatalf("summary tracks item %d never seen", e.Item)
		}
	}
}

func TestLemma51GuaranteeUniform(t *testing.T) {
	eps := 0.05
	g := New(eps)
	ex := newExact()
	rng := rand.New(rand.NewSource(1))
	for batch := 0; batch < 30; batch++ {
		items := make([]uint64, 2000)
		for i := range items {
			items[i] = uint64(rng.Intn(500))
		}
		g.ProcessBatch(items)
		ex.add(items)
		checkGuarantee(t, g, ex, eps)
	}
}

func TestLemma51GuaranteeZipf(t *testing.T) {
	eps := 0.01
	g := New(eps)
	ex := newExact()
	rng := rand.New(rand.NewSource(2))
	zipf := rand.NewZipf(rng, 1.3, 1, 1<<16)
	for batch := 0; batch < 20; batch++ {
		items := make([]uint64, 5000)
		for i := range items {
			items[i] = zipf.Uint64()
		}
		g.ProcessBatch(items)
		ex.add(items)
	}
	checkGuarantee(t, g, ex, eps)
}

func TestSingleHeavyItem(t *testing.T) {
	g := New(0.1)
	ex := newExact()
	items := make([]uint64, 10000)
	for i := range items {
		if i%2 == 0 {
			items[i] = 42
		} else {
			items[i] = uint64(1000 + i) // all distinct
		}
	}
	g.ProcessBatch(items)
	ex.add(items)
	checkGuarantee(t, g, ex, 0.1)
	if est := g.Estimate(42); float64(est) < 0.4*float64(ex.m) {
		t.Fatalf("heavy item underestimated: %d of %d", est, ex.f[42])
	}
}

func TestHeavyHitters(t *testing.T) {
	eps, phi := 0.02, 0.1
	g := New(eps)
	ex := newExact()
	rng := rand.New(rand.NewSource(3))
	for batch := 0; batch < 10; batch++ {
		items := make([]uint64, 3000)
		for i := range items {
			switch {
			case rng.Float64() < 0.3:
				items[i] = 1 // ~30%: heavy
			case rng.Float64() < 0.2:
				items[i] = 2 // ~14%: heavy
			default:
				items[i] = uint64(rng.Intn(100000)) + 10
			}
		}
		g.ProcessBatch(items)
		ex.add(items)
	}
	hh := g.HeavyHitters(phi)
	got := make(map[uint64]bool)
	for _, h := range hh {
		got[h] = true
	}
	phiN := phi * float64(ex.m)
	for it, fe := range ex.f {
		if float64(fe) >= phiN && !got[it] {
			t.Fatalf("missed heavy hitter %d (f=%d, φN=%g)", it, fe, phiN)
		}
	}
	for h := range got {
		if float64(ex.f[h]) < (phi-eps)*float64(ex.m) {
			t.Fatalf("false positive %d (f=%d < (φ-ε)N=%g)", h, ex.f[h], (phi-eps)*float64(ex.m))
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	g := New(0.1)
	g.ProcessBatch(nil)
	g.ProcessBatch([]uint64{})
	if g.StreamLen() != 0 || len(g.Entries()) != 0 {
		t.Fatal("empty batches changed state")
	}
}

func TestBatchOfOneItemKind(t *testing.T) {
	g := NewWithCapacity(3)
	for i := 0; i < 5; i++ {
		g.ProcessBatch([]uint64{9, 9, 9, 9})
	}
	if est := g.Estimate(9); est != 20 {
		t.Fatalf("single-item stream: estimate %d want 20", est)
	}
}

func TestCapacityOne(t *testing.T) {
	// S=1 is the extreme: only the majority-style single counter.
	g := NewWithCapacity(1)
	ex := newExact()
	rng := rand.New(rand.NewSource(4))
	for batch := 0; batch < 20; batch++ {
		items := make([]uint64, 100)
		for i := range items {
			items[i] = uint64(rng.Intn(4))
		}
		g.ProcessBatch(items)
		ex.add(items)
		checkGuarantee(t, g, ex, 1.0)
	}
}

func TestManySmallBatches(t *testing.T) {
	eps := 0.05
	g := New(eps)
	ex := newExact()
	rng := rand.New(rand.NewSource(5))
	for batch := 0; batch < 500; batch++ {
		items := make([]uint64, rng.Intn(5)) // tiny, sometimes empty
		for i := range items {
			items[i] = uint64(rng.Intn(50))
		}
		g.ProcessBatch(items)
		ex.add(items)
	}
	checkGuarantee(t, g, ex, eps)
}

func TestAugmentHistDirect(t *testing.T) {
	g := NewWithCapacity(2)
	g.AugmentHist([]hist.Entry{{Item: 1, Freq: 5}, {Item: 2, Freq: 3}, {Item: 3, Freq: 1}})
	// ϕ = 3rd largest = 1; counts become 4, 2, 0 -> two survivors.
	if len(g.Entries()) > 2 {
		t.Fatalf("kept %d > 2 entries", len(g.Entries()))
	}
	if g.Estimate(1) != 4 || g.Estimate(2) != 2 || g.Estimate(3) != 0 {
		t.Fatalf("estimates: %d %d %d", g.Estimate(1), g.Estimate(2), g.Estimate(3))
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0) },
		func() { New(1.5) },
		func() { NewWithCapacity(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSpaceWords(t *testing.T) {
	g := New(0.01) // S = 100
	rng := rand.New(rand.NewSource(6))
	items := make([]uint64, 100000)
	for i := range items {
		items[i] = rng.Uint64() % 100000
	}
	g.ProcessBatch(items)
	if sw := g.SpaceWords(); sw > 4*g.Capacity()+4 {
		t.Fatalf("SpaceWords %d exceeds 4S+4 = %d", sw, 4*g.Capacity()+4)
	}
}
