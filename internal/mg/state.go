package mg

import (
	"fmt"

	"repro/internal/hist"
)

// State is the serializable form of a Summary.
type State struct {
	CapS    int
	M       int64
	Seed    int64
	Entries []hist.Entry
}

// State captures the summary for serialization.
func (g *Summary) State() State {
	return State{
		CapS:    g.capS,
		M:       g.m,
		Seed:    g.seed,
		Entries: append([]hist.Entry(nil), g.entries...),
	}
}

// FromState reconstructs a summary, validating invariants.
func FromState(st State) (*Summary, error) {
	if st.CapS < 1 {
		return nil, fmt.Errorf("mg: state capacity %d < 1", st.CapS)
	}
	if len(st.Entries) > st.CapS {
		return nil, fmt.Errorf("mg: state holds %d > S=%d entries", len(st.Entries), st.CapS)
	}
	if st.M < 0 {
		return nil, fmt.Errorf("mg: state stream length %d < 0", st.M)
	}
	g := NewWithCapacity(st.CapS)
	g.m = st.M
	g.seed = st.Seed
	g.entries = append([]hist.Entry(nil), st.Entries...)
	g.rebuildIndex()
	return g, nil
}
