// Package mg implements the Misra-Gries summary and its parallel
// minibatch maintenance for infinite-window frequency estimation and
// heavy hitters (Sections 5.1-5.2 of the paper).
//
// A summary with capacity S = ⌈1/ε⌉ keeps at most S items with counters.
// Processing a minibatch of size µ runs buildHist (Theorem 2.3) and then
// MGAugment (Lemma 5.3): combine the summary with the histogram, find the
// cutoff ϕ — the (S+1)-st largest combined count — subtract ϕ from every
// count and keep the positive ones. Each unit of ϕ corresponds to a batch
// of decrements hitting more than S distinct counters, so the classic MG
// accounting (Lemma 5.1) gives f_e - εm <= Estimate(e) <= f_e. Total cost
// per minibatch: O(ε⁻¹ + µ) expected work, polylog depth (Theorem 5.2).
package mg

import (
	"repro/internal/hist"
	"repro/internal/parallel"
)

// Summary is a Misra-Gries summary maintained over minibatches.
type Summary struct {
	capS    int
	entries []hist.Entry     // at most capS live counters
	index   map[uint64]int64 // item -> counter, rebuilt per batch
	m       int64            // stream length observed so far
	seed    int64            // hash seed sequence for buildHist
}

// New creates a summary with error parameter epsilon in (0, 1]:
// capacity S = ⌈1/ε⌉ counters.
func New(epsilon float64) *Summary {
	if epsilon <= 0 || epsilon > 1 {
		panic("mg: epsilon must be in (0, 1]")
	}
	s := int(1 / epsilon)
	if float64(s) < 1/epsilon {
		s++
	}
	return NewWithCapacity(s)
}

// NewWithCapacity creates a summary with exactly s counters (ε = 1/s).
func NewWithCapacity(s int) *Summary {
	if s < 1 {
		panic("mg: capacity must be >= 1")
	}
	return &Summary{capS: s, index: make(map[uint64]int64), seed: 0x6d67}
}

// Capacity returns S, the maximum number of counters.
func (g *Summary) Capacity() int { return g.capS }

// StreamLen returns the number of items observed so far.
func (g *Summary) StreamLen() int64 { return g.m }

// ProcessBatch ingests a minibatch of items (Theorem 5.2).
func (g *Summary) ProcessBatch(items []uint64) {
	if len(items) == 0 {
		return
	}
	g.seed++
	h := hist.Build(items, g.seed)
	g.AugmentHist(h)
	g.m += int64(len(items))
}

// AugmentHist merges a pre-computed histogram into the summary
// (MGaugment, Lemma 5.3). The histogram must have one entry per distinct
// item. Callers other than ProcessBatch must bump m themselves.
func (g *Summary) AugmentHist(h []hist.Entry) {
	g.seed++
	combined := hist.Combine(append(g.entries, h...), g.seed)
	phi := int64(0)
	if len(combined) > g.capS {
		// ϕ = (S+1)-st largest combined count: subtracting it everywhere
		// kills all but at most S counters, and every unit subtracted
		// decrements > S distinct counters (Lemma 5.3's accounting).
		freqs := parallel.Map(len(combined), func(i int) int64 { return combined[i].Freq })
		phi = parallel.KthLargest(freqs, g.capS+1)
	}
	kept := parallel.Pack(combined, func(i int) bool { return combined[i].Freq > phi })
	parallel.ForGrain(len(kept), parallel.DefaultGrain, func(i int) {
		kept[i].Freq -= phi
	})
	g.entries = kept
	g.rebuildIndex()
}

func (g *Summary) rebuildIndex() {
	clear(g.index)
	for _, e := range g.entries {
		g.index[e.Item] = e.Freq
	}
}

// Estimate returns the summary's estimate for item e, satisfying
// f_e - εm <= Estimate(e) <= f_e (0 for items not tracked).
func (g *Summary) Estimate(e uint64) int64 { return g.index[e] }

// Entries returns the live counters (at most S), in arbitrary order. The
// caller must not modify the returned slice.
func (g *Summary) Entries() []hist.Entry { return g.entries }

// HeavyHitters returns every tracked item whose estimate is at least
// (φ-ε)·m — the standard reduction from frequency estimation (Section 5):
// it includes every item with f_e >= φm and no item with f_e < (φ-2ε)m...
// precisely, no item with f_e < (φ-ε)m is ever reported since estimates
// never exceed true counts.
func (g *Summary) HeavyHitters(phi float64) []uint64 {
	eps := 1 / float64(g.capS)
	thr := (phi - eps) * float64(g.m)
	var out []uint64
	for _, e := range g.entries {
		if float64(e.Freq) >= thr {
			out = append(out, e.Item)
		}
	}
	return out
}

// SpaceWords estimates the memory footprint in 64-bit words: 2 words per
// live counter plus the index.
func (g *Summary) SpaceWords() int { return 4*len(g.entries) + 4 }
