package mg

import (
	"math/rand"
	"testing"
)

func TestMergePreservesGuarantee(t *testing.T) {
	eps := 0.01
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.25, 1, 1<<14)
	streamA := make([]uint64, 40000)
	streamB := make([]uint64, 60000)
	for i := range streamA {
		streamA[i] = zipf.Uint64()
	}
	for i := range streamB {
		streamB[i] = zipf.Uint64() + 100 // partially disjoint universes
	}
	a := New(eps)
	b := New(eps)
	a.ProcessBatch(streamA)
	b.ProcessBatch(streamB)
	a.Merge(b)

	exact := map[uint64]int64{}
	for _, it := range streamA {
		exact[it]++
	}
	for _, it := range streamB {
		exact[it]++
	}
	m := int64(len(streamA) + len(streamB))
	if a.StreamLen() != m {
		t.Fatalf("merged StreamLen %d want %d", a.StreamLen(), m)
	}
	bound := 2 * eps * float64(m) // each source contributes its own εm
	for it, fe := range exact {
		est := a.Estimate(it)
		if est > fe {
			t.Fatalf("merged overestimates item %d: %d > %d", it, est, fe)
		}
		if float64(fe-est) > bound {
			t.Fatalf("merged item %d: est %d true %d bound %g", it, est, fe, bound)
		}
	}
	if len(a.Entries()) > a.Capacity() {
		t.Fatalf("merged size %d > S", len(a.Entries()))
	}
}

func TestMergeTreeOfFour(t *testing.T) {
	eps := 0.02
	rng := rand.New(rand.NewSource(2))
	parts := make([]*Summary, 4)
	exact := map[uint64]int64{}
	var m int64
	for p := range parts {
		parts[p] = New(eps)
		items := make([]uint64, 10000)
		for i := range items {
			items[i] = uint64(rng.Intn(200))
			exact[items[i]]++
		}
		parts[p].ProcessBatch(items)
		m += 10000
	}
	parts[0].Merge(parts[1])
	parts[2].Merge(parts[3])
	parts[0].Merge(parts[2])
	merged := parts[0]
	// log p = 2 merge levels: error <= (1 + levels)·εm is a safe bound;
	// the per-item deficit must stay within it.
	bound := 3 * eps * float64(m)
	for it, fe := range exact {
		est := merged.Estimate(it)
		if est > fe || float64(fe-est) > bound {
			t.Fatalf("tree-merged item %d: est %d true %d", it, est, fe)
		}
	}
}

func TestClone(t *testing.T) {
	a := New(0.1)
	a.ProcessBatch([]uint64{1, 1, 2, 3})
	c := a.Clone()
	if c.Estimate(1) != a.Estimate(1) || c.StreamLen() != a.StreamLen() {
		t.Fatal("clone state mismatch")
	}
	c.ProcessBatch([]uint64{9, 9, 9})
	if a.Estimate(9) != 0 {
		t.Fatal("clone mutation leaked into original")
	}
}

func TestMergeEmpty(t *testing.T) {
	a := New(0.1)
	a.ProcessBatch([]uint64{5, 5})
	b := New(0.1)
	a.Merge(b)
	if a.Estimate(5) != 2 || a.StreamLen() != 2 {
		t.Fatalf("merge with empty changed state: est=%d m=%d", a.Estimate(5), a.StreamLen())
	}
}
