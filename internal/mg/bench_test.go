package mg

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchBatches(nBatches, batchSize int) [][]uint64 {
	rng := rand.New(rand.NewSource(5))
	zipf := rand.NewZipf(rng, 1.1, 1, 1<<18)
	out := make([][]uint64, nBatches)
	for b := range out {
		out[b] = make([]uint64, batchSize)
		for i := range out[b] {
			out[b][i] = zipf.Uint64()
		}
	}
	return out
}

func BenchmarkProcessBatch(b *testing.B) {
	bs := benchBatches(64, 1<<14)
	for _, eps := range []float64{1e-2, 1e-3, 1e-4} {
		b.Run(fmt.Sprintf("eps%g", eps), func(b *testing.B) {
			g := New(eps)
			b.SetBytes(1 << 14 * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.ProcessBatch(bs[i%len(bs)])
			}
		})
	}
}

func BenchmarkMerge(b *testing.B) {
	bs := benchBatches(8, 1<<14)
	base := New(1e-3)
	other := New(1e-3)
	for _, batch := range bs[:4] {
		base.ProcessBatch(batch)
	}
	for _, batch := range bs[4:] {
		other.ProcessBatch(batch)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := base.Clone()
		c.Merge(other)
	}
}

func BenchmarkEstimate(b *testing.B) {
	g := New(1e-3)
	for _, batch := range benchBatches(16, 1<<14) {
		g.ProcessBatch(batch)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Estimate(uint64(i % 2000))
	}
}
