package cms

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchBatches(nBatches, batchSize int) [][]uint64 {
	rng := rand.New(rand.NewSource(9))
	zipf := rand.NewZipf(rng, 1.2, 1, 1<<18)
	out := make([][]uint64, nBatches)
	for b := range out {
		out[b] = make([]uint64, batchSize)
		for i := range out[b] {
			out[b][i] = zipf.Uint64()
		}
	}
	return out
}

func BenchmarkProcessBatchVsSequential(b *testing.B) {
	bs := benchBatches(32, 1<<14)
	b.Run("parallel", func(b *testing.B) {
		s := New(1e-4, 1e-3, 3)
		b.SetBytes(1 << 14 * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.ProcessBatch(bs[i%len(bs)])
		}
	})
	b.Run("sequential", func(b *testing.B) {
		s := New(1e-4, 1e-3, 3)
		b.SetBytes(1 << 14 * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, it := range bs[i%len(bs)] {
				s.Update(it, 1)
			}
		}
	})
}

func BenchmarkQuery(b *testing.B) {
	for _, d := range []int{3, 6, 12} {
		b.Run(fmt.Sprintf("d%d", d), func(b *testing.B) {
			s := NewWithDims(d, 1<<14, 5)
			for _, batch := range benchBatches(8, 1<<14) {
				s.ProcessBatch(batch)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = s.Query(uint64(i % 4096))
			}
		})
	}
}

func BenchmarkRangeCount(b *testing.B) {
	r := NewRange(20, 1e-3, 1e-2, 7)
	for _, batch := range benchBatches(8, 1<<14) {
		r.ProcessBatch(batch)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.RangeCount(uint64(i%1000), uint64(i%1000)+1<<15)
	}
}
