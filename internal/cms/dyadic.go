package cms

// Dyadic range structure: one sketch per dyadic level, supporting range
// counts and approximate quantiles — the standard CM-sketch applications
// the paper cites (point and range queries, quantiles). Level l sketches
// the stream with items truncated to their high bits (item >> l), so any
// interval [lo, hi] decomposes into O(log U) dyadic nodes, one or two per
// level.

// RangeSketch answers approximate range-count and quantile queries over a
// universe of size 2^bits.
type RangeSketch struct {
	bits    int
	levels  []*Sketch
	shifted []uint64 // per-batch scratch for the truncated-item stream
}

// NewRange creates a dyadic range sketch over the universe [0, 2^bits)
// with per-level error εm and failure probability δ.
func NewRange(bits int, epsilon, delta float64, seed int64) *RangeSketch {
	if bits < 1 || bits > 63 {
		panic("cms: bits must be in [1, 63]")
	}
	r := &RangeSketch{bits: bits}
	r.levels = make([]*Sketch, bits+1)
	for l := range r.levels {
		r.levels[l] = New(epsilon, delta, seed+int64(l)*977)
	}
	return r
}

// Bits returns the universe size exponent.
func (r *RangeSketch) Bits() int { return r.bits }

// TotalCount returns m, the total weight ingested.
func (r *RangeSketch) TotalCount() int64 { return r.levels[0].TotalCount() }

// Update adds count occurrences of item to every level.
func (r *RangeSketch) Update(item uint64, count int64) {
	for l, s := range r.levels {
		s.Update(item>>uint(l), count)
	}
}

// ProcessBatch ingests a minibatch into every level in parallel. Each
// level uses the parallel histogram-based ingestion.
func (r *RangeSketch) ProcessBatch(items []uint64) {
	if len(items) == 0 {
		return
	}
	shifted := grow(&r.shifted, len(items))
	for l, s := range r.levels {
		if l == 0 {
			s.ProcessBatch(items)
			continue
		}
		for i, it := range items {
			shifted[i] = it >> uint(l)
		}
		s.ProcessBatch(shifted)
	}
}

// RangeCount estimates the number of stream items in [lo, hi]
// (inclusive). The estimate never undercounts; it overcounts by at most
// O(εm log U) with high probability.
func (r *RangeSketch) RangeCount(lo, hi uint64) int64 {
	if lo > hi {
		return 0
	}
	// Walk levels bottom-up, peeling unaligned endpoints: at level l the
	// node v covers universe values [v·2^l, (v+1)·2^l). An odd lo or even
	// hi node has a parent that would overcount, so it is counted at this
	// level; the rest is covered by parents.
	var total int64
	l := 0
	for lo <= hi {
		if lo == hi {
			total += r.levels[l].Query(lo)
			break
		}
		if lo&1 == 1 {
			total += r.levels[l].Query(lo)
			lo++
		}
		if hi&1 == 0 {
			total += r.levels[l].Query(hi)
			hi-- // hi > lo >= 0 here, so no underflow
		}
		if lo > hi {
			break
		}
		lo >>= 1
		hi >>= 1
		l++
	}
	return total
}

// Quantile returns an approximate q-quantile (q in [0, 1]): a universe
// value v such that the prefix count of [0, v] is approximately q·m.
// Binary search over prefix range counts.
func (r *RangeSketch) Quantile(q float64) uint64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(r.TotalCount()))
	lo, hi := uint64(0), uint64(1)<<uint(r.bits)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if r.RangeCount(0, mid) < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SpaceWords estimates the memory footprint in 64-bit words.
func (r *RangeSketch) SpaceWords() int {
	total := 2
	for _, s := range r.levels {
		total += s.SpaceWords()
	}
	return total
}
