package cms

import (
	"math/rand"
	"testing"
)

func exactFreqs(items []uint64) map[uint64]int64 {
	f := make(map[uint64]int64)
	for _, it := range items {
		f[it]++
	}
	return f
}

func TestDims(t *testing.T) {
	s := New(0.01, 0.01, 1)
	if s.Width() < 271 || s.Width() > 273 {
		t.Fatalf("Width = %d want ~272", s.Width())
	}
	if s.Depth() != 5 { // ceil(ln 100) = 5
		t.Fatalf("Depth = %d want 5", s.Depth())
	}
}

func TestNeverUndercounts(t *testing.T) {
	s := New(0.05, 0.01, 7)
	rng := rand.New(rand.NewSource(1))
	items := make([]uint64, 20000)
	for i := range items {
		items[i] = uint64(rng.Intn(1000))
	}
	s.ProcessBatch(items)
	f := exactFreqs(items)
	for it, fe := range f {
		if got := s.Query(it); got < fe {
			t.Fatalf("item %d: query %d < true %d", it, got, fe)
		}
	}
}

func TestErrorBound(t *testing.T) {
	eps := 0.01
	s := New(eps, 0.001, 3)
	rng := rand.New(rand.NewSource(2))
	zipf := rand.NewZipf(rng, 1.1, 1, 1<<16)
	var items []uint64
	for i := 0; i < 100000; i++ {
		items = append(items, zipf.Uint64())
	}
	s.ProcessBatch(items)
	f := exactFreqs(items)
	m := float64(s.TotalCount())
	violations := 0
	for it, fe := range f {
		if float64(s.Query(it)-fe) > eps*m {
			violations++
		}
	}
	// Each query violates with probability <= δ=0.001; allow generous
	// slack over the expectation.
	if violations > len(f)/100+2 {
		t.Fatalf("%d/%d queries exceeded εm", violations, len(f))
	}
}

func TestBatchMatchesSequential(t *testing.T) {
	// The parallel minibatch path must produce the exact same sketch state
	// as sequential updates (same hash functions, same additions).
	rng := rand.New(rand.NewSource(5))
	items := make([]uint64, 30000)
	for i := range items {
		items[i] = uint64(rng.Intn(300))
	}
	a := NewWithDims(4, 100, 11)
	b := NewWithDims(4, 100, 11)
	a.ProcessBatch(items)
	for _, it := range items {
		b.Update(it, 1)
	}
	if a.TotalCount() != b.TotalCount() {
		t.Fatalf("TotalCount %d != %d", a.TotalCount(), b.TotalCount())
	}
	for i := 0; i < a.d; i++ {
		for j := 0; j < a.w; j++ {
			if a.rows[i][j] != b.rows[i][j] {
				t.Fatalf("cell [%d][%d]: %d != %d", i, j, a.rows[i][j], b.rows[i][j])
			}
		}
	}
}

func TestSmallBatchFastPath(t *testing.T) {
	a := NewWithDims(3, 50, 9)
	b := NewWithDims(3, 50, 9)
	items := []uint64{1, 2, 3, 1, 1, 2}
	a.ProcessBatch(items)
	for _, it := range items {
		b.Update(it, 1)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 50; j++ {
			if a.rows[i][j] != b.rows[i][j] {
				t.Fatalf("cell [%d][%d] mismatch", i, j)
			}
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	s := New(0.1, 0.1, 1)
	s.ProcessBatch(nil)
	if s.TotalCount() != 0 {
		t.Fatal("empty batch changed total")
	}
	if q := s.Query(42); q != 0 {
		t.Fatalf("empty sketch Query = %d", q)
	}
}

func TestWeightedUpdate(t *testing.T) {
	s := NewWithDims(3, 64, 2)
	s.Update(7, 100)
	s.Update(8, 5)
	if q := s.Query(7); q < 100 {
		t.Fatalf("Query(7) = %d want >= 100", q)
	}
	if s.TotalCount() != 105 {
		t.Fatalf("TotalCount = %d", s.TotalCount())
	}
}

func TestInnerProduct(t *testing.T) {
	a := NewWithDims(4, 256, 21)
	b := NewWithDims(4, 256, 21)
	// a: 10 of item 1; b: 20 of item 1 and 5 of item 2.
	a.Update(1, 10)
	b.Update(1, 20)
	b.Update(2, 5)
	// True inner product = 10*20 = 200; CM overestimates.
	got := a.InnerProduct(b)
	if got < 200 {
		t.Fatalf("InnerProduct = %d want >= 200", got)
	}
	if got > 200+int64(a.TotalCount()*b.TotalCount())/256+50 {
		t.Fatalf("InnerProduct = %d implausibly large", got)
	}
}

func TestInnerProductDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWithDims(2, 10, 1).InnerProduct(NewWithDims(3, 10, 1))
}

func TestParamPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 0.1, 1) },
		func() { New(0.1, 0, 1) },
		func() { New(0.1, 1, 1) },
		func() { NewWithDims(0, 5, 1) },
		func() { NewWithDims(5, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSpaceWords(t *testing.T) {
	s := NewWithDims(4, 100, 1)
	if sw := s.SpaceWords(); sw < 400 || sw > 450 {
		t.Fatalf("SpaceWords = %d want ~416", sw)
	}
}
