// Package cms implements the count-min sketch [CM05] with the paper's
// parallel minibatch ingestion (Section 6, Theorem 6.1). The sketch is a
// d×w counter array (d = ⌈ln(1/δ)⌉ rows, w = ⌈e/ε⌉ columns) with one
// hash per row. A point query returns the minimum of the item's d cells
// and satisfies f_e <= Query(e) <= f_e + εm with probability at least
// 1-δ.
//
// Row addressing comes in two schemes. New sketches use SchemeDerived:
// one 64-bit base hash per item, with row i's column derived as
// (g1 + i·g2) mod w (Kirsch–Mitzenmacher [KM08]), so ingesting an item
// into all d rows costs one hash plus d multiply-adds and the batch path
// reuses per-instance scratch for zero steady-state allocations.
// SchemeLegacyPairwise — one pairwise-independent modular hash per row —
// is kept only so checkpoints written before the derived scheme restore
// onto the exact cells they were built with.
//
// Minibatch ingestion first builds a histogram (Theorem 2.3), then adds
// each distinct item's total per row. Under the derived scheme each row
// is owned by one writer goroutine, which preserves the CRCW-combining
// single-writer property; the legacy path keeps the per-row column
// sort the paper describes. Cost: O(d·max(µ, w)) work and polylog depth.
package cms

import (
	"math"

	"repro/internal/hashfn"
	"repro/internal/hist"
	"repro/internal/parallel"
)

// Hash-scheme tags, serialized in State.Scheme. The zero value must stay
// SchemeLegacyPairwise: checkpoints written before the tag existed gob-
// decode Scheme as 0 and their cells were addressed by pairwise hashing.
const (
	// SchemeLegacyPairwise draws one pairwise hash over GF(2^61-1) per
	// row from math/rand (including the historical aliased key folding
	// and correlated seed+i*k row seeding — bug-compatible on purpose,
	// since restored cells are only readable with the hashes that wrote
	// them). Reachable only by restoring an old checkpoint.
	SchemeLegacyPairwise = 0
	// SchemeDerived is the Kirsch–Mitzenmacher derived-row scheme over
	// the full 64-bit key domain; the default for new sketches.
	SchemeDerived = 1
)

// Sketch is a count-min sketch.
type Sketch struct {
	d, w     int
	rows     [][]int64
	scheme   int
	base     hashfn.Derived    // SchemeDerived row addressing
	hashes   []hashfn.Pairwise // SchemeLegacyPairwise row addressing
	m        int64
	hashSeed int64 // constructor seed: determines the hash functions
	seed     int64 // rolling seed for per-batch histogram hashing

	// Per-instance batch scratch, reused across ProcessBatch calls (the
	// caller's write gate serializes them): the histogram builder plus
	// the per-entry base-hash pairs shared by all rows.
	hb     hist.Builder
	g1, g2 []uint64
}

// New creates a sketch with error εm (ε in (0,1]) at failure probability
// δ (in (0,1)): w = ⌈e/ε⌉ columns, d = ⌈ln(1/δ)⌉ rows.
func New(epsilon, delta float64, seed int64) *Sketch {
	if epsilon <= 0 || epsilon > 1 {
		panic("cms: epsilon must be in (0, 1]")
	}
	if delta <= 0 || delta >= 1 {
		panic("cms: delta must be in (0, 1)")
	}
	w := int(math.Ceil(math.E / epsilon))
	d := int(math.Ceil(math.Log(1 / delta)))
	if d < 1 {
		d = 1
	}
	return NewWithDims(d, w, seed)
}

// NewWithDims creates a d×w sketch directly, using the derived-row
// hashing scheme.
func NewWithDims(d, w int, seed int64) *Sketch {
	return NewWithDimsScheme(d, w, seed, SchemeDerived)
}

// NewWithDimsScheme creates a d×w sketch with an explicit hash scheme.
// SchemeLegacyPairwise exists for checkpoint restoration and for
// benchmarking the old row addressing; new sketches use SchemeDerived.
func NewWithDimsScheme(d, w int, seed int64, scheme int) *Sketch {
	if d < 1 || w < 1 {
		panic("cms: dimensions must be >= 1")
	}
	if scheme != SchemeLegacyPairwise && scheme != SchemeDerived {
		panic("cms: unknown hash scheme")
	}
	s := &Sketch{d: d, w: w, scheme: scheme, hashSeed: seed, seed: seed}
	s.rows = make([][]int64, d)
	flat := make([]int64, d*w)
	for i := 0; i < d; i++ {
		s.rows[i] = flat[i*w : (i+1)*w]
	}
	if scheme == SchemeDerived {
		s.base = hashfn.NewDerived(uint64(w), seed)
		return s
	}
	s.hashes = make([]hashfn.Pairwise, d)
	for i := 0; i < d; i++ {
		s.hashes[i] = hashfn.NewPairwise(uint64(w), seed+int64(i)*0x9e37+1)
	}
	return s
}

// Depth returns d, the number of rows.
func (s *Sketch) Depth() int { return s.d }

// Width returns w, the number of columns.
func (s *Sketch) Width() int { return s.w }

// Scheme returns the row-addressing scheme tag.
func (s *Sketch) Scheme() int { return s.scheme }

// TotalCount returns m, the total weight ingested.
func (s *Sketch) TotalCount() int64 { return s.m }

// col returns row i's column for item under the sketch's scheme — the
// reference addressing the sequential paths use; the batch path hoists
// the base-hash computation out of the row loop.
func (s *Sketch) col(i int, item uint64) uint64 {
	if s.scheme == SchemeDerived {
		return s.base.Hash(item, i)
	}
	return s.hashes[i].HashAliased(item)
}

// Update adds count occurrences of item (the sequential reference path).
func (s *Sketch) Update(item uint64, count int64) {
	if s.scheme == SchemeDerived {
		g1, g2 := s.base.Base(item)
		for i := 0; i < s.d; i++ {
			s.rows[i][s.base.Row(g1, g2, i)] += count
		}
	} else {
		for i := 0; i < s.d; i++ {
			s.rows[i][s.hashes[i].HashAliased(item)] += count
		}
	}
	s.m += count
}

// ProcessBatch ingests a minibatch of items with the parallel algorithm
// of Theorem 6.1.
//
//agglint:hotpath
func (s *Sketch) ProcessBatch(items []uint64) {
	if len(items) == 0 {
		return
	}
	s.seed++
	if s.scheme == SchemeDerived {
		s.AddHistogram(s.hb.Build(items, s.seed^0x636d73))
		return
	}
	h := hist.Build(items, s.seed^0x636d73)
	s.AddHistogram(h)
}

// AddHistogram folds a precomputed histogram into the sketch. Under the
// derived scheme the base-hash pair is computed once per entry (into
// reused scratch) and each row is folded by a single owner goroutine —
// one hash per item, zero allocations in steady state. The legacy
// scheme keeps the per-row column sort of the CRCW-combining
// simulation.
//
//agglint:hotpath
func (s *Sketch) AddHistogram(h []hist.Entry) {
	p := len(h)
	if p == 0 {
		return
	}
	if s.scheme == SchemeDerived {
		s.addHistogramDerived(h)
	} else {
		s.addHistogramLegacy(h)
	}
	var add int64
	for _, en := range h {
		add += en.Freq
	}
	s.m += add
}

// grow returns buf resized to n, reallocating only when capacity grew.
//
//agglint:hotpath
func grow(buf *[]uint64, n int) []uint64 {
	if cap(*buf) < n {
		*buf = make([]uint64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

//agglint:hotpath
func (s *Sketch) addHistogramDerived(h []hist.Entry) {
	p := len(h)
	g1 := grow(&s.g1, p)
	g2 := grow(&s.g2, p)
	parallel.ForGrain(p, parallel.DefaultGrain, func(j int) {
		g1[j], g2[j] = s.base.Base(h[j].Item)
	})
	parallel.ForGrain(s.d, 1, func(i int) {
		row := s.rows[i]
		for j, en := range h {
			row[s.base.Row(g1[j], g2[j], i)] += en.Freq
		}
	})
}

func (s *Sketch) addHistogramLegacy(h []hist.Entry) {
	p := len(h)
	parallel.ForGrain(s.d, 1, func(i int) {
		row := s.rows[i]
		hash := s.hashes[i]
		if p < 2048 {
			// Small batches: one writer per row already owns all cells.
			for _, en := range h {
				row[hash.HashAliased(en.Item)] += en.Freq
			}
			return
		}
		cols := make([]uint32, p)
		idx := make([]int32, p)
		parallel.ForGrain(p, parallel.DefaultGrain, func(j int) {
			cols[j] = uint32(hash.HashAliased(h[j].Item))
			idx[j] = int32(j)
		})
		parallel.RadixSortPairs(cols, idx, uint32(s.w))
		starts := parallel.PackIndices(p, func(j int) bool {
			return j == 0 || cols[j] != cols[j-1]
		})
		parallel.ForGrain(len(starts), 8, func(b int) {
			lo := starts[b]
			hi := p
			if b+1 < len(starts) {
				hi = starts[b+1]
			}
			var total int64
			for j := lo; j < hi; j++ {
				total += h[idx[j]].Freq
			}
			row[cols[lo]] += total
		})
	})
}

// Query returns the point estimate for item: the minimum of its d cells,
// computed with a parallel reduce (the paper's O(log log(1/δ))-depth
// min).
func (s *Sketch) Query(item uint64) int64 {
	return parallel.Reduce(s.d, 8, int64(1)<<62,
		func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		},
		func(lo, hi int) int64 {
			best := int64(1) << 62
			for i := lo; i < hi; i++ {
				if v := s.rows[i][s.col(i, item)]; v < best {
					best = v
				}
			}
			return best
		})
}

// InnerProduct estimates the inner product of the frequency vectors
// summarized by s and o, which must have identical dimensions and seeds
// (a standard CM-sketch application).
func (s *Sketch) InnerProduct(o *Sketch) int64 {
	if s.d != o.d || s.w != o.w {
		panic("cms: InnerProduct dimension mismatch")
	}
	best := int64(1) << 62
	for i := 0; i < s.d; i++ {
		var dot int64
		for j := 0; j < s.w; j++ {
			dot += s.rows[i][j] * o.rows[i][j]
		}
		if dot < best {
			best = dot
		}
	}
	return best
}

// SpaceWords estimates the memory footprint in 64-bit words.
func (s *Sketch) SpaceWords() int { return s.d*s.w + 3*s.d + 4 }
