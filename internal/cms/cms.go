// Package cms implements the count-min sketch [CM05] with the paper's
// parallel minibatch ingestion (Section 6, Theorem 6.1). The sketch is a
// d×w counter array (d = ⌈ln(1/δ)⌉ rows, w = ⌈e/ε⌉ columns) with one
// pairwise-independent hash per row. A point query returns the minimum of
// the item's d cells and satisfies f_e <= Query(e) <= f_e + εm with
// probability at least 1-δ.
//
// Minibatch ingestion first builds a histogram (Theorem 2.3), then — per
// row, in parallel — groups the (column, freq) pairs by column with the
// parallel integer sort so every cell is written by exactly one summed
// update: the CRCW-combining simulation the paper describes. Cost:
// O(d·max(µ, w)) work and polylog depth.
package cms

import (
	"math"

	"repro/internal/hashfn"
	"repro/internal/hist"
	"repro/internal/parallel"
)

// Sketch is a count-min sketch.
type Sketch struct {
	d, w     int
	rows     [][]int64
	hashes   []hashfn.Pairwise
	m        int64
	hashSeed int64 // constructor seed: determines the hash functions
	seed     int64 // rolling seed for per-batch histogram hashing
}

// New creates a sketch with error εm (ε in (0,1]) at failure probability
// δ (in (0,1)): w = ⌈e/ε⌉ columns, d = ⌈ln(1/δ)⌉ rows.
func New(epsilon, delta float64, seed int64) *Sketch {
	if epsilon <= 0 || epsilon > 1 {
		panic("cms: epsilon must be in (0, 1]")
	}
	if delta <= 0 || delta >= 1 {
		panic("cms: delta must be in (0, 1)")
	}
	w := int(math.Ceil(math.E / epsilon))
	d := int(math.Ceil(math.Log(1 / delta)))
	if d < 1 {
		d = 1
	}
	return NewWithDims(d, w, seed)
}

// NewWithDims creates a d×w sketch directly.
func NewWithDims(d, w int, seed int64) *Sketch {
	if d < 1 || w < 1 {
		panic("cms: dimensions must be >= 1")
	}
	s := &Sketch{d: d, w: w, hashSeed: seed, seed: seed}
	s.rows = make([][]int64, d)
	s.hashes = make([]hashfn.Pairwise, d)
	flat := make([]int64, d*w)
	for i := 0; i < d; i++ {
		s.rows[i] = flat[i*w : (i+1)*w]
		s.hashes[i] = hashfn.NewPairwise(uint64(w), seed+int64(i)*0x9e37+1)
	}
	return s
}

// Depth returns d, the number of rows.
func (s *Sketch) Depth() int { return s.d }

// Width returns w, the number of columns.
func (s *Sketch) Width() int { return s.w }

// TotalCount returns m, the total weight ingested.
func (s *Sketch) TotalCount() int64 { return s.m }

// Update adds count occurrences of item (the sequential reference path).
func (s *Sketch) Update(item uint64, count int64) {
	for i := 0; i < s.d; i++ {
		s.rows[i][s.hashes[i].Hash(item)] += count
	}
	s.m += count
}

// ProcessBatch ingests a minibatch of items with the parallel algorithm
// of Theorem 6.1.
func (s *Sketch) ProcessBatch(items []uint64) {
	if len(items) == 0 {
		return
	}
	s.seed++
	h := hist.Build(items, s.seed^0x636d73)
	s.AddHistogram(h)
}

// AddHistogram folds a precomputed histogram into the sketch: per row, in
// parallel, (column, freq) pairs are grouped by column via the stable
// integer sort and each column's total is added by a single writer.
func (s *Sketch) AddHistogram(h []hist.Entry) {
	p := len(h)
	if p == 0 {
		return
	}
	parallel.ForGrain(s.d, 1, func(i int) {
		row := s.rows[i]
		hash := s.hashes[i]
		if p < 2048 {
			// Small batches: one writer per row already owns all cells.
			for _, en := range h {
				row[hash.Hash(en.Item)] += en.Freq
			}
			return
		}
		cols := make([]uint32, p)
		idx := make([]int32, p)
		parallel.ForGrain(p, parallel.DefaultGrain, func(j int) {
			cols[j] = uint32(hash.Hash(h[j].Item))
			idx[j] = int32(j)
		})
		parallel.RadixSortPairs(cols, idx, uint32(s.w))
		starts := parallel.PackIndices(p, func(j int) bool {
			return j == 0 || cols[j] != cols[j-1]
		})
		parallel.ForGrain(len(starts), 8, func(b int) {
			lo := starts[b]
			hi := p
			if b+1 < len(starts) {
				hi = starts[b+1]
			}
			var total int64
			for j := lo; j < hi; j++ {
				total += h[idx[j]].Freq
			}
			row[cols[lo]] += total
		})
	})
	var add int64
	for _, en := range h {
		add += en.Freq
	}
	s.m += add
}

// Query returns the point estimate for item: the minimum of its d cells,
// computed with a parallel reduce (the paper's O(log log(1/δ))-depth
// min).
func (s *Sketch) Query(item uint64) int64 {
	return parallel.Reduce(s.d, 8, int64(1)<<62,
		func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		},
		func(lo, hi int) int64 {
			best := int64(1) << 62
			for i := lo; i < hi; i++ {
				if v := s.rows[i][s.hashes[i].Hash(item)]; v < best {
					best = v
				}
			}
			return best
		})
}

// InnerProduct estimates the inner product of the frequency vectors
// summarized by s and o, which must have identical dimensions and seeds
// (a standard CM-sketch application).
func (s *Sketch) InnerProduct(o *Sketch) int64 {
	if s.d != o.d || s.w != o.w {
		panic("cms: InnerProduct dimension mismatch")
	}
	best := int64(1) << 62
	for i := 0; i < s.d; i++ {
		var dot int64
		for j := 0; j < s.w; j++ {
			dot += s.rows[i][j] * o.rows[i][j]
		}
		if dot < best {
			best = dot
		}
	}
	return best
}

// SpaceWords estimates the memory footprint in 64-bit words.
func (s *Sketch) SpaceWords() int { return s.d*s.w + 3*s.d + 4 }
