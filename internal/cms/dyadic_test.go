package cms

import (
	"math/rand"
	"testing"
)

func TestRangeCountExactOnSmallUniverse(t *testing.T) {
	// With a wide sketch relative to the universe, counts are near-exact;
	// range counts must cover every interval correctly (never undercount).
	r := NewRange(6, 0.001, 0.001, 3) // universe [0, 64)
	counts := make([]int64, 64)
	rng := rand.New(rand.NewSource(1))
	var items []uint64
	for i := 0; i < 5000; i++ {
		v := uint64(rng.Intn(64))
		counts[v]++
		items = append(items, v)
	}
	r.ProcessBatch(items)
	for trial := 0; trial < 200; trial++ {
		lo := uint64(rng.Intn(64))
		hi := lo + uint64(rng.Intn(64-int(lo)))
		var want int64
		for v := lo; v <= hi; v++ {
			want += counts[v]
		}
		got := r.RangeCount(lo, hi)
		if got < want {
			t.Fatalf("[%d,%d]: got %d < true %d", lo, hi, got, want)
		}
		slack := int64(float64(r.TotalCount())*0.001*14) + 8
		if got > want+slack {
			t.Fatalf("[%d,%d]: got %d overshoots true %d by more than %d",
				lo, hi, got, want, slack)
		}
	}
}

func TestRangeCountDegenerate(t *testing.T) {
	r := NewRange(8, 0.01, 0.01, 5)
	if got := r.RangeCount(10, 5); got != 0 {
		t.Fatalf("inverted range = %d", got)
	}
	if got := r.RangeCount(3, 3); got != 0 {
		t.Fatalf("empty sketch point range = %d", got)
	}
	r.Update(3, 7)
	if got := r.RangeCount(3, 3); got < 7 {
		t.Fatalf("point range = %d want >= 7", got)
	}
	if got := r.RangeCount(0, 255); got < 7 {
		t.Fatalf("full range = %d want >= 7", got)
	}
}

func TestQuantile(t *testing.T) {
	r := NewRange(10, 0.001, 0.001, 9) // universe [0, 1024)
	var items []uint64
	for v := uint64(0); v < 1000; v++ {
		items = append(items, v) // uniform 0..999, one each
	}
	r.ProcessBatch(items)
	med := r.Quantile(0.5)
	if med < 400 || med > 600 {
		t.Fatalf("median = %d want ~500", med)
	}
	q9 := r.Quantile(0.9)
	if q9 < 800 || q9 > 1000 {
		t.Fatalf("p90 = %d want ~900", q9)
	}
	if lo := r.Quantile(0); lo > 100 {
		t.Fatalf("q0 = %d", lo)
	}
	if hi := r.Quantile(1); hi < 900 {
		t.Fatalf("q1 = %d", hi)
	}
}

func TestRangeUpdateVsBatch(t *testing.T) {
	a := NewRange(8, 0.01, 0.01, 13)
	b := NewRange(8, 0.01, 0.01, 13)
	rng := rand.New(rand.NewSource(4))
	items := make([]uint64, 5000)
	for i := range items {
		items[i] = uint64(rng.Intn(256))
	}
	a.ProcessBatch(items)
	for _, it := range items {
		b.Update(it, 1)
	}
	for trial := 0; trial < 50; trial++ {
		lo := uint64(rng.Intn(256))
		hi := lo + uint64(rng.Intn(256-int(lo)))
		if a.RangeCount(lo, hi) != b.RangeCount(lo, hi) {
			t.Fatalf("[%d,%d]: batch %d != sequential %d",
				lo, hi, a.RangeCount(lo, hi), b.RangeCount(lo, hi))
		}
	}
}

func TestRangePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewRange(0, 0.1, 0.1, 1) },
		func() { NewRange(64, 0.1, 0.1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRangeAccessors(t *testing.T) {
	r := NewRange(8, 0.1, 0.1, 1)
	if r.Bits() != 8 {
		t.Fatalf("Bits = %d", r.Bits())
	}
	if r.SpaceWords() <= 0 {
		t.Fatal("SpaceWords <= 0")
	}
	r.Update(1, 3)
	if r.TotalCount() != 3 {
		t.Fatalf("TotalCount = %d", r.TotalCount())
	}
}
