package cms

import "fmt"

// State is the serializable form of a Sketch. The hash functions are not
// serialized; they are redrawn deterministically from HashSeed under the
// tagged Scheme. Checkpoints written before the tag existed gob-decode
// Scheme as its zero value, SchemeLegacyPairwise — exactly the hashing
// that addressed their cells.
type State struct {
	D, W     int
	M        int64
	HashSeed int64
	Seed     int64
	Scheme   int
	Cells    []int64 // row-major d×w
}

// State captures the sketch for serialization.
func (s *Sketch) State() State {
	cells := make([]int64, 0, s.d*s.w)
	for _, row := range s.rows {
		cells = append(cells, row...)
	}
	return State{D: s.d, W: s.w, M: s.m, HashSeed: s.hashSeed, Seed: s.seed, Scheme: s.scheme, Cells: cells}
}

// maxStateDim bounds each serialized dimension so the d·w product cannot
// overflow int and the cells-length check below runs before any d·w-sized
// allocation (a corrupted checkpoint must error, never panic or OOM).
const maxStateDim = 1 << 28

// FromState reconstructs a sketch, validating invariants.
func FromState(st State) (*Sketch, error) {
	if st.D < 1 || st.W < 1 || st.D > maxStateDim || st.W > maxStateDim {
		return nil, fmt.Errorf("cms: bad state dims %dx%d", st.D, st.W)
	}
	if int64(len(st.Cells)) != int64(st.D)*int64(st.W) {
		return nil, fmt.Errorf("cms: state has %d cells, want %d", len(st.Cells), int64(st.D)*int64(st.W))
	}
	if st.Scheme != SchemeLegacyPairwise && st.Scheme != SchemeDerived {
		return nil, fmt.Errorf("cms: unknown hash scheme %d", st.Scheme)
	}
	s := NewWithDimsScheme(st.D, st.W, st.HashSeed, st.Scheme)
	s.m = st.M
	s.seed = st.Seed
	for i := 0; i < st.D; i++ {
		copy(s.rows[i], st.Cells[i*st.W:(i+1)*st.W])
	}
	return s, nil
}

// RangeState is the serializable form of a RangeSketch.
type RangeState struct {
	Bits   int
	Levels []State
}

// State captures the range sketch for serialization.
func (r *RangeSketch) State() RangeState {
	st := RangeState{Bits: r.bits}
	for _, s := range r.levels {
		st.Levels = append(st.Levels, s.State())
	}
	return st
}

// RangeFromState reconstructs a range sketch, validating invariants.
func RangeFromState(st RangeState) (*RangeSketch, error) {
	if st.Bits < 1 || st.Bits > 63 {
		return nil, fmt.Errorf("cms: bad state bits %d", st.Bits)
	}
	if len(st.Levels) != st.Bits+1 {
		return nil, fmt.Errorf("cms: state has %d levels, want %d", len(st.Levels), st.Bits+1)
	}
	r := &RangeSketch{bits: st.Bits}
	for _, ls := range st.Levels {
		s, err := FromState(ls)
		if err != nil {
			return nil, err
		}
		r.levels = append(r.levels, s)
	}
	return r, nil
}
