package cms

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
)

// legacyStateShape mirrors State as it was serialized before the Scheme
// tag existed. Gob matches fields by name, so encoding this shape and
// decoding into State reproduces exactly what restoring a pre-tag
// checkpoint does.
type legacyStateShape struct {
	D, W     int
	M        int64
	HashSeed int64
	Seed     int64
	Cells    []int64
}

func TestUntaggedCheckpointRestoresLegacyScheme(t *testing.T) {
	// A sketch written before the derived scheme existed used pairwise
	// per-row hashing; its checkpoint has no Scheme field. Restoring it
	// must select SchemeLegacyPairwise so queries read the cells the
	// writer addressed.
	legacy := NewWithDimsScheme(4, 512, 99, SchemeLegacyPairwise)
	rng := rand.New(rand.NewSource(3))
	items := make([]uint64, 4096)
	for i := range items {
		items[i] = uint64(rng.Intn(300))
	}
	legacy.ProcessBatch(items)

	st := legacy.State()
	old := legacyStateShape{D: st.D, W: st.W, M: st.M, HashSeed: st.HashSeed, Seed: st.Seed, Cells: st.Cells}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(old); err != nil {
		t.Fatal(err)
	}
	var decoded State
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Scheme != SchemeLegacyPairwise {
		t.Fatalf("untagged checkpoint decoded Scheme=%d, want legacy (0)", decoded.Scheme)
	}
	got, err := FromState(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scheme() != SchemeLegacyPairwise {
		t.Fatalf("restored scheme = %d, want legacy", got.Scheme())
	}
	for x := uint64(0); x < 300; x++ {
		if got.Query(x) != legacy.Query(x) {
			t.Fatalf("restored legacy sketch disagrees at %d: %d vs %d", x, got.Query(x), legacy.Query(x))
		}
	}
	// The restored sketch must keep ingesting identically.
	got.ProcessBatch(items)
	legacy.ProcessBatch(items)
	for x := uint64(0); x < 300; x++ {
		if got.Query(x) != legacy.Query(x) {
			t.Fatalf("post-restore ingest diverged at %d", x)
		}
	}
}

func TestSchemeRoundTrip(t *testing.T) {
	for _, scheme := range []int{SchemeLegacyPairwise, SchemeDerived} {
		s := NewWithDimsScheme(3, 256, 7, scheme)
		s.Update(42, 5)
		st := s.State()
		if st.Scheme != scheme {
			t.Fatalf("State.Scheme = %d, want %d", st.Scheme, scheme)
		}
		r, err := FromState(st)
		if err != nil {
			t.Fatal(err)
		}
		if r.Scheme() != scheme || r.Query(42) != s.Query(42) {
			t.Fatalf("scheme %d round trip: scheme=%d query=%d want %d", scheme, r.Scheme(), r.Query(42), s.Query(42))
		}
	}
}

func TestFromStateRejectsUnknownScheme(t *testing.T) {
	st := NewWithDims(2, 64, 1).State()
	st.Scheme = 7
	if _, err := FromState(st); err == nil {
		t.Fatal("FromState accepted unknown scheme tag")
	}
}

func TestMergeSchemeMismatch(t *testing.T) {
	a := NewWithDimsScheme(3, 128, 5, SchemeDerived)
	b := NewWithDimsScheme(3, 128, 5, SchemeLegacyPairwise)
	if err := a.Merge(b); err == nil {
		t.Fatal("merge across hash schemes must be rejected")
	}
	if err := a.Merge(a.Clone()); err != nil {
		t.Fatalf("merge of clone failed: %v", err)
	}
}

func TestCloneKeepsScheme(t *testing.T) {
	s := NewWithDimsScheme(3, 128, 5, SchemeLegacyPairwise)
	s.Update(9, 2)
	c := s.Clone()
	if c.Scheme() != SchemeLegacyPairwise || c.Query(9) != s.Query(9) {
		t.Fatal("clone changed scheme or cells")
	}
}

func TestLegacyBatchMatchesSequential(t *testing.T) {
	// The batch==sequential invariant must keep holding on the legacy
	// path too (restored old checkpoints continue ingesting through it).
	rng := rand.New(rand.NewSource(11))
	items := make([]uint64, 6000)
	for i := range items {
		items[i] = uint64(rng.Intn(500))
	}
	batch := NewWithDimsScheme(4, 300, 77, SchemeLegacyPairwise)
	seq := NewWithDimsScheme(4, 300, 77, SchemeLegacyPairwise)
	batch.ProcessBatch(items)
	for _, it := range items {
		seq.Update(it, 1)
	}
	for x := uint64(0); x < 500; x++ {
		if batch.Query(x) != seq.Query(x) {
			t.Fatalf("legacy batch/sequential mismatch at %d", x)
		}
	}
}

func TestDerivedBatchSteadyStateAllocs(t *testing.T) {
	// One warmed sketch must ingest batches with (amortized) zero
	// allocations per item: the only allocations left are the fixed
	// fork-join bookkeeping of the parallel primitives, a handful of
	// objects per batch regardless of batch size.
	s := NewWithDims(5, 1<<14, 42)
	rng := rand.New(rand.NewSource(13))
	items := make([]uint64, 8192)
	for i := range items {
		items[i] = uint64(rng.Intn(4000))
	}
	s.ProcessBatch(items) // warm the scratch
	allocs := testing.AllocsPerRun(10, func() {
		s.ProcessBatch(items)
	})
	if perItem := allocs / float64(len(items)); perItem >= 0.01 {
		t.Fatalf("derived batch path allocates %.3f objects/item (%.0f/batch), want < 0.01", perItem, allocs)
	}
}
