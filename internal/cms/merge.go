package cms

import (
	"fmt"

	"repro/internal/parallel"
)

// Merge folds another sketch into s cell-wise. Two count-min sketches
// summarizing streams A and B with identical dimensions and hash
// functions sum to the sketch of A ++ B exactly, so the merged sketch
// keeps the εm guarantee with m = m_A + m_B — the mergeable-summaries
// property [ACH+13] that sharded and distributed deployments rely on.
// Merging sketches drawn with different dimensions or hash seeds would
// silently corrupt estimates, so that is rejected.
func (s *Sketch) Merge(o *Sketch) error {
	if s.d != o.d || s.w != o.w {
		return fmt.Errorf("cms: merge dimension mismatch (%dx%d vs %dx%d)", s.d, s.w, o.d, o.w)
	}
	if s.hashSeed != o.hashSeed {
		return fmt.Errorf("cms: merge hash seed mismatch (%d vs %d)", s.hashSeed, o.hashSeed)
	}
	if s.scheme != o.scheme {
		return fmt.Errorf("cms: merge hash scheme mismatch (%d vs %d)", s.scheme, o.scheme)
	}
	parallel.ForGrain(s.d, 1, func(i int) {
		row, orow := s.rows[i], o.rows[i]
		for j := range row {
			row[j] += orow[j]
		}
	})
	s.m += o.m
	return nil
}

// Clone returns a deep copy of the sketch.
func (s *Sketch) Clone() *Sketch {
	c := NewWithDimsScheme(s.d, s.w, s.hashSeed, s.scheme)
	c.m = s.m
	c.seed = s.seed
	for i := range s.rows {
		copy(c.rows[i], s.rows[i])
	}
	return c
}

// Merge folds another range sketch into r level-wise. Both must cover
// the same universe and use the same hash seed family.
func (r *RangeSketch) Merge(o *RangeSketch) error {
	if r.bits != o.bits {
		return fmt.Errorf("cms: merge universe mismatch (2^%d vs 2^%d)", r.bits, o.bits)
	}
	if len(r.levels) != len(o.levels) {
		return fmt.Errorf("cms: merge level count mismatch (%d vs %d)", len(r.levels), len(o.levels))
	}
	// Validate every level before mutating any, so a mismatch cannot
	// leave the stack half-merged.
	for l := range r.levels {
		a, b := r.levels[l], o.levels[l]
		if a.d != b.d || a.w != b.w || a.hashSeed != b.hashSeed || a.scheme != b.scheme {
			return fmt.Errorf("cms: merge mismatch at level %d", l)
		}
	}
	for l := range r.levels {
		if err := r.levels[l].Merge(o.levels[l]); err != nil {
			return err
		}
	}
	return nil
}

// Clone returns a deep copy of the range sketch.
func (r *RangeSketch) Clone() *RangeSketch {
	c := &RangeSketch{bits: r.bits}
	c.levels = make([]*Sketch, len(r.levels))
	for l, s := range r.levels {
		c.levels[l] = s.Clone()
	}
	return c
}
