package streamagg

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/workload"
)

// TestMergeCombinesDisjointStreams: merging two aggregates fed disjoint
// halves of a stream must answer like one aggregate fed the whole
// stream, within each kind's bound (exactly, for the linear sketches).
func TestMergeCombinesDisjointStreams(t *testing.T) {
	streamA := workload.Zipf(5, 8000, 1.3, 1<<10)
	streamB := workload.Distinct(1<<11, 8000)
	full := append(append([]uint64{}, streamA...), streamB...)
	counts := exactCounts(full)

	mk := func(kind Kind, opts ...Option) (Aggregate, Aggregate) {
		a, err := New(kind, opts...)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(kind, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return a, b
	}
	feedAndMerge := func(a, b Aggregate) Aggregate {
		if err := a.ProcessBatch(streamA); err != nil {
			t.Fatal(err)
		}
		if err := b.ProcessBatch(streamB); err != nil {
			t.Fatal(err)
		}
		if err := a.(Merger).Merge(b); err != nil {
			t.Fatal(err)
		}
		return a
	}

	t.Run("count-min", func(t *testing.T) {
		a, b := mk(KindCountMin, WithEpsilon(0.001), WithDelta(0.01), WithSeed(7))
		merged := feedAndMerge(a, b)
		// Linear sketch: the merged state must equal the single-sketch
		// state of the concatenated stream, so compare cell-exactly via
		// the point estimates of a direct run.
		direct, err := NewCountMin(0.001, 0.01, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range [][]uint64{streamA, streamB} {
			for _, it := range u {
				direct.Update(it, 1)
			}
		}
		for item := range counts {
			if got, want := merged.(PointEstimator).Estimate(item), direct.Query(item); got != want {
				t.Fatalf("item %d: merged %d != direct %d", item, got, want)
			}
		}
		if merged.StreamLen() != int64(len(full)) {
			t.Fatalf("merged StreamLen = %d, want %d", merged.StreamLen(), len(full))
		}
	})
	t.Run("count-sketch", func(t *testing.T) {
		a, b := mk(KindCountSketch, WithEpsilon(0.02), WithDelta(0.01), WithSeed(9))
		merged := feedAndMerge(a, b).(*CountSketch)
		if got, want := merged.TotalCount(), int64(len(full)); got != want {
			t.Fatalf("merged TotalCount = %d, want %d", got, want)
		}
	})
	t.Run("freq", func(t *testing.T) {
		a, b := mk(KindFreq, WithEpsilon(0.005))
		merged := feedAndMerge(a, b)
		slack := int64(0.005*float64(len(full))) + 1
		for item, f := range counts {
			est := merged.(PointEstimator).Estimate(item)
			if est > f || est < f-slack {
				t.Fatalf("item %d: merged estimate %d outside [%d, %d]", item, est, f-slack, f)
			}
		}
	})
	t.Run("count-min-range", func(t *testing.T) {
		a, b := mk(KindCountMinRange, WithUniverseBits(12), WithEpsilon(0.01), WithDelta(0.01))
		merged := feedAndMerge(a, b).(RangeEstimator)
		var inUniverse int64
		for _, it := range full {
			if it < 1<<12 {
				inUniverse++
			}
		}
		if got := merged.RangeCount(0, 1<<12-1); got < inUniverse {
			t.Fatalf("merged full-range count %d < %d", got, inUniverse)
		}
	})
}

func TestMergeRejectsIncompatible(t *testing.T) {
	cm1, _ := NewCountMin(0.01, 0.01, 7)
	cm2, _ := NewCountMin(0.01, 0.01, 8)  // different seed
	cm3, _ := NewCountMin(0.001, 0.01, 7) // different width
	cs, _ := NewCountSketch(0.05, 0.01, 7)
	if err := cm1.Merge(cm2); !errors.Is(err, ErrIncompatibleMerge) {
		t.Fatalf("seed mismatch accepted: %v", err)
	}
	if err := cm1.Merge(cm3); !errors.Is(err, ErrIncompatibleMerge) {
		t.Fatalf("dimension mismatch accepted: %v", err)
	}
	if err := cm1.Merge(cs); !errors.Is(err, ErrIncompatibleMerge) {
		t.Fatalf("cross-kind merge accepted: %v", err)
	}
	if err := cm1.Merge(cm1); !errors.Is(err, ErrIncompatibleMerge) {
		t.Fatalf("self-merge accepted: %v", err)
	}
	f1, _ := NewFreqEstimator(0.01)
	if err := f1.Merge(cs); !errors.Is(err, ErrIncompatibleMerge) {
		t.Fatalf("freq/count-sketch merge accepted: %v", err)
	}
	f2, _ := NewFreqEstimator(0.5) // coarser capacity would break f1's ε bound
	if err := f1.Merge(f2); !errors.Is(err, ErrIncompatibleMerge) {
		t.Fatalf("capacity mismatch accepted: %v", err)
	}
	r1, _ := NewCountMinRange(12, 0.01, 0.01, 3)
	r2, _ := NewCountMinRange(10, 0.01, 0.01, 3)
	if err := r1.Merge(r2); !errors.Is(err, ErrIncompatibleMerge) {
		t.Fatalf("universe mismatch accepted: %v", err)
	}
}

func TestWithShardsValidation(t *testing.T) {
	if _, err := New(KindCountMin, WithShards(0)); !errors.Is(err, ErrBadParam) {
		t.Fatalf("shards=0 accepted: %v", err)
	}
	if _, err := New(KindCountMin, WithShards(maxShards+1)); !errors.Is(err, ErrBadParam) {
		t.Fatalf("shards>max accepted: %v", err)
	}
	// The sliding-window kinds cannot be sharded.
	for _, tc := range []struct {
		kind Kind
		opts []Option
	}{
		{KindBasicCounter, []Option{WithWindow(64)}},
		{KindWindowSum, []Option{WithWindow(64), WithMaxValue(10)}},
		{KindSlidingFreq, []Option{WithWindow(64)}},
	} {
		if _, err := New(tc.kind, append(tc.opts, WithShards(2))...); !errors.Is(err, ErrBadParam) {
			t.Fatalf("%s accepted WithShards: %v", tc.kind, err)
		}
	}
	if _, err := NewSharded(KindWindowSum, 2, WithWindow(64), WithMaxValue(10)); !errors.Is(err, ErrBadParam) {
		t.Fatalf("NewSharded on window-sum accepted: %v", err)
	}
	s, err := NewSharded(KindCountMin, 8, WithEpsilon(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != 8 || s.InnerKind() != KindCountMin || s.Kind() != KindSharded {
		t.Fatalf("shape: shards=%d inner=%s kind=%s", s.NumShards(), s.InnerKind(), s.Kind())
	}
	// WithShards(1) still returns the wrapper (uniform behavior).
	one, err := New(KindFreq, WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := one.(*Sharded); !ok {
		t.Fatalf("WithShards(1) returned %T", one)
	}
}

// TestShardedPartitionRoutesAllItems: the partition is a permutation of
// the batch (stable within each shard) and every item queries its owner.
func TestShardedPartitionRoutesAllItems(t *testing.T) {
	items := workload.Uniform(3, 10000, 1<<16)
	parts := partitionByShard(items, 7)
	total := 0
	for j, part := range parts {
		total += len(part)
		for _, it := range part {
			if shardIndex(it, 7) != j {
				t.Fatalf("item %d landed in shard %d, owner %d", it, j, shardIndex(it, 7))
			}
		}
	}
	if total != len(items) {
		t.Fatalf("partition kept %d of %d items", total, len(items))
	}
	counts := exactCounts(items)
	for j, part := range parts {
		for _, it := range part {
			counts[it]--
		}
		_ = j
	}
	for it, c := range counts {
		if c != 0 {
			t.Fatalf("item %d multiplicity off by %d", it, c)
		}
	}
}

// TestShardedSnapshot: the merged snapshot is detached, covers the whole
// stream, and answers like a single-structure run within bounds.
func TestShardedSnapshot(t *testing.T) {
	stream := workload.Zipf(11, 30000, 1.3, 1<<12)
	counts := exactCounts(stream)
	s, err := NewSharded(KindFreq, 4, WithEpsilon(0.01))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range workload.Batches(stream, 2048) {
		if err := s.ProcessBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Kind() != KindFreq {
		t.Fatalf("snapshot kind = %s", snap.Kind())
	}
	if snap.StreamLen() != int64(len(stream)) {
		t.Fatalf("snapshot StreamLen = %d, want %d", snap.StreamLen(), len(stream))
	}
	slack := int64(0.01*float64(len(stream))) + 1
	for item, f := range counts {
		est := snap.(PointEstimator).Estimate(item)
		if est > f || est < f-slack {
			t.Fatalf("item %d: snapshot estimate %d outside [%d, %d]", item, est, f-slack, f)
		}
	}
	// Mutating the snapshot must not leak into the shards.
	before := s.StreamLen()
	if err := snap.ProcessBatch(stream[:100]); err != nil {
		t.Fatal(err)
	}
	if s.StreamLen() != before {
		t.Fatal("snapshot shares state with the sharded aggregate")
	}
}

// compareSharded asserts two sharded aggregates answer identically —
// the checkpoint/restore contract through the Sharded path.
func compareSharded(t *testing.T, a, b *Sharded, probes []uint64) {
	t.Helper()
	if a.StreamLen() != b.StreamLen() {
		t.Fatalf("StreamLen diverged: %d vs %d", a.StreamLen(), b.StreamLen())
	}
	if a.NumShards() != b.NumShards() {
		t.Fatalf("NumShards diverged: %d vs %d", a.NumShards(), b.NumShards())
	}
	if a.SpaceWords() != b.SpaceWords() {
		t.Fatalf("SpaceWords diverged: %d vs %d", a.SpaceWords(), b.SpaceWords())
	}
	for _, item := range probes {
		if ea, eb := a.Estimate(item), b.Estimate(item); ea != eb {
			t.Fatalf("estimate diverged for item %d: %d vs %d", item, ea, eb)
		}
	}
	ta, tb := a.TopK(8), b.TopK(8)
	if len(ta) != len(tb) {
		t.Fatalf("TopK lengths diverged: %d vs %d", len(ta), len(tb))
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("TopK[%d] diverged: %+v vs %+v", i, ta[i], tb[i])
		}
	}
}

// TestShardedConcurrentStressAndCheckpoint mirrors the pipeline stress
// test through the Sharded path (run under -race in CI): a pipeline of
// sharded aggregates ingests minibatches while query goroutines hammer
// every surface, a whole-pipeline checkpoint is taken mid-stream,
// restored, and both pipelines are fed the identical suffix — answers
// must match an uninterrupted run exactly.
func TestShardedConcurrentStressAndCheckpoint(t *testing.T) {
	p := NewPipeline()
	add := func(name string, kind Kind, opts ...Option) {
		t.Helper()
		if _, err := p.Add(name, kind, opts...); err != nil {
			t.Fatalf("Add(%s): %v", name, err)
		}
	}
	add("freq", KindFreq, WithEpsilon(0.01), WithShards(4))
	add("cm", KindCountMin, WithEpsilon(0.001), WithDelta(0.01), WithSeed(7), WithShards(4))
	add("cs", KindCountSketch, WithEpsilon(0.05), WithDelta(0.01), WithSeed(9), WithShards(3))
	add("dist", KindCountMinRange, WithUniverseBits(12), WithEpsilon(0.01), WithDelta(0.01), WithSeed(3), WithShards(2))

	stream := workload.Uniform(23, 60000, 4096)
	batches := workload.Batches(stream, 2048)
	half := len(batches) / 2
	probes := []uint64{0, 1, 2, 3, 10, 100, 2047, 4095}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					for _, name := range []string{"freq", "cm", "cs"} {
						if _, err := p.Estimate(name, 42); err != nil {
							t.Error(err)
							return
						}
					}
					_, _ = p.TopK("freq", 5)
					_, _ = p.HeavyHitters("freq", 0.05)
					_, _ = p.RangeCount("dist", 0, 1000)
					_, _ = p.Quantile("dist", 0.5)
					_ = p.StreamLen()
					_ = p.SpaceWords()
				}
			}
		}()
	}

	for _, b := range batches[:half] {
		if err := p.ProcessBatch(b); err != nil {
			t.Fatal(err)
		}
	}

	// Checkpoint mid-stream, concurrently with the query load.
	ckpt, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := &Pipeline{}
	if err := restored.UnmarshalBinary(ckpt); err != nil {
		t.Fatal(err)
	}

	for _, b := range batches[half:] {
		if err := p.ProcessBatch(b); err != nil {
			t.Fatal(err)
		}
		if err := restored.ProcessBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if p.StreamLen() != int64(len(stream)) {
		t.Fatalf("StreamLen = %d, want %d", p.StreamLen(), len(stream))
	}
	for _, name := range []string{"freq", "cm", "cs", "dist"} {
		ga, ok := p.Get(name)
		if !ok {
			t.Fatalf("%s missing from live pipeline", name)
		}
		gb, ok := restored.Get(name)
		if !ok {
			t.Fatalf("%s missing from restored pipeline", name)
		}
		sa, aok := ga.(*Sharded)
		sb, bok := gb.(*Sharded)
		if !aok || !bok {
			t.Fatalf("%s restored as %T, want *Sharded", name, gb)
		}
		if sa.InnerKind() != sb.InnerKind() {
			t.Fatalf("%s inner kind diverged: %s vs %s", name, sa.InnerKind(), sb.InnerKind())
		}
		compareSharded(t, sa, sb, probes)
	}
	// Quantile goes through a merged snapshot on both sides.
	qa, err := p.Quantile("dist", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := restored.Quantile("dist", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if qa != qb {
		t.Fatalf("median diverged: %d vs %d", qa, qb)
	}
}

// TestShardedCheckpointRejectsBadEnvelopes covers the corrupt-envelope
// error paths of the sharded checkpoint format.
func TestShardedCheckpointRejectsBadEnvelopes(t *testing.T) {
	var s Sharded
	if err := s.UnmarshalBinary([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	f, _ := NewFreqEstimator(0.1)
	aggCkpt, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.UnmarshalBinary(aggCkpt); !errors.Is(err, ErrBadParam) {
		t.Fatalf("plain aggregate checkpoint accepted by Sharded: %v", err)
	}
	// A sharded envelope whose inner kind is itself "sharded" must be
	// rejected (no recursive shard nesting).
	nested, err := seal(KindSharded, 0, shardedState{Inner: string(KindSharded), Checkpoints: [][]byte{aggCkpt}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.UnmarshalBinary(nested); !errors.Is(err, ErrBadParam) {
		t.Fatalf("nested sharded checkpoint accepted: %v", err)
	}
	// Zero-value Sharded cannot ingest.
	if err := s.ProcessBatch([]uint64{1}); !errors.Is(err, ErrBadParam) {
		t.Fatalf("zero-value Sharded ingested: %v", err)
	}
}

// TestShardedSnapshotCacheInvalidation guards the cached merged view
// (run under -race in CI): global queries between ingests are served
// from one merge, every ingest and restore invalidates it, and
// concurrent global queries during ingestion stay consistent with a
// shadow single-structure run.
func TestShardedSnapshotCacheInvalidation(t *testing.T) {
	s, err := NewSharded(KindFreq, 4, WithEpsilon(0.001))
	if err != nil {
		t.Fatal(err)
	}
	shadow, err := New(KindFreq, WithEpsilon(0.001))
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		want := shadow.(HeavyHitterSource).HeavyHitters(0.1)
		for i := 0; i < 3; i++ { // repeated queries hit the cache
			got := s.HeavyHitters(0.1)
			if len(got) != len(want) {
				t.Fatalf("%s query %d: %d heavy hitters, want %d", stage, i, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%s query %d: hh[%d] = %+v, want %+v", stage, i, j, got[j], want[j])
				}
			}
		}
	}
	feed := func(batch []uint64) {
		t.Helper()
		if err := s.ProcessBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := shadow.ProcessBatch(batch); err != nil {
			t.Fatal(err)
		}
	}

	feed(workload.SingleKey(7, 1000))
	check("after first ingest")
	// The second ingest shifts the heavy-hitter set; a stale cache would
	// keep answering with item 7 alone.
	feed(workload.SingleKey(9, 3000))
	check("after second ingest")

	// Restore invalidates too: rewind to a checkpoint taken now, ingest
	// through the restored value, and the cache must follow.
	ckpt, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	feed(workload.SingleKey(11, 9000))
	check("after third ingest")
	if err := s.UnmarshalBinary(ckpt); err != nil {
		t.Fatal(err)
	}
	if hh := s.HeavyHitters(0.3); len(hh) != 1 || hh[0].Item != 9 {
		t.Fatalf("after restore: heavy hitters %+v, want item 9 only", hh)
	}

	// Concurrent global queries during ingestion: quantile and
	// heavy-hitter readers race the writer; every answer must reflect
	// some batch boundary (the race detector is the real assertion).
	r, err := NewSharded(KindCountMinRange, 3, WithUniverseBits(12), WithEpsilon(0.01))
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = r.Quantile(0.5)
					_ = s.HeavyHitters(0.05)
					if _, err := s.Snapshot(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	for _, b := range workload.Batches(workload.Uniform(29, 40000, 4096), 2048) {
		if err := r.ProcessBatch(b); err != nil {
			t.Fatal(err)
		}
		if err := s.ProcessBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if got, want := r.Quantile(0.5), uint64(2048); got < want/2 || got > want*2 {
		t.Fatalf("final quantile %d implausible (uniform over 4096)", got)
	}
}
