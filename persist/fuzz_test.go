package persist

// Native fuzz targets for the durability parsers, mirroring the
// checkpoint-surface targets in the root package. The contract is the
// same: malformed frames must produce an error — never a panic, and
// never an allocation driven by an unvalidated decoded length. For the
// segment scanner the declared size bounds every payload allocation, so
// a frame claiming gigabytes against a kilobyte of input fails before
// allocating.

import (
	"bytes"
	"testing"
)

// fuzzSegmentBytes builds a small well-formed segment image to seed the
// corpus.
func fuzzSegmentBytes() []byte {
	var buf bytes.Buffer
	buf.WriteString(segMagic)
	for seq := uint64(1); seq <= 3; seq++ {
		buf.Write(appendRecord(nil, seq, []uint64{seq, seq * 10, seq * 100}))
	}
	return buf.Bytes()
}

func FuzzSegmentScan(f *testing.F) {
	seed := fuzzSegmentBytes()
	f.Add(seed)
	f.Add(seed[:len(seed)/2]) // torn record
	f.Add(seed[:len(segMagic)])
	f.Add([]byte(segMagic))
	f.Add([]byte{})
	f.Add([]byte("garbage that is not a segment"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip()
		}
		var records int
		valid, lastSeq, scanErr := scanSegment(bytes.NewReader(data), int64(len(data)), 1, func(seq uint64, items []uint64) error {
			records++
			// The scanner promises every delivered payload fit the input.
			if 8*len(items) > len(data) {
				t.Fatalf("record %d larger than input", seq)
			}
			return nil
		})
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid extent %d out of range [0, %d]", valid, len(data))
		}
		if scanErr == nil && lastSeq != uint64(records) {
			t.Fatalf("clean scan delivered %d records but lastSeq %d", records, lastSeq)
		}
		if scanErr != nil && !isTorn(scanErr) {
			t.Fatalf("scan returned non-framing error with a nil-error callback: %v", scanErr)
		}
	})
}

func FuzzManifestDecode(f *testing.F) {
	good, err := encodeManifest(manifest{Snapshot: snapshotName(7), Seq: 7})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte{})
	f.Add([]byte("AGGMAN01 but not really"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip()
		}
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		// Anything accepted must round-trip and carry a safe name.
		if m.Snapshot != "" {
			if seq, ok := parseSnapshotName(m.Snapshot); !ok || seq != m.Seq {
				t.Fatalf("accepted manifest with mismatched name %q / seq %d", m.Snapshot, m.Seq)
			}
		}
		re, err := encodeManifest(m)
		if err != nil {
			t.Fatalf("re-encoding accepted manifest: %v", err)
		}
		if _, err := decodeManifest(re); err != nil {
			t.Fatalf("re-decoding accepted manifest: %v", err)
		}
	})
}

func FuzzSnapshotDecode(f *testing.F) {
	good := encodeSnapshot(42, []byte("envelope bytes"))
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte{})
	f.Add([]byte("AGGSNAP1 and then junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip()
		}
		seq, payload, err := decodeSnapshot(data)
		if err != nil {
			return
		}
		if len(payload) > len(data) {
			t.Fatal("payload larger than input")
		}
		re := encodeSnapshot(seq, payload)
		if !bytes.Equal(re, data) {
			t.Fatal("accepted snapshot does not round-trip")
		}
	})
}
