package persist

// The manifest is the root of trust for recovery: a single small file
// naming the latest valid snapshot and the WAL sequence it covers. It is
// replaced atomically (tmp + fsync + rename + directory fsync), so a
// crash leaves either the old or the new manifest, never a mix; its
// payload is CRC-framed so a damaged file is detected, in which case
// recovery falls back to scanning the snapshot files directly.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
)

const (
	manifestName  = "MANIFEST"
	manifestMagic = "AGGMAN01"
	// maxManifestLen bounds the JSON payload; the real payload is a few
	// dozen bytes, so anything large is malformed by definition.
	maxManifestLen = 1 << 16
)

// manifest is the decoded payload.
type manifest struct {
	// Snapshot is the snapshot filename ("snap-<seq>.snap"), empty when
	// no snapshot exists yet.
	Snapshot string `json:"snapshot"`
	// Seq is the last WAL sequence the snapshot covers; replay starts
	// at Seq+1.
	Seq uint64 `json:"seq"`
}

// encodeManifest frames m as magic + u32 length + u32 CRC + JSON.
func encodeManifest(m manifest) ([]byte, error) {
	payload, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("persist: encoding manifest: %w", err)
	}
	out := make([]byte, len(manifestMagic)+8+len(payload))
	copy(out, manifestMagic)
	binary.LittleEndian.PutUint32(out[len(manifestMagic):], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[len(manifestMagic)+4:], crc32.Checksum(payload, crcTable))
	copy(out[len(manifestMagic)+8:], payload)
	return out, nil
}

// decodeManifest parses and validates a manifest file's contents.
// Malformed input yields an error — never a panic, and never an
// allocation beyond the input's own length.
func decodeManifest(data []byte) (manifest, error) {
	var m manifest
	head := len(manifestMagic) + 8
	if len(data) < head {
		return m, fmt.Errorf("%w: manifest too short (%d bytes)", ErrCorrupt, len(data))
	}
	if string(data[:len(manifestMagic)]) != manifestMagic {
		return m, fmt.Errorf("%w: bad manifest magic", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(data[len(manifestMagic):]))
	wantCRC := binary.LittleEndian.Uint32(data[len(manifestMagic)+4:])
	if n > maxManifestLen {
		return m, fmt.Errorf("%w: manifest payload length %d exceeds limit", ErrCorrupt, n)
	}
	if n != len(data)-head {
		return m, fmt.Errorf("%w: manifest payload length %d, have %d bytes", ErrCorrupt, n, len(data)-head)
	}
	payload := data[head:]
	if crc32.Checksum(payload, crcTable) != wantCRC {
		return m, fmt.Errorf("%w: manifest CRC mismatch", ErrCorrupt)
	}
	if err := json.Unmarshal(payload, &m); err != nil {
		return m, fmt.Errorf("%w: manifest payload: %v", ErrCorrupt, err)
	}
	if m.Snapshot != "" {
		// The name is used to open a file in the data directory; reject
		// anything that could escape it or that we did not write.
		if m.Snapshot != filepath.Base(m.Snapshot) || strings.ContainsAny(m.Snapshot, "/\\") {
			return m, fmt.Errorf("%w: manifest snapshot name %q", ErrCorrupt, m.Snapshot)
		}
		if seq, ok := parseSnapshotName(m.Snapshot); !ok || seq != m.Seq {
			return m, fmt.Errorf("%w: manifest snapshot name %q does not match seq %d", ErrCorrupt, m.Snapshot, m.Seq)
		}
	}
	return m, nil
}

// writeFileAtomic writes data to path via a tmp file, fsync, rename, and
// directory fsync, so the path either holds the old content or the new.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// readManifest loads and validates dir's manifest. A missing manifest is
// (manifest{}, false, nil); a present-but-corrupt one returns the error.
func readManifest(dir string) (manifest, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return manifest{}, false, nil
	}
	if err != nil {
		return manifest{}, false, err
	}
	m, err := decodeManifest(data)
	if err != nil {
		return manifest{}, true, err
	}
	return m, true, nil
}

// writeManifest atomically replaces dir's manifest.
func writeManifest(dir string, m manifest) error {
	data, err := encodeManifest(m)
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, manifestName), data)
}
