package persist

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// collect reopens dir and returns the replayed batches plus the
// recovered snapshot payload.
func collect(t *testing.T, dir string, opt Options) (snap []byte, batches [][]uint64) {
	t.Helper()
	st, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st.Close()
	snap, _ = st.RecoveredSnapshot()
	if err := st.Replay(func(items []uint64) error {
		b := make([]uint64, len(items))
		copy(b, items)
		batches = append(batches, b)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return snap, batches
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]uint64{{1, 2, 3}, {}, {42}, {7, 7, 7, 7}}
	for i, b := range want {
		seq, err := st.Append(b)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d: seq %d", i, seq)
		}
	}
	if st.Position() != 4 {
		t.Fatalf("position %d, want 4", st.Position())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	snap, got := collect(t, dir, Options{})
	if snap != nil {
		t.Fatalf("unexpected recovered snapshot (%d bytes)", len(snap))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
}

func TestSnapshotTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Fsync: FsyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := st.Append([]uint64{uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.WriteSnapshot([]byte("state@8"), 8); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.SnapshotSeq != 8 || stats.Snapshots != 1 {
		t.Fatalf("stats after snapshot: %+v", stats)
	}
	if stats.TruncatedSegments == 0 {
		t.Fatalf("no segments truncated: %+v", stats)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	snap, got := collect(t, dir, Options{})
	if string(snap) != "state@8" {
		t.Fatalf("recovered snapshot %q", snap)
	}
	if want := [][]uint64{{8}, {9}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
}

func TestSnapshotSeqValidation(t *testing.T) {
	st, err := Open(t.TempDir(), Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Append([]uint64{1}); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot([]byte("x"), 2); err == nil {
		t.Fatal("snapshot beyond WAL position accepted")
	}
	if err := st.WriteSnapshot([]byte("x"), 1); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot([]byte("y"), 0); err == nil {
		t.Fatal("stale snapshot accepted")
	}
}

// lastSegment returns the path of the highest-numbered segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := ""
	for _, e := range entries {
		if _, ok := parseSegmentName(e.Name()); ok && e.Name() > last {
			last = e.Name()
		}
	}
	if last == "" {
		t.Fatal("no segment files")
	}
	return filepath.Join(dir, last)
}

func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := st.Append([]uint64{uint64(i), uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// A crash mid-append leaves a partial frame at the tail.
	path := lastSegment(t, dir)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x20, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, got := collect(t, dir, Options{})
	if len(got) != 3 {
		t.Fatalf("replayed %d batches, want 3 (torn tail dropped)", len(got))
	}

	// And appends must continue cleanly after the repair.
	st2, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := st2.Append([]uint64{99}); err != nil || seq != 4 {
		t.Fatalf("append after repair: seq %d, %v", seq, err)
	}
	st2.Close()
	_, got = collect(t, dir, Options{})
	if len(got) != 4 || got[3][0] != 99 {
		t.Fatalf("after repair+append: %v", got)
	}
}

func TestCorruptSealedSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Fsync: FsyncNever, SegmentBytes: 48})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := st.Append([]uint64{uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if st.Stats().Segments < 2 {
		t.Fatalf("expected multiple segments, got %d", st.Stats().Segments)
	}
	st.Close()

	// Flip a payload byte in the FIRST (sealed) segment: that is real
	// corruption, not a torn tail, and recovery must refuse.
	data, err := os.ReadFile(filepath.Join(dir, segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on corrupt sealed segment: %v, want ErrCorrupt", err)
	}
}

func TestManifestFallback(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append([]uint64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot([]byte("good"), 1); err != nil {
		t.Fatal(err)
	}
	st.Close()

	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("scribble"), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, _ := collect(t, dir, Options{})
	if string(snap) != "good" {
		t.Fatalf("fallback recovery got snapshot %q", snap)
	}
}

// TestLostSnapshotGapRejected: once the WAL has been truncated behind a
// snapshot, losing that snapshot must fail recovery loudly — the empty
// segment's filename still promises records we no longer have.
func TestLostSnapshotGapRejected(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := st.Append([]uint64{uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.WriteSnapshot([]byte("s"), 3); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if err := os.Remove(filepath.Join(dir, snapshotName(3))); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with snapshot lost after truncation: %v, want ErrCorrupt", err)
	}
}

// TestStaleSnapshotCleanup: snapshot files recovery does not select —
// leaked by a crash between manifest update and removal — are deleted
// on the next Open instead of accumulating.
func TestStaleSnapshotCleanup(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := st.Append([]uint64{uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.WriteSnapshot([]byte("current"), 4); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// A leaked older snapshot the manifest no longer references.
	if _, err := writeSnapshotFile(dir, 2, []byte("leaked")); err != nil {
		t.Fatal(err)
	}

	snap, _ := collect(t, dir, Options{})
	if string(snap) != "current" {
		t.Fatalf("recovered snapshot %q, want the manifest's", snap)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName(2))); !os.IsNotExist(err) {
		t.Fatalf("leaked snapshot not cleaned up: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName(4))); err != nil {
		t.Fatalf("selected snapshot missing: %v", err)
	}
}

func TestDirectoryLock(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open: %v, want ErrLocked", err)
	}
}

func TestClosedStore(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := st.Append([]uint64{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := st.WriteSnapshot(nil, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("snapshot after close: %v", err)
	}
}

func TestSnapshotTrigger(t *testing.T) {
	st, err := Open(t.TempDir(), Options{Fsync: FsyncNever, SnapshotRecords: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 3; i++ {
		select {
		case <-st.SnapshotTrigger():
			t.Fatalf("trigger fired after %d records", i)
		default:
		}
		if _, err := st.Append([]uint64{uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-st.SnapshotTrigger():
	default:
		t.Fatal("trigger did not fire at the record threshold")
	}
}

func TestParseFsync(t *testing.T) {
	for _, tc := range []struct {
		s  string
		p  Fsync
		ok bool
	}{
		{"always", FsyncAlways, true},
		{"interval", FsyncInterval, true},
		{"never", FsyncNever, true},
		{"sometimes", 0, false},
	} {
		p, err := ParseFsync(tc.s)
		if (err == nil) != tc.ok || p != tc.p {
			t.Fatalf("ParseFsync(%q) = %v, %v", tc.s, p, err)
		}
		if tc.ok && p.String() != tc.s {
			t.Fatalf("String() = %q, want %q", p.String(), tc.s)
		}
	}
}

func TestInspect(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := st.Append([]uint64{uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.WriteSnapshot([]byte("s"), 3); err != nil {
		t.Fatal(err)
	}
	st.Close()

	r, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !r.ManifestValid || r.ManifestSeq != 3 || r.RecoverySeq != 3 {
		t.Fatalf("inspect manifest: %+v", r)
	}
	if r.ReplayFrom != 4 || r.ReplayTo != 5 || r.ReplayRecords != 2 {
		t.Fatalf("inspect replay span: %+v", r)
	}
	for _, sg := range r.Segments {
		if sg.Corrupt != "" {
			t.Fatalf("segment flagged: %+v", sg)
		}
	}
}
