package persist

// Store ties the WAL, the snapshot store, and the manifest together
// behind a single-writer API:
//
//	st, _ := persist.Open(dir, persist.Options{...})
//	if snap, ok := st.RecoveredSnapshot(); ok { restore sink from snap }
//	st.Replay(func(items []uint64) error { return sink.ProcessBatch(items) })
//	... st.Append(batch) before every applied minibatch ...
//
// Open validates the whole directory: the manifest (falling back to the
// newest valid snapshot file when the manifest is damaged), every sealed
// segment (a CRC failure there is ErrCorrupt), and the final segment,
// whose torn tail — the signature of a crash mid-append — is truncated
// away. Append then continues the sequence exactly where the valid
// prefix ended.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/metrics"
)

const (
	walPrefix = "wal-"
	walSuffix = ".log"
)

// segmentName formats the filename for a segment whose first record has
// the given sequence.
func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("%s%020d%s", walPrefix, firstSeq, walSuffix)
}

// parseSegmentName extracts the first-record sequence from a segment
// filename.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, walPrefix) || !strings.HasSuffix(name, walSuffix) {
		return 0, false
	}
	digits := name[len(walPrefix) : len(name)-len(walSuffix)]
	if len(digits) != 20 {
		return 0, false
	}
	seq, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// segmentInfo is one validated segment's metadata.
type segmentInfo struct {
	name     string
	firstSeq uint64 // sequence promised by the filename
	lastSeq  uint64 // last valid record, 0 if the segment is empty
	records  int64
	bytes    int64 // valid bytes, header included
}

// Stats is a point-in-time snapshot of the store's counters, shaped for
// the /v1/persist/stats endpoint.
type Stats struct {
	Dir                string `json:"dir"`
	Fsync              string `json:"fsync"`
	LastSeq            uint64 `json:"last_seq"`
	SnapshotSeq        uint64 `json:"snapshot_seq"`
	Segments           int    `json:"segments"`
	WALBytes           int64  `json:"wal_bytes"`
	ActiveSegmentBytes int64  `json:"active_segment_bytes"`
	AppendedRecords    int64  `json:"appended_records"`
	AppendedBytes      int64  `json:"appended_bytes"`
	Fsyncs             int64  `json:"fsyncs"`
	Snapshots          int64  `json:"snapshots"`
	SnapshotFailures   int64  `json:"snapshot_failures"`
	TruncatedSegments  int64  `json:"truncated_segments"`
	RecoveredSnapshot  bool   `json:"recovered_snapshot"`
	ReplayedRecords    int64  `json:"replayed_records"`
	SinceSnapRecords   int64  `json:"since_snapshot_records"`
	SinceSnapBytes     int64  `json:"since_snapshot_bytes"`
	LastError          string `json:"last_error,omitempty"`
}

// Store is an open data directory. All methods are safe for concurrent
// use; Append is single-writer by construction (the Ingestor's one flush
// worker) but locked anyway.
type Store struct {
	dir    string
	opt    Options
	unlock func()

	mu       sync.Mutex
	active   *os.File
	actInfo  segmentInfo
	sealed   []segmentInfo
	lastSeq  uint64
	dirty    bool
	failed   error // set when the active segment may hold a partial frame
	closed   bool
	frameBuf []byte

	snapSeq  uint64
	snapName string

	recSnapshot []byte
	recSnapSeq  uint64
	replaySegs  []segmentInfo

	sinceSnapRecords int64
	sinceSnapBytes   int64
	lastErr          string

	// Registry-backed instruments (see initMetrics): Stats() reads
	// these, and /metrics renders them — one source of truth.
	appendedRecords   *metrics.Counter
	appendedBytes     *metrics.Counter
	fsyncs            *metrics.Counter
	snapshots         *metrics.Counter
	snapshotFailures  *metrics.Counter
	truncatedSegments *metrics.Counter
	replayedRecords   *metrics.Counter
	appendSeconds     *metrics.Histogram
	snapshotSeconds   *metrics.Histogram
	snapshotBytes     *metrics.Gauge
	recoveredSnap     *metrics.Gauge

	snapC     chan struct{}
	flushStop chan struct{}
	flushDone chan struct{}
}

// Open opens (creating if needed) a data directory, validates its
// contents, repairs a torn WAL tail, and prepares the store for
// RecoveredSnapshot + Replay followed by Append.
func Open(dir string, opt Options) (*Store, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating data directory: %w", err)
	}
	unlock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opt: opt, unlock: unlock, snapC: make(chan struct{}, 1)}
	s.initMetrics(opt.Metrics)
	if err := s.load(); err != nil {
		unlock()
		return nil, err
	}
	if opt.Fsync == FsyncInterval {
		s.flushStop = make(chan struct{})
		s.flushDone = make(chan struct{})
		go s.flushLoop()
	}
	return s, nil
}

// initMetrics wires the store's instruments into a registry — the
// Ingestor's (shared through persist.Options.Metrics so every layer
// lands on one /metrics endpoint) or a private one.
func (s *Store) initMetrics(reg *metrics.Registry) {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	fsync := s.opt.Fsync.String()
	s.appendedRecords = reg.Counter("streamagg_wal_appended_records_total",
		"Minibatches appended to the WAL.")
	s.appendedBytes = reg.Counter("streamagg_wal_appended_bytes_total",
		"Framed bytes appended to the WAL.")
	s.fsyncs = reg.Counter("streamagg_wal_fsyncs_total",
		"WAL fsync calls.", "fsync", fsync)
	s.truncatedSegments = reg.Counter("streamagg_wal_truncated_segments_total",
		"Sealed WAL segments deleted behind a snapshot.")
	s.appendSeconds = reg.Histogram("streamagg_wal_append_seconds",
		"WAL append latency per minibatch, including any synchronous fsync.",
		metrics.UnitSeconds, "fsync", fsync)
	s.snapshots = reg.Counter("streamagg_snapshots_total",
		"Snapshots installed.")
	s.snapshotFailures = reg.Counter("streamagg_snapshot_failures_total",
		"Snapshot captures or installs that failed.")
	s.snapshotSeconds = reg.Histogram("streamagg_snapshot_write_seconds",
		"Snapshot install latency (write + manifest + reclamation).", metrics.UnitSeconds)
	s.snapshotBytes = reg.Gauge("streamagg_snapshot_bytes",
		"Size of the most recently installed snapshot payload.")
	s.replayedRecords = reg.Counter("streamagg_recovery_replayed_records_total",
		"WAL minibatches replayed during recovery.")
	s.recoveredSnap = reg.Gauge("streamagg_recovery_snapshot_loaded",
		"1 if recovery restored from a snapshot, else 0.")
	reg.GaugeFunc("streamagg_wal_last_seq",
		"Sequence of the last appended WAL record.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.lastSeq)
		})
	reg.GaugeFunc("streamagg_snapshot_seq",
		"WAL sequence covered by the installed snapshot.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.snapSeq)
		})
	reg.GaugeFunc("streamagg_wal_bytes",
		"Live WAL bytes across all segments.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			total := s.actInfo.bytes
			for _, seg := range s.sealed {
				total += seg.bytes
			}
			return float64(total)
		})
	reg.GaugeFunc("streamagg_wal_segments",
		"WAL segment count, active included.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			n := len(s.sealed)
			if s.active != nil {
				n++
			}
			return float64(n)
		})
}

// load scans the directory: stale temp files, snapshot + manifest, then
// the segment chain.
func (s *Store) load() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("persist: reading data directory: %w", err)
	}
	var segNames, snapNames []string
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.Contains(name, ".tmp-"):
			// Leftover from an interrupted atomic write; never valid.
			_ = os.Remove(filepath.Join(s.dir, name))
		case strings.HasPrefix(name, walPrefix):
			segNames = append(segNames, name)
		case strings.HasPrefix(name, snapPrefix):
			snapNames = append(snapNames, name)
		}
	}
	if err := s.loadSnapshot(snapNames); err != nil {
		return err
	}
	// Remove snapshots recovery did not select: older files leaked by a
	// crash between manifest update and removal, and unreferenced newer
	// ones from a crash mid-installation. Left in place they accumulate
	// and widen the damaged-manifest fallback beyond the real state.
	for _, name := range snapNames {
		if name != s.snapName {
			_ = os.Remove(filepath.Join(s.dir, name))
		}
	}
	if err := s.loadSegments(segNames); err != nil {
		return err
	}
	if s.lastSeq < s.snapSeq {
		// The WAL was truncated behind the snapshot; appends continue
		// after the snapshot's position.
		s.lastSeq = s.snapSeq
	}
	// Make sure the active segment can continue the sequence; if the
	// snapshot outran the on-disk WAL (truncate-all), start fresh.
	if s.active == nil || s.nextActiveSeq() != s.lastSeq+1 {
		if s.active != nil {
			if err := s.sealActiveLocked(); err != nil {
				return err
			}
		}
		if err := s.createSegmentLocked(s.lastSeq + 1); err != nil {
			return err
		}
	}
	return nil
}

// nextActiveSeq is the sequence the next record appended to the active
// segment would get, per the on-disk content.
func (s *Store) nextActiveSeq() uint64 {
	if s.actInfo.lastSeq != 0 {
		return s.actInfo.lastSeq + 1
	}
	return s.actInfo.firstSeq
}

// loadSnapshot picks the recovery snapshot: the manifest's if it is valid
// and its file checks out, else the newest valid snapshot file.
func (s *Store) loadSnapshot(snapNames []string) error {
	if m, present, err := readManifest(s.dir); err == nil && present && m.Snapshot != "" {
		if seq, payload, err := readSnapshot(s.dir, m.Snapshot); err == nil {
			s.installSnapshot(m.Snapshot, seq, payload)
			return nil
		}
	}
	// Manifest missing, damaged, or pointing at a damaged file: fall
	// back to the newest snapshot that validates.
	sort.Sort(sort.Reverse(sort.StringSlice(snapNames)))
	for _, name := range snapNames {
		if _, ok := parseSnapshotName(name); !ok {
			continue
		}
		if seq, payload, err := readSnapshot(s.dir, name); err == nil {
			s.installSnapshot(name, seq, payload)
			return nil
		}
	}
	return nil
}

func (s *Store) installSnapshot(name string, seq uint64, payload []byte) {
	s.snapName, s.snapSeq = name, seq
	s.recSnapshot, s.recSnapSeq = payload, seq
	s.recoveredSnap.Set(1)
	s.snapshotBytes.Set(int64(len(payload)))
}

// loadSegments validates the segment chain, truncating a torn tail on
// the final segment and rejecting corruption anywhere else.
func (s *Store) loadSegments(segNames []string) error {
	type seg struct {
		name     string
		firstSeq uint64
	}
	var segs []seg
	for _, name := range segNames {
		firstSeq, ok := parseSegmentName(name)
		if !ok {
			continue
		}
		segs = append(segs, seg{name, firstSeq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })

	var infos []segmentInfo
	for i, sg := range segs {
		final := i == len(segs)-1
		path := filepath.Join(s.dir, sg.name)
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("persist: opening segment %s: %w", sg.name, err)
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return fmt.Errorf("persist: segment %s: %w", sg.name, err)
		}
		valid, lastSeq, scanErr := scanSegment(f, fi.Size(), sg.firstSeq, nil)
		f.Close()
		if scanErr != nil {
			if !final || !isTorn(scanErr) {
				return fmt.Errorf("%w: segment %s: %v", ErrCorrupt, sg.name, scanErr)
			}
			// Torn tail on the final segment: the crash signature we
			// tolerate. Truncate the garbage so the append path and
			// every future scan see only the valid prefix. A segment
			// whose header itself is torn truncates to empty and is
			// re-headered below.
			if valid < int64(len(segMagic)) {
				valid = 0
			}
			if err := truncateFile(path, valid); err != nil {
				return fmt.Errorf("persist: truncating torn tail of %s: %w", sg.name, err)
			}
			if valid == 0 {
				if err := writeSegmentHeader(path); err != nil {
					return err
				}
				valid = int64(len(segMagic))
			}
		}
		info := segmentInfo{name: sg.name, firstSeq: sg.firstSeq, lastSeq: lastSeq, bytes: valid}
		if lastSeq != 0 {
			info.records = int64(lastSeq - sg.firstSeq + 1)
		}
		if !final && lastSeq == 0 {
			return fmt.Errorf("%w: empty sealed segment %s", ErrCorrupt, sg.name)
		}
		if len(infos) > 0 {
			prev := infos[len(infos)-1]
			if sg.firstSeq != prev.lastSeq+1 {
				return fmt.Errorf("%w: segment %s breaks sequence (previous ends at %d)", ErrCorrupt, sg.name, prev.lastSeq)
			}
		}
		infos = append(infos, info)
	}
	if len(infos) == 0 {
		return nil
	}
	// A gap between the snapshot and the start of the surviving WAL
	// means lost minibatches: refuse to silently under-replay. The first
	// segment's filename promises what the WAL once held, so this also
	// catches the case where every surviving segment is empty (snapshot
	// file lost after truncation).
	first := infos[0].firstSeq
	last := infos[len(infos)-1].lastSeq
	if last == 0 && len(infos) > 1 {
		last = infos[len(infos)-2].lastSeq
	}
	if first > s.snapSeq+1 {
		return fmt.Errorf("%w: WAL starts at seq %d but snapshot covers only %d", ErrCorrupt, first, s.snapSeq)
	}
	for _, info := range infos {
		if info.lastSeq > s.snapSeq && info.lastSeq != 0 {
			s.replaySegs = append(s.replaySegs, info)
		}
	}
	s.lastSeq = last
	// Reopen the final segment for appending at its validated end.
	act := infos[len(infos)-1]
	f, err := os.OpenFile(filepath.Join(s.dir, act.name), os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("persist: reopening segment %s: %w", act.name, err)
	}
	if _, err := f.Seek(act.bytes, 0); err != nil {
		f.Close()
		return fmt.Errorf("persist: seeking segment %s: %w", act.name, err)
	}
	s.active, s.actInfo = f, act
	s.sealed = append(s.sealed, infos[:len(infos)-1]...)
	return nil
}

func truncateFile(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return err
	}
	return f.Sync()
}

func writeSegmentHeader(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write([]byte(segMagic)); err != nil {
		return err
	}
	return f.Sync()
}

// createSegmentLocked starts a fresh active segment whose first record
// will carry firstSeq.
func (s *Store) createSegmentLocked(firstSeq uint64) error {
	name := segmentName(firstSeq)
	f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: creating segment %s: %w", name, err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("persist: writing segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("persist: syncing segment header: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return fmt.Errorf("persist: syncing data directory: %w", err)
	}
	s.active = f
	s.actInfo = segmentInfo{name: name, firstSeq: firstSeq, bytes: int64(len(segMagic))}
	return nil
}

// sealActiveLocked syncs and closes the active segment, moving it to the
// sealed list (or deleting it immediately if it is empty).
func (s *Store) sealActiveLocked() error {
	if s.active == nil {
		return nil
	}
	if err := s.syncLocked(); err != nil {
		return err
	}
	if err := s.active.Close(); err != nil {
		return err
	}
	if s.actInfo.lastSeq == 0 {
		// Never held a record; no reason to keep it.
		_ = os.Remove(filepath.Join(s.dir, s.actInfo.name))
	} else {
		s.sealed = append(s.sealed, s.actInfo)
	}
	s.active = nil
	s.actInfo = segmentInfo{}
	return nil
}

// RecoveredSnapshot returns the snapshot payload (a checkpoint envelope)
// recovery selected, if any. Restore the sink from it before Replay.
func (s *Store) RecoveredSnapshot() ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recSnapshot, s.recSnapshot != nil
}

// Replay streams every WAL minibatch after the recovered snapshot's
// position into fn, in sequence order. Call it once, after restoring the
// snapshot and before the first Append.
func (s *Store) Replay(fn func(items []uint64) error) error {
	s.mu.Lock()
	segs := s.replaySegs
	snapSeq := s.recSnapSeq
	s.mu.Unlock()
	for _, seg := range segs {
		f, err := os.Open(filepath.Join(s.dir, seg.name))
		if err != nil {
			return fmt.Errorf("persist: replaying segment %s: %w", seg.name, err)
		}
		_, _, scanErr := scanSegment(f, seg.bytes, seg.firstSeq, func(seq uint64, items []uint64) error {
			if seq <= snapSeq {
				return nil
			}
			if err := fn(items); err != nil {
				return fmt.Errorf("persist: replaying record %d: %w", seq, err)
			}
			s.replayedRecords.Inc()
			return nil
		})
		f.Close()
		if scanErr != nil {
			if isTorn(scanErr) {
				// The extent was validated at Open; failing now means
				// the file changed underneath us.
				return fmt.Errorf("%w: segment %s changed during replay: %v", ErrCorrupt, seg.name, scanErr)
			}
			return scanErr
		}
	}
	return nil
}

// Append logs one minibatch and returns its WAL sequence. Under
// FsyncAlways the record is on stable storage when Append returns; the
// caller applies the batch to the in-memory state only after Append
// succeeds, which is what makes recovery exact.
func (s *Store) Append(items []uint64) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if s.failed != nil {
		return 0, s.failed
	}
	if s.actInfo.bytes >= s.opt.SegmentBytes && s.actInfo.lastSeq != 0 {
		if err := s.rollLocked(); err != nil {
			s.lastErr = err.Error()
			return 0, err
		}
	}
	start := time.Now()
	seq := s.lastSeq + 1
	s.frameBuf = appendRecord(s.frameBuf, seq, items)
	if _, err := s.active.Write(s.frameBuf); err != nil {
		// A partial frame may now sit at the tail; wind the file back to
		// the last whole record so later appends don't land after
		// garbage. If even that fails the store is poisoned.
		if terr := s.active.Truncate(s.actInfo.bytes); terr != nil {
			s.failed = fmt.Errorf("persist: segment unrecoverable after failed append: %w", terr)
		} else {
			_, _ = s.active.Seek(s.actInfo.bytes, 0)
		}
		s.lastErr = err.Error()
		return 0, fmt.Errorf("persist: appending record %d: %w", seq, err)
	}
	frameLen := int64(len(s.frameBuf))
	s.lastSeq = seq
	s.actInfo.lastSeq = seq
	s.actInfo.records++
	s.actInfo.bytes += frameLen
	s.appendedRecords.Inc()
	s.appendedBytes.Add(frameLen)
	s.sinceSnapRecords++
	s.sinceSnapBytes += frameLen
	if s.opt.Fsync == FsyncAlways {
		if err := s.active.Sync(); err != nil {
			s.lastErr = err.Error()
			return 0, fmt.Errorf("persist: syncing record %d: %w", seq, err)
		}
		s.fsyncs.Inc()
	} else {
		s.dirty = true
	}
	s.appendSeconds.ObserveDuration(time.Since(start))
	if s.sinceSnapRecords >= s.opt.SnapshotRecords || s.sinceSnapBytes >= s.opt.SnapshotBytes {
		select {
		case s.snapC <- struct{}{}:
		default:
		}
	}
	return seq, nil
}

// rollLocked seals the active segment and starts the next one.
func (s *Store) rollLocked() error {
	if err := s.sealActiveLocked(); err != nil {
		return err
	}
	return s.createSegmentLocked(s.lastSeq + 1)
}

// Sync forces buffered WAL records to stable storage (a no-op when
// nothing is dirty).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if !s.dirty || s.active == nil {
		return nil
	}
	if err := s.active.Sync(); err != nil {
		s.lastErr = err.Error()
		return fmt.Errorf("persist: syncing WAL: %w", err)
	}
	s.dirty = false
	s.fsyncs.Inc()
	return nil
}

// flushLoop is the FsyncInterval timer.
func (s *Store) flushLoop() {
	defer close(s.flushDone)
	t := time.NewTicker(s.opt.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.flushStop:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.closed {
				_ = s.syncLocked()
			}
			s.mu.Unlock()
		}
	}
}

// Position reports the sequence of the last appended record (or the
// recovered position before any appends).
func (s *Store) Position() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq
}

// SnapshotTrigger returns a channel that receives a token when enough
// WAL has accumulated since the last snapshot (Options.SnapshotRecords /
// SnapshotBytes). The Ingestor's background snapshotter waits on it.
func (s *Store) SnapshotTrigger() <-chan struct{} {
	return s.snapC
}

// NoteSnapshotFailure records a failed snapshot capture for Stats.
func (s *Store) NoteSnapshotFailure(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snapshotFailures.Inc()
	s.lastErr = err.Error()
}

// WriteSnapshot atomically installs payload (a checkpoint envelope
// capturing the sink's state at a quiesced minibatch boundary) as the
// snapshot covering every WAL record up to and including seq, updates the
// manifest, and deletes the snapshot files and sealed segments the new
// snapshot supersedes. Callers obtain (payload, seq) while the ingest
// path is quiesced — e.g. Ingestor.DurableCheckpoint — so the pair is
// consistent by construction.
func (s *Store) WriteSnapshot(payload []byte, seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.writeSnapshotLocked(payload, seq)
}

func (s *Store) writeSnapshotLocked(payload []byte, seq uint64) error {
	if seq < s.snapSeq {
		return fmt.Errorf("persist: stale snapshot at seq %d (have %d)", seq, s.snapSeq)
	}
	if seq > s.lastSeq {
		return fmt.Errorf("persist: snapshot seq %d beyond WAL position %d", seq, s.lastSeq)
	}
	start := time.Now()
	name, err := writeSnapshotFile(s.dir, seq, payload)
	if err != nil {
		return fmt.Errorf("persist: writing snapshot: %w", err)
	}
	if err := writeManifest(s.dir, manifest{Snapshot: name, Seq: seq}); err != nil {
		return fmt.Errorf("persist: writing manifest: %w", err)
	}
	prevName := s.snapName
	s.snapName, s.snapSeq = name, seq
	s.snapshots.Inc()
	s.snapshotBytes.Set(int64(len(payload)))
	s.sinceSnapRecords, s.sinceSnapBytes = 0, 0
	if prevName != "" && prevName != name {
		_ = os.Remove(filepath.Join(s.dir, prevName))
	}
	// Seal the active segment if the snapshot covers any of it, so those
	// records become truncatable now (or at the next snapshot).
	if s.actInfo.lastSeq != 0 && s.actInfo.firstSeq <= seq {
		if err := s.rollLocked(); err != nil {
			s.lastErr = err.Error()
			return fmt.Errorf("persist: rolling segment behind snapshot: %w", err)
		}
	}
	// Drop every sealed segment the snapshot fully covers.
	kept := s.sealed[:0]
	for _, seg := range s.sealed {
		if seg.lastSeq <= seq {
			_ = os.Remove(filepath.Join(s.dir, seg.name))
			s.truncatedSegments.Inc()
		} else {
			kept = append(kept, seg)
		}
	}
	s.sealed = kept
	s.snapshotSeconds.ObserveDuration(time.Since(start))
	return nil
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Dir:                s.dir,
		Fsync:              s.opt.Fsync.String(),
		LastSeq:            s.lastSeq,
		SnapshotSeq:        s.snapSeq,
		Segments:           len(s.sealed),
		ActiveSegmentBytes: s.actInfo.bytes,
		AppendedRecords:    s.appendedRecords.Value(),
		AppendedBytes:      s.appendedBytes.Value(),
		Fsyncs:             s.fsyncs.Value(),
		Snapshots:          s.snapshots.Value(),
		SnapshotFailures:   s.snapshotFailures.Value(),
		TruncatedSegments:  s.truncatedSegments.Value(),
		RecoveredSnapshot:  s.recSnapshot != nil,
		ReplayedRecords:    s.replayedRecords.Value(),
		SinceSnapRecords:   s.sinceSnapRecords,
		SinceSnapBytes:     s.sinceSnapBytes,
		LastError:          s.lastErr,
	}
	for _, seg := range s.sealed {
		st.WALBytes += seg.bytes
	}
	if s.active != nil {
		st.Segments++
		st.WALBytes += s.actInfo.bytes
	}
	return st
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// Close syncs and closes the WAL and releases the directory lock. It is
// idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.syncLocked()
	if s.active != nil {
		if cerr := s.active.Close(); err == nil {
			err = cerr
		}
		s.active = nil
	}
	flushStop := s.flushStop
	s.mu.Unlock()
	if flushStop != nil {
		close(flushStop)
		<-s.flushDone
	}
	s.unlock()
	return err
}
