package persist

// WAL record and segment framing. A segment file is an 8-byte magic
// header followed by a run of records with consecutive sequence numbers;
// its filename carries the sequence of its first record. Each record
// frames one ingest minibatch:
//
//	offset 0  uint32 LE  payload length in bytes (8 x item count)
//	offset 4  uint32 LE  CRC-32C over seq ++ payload
//	offset 8  uint64 LE  sequence number (consecutive, starting at 1)
//	offset 16 payload    items as uint64 LE
//
// The scanner is the single arbiter of validity, shared by recovery,
// replay, Inspect, and the fuzz targets. It validates every length
// against the bytes actually remaining before allocating, so a malformed
// length field can never drive an over-allocation.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	segMagic     = "AGGWAL01"
	recHeaderLen = 16
	// maxRecordBytes bounds a single record's payload; a frame claiming
	// more is invalid regardless of how much input remains.
	maxRecordBytes = 256 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// recordCRC computes the checksum over the sequence number and payload.
func recordCRC(seq uint64, payload []byte) uint32 {
	var seqBuf [8]byte
	binary.LittleEndian.PutUint64(seqBuf[:], seq)
	crc := crc32.Update(0, crcTable, seqBuf[:])
	return crc32.Update(crc, crcTable, payload)
}

// appendRecord frames one minibatch into buf (reusing its capacity) and
// returns the encoded frame.
func appendRecord(buf []byte, seq uint64, items []uint64) []byte {
	n := 8 * len(items)
	need := recHeaderLen + n
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(n))
	for i, it := range items {
		binary.LittleEndian.PutUint64(buf[recHeaderLen+8*i:], it)
	}
	binary.LittleEndian.PutUint64(buf[8:16], seq)
	binary.LittleEndian.PutUint32(buf[4:8], recordCRC(seq, buf[recHeaderLen:]))
	return buf
}

// decodeItems converts a validated payload back into minibatch items.
func decodeItems(payload []byte) []uint64 {
	items := make([]uint64, len(payload)/8)
	for i := range items {
		items[i] = binary.LittleEndian.Uint64(payload[8*i:])
	}
	return items
}

// tornError explains why a scan stopped before the end of a segment. At
// the tail of the final segment it marks a tolerable torn write; anywhere
// else it is promoted to ErrCorrupt.
type tornError struct {
	offset int64
	reason string
}

func (e *tornError) Error() string {
	return fmt.Sprintf("invalid record at offset %d: %s", e.offset, e.reason)
}

// scanSegment reads a segment of the given total size, calling fn for
// every valid record. firstSeq is the sequence the filename promises for
// the first record. It returns the number of bytes holding valid content
// (magic header included), the last valid sequence (0 if none), and a
// *tornError describing the first invalid byte, nil if the segment is
// clean to the end. Errors from fn abort the scan and are returned as-is.
func scanSegment(r io.Reader, size int64, firstSeq uint64, fn func(seq uint64, items []uint64) error) (valid int64, lastSeq uint64, scanErr error) {
	var magic [len(segMagic)]byte
	if size < int64(len(segMagic)) {
		return 0, 0, &tornError{0, "short magic header"}
	}
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return 0, 0, &tornError{0, "unreadable magic header"}
	}
	if string(magic[:]) != segMagic {
		return 0, 0, &tornError{0, "bad magic header"}
	}
	valid = int64(len(segMagic))
	seq := firstSeq
	var header [recHeaderLen]byte
	for {
		remaining := size - valid
		if remaining == 0 {
			return valid, lastSeq, nil
		}
		if remaining < recHeaderLen {
			return valid, lastSeq, &tornError{valid, "short record header"}
		}
		if _, err := io.ReadFull(r, header[:]); err != nil {
			return valid, lastSeq, &tornError{valid, fmt.Sprintf("reading record header: %v", err)}
		}
		n := int64(binary.LittleEndian.Uint32(header[0:4]))
		wantCRC := binary.LittleEndian.Uint32(header[4:8])
		gotSeq := binary.LittleEndian.Uint64(header[8:16])
		switch {
		case n > maxRecordBytes:
			return valid, lastSeq, &tornError{valid, fmt.Sprintf("record length %d exceeds limit", n)}
		case n%8 != 0:
			return valid, lastSeq, &tornError{valid, fmt.Sprintf("record length %d not a multiple of 8", n)}
		case n > remaining-recHeaderLen:
			return valid, lastSeq, &tornError{valid, fmt.Sprintf("record length %d exceeds remaining %d bytes", n, remaining-recHeaderLen)}
		case gotSeq != seq:
			return valid, lastSeq, &tornError{valid, fmt.Sprintf("sequence %d, want %d", gotSeq, seq)}
		}
		// n is bounded by the segment's actual remaining bytes, so this
		// allocation cannot exceed the input.
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return valid, lastSeq, &tornError{valid, fmt.Sprintf("reading record payload: %v", err)}
		}
		if recordCRC(seq, payload) != wantCRC {
			return valid, lastSeq, &tornError{valid, "payload CRC mismatch"}
		}
		if fn != nil {
			if err := fn(seq, decodeItems(payload)); err != nil {
				return valid, lastSeq, err
			}
		}
		valid += recHeaderLen + n
		lastSeq = seq
		seq++
	}
}

// isTorn reports whether err is a scan-stopping framing error (as opposed
// to an error returned by the scan callback).
func isTorn(err error) bool {
	var te *tornError
	return errors.As(err, &te)
}
