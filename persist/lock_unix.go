//go:build unix

package persist

// Single-writer guard: an advisory flock on a LOCK file. The kernel
// releases it when the process dies — including SIGKILL — so a crashed
// server never wedges its data directory.

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

func lockDir(dir string) (func(), error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: opening lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %s", ErrLocked, dir)
	}
	return func() {
		_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
