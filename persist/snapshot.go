package persist

// The snapshot store. A snapshot file holds one checkpoint envelope —
// the library's existing kind-tagged MarshalBinary output, reused
// verbatim as the payload — framed with the WAL sequence it covers and a
// CRC. Snapshots are written atomically (tmp + fsync + rename +
// directory fsync) and named by their sequence, so the directory listing
// alone orders them and recovery can fall back to the newest valid file
// when the manifest is damaged.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

const (
	snapMagic  = "AGGSNAP1"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	// snapHeaderLen frames magic + u64 seq + u32 length + u32 CRC.
	snapHeaderLen = len(snapMagic) + 16
)

// snapshotName formats the filename for a snapshot covering WAL sequence
// seq.
func snapshotName(seq uint64) string {
	return fmt.Sprintf("%s%020d%s", snapPrefix, seq, snapSuffix)
}

// parseSnapshotName extracts the covered sequence from a snapshot
// filename.
func parseSnapshotName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	digits := name[len(snapPrefix) : len(name)-len(snapSuffix)]
	if len(digits) != 20 {
		return 0, false
	}
	seq, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// encodeSnapshot frames a checkpoint envelope for disk.
func encodeSnapshot(seq uint64, payload []byte) []byte {
	out := make([]byte, snapHeaderLen+len(payload))
	copy(out, snapMagic)
	binary.LittleEndian.PutUint64(out[len(snapMagic):], seq)
	binary.LittleEndian.PutUint32(out[len(snapMagic)+8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[len(snapMagic)+12:], crc32.Checksum(payload, crcTable))
	copy(out[snapHeaderLen:], payload)
	return out
}

// decodeSnapshot validates a snapshot file's contents and returns the
// covered sequence and the checkpoint envelope. Malformed input yields an
// error — never a panic, never an allocation beyond the input's length.
func decodeSnapshot(data []byte) (seq uint64, payload []byte, err error) {
	if len(data) < snapHeaderLen {
		return 0, nil, fmt.Errorf("%w: snapshot too short (%d bytes)", ErrCorrupt, len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return 0, nil, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	seq = binary.LittleEndian.Uint64(data[len(snapMagic):])
	n := int(binary.LittleEndian.Uint32(data[len(snapMagic)+8:]))
	wantCRC := binary.LittleEndian.Uint32(data[len(snapMagic)+12:])
	if n != len(data)-snapHeaderLen {
		return 0, nil, fmt.Errorf("%w: snapshot payload length %d, have %d bytes", ErrCorrupt, n, len(data)-snapHeaderLen)
	}
	payload = data[snapHeaderLen:]
	if crc32.Checksum(payload, crcTable) != wantCRC {
		return 0, nil, fmt.Errorf("%w: snapshot CRC mismatch", ErrCorrupt)
	}
	return seq, payload, nil
}

// readSnapshot loads and validates one snapshot file, checking that its
// framed sequence matches its filename.
func readSnapshot(dir, name string) (uint64, []byte, error) {
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return 0, nil, err
	}
	seq, payload, err := decodeSnapshot(data)
	if err != nil {
		return 0, nil, fmt.Errorf("snapshot %s: %w", name, err)
	}
	if nameSeq, ok := parseSnapshotName(name); !ok || nameSeq != seq {
		return 0, nil, fmt.Errorf("%w: snapshot %s frames seq %d", ErrCorrupt, name, seq)
	}
	return seq, payload, nil
}

// writeSnapshotFile atomically writes a snapshot covering seq and returns
// its name.
func writeSnapshotFile(dir string, seq uint64, payload []byte) (string, error) {
	name := snapshotName(seq)
	if err := writeFileAtomic(filepath.Join(dir, name), encodeSnapshot(seq, payload)); err != nil {
		return "", err
	}
	return name, nil
}
