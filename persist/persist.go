// Package persist is the durability subsystem behind the serving layer:
// a segmented, CRC-framed write-ahead log of ingest minibatches plus an
// atomic snapshot store, tied together by a manifest that records the
// latest valid snapshot and the WAL position it covers.
//
// The design follows the discretized-stream fault-tolerance model the
// library's checkpointing already implements [ZDL+13]: state is captured
// at minibatch boundaries, so the minibatch — the paper's ProcessBatch
// unit — is also the WAL record granularity. Logging whole minibatches
// keeps replay deterministic (the restored aggregates see exactly the
// batch boundaries the live ones did, which matters for Misra-Gries-style
// summaries) and amortized (one frame, one write, at most one fsync per
// batch — the same batching argument TangwongsanTW14 makes for the
// parallel update algorithms themselves).
//
// On disk a data directory holds:
//
//	MANIFEST                 latest valid snapshot name + WAL seq (atomic)
//	snap-<seq>.snap          checkpoint envelope covering WAL records <= seq
//	wal-<seq>.log            segment whose first record has sequence <seq>
//	LOCK                     advisory flock guarding single-writer access
//
// Recovery (Open + Replay) loads the newest valid snapshot and replays
// the WAL tail: a torn final record — a crash mid-append — is tolerated
// and truncated, while a CRC mismatch anywhere else (or in a sealed
// segment) is rejected as real corruption. A background snapshotter
// (driven by the Ingestor, see SnapshotTrigger) captures a new snapshot
// once enough WAL has accumulated and deletes the sealed segments behind
// it, bounding both recovery time and disk use.
package persist

import (
	"errors"
	"fmt"
	"time"

	"repro/metrics"
)

// ErrCorrupt reports unrecoverable on-disk corruption: a CRC or framing
// failure anywhere other than the tail of the final WAL segment.
var ErrCorrupt = errors.New("persist: corrupt data directory")

// ErrClosed reports an operation on a closed Store.
var ErrClosed = errors.New("persist: store closed")

// ErrLocked reports a data directory already opened by another process.
var ErrLocked = errors.New("persist: data directory locked by another process")

// Fsync selects when appended WAL records are forced to stable storage.
type Fsync int

const (
	// FsyncAlways syncs after every appended minibatch: an applied
	// batch is durable before its effects are queryable. One fsync per
	// minibatch, amortized over the batch's items.
	FsyncAlways Fsync = iota
	// FsyncInterval syncs on a timer (Options.FsyncInterval, default
	// 100ms): a crash loses at most the last interval of applied
	// batches.
	FsyncInterval
	// FsyncNever leaves syncing to the OS writeback (snapshots are
	// still always fsynced): fastest, weakest.
	FsyncNever
)

// String returns the flag-friendly name ("always", "interval", "never").
func (f Fsync) String() string {
	switch f {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("Fsync(%d)", int(f))
}

// ParseFsync maps "always", "interval", or "never" to the policy.
func ParseFsync(s string) (Fsync, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("persist: fsync policy %q (want always, interval, or never)", s)
}

// Option defaults, used when the corresponding Options field is zero.
const (
	DefaultFsyncInterval   = 100 * time.Millisecond
	DefaultSegmentBytes    = 64 << 20
	DefaultSnapshotBytes   = 64 << 20
	DefaultSnapshotRecords = 4096
)

// Options configures Open. The zero value is valid: FsyncAlways with all
// thresholds at their defaults.
type Options struct {
	// Fsync is the WAL sync policy (default FsyncAlways).
	Fsync Fsync
	// FsyncInterval is the timer period under FsyncInterval.
	FsyncInterval time.Duration
	// SegmentBytes rolls the active segment once it exceeds this size.
	SegmentBytes int64
	// SnapshotBytes and SnapshotRecords trigger the snapshotter once
	// that much WAL (bytes appended or records appended, whichever
	// first) has accumulated since the last snapshot.
	SnapshotBytes   int64
	SnapshotRecords int64
	// Metrics is the registry the store publishes its WAL, snapshot,
	// and recovery instruments to; nil means a private registry. The
	// Stats() counters read from the same instruments, so the JSON
	// stats endpoint and /metrics cannot diverge.
	Metrics *metrics.Registry
}

// withDefaults fills zero fields and validates the rest.
func (o Options) withDefaults() (Options, error) {
	if o.Fsync != FsyncAlways && o.Fsync != FsyncInterval && o.Fsync != FsyncNever {
		return o, fmt.Errorf("persist: invalid fsync policy %d", int(o.Fsync))
	}
	def := func(v *int64, d int64, name string) error {
		if *v < 0 {
			return fmt.Errorf("persist: negative %s %d", name, *v)
		}
		if *v == 0 {
			*v = d
		}
		return nil
	}
	if o.FsyncInterval < 0 {
		return o, fmt.Errorf("persist: negative fsync interval %v", o.FsyncInterval)
	}
	if o.FsyncInterval == 0 {
		o.FsyncInterval = DefaultFsyncInterval
	}
	if err := def(&o.SegmentBytes, DefaultSegmentBytes, "segment size"); err != nil {
		return o, err
	}
	if err := def(&o.SnapshotBytes, DefaultSnapshotBytes, "snapshot byte threshold"); err != nil {
		return o, err
	}
	if err := def(&o.SnapshotRecords, DefaultSnapshotRecords, "snapshot record threshold"); err != nil {
		return o, err
	}
	return o, nil
}
