package persist

import (
	"fmt"
	"testing"
)

// BenchmarkAppend prices one WAL append per fsync policy at a realistic
// minibatch size; b.N batches of 8192 items, reported per item.
func BenchmarkAppend(b *testing.B) {
	batch := make([]uint64, 8192)
	for i := range batch {
		batch[i] = uint64(i)
	}
	for _, policy := range []Fsync{FsyncNever, FsyncInterval, FsyncAlways} {
		b.Run(fmt.Sprintf("fsync=%s", policy), func(b *testing.B) {
			st, err := Open(b.TempDir(), Options{Fsync: policy, SnapshotRecords: 1 << 40})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			b.SetBytes(int64(8 * len(batch)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := st.Append(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSegmentScan prices recovery's replay scan.
func BenchmarkSegmentScan(b *testing.B) {
	dir := b.TempDir()
	st, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]uint64, 1024)
	for i := 0; i < 256; i++ {
		if _, err := st.Append(batch); err != nil {
			b.Fatal(err)
		}
	}
	st.Close()
	b.SetBytes(int64(256 * 1024 * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		if err := st.Replay(func(items []uint64) error { n += len(items); return nil }); err != nil {
			b.Fatal(err)
		}
		st.Close()
		if n != 256*1024 {
			b.Fatalf("replayed %d items", n)
		}
	}
}
