//go:build !unix

package persist

// Platforms without flock get no single-writer guard; the manifest and
// segment protocol still detect (rather than silently absorb) most
// interleaved-writer damage.

func lockDir(string) (func(), error) {
	return func() {}, nil
}
