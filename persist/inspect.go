package persist

// Read-only introspection of a data directory, behind `streamtool
// inspect <dir>`: the manifest, every snapshot, every segment's record
// count and sequence span, the replay span a recovery would perform, and
// any CRC damage — without taking the directory lock, so it works on a
// live server's directory.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SegmentReport describes one WAL segment on disk.
type SegmentReport struct {
	Name     string `json:"name"`
	FirstSeq uint64 `json:"first_seq"`
	LastSeq  uint64 `json:"last_seq"` // 0 when the segment holds no valid record
	Records  int64  `json:"records"`
	Bytes    int64  `json:"bytes"`       // file size
	ValidTo  int64  `json:"valid_bytes"` // prefix that scans clean
	Corrupt  string `json:"corrupt,omitempty"`
}

// SnapshotReport describes one snapshot file on disk.
type SnapshotReport struct {
	Name    string `json:"name"`
	Seq     uint64 `json:"seq"`
	Bytes   int64  `json:"bytes"`
	Valid   bool   `json:"valid"`
	Problem string `json:"problem,omitempty"`
}

// Report is everything Inspect learns about a data directory.
type Report struct {
	Dir              string           `json:"dir"`
	ManifestPresent  bool             `json:"manifest_present"`
	ManifestValid    bool             `json:"manifest_valid"`
	ManifestProblem  string           `json:"manifest_problem,omitempty"`
	ManifestSnapshot string           `json:"manifest_snapshot,omitempty"`
	ManifestSeq      uint64           `json:"manifest_seq"`
	Snapshots        []SnapshotReport `json:"snapshots"`
	Segments         []SegmentReport  `json:"segments"`
	RecoverySeq      uint64           `json:"recovery_snapshot_seq"` // snapshot recovery would load
	ReplayFrom       uint64           `json:"replay_from"`           // first record replay would apply
	ReplayTo         uint64           `json:"replay_to"`             // last record replay would apply (0 = none)
	ReplayRecords    int64            `json:"replay_records"`
}

// Inspect scans dir without modifying it and reports what recovery would
// see. Unlike Open it keeps going past damage, flagging it per file.
func Inspect(dir string) (*Report, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	r := &Report{Dir: dir}

	m, present, merr := readManifest(dir)
	r.ManifestPresent = present
	switch {
	case merr != nil:
		r.ManifestProblem = merr.Error()
	case present:
		r.ManifestValid = true
		r.ManifestSnapshot = m.Snapshot
		r.ManifestSeq = m.Seq
	}

	var segNames, snapNames []string
	for _, e := range entries {
		name := e.Name()
		if strings.Contains(name, ".tmp-") {
			continue
		}
		switch {
		case strings.HasPrefix(name, walPrefix) && strings.HasSuffix(name, walSuffix):
			segNames = append(segNames, name)
		case strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix):
			snapNames = append(snapNames, name)
		}
	}

	sort.Strings(snapNames)
	var newestValid uint64
	manifestTargetValid := false
	for _, name := range snapNames {
		sr := SnapshotReport{Name: name}
		if fi, err := os.Stat(filepath.Join(dir, name)); err == nil {
			sr.Bytes = fi.Size()
		}
		seq, _, err := readSnapshot(dir, name)
		if err != nil {
			sr.Problem = err.Error()
		} else {
			sr.Seq, sr.Valid = seq, true
			if seq > newestValid {
				newestValid = seq
			}
			if r.ManifestValid && name == r.ManifestSnapshot {
				manifestTargetValid = true
			}
		}
		r.Snapshots = append(r.Snapshots, sr)
	}
	// Mirror Open's choice: the manifest's snapshot when it checks out,
	// else the newest file that does.
	if manifestTargetValid {
		r.RecoverySeq = r.ManifestSeq
	} else {
		r.RecoverySeq = newestValid
	}

	type seg struct {
		name     string
		firstSeq uint64
	}
	var segs []seg
	for _, name := range segNames {
		if firstSeq, ok := parseSegmentName(name); ok {
			segs = append(segs, seg{name, firstSeq})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	for i, sg := range segs {
		final := i == len(segs)-1
		sr := SegmentReport{Name: sg.name, FirstSeq: sg.firstSeq}
		path := filepath.Join(dir, sg.name)
		f, err := os.Open(path)
		if err != nil {
			sr.Corrupt = err.Error()
			r.Segments = append(r.Segments, sr)
			continue
		}
		fi, err := f.Stat()
		if err == nil {
			sr.Bytes = fi.Size()
			valid, lastSeq, scanErr := scanSegment(f, fi.Size(), sg.firstSeq, nil)
			sr.ValidTo, sr.LastSeq = valid, lastSeq
			if lastSeq != 0 {
				sr.Records = int64(lastSeq - sg.firstSeq + 1)
			}
			if scanErr != nil && !(final && isTorn(scanErr)) {
				sr.Corrupt = scanErr.Error()
			} else if scanErr != nil {
				sr.Corrupt = fmt.Sprintf("torn tail (tolerated): %v", scanErr)
			}
		} else {
			sr.Corrupt = err.Error()
		}
		f.Close()
		r.Segments = append(r.Segments, sr)

		if sr.LastSeq > r.RecoverySeq {
			lo := sg.firstSeq
			if lo <= r.RecoverySeq {
				lo = r.RecoverySeq + 1
			}
			if r.ReplayFrom == 0 {
				r.ReplayFrom = lo
			}
			r.ReplayTo = sr.LastSeq
			r.ReplayRecords += int64(sr.LastSeq - lo + 1)
		}
	}
	return r, nil
}
