package streamagg

import (
	"repro/internal/bcount"
	"repro/internal/css"
)

// BasicCounter maintains an ε-approximate count of the 1s within a
// count-based sliding window of a bit stream (Theorem 4.1). Space is
// O(ε⁻¹ log n); ingesting a minibatch of µ bits costs O(ε⁻¹ log n + µ)
// work with polylog depth.
type BasicCounter struct {
	gate
	impl *bcount.Counter
}

// NewBasicCounter creates a counter for a window of the last n bits
// (n >= 1) with relative error epsilon in (0, 1].
func NewBasicCounter(n int64, epsilon float64) (*BasicCounter, error) {
	a, err := New(KindBasicCounter, WithWindow(n), WithEpsilon(epsilon))
	if err != nil {
		return nil, err
	}
	return a.(*BasicCounter), nil
}

// Kind returns KindBasicCounter.
func (c *BasicCounter) Kind() Kind { return KindBasicCounter }

// ProcessBits ingests a minibatch of bits.
func (c *BasicCounter) ProcessBits(bits []bool) {
	seg := css.FromBools(bits) // parallel CSS construction (Lemma 2.1)
	c.ingest(len(bits), func() { c.impl.Advance(seg) })
}

// ProcessBatch ingests a minibatch of items, interpreting each nonzero
// item as a 1-bit — the Aggregate-interface adapter that lets a
// BasicCounter ride in a Pipeline next to item-stream aggregates.
func (c *BasicCounter) ProcessBatch(items []uint64) error {
	seg := css.FromFunc(len(items), func(i int) bool { return items[i] != 0 })
	c.ingest(len(items), func() { c.impl.Advance(seg) })
	return nil
}

// Estimate returns the approximate number of 1s in the window:
// true <= Estimate() <= (1+ε)·true.
func (c *BasicCounter) Estimate() (est int64) {
	c.read(func() { est = c.impl.Estimate() })
	return est
}

// WindowSize returns n.
func (c *BasicCounter) WindowSize() (n int64) {
	c.read(func() { n = c.impl.N() })
	return n
}

// Epsilon returns the configured relative error.
func (c *BasicCounter) Epsilon() (eps float64) {
	c.read(func() { eps = c.impl.Epsilon() })
	return eps
}

// SpaceWords reports the memory footprint in 64-bit words.
func (c *BasicCounter) SpaceWords() (w int) {
	c.read(func() { w = c.impl.SpaceWords() })
	return w
}
