package streamagg

import (
	"fmt"
	"sync"

	"repro/internal/bcount"
	"repro/internal/css"
)

// BasicCounter maintains an ε-approximate count of the 1s within a
// count-based sliding window of a bit stream (Theorem 4.1). Space is
// O(ε⁻¹ log n); ingesting a minibatch of µ bits costs O(ε⁻¹ log n + µ)
// work with polylog depth.
type BasicCounter struct {
	mu   sync.RWMutex
	impl *bcount.Counter
}

// NewBasicCounter creates a counter for a window of the last n bits
// (n >= 1) with relative error epsilon in (0, 1].
func NewBasicCounter(n int64, epsilon float64) (*BasicCounter, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: window size %d", ErrBadParam, n)
	}
	if epsilon <= 0 || epsilon > 1 {
		return nil, fmt.Errorf("%w: epsilon %v", ErrBadParam, epsilon)
	}
	return &BasicCounter{impl: bcount.New(n, epsilon)}, nil
}

// ProcessBits ingests a minibatch of bits.
func (c *BasicCounter) ProcessBits(bits []bool) {
	seg := css.FromBools(bits) // parallel CSS construction (Lemma 2.1)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.impl.Advance(seg)
}

// Estimate returns the approximate number of 1s in the window:
// true <= Estimate() <= (1+ε)·true.
func (c *BasicCounter) Estimate() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.impl.Estimate()
}

// WindowSize returns n.
func (c *BasicCounter) WindowSize() int64 { return c.impl.N() }

// Epsilon returns the configured relative error.
func (c *BasicCounter) Epsilon() float64 { return c.impl.Epsilon() }

// SpaceWords reports the memory footprint in 64-bit words.
func (c *BasicCounter) SpaceWords() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.impl.SpaceWords()
}
