package streamagg

import (
	"fmt"
	"sync"

	"repro/internal/swfreq"
)

// SlidingVariant selects the sliding-window frequency algorithm.
type SlidingVariant = swfreq.Variant

// Sliding-window algorithm variants (Section 5.3 of the paper).
const (
	// VariantBasic is the direct SBBC-per-item algorithm (Theorem 5.5);
	// space grows with the number of distinct live items.
	VariantBasic = swfreq.Basic
	// VariantSpaceEfficient prunes Misra-Gries-style to O(1/ε) counters
	// (Algorithm 2, Theorem 5.8).
	VariantSpaceEfficient = swfreq.SpaceEfficient
	// VariantWorkEfficient additionally predicts pruning survivors before
	// building per-item streams, reaching O(ε⁻¹ + µ) work (Theorem 5.4).
	VariantWorkEfficient = swfreq.WorkEfficient
)

// SlidingFreqEstimator tracks approximate item frequencies over a
// count-based sliding window of the last n items. Estimates satisfy
// f_e - εn <= Estimate(e) <= f_e where f_e is the item's frequency in
// the window.
type SlidingFreqEstimator struct {
	mu   sync.RWMutex
	impl *swfreq.Estimator
}

// NewSlidingFreqEstimator creates an estimator for window size n >= 1,
// error epsilon in (0, 1], and the given algorithm variant
// (VariantWorkEfficient is the paper's headline algorithm).
func NewSlidingFreqEstimator(n int64, epsilon float64, v SlidingVariant) (*SlidingFreqEstimator, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: window size %d", ErrBadParam, n)
	}
	if epsilon <= 0 || epsilon > 1 {
		return nil, fmt.Errorf("%w: epsilon %v", ErrBadParam, epsilon)
	}
	if v != VariantBasic && v != VariantSpaceEfficient && v != VariantWorkEfficient {
		return nil, fmt.Errorf("%w: variant %v", ErrBadParam, v)
	}
	return &SlidingFreqEstimator{impl: swfreq.New(n, epsilon, v)}, nil
}

// ProcessBatch ingests a minibatch of items.
func (s *SlidingFreqEstimator) ProcessBatch(items []uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.impl.ProcessBatch(items)
}

// Estimate returns the estimate of item's frequency within the window.
func (s *SlidingFreqEstimator) Estimate(item uint64) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.impl.Estimate(item)
}

// HeavyHitters returns items whose estimate reaches (phi-ε)·W, W being
// the current window length: all items with window frequency >= phi·W
// are included; none below (phi-2ε)·W can appear.
func (s *SlidingFreqEstimator) HeavyHitters(phi float64) []ItemCount {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []ItemCount
	for _, item := range s.impl.HeavyHitters(phi) {
		out = append(out, ItemCount{Item: item, Count: s.impl.Estimate(item)})
	}
	sortByCountDesc(out)
	return out
}

// TopK returns the k tracked items with the largest estimates within the
// window.
func (s *SlidingFreqEstimator) TopK(k int) []ItemCount {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ItemCount, 0, s.impl.NumCounters())
	for _, item := range s.impl.TrackedItemIDs() {
		if est := s.impl.Estimate(item); est > 0 {
			out = append(out, ItemCount{Item: item, Count: est})
		}
	}
	sortByCountDesc(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// WindowSize returns n.
func (s *SlidingFreqEstimator) WindowSize() int64 { return s.impl.N() }

// Variant returns the configured algorithm variant.
func (s *SlidingFreqEstimator) Variant() SlidingVariant { return s.impl.VariantKind() }

// StreamLen returns the number of items observed so far.
func (s *SlidingFreqEstimator) StreamLen() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.impl.StreamLen()
}

// TrackedItems returns the number of live per-item counters (bounded by
// O(1/ε) for the space- and work-efficient variants).
func (s *SlidingFreqEstimator) TrackedItems() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.impl.NumCounters()
}

// SpaceWords reports the memory footprint in 64-bit words.
func (s *SlidingFreqEstimator) SpaceWords() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.impl.SpaceWords()
}
