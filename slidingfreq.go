package streamagg

import "repro/internal/swfreq"

// SlidingVariant selects the sliding-window frequency algorithm.
type SlidingVariant = swfreq.Variant

// Sliding-window algorithm variants (Section 5.3 of the paper).
const (
	// VariantBasic is the direct SBBC-per-item algorithm (Theorem 5.5);
	// space grows with the number of distinct live items.
	VariantBasic = swfreq.Basic
	// VariantSpaceEfficient prunes Misra-Gries-style to O(1/ε) counters
	// (Algorithm 2, Theorem 5.8).
	VariantSpaceEfficient = swfreq.SpaceEfficient
	// VariantWorkEfficient additionally predicts pruning survivors before
	// building per-item streams, reaching O(ε⁻¹ + µ) work (Theorem 5.4).
	VariantWorkEfficient = swfreq.WorkEfficient
)

// SlidingFreqEstimator tracks approximate item frequencies over a
// count-based sliding window of the last n items. Estimates satisfy
// f_e - εn <= Estimate(e) <= f_e where f_e is the item's frequency in
// the window.
type SlidingFreqEstimator struct {
	gate
	impl *swfreq.Estimator
}

// NewSlidingFreqEstimator creates an estimator for window size n >= 1,
// error epsilon in (0, 1], and the given algorithm variant
// (VariantWorkEfficient is the paper's headline algorithm).
func NewSlidingFreqEstimator(n int64, epsilon float64, v SlidingVariant) (*SlidingFreqEstimator, error) {
	a, err := New(KindSlidingFreq, WithWindow(n), WithEpsilon(epsilon), WithVariant(v))
	if err != nil {
		return nil, err
	}
	return a.(*SlidingFreqEstimator), nil
}

// Kind returns KindSlidingFreq.
func (s *SlidingFreqEstimator) Kind() Kind { return KindSlidingFreq }

// ProcessBatch ingests a minibatch of items. It never fails; the error
// is always nil (Aggregate interface).
func (s *SlidingFreqEstimator) ProcessBatch(items []uint64) error {
	s.ingest(len(items), func() { s.impl.ProcessBatch(items) })
	return nil
}

// Estimate returns the estimate of item's frequency within the window.
func (s *SlidingFreqEstimator) Estimate(item uint64) (est int64) {
	s.read(func() { est = s.impl.Estimate(item) })
	return est
}

// HeavyHitters returns items whose estimate reaches (phi-ε)·W, W being
// the current window length: all items with window frequency >= phi·W
// are included; none below (phi-2ε)·W can appear.
func (s *SlidingFreqEstimator) HeavyHitters(phi float64) (out []ItemCount) {
	s.read(func() {
		for _, item := range s.impl.HeavyHitters(phi) {
			out = append(out, ItemCount{Item: item, Count: s.impl.Estimate(item)})
		}
	})
	sortByCountDesc(out)
	return out
}

// TopK returns the k tracked items with the largest estimates within the
// window.
func (s *SlidingFreqEstimator) TopK(k int) (out []ItemCount) {
	s.read(func() {
		out = make([]ItemCount, 0, s.impl.NumCounters())
		for _, item := range s.impl.TrackedItemIDs() {
			if est := s.impl.Estimate(item); est > 0 {
				out = append(out, ItemCount{Item: item, Count: est})
			}
		}
	})
	sortByCountDesc(out)
	if k < 0 {
		k = 0
	}
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// WindowSize returns n.
func (s *SlidingFreqEstimator) WindowSize() (n int64) {
	s.read(func() { n = s.impl.N() })
	return n
}

// Variant returns the configured algorithm variant.
func (s *SlidingFreqEstimator) Variant() (v SlidingVariant) {
	s.read(func() { v = s.impl.VariantKind() })
	return v
}

// TrackedItems returns the number of live per-item counters (bounded by
// O(1/ε) for the space- and work-efficient variants).
func (s *SlidingFreqEstimator) TrackedItems() (n int) {
	s.read(func() { n = s.impl.NumCounters() })
	return n
}

// SpaceWords reports the memory footprint in 64-bit words.
func (s *SlidingFreqEstimator) SpaceWords() (w int) {
	s.read(func() { w = s.impl.SpaceWords() })
	return w
}
