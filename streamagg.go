// Package streamagg implements parallel streaming frequency-based
// aggregates — the algorithms of Tangwongsan, Tirthapura and Wu,
// "Parallel Streaming Frequency-Based Aggregates" (SPAA 2014) — for both
// the infinite-window and the count-based sliding-window settings.
//
// The library follows the paper's discretized-stream model: the input
// arrives as minibatches; each minibatch is ingested with internally
// parallel, linear-work, polylog-depth algorithms operating on a single
// shared data structure (no per-processor replicas, no merge step), and
// queries are answered at minibatch boundaries.
//
// Aggregates:
//
//   - BasicCounter — ε-approximate count of 1s over a sliding window
//     (Theorem 4.1), built on space-bounded block counters (Section 3).
//   - WindowSum — ε-approximate sliding-window sum of bounded
//     non-negative integers (Theorem 4.2).
//   - FreqEstimator — infinite-window frequency estimation and heavy
//     hitters with the parallel Misra-Gries summary (Theorem 5.2).
//   - SlidingFreqEstimator — sliding-window frequency estimation and
//     heavy hitters in three variants: Basic (Theorem 5.5),
//     SpaceEfficient (Theorem 5.8), WorkEfficient (Theorem 5.4).
//   - CountMin / CountMinRange — the parallel count-min sketch
//     (Theorem 6.1) with point, range and quantile queries.
//   - CountSketch — the unbiased turnstile sketch of [CCFC02].
//
// Every aggregate satisfies the Aggregate interface (plus narrower query
// interfaces such as PointEstimator and HeavyHitterSource) and is built
// with the functional-options constructor New(kind, opts...); Pipeline
// fans one minibatch stream out to many named aggregates concurrently
// and checkpoints them atomically. The mergeable kinds (FreqEstimator,
// CountMin, CountMinRange, CountSketch) additionally implement Merger
// and can be hash-partitioned across independent shards with
// WithShards / NewSharded — the Sharded wrapper ingests shards
// concurrently and answers queries per-shard or through an on-demand
// merged snapshot.
//
// For serving, Ingestor turns an unbounded stream of single updates
// into well-sized minibatches behind an asynchronous bounded queue with
// selectable backpressure (WithBatchSize, WithMaxLatency, WithQueueCap,
// WithBackpressure), and the repro/server package exposes a Pipeline
// over HTTP/JSON with atomic checkpoint/restore.
//
// Concurrency model. Minibatch ingestion is internally parallel and
// lock-free (fork-join phases with disjoint writes). Externally, each
// structure serializes updates against queries with a reader-writer
// gate, so any number of concurrent queries may interleave with updates,
// matching the paper's "updates and queries can be interleaved" model.
//
// Items are uint64 identifiers; HashString adapts string keys.
package streamagg

import (
	"errors"
	"hash/fnv"

	"repro/internal/parallel"
)

// ErrBadParam reports an invalid constructor parameter.
var ErrBadParam = errors.New("streamagg: invalid parameter")

// ErrIncompatibleMerge reports a Merge between aggregates that cannot be
// combined: different kinds, different dimensions/parameters, different
// hash seeds, or an aggregate merged with itself.
var ErrIncompatibleMerge = errors.New("streamagg: incompatible merge")

// SetParallelism overrides the number of workers used by all parallel
// primitives in this library (default: GOMAXPROCS). p <= 0 restores the
// default. It returns the previous setting. Intended for benchmarking
// speedup curves; changing it mid-ingestion yields an unspecified mix of
// parallelism but never affects correctness.
func SetParallelism(p int) int { return parallel.SetWorkers(p) }

// Parallelism reports the current worker count.
func Parallelism() int { return parallel.Workers() }

// HashString maps a string key to a uint64 item identifier (FNV-1a).
func HashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
