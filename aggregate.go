package streamagg

import "encoding"

// Kind identifies one of the library's aggregate algorithms. The string
// values double as the checkpoint envelope tags, so a Kind mismatch is
// detected when restoring.
type Kind string

// The seven public aggregate kinds.
const (
	// KindBasicCounter — ε-approximate count of 1s over a sliding
	// window (Theorem 4.1).
	KindBasicCounter Kind = "basic-counter"
	// KindWindowSum — ε-approximate sliding-window sum of bounded
	// non-negative integers (Theorem 4.2).
	KindWindowSum Kind = "window-sum"
	// KindFreq — infinite-window frequency estimation with the parallel
	// Misra-Gries summary (Theorem 5.2).
	KindFreq Kind = "freq-estimator"
	// KindSlidingFreq — sliding-window frequency estimation
	// (Theorems 5.4/5.5/5.8, selected by WithVariant).
	KindSlidingFreq Kind = "sliding-freq-estimator"
	// KindCountMin — the parallel count-min sketch (Theorem 6.1).
	KindCountMin Kind = "count-min"
	// KindCountMinRange — dyadic count-min stack for range counts and
	// quantiles.
	KindCountMinRange Kind = "count-min-range"
	// KindCountSketch — the Count-Sketch of [CCFC02], parallel-ingested
	// like CountMin.
	KindCountSketch Kind = "count-sketch"
)

// Aggregate is the uniform surface every aggregate in this library
// presents, following the paper's discretized-stream model: ingest a
// minibatch with a parallel linear-work algorithm, answer queries at
// batch boundaries, checkpoint between batches.
//
// ProcessBatch ingests one minibatch of items. For item-stream
// aggregates the elements are item identifiers; BasicCounter interprets
// each nonzero element as a 1-bit, and WindowSum interprets elements as
// values (rejecting any value above its configured bound). Only
// WindowSum can return a non-nil error.
//
// StreamLen reports the number of stream elements ingested through
// ProcessBatch (or ProcessBits) so far; it survives checkpoint/restore.
// SpaceWords reports the memory footprint in 64-bit words. MarshalBinary
// called between two batches captures the full state; UnmarshalBinary
// (valid on a zero value) restores an aggregate that continues exactly
// where the original left off.
type Aggregate interface {
	Kind() Kind
	ProcessBatch(items []uint64) error
	StreamLen() int64
	SpaceWords() int
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}

// PointEstimator answers per-item frequency queries (FreqEstimator,
// SlidingFreqEstimator, CountMin, CountSketch).
type PointEstimator interface {
	Estimate(item uint64) int64
}

// ScalarEstimator answers single-value window queries (BasicCounter,
// WindowSum).
type ScalarEstimator interface {
	Estimate() int64
}

// HeavyHitterSource enumerates frequent items (FreqEstimator,
// SlidingFreqEstimator).
type HeavyHitterSource interface {
	HeavyHitters(phi float64) []ItemCount
	TopK(k int) []ItemCount
}

// RangeEstimator answers range-count and quantile queries
// (CountMinRange).
type RangeEstimator interface {
	RangeCount(lo, hi uint64) int64
	Quantile(q float64) uint64
}

// Compile-time conformance: every public aggregate is an Aggregate.
var (
	_ Aggregate = (*BasicCounter)(nil)
	_ Aggregate = (*WindowSum)(nil)
	_ Aggregate = (*FreqEstimator)(nil)
	_ Aggregate = (*SlidingFreqEstimator)(nil)
	_ Aggregate = (*CountMin)(nil)
	_ Aggregate = (*CountMinRange)(nil)
	_ Aggregate = (*CountSketch)(nil)
)

// Compile-time conformance to the narrower query interfaces.
var (
	_ ScalarEstimator   = (*BasicCounter)(nil)
	_ ScalarEstimator   = (*WindowSum)(nil)
	_ PointEstimator    = (*FreqEstimator)(nil)
	_ PointEstimator    = (*SlidingFreqEstimator)(nil)
	_ PointEstimator    = (*CountMin)(nil)
	_ PointEstimator    = (*CountSketch)(nil)
	_ HeavyHitterSource = (*FreqEstimator)(nil)
	_ HeavyHitterSource = (*SlidingFreqEstimator)(nil)
	_ RangeEstimator    = (*CountMinRange)(nil)
)
