package streamagg

import "encoding"

// Kind identifies one of the library's aggregate algorithms. The string
// values double as the checkpoint envelope tags, so a Kind mismatch is
// detected when restoring.
type Kind string

// The seven public aggregate kinds.
const (
	// KindBasicCounter — ε-approximate count of 1s over a sliding
	// window (Theorem 4.1).
	KindBasicCounter Kind = "basic-counter"
	// KindWindowSum — ε-approximate sliding-window sum of bounded
	// non-negative integers (Theorem 4.2).
	KindWindowSum Kind = "window-sum"
	// KindFreq — infinite-window frequency estimation with the parallel
	// Misra-Gries summary (Theorem 5.2).
	KindFreq Kind = "freq-estimator"
	// KindSlidingFreq — sliding-window frequency estimation
	// (Theorems 5.4/5.5/5.8, selected by WithVariant).
	KindSlidingFreq Kind = "sliding-freq-estimator"
	// KindCountMin — the parallel count-min sketch (Theorem 6.1).
	KindCountMin Kind = "count-min"
	// KindCountMinRange — dyadic count-min stack for range counts and
	// quantiles.
	KindCountMinRange Kind = "count-min-range"
	// KindCountSketch — the Count-Sketch of [CCFC02], parallel-ingested
	// like CountMin.
	KindCountSketch Kind = "count-sketch"
)

// Aggregate is the uniform surface every aggregate in this library
// presents, following the paper's discretized-stream model: ingest a
// minibatch with a parallel linear-work algorithm, answer queries at
// batch boundaries, checkpoint between batches.
//
// ProcessBatch ingests one minibatch of items. For item-stream
// aggregates the elements are item identifiers; BasicCounter interprets
// each nonzero element as a 1-bit, and WindowSum interprets elements as
// values (rejecting any value above its configured bound). Only
// WindowSum can return a non-nil error.
//
// StreamLen reports the number of stream elements ingested through
// ProcessBatch (or ProcessBits) so far; it survives checkpoint/restore.
// SpaceWords reports the memory footprint in 64-bit words. MarshalBinary
// called between two batches captures the full state; UnmarshalBinary
// (valid on a zero value) restores an aggregate that continues exactly
// where the original left off.
type Aggregate interface {
	Kind() Kind
	ProcessBatch(items []uint64) error
	StreamLen() int64
	SpaceWords() int
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}

// PointEstimator answers per-item frequency queries (FreqEstimator,
// SlidingFreqEstimator, CountMin, CountSketch).
type PointEstimator interface {
	Estimate(item uint64) int64
}

// ScalarEstimator answers single-value window queries (BasicCounter,
// WindowSum).
type ScalarEstimator interface {
	Estimate() int64
}

// HeavyHitterSource enumerates frequent items (FreqEstimator,
// SlidingFreqEstimator).
type HeavyHitterSource interface {
	HeavyHitters(phi float64) []ItemCount
	TopK(k int) []ItemCount
}

// RangeEstimator answers range-count and quantile queries
// (CountMinRange).
type RangeEstimator interface {
	RangeCount(lo, hi uint64) int64
	Quantile(q float64) uint64
}

// TotalCounter reports the exact total ingested weight m (CountMin,
// CountMinRange). Unlike the ε-approximate estimates, TotalCount is a
// tracked counter, so it merges exactly — Pipeline.Value falls back to
// it for kinds without a window estimate.
type TotalCounter interface {
	TotalCount() int64
}

// Merger is the capability interface for aggregates that can absorb
// another instance of the same kind — the mergeable-summaries property
// [ACH+13] that sharded and distributed deployments build on. After
// a.Merge(b), a summarizes the concatenation of both input streams:
//
//   - FreqEstimator merges with the Misra-Gries merge, preserving
//     f_e - ε(m_a+m_b) <= Estimate(e) <= f_e;
//   - CountMin and CountMinRange merge cell-wise (both operands must
//     share parameters and seed), preserving the εm bound at the
//     combined m;
//   - CountSketch merges cell-wise, with merged error bounded by
//     ε(‖f_a‖₂+‖f_b‖₂).
//
// Merge returns an error wrapping ErrIncompatibleMerge when the operands
// differ in kind, parameters, or hash seed, or when an aggregate is
// merged with itself; the receiver is unchanged on error. The argument
// is read under its own query gate and is not modified.
type Merger interface {
	Merge(other Aggregate) error
}

// Compile-time conformance: every public aggregate is an Aggregate.
var (
	_ Aggregate = (*BasicCounter)(nil)
	_ Aggregate = (*WindowSum)(nil)
	_ Aggregate = (*FreqEstimator)(nil)
	_ Aggregate = (*SlidingFreqEstimator)(nil)
	_ Aggregate = (*CountMin)(nil)
	_ Aggregate = (*CountMinRange)(nil)
	_ Aggregate = (*CountSketch)(nil)
)

// Compile-time conformance to the narrower query interfaces.
var (
	_ ScalarEstimator   = (*BasicCounter)(nil)
	_ ScalarEstimator   = (*WindowSum)(nil)
	_ PointEstimator    = (*FreqEstimator)(nil)
	_ PointEstimator    = (*SlidingFreqEstimator)(nil)
	_ PointEstimator    = (*CountMin)(nil)
	_ PointEstimator    = (*CountSketch)(nil)
	_ HeavyHitterSource = (*FreqEstimator)(nil)
	_ HeavyHitterSource = (*SlidingFreqEstimator)(nil)
	_ RangeEstimator    = (*CountMinRange)(nil)
)

// Compile-time conformance: the mergeable kinds and the sharded wrapper.
var (
	_ Merger = (*FreqEstimator)(nil)
	_ Merger = (*CountMin)(nil)
	_ Merger = (*CountMinRange)(nil)
	_ Merger = (*CountSketch)(nil)
	_ Merger = (*Sharded)(nil)

	_ TotalCounter = (*CountMin)(nil)
	_ TotalCounter = (*CountMinRange)(nil)

	_ Aggregate         = (*Sharded)(nil)
	_ PointEstimator    = (*Sharded)(nil)
	_ HeavyHitterSource = (*Sharded)(nil)
	_ RangeEstimator    = (*Sharded)(nil)
)
