package streamagg_test

import (
	"fmt"

	streamagg "repro"
)

// The basic flow: create an estimator, feed minibatches, query between
// batches.
func ExampleNewFreqEstimator() {
	est, err := streamagg.NewFreqEstimator(0.01)
	if err != nil {
		panic(err)
	}
	est.ProcessBatch([]uint64{1, 1, 1, 2, 2, 3})
	est.ProcessBatch([]uint64{1, 4, 4, 4, 4, 5})
	fmt.Println("item 1:", est.Estimate(1))
	fmt.Println("item 4:", est.Estimate(4))
	// Output:
	// item 1: 4
	// item 4: 4
}

// Sliding-window estimation forgets items that slide out of the window.
func ExampleNewSlidingFreqEstimator() {
	est, err := streamagg.NewSlidingFreqEstimator(4, 0.25, streamagg.VariantWorkEfficient)
	if err != nil {
		panic(err)
	}
	est.ProcessBatch([]uint64{7, 7, 7, 7}) // window full of 7s
	fmt.Println("in window:", est.Estimate(7))
	est.ProcessBatch([]uint64{8, 8, 8, 8}) // 7s slide out entirely
	fmt.Println("after sliding out:", est.Estimate(7))
	// Output:
	// in window: 4
	// after sliding out: 0
}

// Basic counting tracks the 1s in a sliding bit window with relative
// error epsilon.
func ExampleNewBasicCounter() {
	c, err := streamagg.NewBasicCounter(8, 0.1)
	if err != nil {
		panic(err)
	}
	c.ProcessBits([]bool{true, true, false, true})
	c.ProcessBits([]bool{false, false, true, false})
	fmt.Println("ones in last 8 bits:", c.Estimate())
	// Output:
	// ones in last 8 bits: 4
}

// String keys are adapted with HashString.
func ExampleHashString() {
	est, _ := streamagg.NewFreqEstimator(0.1)
	words := []string{"go", "go", "stream", "go"}
	ids := make([]uint64, len(words))
	for i, w := range words {
		ids[i] = streamagg.HashString(w)
	}
	est.ProcessBatch(ids)
	fmt.Println(est.Estimate(streamagg.HashString("go")))
	// Output:
	// 3
}

// Checkpoint and restore between minibatches (the discretized-stream
// fault-tolerance pattern).
func ExampleFreqEstimator_MarshalBinary() {
	est, _ := streamagg.NewFreqEstimator(0.1)
	est.ProcessBatch([]uint64{1, 1, 2})
	ckpt, err := est.MarshalBinary()
	if err != nil {
		panic(err)
	}
	restored := &streamagg.FreqEstimator{}
	if err := restored.UnmarshalBinary(ckpt); err != nil {
		panic(err)
	}
	restored.ProcessBatch([]uint64{1})
	fmt.Println(restored.Estimate(1))
	// Output:
	// 3
}
