package trace

// JSON export of the completed-span ring, grouped into traces, behind
// GET /debug/traces. This is the cold read path: the handler copies the
// ring once under the tracer lock and does all grouping, filtering, and
// encoding on the copy.

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"time"
)

// SpanJSON is one span in the /debug/traces response.
type SpanJSON struct {
	SpanID     string            `json:"span_id"`
	ParentID   string            `json:"parent_id,omitempty"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationUS float64           `json:"duration_us"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// TraceJSON is one trace — every retained span sharing a trace ID —
// in the /debug/traces response.
type TraceJSON struct {
	TraceID    string     `json:"trace_id"`
	Root       string     `json:"root"`
	Start      time.Time  `json:"start"`
	DurationMS float64    `json:"duration_ms"`
	Spans      []SpanJSON `json:"spans"`
}

// Traces groups the retained spans by trace ID, newest trace first,
// keeping traces whose wall-clock extent (first span start to last span
// end) is at least minDur and, when handler is non-empty, that contain
// a span with that exact name. At most limit traces are returned
// (limit <= 0 means no cap). Incomplete traces — some spans still open
// or already overwritten — are reported from what the ring retains.
func (t *Tracer) Traces(minDur time.Duration, handler string, limit int) []TraceJSON {
	spans := t.Snapshot()
	byTrace := make(map[TraceID][]SpanData)
	for _, s := range spans {
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	out := make([]TraceJSON, 0, len(byTrace))
	for tid, ss := range byTrace {
		sort.Slice(ss, func(i, j int) bool { return ss[i].Start.Before(ss[j].Start) })
		start, end := ss[0].Start, ss[0].Start.Add(ss[0].Duration)
		root := ss[0].Name
		match := handler == ""
		js := make([]SpanJSON, 0, len(ss))
		for i := range ss {
			s := &ss[i]
			if s.Name == handler {
				match = true
			}
			if s.Parent.IsZero() {
				root = s.Name
			}
			if e := s.Start.Add(s.Duration); e.After(end) {
				end = e
			}
			sj := SpanJSON{
				SpanID:     s.ID.String(),
				Name:       s.Name,
				Start:      s.Start,
				DurationUS: float64(s.Duration.Microseconds()),
			}
			if !s.Parent.IsZero() {
				sj.ParentID = s.Parent.String()
			}
			if attrs := s.Attrs(); len(attrs) > 0 {
				sj.Attrs = make(map[string]string, len(attrs))
				for _, a := range attrs {
					sj.Attrs[a.Key] = a.Value
				}
			}
			js = append(js, sj)
		}
		dur := end.Sub(start)
		if !match || dur < minDur {
			continue
		}
		out = append(out, TraceJSON{
			TraceID:    tid.String(),
			Root:       root,
			Start:      start,
			DurationMS: float64(dur.Microseconds()) / 1e3,
			Spans:      js,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Handler serves the ring as JSON, for mounting at GET /debug/traces.
// Query parameters: min_ms filters out traces shorter than the given
// milliseconds, handler keeps only traces containing a span with that
// exact name, limit caps the trace count (default 100).
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		minMS, err := parseFloat(q.Get("min_ms"), 0)
		if err != nil {
			httpError(w, "bad query parameter min_ms")
			return
		}
		limit, err := parseInt(q.Get("limit"), 100)
		if err != nil {
			httpError(w, "bad query parameter limit")
			return
		}
		decisions, spans, retained := t.Stats()
		resp := map[string]any{
			"sample_rate":    t.SampleRate(),
			"root_decisions": decisions,
			"spans_started":  spans,
			"spans_retained": retained,
			"traces":         t.Traces(time.Duration(minMS*float64(time.Millisecond)), q.Get("handler"), limit),
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})
}

func httpError(w http.ResponseWriter, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func parseFloat(s string, def float64) (float64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseFloat(s, 64)
}

func parseInt(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}
