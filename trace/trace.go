// Package trace is a zero-dependency distributed-tracing kernel for the
// streamagg serving stack, the causal complement to the metrics
// package: where /metrics answers "how much / how fast", a trace answers
// "where did *this* request or batch go" across the async queue
// boundary, the WAL, the sink, and the federation edge→root HTTP hop.
//
// The design constraints mirror metrics/: no external dependencies, and
// nothing on the hot path when tracing is off. Sampling is decided once
// at the root of a trace by a lock-free probabilistic sampler; an
// unsampled (or disabled) path sees only nil *Span values, every method
// of which is a no-op — zero allocations, one atomic load per decision.
// Sampled spans carry bounded key/value attributes and land, on End, in
// a fixed-size ring buffer of completed spans that GET /debug/traces
// exports as JSON grouped into traces.
//
// Context propagates two ways: in-process as a SpanContext value
// (producers hand it to the Ingestor, which carries it through the MPSC
// queue to the flush worker), and across HTTP as a W3C traceparent
// header — an incoming sampled traceparent joins the caller's trace
// regardless of the local sampling rate, which is what lets one trace
// span edge capture → push → root merge.
package trace

import (
	"encoding/hex"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one trace (16 bytes, per W3C trace-context).
type TraceID [16]byte

// SpanID identifies one span within a trace (8 bytes).
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the propagated part of a span: enough to parent a
// child onto its trace, in-process or across an HTTP hop. The zero
// value is invalid and means "no trace".
type SpanContext struct {
	Trace   TraceID
	Span    SpanID
	Sampled bool
}

// IsValid reports whether sc refers to a real span.
func (sc SpanContext) IsValid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// Traceparent renders sc as a W3C traceparent header value
// (version 00): 00-<trace-id>-<parent-id>-<trace-flags>.
func (sc SpanContext) Traceparent() string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.Trace.String() + "-" + sc.Span.String() + "-" + flags
}

// ParseTraceparent parses a W3C traceparent header value. It accepts
// any version whose first four fields follow the version-00 layout
// (the spec's forward-compatibility rule), and rejects the all-zero
// trace and span IDs the spec declares invalid.
func ParseTraceparent(h string) (SpanContext, bool) {
	// version(2) - traceid(32) - spanid(16) - flags(2)
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return SpanContext{}, false
	}
	if len(h) > 55 && h[55] != '-' {
		return SpanContext{}, false
	}
	if h[0] == 'f' && h[1] == 'f' { // version 0xff is forbidden
		return SpanContext{}, false
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.Trace[:], []byte(h[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.Span[:], []byte(h[36:52])); err != nil {
		return SpanContext{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return SpanContext{}, false
	}
	if !sc.IsValid() {
		return SpanContext{}, false
	}
	sc.Sampled = flags[0]&1 != 0
	return sc, true
}

// MaxAttrs bounds the key/value attributes one span can hold; extras
// are dropped (and counted on the span) rather than allocated.
const MaxAttrs = 8

// Attr is one span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanData is a completed span as stored in the tracer's ring buffer.
type SpanData struct {
	Trace    TraceID
	ID       SpanID
	Parent   SpanID // zero for a trace's root span
	Name     string
	Start    time.Time
	Duration time.Duration
	Dropped  int // attributes discarded past MaxAttrs
	attrs    [MaxAttrs]Attr
	nattrs   int
}

// Attrs returns the span's recorded attributes.
func (d *SpanData) Attrs() []Attr { return d.attrs[:d.nattrs] }

// Span is a live span. A nil *Span is the not-sampled/disabled case:
// every method is a no-op on it, so instrumented code never branches on
// whether tracing is active.
type Span struct {
	tracer *Tracer
	data   SpanData
}

// Context returns the span's propagation context (zero for nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.data.Trace, Span: s.data.ID, Sampled: true}
}

// TraceIDString returns the span's trace ID in hex ("" for nil) — the
// form logs and histogram exemplars carry.
func (s *Span) TraceIDString() string {
	if s == nil {
		return ""
	}
	return s.data.Trace.String()
}

// SetAttr records one string attribute (no-op on nil; attributes past
// MaxAttrs are counted as dropped).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	if s.data.nattrs >= MaxAttrs {
		s.data.Dropped++
		return
	}
	s.data.attrs[s.data.nattrs] = Attr{Key: key, Value: value}
	s.data.nattrs++
}

// SetInt records one integer attribute (no-op on nil).
func (s *Span) SetInt(key string, value int64) {
	s.SetAttr(key, fmt.Sprintf("%d", value))
}

// LogArgs returns ("trace_id", ..., "span_id", ...) key/value pairs for
// a slog call, so every log record emitted under a span carries its
// identity. Nil for a nil span — slog drops nothing.
func (s *Span) LogArgs() []any {
	if s == nil {
		return nil
	}
	return []any{"trace_id", s.data.Trace.String(), "span_id", s.data.ID.String()}
}

// End completes the span and commits it to the tracer's ring buffer.
// Safe (and a no-op) on nil; calling End twice records twice — don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.data.Duration = time.Since(s.data.Start)
	s.tracer.record(&s.data)
}

// DefaultRingSize is the completed-span ring capacity when Config
// leaves it zero: enough for a few hundred multi-span traces.
const DefaultRingSize = 4096

// Config configures a Tracer.
type Config struct {
	// SampleRate is the probability in [0, 1] that a new root span
	// starts a recorded trace. 0 disables local sampling (incoming
	// sampled traceparents are still honored); 1 records everything.
	SampleRate float64
	// RingSize is the completed-span ring capacity (default 4096).
	RingSize int
}

// Tracer makes sampling decisions, allocates IDs, and retains completed
// spans in a fixed-size ring. A nil *Tracer is valid and permanently
// disabled: Start/Child on it return nil spans. All methods are safe
// for concurrent use.
type Tracer struct {
	// threshold is the sampler gate: a trace is sampled when a uniform
	// random uint64 is <= threshold (0 = never, MaxUint64 = always).
	// One atomic load on the never path, no locks anywhere.
	threshold atomic.Uint64
	rng       atomic.Uint64 // splitmix64 state for IDs + sampling

	mu       sync.Mutex
	ring     []SpanData // fixed-size circular buffer of completed spans
	n        uint64     // total spans ever recorded; ring[(n-1)%len] is newest
	started  atomic.Int64
	sampled_ atomic.Int64
}

// New builds a Tracer. See Config for the knobs.
func New(cfg Config) *Tracer {
	size := cfg.RingSize
	if size <= 0 {
		size = DefaultRingSize
	}
	t := &Tracer{ring: make([]SpanData, size)}
	t.rng.Store(uint64(time.Now().UnixNano()) | 1)
	t.SetSampleRate(cfg.SampleRate)
	return t
}

// SetSampleRate replaces the sampling probability (clamped to [0, 1])
// at runtime; in-flight traces keep their original decision.
func (t *Tracer) SetSampleRate(p float64) {
	switch {
	case t == nil:
	case p <= 0:
		t.threshold.Store(0)
	case p >= 1:
		t.threshold.Store(math.MaxUint64)
	default:
		t.threshold.Store(uint64(p * float64(math.MaxUint64)))
	}
}

// SampleRate returns the current sampling probability.
func (t *Tracer) SampleRate() float64 {
	if t == nil {
		return 0
	}
	th := t.threshold.Load()
	switch th {
	case 0:
		return 0
	case math.MaxUint64:
		return 1
	}
	return float64(th) / float64(math.MaxUint64)
}

// next advances the shared splitmix64 state. The atomic add gives every
// caller a distinct state; the finalizer whitens it. Lock-free.
func (t *Tracer) next() uint64 {
	x := t.rng.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// sample is the root sampling decision.
func (t *Tracer) sample() bool {
	th := t.threshold.Load()
	if th == 0 {
		return false
	}
	if th == math.MaxUint64 {
		return true
	}
	return t.next() <= th
}

// newSpanID returns a nonzero span ID.
func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	for i := 0; i < 4 && id.IsZero(); i++ {
		putUint64(id[:], t.next())
	}
	if id.IsZero() {
		id[7] = 1
	}
	return id
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

// Start begins a span. With a valid parent the span joins the parent's
// trace and inherits its sampling decision (a sampled caller is
// recorded regardless of the local rate; an unsampled caller is not).
// Without one, Start makes a fresh sampling decision and, if sampled,
// roots a new trace. Returns nil — the universal no-op span — whenever
// nothing will be recorded, including on a nil Tracer.
func (t *Tracer) Start(name string, parent SpanContext) *Span {
	if t == nil {
		return nil
	}
	if parent.IsValid() {
		if !parent.Sampled {
			return nil
		}
		return t.newSpan(name, parent.Trace, parent.Span)
	}
	t.started.Add(1)
	if !t.sample() {
		return nil
	}
	var tid TraceID
	for tid.IsZero() {
		putUint64(tid[:8], t.next())
		putUint64(tid[8:], t.next())
	}
	return t.newSpan(name, tid, SpanID{})
}

// Child begins a span only if parent is a valid sampled context — the
// join-only form for interior pipeline stages (flush, WAL append, sink
// apply), which must never root a trace of their own.
func (t *Tracer) Child(name string, parent SpanContext) *Span {
	if t == nil || !parent.IsValid() || !parent.Sampled {
		return nil
	}
	return t.newSpan(name, parent.Trace, parent.Span)
}

func (t *Tracer) newSpan(name string, tid TraceID, parent SpanID) *Span {
	t.sampled_.Add(1)
	return &Span{tracer: t, data: SpanData{
		Trace:  tid,
		ID:     t.newSpanID(),
		Parent: parent,
		Name:   name,
		Start:  time.Now(),
	}}
}

// record commits one completed span to the ring, overwriting the
// oldest when full.
func (t *Tracer) record(d *SpanData) {
	t.mu.Lock()
	t.ring[t.n%uint64(len(t.ring))] = *d
	t.n++
	t.mu.Unlock()
}

// Stats reports the tracer's lifetime counters: root sampling decisions
// made, spans started, and completed spans currently retained.
func (t *Tracer) Stats() (decisions, spans, retained int64) {
	if t == nil {
		return 0, 0, 0
	}
	t.mu.Lock()
	n := t.n
	size := uint64(len(t.ring))
	t.mu.Unlock()
	if n > size {
		n = size
	}
	return t.started.Load(), t.sampled_.Load(), int64(n)
}

// Snapshot copies the retained completed spans, oldest first.
func (t *Tracer) Snapshot() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := uint64(len(t.ring))
	count := t.n
	if count > size {
		count = size
	}
	out := make([]SpanData, 0, count)
	for i := uint64(0); i < count; i++ {
		out = append(out, t.ring[(t.n-count+i)%size])
	}
	return out
}
