package trace

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	span := tr.Start("root", SpanContext{})
	if span == nil {
		t.Fatal("sampled tracer returned nil span")
	}
	defer span.End()
	sc := span.Context()
	h := sc.Traceparent()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("traceparent %q has wrong shape", h)
	}
	got, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected its own rendering", h)
	}
	if got != sc {
		t.Fatalf("round trip %+v != %+v", got, sc)
	}
	// Unsampled flag round-trips too.
	sc.Sampled = false
	if got, ok := ParseTraceparent(sc.Traceparent()); !ok || got.Sampled {
		t.Fatalf("unsampled traceparent round trip = %+v ok=%v", got, ok)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",     // truncated
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0g",  // bad hex flags
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero span id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // forbidden version
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // wrong separator
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x", // trailing junk
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted", h)
		}
	}
	// A future version with extra fields after the flags is accepted.
	ok := "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"
	if sc, accepted := ParseTraceparent(ok); !accepted || !sc.Sampled {
		t.Errorf("ParseTraceparent(%q) = %+v accepted=%v, want sampled join", ok, sc, accepted)
	}
}

func TestSamplingRates(t *testing.T) {
	never := New(Config{SampleRate: 0})
	for i := 0; i < 1000; i++ {
		//agglint:ignore spancheck asserting the unsampled path returns a nil span; nothing to end
		if s := never.Start("x", SpanContext{}); s != nil {
			t.Fatal("rate-0 tracer sampled a root span")
		}
	}
	always := New(Config{SampleRate: 1})
	for i := 0; i < 100; i++ {
		s := always.Start("x", SpanContext{})
		if s == nil {
			t.Fatal("rate-1 tracer skipped a root span")
		}
		s.End()
	}
	half := New(Config{SampleRate: 0.5})
	hits := 0
	for i := 0; i < 4000; i++ {
		if s := half.Start("x", SpanContext{}); s != nil {
			hits++
			s.End()
		}
	}
	if hits < 1500 || hits > 2500 {
		t.Fatalf("rate-0.5 sampled %d/4000", hits)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	span := tr.Start("x", SpanContext{})
	if span != nil {
		t.Fatal("nil tracer returned a span")
	}
	// Every method must be a no-op on the nil span.
	span.SetAttr("k", "v")
	span.SetInt("n", 1)
	span.End()
	if sc := span.Context(); sc.IsValid() {
		t.Fatal("nil span has a valid context")
	}
	if span.TraceIDString() != "" || span.LogArgs() != nil {
		t.Fatal("nil span leaks identity")
	}
	if tr.Child("y", SpanContext{}) != nil {
		t.Fatal("nil tracer built a child")
	}
	tr.SetSampleRate(1)
	if tr.SampleRate() != 0 {
		t.Fatal("nil tracer has a rate")
	}
	if tr.Snapshot() != nil {
		t.Fatal("nil tracer has spans")
	}
}

func TestChildJoinsOnlySampledParents(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	root := tr.Start("root", SpanContext{})
	defer root.End()
	child := tr.Child("child", root.Context())
	if child == nil {
		t.Fatal("child of sampled parent is nil")
	}
	defer child.End()
	if child.data.Trace != root.data.Trace {
		t.Fatal("child did not join the parent's trace")
	}
	if child.data.Parent != root.data.ID {
		t.Fatal("child does not point at its parent span")
	}
	// Child never roots a trace: invalid or unsampled parents yield nil
	// even at sampling rate 1.
	if tr.Child("orphan", SpanContext{}) != nil {
		t.Fatal("Child rooted a trace from an invalid parent")
	}
	unsampled := root.Context()
	unsampled.Sampled = false
	if tr.Child("x", unsampled) != nil {
		t.Fatal("Child recorded under an unsampled parent")
	}
	// Start honors a sampled parent even when the local rate is 0 — the
	// cross-hop join rule.
	cold := New(Config{SampleRate: 0})
	joined := cold.Start("remote", root.Context())
	if joined == nil {
		t.Fatal("rate-0 tracer refused a sampled caller's trace")
	}
	defer joined.End()
	if joined.data.Trace != root.data.Trace {
		t.Fatal("joined span is on the wrong trace")
	}
}

func TestAttrBoundsAndRing(t *testing.T) {
	tr := New(Config{SampleRate: 1, RingSize: 4})
	s := tr.Start("attrs", SpanContext{})
	for i := 0; i < MaxAttrs+3; i++ {
		s.SetInt("k", int64(i))
	}
	s.End()
	snap := tr.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("retained %d spans, want 1", len(snap))
	}
	if got := len(snap[0].Attrs()); got != MaxAttrs {
		t.Fatalf("span holds %d attrs, want %d", got, MaxAttrs)
	}
	if snap[0].Dropped != 3 {
		t.Fatalf("dropped %d attrs, want 3", snap[0].Dropped)
	}
	// Ring keeps the newest spans, oldest first in the snapshot.
	for i := 0; i < 6; i++ {
		sp := tr.Start("s", SpanContext{})
		sp.SetInt("i", int64(i))
		sp.End()
	}
	snap = tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring retained %d, want 4", len(snap))
	}
	if snap[len(snap)-1].Attrs()[0].Value != "5" {
		t.Fatalf("newest span attr = %v, want 5", snap[len(snap)-1].Attrs())
	}
}

func TestTracesGroupingAndFilters(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	// Trace A: root + two children.
	rootA := tr.Start("http.ingest", SpanContext{})
	time.Sleep(2 * time.Millisecond)
	childA := tr.Child("ingest.flush", rootA.Context())
	childA.End()
	grandA := tr.Child("sink.apply", childA.Context())
	grandA.End()
	rootA.End()
	// Trace B: a single fast span.
	rootB := tr.Start("http.healthz", SpanContext{})
	rootB.End()

	all := tr.Traces(0, "", 0)
	if len(all) != 2 {
		t.Fatalf("got %d traces, want 2", len(all))
	}
	var a *TraceJSON
	for i := range all {
		if all[i].Root == "http.ingest" {
			a = &all[i]
		}
	}
	if a == nil {
		t.Fatalf("trace A missing from %+v", all)
	}
	if len(a.Spans) != 3 {
		t.Fatalf("trace A has %d spans, want 3", len(a.Spans))
	}
	if a.TraceID != rootA.data.Trace.String() {
		t.Fatal("trace A reported under the wrong ID")
	}

	// handler filter keeps only traces containing the named span.
	if got := tr.Traces(0, "sink.apply", 0); len(got) != 1 || got[0].Root != "http.ingest" {
		t.Fatalf("handler filter = %+v, want only trace A", got)
	}
	if got := tr.Traces(0, "nosuch", 0); len(got) != 0 {
		t.Fatalf("bogus handler filter matched %d traces", len(got))
	}
	// min-duration filter drops the fast trace.
	if got := tr.Traces(time.Millisecond, "", 0); len(got) != 1 || got[0].Root != "http.ingest" {
		t.Fatalf("min-duration filter = %+v, want only trace A", got)
	}
	// limit caps the result, newest-first.
	if got := tr.Traces(0, "", 1); len(got) != 1 {
		t.Fatalf("limit=1 returned %d traces", len(got))
	}
}

func TestHandlerJSON(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	s := tr.Start("http.ingest", SpanContext{})
	s.SetAttr("method", "POST")
	s.End()

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?handler=http.ingest", nil))
	if rec.Code != 200 {
		t.Fatalf("handler = %d", rec.Code)
	}
	var resp struct {
		SampleRate float64     `json:"sample_rate"`
		Traces     []TraceJSON `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.SampleRate != 1 || len(resp.Traces) != 1 {
		t.Fatalf("response %+v", resp)
	}
	if resp.Traces[0].Spans[0].Attrs["method"] != "POST" {
		t.Fatalf("attrs lost: %+v", resp.Traces[0].Spans[0])
	}

	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?min_ms=abc", nil))
	if rec.Code != 400 {
		t.Fatalf("bad min_ms = %d, want 400", rec.Code)
	}
}

func TestContextPropagation(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	span := tr.Start("x", SpanContext{})
	ctx := ContextWithSpan(context.Background(), span)
	if SpanFromContext(ctx) != span {
		t.Fatal("span lost in context")
	}
	if SpanFromContext(context.Background()) != nil {
		t.Fatal("empty context has a span")
	}
	// Nil spans don't allocate a context layer.
	base := context.Background()
	if ContextWithSpan(base, nil) != base {
		t.Fatal("nil span wrapped the context")
	}
}

// TestDisabledPathZeroAllocs pins the tracing-off invariant the ingest
// hot path depends on: a rate-0 root decision, a Child with no sampled
// parent, and every nil-span method must not allocate.
func TestDisabledPathZeroAllocs(t *testing.T) {
	tr := New(Config{SampleRate: 0})
	var sink *Span
	allocs := testing.AllocsPerRun(10000, func() {
		sink = tr.Start("x", SpanContext{})
		sink.SetAttr("k", "v")
		c := tr.Child("y", sink.Context())
		c.SetInt("n", 1)
		c.End()
		sink.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates %.2f objects/op, want 0", allocs)
	}
}
