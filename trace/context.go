package trace

// In-process propagation through context.Context, for the HTTP
// middleware → handler hop. The WithValue allocation happens only on
// the sampled path: nothing stores a nil span, and SpanFromContext on a
// context without one returns nil — the universal no-op span.

import "context"

type ctxKey struct{}

// ContextWithSpan returns ctx carrying span. A nil span returns ctx
// unchanged (no allocation on the unsampled path).
func ContextWithSpan(ctx context.Context, span *Span) context.Context {
	if span == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, span)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	span, _ := ctx.Value(ctxKey{}).(*Span)
	return span
}
