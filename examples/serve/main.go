// Serving-layer walkthrough: start the HTTP server on a loopback port,
// ingest a burst of updates through POST /v1/ingest (coalesced into
// minibatches by the async Ingestor), query the six verbs, take an
// atomic checkpoint, and shut down gracefully.
//
// Run with: go run ./examples/serve
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"time"

	streamagg "repro"
	"repro/server"
)

func main() {
	// One pipeline, three aggregates: trending keys, a point-frequency
	// sketch, and a value distribution for quantiles.
	pipe := streamagg.NewPipeline()
	must(pipe.Add("hot", streamagg.KindFreq, streamagg.WithEpsilon(0.001)))
	must(pipe.Add("sketch", streamagg.KindCountMin,
		streamagg.WithEpsilon(1e-4), streamagg.WithSeed(7)))
	must(pipe.Add("dist", streamagg.KindCountMinRange, streamagg.WithUniverseBits(16)))

	// The server wraps the pipeline in an Ingestor: flush at 4096 items
	// or after 2ms, whichever comes first; block producers when the
	// queue fills (lossless backpressure).
	srv, err := server.New(pipe,
		streamagg.WithBatchSize(4096),
		streamagg.WithMaxLatency(2*time.Millisecond),
		streamagg.WithBackpressure(streamagg.BackpressureBlock))
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := srv.Serve(l); err != nil {
			log.Fatal(err)
		}
	}()
	base := "http://" + l.Addr().String()
	fmt.Println("serving on", base)

	// Ingest 100k zipf-ish updates in request-sized chunks; the last
	// request sets "sync" so queries see everything.
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.2, 1, 1<<16-1)
	chunk := make([]uint64, 0, 1000)
	for i := 0; i < 100_000; i++ {
		chunk = append(chunk, zipf.Uint64())
		if len(chunk) == cap(chunk) || i == 99_999 {
			body, _ := json.Marshal(map[string]any{"items": chunk, "sync": i == 99_999})
			postJSON(base+"/v1/ingest", body)
			chunk = chunk[:0]
		}
	}

	fmt.Println("top keys:       ", getBody(base+"/v1/hot/topk?k=3"))
	fmt.Println("estimate item 1:", getBody(base+"/v1/sketch/estimate?item=1"))
	fmt.Println("median:         ", getBody(base+"/v1/dist/quantile?q=0.5"))
	fmt.Println("p99:            ", getBody(base+"/v1/dist/quantile?q=0.99"))

	// Atomic checkpoint: drains the ingest queue, then captures every
	// aggregate at one minibatch boundary.
	resp, err := http.Post(base+"/v1/checkpoint", "application/octet-stream", nil)
	if err != nil {
		log.Fatal(err)
	}
	ckpt, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("checkpoint:      %d bytes\n", len(ckpt))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	st := srv.Ingestor().Stats()
	fmt.Printf("drained:         %d items in %d minibatches (max %d)\n",
		st.Processed, st.Batches, st.MaxBatch)
}

func must(_ streamagg.Aggregate, err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func postJSON(url string, body []byte) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("POST %s: %d %s", url, resp.StatusCode, msg)
	}
	io.Copy(io.Discard, resp.Body)
}

func getBody(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return string(bytes.TrimSpace(body))
}
