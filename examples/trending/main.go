// trending: infinite-window trending-topics scenario (the paper's
// social-media monitoring motivation) — a Pipeline fans each minibatch
// of posts out to the parallel Misra-Gries summary and a count-min
// sketch, cross-checking the top-k estimates between them. Halfway
// through, the whole pipeline is checkpointed and restored — the
// Spark-style fault-tolerance drill — and the run continues on the
// restored copy. String keys are mapped to items with
// streamagg.HashString.
package main

import (
	"fmt"
	"log"
	"math/rand"

	streamagg "repro"
)

var vocab = []string{
	"#worldcup", "#election", "#ai", "#climate", "#music",
	"#breaking", "#sports", "#meme", "#science", "#fashion",
}

func main() {
	const (
		batches   = 200
		batchSize = 5000
		epsilon   = 0.001
	)
	pipe := streamagg.NewPipeline()
	if _, err := pipe.Add("trend", streamagg.KindFreq,
		streamagg.WithEpsilon(epsilon)); err != nil {
		log.Fatal(err)
	}
	if _, err := pipe.Add("sketch", streamagg.KindCountMin,
		streamagg.WithEpsilon(0.0005),
		streamagg.WithDelta(0.001),
		streamagg.WithSeed(42)); err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	longTail := rand.NewZipf(rng, 1.3, 1, 1<<22)
	ids := make(map[string]uint64, len(vocab))
	names := make(map[uint64]string)
	for _, w := range vocab {
		id := streamagg.HashString(w)
		ids[w] = id
		names[id] = w
	}

	// Tag popularity drifts over time: a rotating "hot" tag takes 20% of
	// the stream, the rest is a heavy Zipf long tail of one-off tags.
	for b := 0; b < batches; b++ {
		hot := vocab[(b/20)%len(vocab)]
		batch := make([]uint64, batchSize)
		for i := range batch {
			switch {
			case rng.Float64() < 0.20:
				batch[i] = ids[hot]
			case rng.Float64() < 0.25:
				batch[i] = ids[vocab[rng.Intn(len(vocab))]]
			default:
				batch[i] = 1<<48 + longTail.Uint64() // long-tail one-offs
			}
		}
		if err := pipe.ProcessBatch(batch); err != nil {
			log.Fatal(err)
		}

		if b == batches/2 {
			// Mid-stream fault-tolerance drill: checkpoint the whole
			// pipeline atomically, then continue on the restored copy.
			ckpt, err := pipe.MarshalBinary()
			if err != nil {
				log.Fatal(err)
			}
			restored := streamagg.NewPipeline()
			if err := restored.UnmarshalBinary(ckpt); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("checkpointed %d aggregates at post %d (%d bytes), continuing on restored pipeline\n\n",
				restored.Len(), restored.StreamLen(), len(ckpt))
			pipe = restored
		}
	}

	top, err := pipe.TopK("trend", 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("processed %d posts\n\ntrending (top-8 of %d tracked):\n",
		pipe.StreamLen(), len(vocab))
	for _, ic := range top {
		name := names[ic.Item]
		if name == "" {
			name = fmt.Sprintf("tail-%x", ic.Item)
		}
		cmEst, err := pipe.Estimate("sketch", ic.Item)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s mg-estimate %8d   count-min %8d\n", name, ic.Count, cmEst)
	}

	fmt.Printf("\nheavy hitters above 5%% of all posts:\n")
	hh, err := pipe.HeavyHitters("trend", 0.05)
	if err != nil {
		log.Fatal(err)
	}
	for _, ic := range hh {
		name := names[ic.Item]
		if name == "" {
			name = fmt.Sprintf("tail-%x", ic.Item)
		}
		fmt.Printf("  %-12s ~%d posts\n", name, ic.Count)
	}
	fmt.Printf("\npipeline space: %d words for a stream of %d posts\n",
		pipe.SpaceWords(), pipe.StreamLen())
}
