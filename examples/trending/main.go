// trending: infinite-window trending-topics scenario (the paper's
// social-media monitoring motivation) — maintain the top-k hashtags over
// an unbounded stream with the parallel Misra-Gries summary, and
// cross-check point queries against a count-min sketch. String keys are
// mapped to items with streamagg.HashString.
package main

import (
	"fmt"
	"log"
	"math/rand"

	streamagg "repro"
)

var vocab = []string{
	"#worldcup", "#election", "#ai", "#climate", "#music",
	"#breaking", "#sports", "#meme", "#science", "#fashion",
}

func main() {
	const (
		batches   = 200
		batchSize = 5000
		epsilon   = 0.001
	)
	trend, err := streamagg.NewFreqEstimator(epsilon)
	if err != nil {
		log.Fatal(err)
	}
	sketch, err := streamagg.NewCountMin(0.0005, 0.001, 42)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	longTail := rand.NewZipf(rng, 1.3, 1, 1<<22)
	ids := make(map[string]uint64, len(vocab))
	names := make(map[uint64]string)
	for _, w := range vocab {
		id := streamagg.HashString(w)
		ids[w] = id
		names[id] = w
	}

	// Tag popularity drifts over time: a rotating "hot" tag takes 20% of
	// the stream, the rest is a heavy Zipf long tail of one-off tags.
	for b := 0; b < batches; b++ {
		hot := vocab[(b/20)%len(vocab)]
		batch := make([]uint64, batchSize)
		for i := range batch {
			switch {
			case rng.Float64() < 0.20:
				batch[i] = ids[hot]
			case rng.Float64() < 0.25:
				batch[i] = ids[vocab[rng.Intn(len(vocab))]]
			default:
				batch[i] = 1<<48 + longTail.Uint64() // long-tail one-offs
			}
		}
		trend.ProcessBatch(batch)
		sketch.ProcessBatch(batch)
	}

	fmt.Printf("processed %d posts\n\ntrending (top-8 of %d tracked):\n",
		trend.StreamLen(), len(vocab))
	for _, ic := range trend.TopK(8) {
		name := names[ic.Item]
		if name == "" {
			name = fmt.Sprintf("tail-%x", ic.Item)
		}
		cmEst := sketch.Query(ic.Item)
		fmt.Printf("  %-12s mg-estimate %8d   count-min %8d\n", name, ic.Count, cmEst)
	}

	fmt.Printf("\nheavy hitters above 5%% of all posts:\n")
	for _, ic := range trend.HeavyHitters(0.05) {
		name := names[ic.Item]
		if name == "" {
			name = fmt.Sprintf("tail-%x", ic.Item)
		}
		fmt.Printf("  %-12s ~%d posts\n", name, ic.Count)
	}
	fmt.Printf("\nsummary space: %d words for a stream of %d posts\n",
		trend.SpaceWords(), trend.StreamLen())
}
