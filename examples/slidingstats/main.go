// slidingstats: sliding-window statistics over a bursty sensor feed (the
// [DGIM02] motivation for basic counting) — the raw readings fan out
// through a Pipeline to a WindowSum ("load") and a dyadic count-min
// range sketch ("dist"), while the alarm-bit stream is counted with a
// standalone BasicCounter.
package main

import (
	"fmt"
	"log"

	streamagg "repro"
	"repro/internal/workload"
)

const (
	window    = 1 << 15 // last 32k readings
	batchSize = 2048
	maxVal    = 4095 // 12-bit sensor
	epsilon   = 0.01
)

func main() {
	pipe := streamagg.NewPipeline()
	if _, err := pipe.Add("load", streamagg.KindWindowSum,
		streamagg.WithWindow(window),
		streamagg.WithMaxValue(maxVal),
		streamagg.WithEpsilon(epsilon)); err != nil {
		log.Fatal(err)
	}
	if _, err := pipe.Add("dist", streamagg.KindCountMinRange,
		streamagg.WithUniverseBits(12),
		streamagg.WithEpsilon(0.001),
		streamagg.WithDelta(0.01),
		streamagg.WithSeed(5)); err != nil {
		log.Fatal(err)
	}
	a, err := streamagg.New(streamagg.KindBasicCounter,
		streamagg.WithWindow(window), streamagg.WithEpsilon(epsilon))
	if err != nil {
		log.Fatal(err)
	}
	alarms := a.(*streamagg.BasicCounter)

	// Sensor: skewed readings with occasional spikes; the alarm bit fires
	// in bursts (correlated failures).
	readings := workload.Values(1, 1<<18, maxVal, 3)
	alarmBits := workload.BurstyBits(2, 1<<18, 5000, 0.001, 0.4)

	query := func(f func() (uint64, error)) uint64 {
		v, err := f()
		if err != nil {
			log.Fatal(err)
		}
		return v
	}

	vb := workload.Batches(readings, batchSize)
	ab := workload.BitBatches(alarmBits, batchSize)
	for i := range vb {
		if err := pipe.ProcessBatch(vb[i]); err != nil {
			log.Fatal(err)
		}
		alarms.ProcessBits(ab[i])

		if (i+1)%32 == 0 {
			load, err := pipe.Value("load")
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("after %7d readings: alarms-in-window=%-6d window-load=%-9d p50=%-5d p99=%d\n",
				(i+1)*batchSize,
				alarms.Estimate(),
				load,
				query(func() (uint64, error) { return pipe.Quantile("dist", 0.5) }),
				query(func() (uint64, error) { return pipe.Quantile("dist", 0.99) }))
		}
	}

	load, err := pipe.Value("load")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal window of %d readings:\n", window)
	fmt.Printf("  alarm count : %d (±%.0f%%)\n", alarms.Estimate(), epsilon*100)
	fmt.Printf("  total load  : %d (±%.0f%%)\n", load, epsilon*100)
	fmt.Printf("  median      : %d\n", query(func() (uint64, error) { return pipe.Quantile("dist", 0.5) }))
	fmt.Printf("  p99         : %d\n", query(func() (uint64, error) { return pipe.Quantile("dist", 0.99) }))
	fmt.Printf("  space       : alarms=%d, pipeline=%d words\n",
		alarms.SpaceWords(), pipe.SpaceWords())
}
