// slidingstats: sliding-window statistics over a bursty sensor feed (the
// [DGIM02] motivation for basic counting) — an alarm-bit stream counted
// with BasicCounter, the raw readings summed with WindowSum, and reading
// quantiles tracked with a dyadic count-min range sketch.
package main

import (
	"fmt"
	"log"

	streamagg "repro"
	"repro/internal/workload"
)

const (
	window    = 1 << 15 // last 32k readings
	batchSize = 2048
	maxVal    = 4095 // 12-bit sensor
	epsilon   = 0.01
)

func main() {
	alarms, err := streamagg.NewBasicCounter(window, epsilon)
	if err != nil {
		log.Fatal(err)
	}
	load, err := streamagg.NewWindowSum(window, maxVal, epsilon)
	if err != nil {
		log.Fatal(err)
	}
	dist, err := streamagg.NewCountMinRange(12, 0.001, 0.01, 5)
	if err != nil {
		log.Fatal(err)
	}

	// Sensor: skewed readings with occasional spikes; the alarm bit fires
	// in bursts (correlated failures).
	readings := workload.Values(1, 1<<18, maxVal, 3)
	alarmBits := workload.BurstyBits(2, 1<<18, 5000, 0.001, 0.4)

	vb := workload.Batches(readings, batchSize)
	ab := workload.BitBatches(alarmBits, batchSize)
	for i := range vb {
		if err := load.ProcessBatch(vb[i]); err != nil {
			log.Fatal(err)
		}
		alarms.ProcessBits(ab[i])
		dist.ProcessBatch(vb[i])

		if (i+1)%32 == 0 {
			fmt.Printf("after %7d readings: alarms-in-window=%-6d window-load=%-9d p50=%-5d p99=%d\n",
				(i+1)*batchSize,
				alarms.Estimate(),
				load.Estimate(),
				dist.Quantile(0.5),
				dist.Quantile(0.99))
		}
	}

	fmt.Printf("\nfinal window of %d readings:\n", window)
	fmt.Printf("  alarm count : %d (±%.0f%%)\n", alarms.Estimate(), epsilon*100)
	fmt.Printf("  total load  : %d (±%.0f%%)\n", load.Estimate(), epsilon*100)
	fmt.Printf("  median      : %d\n", dist.Quantile(0.5))
	fmt.Printf("  p99         : %d\n", dist.Quantile(0.99))
	fmt.Printf("  space       : alarms=%d, load=%d, dist=%d words\n",
		alarms.SpaceWords(), load.SpaceWords(), dist.SpaceWords())
}
