// netmon: network-monitoring scenario from the paper's introduction
// ([EV03]: "focusing on the elephants") — track heavy-hitter flows over a
// sliding window of the most recent packets, on a synthetic packet trace
// with Zipf-distributed flow sizes and a mid-trace hot-flow burst
// (simulating a DDoS-like event the window must catch and then forget).
package main

import (
	"fmt"
	"log"

	streamagg "repro"
	"repro/internal/workload"
)

const (
	windowPkts = 1 << 16 // sliding window: last 64k packets
	batchSize  = 4096
	nFlows     = 1 << 20
	epsilon    = 0.005
	phi        = 0.03 // report flows above 3% of window traffic
)

func main() {
	a, err := streamagg.New(streamagg.KindSlidingFreq,
		streamagg.WithWindow(windowPkts),
		streamagg.WithEpsilon(epsilon),
		streamagg.WithVariant(streamagg.VariantWorkEfficient))
	if err != nil {
		log.Fatal(err)
	}
	sw := a.(*streamagg.SlidingFreqEstimator)

	// Phase 1: steady Zipf traffic. Phase 2: flow 0xBAD floods 30% of
	// packets. Phase 3: steady traffic again — the flood must age out.
	steady1 := workload.Flows(1, 1<<18, nFlows, 1.1)
	flood := workload.HeavyMix(2, 1<<17, []uint64{0xBAD}, []float64{0.3}, nFlows)
	steady2 := workload.Flows(3, 1<<18, nFlows, 1.1)

	report := func(phase string) {
		hh := sw.HeavyHitters(phi)
		fmt.Printf("%-22s %d heavy flows (phi=%.0f%% of %d-packet window):\n",
			phase, len(hh), phi*100, windowPkts)
		for i, ic := range hh {
			if i == 5 {
				fmt.Printf("  ... and %d more\n", len(hh)-5)
				break
			}
			fmt.Printf("  flow %#-8x est. %6d pkts (%.1f%%)\n",
				ic.Item, ic.Count, 100*float64(ic.Count)/float64(windowPkts))
		}
	}

	for _, b := range workload.Batches(steady1, batchSize) {
		sw.ProcessBatch(b)
	}
	report("after steady phase 1:")

	for _, b := range workload.Batches(flood, batchSize) {
		sw.ProcessBatch(b)
	}
	report("during flood:")
	if est := sw.Estimate(0xBAD); est == 0 {
		log.Fatal("flood flow not detected")
	}

	for _, b := range workload.Batches(steady2, batchSize) {
		sw.ProcessBatch(b)
	}
	report("after flood aged out:")
	fmt.Printf("\nflood flow residual estimate: %d pkts (should be 0 — slid out of window)\n",
		sw.Estimate(0xBAD))
	fmt.Printf("tracked flows: %d (bounded by O(1/epsilon)=%d despite %d distinct flows)\n",
		sw.TrackedItems(), int(8/epsilon)+1, nFlows)
}
