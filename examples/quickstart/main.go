// Quickstart: a 60-second tour of the streamagg public API — one of each
// aggregate, fed minibatches of a synthetic stream, queried at batch
// boundaries.
package main

import (
	"fmt"
	"log"
	"math/rand"

	streamagg "repro"
)

func main() {
	const (
		window    = 10_000 // sliding-window size (items / bits)
		batchSize = 1_000
		batches   = 50
		epsilon   = 0.01
	)
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.2, 1, 1<<16)

	// Infinite-window frequency estimation (parallel Misra-Gries).
	freq, err := streamagg.NewFreqEstimator(epsilon)
	if err != nil {
		log.Fatal(err)
	}
	// Sliding-window frequency estimation (the work-efficient algorithm).
	sw, err := streamagg.NewSlidingFreqEstimator(window, epsilon, streamagg.VariantWorkEfficient)
	if err != nil {
		log.Fatal(err)
	}
	// Count-min sketch for point queries.
	cm, err := streamagg.NewCountMin(0.001, 0.01, 7)
	if err != nil {
		log.Fatal(err)
	}
	// Sliding-window basic counting over a derived bit stream ("is this
	// item the hottest item 0?").
	bc, err := streamagg.NewBasicCounter(window, epsilon)
	if err != nil {
		log.Fatal(err)
	}
	// Sliding-window sum of a bounded value stream (synthetic "bytes per
	// packet").
	ws, err := streamagg.NewWindowSum(window, 1500, epsilon)
	if err != nil {
		log.Fatal(err)
	}

	for b := 0; b < batches; b++ {
		items := make([]uint64, batchSize)
		bits := make([]bool, batchSize)
		sizes := make([]uint64, batchSize)
		for i := range items {
			items[i] = zipf.Uint64()
			bits[i] = items[i] == 0
			sizes[i] = 40 + uint64(rng.Intn(1460))
		}
		freq.ProcessBatch(items)
		sw.ProcessBatch(items)
		cm.ProcessBatch(items)
		bc.ProcessBits(bits)
		if err := ws.ProcessBatch(sizes); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("stream length: %d items across %d minibatches\n\n",
		freq.StreamLen(), batches)

	fmt.Println("top-5 items over the whole stream (Misra-Gries):")
	for _, ic := range freq.TopK(5) {
		fmt.Printf("  item %-6d est. count %d\n", ic.Item, ic.Count)
	}

	fmt.Printf("\nheavy hitters (phi=0.05) in the last %d items:\n", window)
	for _, ic := range sw.HeavyHitters(0.05) {
		fmt.Printf("  item %-6d est. window count %d\n", ic.Item, ic.Count)
	}

	fmt.Printf("\ncount-min point query for item 0: %d (true count tracked by sketch total m=%d)\n",
		cm.Query(0), cm.TotalCount())

	fmt.Printf("occurrences of item 0 in the last %d items (basic counting): %d\n",
		window, bc.Estimate())
	fmt.Printf("sum of packet sizes over the last %d packets: %d bytes (~%.0f avg)\n",
		window, ws.Estimate(), float64(ws.Estimate())/float64(window))

	fmt.Printf("\nspace: freq=%d, sliding=%d, count-min=%d, basic=%d, sum=%d words\n",
		freq.SpaceWords(), sw.SpaceWords(), cm.SpaceWords(), bc.SpaceWords(), ws.SpaceWords())
}
