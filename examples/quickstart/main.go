// Quickstart: a 60-second tour of the streamagg public API — a Pipeline
// fanning each minibatch out to the three frequency aggregates through
// one keyed query surface, plus standalone windowed aggregates built
// with the same functional-options constructor.
package main

import (
	"fmt"
	"log"
	"math/rand"

	streamagg "repro"
)

func main() {
	const (
		window    = 10_000 // sliding-window size (items / bits)
		batchSize = 1_000
		batches   = 50
		epsilon   = 0.01
	)
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.2, 1, 1<<16)

	// One pipeline, three aggregates over the same item stream: each
	// minibatch fans out concurrently, queries go through names.
	pipe := streamagg.NewPipeline()
	mustAdd := func(name string, kind streamagg.Kind, opts ...streamagg.Option) {
		if _, err := pipe.Add(name, kind, opts...); err != nil {
			log.Fatal(err)
		}
	}
	// Infinite-window frequency estimation (parallel Misra-Gries).
	mustAdd("trending", streamagg.KindFreq, streamagg.WithEpsilon(epsilon))
	// Sliding-window frequency estimation (the work-efficient algorithm).
	mustAdd("recent", streamagg.KindSlidingFreq,
		streamagg.WithWindow(window),
		streamagg.WithEpsilon(epsilon),
		streamagg.WithVariant(streamagg.VariantWorkEfficient))
	// Count-min sketch for point queries.
	mustAdd("sketch", streamagg.KindCountMin,
		streamagg.WithEpsilon(0.001), streamagg.WithDelta(0.01), streamagg.WithSeed(7))

	// Windowed aggregates over derived streams, built with the same
	// options API: a bit stream ("is this item the hottest item 0?") and
	// a bounded value stream (synthetic "bytes per packet").
	a, err := streamagg.New(streamagg.KindBasicCounter,
		streamagg.WithWindow(window), streamagg.WithEpsilon(epsilon))
	if err != nil {
		log.Fatal(err)
	}
	bc := a.(*streamagg.BasicCounter)
	a, err = streamagg.New(streamagg.KindWindowSum,
		streamagg.WithWindow(window), streamagg.WithMaxValue(1500), streamagg.WithEpsilon(epsilon))
	if err != nil {
		log.Fatal(err)
	}
	ws := a.(*streamagg.WindowSum)

	for b := 0; b < batches; b++ {
		items := make([]uint64, batchSize)
		bits := make([]bool, batchSize)
		sizes := make([]uint64, batchSize)
		for i := range items {
			items[i] = zipf.Uint64()
			bits[i] = items[i] == 0
			sizes[i] = 40 + uint64(rng.Intn(1460))
		}
		if err := pipe.ProcessBatch(items); err != nil {
			log.Fatal(err)
		}
		bc.ProcessBits(bits)
		if err := ws.ProcessBatch(sizes); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("stream length: %d items across %d minibatches into %d pipeline aggregates %v\n\n",
		pipe.StreamLen(), batches, pipe.Len(), pipe.Names())

	fmt.Println("top-5 items over the whole stream (Misra-Gries):")
	top, err := pipe.TopK("trending", 5)
	if err != nil {
		log.Fatal(err)
	}
	for _, ic := range top {
		fmt.Printf("  item %-6d est. count %d\n", ic.Item, ic.Count)
	}

	fmt.Printf("\nheavy hitters (phi=0.05) in the last %d items:\n", window)
	hh, err := pipe.HeavyHitters("recent", 0.05)
	if err != nil {
		log.Fatal(err)
	}
	for _, ic := range hh {
		fmt.Printf("  item %-6d est. window count %d\n", ic.Item, ic.Count)
	}

	cm0, err := pipe.Estimate("sketch", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncount-min point query for item 0: %d\n", cm0)

	fmt.Printf("occurrences of item 0 in the last %d items (basic counting): %d\n",
		window, bc.Estimate())
	fmt.Printf("sum of packet sizes over the last %d packets: %d bytes (~%.0f avg)\n",
		window, ws.Estimate(), float64(ws.Estimate())/float64(window))

	fmt.Printf("\nspace: pipeline=%d, basic=%d, sum=%d words\n",
		pipe.SpaceWords(), bc.SpaceWords(), ws.SpaceWords())
}
