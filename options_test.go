package streamagg

import (
	"errors"
	"testing"
)

// Every option validator rejects out-of-range values with ErrBadParam.
func TestOptionValueValidation(t *testing.T) {
	cases := []struct {
		name string
		kind Kind
		opt  Option
	}{
		{"window zero", KindSlidingFreq, WithWindow(0)},
		{"window negative", KindSlidingFreq, WithWindow(-5)},
		{"epsilon zero", KindFreq, WithEpsilon(0)},
		{"epsilon negative", KindFreq, WithEpsilon(-0.1)},
		{"epsilon above one", KindFreq, WithEpsilon(1.5)},
		{"delta zero", KindCountMin, WithDelta(0)},
		{"delta one", KindCountMin, WithDelta(1)},
		{"delta above one", KindCountMin, WithDelta(2)},
		{"bits zero", KindCountMinRange, WithUniverseBits(0)},
		{"bits sixty-four", KindCountMinRange, WithUniverseBits(64)},
		{"variant unknown", KindSlidingFreq, WithVariant(SlidingVariant(9))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.kind, tc.opt); !errors.Is(err, ErrBadParam) {
				t.Fatalf("New(%s, %s) = %v, want ErrBadParam", tc.kind, tc.name, err)
			}
		})
	}
}

// Options that do not apply to a kind are rejected, not silently
// ignored.
func TestOptionApplicability(t *testing.T) {
	cases := []struct {
		name string
		kind Kind
		opt  Option
	}{
		{"window on freq", KindFreq, WithWindow(10)},
		{"window on count-min", KindCountMin, WithWindow(10)},
		{"variant on count-min", KindCountMin, WithVariant(VariantBasic)},
		{"variant on basic-counter", KindBasicCounter, WithVariant(VariantBasic)},
		{"delta on sliding-freq", KindSlidingFreq, WithDelta(0.1)},
		{"delta on basic-counter", KindBasicCounter, WithDelta(0.1)},
		{"seed on freq", KindFreq, WithSeed(3)},
		{"seed on window-sum", KindWindowSum, WithSeed(3)},
		{"max-value on basic-counter", KindBasicCounter, WithMaxValue(100)},
		{"max-value on count-sketch", KindCountSketch, WithMaxValue(100)},
		{"bits on count-min", KindCountMin, WithUniverseBits(12)},
		{"bits on count-sketch", KindCountSketch, WithUniverseBits(12)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := []Option{tc.opt}
			// Satisfy the kind's own requirements so only the
			// inapplicable option can fail.
			switch tc.kind {
			case KindBasicCounter:
				opts = append(opts, WithWindow(10))
			case KindWindowSum:
				opts = append(opts, WithWindow(10), WithMaxValue(5))
			case KindSlidingFreq:
				opts = append(opts, WithWindow(10))
			case KindCountMinRange:
				opts = append(opts, WithUniverseBits(12))
			}
			if _, err := New(tc.kind, opts...); !errors.Is(err, ErrBadParam) {
				t.Fatalf("New(%s, %s) = %v, want ErrBadParam", tc.kind, tc.name, err)
			}
		})
	}
}

// Missing required options are rejected per kind.
func TestOptionRequired(t *testing.T) {
	cases := []struct {
		name string
		kind Kind
		opts []Option
	}{
		{"basic-counter without window", KindBasicCounter, nil},
		{"window-sum without window", KindWindowSum, []Option{WithMaxValue(5)}},
		{"window-sum without max-value", KindWindowSum, []Option{WithWindow(10)}},
		{"sliding-freq without window", KindSlidingFreq, nil},
		{"count-min-range without bits", KindCountMinRange, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.kind, tc.opts...); !errors.Is(err, ErrBadParam) {
				t.Fatalf("New(%s) = %v, want ErrBadParam", tc.kind, err)
			}
		})
	}
}

func TestNewUnknownKind(t *testing.T) {
	if _, err := New(Kind("bloom-filter")); !errors.Is(err, ErrBadParam) {
		t.Fatalf("unknown kind accepted: %v", err)
	}
}

// New returns the right concrete type, self-reporting its kind, for
// every aggregate.
func TestNewAllKinds(t *testing.T) {
	cases := []struct {
		kind Kind
		opts []Option
	}{
		{KindBasicCounter, []Option{WithWindow(1 << 10), WithEpsilon(0.1)}},
		{KindWindowSum, []Option{WithWindow(1 << 10), WithMaxValue(255)}},
		{KindFreq, nil},
		{KindSlidingFreq, []Option{WithWindow(1 << 10), WithVariant(VariantSpaceEfficient)}},
		{KindCountMin, []Option{WithEpsilon(0.001), WithDelta(0.01), WithSeed(7)}},
		{KindCountMinRange, []Option{WithUniverseBits(12)}},
		{KindCountSketch, []Option{WithSeed(5)}},
	}
	for _, tc := range cases {
		t.Run(string(tc.kind), func(t *testing.T) {
			agg, err := New(tc.kind, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if agg.Kind() != tc.kind {
				t.Fatalf("Kind() = %s, want %s", agg.Kind(), tc.kind)
			}
			if err := agg.ProcessBatch([]uint64{1, 2, 3}); err != nil {
				t.Fatal(err)
			}
			if agg.StreamLen() != 3 {
				t.Fatalf("StreamLen = %d, want 3", agg.StreamLen())
			}
			if agg.SpaceWords() <= 0 {
				t.Fatal("SpaceWords not positive")
			}
		})
	}
}

// The thin legacy constructors still route through the central
// validation.
func TestLegacyConstructorsValidateCentrally(t *testing.T) {
	if _, err := NewFreqEstimator(0); !errors.Is(err, ErrBadParam) {
		t.Fatal("NewFreqEstimator(0) accepted")
	}
	if _, err := NewBasicCounter(0, 0.1); !errors.Is(err, ErrBadParam) {
		t.Fatal("NewBasicCounter(0, ·) accepted")
	}
	if _, err := NewSlidingFreqEstimator(10, 0.1, SlidingVariant(42)); !errors.Is(err, ErrBadParam) {
		t.Fatal("bad variant accepted")
	}
	if _, err := NewCountMinRange(64, 0.1, 0.1, 1); !errors.Is(err, ErrBadParam) {
		t.Fatal("bits=64 accepted")
	}
	sw, err := NewSlidingFreqEstimator(16, 0.25, VariantWorkEfficient)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Variant() != VariantWorkEfficient || sw.WindowSize() != 16 {
		t.Fatal("legacy constructor misconfigured the estimator")
	}
}
