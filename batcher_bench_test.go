package streamagg

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/workload"
)

// BenchmarkE13IngestorThroughput measures the serving layer's async
// minibatcher (experiment E13): request-sized PutBatch calls coalesced
// into minibatches at different flush thresholds, against the direct
// synchronous ProcessBatch baseline.
func BenchmarkE13IngestorThroughput(b *testing.B) {
	const chunk = 256 // request-sized producer batches
	stream := workload.Zipf(83, 1<<18, 1.1, 1<<16)
	chunks := workload.Batches(stream, chunk)

	b.Run("direct-sync", func(b *testing.B) {
		agg, err := New(KindCountMin, WithEpsilon(1e-4), WithSeed(7))
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(chunk * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := agg.ProcessBatch(chunks[i%len(chunks)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, batchSize := range []int{1024, 8192, 65536} {
		b.Run(fmt.Sprintf("ingestor-batch%d", batchSize), func(b *testing.B) {
			agg, err := New(KindCountMin, WithEpsilon(1e-4), WithSeed(7))
			if err != nil {
				b.Fatal(err)
			}
			in, err := NewIngestor(agg,
				WithBatchSize(batchSize), WithMaxLatency(time.Millisecond),
				WithQueueCap(4*batchSize+chunk))
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(chunk * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.PutBatch(chunks[i%len(chunks)]); err != nil {
					b.Fatal(err)
				}
			}
			if err := in.Flush(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := in.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkIngestorPut measures the single-update hot path (the
// per-item enqueue cost a serving handler pays).
func BenchmarkIngestorPut(b *testing.B) {
	for _, policy := range []Backpressure{BackpressureBlock, BackpressureDrop} {
		b.Run(policy.String(), func(b *testing.B) {
			agg, err := New(KindCountMin, WithEpsilon(1e-3), WithSeed(7))
			if err != nil {
				b.Fatal(err)
			}
			in, err := NewIngestor(agg,
				WithBatchSize(8192), WithMaxLatency(time.Millisecond),
				WithBackpressure(policy))
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := in.Put(uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := in.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
