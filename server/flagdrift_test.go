package server

// Flag-help drift guard: every RunConfig field must stay reachable from
// both front ends — a documented flag.* registration in cmd/aggserve and
// a read in cmd/streamtool's runServe. The field→flag table is explicit
// so adding a RunConfig field fails this test until both commands (and
// the table) are updated.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// runConfigFlags maps each RunConfig field to its command-line flag
// name. An empty name marks a field that is deliberately not a flag.
var runConfigFlags = map[string]string{
	"Addr":          "addr",
	"Specs":         "agg",
	"BatchSize":     "batch",
	"MaxLatency":    "latency",
	"QueueCap":      "queue",
	"Backpressure":  "backpressure",
	"DataDir":       "data-dir",
	"Fsync":         "fsync",
	"SnapshotEvery": "snapshot-every",
	"NoMetrics":     "metrics",
	"TraceSample":   "trace-sample",
	"DebugAddr":     "debug-addr",
	"PushTo":        "push-to",
	"PushEvery":     "push-every",
	"NodeID":        "node-id",
	"PushMode":      "push-mode",
	"Logger":        "", // process wiring, not configuration
}

func TestRunConfigFlagTableComplete(t *testing.T) {
	rc := reflect.TypeOf(RunConfig{})
	seen := map[string]bool{}
	for i := 0; i < rc.NumField(); i++ {
		name := rc.Field(i).Name
		seen[name] = true
		if _, ok := runConfigFlags[name]; !ok {
			t.Errorf("RunConfig.%s has no entry in runConfigFlags; add the flag to cmd/aggserve and cmd/streamtool, then record it here", name)
		}
	}
	for name := range runConfigFlags {
		if !seen[name] {
			t.Errorf("runConfigFlags lists %s, which is no longer a RunConfig field", name)
		}
	}
}

func parseMain(t *testing.T, rel string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join("..", "cmd", rel, "main.go"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func strLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	return s, err == nil
}

// aggserveFlags collects the flags main registers on the flag package,
// mapped to their usage strings.
func aggserveFlags(t *testing.T) map[string]string {
	t.Helper()
	_, f := parseMain(t, "aggserve")
	flags := map[string]string{}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != "flag" || len(call.Args) < 2 {
			return true
		}
		name, ok := strLit(call.Args[0])
		if !ok {
			return true
		}
		// flag.Func(name, usage, fn); everything else is (name, def, usage).
		usageArg := call.Args[len(call.Args)-1]
		if sel.Sel.Name == "Func" {
			usageArg = call.Args[1]
		}
		usage, _ := strLit(usageArg)
		flags[name] = usage
		return true
	})
	return flags
}

// streamtoolServeFlags collects the flag names runServe reads from the
// parsed -name value map: f.str/f.int/f.float calls and f["name"]
// index expressions.
func streamtoolServeFlags(t *testing.T) map[string]bool {
	t.Helper()
	_, f := parseMain(t, "streamtool")
	var serve *ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "runServe" {
			serve = fd
		}
	}
	if serve == nil {
		t.Fatal("cmd/streamtool/main.go has no runServe")
	}
	names := map[string]bool{}
	ast.Inspect(serve.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || len(n.Args) == 0 {
				return true
			}
			switch sel.Sel.Name {
			case "str", "int", "float":
				if name, ok := strLit(n.Args[0]); ok {
					names[name] = true
				}
			}
		case *ast.IndexExpr:
			if name, ok := strLit(n.Index); ok {
				names[name] = true
			}
		}
		return true
	})
	return names
}

func TestAggserveDocumentsEveryRunConfigFlag(t *testing.T) {
	flags := aggserveFlags(t)
	for field, name := range runConfigFlags {
		if name == "" {
			continue
		}
		usage, ok := flags[name]
		if !ok {
			t.Errorf("RunConfig.%s: cmd/aggserve does not register -%s", field, name)
			continue
		}
		if strings.TrimSpace(usage) == "" {
			t.Errorf("RunConfig.%s: cmd/aggserve flag -%s has no usage string", field, name)
		}
	}
}

func TestStreamtoolServeReadsEveryRunConfigFlag(t *testing.T) {
	names := streamtoolServeFlags(t)
	for field, name := range runConfigFlags {
		if name == "" {
			continue
		}
		if !names[name] {
			t.Errorf("RunConfig.%s: streamtool serve does not read -%s", field, name)
		}
	}
}
