package server

// Crash-recovery end-to-end drill: a real aggserve-equivalent child
// process (this test binary re-exec'ed into runCrashRecoveryChild) is
// SIGKILLed mid-ingest — no drain, no shutdown snapshot — and restarted
// on the same -data-dir. Every batch the dead server durably
// acknowledged (fsync=always + sync ingest) must be reflected in the
// restarted server's answers, which are checked against a directly-fed
// mirror pipeline across all six query verbs. Because the WAL logs whole
// minibatches, replay reproduces the live run's batch boundaries and the
// recovered answers match the mirror exactly — well inside the paper's
// ε-bounds, which is the contract the assertion encodes.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"testing"
	"time"

	streamagg "repro"
)

// recoverySpecs cover all six query verbs: value (counter), estimate
// (count-min), heavyhitters + topk (freq), rangecount + quantile
// (count-min-range). Items stay inside the 2^16 universe.
var recoverySpecs = []string{
	"cnt=counter,window=100000",
	"hot=freq,eps=0.005",
	"sketch=count-min,eps=0.001,seed=7",
	"dist=count-min-range,bits=16",
}

// TestMain lets the test binary double as the crash-drill server child.
func TestMain(m *testing.M) {
	if os.Getenv("AGGSERVE_CHILD") == "1" {
		runCrashRecoveryChild()
		return
	}
	os.Exit(m.Run())
}

// runCrashRecoveryChild is the process the drill SIGKILLs: a durable
// server with fsync=always, never shut down gracefully.
func runCrashRecoveryChild() {
	err := Run(context.Background(), RunConfig{
		Addr:       os.Getenv("AGGSERVE_ADDR"),
		Specs:      recoverySpecs,
		MaxLatency: -1,
		DataDir:    os.Getenv("AGGSERVE_DATA_DIR"),
		Fsync:      "always",
	})
	fmt.Fprintln(os.Stderr, "child exited:", err)
	os.Exit(1)
}

// crashBatch generates the deterministic skewed stream: batch b is the
// same bytes on every call, so the mirror can re-derive exactly what the
// server accepted.
func crashBatch(b int) []uint64 {
	const per = 500
	x := uint64(b)*0x9e3779b97f4a7c15 + 1
	items := make([]uint64, per)
	for i := range items {
		x = x*6364136223846793005 + 1442695040888963407
		v := x >> 33
		if v%4 != 0 {
			items[i] = v % 50 // heavy keys
		} else {
			items[i] = v % 60000
		}
	}
	return items
}

func startChild(t *testing.T, addr, dataDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		"AGGSERVE_CHILD=1", "AGGSERVE_ADDR="+addr, "AGGSERVE_DATA_DIR="+dataDir)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting child server: %v", err)
	}
	base := "http://" + addr
	for i := 0; i < 200; i++ {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			return cmd
		}
		time.Sleep(25 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatal("child server never became healthy")
	return nil
}

// postBatchSync posts one batch with sync:true; a 200 means the batch is
// applied AND on stable storage (fsync=always logs before applying).
func postBatchSync(base string, items []uint64) error {
	body, _ := json.Marshal(map[string]any{"items": items, "sync": true})
	resp, err := http.Post(base+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ingest status %d", resp.StatusCode)
	}
	return nil
}

func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, b)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return m
}

func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	dataDir := t.TempDir()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	base := "http://" + addr

	// Phase 1: ingest with sync acknowledgements, then SIGKILL with a
	// request in flight.
	child := startChild(t, addr, dataDir)
	acked := 0
	killed := make(chan struct{})
	for b := 0; b < 60; b++ {
		if b == 12 {
			// From here the kill races the remaining requests — the
			// batch in flight when SIGKILL lands is the indeterminate
			// one recovery must classify via the WAL.
			go func() {
				time.Sleep(3 * time.Millisecond)
				child.Process.Kill()
				close(killed)
			}()
		}
		if err := postBatchSync(base, crashBatch(b)); err != nil {
			break
		}
		acked++
	}
	<-killed
	child.Wait()
	if acked < 12 {
		t.Fatalf("only %d batches acknowledged before the kill", acked)
	}

	// Phase 2: restart on the same data directory.
	child2 := startChild(t, addr, dataDir)
	defer func() {
		child2.Process.Kill()
		child2.Wait()
	}()

	stats := getJSON(t, base+"/v1/stats")
	streamLen := int64(stats["stream_len"].(float64))
	if streamLen%500 != 0 {
		t.Fatalf("recovered stream length %d is not whole batches: minibatch atomicity violated", streamLen)
	}
	applied := int(streamLen / 500)
	// Durably acknowledged => recovered. The unacked in-flight batch may
	// legitimately have made it to the WAL before the kill.
	if applied < acked || applied > acked+1 {
		t.Fatalf("recovered %d batches, acknowledged %d", applied, acked)
	}
	pstats := getJSON(t, base+"/v1/persist/stats")
	if pstats["last_seq"].(float64) < float64(applied) {
		t.Fatalf("persist stats after recovery: %+v", pstats)
	}

	// Mirror: the same batches fed directly at the same boundaries.
	mirror := streamagg.NewPipeline()
	if err := AddSpecs(mirror, recoverySpecs); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < applied; b++ {
		if err := mirror.ProcessBatch(crashBatch(b)); err != nil {
			t.Fatal(err)
		}
	}

	// Six verbs against the mirror.
	for _, key := range []uint64{0, 1, 7, 49, 1000, 59999} {
		want, err := mirror.Estimate("sketch", key)
		if err != nil {
			t.Fatal(err)
		}
		got := getJSON(t, fmt.Sprintf("%s/v1/sketch/estimate?item=%d", base, key))
		if int64(got["estimate"].(float64)) != want {
			t.Fatalf("estimate(%d): server %v, mirror %d", key, got["estimate"], want)
		}
	}
	wantVal, err := mirror.Value("cnt")
	if err != nil {
		t.Fatal(err)
	}
	if got := getJSON(t, base+"/v1/cnt/value"); int64(got["value"].(float64)) != wantVal {
		t.Fatalf("value: server %v, mirror %d", got["value"], wantVal)
	}
	checkItems := func(verb string, want []streamagg.ItemCount) {
		t.Helper()
		got := getJSON(t, base+verb)
		items := got["items"].([]any)
		if len(items) != len(want) {
			t.Fatalf("%s: server returned %d items, mirror %d", verb, len(items), len(want))
		}
		for i, raw := range items {
			ic := raw.(map[string]any)
			if uint64(ic["item"].(float64)) != want[i].Item || int64(ic["count"].(float64)) != want[i].Count {
				t.Fatalf("%s[%d]: server %v, mirror %+v", verb, i, ic, want[i])
			}
		}
	}
	wantHH, err := mirror.HeavyHitters("hot", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	checkItems("/v1/hot/heavyhitters?phi=0.02", wantHH)
	wantTop, err := mirror.TopK("hot", 10)
	if err != nil {
		t.Fatal(err)
	}
	checkItems("/v1/hot/topk?k=10", wantTop)
	wantRange, err := mirror.RangeCount("dist", 0, 49)
	if err != nil {
		t.Fatal(err)
	}
	if got := getJSON(t, base+"/v1/dist/rangecount?lo=0&hi=49"); int64(got["count"].(float64)) != wantRange {
		t.Fatalf("rangecount: server %v, mirror %d", got["count"], wantRange)
	}
	wantQ, err := mirror.Quantile("dist", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if got := getJSON(t, base+"/v1/dist/quantile?q=0.9"); uint64(got["quantile"].(float64)) != wantQ {
		t.Fatalf("quantile: server %v, mirror %d", got["quantile"], wantQ)
	}
}

// TestPersistStatsEndpoint checks the endpoint's both modes without
// child processes: 404 when durability is off, live counters when on.
func TestPersistStatsEndpoint(t *testing.T) {
	pipe := streamagg.NewPipeline()
	if err := AddSpecs(pipe, []string{"hot=freq,eps=0.01"}); err != nil {
		t.Fatal(err)
	}
	srv, err := New(pipe)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	req, _ := http.NewRequest("GET", "/v1/persist/stats", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("without durability: status %d", rec.Code)
	}

	pipe2 := streamagg.NewPipeline()
	if err := AddSpecs(pipe2, []string{"hot=freq,eps=0.01"}); err != nil {
		t.Fatal(err)
	}
	srv2, err := New(pipe2, streamagg.WithDataDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown(context.Background())
	if _, err := srv2.Ingestor().PutBatch([]uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := srv2.Ingestor().Flush(); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	srv2.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("with durability: status %d: %s", rec.Code, rec.Body.String())
	}
	var st map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st["fsync"] != "always" || st["appended_records"].(float64) < 1 {
		t.Fatalf("persist stats: %v", st)
	}
}
