package server

// HTTP-layer observability: every route is wrapped in an instrument
// middleware that tracks in-flight requests, per-handler latency
// histograms, and status-class counters; the pipeline's per-aggregate
// stream lengths and the Sharded merge-cache counters are exported as
// render-time callbacks. Everything lands in the same registry the
// Ingestor and the persist store publish to, so GET /metrics exposes
// all four layers — aggregates, Sharded, Ingestor, WAL — in one scrape.

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"time"

	streamagg "repro"
	"repro/metrics"
	"repro/trace"
)

// queryVerbs are the /v1/{agg}/{verb} routes, each its own latency
// series; anything else under the wildcard rolls up into query_other.
var queryVerbs = []string{"estimate", "value", "heavyhitters", "topk", "rangecount", "quantile"}

// instrumentedHandlers lists every label the middleware may emit, so
// all series exist from the first scrape (no lock is ever taken on the
// request path to create one lazily).
var instrumentedHandlers = func() []string {
	hs := []string{"ingest", "flush", "checkpoint", "restore", "merge", "stats", "persist_stats", "healthz", "readyz", "query_other"}
	for _, v := range queryVerbs {
		hs = append(hs, "query_"+v)
	}
	return hs
}()

var statusClasses = []string{"1xx", "2xx", "3xx", "4xx", "5xx"}

type serverMetrics struct {
	inFlight *metrics.Gauge
	latency  map[string]*metrics.Histogram
	requests map[string]*metrics.Counter // key: handler + "|" + class
	spanName map[string]string           // label -> "http.<label>", precomputed (no per-request concat)
}

// newServerMetrics pre-creates the HTTP instruments and registers the
// pipeline-layer callbacks on reg.
func newServerMetrics(reg *metrics.Registry, pipe *streamagg.Pipeline, start time.Time) *serverMetrics {
	m := &serverMetrics{
		inFlight: reg.Gauge("streamagg_http_in_flight_requests",
			"Requests currently being served."),
		latency:  make(map[string]*metrics.Histogram, len(instrumentedHandlers)),
		requests: make(map[string]*metrics.Counter, len(instrumentedHandlers)*len(statusClasses)),
		spanName: make(map[string]string, len(instrumentedHandlers)),
	}
	for _, h := range instrumentedHandlers {
		m.spanName[h] = "http." + h
		m.latency[h] = reg.Histogram("streamagg_http_request_seconds",
			"Request latency by handler.", metrics.UnitSeconds, "handler", h)
		for _, c := range statusClasses {
			m.requests[h+"|"+c] = reg.Counter("streamagg_http_requests_total",
				"Requests by handler and status class.", "handler", h, "code", c)
		}
	}
	reg.GaugeFunc("streamagg_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(start).Seconds() })
	// Build and runtime identity, following the Prometheus conventions:
	// a constant-1 info gauge carrying version labels, the canonical
	// process start time, and a live goroutine count.
	version, goversion := "unknown", runtime.Version()
	if info, ok := debug.ReadBuildInfo(); ok {
		if info.Main.Version != "" {
			version = info.Main.Version
		}
		if info.GoVersion != "" {
			goversion = info.GoVersion
		}
	}
	reg.Gauge("app_build_info", "Build metadata; the value is always 1.",
		//agglint:ignore metriclabel one value per process lifetime, read from the build info
		"version", version, "goversion", goversion).Set(1)
	reg.Gauge("process_start_time_seconds", "Unix time the process started.").
		Set(start.Unix())
	reg.GaugeFunc("go_goroutines", "Goroutines currently live.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	// The callbacks resolve the aggregate by name at render time rather
	// than capturing the instance: a restore rebuilds the pipeline's
	// aggregates, and a captured pointer would keep reporting the dead
	// pre-restore object forever.
	for _, name := range pipe.Names() {
		agg, ok := pipe.Get(name)
		if !ok {
			continue
		}
		reg.GaugeFunc("streamagg_aggregate_stream_length",
			"Stream elements ingested per aggregate.",
			func() float64 {
				if a, ok := pipe.Get(name); ok {
					return float64(a.StreamLen())
				}
				return 0
			}, "aggregate", name) //agglint:ignore metriclabel aggregate names are fixed at startup by the -agg config, not request-derived
		reg.GaugeFunc("streamagg_aggregate_space_words",
			"Memory footprint per aggregate in 64-bit words.",
			func() float64 {
				if a, ok := pipe.Get(name); ok {
					return float64(a.SpaceWords())
				}
				return 0
			}, "aggregate", name) //agglint:ignore metriclabel aggregate names are fixed at startup by the -agg config, not request-derived
		if _, ok := agg.(*streamagg.Sharded); ok {
			cache := func(pick func(hits, misses int64) int64) func() int64 {
				return func() int64 {
					if a, ok := pipe.Get(name); ok {
						if sh, ok := a.(*streamagg.Sharded); ok {
							return pick(sh.MergeCacheStats())
						}
					}
					return 0
				}
			}
			reg.CounterFunc("streamagg_sharded_merge_cache_hits_total",
				"Global-summary queries served from the cached merged view.",
				//agglint:ignore metriclabel aggregate names are fixed at startup by the -agg config, not request-derived
				cache(func(h, _ int64) int64 { return h }), "aggregate", name)
			reg.CounterFunc("streamagg_sharded_merge_cache_misses_total",
				"Global-summary queries that rebuilt the merged view.",
				//agglint:ignore metriclabel aggregate names are fixed at startup by the -agg config, not request-derived
				cache(func(_, m int64) int64 { return m }), "aggregate", name)
		}
	}
	return m
}

// statusWriter captures the response code for the status-class counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler under a fixed label ("ingest", "query",
// ...); the query wildcard resolves to its verb per request. The
// middleware only touches pre-created instruments — atomic adds, no
// locks — so it adds nothing measurable to request cost. It is also
// the tracing entry point: an incoming W3C traceparent joins the
// caller's trace, otherwise the local sampler decides; on the
// unsampled path the span is nil and every call below is free.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		label := name
		if name == "query" {
			label = "query_" + r.PathValue("verb")
			if _, ok := s.m.latency[label]; !ok {
				label = "query_other"
			}
		}
		parent, _ := trace.ParseTraceparent(r.Header.Get("traceparent"))
		span := s.tracer.Start(s.m.spanName[label], parent)
		if span != nil {
			span.SetAttr("method", r.Method)
			span.SetAttr("path", r.URL.Path)
			r = r.WithContext(trace.ContextWithSpan(r.Context(), span))
		}
		s.m.inFlight.Add(1)
		defer s.m.inFlight.Add(-1)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sw, r)
		elapsed := time.Since(start)
		span.SetInt("status", int64(sw.code))
		span.End()
		s.m.latency[label].ObserveDurationExemplar(elapsed, span.TraceIDString())
		class := sw.code / 100
		if class < 1 || class > 5 {
			class = 5
		}
		s.m.requests[label+"|"+statusClasses[class-1]].Inc()
	}
}

// handleMetrics serves the Prometheus exposition; 404 when disabled
// (-metrics=false) so a probe can tell "off" from "empty".
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !s.metricsOn.Load() {
		http.NotFound(w, r)
		return
	}
	s.reg.Handler().ServeHTTP(w, r)
}
