package server

// Run is the shared serve loop behind cmd/aggserve and the streamtool
// serve subcommand: build a pipeline from aggregate specs, wrap it in a
// Server with the given batching and durability knobs (recovering from
// the data directory when one is set), serve until ctx is canceled (or
// the listener fails), then shut down gracefully — in-flight requests
// finish, the ingest queue drains into the aggregates, and a durable
// server writes its shutdown snapshot.

import (
	"context"
	"time"

	streamagg "repro"
)

// drainTimeout bounds graceful shutdown once ctx is canceled.
const drainTimeout = 15 * time.Second

// RunConfig carries the serving flags shared by both binaries.
type RunConfig struct {
	// Addr is the listen address (e.g. ":8080").
	Addr string
	// Specs are aggregate specs in the name=kind[,opt=value]... syntax.
	Specs []string

	// Batching knobs; zero values mean "library default", except
	// MaxLatency whose unset sentinel is negative (0 is meaningful).
	BatchSize    int
	MaxLatency   time.Duration
	QueueCap     int
	Backpressure string

	// Durability knobs: an empty DataDir disables persistence; Fsync is
	// "always", "interval", or "never"; SnapshotEvery is in minibatches.
	DataDir       string
	Fsync         string
	SnapshotEvery int

	// NoMetrics disables the GET /metrics exposition endpoint (the
	// zero value serves it; both binaries map -metrics=false here).
	NoMetrics bool

	// Logf receives progress lines (pass log.Printf); nil silences them.
	Logf func(format string, args ...any)
}

// options assembles the Ingestor option list from the flag values.
func (cfg RunConfig) options() ([]streamagg.Option, error) {
	opts, err := IngestOptions(cfg.BatchSize, cfg.MaxLatency, cfg.QueueCap, cfg.Backpressure)
	if err != nil {
		return nil, err
	}
	durOpts, err := DurabilityOptions(cfg.DataDir, cfg.Fsync, cfg.SnapshotEvery)
	if err != nil {
		return nil, err
	}
	return append(opts, durOpts...), nil
}

// Run blocks until ctx is canceled or serving fails.
func Run(ctx context.Context, cfg RunConfig) error {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	pipe := streamagg.NewPipeline()
	if err := AddSpecs(pipe, cfg.Specs); err != nil {
		return err
	}
	opts, err := cfg.options()
	if err != nil {
		return err
	}
	srv, err := New(pipe, opts...)
	if err != nil {
		return err
	}
	srv.SetMetricsEnabled(!cfg.NoMetrics)
	if st := srv.Ingestor().Persist(); st != nil {
		s := st.Stats()
		logf("recovered from %s: snapshot seq %d + %d replayed batches (stream length %d, fsync=%s)",
			s.Dir, s.SnapshotSeq, s.ReplayedRecords, pipe.StreamLen(), s.Fsync)
	}

	errCh := make(chan error, 1)
	go func() {
		logf("serving on %s (%d aggregates)", cfg.Addr, pipe.Len())
		errCh <- srv.ListenAndServe(cfg.Addr)
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		logf("shutting down: draining ingest queue")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		st := srv.Ingestor().Stats()
		logf("drained %d items in %d batches", st.Processed, st.Batches)
		return nil
	}
}
