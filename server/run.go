package server

// Run is the shared serve loop behind cmd/aggserve and the streamtool
// serve subcommand: build a pipeline from aggregate specs, wrap it in a
// Server with the given batching and durability knobs (recovering from
// the data directory when one is set), serve until ctx is canceled (or
// the listener fails), then shut down gracefully — in-flight requests
// finish, the ingest queue drains into the aggregates, and a durable
// server writes its shutdown snapshot.

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"net/url"
	"strings"
	"time"

	streamagg "repro"
	"repro/federation"
)

// drainTimeout bounds graceful shutdown once ctx is canceled.
const drainTimeout = 15 * time.Second

// RunConfig carries the serving flags shared by both binaries.
type RunConfig struct {
	// Addr is the listen address (e.g. ":8080").
	Addr string
	// Specs are aggregate specs in the name=kind[,opt=value]... syntax.
	Specs []string

	// Batching knobs; zero values mean "library default", except
	// MaxLatency whose unset sentinel is negative (0 is meaningful).
	BatchSize    int
	MaxLatency   time.Duration
	QueueCap     int
	Backpressure string

	// Durability knobs: an empty DataDir disables persistence; Fsync is
	// "always", "interval", or "never"; SnapshotEvery is in minibatches.
	DataDir       string
	Fsync         string
	SnapshotEvery int

	// NoMetrics disables the GET /metrics exposition endpoint (the
	// zero value serves it; both binaries map -metrics=false here).
	NoMetrics bool

	// TraceSample is the root-span sampling probability in [0, 1] for
	// the server's tracer (0, the zero value, records nothing and costs
	// nothing). Sampled traces are served at GET /debug/traces.
	TraceSample float64

	// DebugAddr, when non-empty, serves net/http/pprof on its own
	// listener (e.g. "localhost:6060") — separate from Addr so the
	// profiling surface is never exposed where the data plane is.
	DebugAddr string

	// Federation push knobs: a non-empty PushTo turns this server into
	// an edge node that periodically ships its state to a root's
	// /v1/merge URL. NodeID must be stable and unique per edge
	// (required with PushTo); PushEvery defaults to 10s; PushMode is
	// "full" (default) or "delta".
	PushTo    string
	PushEvery time.Duration
	NodeID    string
	PushMode  string

	// Logger receives progress records; nil discards them.
	Logger *slog.Logger
}

// options assembles the Ingestor option list from the flag values.
func (cfg RunConfig) options() ([]streamagg.Option, error) {
	opts, err := IngestOptions(cfg.BatchSize, cfg.MaxLatency, cfg.QueueCap, cfg.Backpressure)
	if err != nil {
		return nil, err
	}
	durOpts, err := DurabilityOptions(cfg.DataDir, cfg.Fsync, cfg.SnapshotEvery)
	if err != nil {
		return nil, err
	}
	return append(opts, durOpts...), nil
}

// NormalizePushURL turns a -push-to value into a full merge URL:
// a bare host:port gets the http scheme and the /v1/merge path, a URL
// without a path gets /v1/merge appended, and a full URL passes
// through.
func NormalizePushURL(raw string) (string, error) {
	if !strings.Contains(raw, "://") {
		raw = "http://" + raw
	}
	u, err := url.Parse(raw)
	if err != nil || u.Host == "" {
		return "", fmt.Errorf("%w: push target %q", streamagg.ErrBadParam, raw)
	}
	if u.Path == "" || u.Path == "/" {
		u.Path = "/v1/merge"
	}
	return u.String(), nil
}

// pusherFor builds the federation Pusher for an edge server, or nil
// when cfg.PushTo is empty. The pusher shares the server's tracer and
// parents its push spans on the last sampled ingest, so a trace
// recorded at this edge continues through the root's merge.
func pusherFor(cfg RunConfig, srv *Server, logger *slog.Logger) (*federation.Pusher, error) {
	if cfg.PushTo == "" {
		return nil, nil
	}
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("%w: -push-to requires -node-id (a stable, unique edge identity)",
			streamagg.ErrBadParam)
	}
	target, err := NormalizePushURL(cfg.PushTo)
	if err != nil {
		return nil, err
	}
	modeStr := cfg.PushMode
	if modeStr == "" {
		modeStr = "full"
	}
	mode, err := federation.ParseMode(modeStr)
	if err != nil {
		return nil, err
	}
	return federation.NewPusher(federation.PusherConfig{
		URL:      target,
		Node:     cfg.NodeID,
		Source:   srv,
		Mode:     mode,
		Interval: cfg.PushEvery,
		Registry: srv.Metrics(),
		Logger:   logger,
		Tracer:   srv.Tracer(),
		Parent:   srv.LastIngestContext,
	})
}

// debugServer serves net/http/pprof on addr. The default mux is
// deliberately avoided: only the profiling routes exist here, and only
// on this listener.
func debugServer(addr string) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
}

// Run blocks until ctx is canceled or serving fails.
func Run(ctx context.Context, cfg RunConfig) error {
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	pipe := streamagg.NewPipeline()
	if err := AddSpecs(pipe, cfg.Specs); err != nil {
		return err
	}
	opts, err := cfg.options()
	if err != nil {
		return err
	}
	srv, err := New(pipe, opts...)
	if err != nil {
		return err
	}
	srv.SetMetricsEnabled(!cfg.NoMetrics)
	if cfg.TraceSample < 0 || cfg.TraceSample > 1 {
		return fmt.Errorf("%w: trace sample rate %v (want in [0, 1])",
			streamagg.ErrBadParam, cfg.TraceSample)
	}
	srv.Tracer().SetSampleRate(cfg.TraceSample)
	if cfg.TraceSample > 0 {
		logger.Info("tracing enabled", "sample_rate", cfg.TraceSample)
	}
	if st := srv.Ingestor().Persist(); st != nil {
		s := st.Stats()
		logger.Info("recovered",
			"dir", s.Dir, "snapshot_seq", s.SnapshotSeq, "replayed_batches", s.ReplayedRecords,
			"stream_len", pipe.StreamLen(), "fsync", s.Fsync)
	}
	if cfg.DebugAddr != "" {
		ds := debugServer(cfg.DebugAddr)
		go func() {
			logger.Info("debug listener (pprof) serving", "addr", cfg.DebugAddr)
			if err := ds.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("debug listener failed", "addr", cfg.DebugAddr, "err", err)
			}
		}()
		defer func() {
			closeCtx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			_ = ds.Shutdown(closeCtx)
		}()
	}
	pusher, err := pusherFor(cfg, srv, logger)
	if err != nil {
		return err
	}
	var pushDone chan struct{}
	if pusher != nil {
		pushDone = make(chan struct{})
		go func() {
			defer close(pushDone)
			logger.Info("pushing",
				"target", cfg.PushTo, "interval", pusher.Interval(), "node", cfg.NodeID,
				"mode", pusher.Mode().String(), "epoch", pusher.Epoch())
			_ = pusher.Run(ctx)
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("serving", "addr", cfg.Addr, "aggregates", pipe.Len())
		errCh <- srv.ListenAndServe(cfg.Addr)
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		if pusher != nil {
			// Final push before the ingestor closes: drain what is
			// queued so the capture includes it, then ship. Items a
			// client sneaks in between this and the listener shutdown
			// stay local (and, on a durable edge, are recovered and
			// pushed by the next process lifetime).
			<-pushDone
			finalCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
			if err := srv.Ingestor().Flush(); err != nil {
				logger.Warn("pre-push flush failed", "err", err)
			}
			if err := pusher.Final(finalCtx); err != nil {
				logger.Warn("final push failed", "err", err)
			} else {
				logger.Info("final push delivered")
			}
			cancel()
		}
		logger.Info("shutting down: draining ingest queue")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		st := srv.Ingestor().Stats()
		logger.Info("drained", "items", st.Processed, "batches", st.Batches)
		return nil
	}
}
