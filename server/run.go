package server

// Run is the shared serve loop behind cmd/aggserve and the streamtool
// serve subcommand: build a pipeline from aggregate specs, wrap it in a
// Server with the given batching knobs, serve until ctx is canceled (or
// the listener fails), then shut down gracefully — in-flight requests
// finish and the ingest queue drains into the aggregates.

import (
	"context"
	"time"

	streamagg "repro"
)

// drainTimeout bounds graceful shutdown once ctx is canceled.
const drainTimeout = 15 * time.Second

// Run blocks until ctx is canceled or serving fails. logf receives
// progress lines (pass log.Printf); nil silences them.
func Run(ctx context.Context, addr string, specs []string,
	batchSize int, maxLatency time.Duration, queueCap int, policy string,
	logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	pipe := streamagg.NewPipeline()
	if err := AddSpecs(pipe, specs); err != nil {
		return err
	}
	opts, err := IngestOptions(batchSize, maxLatency, queueCap, policy)
	if err != nil {
		return err
	}
	srv, err := New(pipe, opts...)
	if err != nil {
		return err
	}

	errCh := make(chan error, 1)
	go func() {
		logf("serving on %s (%d aggregates)", addr, pipe.Len())
		errCh <- srv.ListenAndServe(addr)
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		logf("shutting down: draining ingest queue")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		st := srv.Ingestor().Stats()
		logf("drained %d items in %d batches", st.Processed, st.Batches)
		return nil
	}
}
