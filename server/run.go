package server

// Run is the shared serve loop behind cmd/aggserve and the streamtool
// serve subcommand: build a pipeline from aggregate specs, wrap it in a
// Server with the given batching and durability knobs (recovering from
// the data directory when one is set), serve until ctx is canceled (or
// the listener fails), then shut down gracefully — in-flight requests
// finish, the ingest queue drains into the aggregates, and a durable
// server writes its shutdown snapshot.

import (
	"context"
	"fmt"
	"net/url"
	"strings"
	"time"

	streamagg "repro"
	"repro/federation"
)

// drainTimeout bounds graceful shutdown once ctx is canceled.
const drainTimeout = 15 * time.Second

// RunConfig carries the serving flags shared by both binaries.
type RunConfig struct {
	// Addr is the listen address (e.g. ":8080").
	Addr string
	// Specs are aggregate specs in the name=kind[,opt=value]... syntax.
	Specs []string

	// Batching knobs; zero values mean "library default", except
	// MaxLatency whose unset sentinel is negative (0 is meaningful).
	BatchSize    int
	MaxLatency   time.Duration
	QueueCap     int
	Backpressure string

	// Durability knobs: an empty DataDir disables persistence; Fsync is
	// "always", "interval", or "never"; SnapshotEvery is in minibatches.
	DataDir       string
	Fsync         string
	SnapshotEvery int

	// NoMetrics disables the GET /metrics exposition endpoint (the
	// zero value serves it; both binaries map -metrics=false here).
	NoMetrics bool

	// Federation push knobs: a non-empty PushTo turns this server into
	// an edge node that periodically ships its state to a root's
	// /v1/merge URL. NodeID must be stable and unique per edge
	// (required with PushTo); PushEvery defaults to 10s; PushMode is
	// "full" (default) or "delta".
	PushTo    string
	PushEvery time.Duration
	NodeID    string
	PushMode  string

	// Logf receives progress lines (pass log.Printf); nil silences them.
	Logf func(format string, args ...any)
}

// options assembles the Ingestor option list from the flag values.
func (cfg RunConfig) options() ([]streamagg.Option, error) {
	opts, err := IngestOptions(cfg.BatchSize, cfg.MaxLatency, cfg.QueueCap, cfg.Backpressure)
	if err != nil {
		return nil, err
	}
	durOpts, err := DurabilityOptions(cfg.DataDir, cfg.Fsync, cfg.SnapshotEvery)
	if err != nil {
		return nil, err
	}
	return append(opts, durOpts...), nil
}

// NormalizePushURL turns a -push-to value into a full merge URL:
// a bare host:port gets the http scheme and the /v1/merge path, a URL
// without a path gets /v1/merge appended, and a full URL passes
// through.
func NormalizePushURL(raw string) (string, error) {
	if !strings.Contains(raw, "://") {
		raw = "http://" + raw
	}
	u, err := url.Parse(raw)
	if err != nil || u.Host == "" {
		return "", fmt.Errorf("%w: push target %q", streamagg.ErrBadParam, raw)
	}
	if u.Path == "" || u.Path == "/" {
		u.Path = "/v1/merge"
	}
	return u.String(), nil
}

// pusherFor builds the federation Pusher for an edge server, or nil
// when cfg.PushTo is empty.
func pusherFor(cfg RunConfig, srv *Server, logf func(string, ...any)) (*federation.Pusher, error) {
	if cfg.PushTo == "" {
		return nil, nil
	}
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("%w: -push-to requires -node-id (a stable, unique edge identity)",
			streamagg.ErrBadParam)
	}
	target, err := NormalizePushURL(cfg.PushTo)
	if err != nil {
		return nil, err
	}
	modeStr := cfg.PushMode
	if modeStr == "" {
		modeStr = "full"
	}
	mode, err := federation.ParseMode(modeStr)
	if err != nil {
		return nil, err
	}
	return federation.NewPusher(federation.PusherConfig{
		URL:      target,
		Node:     cfg.NodeID,
		Source:   srv,
		Mode:     mode,
		Interval: cfg.PushEvery,
		Registry: srv.Metrics(),
		Logf:     logf,
	})
}

// Run blocks until ctx is canceled or serving fails.
func Run(ctx context.Context, cfg RunConfig) error {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	pipe := streamagg.NewPipeline()
	if err := AddSpecs(pipe, cfg.Specs); err != nil {
		return err
	}
	opts, err := cfg.options()
	if err != nil {
		return err
	}
	srv, err := New(pipe, opts...)
	if err != nil {
		return err
	}
	srv.SetMetricsEnabled(!cfg.NoMetrics)
	if st := srv.Ingestor().Persist(); st != nil {
		s := st.Stats()
		logf("recovered from %s: snapshot seq %d + %d replayed batches (stream length %d, fsync=%s)",
			s.Dir, s.SnapshotSeq, s.ReplayedRecords, pipe.StreamLen(), s.Fsync)
	}
	pusher, err := pusherFor(cfg, srv, logf)
	if err != nil {
		return err
	}
	var pushDone chan struct{}
	if pusher != nil {
		pushDone = make(chan struct{})
		go func() {
			defer close(pushDone)
			logf("pushing to %s every %v as node %q (mode %s, epoch %d)",
				cfg.PushTo, pusher.Interval(), cfg.NodeID, pusher.Mode(), pusher.Epoch())
			_ = pusher.Run(ctx)
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		logf("serving on %s (%d aggregates)", cfg.Addr, pipe.Len())
		errCh <- srv.ListenAndServe(cfg.Addr)
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		if pusher != nil {
			// Final push before the ingestor closes: drain what is
			// queued so the capture includes it, then ship. Items a
			// client sneaks in between this and the listener shutdown
			// stay local (and, on a durable edge, are recovered and
			// pushed by the next process lifetime).
			<-pushDone
			finalCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
			if err := srv.Ingestor().Flush(); err != nil {
				logf("pre-push flush: %v", err)
			}
			if err := pusher.Final(finalCtx); err != nil {
				logf("final push failed: %v", err)
			} else {
				logf("final push delivered")
			}
			cancel()
		}
		logf("shutting down: draining ingest queue")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		st := srv.Ingestor().Stats()
		logf("drained %d items in %d batches", st.Processed, st.Batches)
		return nil
	}
}
