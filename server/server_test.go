package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	streamagg "repro"
	"repro/internal/workload"
)

// testPipeline registers one aggregate of every kind behind the six
// query verbs. Items must fit the range sketch's 2^20 universe (which
// also bounds WindowSum values).
func testPipeline(t *testing.T) *streamagg.Pipeline {
	t.Helper()
	p := streamagg.NewPipeline()
	add := func(name string, kind streamagg.Kind, opts ...streamagg.Option) {
		t.Helper()
		if _, err := p.Add(name, kind, opts...); err != nil {
			t.Fatalf("Add(%s): %v", name, err)
		}
	}
	add("ones", streamagg.KindBasicCounter, streamagg.WithWindow(1<<16), streamagg.WithEpsilon(0.05))
	add("load", streamagg.KindWindowSum,
		streamagg.WithWindow(1<<16), streamagg.WithMaxValue(1<<20), streamagg.WithEpsilon(0.05))
	add("hot", streamagg.KindFreq, streamagg.WithEpsilon(0.005))
	add("recent", streamagg.KindSlidingFreq,
		streamagg.WithWindow(1<<15), streamagg.WithEpsilon(0.01))
	add("cm", streamagg.KindCountMin,
		streamagg.WithEpsilon(1e-3), streamagg.WithDelta(0.01), streamagg.WithSeed(7))
	add("dist", streamagg.KindCountMinRange,
		streamagg.WithUniverseBits(20), streamagg.WithEpsilon(0.002), streamagg.WithSeed(3))
	return p
}

// get decodes a JSON GET response, failing on non-2xx.
func get(t *testing.T, client *http.Client, url string, out any) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("GET %s: decoding %q: %v", url, body, err)
	}
}

func post(t *testing.T, client *http.Client, url, contentType string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := client.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// ingestSync POSTs one chunk with sync:true, so the chunk becomes
// exactly one minibatch at the sink — the boundary-deterministic mode
// the equivalence assertions need.
func ingestSync(t *testing.T, client *http.Client, base string, chunk []uint64) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"items": chunk, "sync": true})
	if err != nil {
		t.Fatal(err)
	}
	code, resp := post(t, client, base+"/v1/ingest", "application/json", body)
	if code != http.StatusOK {
		t.Fatalf("ingest: %d %s", code, resp)
	}
}

// queryAll captures every verb's answer over HTTP, typed loosely as the
// raw JSON for equality comparison.
func queryAll(t *testing.T, client *http.Client, base string, probes []uint64) map[string]json.RawMessage {
	t.Helper()
	out := map[string]json.RawMessage{}
	grab := func(key, url string) {
		t.Helper()
		resp, err := client.Get(base + url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
		}
		out[key] = body
	}
	for _, p := range probes {
		grab(fmt.Sprintf("estimate-hot-%d", p), fmt.Sprintf("/v1/hot/estimate?item=%d", p))
		grab(fmt.Sprintf("estimate-cm-%d", p), fmt.Sprintf("/v1/cm/estimate?item=%d", p))
		grab(fmt.Sprintf("estimate-recent-%d", p), fmt.Sprintf("/v1/recent/estimate?item=%d", p))
	}
	grab("value-ones", "/v1/ones/value")
	grab("value-load", "/v1/load/value")
	grab("hh-hot", "/v1/hot/heavyhitters?phi=0.01")
	grab("topk-hot", "/v1/hot/topk?k=10")
	grab("range-dist", "/v1/dist/rangecount?lo=0&hi=524288")
	grab("quantile-dist", "/v1/dist/quantile?q=0.5")
	grab("quantile-dist-99", "/v1/dist/quantile?q=0.99")
	return out
}

// TestServerEndToEnd is the acceptance drill: ingest >= 1M items through
// POST /v1/ingest, answer all six query verbs identically to a
// directly-fed Pipeline, checkpoint, diverge, restore, and re-verify.
func TestServerEndToEnd(t *testing.T) {
	pipe := testPipeline(t)
	mirror := testPipeline(t)
	srv, err := New(pipe,
		streamagg.WithBatchSize(1<<14), streamagg.WithMaxLatency(50*time.Millisecond),
		streamagg.WithQueueCap(1<<17))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	total := 1 << 20 // >= 1M items
	if testing.Short() {
		total = 1 << 18
	}
	const chunkSize = 1 << 14
	stream := workload.Zipf(71, total, 1.15, 1<<20)
	chunks := workload.Batches(stream, chunkSize)
	probes := []uint64{0, 1, 2, 17, 999, 1 << 19}

	for _, chunk := range chunks {
		ingestSync(t, client, ts.URL, chunk)
		if err := mirror.ProcessBatch(chunk); err != nil {
			t.Fatal(err)
		}
	}

	// All six verbs over HTTP must match the directly-fed mirror.
	answers := queryAll(t, client, ts.URL, probes)
	assertMatchesMirror(t, answers, mirror, probes)

	// Stats reflect the load.
	var stats struct {
		StreamLen  int64 `json:"stream_len"`
		Aggregates []struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
		} `json:"aggregates"`
		Ingest streamagg.IngestorStats `json:"ingest"`
	}
	get(t, client, ts.URL+"/v1/stats", &stats)
	if stats.StreamLen != int64(total) {
		t.Fatalf("stats stream_len = %d, want %d", stats.StreamLen, total)
	}
	if stats.Ingest.Enqueued != int64(total) || stats.Ingest.Processed != int64(total) {
		t.Fatalf("ingest stats: %+v", stats.Ingest)
	}
	if len(stats.Aggregates) != 6 {
		t.Fatalf("stats aggregates: %+v", stats.Aggregates)
	}

	// Checkpoint, push the state forward, restore, and the answers must
	// snap back exactly.
	code, ckpt := post(t, client, ts.URL+"/v1/checkpoint", "application/octet-stream", nil)
	if code != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", code, ckpt)
	}
	extra := workload.Batches(workload.Zipf(73, 4*chunkSize, 1.15, 1<<20), chunkSize)
	for _, chunk := range extra {
		ingestSync(t, client, ts.URL, chunk)
	}
	var flushResp struct {
		StreamLen int64 `json:"stream_len"`
	}
	get(t, client, ts.URL+"/v1/stats", &struct{}{}) // still serving
	if code, body := post(t, client, ts.URL+"/v1/restore", "application/octet-stream", ckpt); code != http.StatusOK {
		t.Fatalf("restore: %d %s", code, body)
	} else if err := json.Unmarshal(body, &flushResp); err != nil {
		t.Fatal(err)
	}
	if flushResp.StreamLen != int64(total) {
		t.Fatalf("restored stream_len = %d, want %d", flushResp.StreamLen, total)
	}
	restoredAnswers := queryAll(t, client, ts.URL, probes)
	for key, want := range answers {
		if !bytes.Equal(restoredAnswers[key], want) {
			t.Fatalf("%s diverged after restore: %s vs %s", key, restoredAnswers[key], want)
		}
	}

	// The restored server keeps serving: feed the extra chunks again,
	// mirror them directly, and re-verify equivalence end to end.
	for _, chunk := range extra {
		ingestSync(t, client, ts.URL, chunk)
		if err := mirror.ProcessBatch(chunk); err != nil {
			t.Fatal(err)
		}
	}
	assertMatchesMirror(t, queryAll(t, client, ts.URL, probes), mirror, probes)

	// Graceful shutdown drains and then refuses ingest.
	if err := srv.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]any{"items": []uint64{1}})
	if code, _ := post(t, client, ts.URL+"/v1/ingest", "application/json", body); code != http.StatusServiceUnavailable {
		t.Fatalf("ingest after shutdown: %d, want 503", code)
	}
}

// assertMatchesMirror re-derives every HTTP answer from the mirror
// pipeline and compares decoded values.
func assertMatchesMirror(t *testing.T, answers map[string]json.RawMessage, mirror *streamagg.Pipeline, probes []uint64) {
	t.Helper()
	decode := func(key string, out any) {
		t.Helper()
		if err := json.Unmarshal(answers[key], out); err != nil {
			t.Fatalf("%s: %v", key, err)
		}
	}
	for _, p := range probes {
		for _, agg := range []string{"hot", "cm", "recent"} {
			var got struct {
				Estimate int64 `json:"estimate"`
			}
			decode(fmt.Sprintf("estimate-%s-%d", agg, p), &got)
			want, err := mirror.Estimate(agg, p)
			if err != nil {
				t.Fatal(err)
			}
			if got.Estimate != want {
				t.Fatalf("%s estimate(%d) = %d over HTTP, %d direct", agg, p, got.Estimate, want)
			}
		}
	}
	for _, name := range []string{"ones", "load"} {
		var got struct {
			Value int64 `json:"value"`
		}
		decode("value-"+name, &got)
		want, err := mirror.Value(name)
		if err != nil {
			t.Fatal(err)
		}
		if got.Value != want {
			t.Fatalf("%s value = %d over HTTP, %d direct", name, got.Value, want)
		}
	}
	var hh struct {
		Items []struct {
			Item  uint64 `json:"item"`
			Count int64  `json:"count"`
		} `json:"items"`
	}
	decode("hh-hot", &hh)
	wantHH, err := mirror.HeavyHitters("hot", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(hh.Items) != len(wantHH) {
		t.Fatalf("heavy hitters: %d over HTTP, %d direct", len(hh.Items), len(wantHH))
	}
	for i := range wantHH {
		if hh.Items[i].Item != wantHH[i].Item || hh.Items[i].Count != wantHH[i].Count {
			t.Fatalf("heavy hitter %d: %+v over HTTP, %+v direct", i, hh.Items[i], wantHH[i])
		}
	}
	var topk struct {
		Items []struct {
			Item  uint64 `json:"item"`
			Count int64  `json:"count"`
		} `json:"items"`
	}
	decode("topk-hot", &topk)
	wantTop, err := mirror.TopK("hot", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(topk.Items) != len(wantTop) {
		t.Fatalf("topk: %d over HTTP, %d direct", len(topk.Items), len(wantTop))
	}
	for i := range wantTop {
		if topk.Items[i].Item != wantTop[i].Item || topk.Items[i].Count != wantTop[i].Count {
			t.Fatalf("topk %d: %+v over HTTP, %+v direct", i, topk.Items[i], wantTop[i])
		}
	}
	var rc struct {
		Count int64 `json:"count"`
	}
	decode("range-dist", &rc)
	wantRC, err := mirror.RangeCount("dist", 0, 524288)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Count != wantRC {
		t.Fatalf("rangecount = %d over HTTP, %d direct", rc.Count, wantRC)
	}
	for key, q := range map[string]float64{"quantile-dist": 0.5, "quantile-dist-99": 0.99} {
		var qr struct {
			Quantile uint64 `json:"quantile"`
		}
		decode(key, &qr)
		wantQ, err := mirror.Quantile("dist", q)
		if err != nil {
			t.Fatal(err)
		}
		if qr.Quantile != wantQ {
			t.Fatalf("quantile(%g) = %d over HTTP, %d direct", q, qr.Quantile, wantQ)
		}
	}
}

// TestServerErrorMapping: the library sentinels surface as the right
// HTTP status codes.
func TestServerErrorMapping(t *testing.T) {
	// No WindowSum here: hashed string keys exceed any value bound, and
	// this test ingests strings.
	pipe := streamagg.NewPipeline()
	for _, add := range []struct {
		name string
		kind streamagg.Kind
		opts []streamagg.Option
	}{
		{"ones", streamagg.KindBasicCounter, []streamagg.Option{streamagg.WithWindow(1 << 16)}},
		{"hot", streamagg.KindFreq, []streamagg.Option{streamagg.WithEpsilon(0.005)}},
		{"cm", streamagg.KindCountMin, nil},
		{"dist", streamagg.KindCountMinRange, []streamagg.Option{streamagg.WithUniverseBits(20)}},
	} {
		if _, err := pipe.Add(add.name, add.kind, add.opts...); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := New(pipe)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(t.Context())
	client := ts.Client()

	for _, tc := range []struct {
		url  string
		code int
	}{
		{"/v1/nope/estimate?item=1", http.StatusNotFound},    // ErrNoSuchAggregate
		{"/v1/hot/value", http.StatusBadRequest},             // ErrUnsupportedQuery
		{"/v1/ones/estimate?item=1", http.StatusBadRequest},  // ErrUnsupportedQuery
		{"/v1/cm/topk?k=3", http.StatusBadRequest},           // ErrUnsupportedQuery
		{"/v1/hot/estimate", http.StatusBadRequest},          // missing item
		{"/v1/hot/estimate?item=abc", http.StatusBadRequest}, // malformed item
		{"/v1/dist/quantile?q=abc", http.StatusBadRequest},   // malformed q
		{"/v1/hot/unknownverb", http.StatusNotFound},         // unknown verb
		{"/healthz", http.StatusOK},                          //
	} {
		resp, err := client.Get(ts.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Fatalf("GET %s: %d, want %d", tc.url, resp.StatusCode, tc.code)
		}
	}

	// Malformed and oversized ingest bodies.
	if code, _ := post(t, client, ts.URL+"/v1/ingest", "application/json", []byte("{nope")); code != http.StatusBadRequest {
		t.Fatalf("malformed ingest: %d", code)
	}
	// A key-hashed estimate works.
	body, _ := json.Marshal(map[string]any{"strings": []string{"alpha", "alpha", "beta"}, "sync": true})
	if code, resp := post(t, client, ts.URL+"/v1/ingest", "application/json", body); code != http.StatusOK {
		t.Fatalf("string ingest: %d %s", code, resp)
	}
	var est struct {
		Estimate int64 `json:"estimate"`
	}
	get(t, client, ts.URL+"/v1/hot/estimate?key=alpha", &est)
	if est.Estimate != 2 {
		t.Fatalf("estimate(key=alpha) = %d, want 2", est.Estimate)
	}
	// A bare-array body is accepted.
	if code, resp := post(t, client, ts.URL+"/v1/ingest", "application/json", []byte("[1,2,3]")); code != http.StatusOK {
		t.Fatalf("bare array ingest: %d %s", code, resp)
	}
	// Restoring garbage fails cleanly.
	if code, _ := post(t, client, ts.URL+"/v1/restore", "application/octet-stream", []byte("garbage")); code != http.StatusBadRequest {
		t.Fatalf("garbage restore accepted")
	}
}

// TestServerRejectBackpressure: under BackpressureReject, a request
// larger than the whole queue maps to 429.
func TestServerRejectBackpressure(t *testing.T) {
	pipe := streamagg.NewPipeline()
	if _, err := pipe.Add("cm", streamagg.KindCountMin); err != nil {
		t.Fatal(err)
	}
	srv, err := New(pipe,
		streamagg.WithBatchSize(1024), streamagg.WithQueueCap(1024),
		streamagg.WithBackpressure(streamagg.BackpressureReject))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(t.Context())

	big := make([]uint64, 2048)
	body, _ := json.Marshal(map[string]any{"items": big})
	code, resp := post(t, ts.Client(), ts.URL+"/v1/ingest", "application/json", body)
	if code != http.StatusTooManyRequests {
		t.Fatalf("oversized ingest: %d %s, want 429", code, resp)
	}
	var stats struct {
		Ingest streamagg.IngestorStats `json:"ingest"`
	}
	get(t, ts.Client(), ts.URL+"/v1/stats", &stats)
	if stats.Ingest.Rejected != 2048 {
		t.Fatalf("rejected = %d, want 2048", stats.Ingest.Rejected)
	}
}

// TestServerConcurrentIngestCheckpoint hammers /v1/ingest from many
// goroutines while checkpoints and restores run mid-load (the -race
// serving drill).
func TestServerConcurrentIngestCheckpoint(t *testing.T) {
	pipe := streamagg.NewPipeline()
	if _, err := pipe.Add("cm", streamagg.KindCountMin,
		streamagg.WithEpsilon(1e-3), streamagg.WithSeed(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Add("hot", streamagg.KindFreq, streamagg.WithEpsilon(0.01)); err != nil {
		t.Fatal(err)
	}
	srv, err := New(pipe,
		streamagg.WithBatchSize(2048), streamagg.WithMaxLatency(time.Millisecond),
		streamagg.WithQueueCap(1<<15))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	const producers = 6
	perProducer := 40
	if testing.Short() {
		perProducer = 15
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			stream := workload.Zipf(int64(200+p), perProducer*512, 1.1, 1<<16)
			for _, chunk := range workload.Batches(stream, 512) {
				body, err := json.Marshal(map[string]any{"items": chunk})
				if err != nil {
					t.Error(err)
					return
				}
				resp, err := client.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("ingest: %d", resp.StatusCode)
					return
				}
			}
		}(p)
	}
	// Mid-load checkpoints; each must be a valid restorable envelope.
	for i := 0; i < 3; i++ {
		code, ckpt := post(t, client, ts.URL+"/v1/checkpoint", "application/octet-stream", nil)
		if code != http.StatusOK {
			t.Fatalf("checkpoint %d: %d", i, code)
		}
		restored := streamagg.NewPipeline()
		if err := restored.UnmarshalBinary(ckpt); err != nil {
			t.Fatalf("checkpoint %d not restorable: %v", i, err)
		}
	}
	wg.Wait()
	if code, _ := post(t, client, ts.URL+"/v1/flush", "application/json", nil); code != http.StatusOK {
		t.Fatal("flush failed")
	}
	if got, want := pipe.StreamLen(), int64(producers*perProducer*512); got != want {
		t.Fatalf("StreamLen %d, want %d", got, want)
	}
	if err := srv.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(srv.Pipeline(), pipe) {
		t.Fatal("Pipeline accessor lost the pipeline")
	}
}
