package server

// Serving-path correctness and observability gates: every out-of-range
// query parameter must map to a 400 at the handler (not garbage with a
// 200 from the aggregate), a poison ingest item must be refused with
// its own 400 instead of failing the coalesced minibatch it would ride
// in, and GET /metrics must expose all four layers (HTTP, ingest,
// aggregates, WAL) with values that cannot diverge from the JSON stats.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	streamagg "repro"
	"repro/persist"
)

func newTestServer(t *testing.T, opts ...streamagg.Option) (*Server, *httptest.Server) {
	t.Helper()
	base := []streamagg.Option{
		streamagg.WithBatchSize(64), streamagg.WithMaxLatency(time.Millisecond),
	}
	srv, err := New(testPipeline(t), append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Ingestor().Close()
	})
	return srv, ts
}

// TestServerQueryParamValidation drives every verb's bad-parameter path:
// out-of-range values are the handler's 400, in-range edge values pass
// through to the aggregate.
func TestServerQueryParamValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name string
		url  string
		want int
	}{
		{"estimate no params", "/v1/hot/estimate", http.StatusBadRequest},
		{"estimate malformed item", "/v1/hot/estimate?item=abc", http.StatusBadRequest},
		{"estimate negative item", "/v1/hot/estimate?item=-1", http.StatusBadRequest},
		{"estimate ok", "/v1/hot/estimate?item=1", http.StatusOK},
		{"phi zero", "/v1/hot/heavyhitters?phi=0", http.StatusBadRequest},
		{"phi negative", "/v1/hot/heavyhitters?phi=-0.5", http.StatusBadRequest},
		{"phi above one", "/v1/hot/heavyhitters?phi=1.5", http.StatusBadRequest},
		{"phi NaN", "/v1/hot/heavyhitters?phi=NaN", http.StatusBadRequest},
		{"phi one ok", "/v1/hot/heavyhitters?phi=1", http.StatusOK},
		{"k negative", "/v1/hot/topk?k=-1", http.StatusBadRequest},
		{"k malformed", "/v1/hot/topk?k=ten", http.StatusBadRequest},
		{"k zero ok", "/v1/hot/topk?k=0", http.StatusOK},
		{"range lo above hi", "/v1/dist/rangecount?lo=5&hi=1", http.StatusBadRequest},
		{"range lo only", "/v1/dist/rangecount?lo=5", http.StatusBadRequest},
		{"range malformed lo", "/v1/dist/rangecount?lo=x&hi=9", http.StatusBadRequest},
		{"range ok", "/v1/dist/rangecount?lo=1&hi=5", http.StatusOK},
		{"range point ok", "/v1/dist/rangecount?lo=5&hi=5", http.StatusOK},
		{"q negative", "/v1/dist/quantile?q=-0.1", http.StatusBadRequest},
		{"q above one", "/v1/dist/quantile?q=1.01", http.StatusBadRequest},
		{"q NaN", "/v1/dist/quantile?q=NaN", http.StatusBadRequest},
		{"q zero ok", "/v1/dist/quantile?q=0", http.StatusOK},
		{"q one ok", "/v1/dist/quantile?q=1", http.StatusOK},
		{"unsupported verb for kind", "/v1/hot/value", http.StatusBadRequest},
		{"unknown verb", "/v1/hot/median", http.StatusNotFound},
		{"unknown aggregate", "/v1/nosuch/estimate?item=1", http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := ts.Client().Get(ts.URL + tc.url)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("GET %s = %d, want %d", tc.url, resp.StatusCode, tc.want)
			}
		})
	}
}

// TestServerIngestPoisonItem: a value over a bounded aggregate's limit
// (WindowSum's R) must be rejected at enqueue time with its own 400 —
// not coalesced into a minibatch that fails wholesale, wedging the sink
// with a sticky error and discarding innocent co-batched items.
func TestServerIngestPoisonItem(t *testing.T) {
	_, ts := newTestServer(t)
	client := ts.Client()

	// testPipeline's WindowSum bounds values at 2^20.
	poison, _ := json.Marshal(map[string]any{"items": []uint64{5, 1 << 30, 7}, "sync": true})
	code, body := post(t, client, ts.URL+"/v1/ingest", "application/json", poison)
	if code != http.StatusBadRequest {
		t.Fatalf("poison ingest = %d %s, want 400", code, body)
	}
	if !strings.Contains(string(body), "bound") {
		t.Fatalf("poison rejection does not name the bound: %s", body)
	}

	// Nothing from the poison batch may have been enqueued, and the
	// sink must not be wedged: a clean batch still flows end to end.
	ingestSync(t, client, ts.URL, []uint64{5, 5, 5})
	var est struct {
		Estimate int64 `json:"estimate"`
	}
	get(t, client, ts.URL+"/v1/hot/estimate?item=5", &est)
	if est.Estimate != 3 {
		t.Fatalf("estimate(5) = %d, want 3 (poison batch must not count)", est.Estimate)
	}
	get(t, client, ts.URL+"/v1/hot/estimate?item=7", &est)
	if est.Estimate != 0 {
		t.Fatalf("estimate(7) = %d, want 0 (co-batched item must not leak in)", est.Estimate)
	}
	if code, body := post(t, client, ts.URL+"/v1/flush", "application/json", nil); code != http.StatusOK {
		t.Fatalf("flush after poison = %d %s (sticky sink error?)", code, body)
	}
}

// scrape fetches /metrics and returns the exposition text.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts the value of an exact series line
// (`name{labels} value` or `name value`).
func metricValue(t *testing.T, exposition, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in exposition:\n%s", series, exposition)
	return 0
}

// TestServerMetricsEndpoint is the /metrics smoke gate: after real
// traffic on a durable server, the exposition must cover all four
// layers, and the migrated counters must agree exactly with the JSON
// stats endpoints that now read from the same registry.
func TestServerMetricsEndpoint(t *testing.T) {
	srv, ts := newTestServer(t,
		streamagg.WithDataDir(t.TempDir()), streamagg.WithFsync(persist.FsyncNever))
	client := ts.Client()

	ingestSync(t, client, ts.URL, []uint64{1, 2, 3, 2, 1, 2})
	var est struct{}
	get(t, client, ts.URL+"/v1/hot/estimate?item=2", &est)

	out := scrape(t, ts)
	for _, family := range []string{
		// Ingestor layer.
		"streamagg_ingest_enqueued_items_total",
		"streamagg_ingest_processed_items_total",
		`streamagg_ingest_flushes_total{cause="drain"}`,
		"streamagg_ingest_batch_items_bucket",
		"streamagg_ingest_flush_wait_seconds_bucket",
		"streamagg_ingest_apply_seconds_count",
		"streamagg_ingest_queue_depth_items",
		// HTTP layer.
		`streamagg_http_requests_total{code="2xx",handler="ingest"}`,
		`streamagg_http_request_seconds_bucket{handler="query_estimate"`,
		"streamagg_http_in_flight_requests",
		// Aggregate layer.
		`streamagg_aggregate_stream_length{aggregate="hot"}`,
		`streamagg_aggregate_space_words{aggregate="dist"}`,
		// Persist layer.
		`streamagg_wal_appended_records_total`,
		`streamagg_wal_append_seconds_count{fsync="never"}`,
		"streamagg_wal_last_seq",
		"streamagg_recovery_snapshot_loaded",
		"streamagg_snapshot_failures_total",
		// Build/runtime identity.
		`app_build_info{goversion="`,
		"process_start_time_seconds",
		"go_goroutines",
	} {
		if !strings.Contains(out, family) {
			t.Errorf("exposition missing %s", family)
		}
	}

	// Single source of truth: the JSON stats must equal the exposition.
	var stats struct {
		Ingest streamagg.IngestorStats `json:"ingest"`
	}
	get(t, client, ts.URL+"/v1/stats", &stats)
	if got := metricValue(t, out, "streamagg_ingest_enqueued_items_total"); int64(got) != stats.Ingest.Enqueued {
		t.Errorf("exposition enqueued %v != stats %d", got, stats.Ingest.Enqueued)
	}
	if got := metricValue(t, out, "streamagg_wal_appended_records_total"); got < 1 {
		t.Errorf("WAL appended records = %v, want >= 1", got)
	}

	// The gate: disabled metrics 404 without disturbing anything else.
	srv.SetMetricsEnabled(false)
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled /metrics = %d, want 404", resp.StatusCode)
	}
}

// TestServerRestoreRecomputesBound: /v1/restore rebuilds the
// aggregates from the envelope, whose WindowSum bound need not match
// the serving config — the enqueue-time poison check must follow the
// restored bound, or the wedged-sink bug comes back through restore.
func TestServerRestoreRecomputesBound(t *testing.T) {
	_, ts := newTestServer(t) // WindowSum "load" bound: 2^20
	client := ts.Client()

	// A checkpoint of the same pipeline shape but with a tighter bound.
	tight := streamagg.NewPipeline()
	for _, spec := range []struct {
		name string
		kind streamagg.Kind
		opts []streamagg.Option
	}{
		{"ones", streamagg.KindBasicCounter, []streamagg.Option{streamagg.WithWindow(1 << 16)}},
		{"load", streamagg.KindWindowSum, []streamagg.Option{
			streamagg.WithWindow(1 << 16), streamagg.WithMaxValue(50)}},
		{"hot", streamagg.KindFreq, nil},
		{"recent", streamagg.KindSlidingFreq, []streamagg.Option{streamagg.WithWindow(1 << 15)}},
		{"cm", streamagg.KindCountMin, nil},
		{"dist", streamagg.KindCountMinRange, []streamagg.Option{streamagg.WithUniverseBits(20)}},
	} {
		if _, err := tight.Add(spec.name, spec.kind, spec.opts...); err != nil {
			t.Fatal(err)
		}
	}
	env, err := tight.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if code, body := post(t, client, ts.URL+"/v1/restore", "application/octet-stream", env); code != http.StatusOK {
		t.Fatalf("restore = %d %s", code, body)
	}

	// 80 was fine under the serving config's bound (2^20) but exceeds
	// the restored bound (50): it must be a 400 at enqueue, and the
	// sink must stay healthy.
	body, _ := json.Marshal(map[string]any{"items": []uint64{80}, "sync": true})
	if code, resp := post(t, client, ts.URL+"/v1/ingest", "application/json", body); code != http.StatusBadRequest {
		t.Fatalf("over-restored-bound ingest = %d %s, want 400", code, resp)
	}
	ingestSync(t, client, ts.URL, []uint64{40, 40})
	if code, resp := post(t, client, ts.URL+"/v1/flush", "application/json", nil); code != http.StatusOK {
		t.Fatalf("flush after restore = %d %s", code, resp)
	}
}

// TestServerShardedCacheMetrics: global-summary queries on a sharded
// aggregate must move the merge-cache hit/miss counters.
func TestServerShardedCacheMetrics(t *testing.T) {
	p := streamagg.NewPipeline()
	if _, err := p.Add("shard", streamagg.KindFreq,
		streamagg.WithEpsilon(0.01), streamagg.WithShards(2)); err != nil {
		t.Fatal(err)
	}
	srv, err := New(p, streamagg.WithBatchSize(16), streamagg.WithMaxLatency(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Ingestor().Close()

	ingestSync(t, ts.Client(), ts.URL, []uint64{1, 1, 2, 3, 1})
	var hh struct{}
	get(t, ts.Client(), ts.URL+"/v1/shard/heavyhitters?phi=0.1", &hh)
	get(t, ts.Client(), ts.URL+"/v1/shard/heavyhitters?phi=0.1", &hh)

	out := scrape(t, ts)
	miss := metricValue(t, out, `streamagg_sharded_merge_cache_misses_total{aggregate="shard"}`)
	hit := metricValue(t, out, `streamagg_sharded_merge_cache_hits_total{aggregate="shard"}`)
	if miss < 1 || hit < 1 {
		t.Fatalf("merge cache hits=%v misses=%v, want both >= 1", hit, miss)
	}
}
