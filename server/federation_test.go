package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	streamagg "repro"
	"repro/federation"
	"repro/internal/workload"
)

// fedTestPipeline builds a pipeline of mergeable kinds only (whole
// pipelines are the federation payload, so a non-Merger member would
// make every push incompatible), with pinned seeds so independently
// built instances merge. A non-zero cmSeed overrides the count-min seed
// to manufacture incompatible peers.
func fedTestPipeline(t *testing.T, cmSeed int64) *streamagg.Pipeline {
	t.Helper()
	if cmSeed == 0 {
		cmSeed = 7
	}
	p := streamagg.NewPipeline()
	add := func(name string, kind streamagg.Kind, opts ...streamagg.Option) {
		t.Helper()
		if _, err := p.Add(name, kind, opts...); err != nil {
			t.Fatalf("Add(%s): %v", name, err)
		}
	}
	add("hot", streamagg.KindFreq, streamagg.WithEpsilon(0.005))
	add("cm", streamagg.KindCountMin,
		streamagg.WithEpsilon(1e-3), streamagg.WithDelta(0.01), streamagg.WithSeed(cmSeed))
	add("dist", streamagg.KindCountMinRange,
		streamagg.WithUniverseBits(20), streamagg.WithEpsilon(0.002), streamagg.WithSeed(3))
	add("sk", streamagg.KindCountSketch, streamagg.WithSeed(5))
	return p
}

// fedServer builds an in-process Server around a federation-friendly
// pipeline and serves it over httptest.
func fedServer(t *testing.T, cmSeed int64) (*Server, string) {
	t.Helper()
	srv, err := New(fedTestPipeline(t, cmSeed))
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(func() { _ = srv.Shutdown(context.Background()) })
	return srv, hs.URL
}

func feedServer(t *testing.T, srv *Server, items []uint64) {
	t.Helper()
	if _, err := srv.Ingestor().PutBatch(items); err != nil {
		t.Fatal(err)
	}
	if err := srv.Ingestor().Flush(); err != nil {
		t.Fatal(err)
	}
}

func checkpointBytes(t *testing.T, client *http.Client, base string) []byte {
	t.Helper()
	resp, err := client.Post(base+"/v1/checkpoint", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", resp.StatusCode, data)
	}
	return data
}

// queryInt64 runs one query verb and returns the named JSON field.
func queryInt64(t *testing.T, client *http.Client, url, field string) int64 {
	t.Helper()
	var out map[string]json.RawMessage
	get(t, client, url, &out)
	var v int64
	if err := json.Unmarshal(out[field], &v); err != nil {
		t.Fatalf("GET %s: field %q in %v: %v", url, field, out, err)
	}
	return v
}

// TestServerFederationEndToEnd is the federation acceptance drill:
// three edge servers absorb zipf slices and push full-state summaries to
// a root that also ingests local traffic; the root's six query verbs
// must answer within the paper's bounds of a single directly-fed
// pipeline — exactly so for the linear sketches — and a duplicate replay
// must leave the root byte-identical.
func TestServerFederationEndToEnd(t *testing.T) {
	const perEdge = 150_000
	_, rootURL := fedServer(t, 0)
	client := &http.Client{}
	oracle := fedTestPipeline(t, 0)
	truth := map[uint64]int64{}

	feedOracle := func(items []uint64) {
		if err := oracle.ProcessBatch(items); err != nil {
			t.Fatal(err)
		}
		for _, it := range items {
			truth[it]++
		}
	}

	// Local traffic at the root itself rides under the overlay.
	local := workload.Zipf(90, 50_000, 1.15, 1<<20)
	body, err := json.Marshal(map[string]any{"items": local, "sync": true})
	if err != nil {
		t.Fatal(err)
	}
	if code, resp := post(t, client, rootURL+"/v1/ingest", "application/json", body); code != http.StatusOK {
		t.Fatalf("root ingest: %d %s", code, resp)
	}
	feedOracle(local)

	// Three edges, each its own zipf slice, pushed via the real Pusher.
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		stream := workload.Zipf(int64(91+i), perEdge, 1.15, 1<<20)
		edge, _ := fedServer(t, 0)
		feedServer(t, edge, stream)
		feedOracle(stream)
		pusher, err := federation.NewPusher(federation.PusherConfig{
			URL:    rootURL + "/v1/merge",
			Node:   fmt.Sprintf("edge-%d", i),
			Source: edge,
			Epoch:  1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := pusher.Push(ctx); err != nil {
			t.Fatalf("edge-%d push: %v", i, err)
		}
	}
	total := int64(50_000 + 3*perEdge)

	assertRoot := func(t *testing.T) {
		t.Helper()
		probes := []uint64{0, 1, 2, 17, 999, 1 << 19}
		for _, item := range probes {
			// Linear sketches: the federated merge is EXACTLY the sketch
			// of the concatenated stream.
			for _, name := range []string{"cm", "sk"} {
				got := queryInt64(t, client,
					fmt.Sprintf("%s/v1/%s/estimate?item=%d", rootURL, name, item), "estimate")
				want, err := oracle.Estimate(name, item)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("%s.estimate(%d) = %d, oracle %d", name, item, got, want)
				}
			}
			// Misra-Gries: the paper's merged bound f - ε·m <= est <= f.
			got := queryInt64(t, client,
				fmt.Sprintf("%s/v1/hot/estimate?item=%d", rootURL, item), "estimate")
			f := truth[item]
			slack := int64(0.005 * float64(total))
			if got > f || got < f-slack {
				t.Fatalf("hot.estimate(%d) = %d outside [%d, %d]", item, got, f-slack, f)
			}
		}
		// value: exact via the merged count-min's total count.
		if got := queryInt64(t, client, rootURL+"/v1/cm/value", "value"); got != total {
			t.Fatalf("cm.value = %d, want %d", got, total)
		}
		// rangecount + quantile: exact vs oracle (same seeds, linear).
		for _, rng := range [][2]uint64{{0, 1 << 19}, {5, 4096}} {
			got := queryInt64(t, client,
				fmt.Sprintf("%s/v1/dist/rangecount?lo=%d&hi=%d", rootURL, rng[0], rng[1]), "count")
			want, err := oracle.RangeCount("dist", rng[0], rng[1])
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("dist.rangecount(%d,%d) = %d, oracle %d", rng[0], rng[1], got, want)
			}
		}
		for _, q := range []float64{0.1, 0.5, 0.99} {
			got := queryInt64(t, client,
				fmt.Sprintf("%s/v1/dist/quantile?q=%g", rootURL, q), "quantile")
			want, err := oracle.Quantile("dist", q)
			if err != nil {
				t.Fatal(err)
			}
			if got != int64(want) {
				t.Fatalf("dist.quantile(%g) = %d, oracle %d", q, got, want)
			}
		}
		// heavyhitters + topk: the zipf head must surface, counts within
		// the MG bound.
		var hh struct {
			Items []struct {
				Item  uint64 `json:"item"`
				Count int64  `json:"count"`
			} `json:"items"`
		}
		get(t, client, rootURL+"/v1/hot/heavyhitters?phi=0.02", &hh)
		if len(hh.Items) == 0 {
			t.Fatal("heavyhitters returned nothing on a zipf stream")
		}
		for _, it := range hh.Items {
			if f := truth[it.Item]; it.Count > f {
				t.Fatalf("heavyhitter %d overcounted: %d > true %d", it.Item, it.Count, f)
			}
		}
		var topk struct {
			Items []struct {
				Item uint64 `json:"item"`
			} `json:"items"`
		}
		get(t, client, rootURL+"/v1/hot/topk?k=5", &topk)
		if len(topk.Items) == 0 {
			t.Fatal("topk returned nothing")
		}
	}
	assertRoot(t)

	// /v1/stats reports the three edges.
	var stats struct {
		Federation struct {
			Nodes []federation.NodeStatus `json:"nodes"`
		} `json:"federation"`
	}
	get(t, client, rootURL+"/v1/stats", &stats)
	if len(stats.Federation.Nodes) != 3 {
		t.Fatalf("stats.federation.nodes = %+v", stats.Federation.Nodes)
	}
	for i, ns := range stats.Federation.Nodes {
		if want := fmt.Sprintf("edge-%d", i); ns.Node != want || ns.Epoch != 1 || ns.Seq != 1 {
			t.Fatalf("node %d status = %+v", i, ns)
		}
	}

	// Duplicate replay: same (node, epoch, seq) under a fresh payload.
	// The root must answer 409 reason=duplicate and stay byte-identical.
	replayPipe := fedTestPipeline(t, 0)
	if err := replayPipe.ProcessBatch(workload.Zipf(99, 10_000, 1.15, 1<<20)); err != nil {
		t.Fatal(err)
	}
	payload, err := replayPipe.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	replay, err := federation.EncodeEnvelope(&federation.Envelope{
		Node: "edge-0", Epoch: 1, Seq: 1, Mode: federation.ModeFull, Payload: payload,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := checkpointBytes(t, client, rootURL)
	code, resp := post(t, client, rootURL+"/v1/merge", "application/octet-stream", replay)
	if code != http.StatusConflict {
		t.Fatalf("replay: %d %s", code, resp)
	}
	var rej struct {
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(resp, &rej); err != nil || rej.Reason != "duplicate" {
		t.Fatalf("replay reason = %q (%v) in %s", rej.Reason, err, resp)
	}
	if !bytes.Equal(before, checkpointBytes(t, client, rootURL)) {
		t.Fatal("duplicate replay changed the root checkpoint")
	}
	assertRoot(t)

	// Garbage body: 400.
	if code, _ := post(t, client, rootURL+"/v1/merge", "application/octet-stream",
		[]byte("definitely not an envelope")); code != http.StatusBadRequest {
		t.Fatalf("garbage merge body: %d", code)
	}

	// Incompatible pipeline (different count-min seed): 409 incompatible.
	alien := fedTestPipeline(t, 1234)
	if err := alien.ProcessBatch([]uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	alienPayload, err := alien.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	alienEnv, err := federation.EncodeEnvelope(&federation.Envelope{
		Node: "alien", Epoch: 1, Seq: 1, Mode: federation.ModeFull, Payload: alienPayload,
	})
	if err != nil {
		t.Fatal(err)
	}
	code, resp = post(t, client, rootURL+"/v1/merge", "application/octet-stream", alienEnv)
	if code != http.StatusConflict {
		t.Fatalf("incompatible merge: %d %s", code, resp)
	}
	if err := json.Unmarshal(resp, &rej); err != nil || rej.Reason != "incompatible" {
		t.Fatalf("incompatible reason = %q in %s", rej.Reason, resp)
	}
	assertRoot(t)

	// Single-aggregate envelope targeting the root's "cm" member.
	solo, err := streamagg.New(streamagg.KindCountMin,
		streamagg.WithEpsilon(1e-3), streamagg.WithDelta(0.01), streamagg.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := solo.ProcessBatch([]uint64{42, 42, 42}); err != nil {
		t.Fatal(err)
	}
	soloPayload, err := solo.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	soloEnv, err := federation.EncodeEnvelope(&federation.Envelope{
		Node: "solo", Epoch: 1, Seq: 1, Mode: federation.ModeFull,
		Agg: "cm", Payload: soloPayload,
	})
	if err != nil {
		t.Fatal(err)
	}
	if code, resp := post(t, client, rootURL+"/v1/merge", "application/octet-stream", soloEnv); code != http.StatusOK {
		t.Fatalf("single-agg merge: %d %s", code, resp)
	}
	if got := queryInt64(t, client, rootURL+"/v1/cm/value", "value"); got != total+3 {
		t.Fatalf("cm.value = %d after single-agg push, want %d", got, total+3)
	}

	// The merge path shows up on the shared /metrics exposition.
	metricsResp, err := client.Get(rootURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exposition, _ := io.ReadAll(metricsResp.Body)
	metricsResp.Body.Close()
	for _, want := range []string{
		`streamagg_federation_merges_total{result="applied"} 4`,
		`streamagg_federation_merges_total{result="duplicate"} 1`,
		`streamagg_federation_merges_total{result="incompatible"} 1`,
		`streamagg_federation_node_last_seq{node="edge-0"} 1`,
		"streamagg_federation_merge_payload_bytes_count",
	} {
		if !strings.Contains(string(exposition), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestServerFederationDelta: delta pushes merge destructively into the
// root's base, the edge resets between captures, and a duplicate replay
// of a delta — the dangerous one, since re-merging would double-count —
// leaves the root checkpoint byte-identical.
func TestServerFederationDelta(t *testing.T) {
	_, rootURL := fedServer(t, 0)
	edge, _ := fedServer(t, 0)
	client := &http.Client{}
	oracle := fedTestPipeline(t, 0)

	push := func(seq uint64) []byte {
		t.Helper()
		payload, err := edge.Capture(true)
		if err != nil {
			t.Fatal(err)
		}
		env, err := federation.EncodeEnvelope(&federation.Envelope{
			Node: "edge-1", Epoch: 1, Seq: seq, Mode: federation.ModeDelta, Payload: payload,
		})
		if err != nil {
			t.Fatal(err)
		}
		code, resp := post(t, client, rootURL+"/v1/merge", "application/octet-stream", env)
		if code != http.StatusOK {
			t.Fatalf("delta push seq %d: %d %s", seq, code, resp)
		}
		return env
	}

	streamA := workload.Zipf(101, 60_000, 1.15, 1<<20)
	streamB := workload.Zipf(102, 40_000, 1.15, 1<<20)
	for _, s := range [][]uint64{streamA, streamB} {
		if err := oracle.ProcessBatch(s); err != nil {
			t.Fatal(err)
		}
	}

	feedServer(t, edge, streamA)
	push(1)
	// The capture reset the edge: only new items ride the next delta.
	if got := edge.Pipeline().StreamLen(); got != 0 {
		t.Fatalf("edge StreamLen = %d after delta capture, want 0", got)
	}
	feedServer(t, edge, streamB)
	lastEnv := push(2)

	for _, item := range []uint64{streamA[0], streamB[0], 1, 999} {
		got := queryInt64(t, client,
			fmt.Sprintf("%s/v1/cm/estimate?item=%d", rootURL, item), "estimate")
		want, err := oracle.Estimate("cm", item)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("cm.estimate(%d) = %d, oracle %d", item, got, want)
		}
	}
	if got := queryInt64(t, client, rootURL+"/v1/cm/value", "value"); got != 100_000 {
		t.Fatalf("cm.value = %d, want 100000", got)
	}

	// Replaying the acknowledged delta byte-for-byte must not re-merge.
	before := checkpointBytes(t, client, rootURL)
	code, resp := post(t, client, rootURL+"/v1/merge", "application/octet-stream", lastEnv)
	if code != http.StatusConflict {
		t.Fatalf("delta replay: %d %s", code, resp)
	}
	if !bytes.Equal(before, checkpointBytes(t, client, rootURL)) {
		t.Fatal("delta replay changed the root checkpoint")
	}
	if got := queryInt64(t, client, rootURL+"/v1/cm/value", "value"); got != 100_000 {
		t.Fatalf("cm.value = %d after replay, want 100000", got)
	}
}
