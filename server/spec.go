package server

// Aggregate specs: the flag syntax both cmd/aggserve and the streamtool
// serve subcommand use to build a Pipeline, mapping straight onto
// New/Pipeline.Add with the same functional options (and therefore the
// same centralized ErrBadParam validation):
//
//	-agg name=kind[,opt=value]...
//
// e.g. -agg hot=freq,eps=0.001 -agg dist=count-min-range,bits=20,shards=4

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	streamagg "repro"
	"repro/persist"
)

// kindAlias maps flag-friendly kind names (plus the canonical Kind
// strings) to kinds.
var kindAlias = map[string]streamagg.Kind{
	"basic-counter":          streamagg.KindBasicCounter,
	"counter":                streamagg.KindBasicCounter,
	"window-sum":             streamagg.KindWindowSum,
	"sum":                    streamagg.KindWindowSum,
	"freq-estimator":         streamagg.KindFreq,
	"freq":                   streamagg.KindFreq,
	"sliding-freq-estimator": streamagg.KindSlidingFreq,
	"sliding-freq":           streamagg.KindSlidingFreq,
	"count-min":              streamagg.KindCountMin,
	"cm":                     streamagg.KindCountMin,
	"count-min-range":        streamagg.KindCountMinRange,
	"range":                  streamagg.KindCountMinRange,
	"count-sketch":           streamagg.KindCountSketch,
	"cs":                     streamagg.KindCountSketch,
}

var variantAlias = map[string]streamagg.SlidingVariant{
	"basic": streamagg.VariantBasic,
	"space": streamagg.VariantSpaceEfficient,
	"work":  streamagg.VariantWorkEfficient,
}

// ParseSpec parses one aggregate spec into its name, kind, and options.
func ParseSpec(spec string) (name string, kind streamagg.Kind, opts []streamagg.Option, err error) {
	head, rest, _ := strings.Cut(spec, ",")
	name, kindStr, ok := strings.Cut(head, "=")
	if !ok || name == "" || kindStr == "" {
		return "", "", nil, fmt.Errorf("bad aggregate spec %q (want name=kind[,opt=value]...)", spec)
	}
	kind, ok = kindAlias[kindStr]
	if !ok {
		return "", "", nil, fmt.Errorf("bad aggregate spec %q: unknown kind %q", spec, kindStr)
	}
	if rest == "" {
		return name, kind, nil, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return "", "", nil, fmt.Errorf("bad aggregate spec %q: option %q (want opt=value)", spec, kv)
		}
		opt, err := parseOption(key, val)
		if err != nil {
			return "", "", nil, fmt.Errorf("bad aggregate spec %q: %w", spec, err)
		}
		opts = append(opts, opt)
	}
	return name, kind, opts, nil
}

func parseOption(key, val string) (streamagg.Option, error) {
	switch key {
	case "eps", "epsilon":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("option %s=%q: %w", key, val, err)
		}
		return streamagg.WithEpsilon(f), nil
	case "delta":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("option %s=%q: %w", key, val, err)
		}
		return streamagg.WithDelta(f), nil
	case "seed":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("option %s=%q: %w", key, val, err)
		}
		return streamagg.WithSeed(n), nil
	case "window":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("option %s=%q: %w", key, val, err)
		}
		return streamagg.WithWindow(n), nil
	case "max":
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("option %s=%q: %w", key, val, err)
		}
		return streamagg.WithMaxValue(n), nil
	case "bits":
		n, err := strconv.Atoi(val)
		if err != nil {
			return nil, fmt.Errorf("option %s=%q: %w", key, val, err)
		}
		return streamagg.WithUniverseBits(n), nil
	case "shards":
		n, err := strconv.Atoi(val)
		if err != nil {
			return nil, fmt.Errorf("option %s=%q: %w", key, val, err)
		}
		return streamagg.WithShards(n), nil
	case "variant":
		v, ok := variantAlias[val]
		if !ok {
			return nil, fmt.Errorf("option %s=%q (want basic, space, or work)", key, val)
		}
		return streamagg.WithVariant(v), nil
	}
	return nil, fmt.Errorf("unknown option %q (want eps, delta, seed, window, max, bits, shards, or variant)", key)
}

// AddSpecs parses each spec and registers the aggregates on p.
func AddSpecs(p *streamagg.Pipeline, specs []string) error {
	for _, spec := range specs {
		name, kind, opts, err := ParseSpec(spec)
		if err != nil {
			return err
		}
		if _, err := p.Add(name, kind, opts...); err != nil {
			return fmt.Errorf("aggregate spec %q: %w", spec, err)
		}
	}
	return nil
}

// IngestOptions turns the serving flag values into the Ingestor's option
// list. Zero batchSize/queueCap and empty policy mean "use the default";
// maxLatency's unset sentinel is negative, because zero is a meaningful
// setting (flush as fast as the worker turns around).
func IngestOptions(batchSize int, maxLatency time.Duration, queueCap int, policy string) ([]streamagg.Option, error) {
	var opts []streamagg.Option
	if batchSize > 0 {
		opts = append(opts, streamagg.WithBatchSize(batchSize))
	}
	if maxLatency >= 0 {
		opts = append(opts, streamagg.WithMaxLatency(maxLatency))
	}
	if queueCap > 0 {
		opts = append(opts, streamagg.WithQueueCap(queueCap))
	}
	if policy != "" {
		p, err := streamagg.ParseBackpressure(policy)
		if err != nil {
			return nil, err
		}
		opts = append(opts, streamagg.WithBackpressure(p))
	}
	return opts, nil
}

// DurabilityOptions turns the -data-dir/-fsync/-snapshot-every flag
// values into Ingestor options. An empty dataDir means no durability
// (fsync and snapshotEvery must then be unset too — NewIngestor rejects
// them); empty fsync and zero snapshotEvery mean "use the default".
func DurabilityOptions(dataDir, fsync string, snapshotEvery int) ([]streamagg.Option, error) {
	var opts []streamagg.Option
	if dataDir != "" {
		opts = append(opts, streamagg.WithDataDir(dataDir))
	}
	if fsync != "" {
		p, err := persist.ParseFsync(fsync)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", streamagg.ErrBadParam, err)
		}
		opts = append(opts, streamagg.WithFsync(p))
	}
	if snapshotEvery > 0 {
		opts = append(opts, streamagg.WithSnapshotEvery(snapshotEvery))
	}
	return opts, nil
}
