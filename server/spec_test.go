package server

import (
	"errors"
	"testing"
	"time"

	streamagg "repro"
)

func TestParseSpec(t *testing.T) {
	name, kind, opts, err := ParseSpec("hot=freq,eps=0.001")
	if err != nil || name != "hot" || kind != streamagg.KindFreq || len(opts) != 1 {
		t.Fatalf("ParseSpec: %q %q %d opts, %v", name, kind, len(opts), err)
	}
	p := streamagg.NewPipeline()
	if err := AddSpecs(p, []string{
		"hot=freq,eps=0.001",
		"recent=sliding-freq,window=65536,variant=work",
		"sketch=cm,eps=1e-4,delta=0.001,seed=7,shards=4",
		"dist=count-min-range,bits=20",
		"ones=counter,window=4096",
		"load=sum,window=4096,max=1000",
		"cs=count-sketch",
	}); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 7 {
		t.Fatalf("Len = %d, want 7", p.Len())
	}
	if agg, _ := p.Get("sketch"); agg.Kind() != streamagg.KindSharded {
		t.Fatalf("shards option ignored: %s", agg.Kind())
	}

	for _, bad := range []string{
		"",                     // no name=kind
		"justname",             // no kind
		"x=unknown-kind",       // unknown kind
		"x=freq,eps",           // option without value
		"x=freq,nope=1",        // unknown option
		"x=freq,eps=abc",       // malformed value
		"x=freq,variant=wrong", // bad variant
		"x=freq,window=1",      // inapplicable option (library rejects)
		"hot=freq",             // duplicate name (library rejects)
	} {
		if err := AddSpecs(p, []string{bad}); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}

	opts, err = IngestOptions(1024, 2*time.Millisecond, 8192, "reject")
	if err != nil || len(opts) != 4 {
		t.Fatalf("IngestOptions: %d opts, %v", len(opts), err)
	}
	if _, err := IngestOptions(0, -1, 0, "bogus"); !errors.Is(err, streamagg.ErrBadParam) {
		t.Fatalf("bogus policy: %v", err)
	}
	if opts, err := IngestOptions(0, -1, 0, ""); err != nil || len(opts) != 0 {
		t.Fatalf("all-defaults: %d opts, %v", len(opts), err)
	}
	// Zero latency is a real setting (flush immediately), not "unset".
	if opts, err := IngestOptions(0, 0, 0, ""); err != nil || len(opts) != 1 {
		t.Fatalf("latency 0: %d opts, %v", len(opts), err)
	}
}
