package server

// Distributed-tracing gates for the serving layer: the middleware joins
// an incoming W3C traceparent, a sampled ingest's context rides the
// MPSC queue into the flush/WAL/apply spans, /debug/traces serves the
// result, /v1/stats links the slowest request back to its trace via the
// histogram exemplar, and — the acceptance drill — one trace ID spans
// edge ingest → federation push → root merge across two servers.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	streamagg "repro"
	"repro/federation"
	"repro/persist"
	"repro/trace"
)

// tracesResponse mirrors the /debug/traces JSON body.
type tracesResponse struct {
	SampleRate float64           `json:"sample_rate"`
	Traces     []trace.TraceJSON `json:"traces"`
}

func getTraces(t *testing.T, client *http.Client, base, query string) tracesResponse {
	t.Helper()
	var resp tracesResponse
	get(t, client, base+"/debug/traces"+query, &resp)
	return resp
}

// spanNames flattens one trace's span names for containment checks.
func spanNames(tr trace.TraceJSON) map[string]bool {
	names := make(map[string]bool, len(tr.Spans))
	for _, s := range tr.Spans {
		names[s.Name] = true
	}
	return names
}

// findTrace returns the first trace containing a span with the given
// name, or nil.
func findTrace(traces []trace.TraceJSON, span string) *trace.TraceJSON {
	for i := range traces {
		if spanNames(traces[i])[span] {
			return &traces[i]
		}
	}
	return nil
}

// TestServerTraceparentJoin: a rate-0 server must still record spans
// for requests whose caller sampled the trace — the cross-hop rule that
// makes federation traces work — and must record nothing otherwise.
func TestServerTraceparentJoin(t *testing.T) {
	_, ts := newTestServer(t)
	client := ts.Client()

	// Default sampling is 0: plain requests leave no trace.
	resp, err := client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := getTraces(t, client, ts.URL, ""); len(got.Traces) != 0 {
		t.Fatalf("rate-0 server recorded %d traces", len(got.Traces))
	}

	// A sampled caller's traceparent is joined regardless of local rate.
	const parent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	req, err := http.NewRequest("GET", ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", parent)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	got := getTraces(t, client, ts.URL, "")
	if len(got.Traces) != 1 {
		t.Fatalf("joined request recorded %d traces, want 1", len(got.Traces))
	}
	tr := got.Traces[0]
	if tr.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("server rooted its own trace %s instead of joining the caller's", tr.TraceID)
	}
	if !spanNames(tr)[("http.healthz")] {
		t.Fatalf("trace is missing the handler span: %+v", tr)
	}
	// An unsampled traceparent must not record either.
	req.Header.Set("traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := getTraces(t, client, ts.URL, ""); len(got.Traces) != 1 {
		t.Fatalf("unsampled traceparent changed the trace count to %d", len(got.Traces))
	}
}

// TestServerTraceBatchLifecycle: with sampling on and durability
// configured, one ingest request's trace must contain the whole batch
// lifecycle — handler, enqueue, flush (joined across the MPSC queue),
// WAL append, and sink apply — under a single trace ID, and the stats
// endpoint must link the slowest request to a recorded trace.
func TestServerTraceBatchLifecycle(t *testing.T) {
	_, ts := newTestServer(t,
		streamagg.WithTracer(trace.New(trace.Config{SampleRate: 1})),
		streamagg.WithDataDir(t.TempDir()), streamagg.WithFsync(persist.FsyncNever))
	client := ts.Client()

	ingestSync(t, client, ts.URL, []uint64{1, 2, 3, 4, 5})

	got := getTraces(t, client, ts.URL, "?handler=http.ingest")
	if len(got.Traces) == 0 {
		t.Fatal("no ingest trace recorded at sample rate 1")
	}
	tr := got.Traces[0]
	names := spanNames(tr)
	for _, want := range []string{
		"http.ingest", "ingest.enqueue", "ingest.flush", "persist.wal_append", "sink.apply",
	} {
		if !names[want] {
			t.Errorf("ingest trace %s is missing span %q (has %v)", tr.TraceID, want, names)
		}
	}
	// Spans parent correctly: flush's parent is the enqueue span.
	byName := make(map[string]trace.SpanJSON)
	for _, s := range tr.Spans {
		byName[s.Name] = s
	}
	if byName["ingest.flush"].ParentID != byName["ingest.enqueue"].SpanID {
		t.Errorf("flush parent = %s, want enqueue span %s",
			byName["ingest.flush"].ParentID, byName["ingest.enqueue"].SpanID)
	}
	if byName["sink.apply"].ParentID != byName["ingest.flush"].SpanID {
		t.Errorf("apply parent = %s, want flush span %s",
			byName["sink.apply"].ParentID, byName["ingest.flush"].SpanID)
	}

	// The exemplar bridge: /v1/stats names a slowest trace per handler,
	// and the ingest one must be a recorded trace ID.
	var stats struct {
		Slowest map[string]struct {
			TraceID string  `json:"trace_id"`
			Seconds float64 `json:"seconds"`
		} `json:"slowest"`
	}
	get(t, client, ts.URL+"/v1/stats", &stats)
	ex, ok := stats.Slowest["ingest"]
	if !ok || ex.TraceID == "" {
		t.Fatalf("stats slowest has no ingest exemplar: %+v", stats.Slowest)
	}
	found := false
	for _, rec := range getTraces(t, client, ts.URL, "").Traces {
		if rec.TraceID == ex.TraceID {
			found = true
		}
	}
	if !found {
		t.Errorf("slowest ingest trace %s is not in the ring", ex.TraceID)
	}
}

// TestServerReadyz: liveness always answers 200; readiness fails with a
// reason during a restore replay and a graceful drain, and recovers
// when the restore window closes.
func TestServerReadyz(t *testing.T) {
	srv, ts := newTestServer(t)
	client := ts.Client()

	var rz struct{ Status, Reason string }
	get(t, client, ts.URL+"/readyz", &rz)
	if rz.Status != "ready" {
		t.Fatalf("fresh server readyz = %+v, want ready", rz)
	}

	// Simulate the restore replay window.
	reason := "restoring"
	srv.notReady.Store(&reason)
	resp, err := client.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body := json.NewDecoder(resp.Body)
	var notReady struct{ Status, Reason string }
	if err := body.Decode(&notReady); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || notReady.Reason != "restoring" {
		t.Fatalf("restoring readyz = %d %+v, want 503/restoring", resp.StatusCode, notReady)
	}
	// Liveness is unaffected.
	var hz struct{ Status string }
	get(t, client, ts.URL+"/healthz", &hz)
	if hz.Status != "ok" {
		t.Fatalf("healthz during restore = %+v", hz)
	}
	srv.notReady.Store(nil)
	get(t, client, ts.URL+"/readyz", &rz)
	if rz.Status != "ready" {
		t.Fatalf("readyz after restore = %+v, want ready", rz)
	}

	// Graceful shutdown drains: readiness fails first (the mux keeps
	// serving under httptest, standing in for in-flight requests).
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		t.Fatal(err)
	}
	resp, err = client.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", resp.StatusCode)
	}
}

// TestServerFederationTraceSingleID is the tracing acceptance drill:
// ingest at a sampled edge, push to a root, and verify the SAME trace
// ID covers the edge's handler/enqueue spans, the edge's push span, and
// the root's merge + apply spans — one distributed trace across two
// processes' ring buffers.
func TestServerFederationTraceSingleID(t *testing.T) {
	_, rootURL := fedServer(t, 0)
	edgeSrv, err := New(fedTestPipeline(t, 0),
		streamagg.WithTracer(trace.New(trace.Config{SampleRate: 1})))
	if err != nil {
		t.Fatal(err)
	}
	edgeTS := httptest.NewServer(edgeSrv.Handler())
	t.Cleanup(edgeTS.Close)
	t.Cleanup(func() { _ = edgeSrv.Ingestor().Close() })
	client := edgeTS.Client()

	// Ingest through HTTP so the handler records the sampled root span
	// the pusher will parent on.
	ingestSync(t, client, edgeTS.URL, []uint64{10, 20, 30, 20, 10})
	edgeIngestSC := edgeSrv.LastIngestContext()
	if !edgeIngestSC.IsValid() || !edgeIngestSC.Sampled {
		t.Fatalf("edge did not record a sampled ingest context: %+v", edgeIngestSC)
	}

	pusher, err := federation.NewPusher(federation.PusherConfig{
		URL:    rootURL + "/v1/merge",
		Node:   "edge-traced",
		Source: edgeSrv,
		Mode:   federation.ModeFull,
		Tracer: edgeSrv.Tracer(),
		Parent: edgeSrv.LastIngestContext,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pusher.Push(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Edge ring: ingest and push share one trace.
	edgeTraces := getTraces(t, client, edgeTS.URL, "").Traces
	pushTrace := findTrace(edgeTraces, "federation.push")
	if pushTrace == nil {
		t.Fatalf("edge has no federation.push span: %+v", edgeTraces)
	}
	if !spanNames(*pushTrace)["http.ingest"] {
		t.Fatalf("push span did not join the ingest trace: %+v", pushTrace)
	}
	if pushTrace.TraceID != edgeIngestSC.Trace.String() {
		t.Fatalf("push trace %s != ingest trace %s", pushTrace.TraceID, edgeIngestSC.Trace.String())
	}

	// Root ring (root sampling is 0 — it joined via traceparent): the
	// SAME trace ID carries the merge handler and the apply span.
	rootTraces := getTraces(t, http.DefaultClient, rootURL, "").Traces
	rootTrace := findTrace(rootTraces, "federation.apply")
	if rootTrace == nil {
		t.Fatalf("root has no federation.apply span: %+v", rootTraces)
	}
	if rootTrace.TraceID != pushTrace.TraceID {
		t.Fatalf("root trace %s != edge trace %s — the trace broke at the HTTP hop",
			rootTrace.TraceID, pushTrace.TraceID)
	}
	if !spanNames(*rootTrace)["http.merge"] {
		t.Fatalf("root trace is missing the merge handler span: %+v", rootTrace)
	}
	// The apply span carries the pushing node's identity.
	for _, s := range rootTrace.Spans {
		if s.Name == "federation.apply" && s.Attrs["node"] != "edge-traced" {
			t.Fatalf("apply span attrs = %v, want node=edge-traced", s.Attrs)
		}
	}
}
