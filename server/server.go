// Package server exposes a streamagg Pipeline over HTTP/JSON — the
// serving layer in front of the paper's minibatch compute backend.
// Incoming updates are routed through an Ingestor (the asynchronous
// minibatcher with backpressure), so arbitrarily small ingest requests
// still reach the aggregates as well-sized minibatches; queries are
// answered at minibatch boundaries through the Pipeline's keyed surface.
//
// Endpoints (all JSON unless noted):
//
//	POST /v1/ingest           {"items":[..],"strings":[..],"sync":bool} or a bare array
//	POST /v1/flush            drain the ingest queue into the aggregates
//	GET  /v1/{agg}/estimate   ?item=N | ?key=S (hashed)
//	GET  /v1/{agg}/value
//	GET  /v1/{agg}/heavyhitters  ?phi=F
//	GET  /v1/{agg}/topk       ?k=N
//	GET  /v1/{agg}/rangecount ?lo=N&hi=N
//	GET  /v1/{agg}/quantile   ?q=F
//	GET  /v1/stats            pipeline + ingest counters
//	GET  /v1/persist/stats    durability (WAL + snapshot) counters
//	POST /v1/checkpoint       drained, atomic; returns the envelope (octet-stream)
//	POST /v1/restore          body = a checkpoint envelope
//	GET  /healthz
//
// With a data directory configured (WithDataDir / -data-dir), the server
// recovers its state on startup from the persist subsystem's newest
// snapshot plus WAL replay, and every applied minibatch is logged before
// it becomes queryable; /v1/persist/stats reports the WAL position,
// snapshot progress, and fsync counters (404 when durability is off).
//
// Unknown aggregate names map to 404, unsupported queries and bad
// parameters to 400, a full queue under BackpressureReject to 429, and a
// closed ingestor to 503.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	streamagg "repro"
	"repro/federation"
	"repro/metrics"
	"repro/trace"
)

// Request-body caps: ingest requests are bounded to keep one client from
// ballooning the heap; checkpoint envelopes are sketches and summaries,
// small by construction, but sharded pipelines multiply them.
const (
	maxIngestBody     = 64 << 20
	maxCheckpointBody = 256 << 20
)

// Server serves one Pipeline over HTTP, with all ingestion funneled
// through a single Ingestor.
type Server struct {
	pipe  *streamagg.Pipeline
	ing   *streamagg.Ingestor
	mux   *http.ServeMux
	hs    *http.Server
	start time.Time

	reg       *metrics.Registry
	m         *serverMetrics
	metricsOn atomic.Bool

	// Tracing: tracer samples and retains spans (rate 0 by default —
	// the disabled path stays allocation-free); lastIngest remembers the
	// most recent sampled ingest root so the federation pusher can join
	// its trace (edge capture → push → root merge as one trace);
	// notReady, when non-nil, is the reason /readyz answers 503
	// (restore replay in progress, graceful drain).
	tracer     *trace.Tracer
	lastIngest atomic.Pointer[trace.SpanContext]
	notReady   atomic.Pointer[string]

	// Federation: fed folds POST /v1/merge pushes from edge nodes into
	// the pipeline and serves the merged global view to queries;
	// pristine is the pipeline's construction-time checkpoint, the
	// reset target for delta-mode pushes (Capture).
	fed      *federation.Root
	pristine []byte

	// Bounded-ingest validation: the tightest per-value bound among the
	// pipeline's members (MaxUint64 when none is bounded), and who
	// imposes it. Ingest requests are checked against it at enqueue
	// time so one poison value gets its own 400 instead of failing the
	// whole coalesced minibatch it would be batched into. Restore
	// rebuilds the aggregates (possibly with a different bound) and
	// republishes; boundMu spans each handler's validate+enqueue pair
	// so an item can never be enqueued against a bound that a
	// concurrent restore has already replaced.
	bound   atomic.Pointer[ingestBound]
	boundMu sync.RWMutex
}

// ingestBound is the published enqueue-time validation limit.
type ingestBound struct {
	max uint64
	agg string
}

// computeBound scans the pipeline for the tightest bounded-kind limit
// and publishes it.
func (s *Server) computeBound() {
	b := &ingestBound{max: math.MaxUint64}
	for _, name := range s.pipe.Names() {
		if agg, ok := s.pipe.Get(name); ok {
			if ba, ok := agg.(interface{ MaxValue() uint64 }); ok && ba.MaxValue() < b.max {
				b.max, b.agg = ba.MaxValue(), name
			}
		}
	}
	s.bound.Store(b)
}

// New builds a Server over pipe. Options are the Ingestor's batching
// subset (WithBatchSize, WithMaxLatency, WithQueueCap, WithBackpressure,
// plus the durability and metrics options); anything else is rejected
// with streamagg.ErrBadParam. The server's observability registry —
// shared with the Ingestor and, for a durable server, the persist
// store — is served at GET /metrics.
func New(pipe *streamagg.Pipeline, opts ...streamagg.Option) (*Server, error) {
	if pipe == nil {
		return nil, fmt.Errorf("%w: nil pipeline", streamagg.ErrBadParam)
	}
	// Capture the empty-pipeline checkpoint before the Ingestor runs
	// durable recovery into pipe: this is what a delta-mode Capture
	// swaps back in, so a delta is always "everything since the last
	// push", never "everything since the process started minus the
	// recovered state".
	pristine, err := pipe.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("checkpointing pristine pipeline: %w", err)
	}
	// The server's defaults go first so caller-supplied options (applied
	// later) win; either way the Ingestor tells us which registry and
	// tracer it actually publishes to. The default tracer samples
	// nothing — tracing is armed per deployment via WithTracer or
	// Tracer().SetSampleRate.
	ing, err := streamagg.NewIngestor(pipe,
		append([]streamagg.Option{
			streamagg.WithMetricsRegistry(metrics.NewRegistry()),
			streamagg.WithTracer(trace.New(trace.Config{SampleRate: 0})),
		}, opts...)...)
	if err != nil {
		return nil, err
	}
	s := &Server{
		pipe:     pipe,
		ing:      ing,
		mux:      http.NewServeMux(),
		start:    time.Now(),
		reg:      ing.MetricsRegistry(),
		tracer:   ing.Tracer(),
		pristine: pristine,
	}
	s.metricsOn.Store(true)
	s.computeBound()
	s.m = newServerMetrics(s.reg, pipe, s.start)
	s.fed = federation.NewRoot(pipe, s.reg)
	s.mux.HandleFunc("POST /v1/merge", s.instrument("merge", s.handleMerge))
	s.mux.HandleFunc("POST /v1/ingest", s.instrument("ingest", s.handleIngest))
	s.mux.HandleFunc("POST /v1/flush", s.instrument("flush", s.handleFlush))
	s.mux.HandleFunc("POST /v1/checkpoint", s.instrument("checkpoint", s.handleCheckpoint))
	s.mux.HandleFunc("POST /v1/restore", s.instrument("restore", s.handleRestore))
	s.mux.HandleFunc("GET /v1/stats", s.instrument("stats", s.handleStats))
	s.mux.HandleFunc("GET /v1/persist/stats", s.instrument("persist_stats", s.handlePersistStats))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.instrument("readyz", s.handleReadyz))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.Handle("GET /debug/traces", s.tracer.Handler())
	s.mux.HandleFunc("GET /v1/{agg}/{verb}", s.instrument("query", s.handleQuery))
	s.hs = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	return s, nil
}

// SetMetricsEnabled gates GET /metrics (enabled by default); disabled,
// the endpoint 404s. The instruments keep updating either way.
func (s *Server) SetMetricsEnabled(on bool) { s.metricsOn.Store(on) }

// Metrics returns the server's observability registry.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Tracer returns the server's span tracer (never nil; sampling rate 0
// unless configured otherwise).
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// LastIngestContext returns the span context of the most recent sampled
// ingest request (zero value if none was sampled yet). The federation
// pusher uses it to parent its push span, so one trace follows data
// from edge capture through the root's merge.
func (s *Server) LastIngestContext() trace.SpanContext {
	if p := s.lastIngest.Load(); p != nil {
		return *p
	}
	return trace.SpanContext{}
}

// Handler returns the route table, for mounting under httptest or an
// outer mux.
func (s *Server) Handler() http.Handler { return s.mux }

// Pipeline returns the served pipeline.
func (s *Server) Pipeline() *streamagg.Pipeline { return s.pipe }

// Ingestor returns the serving-side minibatcher.
func (s *Server) Ingestor() *streamagg.Ingestor { return s.ing }

// ListenAndServe binds addr and serves until Shutdown. The nil error on
// graceful shutdown follows http.ErrServerClosed semantics, already
// translated.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve serves on an existing listener until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	err := s.hs.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown gracefully stops the HTTP listener (waiting for in-flight
// requests up to the context's deadline), then drains and closes the
// Ingestor so nothing accepted is lost. The drain also honors ctx: on
// expiry Shutdown returns the context error while the drain keeps
// running in the background — the caller's kill window, not the queue
// depth, bounds how long shutdown takes.
func (s *Server) Shutdown(ctx context.Context) error {
	// Fail readiness first: a load balancer probing /readyz stops
	// routing new work while in-flight requests finish.
	reason := "draining"
	s.notReady.Store(&reason)
	httpErr := s.hs.Shutdown(ctx)
	drained := make(chan error, 1)
	go func() { drained <- s.ing.Close() }()
	var ingErr error
	select {
	case ingErr = <-drained:
	case <-ctx.Done():
		ingErr = fmt.Errorf("draining ingest queue: %w", ctx.Err())
	}
	if httpErr != nil {
		return httpErr
	}
	return ingErr
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// ingestRequest is the rich form of the ingest body; a bare JSON array
// is accepted as {"items": [...]}.
type ingestRequest struct {
	Items   []uint64 `json:"items"`
	Strings []string `json:"strings"`
	Sync    bool     `json:"sync"`
}

// readBody reads a capped request body, mapping only actual cap hits to
// 413 (other read failures — resets, timeouts — are the client's 400).
func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, bool) {
	var buf bytes.Buffer
	return readBodyInto(&buf, w, r, limit)
}

// readBodyInto is readBody reading into a caller-owned (typically
// pooled) buffer; the returned bytes alias it.
func readBodyInto(buf *bytes.Buffer, w http.ResponseWriter, r *http.Request, limit int64) ([]byte, bool) {
	buf.Reset()
	_, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, limit))
	if err == nil {
		return buf.Bytes(), true
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeError(w, http.StatusRequestEntityTooLarge, err)
	} else {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
	}
	return nil, false
}

// ingestScratch holds one ingest request's reusable buffers: the raw
// body, the decoded fields (json.Unmarshal refills the existing Items
// backing array), and the merged items+hashed-strings slice. Pooled —
// the hot ingest path allocates nothing once the pool is warm. Safe to
// recycle because PutBatchContext copies the items before returning.
type ingestScratch struct {
	body   bytes.Buffer
	req    ingestRequest
	merged []uint64
}

var ingestPool = sync.Pool{New: func() any { return new(ingestScratch) }}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	sc := ingestPool.Get().(*ingestScratch)
	defer ingestPool.Put(sc)
	body, ok := readBodyInto(&sc.body, w, r, maxIngestBody)
	if !ok {
		return
	}
	sc.req.Items = sc.req.Items[:0]
	sc.req.Strings = sc.req.Strings[:0]
	sc.req.Sync = false
	req := &sc.req
	var err error
	if trimmed := bytes.TrimLeft(body, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '[' {
		err = json.Unmarshal(trimmed, &req.Items)
	} else {
		err = json.Unmarshal(body, req)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed ingest body: %w", err))
		return
	}
	items := req.Items
	if len(req.Strings) > 0 {
		merged := sc.merged[:0]
		merged = append(merged, items...)
		for _, key := range req.Strings {
			merged = append(merged, streamagg.HashString(key))
		}
		sc.merged = merged
		items = merged
	}
	// Validate bounded-kind items before they enter the queue: a value
	// over a member aggregate's bound would otherwise fail the whole
	// coalesced minibatch downstream — poisoning innocent co-batched
	// items from other clients and wedging the sink with a sticky
	// error. Rejected here, the bad request gets its own 400 and
	// nothing is enqueued. The read lock is held through the enqueue so
	// a concurrent restore cannot install a tighter bound between the
	// check and the queue (a parked producer holding it never blocks
	// the drain that would free it — the flush worker takes no lock).
	s.boundMu.RLock()
	if b := s.bound.Load(); b.max < math.MaxUint64 {
		for i, v := range items {
			if v > b.max {
				s.boundMu.RUnlock()
				writeError(w, http.StatusBadRequest,
					fmt.Errorf("item[%d]=%d exceeds aggregate %q's value bound %d; batch refused",
						i, v, b.agg, b.max))
				return
			}
		}
	}
	// Context-aware: a client that disconnects while parked on a full
	// queue (BackpressureBlock) unblocks instead of leaking the handler.
	// On a sampled request the enqueue span's context rides into the
	// queue with the items, so the eventual flush joins this trace; on
	// the unsampled path every span below is nil and free.
	span := trace.SpanFromContext(r.Context())
	enq := s.tracer.Child("ingest.enqueue", span.Context())
	enq.SetInt("items", int64(len(items)))
	accepted, err := s.ing.PutBatchSpan(r.Context(), items, enq.Context())
	s.boundMu.RUnlock()
	enq.SetInt("accepted", int64(accepted))
	if err != nil {
		enq.SetAttr("error", err.Error())
	}
	enq.End()
	if sc := span.Context(); sc.Sampled {
		s.lastIngest.Store(&sc)
	}
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, streamagg.ErrOverloaded):
			code = http.StatusTooManyRequests
		case errors.Is(err, streamagg.ErrClosed):
			code = http.StatusServiceUnavailable
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			code = http.StatusRequestTimeout
		}
		// A blocked producer may have had a prefix accepted (and it will
		// still be flushed); report it so retries don't double-ingest.
		writeJSON(w, code, map[string]any{
			"error":    err.Error(),
			"accepted": accepted,
			"dropped":  0,
		})
		return
	}
	if req.Sync {
		if err := s.ing.Flush(); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"accepted":    accepted,
		"dropped":     len(items) - accepted,
		"queue_depth": s.ing.QueueDepth(),
	})
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if err := s.ing.Flush(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"stream_len": s.pipe.StreamLen()})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	ckpt, err := s.ing.Checkpoint()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(ckpt)
}

// Federation returns the merge fan-in target behind POST /v1/merge.
func (s *Server) Federation() *federation.Root { return s.fed }

// Capture implements federation.Source for this server's pipeline:
// Capture(false) checkpoints the current state at a quiesced minibatch
// boundary; Capture(true) additionally resets the pipeline to its
// construction-time (pristine) state in the same quiesced step, so the
// returned delta exists only in the outbound payload.
func (s *Server) Capture(delta bool) ([]byte, error) {
	if delta {
		// A delta reset rebuilds the aggregates; the value bound is
		// config-derived and the pristine state shares it, so no
		// computeBound republish is needed — but hold the write lock so
		// no ingest validates against a pipeline mid-swap.
		s.boundMu.Lock()
		defer s.boundMu.Unlock()
		return s.ing.Swap(s.pristine)
	}
	return s.ing.Checkpoint()
}

// handleMerge lands one federation push (see the federation package for
// envelope and dedup semantics). Replies: 200 applied; 409 with a
// machine-readable "reason" of "duplicate"/"stale" (already landed,
// safe to drop) or "incompatible" (will never land); 400 for bodies
// that don't decode.
func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r, maxCheckpointBody)
	if !ok {
		return
	}
	env, err := federation.DecodeEnvelope(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// When the pushing edge sampled this trace, the middleware joined it
	// via traceparent; the apply span then completes the cross-node
	// picture: edge capture → push → root merge, one trace ID.
	span := trace.SpanFromContext(r.Context())
	apply := s.tracer.Child("federation.apply", span.Context())
	apply.SetAttr("node", env.Node)
	apply.SetInt("epoch", int64(env.Epoch))
	apply.SetInt("seq", int64(env.Seq))
	applyErr := s.fed.Apply(env)
	if applyErr != nil {
		apply.SetAttr("error", applyErr.Error())
	}
	apply.End()
	if err := applyErr; err != nil {
		var stale *federation.StaleError
		switch {
		case errors.As(err, &stale):
			writeJSON(w, http.StatusConflict, map[string]any{
				"error":  err.Error(),
				"reason": stale.Reason(),
				"epoch":  stale.Epoch,
				"seq":    stale.Seq,
			})
		case federation.Incompatible(err):
			writeJSON(w, http.StatusConflict, map[string]any{
				"error":  err.Error(),
				"reason": "incompatible",
			})
		case errors.Is(err, federation.ErrBadEnvelope), errors.Is(err, streamagg.ErrBadParam):
			writeError(w, http.StatusBadRequest, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	if env.Mode == federation.ModeDelta {
		// A delta merged into the base outside the WAL'd ingest path;
		// snapshot so a crash doesn't silently drop an acknowledged
		// push. Best-effort, like the background snapshotter: on
		// failure the push is still applied in memory and the store
		// records the failure.
		_ = s.ing.ForceSnapshot()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"applied": true,
		"node":    env.Node,
		"epoch":   env.Epoch,
		"seq":     env.Seq,
	})
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r, maxCheckpointBody)
	if !ok {
		return
	}
	// Restore rebuilds the aggregates from the envelope, whose
	// parameters (e.g. a WindowSum bound) need not match the serving
	// config — republish the enqueue-time validation limit. The write
	// lock excludes in-flight ingest validate+enqueue pairs. Readiness
	// fails for the duration: queries answered mid-rebuild would mix
	// old and new state.
	reason := "restoring"
	s.notReady.Store(&reason)
	defer s.notReady.CompareAndSwap(&reason, nil)
	s.boundMu.Lock()
	err := s.ing.Restore(body)
	if err == nil {
		s.computeBound()
		// The restored base may share the old stream length; drop the
		// cached federation view rather than risk serving it.
		s.fed.Invalidate()
	}
	s.boundMu.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"stream_len": s.pipe.StreamLen()})
}

// aggInfo is one pipeline member in the stats response.
type aggInfo struct {
	Name       string `json:"name"`
	Kind       string `json:"kind"`
	StreamLen  int64  `json:"stream_len"`
	SpaceWords int    `json:"space_words"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	names := s.pipe.Names()
	aggs := make([]aggInfo, 0, len(names))
	for _, name := range names {
		agg, ok := s.pipe.Get(name)
		if !ok {
			continue
		}
		aggs = append(aggs, aggInfo{
			Name:       name,
			Kind:       string(agg.Kind()),
			StreamLen:  agg.StreamLen(),
			SpaceWords: agg.SpaceWords(),
		})
	}
	stats := map[string]any{
		"uptime_seconds": time.Since(s.start).Seconds(),
		"stream_len":     s.pipe.StreamLen(),
		"space_words":    s.pipe.SpaceWords(),
		"aggregates":     aggs,
		"ingest":         s.ing.Stats(),
	}
	if nodes := s.fed.Nodes(); len(nodes) > 0 {
		stats["federation"] = map[string]any{"nodes": nodes}
	}
	// Exemplars: the trace behind each handler's slowest observed
	// request, when tracing has sampled one — the bridge from "p99 is
	// bad" to the exact trace that caused it.
	slowest := make(map[string]any)
	for label, h := range s.m.latency {
		if tid, v := h.Exemplar(); tid != "" {
			slowest[label] = map[string]any{
				"trace_id": tid,
				"seconds":  float64(v) / 1e9,
			}
		}
	}
	if len(slowest) > 0 {
		stats["slowest"] = slowest
	}
	writeJSON(w, http.StatusOK, stats)
}

func (s *Server) handlePersistStats(w http.ResponseWriter, r *http.Request) {
	st := s.ing.Persist()
	if st == nil {
		writeError(w, http.StatusNotFound, errors.New("durability not configured (start with -data-dir)"))
		return
	}
	writeJSON(w, http.StatusOK, st.Stats())
}

// handleHealthz is the liveness probe: the process is up and serving
// HTTP. It never reports anything else — restart-worthy conditions
// (deadlock, OOM) can't answer at all, and everything softer belongs to
// readiness.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 503 with a reason while the
// server should not receive traffic (restore replay in progress,
// graceful drain), 200 otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if reason := s.notReady.Load(); reason != nil {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"status": "unavailable", "reason": *reason})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// param helpers: every malformed value is a 400 with the offending name.
func floatParam(r *http.Request, name string, def float64) (float64, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad query parameter %s=%q", name, s)
	}
	return v, nil
}

func uintParam(r *http.Request, name string, def uint64) (uint64, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad query parameter %s=%q", name, s)
	}
	return v, nil
}

func intParam(r *http.Request, name string, def int) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad query parameter %s=%q", name, s)
	}
	return v, nil
}

// handleQuery dispatches the six query verbs through the Pipeline's
// keyed surface. Queries see the state as of the last flushed minibatch
// boundary; clients that need read-your-writes POST /v1/flush (or ingest
// with "sync":true) first. On a federation root the verbs read the
// merged global view (local pipeline ⊕ every edge's contribution);
// without pushes that view IS the local pipeline, at zero extra cost.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("agg")
	verb := r.PathValue("verb")
	pipe := s.fed.View()
	var result any
	var err error
	switch verb {
	case "estimate":
		var item uint64
		switch {
		case r.URL.Query().Get("key") != "":
			item = streamagg.HashString(r.URL.Query().Get("key"))
		case r.URL.Query().Get("item") != "":
			if item, err = uintParam(r, "item", 0); err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
		default:
			writeError(w, http.StatusBadRequest, errors.New("estimate needs ?item=N or ?key=S"))
			return
		}
		var est int64
		est, err = pipe.Estimate(name, item)
		result = map[string]any{"item": item, "estimate": est}
	case "value":
		var v int64
		v, err = pipe.Value(name)
		result = map[string]any{"value": v}
	case "heavyhitters":
		var phi float64
		if phi, err = floatParam(r, "phi", 0.01); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// NaN fails both comparisons, so it lands here too.
		if !(phi > 0 && phi <= 1) {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("%w: phi=%v (want in (0, 1])", streamagg.ErrBadParam, phi))
			return
		}
		var items []streamagg.ItemCount
		items, err = pipe.HeavyHitters(name, phi)
		result = map[string]any{"phi": phi, "items": itemCounts(items)}
	case "topk":
		var k int
		if k, err = intParam(r, "k", 10); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if k < 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("%w: k=%d (want >= 0)", streamagg.ErrBadParam, k))
			return
		}
		var items []streamagg.ItemCount
		items, err = pipe.TopK(name, k)
		result = map[string]any{"k": k, "items": itemCounts(items)}
	case "rangecount":
		var lo, hi uint64
		if lo, err = uintParam(r, "lo", 0); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if hi, err = uintParam(r, "hi", 0); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if lo > hi {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("%w: empty range lo=%d > hi=%d", streamagg.ErrBadParam, lo, hi))
			return
		}
		var count int64
		count, err = pipe.RangeCount(name, lo, hi)
		result = map[string]any{"lo": lo, "hi": hi, "count": count}
	case "quantile":
		var q float64
		if q, err = floatParam(r, "q", 0.5); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if !(q >= 0 && q <= 1) {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("%w: q=%v (want in [0, 1])", streamagg.ErrBadParam, q))
			return
		}
		var v uint64
		v, err = pipe.Quantile(name, q)
		result = map[string]any{"q": q, "quantile": v}
	default:
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown query verb %q", verb))
		return
	}
	if err != nil {
		switch {
		case errors.Is(err, streamagg.ErrNoSuchAggregate):
			writeError(w, http.StatusNotFound, err)
		case errors.Is(err, streamagg.ErrUnsupportedQuery), errors.Is(err, streamagg.ErrBadParam):
			writeError(w, http.StatusBadRequest, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, result)
}

// itemCount mirrors streamagg.ItemCount with JSON tags.
type itemCount struct {
	Item  uint64 `json:"item"`
	Count int64  `json:"count"`
}

func itemCounts(in []streamagg.ItemCount) []itemCount {
	out := make([]itemCount, len(in))
	for i, ic := range in {
		out[i] = itemCount{Item: ic.Item, Count: ic.Count}
	}
	return out
}
