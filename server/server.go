// Package server exposes a streamagg Pipeline over HTTP/JSON — the
// serving layer in front of the paper's minibatch compute backend.
// Incoming updates are routed through an Ingestor (the asynchronous
// minibatcher with backpressure), so arbitrarily small ingest requests
// still reach the aggregates as well-sized minibatches; queries are
// answered at minibatch boundaries through the Pipeline's keyed surface.
//
// Endpoints (all JSON unless noted):
//
//	POST /v1/ingest           {"items":[..],"strings":[..],"sync":bool} or a bare array
//	POST /v1/flush            drain the ingest queue into the aggregates
//	GET  /v1/{agg}/estimate   ?item=N | ?key=S (hashed)
//	GET  /v1/{agg}/value
//	GET  /v1/{agg}/heavyhitters  ?phi=F
//	GET  /v1/{agg}/topk       ?k=N
//	GET  /v1/{agg}/rangecount ?lo=N&hi=N
//	GET  /v1/{agg}/quantile   ?q=F
//	GET  /v1/stats            pipeline + ingest counters
//	GET  /v1/persist/stats    durability (WAL + snapshot) counters
//	POST /v1/checkpoint       drained, atomic; returns the envelope (octet-stream)
//	POST /v1/restore          body = a checkpoint envelope
//	GET  /healthz
//
// With a data directory configured (WithDataDir / -data-dir), the server
// recovers its state on startup from the persist subsystem's newest
// snapshot plus WAL replay, and every applied minibatch is logged before
// it becomes queryable; /v1/persist/stats reports the WAL position,
// snapshot progress, and fsync counters (404 when durability is off).
//
// Unknown aggregate names map to 404, unsupported queries and bad
// parameters to 400, a full queue under BackpressureReject to 429, and a
// closed ingestor to 503.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	streamagg "repro"
)

// Request-body caps: ingest requests are bounded to keep one client from
// ballooning the heap; checkpoint envelopes are sketches and summaries,
// small by construction, but sharded pipelines multiply them.
const (
	maxIngestBody     = 64 << 20
	maxCheckpointBody = 256 << 20
)

// Server serves one Pipeline over HTTP, with all ingestion funneled
// through a single Ingestor.
type Server struct {
	pipe  *streamagg.Pipeline
	ing   *streamagg.Ingestor
	mux   *http.ServeMux
	hs    *http.Server
	start time.Time
}

// New builds a Server over pipe. Options are the Ingestor's batching
// subset (WithBatchSize, WithMaxLatency, WithQueueCap, WithBackpressure);
// anything else is rejected with streamagg.ErrBadParam.
func New(pipe *streamagg.Pipeline, opts ...streamagg.Option) (*Server, error) {
	if pipe == nil {
		return nil, fmt.Errorf("%w: nil pipeline", streamagg.ErrBadParam)
	}
	ing, err := streamagg.NewIngestor(pipe, opts...)
	if err != nil {
		return nil, err
	}
	s := &Server{pipe: pipe, ing: ing, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("POST /v1/flush", s.handleFlush)
	s.mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("POST /v1/restore", s.handleRestore)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/persist/stats", s.handlePersistStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/{agg}/{verb}", s.handleQuery)
	s.hs = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	return s, nil
}

// Handler returns the route table, for mounting under httptest or an
// outer mux.
func (s *Server) Handler() http.Handler { return s.mux }

// Pipeline returns the served pipeline.
func (s *Server) Pipeline() *streamagg.Pipeline { return s.pipe }

// Ingestor returns the serving-side minibatcher.
func (s *Server) Ingestor() *streamagg.Ingestor { return s.ing }

// ListenAndServe binds addr and serves until Shutdown. The nil error on
// graceful shutdown follows http.ErrServerClosed semantics, already
// translated.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve serves on an existing listener until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	err := s.hs.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown gracefully stops the HTTP listener (waiting for in-flight
// requests up to the context's deadline), then drains and closes the
// Ingestor so nothing accepted is lost. The drain also honors ctx: on
// expiry Shutdown returns the context error while the drain keeps
// running in the background — the caller's kill window, not the queue
// depth, bounds how long shutdown takes.
func (s *Server) Shutdown(ctx context.Context) error {
	httpErr := s.hs.Shutdown(ctx)
	drained := make(chan error, 1)
	go func() { drained <- s.ing.Close() }()
	var ingErr error
	select {
	case ingErr = <-drained:
	case <-ctx.Done():
		ingErr = fmt.Errorf("draining ingest queue: %w", ctx.Err())
	}
	if httpErr != nil {
		return httpErr
	}
	return ingErr
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// ingestRequest is the rich form of the ingest body; a bare JSON array
// is accepted as {"items": [...]}.
type ingestRequest struct {
	Items   []uint64 `json:"items"`
	Strings []string `json:"strings"`
	Sync    bool     `json:"sync"`
}

// readBody reads a capped request body, mapping only actual cap hits to
// 413 (other read failures — resets, timeouts — are the client's 400).
func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err == nil {
		return body, true
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeError(w, http.StatusRequestEntityTooLarge, err)
	} else {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
	}
	return nil, false
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r, maxIngestBody)
	if !ok {
		return
	}
	var req ingestRequest
	var err error
	if trimmed := bytes.TrimLeft(body, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '[' {
		err = json.Unmarshal(trimmed, &req.Items)
	} else {
		err = json.Unmarshal(body, &req)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed ingest body: %w", err))
		return
	}
	items := req.Items
	if len(req.Strings) > 0 {
		merged := make([]uint64, 0, len(items)+len(req.Strings))
		merged = append(merged, items...)
		for _, key := range req.Strings {
			merged = append(merged, streamagg.HashString(key))
		}
		items = merged
	}
	// Context-aware: a client that disconnects while parked on a full
	// queue (BackpressureBlock) unblocks instead of leaking the handler.
	accepted, err := s.ing.PutBatchContext(r.Context(), items)
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, streamagg.ErrOverloaded):
			code = http.StatusTooManyRequests
		case errors.Is(err, streamagg.ErrClosed):
			code = http.StatusServiceUnavailable
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			code = http.StatusRequestTimeout
		}
		// A blocked producer may have had a prefix accepted (and it will
		// still be flushed); report it so retries don't double-ingest.
		writeJSON(w, code, map[string]any{
			"error":    err.Error(),
			"accepted": accepted,
			"dropped":  0,
		})
		return
	}
	if req.Sync {
		if err := s.ing.Flush(); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"accepted":    accepted,
		"dropped":     len(items) - accepted,
		"queue_depth": s.ing.QueueDepth(),
	})
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if err := s.ing.Flush(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"stream_len": s.pipe.StreamLen()})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	ckpt, err := s.ing.Checkpoint()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(ckpt)
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r, maxCheckpointBody)
	if !ok {
		return
	}
	if err := s.ing.Restore(body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"stream_len": s.pipe.StreamLen()})
}

// aggInfo is one pipeline member in the stats response.
type aggInfo struct {
	Name       string `json:"name"`
	Kind       string `json:"kind"`
	StreamLen  int64  `json:"stream_len"`
	SpaceWords int    `json:"space_words"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	names := s.pipe.Names()
	aggs := make([]aggInfo, 0, len(names))
	for _, name := range names {
		agg, ok := s.pipe.Get(name)
		if !ok {
			continue
		}
		aggs = append(aggs, aggInfo{
			Name:       name,
			Kind:       string(agg.Kind()),
			StreamLen:  agg.StreamLen(),
			SpaceWords: agg.SpaceWords(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_seconds": time.Since(s.start).Seconds(),
		"stream_len":     s.pipe.StreamLen(),
		"space_words":    s.pipe.SpaceWords(),
		"aggregates":     aggs,
		"ingest":         s.ing.Stats(),
	})
}

func (s *Server) handlePersistStats(w http.ResponseWriter, r *http.Request) {
	st := s.ing.Persist()
	if st == nil {
		writeError(w, http.StatusNotFound, errors.New("durability not configured (start with -data-dir)"))
		return
	}
	writeJSON(w, http.StatusOK, st.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// param helpers: every malformed value is a 400 with the offending name.
func floatParam(r *http.Request, name string, def float64) (float64, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad query parameter %s=%q", name, s)
	}
	return v, nil
}

func uintParam(r *http.Request, name string, def uint64) (uint64, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad query parameter %s=%q", name, s)
	}
	return v, nil
}

func intParam(r *http.Request, name string, def int) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad query parameter %s=%q", name, s)
	}
	return v, nil
}

// handleQuery dispatches the six query verbs through the Pipeline's
// keyed surface. Queries see the state as of the last flushed minibatch
// boundary; clients that need read-your-writes POST /v1/flush (or ingest
// with "sync":true) first.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("agg")
	verb := r.PathValue("verb")
	var result any
	var err error
	switch verb {
	case "estimate":
		var item uint64
		switch {
		case r.URL.Query().Get("key") != "":
			item = streamagg.HashString(r.URL.Query().Get("key"))
		case r.URL.Query().Get("item") != "":
			if item, err = uintParam(r, "item", 0); err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
		default:
			writeError(w, http.StatusBadRequest, errors.New("estimate needs ?item=N or ?key=S"))
			return
		}
		var est int64
		est, err = s.pipe.Estimate(name, item)
		result = map[string]any{"item": item, "estimate": est}
	case "value":
		var v int64
		v, err = s.pipe.Value(name)
		result = map[string]any{"value": v}
	case "heavyhitters":
		var phi float64
		if phi, err = floatParam(r, "phi", 0.01); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		var items []streamagg.ItemCount
		items, err = s.pipe.HeavyHitters(name, phi)
		result = map[string]any{"phi": phi, "items": itemCounts(items)}
	case "topk":
		var k int
		if k, err = intParam(r, "k", 10); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		var items []streamagg.ItemCount
		items, err = s.pipe.TopK(name, k)
		result = map[string]any{"k": k, "items": itemCounts(items)}
	case "rangecount":
		var lo, hi uint64
		if lo, err = uintParam(r, "lo", 0); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if hi, err = uintParam(r, "hi", 0); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		var count int64
		count, err = s.pipe.RangeCount(name, lo, hi)
		result = map[string]any{"lo": lo, "hi": hi, "count": count}
	case "quantile":
		var q float64
		if q, err = floatParam(r, "q", 0.5); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		var v uint64
		v, err = s.pipe.Quantile(name, q)
		result = map[string]any{"q": q, "quantile": v}
	default:
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown query verb %q", verb))
		return
	}
	if err != nil {
		switch {
		case errors.Is(err, streamagg.ErrNoSuchAggregate):
			writeError(w, http.StatusNotFound, err)
		case errors.Is(err, streamagg.ErrUnsupportedQuery):
			writeError(w, http.StatusBadRequest, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, result)
}

// itemCount mirrors streamagg.ItemCount with JSON tags.
type itemCount struct {
	Item  uint64 `json:"item"`
	Count int64  `json:"count"`
}

func itemCounts(in []streamagg.ItemCount) []itemCount {
	out := make([]itemCount, len(in))
	for i, ic := range in {
		out[i] = itemCount{Item: ic.Item, Count: ic.Count}
	}
	return out
}
