package server

// End-to-end smoke of the open-loop load harness against a real
// listener: every query verb the harness can drive plus ingest, over
// the same pipeline the rest of the server tests use. This is the
// black-box contract the CI aggload smoke and the E19 perf gate build
// on — a healthy server at a modest offered rate serves the whole mix
// with zero 5xx and zero transport errors, and the machine-readable
// report round-trips through JSON with the fields consumers grep for.

import (
	"context"
	"encoding/json"
	"net"
	"testing"
	"time"

	"repro/internal/loadgen"
)

func TestServerHandlesMixedLoadCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke skipped in -short mode")
	}
	srv, err := New(testPipeline(t))
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck // returns nil on Shutdown
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	mix, err := loadgen.ParseMix(
		"ingest=70,estimate@cm=6,value@ones=6,heavyhitters@hot=6,topk@hot=4,rangecount@dist=4,quantile@dist=4")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:   "http://" + l.Addr().String(),
		Rate:     400,
		Workers:  2,
		Duration: time.Second,
		Warmup:   100 * time.Millisecond,
		Mix:      mix,
		Batch:    32,
		Keys:     loadgen.Keys{Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}

	if rep.Ops == 0 {
		t.Fatal("harness completed zero operations")
	}
	// The whole point of the smoke: a healthy server serves the entire
	// mix without server errors. Anything non-2xx here is a routing or
	// validation bug (the mix only issues well-formed requests).
	for _, class := range []string{"3xx", "4xx", "5xx", "error"} {
		if n := rep.Status[class]; n != 0 {
			t.Errorf("%d %s responses, want 0 (status=%v)", n, class, rep.Status)
		}
	}
	for _, e := range mix {
		v := rep.Verbs[e.Label()]
		if v == nil || v.Ops == 0 {
			t.Errorf("verb %s never completed an operation", e.Label())
		}
	}
	if rep.Verbs["ingest"] != nil && rep.Verbs["ingest"].Items == 0 {
		t.Error("ingest completed but delivered zero items")
	}
	if rep.AchievedPerSec <= 0 {
		t.Errorf("achieved rate %v, want > 0", rep.AchievedPerSec)
	}

	// The report is the machine-readable artifact aggload -json writes;
	// its keys are a contract with the CI smoke (which greps "5xx": 0)
	// and anyone plotting the files.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	for _, key := range []string{
		"target", "offered_per_sec", "achieved_per_sec", "duration_seconds",
		"workers", "ops", "items", "items_per_sec", "status", "latency_ms", "verbs",
	} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("report JSON missing key %q", key)
		}
	}
	status, ok := decoded["status"].(map[string]any)
	if !ok {
		t.Fatalf("status is %T, want object", decoded["status"])
	}
	// All five classes render even at zero, so "5xx": 0 is grep-able.
	for _, class := range []string{"2xx", "3xx", "4xx", "5xx", "error"} {
		if _, ok := status[class]; !ok {
			t.Errorf("status block missing class %q", class)
		}
	}
}
