package streamagg

import (
	"fmt"
	"sync"

	"repro/internal/wsum"
)

// WindowSum maintains an ε-approximate sum of the last n values of a
// stream of non-negative integers bounded by R (Theorem 4.2). Space is
// O(ε⁻¹ log n log R); a minibatch of µ values costs O((S+µ) log R) work
// with polylog depth.
type WindowSum struct {
	mu   sync.RWMutex
	impl *wsum.Summer
}

// NewWindowSum creates a summer for a window of the last n values
// (n >= 1), each value at most maxValue, with relative error epsilon in
// (0, 1].
func NewWindowSum(n int64, maxValue uint64, epsilon float64) (*WindowSum, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: window size %d", ErrBadParam, n)
	}
	if epsilon <= 0 || epsilon > 1 {
		return nil, fmt.Errorf("%w: epsilon %v", ErrBadParam, epsilon)
	}
	return &WindowSum{impl: wsum.New(n, maxValue, epsilon)}, nil
}

// ProcessBatch ingests a minibatch of values. It returns an error (and
// ingests nothing) if any value exceeds the configured bound.
func (s *WindowSum) ProcessBatch(values []uint64) error {
	for _, v := range values {
		if v > s.impl.R() {
			return fmt.Errorf("%w: value %d exceeds bound %d", ErrBadParam, v, s.impl.R())
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.impl.Advance(values)
	return nil
}

// Estimate returns the approximate window sum:
// true <= Estimate() <= (1+ε)·true.
func (s *WindowSum) Estimate() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.impl.Estimate()
}

// WindowSize returns n.
func (s *WindowSum) WindowSize() int64 { return s.impl.N() }

// MaxValue returns R.
func (s *WindowSum) MaxValue() uint64 { return s.impl.R() }

// SpaceWords reports the memory footprint in 64-bit words.
func (s *WindowSum) SpaceWords() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.impl.SpaceWords()
}
