package streamagg

import (
	"fmt"

	"repro/internal/wsum"
)

// WindowSum maintains an ε-approximate sum of the last n values of a
// stream of non-negative integers bounded by R (Theorem 4.2). Space is
// O(ε⁻¹ log n log R); a minibatch of µ values costs O((S+µ) log R) work
// with polylog depth.
type WindowSum struct {
	gate
	impl *wsum.Summer
}

// NewWindowSum creates a summer for a window of the last n values
// (n >= 1), each value at most maxValue, with relative error epsilon in
// (0, 1].
func NewWindowSum(n int64, maxValue uint64, epsilon float64) (*WindowSum, error) {
	a, err := New(KindWindowSum, WithWindow(n), WithMaxValue(maxValue), WithEpsilon(epsilon))
	if err != nil {
		return nil, err
	}
	return a.(*WindowSum), nil
}

// Kind returns KindWindowSum.
func (s *WindowSum) Kind() Kind { return KindWindowSum }

// ProcessBatch ingests a minibatch of values. It returns an error (and
// ingests nothing) if any value exceeds the configured bound. The O(µ)
// bound scan runs under the read lock, before the write gate is taken:
// readers keep flowing while a batch is validated, and the write lock
// is held only for the mutation itself. R is immutable for a given
// implementation, but a concurrent UnmarshalBinary can swap the
// implementation between the scan and the write lock — the rare
// bound-changed case re-validates inside the gate so Advance can never
// see a value above the live bound.
func (s *WindowSum) ProcessBatch(values []uint64) error {
	r := s.MaxValue()
	for _, v := range values {
		if v > r {
			return fmt.Errorf("%w: value %d exceeds bound %d", ErrBadParam, v, r)
		}
	}
	return s.ingestErr(len(values), func() error {
		if live := s.impl.R(); live != r {
			for _, v := range values {
				if v > live {
					return fmt.Errorf("%w: value %d exceeds bound %d", ErrBadParam, v, live)
				}
			}
		}
		s.impl.Advance(values)
		return nil
	})
}

// Estimate returns the approximate window sum:
// true <= Estimate() <= (1+ε)·true.
func (s *WindowSum) Estimate() (est int64) {
	s.read(func() { est = s.impl.Estimate() })
	return est
}

// WindowSize returns n.
func (s *WindowSum) WindowSize() (n int64) {
	s.read(func() { n = s.impl.N() })
	return n
}

// MaxValue returns R.
func (s *WindowSum) MaxValue() (r uint64) {
	s.read(func() { r = s.impl.R() })
	return r
}

// SpaceWords reports the memory footprint in 64-bit words.
func (s *WindowSum) SpaceWords() (w int) {
	s.read(func() { w = s.impl.SpaceWords() })
	return w
}
