package streamagg

// Pipeline runs many aggregates over one discretized stream — the
// deployment shape the paper's model targets (and the one Spark-style
// systems use in production): a single sequence of minibatches fans out
// to every registered aggregate, each aggregate's internally-parallel
// ingestion running in its own goroutine on the shared worker budget
// (SetParallelism / internal/parallel), queries are answered through one
// keyed surface, and the whole pipeline checkpoints atomically at a
// minibatch boundary.
//
// Concurrency model. ProcessBatch calls are serialized with each other
// and with MarshalBinary (so a checkpoint always captures all aggregates
// at the same batch boundary), while queries interleave freely through
// each aggregate's reader-writer gate.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrNoSuchAggregate reports a query for a name with no registered
// aggregate.
var ErrNoSuchAggregate = errors.New("streamagg: no aggregate registered under that name")

// ErrUnsupportedQuery reports a query the named aggregate's kind cannot
// answer (e.g. HeavyHitters on a WindowSum).
var ErrUnsupportedQuery = errors.New("streamagg: aggregate does not support this query")

// Pipeline fans each incoming minibatch out to a set of named
// aggregates and exposes a unified keyed query surface over them. The
// zero value is an empty pipeline ready for use (and for
// UnmarshalBinary).
type Pipeline struct {
	reg       sync.RWMutex // guards names/aggs (the registration table)
	batch     sync.Mutex   // serializes ingestion and checkpointing
	names     []string     // registration order, for deterministic iteration
	aggs      map[string]Aggregate
	streamLen atomic.Int64
}

// NewPipeline creates an empty pipeline.
func NewPipeline() *Pipeline { return &Pipeline{} }

// Register adds an existing aggregate under name. Names must be
// non-empty and unique within the pipeline.
func (p *Pipeline) Register(name string, agg Aggregate) error {
	if name == "" {
		return fmt.Errorf("%w: empty aggregate name", ErrBadParam)
	}
	if agg == nil {
		return fmt.Errorf("%w: nil aggregate %q", ErrBadParam, name)
	}
	p.reg.Lock()
	defer p.reg.Unlock()
	if _, dup := p.aggs[name]; dup {
		return fmt.Errorf("%w: aggregate %q already registered", ErrBadParam, name)
	}
	if p.aggs == nil {
		p.aggs = make(map[string]Aggregate)
	}
	p.aggs[name] = agg
	p.names = append(p.names, name)
	return nil
}

// Add constructs an aggregate with New(kind, opts...) and registers it
// under name, returning it for direct (typed) use.
func (p *Pipeline) Add(name string, kind Kind, opts ...Option) (Aggregate, error) {
	agg, err := New(kind, opts...)
	if err != nil {
		return nil, err
	}
	if err := p.Register(name, agg); err != nil {
		return nil, err
	}
	return agg, nil
}

// Get returns the aggregate registered under name.
func (p *Pipeline) Get(name string) (Aggregate, bool) {
	p.reg.RLock()
	defer p.reg.RUnlock()
	agg, ok := p.aggs[name]
	return agg, ok
}

// Names returns the registered names in registration order.
func (p *Pipeline) Names() []string {
	p.reg.RLock()
	defer p.reg.RUnlock()
	out := make([]string, len(p.names))
	copy(out, p.names)
	return out
}

// Len returns the number of registered aggregates.
func (p *Pipeline) Len() int {
	p.reg.RLock()
	defer p.reg.RUnlock()
	return len(p.names)
}

// snapshot copies the registration table so fan-out runs without
// holding the table lock.
func (p *Pipeline) snapshot() (names []string, aggs []Aggregate) {
	p.reg.RLock()
	defer p.reg.RUnlock()
	names = make([]string, len(p.names))
	copy(names, p.names)
	aggs = make([]Aggregate, len(names))
	for i, n := range names {
		aggs[i] = p.aggs[n]
	}
	return names, aggs
}

// ProcessBatch fans the minibatch out to every registered aggregate
// concurrently — one goroutine per aggregate, each running its own
// internally-parallel ingestion on the shared worker budget — and
// returns once all of them have absorbed it. Per-aggregate failures
// (only WindowSum can fail, on an out-of-bound value) are joined into
// one error, tagged with the aggregate's name; failed aggregates ingest
// nothing while the others proceed.
func (p *Pipeline) ProcessBatch(items []uint64) error {
	p.batch.Lock()
	defer p.batch.Unlock()
	names, aggs := p.snapshot()
	errs := make([]error, len(aggs))
	var wg sync.WaitGroup
	for i, agg := range aggs {
		wg.Add(1)
		go func(i int, agg Aggregate) {
			defer wg.Done()
			if err := agg.ProcessBatch(items); err != nil {
				errs[i] = fmt.Errorf("%s: %w", names[i], err)
			}
		}(i, agg)
	}
	wg.Wait()
	p.streamLen.Add(int64(len(items)))
	return errors.Join(errs...)
}

// StreamLen reports the number of items fanned out so far.
func (p *Pipeline) StreamLen() int64 { return p.streamLen.Load() }

// SpaceWords reports the summed memory footprint of all registered
// aggregates in 64-bit words.
func (p *Pipeline) SpaceWords() int {
	_, aggs := p.snapshot()
	total := 0
	for _, agg := range aggs {
		total += agg.SpaceWords()
	}
	return total
}

// lookup resolves name to its aggregate or ErrNoSuchAggregate.
func (p *Pipeline) lookup(name string) (Aggregate, error) {
	agg, ok := p.Get(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchAggregate, name)
	}
	return agg, nil
}

func unsupported(name string, agg Aggregate, query string) error {
	return fmt.Errorf("%w: %s on %q (%s)", ErrUnsupportedQuery, query, name, agg.Kind())
}

// Estimate returns the named aggregate's per-item frequency estimate
// (FreqEstimator, SlidingFreqEstimator, CountMin, CountSketch).
func (p *Pipeline) Estimate(name string, item uint64) (int64, error) {
	agg, err := p.lookup(name)
	if err != nil {
		return 0, err
	}
	pe, ok := agg.(PointEstimator)
	if !ok {
		return 0, unsupported(name, agg, "Estimate")
	}
	return pe.Estimate(item), nil
}

// Value returns the named aggregate's scalar window estimate
// (BasicCounter, WindowSum). For aggregates without a window estimate
// that track the total ingested weight exactly (CountMin,
// CountMinRange), it falls back to TotalCount — which is what lets a
// federated root, built entirely from mergeable kinds, answer the value
// verb too.
func (p *Pipeline) Value(name string) (int64, error) {
	agg, err := p.lookup(name)
	if err != nil {
		return 0, err
	}
	if se, ok := agg.(ScalarEstimator); ok {
		return se.Estimate(), nil
	}
	if tc, ok := agg.(TotalCounter); ok {
		return tc.TotalCount(), nil
	}
	return 0, unsupported(name, agg, "Value")
}

// HeavyHitters returns the named aggregate's items above phi
// (FreqEstimator, SlidingFreqEstimator).
func (p *Pipeline) HeavyHitters(name string, phi float64) ([]ItemCount, error) {
	agg, err := p.lookup(name)
	if err != nil {
		return nil, err
	}
	hh, ok := agg.(HeavyHitterSource)
	if !ok {
		return nil, unsupported(name, agg, "HeavyHitters")
	}
	return hh.HeavyHitters(phi), nil
}

// TopK returns the named aggregate's k largest tracked items
// (FreqEstimator, SlidingFreqEstimator).
func (p *Pipeline) TopK(name string, k int) ([]ItemCount, error) {
	agg, err := p.lookup(name)
	if err != nil {
		return nil, err
	}
	hh, ok := agg.(HeavyHitterSource)
	if !ok {
		return nil, unsupported(name, agg, "TopK")
	}
	return hh.TopK(k), nil
}

// RangeCount returns the named aggregate's estimate for [lo, hi]
// (CountMinRange).
func (p *Pipeline) RangeCount(name string, lo, hi uint64) (int64, error) {
	agg, err := p.lookup(name)
	if err != nil {
		return 0, err
	}
	re, ok := agg.(RangeEstimator)
	if !ok {
		return 0, unsupported(name, agg, "RangeCount")
	}
	return re.RangeCount(lo, hi), nil
}

// Quantile returns the named aggregate's approximate q-quantile
// (CountMinRange).
func (p *Pipeline) Quantile(name string, q float64) (uint64, error) {
	agg, err := p.lookup(name)
	if err != nil {
		return 0, err
	}
	re, ok := agg.(RangeEstimator)
	if !ok {
		return 0, unsupported(name, agg, "Quantile")
	}
	return re.Quantile(q), nil
}

// Merge folds another pipeline into p — the cluster-level mergeable-
// summaries operation behind the federation subsystem: an edge node
// ships its pipeline checkpoint, the root absorbs it here. Aggregates
// are matched by name; every matched pair must agree on kind and the
// receiver's member must implement Merger (with compatible parameters),
// so after the merge each matched member summarizes the concatenation
// of both streams with the bounds documented on Merger. Names present
// in only one pipeline are left untouched — a root may serve a superset
// of what its edges push, and vice versa.
//
// Merge is atomic: every pair is validated against a clone of the
// receiver's member first, and p is modified only if all of them
// succeed. An empty intersection, a kind mismatch, a non-mergeable
// common kind, or incompatible parameters all return an error wrapping
// ErrIncompatibleMerge and leave p unchanged. Merging serializes with
// ProcessBatch and MarshalBinary, so it lands at a clean minibatch
// boundary; the argument is only read. Concurrent mutual merges
// (a.Merge(b) while b.Merge(a)) are not supported.
func (p *Pipeline) Merge(other *Pipeline) error {
	if other == nil {
		return fmt.Errorf("%w: nil pipeline", ErrBadParam)
	}
	if other == p {
		return fmt.Errorf("%w: pipeline merged with itself", ErrIncompatibleMerge)
	}
	p.batch.Lock()
	defer p.batch.Unlock()
	names, aggs := p.snapshot()
	type pair struct {
		name     string
		dst, src Aggregate
	}
	var pairs []pair
	for i, name := range names {
		src, ok := other.Get(name)
		if !ok {
			continue
		}
		dst := aggs[i]
		if dst.Kind() != src.Kind() {
			return fmt.Errorf("%w: aggregate %q is %s here but %s in the merged pipeline",
				ErrIncompatibleMerge, name, dst.Kind(), src.Kind())
		}
		if _, ok := dst.(Merger); !ok {
			return fmt.Errorf("%w: aggregate %q (%s) does not support merging",
				ErrIncompatibleMerge, name, dst.Kind())
		}
		pairs = append(pairs, pair{name, dst, src})
	}
	if len(pairs) == 0 {
		return fmt.Errorf("%w: pipelines share no aggregate names", ErrIncompatibleMerge)
	}
	// Dry run every pair against a clone of the receiver's member: the
	// parameter checks inside each kind's Merge are deterministic, so a
	// clean pass here guarantees the real pass below cannot fail
	// half-way and leave p partially merged.
	for _, pr := range pairs {
		probe, err := cloneAggregate(pr.dst)
		if err != nil {
			return fmt.Errorf("streamagg: merging aggregate %q: %w", pr.name, err)
		}
		if err := probe.(Merger).Merge(pr.src); err != nil {
			return fmt.Errorf("streamagg: merging aggregate %q: %w", pr.name, err)
		}
	}
	for _, pr := range pairs {
		if err := pr.dst.(Merger).Merge(pr.src); err != nil {
			return fmt.Errorf("streamagg: merging aggregate %q: %w", pr.name, err)
		}
	}
	p.streamLen.Add(other.StreamLen())
	return nil
}

// Clone returns a deep copy of the pipeline at the current minibatch
// boundary: same names, kinds, and state, sharing nothing with p. The
// federation root builds its merged serving view from one.
func (p *Pipeline) Clone() (*Pipeline, error) {
	data, err := p.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out := NewPipeline()
	if err := out.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return out, nil
}

// cloneAggregate deep-copies any aggregate: the mergeable kinds through
// their cheap typed clones, everything else through a checkpoint round
// trip.
func cloneAggregate(agg Aggregate) (Aggregate, error) {
	if c, ok := cloneMergeable(agg); ok {
		return c, nil
	}
	data, err := agg.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out, err := zeroAggregate(agg.Kind())
	if err != nil {
		return nil, err
	}
	if err := out.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return out, nil
}

// kindPipeline tags whole-pipeline checkpoints in the shared envelope
// format.
const kindPipeline Kind = "pipeline"

// pipelineState is the body of a pipeline checkpoint: the registration
// order plus each aggregate's own kind-tagged checkpoint.
type pipelineState struct {
	Names       []string
	Kinds       []string
	Checkpoints [][]byte
}

// MarshalBinary checkpoints the entire pipeline atomically: it waits for
// the in-flight minibatch (if any) to finish, then captures every
// aggregate at the same batch boundary in one envelope.
func (p *Pipeline) MarshalBinary() ([]byte, error) {
	p.batch.Lock()
	defer p.batch.Unlock()
	names, aggs := p.snapshot()
	st := pipelineState{Names: names}
	for i, agg := range aggs {
		ckpt, err := agg.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("streamagg: checkpointing pipeline aggregate %q: %w", names[i], err)
		}
		st.Kinds = append(st.Kinds, string(agg.Kind()))
		st.Checkpoints = append(st.Checkpoints, ckpt)
	}
	return seal(kindPipeline, p.streamLen.Load(), st)
}

// UnmarshalBinary restores a checkpoint made by MarshalBinary,
// rebuilding every registered aggregate (the receiver's previous
// registrations, if any, are replaced). It is valid on a zero-value
// Pipeline.
func (p *Pipeline) UnmarshalBinary(data []byte) error {
	var st pipelineState
	env, err := open(kindPipeline, data, &st)
	if err != nil {
		return err
	}
	if len(st.Names) != len(st.Kinds) || len(st.Names) != len(st.Checkpoints) {
		return fmt.Errorf("%w: pipeline checkpoint tables disagree", ErrBadParam)
	}
	aggs := make(map[string]Aggregate, len(st.Names))
	names := make([]string, 0, len(st.Names))
	for i, name := range st.Names {
		agg, err := zeroAggregate(Kind(st.Kinds[i]))
		if err != nil {
			return fmt.Errorf("streamagg: restoring pipeline aggregate %q: %w", name, err)
		}
		if err := agg.UnmarshalBinary(st.Checkpoints[i]); err != nil {
			return fmt.Errorf("streamagg: restoring pipeline aggregate %q: %w", name, err)
		}
		if _, dup := aggs[name]; dup {
			return fmt.Errorf("%w: pipeline checkpoint repeats name %q", ErrBadParam, name)
		}
		aggs[name] = agg
		names = append(names, name)
	}
	p.batch.Lock()
	defer p.batch.Unlock()
	p.reg.Lock()
	defer p.reg.Unlock()
	p.aggs = aggs
	p.names = names
	p.streamLen.Store(env.StreamLen)
	return nil
}

// zeroAggregate returns an empty aggregate of the given kind, ready for
// UnmarshalBinary.
func zeroAggregate(kind Kind) (Aggregate, error) {
	switch kind {
	case KindBasicCounter:
		return &BasicCounter{}, nil
	case KindWindowSum:
		return &WindowSum{}, nil
	case KindFreq:
		return &FreqEstimator{}, nil
	case KindSlidingFreq:
		return &SlidingFreqEstimator{}, nil
	case KindCountMin:
		return &CountMin{}, nil
	case KindCountMinRange:
		return &CountMinRange{}, nil
	case KindCountSketch:
		return &CountSketch{}, nil
	case KindSharded:
		return &Sharded{}, nil
	}
	return nil, fmt.Errorf("%w: unknown aggregate kind %q", ErrBadParam, kind)
}
