package streamagg

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/workload"
)

func TestBasicCounterEndToEnd(t *testing.T) {
	n := int64(4096)
	eps := 0.05
	c, err := NewBasicCounter(n, eps)
	if err != nil {
		t.Fatal(err)
	}
	bits := workload.BurstyBits(1, 1<<16, 1000, 0.02, 0.9)
	var window []bool
	for _, batch := range workload.BitBatches(bits, 2048) {
		c.ProcessBits(batch)
		window = append(window, batch...)
		if int64(len(window)) > n {
			window = window[int64(len(window))-n:]
		}
	}
	var m int64
	for _, b := range window {
		if b {
			m++
		}
	}
	est := c.Estimate()
	if est < m || float64(est) > (1+eps)*float64(m) {
		t.Fatalf("est %d outside [%d, %g]", est, m, (1+eps)*float64(m))
	}
	if c.WindowSize() != n || c.Epsilon() != eps || c.SpaceWords() <= 0 {
		t.Fatal("accessors wrong")
	}
}

func TestBasicCounterParamErrors(t *testing.T) {
	if _, err := NewBasicCounter(0, 0.1); !errors.Is(err, ErrBadParam) {
		t.Fatal("want ErrBadParam for n=0")
	}
	if _, err := NewBasicCounter(10, 0); !errors.Is(err, ErrBadParam) {
		t.Fatal("want ErrBadParam for eps=0")
	}
	if _, err := NewBasicCounter(10, 1.1); !errors.Is(err, ErrBadParam) {
		t.Fatal("want ErrBadParam for eps>1")
	}
}

func TestWindowSumEndToEnd(t *testing.T) {
	n := int64(1000)
	R := uint64(1023)
	eps := 0.1
	s, err := NewWindowSum(n, R, eps)
	if err != nil {
		t.Fatal(err)
	}
	vals := workload.Values(2, 20000, R, 2)
	var window []uint64
	for _, batch := range workload.Batches(vals, 500) {
		if err := s.ProcessBatch(batch); err != nil {
			t.Fatal(err)
		}
		window = append(window, batch...)
		if int64(len(window)) > n {
			window = window[int64(len(window))-n:]
		}
	}
	var want int64
	for _, v := range window {
		want += int64(v)
	}
	est := s.Estimate()
	if est < want || float64(est) > (1+eps)*float64(want) {
		t.Fatalf("sum est %d outside [%d, %g]", est, want, (1+eps)*float64(want))
	}
	if s.MaxValue() != R || s.WindowSize() != n {
		t.Fatal("accessors wrong")
	}
}

func TestWindowSumRejectsOutOfRange(t *testing.T) {
	s, _ := NewWindowSum(10, 5, 0.1)
	if err := s.ProcessBatch([]uint64{1, 6}); !errors.Is(err, ErrBadParam) {
		t.Fatal("want ErrBadParam for value > R")
	}
	// Nothing must have been ingested.
	if est := s.Estimate(); est != 0 {
		t.Fatalf("partial ingest: est %d", est)
	}
}

func TestFreqEstimatorEndToEnd(t *testing.T) {
	eps := 0.01
	f, err := NewFreqEstimator(eps)
	if err != nil {
		t.Fatal(err)
	}
	stream := workload.Zipf(3, 200000, 1.2, 1<<18)
	exact := map[uint64]int64{}
	for _, batch := range workload.Batches(stream, 8192) {
		f.ProcessBatch(batch)
		for _, it := range batch {
			exact[it]++
		}
	}
	m := f.StreamLen()
	if m != int64(len(stream)) {
		t.Fatalf("StreamLen %d", m)
	}
	for it, fe := range exact {
		est := f.Estimate(it)
		if est > fe || float64(fe-est) > eps*float64(m)+1e-9 {
			t.Fatalf("item %d: est %d true %d", it, est, fe)
		}
	}
	top := f.TopK(5)
	if len(top) != 5 {
		t.Fatalf("TopK returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i-1].Count < top[i].Count {
			t.Fatal("TopK not sorted")
		}
	}
	hh := f.HeavyHitters(0.2)
	for _, h := range hh {
		if float64(exact[h.Item]) < (0.2-2*eps)*float64(m) {
			t.Fatalf("false positive heavy hitter %d", h.Item)
		}
	}
}

func TestSlidingFreqEstimatorAllVariants(t *testing.T) {
	for _, v := range []SlidingVariant{VariantBasic, VariantSpaceEfficient, VariantWorkEfficient} {
		n := int64(4000)
		eps := 0.05
		s, err := NewSlidingFreqEstimator(n, eps, v)
		if err != nil {
			t.Fatal(err)
		}
		stream := workload.Zipf(int64(v)+10, 40000, 1.3, 1<<12)
		var window []uint64
		for _, batch := range workload.Batches(stream, 1000) {
			s.ProcessBatch(batch)
			window = append(window, batch...)
			if int64(len(window)) > n {
				window = window[int64(len(window))-n:]
			}
		}
		exact := map[uint64]int64{}
		for _, it := range window {
			exact[it]++
		}
		for it, fe := range exact {
			est := s.Estimate(it)
			if est > fe || float64(fe-est) > eps*float64(n)+1e-9 {
				t.Fatalf("%v item %d: est %d true %d", v, it, est, fe)
			}
		}
		if s.Variant() != v || s.WindowSize() != n {
			t.Fatal("accessors wrong")
		}
		if v != VariantBasic && s.TrackedItems() > int(8/eps)+2 {
			t.Fatalf("%v tracks %d items", v, s.TrackedItems())
		}
	}
}

func TestSlidingFreqParamErrors(t *testing.T) {
	if _, err := NewSlidingFreqEstimator(0, 0.1, VariantBasic); !errors.Is(err, ErrBadParam) {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewSlidingFreqEstimator(10, 0, VariantBasic); !errors.Is(err, ErrBadParam) {
		t.Fatal("eps=0 accepted")
	}
	if _, err := NewSlidingFreqEstimator(10, 0.1, SlidingVariant(9)); !errors.Is(err, ErrBadParam) {
		t.Fatal("bad variant accepted")
	}
}

func TestCountMinEndToEnd(t *testing.T) {
	eps, delta := 0.001, 0.01
	c, err := NewCountMin(eps, delta, 7)
	if err != nil {
		t.Fatal(err)
	}
	stream := workload.Zipf(5, 100000, 1.1, 1<<16)
	exact := map[uint64]int64{}
	for _, batch := range workload.Batches(stream, 4096) {
		c.ProcessBatch(batch)
		for _, it := range batch {
			exact[it]++
		}
	}
	if c.TotalCount() != int64(len(stream)) {
		t.Fatalf("TotalCount %d", c.TotalCount())
	}
	m := float64(c.TotalCount())
	bad := 0
	for it, fe := range exact {
		q := c.Query(it)
		if q < fe {
			t.Fatalf("undercount item %d", it)
		}
		if float64(q-fe) > eps*m {
			bad++
		}
	}
	if bad > len(exact)/50 {
		t.Fatalf("%d/%d queries beyond εm", bad, len(exact))
	}
	d, w := c.Dims()
	if d < 1 || w < int(1/eps) {
		t.Fatalf("dims %dx%d", d, w)
	}
}

func TestCountMinRangeEndToEnd(t *testing.T) {
	c, err := NewCountMinRange(12, 0.001, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	items := make([]uint64, 50000)
	for i := range items {
		items[i] = uint64(rng.Intn(4096))
	}
	c.ProcessBatch(items)
	var inFirstHalf int64
	for _, v := range items {
		if v < 2048 {
			inFirstHalf++
		}
	}
	got := c.RangeCount(0, 2047)
	if got < inFirstHalf {
		t.Fatalf("range undercount: %d < %d", got, inFirstHalf)
	}
	if float64(got) > float64(inFirstHalf)*1.2+100 {
		t.Fatalf("range overcount: %d vs %d", got, inFirstHalf)
	}
	med := c.Quantile(0.5)
	if med < 1500 || med > 2600 {
		t.Fatalf("median %d want ~2048", med)
	}
	if c.TotalCount() != 50000 || c.SpaceWords() <= 0 {
		t.Fatal("accessors wrong")
	}
}

func TestCountMinParamErrors(t *testing.T) {
	if _, err := NewCountMin(0, 0.1, 1); !errors.Is(err, ErrBadParam) {
		t.Fatal("eps=0 accepted")
	}
	if _, err := NewCountMin(0.1, 1, 1); !errors.Is(err, ErrBadParam) {
		t.Fatal("delta=1 accepted")
	}
	if _, err := NewCountMinRange(0, 0.1, 0.1, 1); !errors.Is(err, ErrBadParam) {
		t.Fatal("bits=0 accepted")
	}
	if _, err := NewCountMinRange(12, 0.1, 0, 1); !errors.Is(err, ErrBadParam) {
		t.Fatal("delta=0 accepted")
	}
}

func TestConcurrentQueriesDuringUpdates(t *testing.T) {
	// Queries must be safe to run concurrently with batch updates through
	// the reader-writer gate (run under -race in CI).
	f, _ := NewFreqEstimator(0.01)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = f.Estimate(12345)
					_ = f.TopK(3)
				}
			}
		}()
	}
	stream := workload.Zipf(11, 100000, 1.2, 1<<16)
	for _, batch := range workload.Batches(stream, 4096) {
		f.ProcessBatch(batch)
	}
	close(stop)
	wg.Wait()
	if f.StreamLen() != 100000 {
		t.Fatalf("StreamLen %d", f.StreamLen())
	}
}

func TestSetParallelism(t *testing.T) {
	old := SetParallelism(2)
	if Parallelism() != 2 {
		t.Fatal("SetParallelism(2) not applied")
	}
	SetParallelism(old)
}

func TestHashString(t *testing.T) {
	if HashString("alpha") == HashString("beta") {
		t.Fatal("different strings collide")
	}
	if HashString("x") != HashString("x") {
		t.Fatal("hash not deterministic")
	}
}
